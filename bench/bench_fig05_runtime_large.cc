// Fig. 5: (a) Chronos vs ElleKV vs Emme-SI on large key-value histories;
// (b) Chronos vs ElleList on list histories. The paper reports Chronos
// ~10.5x faster than ElleKV and ~7.4x faster than ElleList.
#include "baselines/elle.h"
#include "baselines/emme.h"
#include "bench_util.h"
#include "core/chronos.h"
#include "core/chronos_list.h"

using namespace chronos;

int main() {
  uint64_t scale = bench::ScaleFactor();

  bench::Header("Fig 5a", "runtime on key-value histories");
  std::printf("%8s %10s %10s %10s %10s\n", "#txns", "ElleKV", "Emme-SI",
              "Chronos", "speedup(Elle/Chronos)");
  for (uint64_t n : {2000, 5000, 10000, 20000}) {
    uint64_t txns = n * scale;
    History h = bench::DefaultHistory(txns);
    CountingSink s1, s2, s3;
    baselines::BaselineResult elle =
        baselines::CheckElleKv(h, baselines::CheckLevel::kSi, &s1);
    baselines::BaselineResult emme = baselines::CheckEmmeSi(h, &s2);
    CheckStats chronos = Chronos::CheckHistory(h, &s3);
    double ct = chronos.sort_seconds + chronos.check_seconds;
    std::printf("%8llu %9.3fs %9.3fs %9.3fs %9.1fx\n",
                static_cast<unsigned long long>(txns), elle.seconds,
                emme.seconds, ct, ct > 0 ? elle.seconds / ct : 0.0);
  }

  bench::Header("Fig 5b", "runtime on list histories");
  std::printf("%8s %10s %10s\n", "#txns", "ElleList", "Chronos");
  for (uint64_t n : {1000, 2000, 5000, 10000}) {
    uint64_t txns = n * scale;
    workload::WorkloadParams p;
    p.txns = txns;
    p.list_mode = true;
    p.keys = 1000;
    History h = workload::GenerateDefaultHistory(p);
    CountingSink s1, s2;
    baselines::BaselineResult elle =
        baselines::CheckElleList(h, baselines::CheckLevel::kSi, &s1);
    CheckStats chronos = ChronosList::CheckHistory(h, &s2);
    std::printf("%8llu %9.3fs %9.3fs\n",
                static_cast<unsigned long long>(txns), elle.seconds,
                chronos.sort_seconds + chronos.check_seconds);
  }
  return 0;
}
