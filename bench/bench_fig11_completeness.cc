// Sec. V-D + Fig. 11: violation-detection completeness. Timestamp faults
// injected into otherwise-plausible histories are caught by the
// timestamp-based checkers but accepted by black-box ones.
#include "baselines/elle.h"
#include "baselines/polysi.h"
#include "bench_util.h"
#include "core/chronos.h"
#include "db/database.h"

using namespace chronos;

namespace {

const char* Verdict(bool detected) { return detected ? "DETECTED" : "accepted"; }

void Compare(const char* label, const History& h) {
  CountingSink cs, ps, es;
  Chronos::CheckHistory(h, &cs);
  baselines::PolygraphResult poly = baselines::CheckPolySi(h, &ps);
  baselines::BaselineResult elle =
      baselines::CheckElleKv(h, baselines::CheckLevel::kSi, &es);
  bool poly_detected =
      poly.verdict == baselines::PolygraphResult::Verdict::kViolation ||
      poly.anomalies > 0;
  std::printf("%22s  chronos=%-8s  polysi=%-8s  ellekv=%-8s  (chronos: %zu)\n",
              label, Verdict(cs.total() > 0), Verdict(poly_detected),
              Verdict(!elle.Accepted()), cs.total());
}

History WithFaults(db::FaultConfig f) {
  workload::WorkloadParams p;
  p.sessions = 10;
  p.txns = 400;
  p.ops_per_txn = 6;
  p.keys = 40;
  db::DbConfig cfg;
  cfg.faults = f;
  return workload::GenerateDefaultHistory(p, cfg);
}

}  // namespace

int main() {
  bench::Header("Fig 11 / Sec V-D", "timestamp-based vs black-box completeness");

  // The literal Fig. 11 history.
  History fig11;
  {
    Transaction t1, t2, t3;
    t1.tid = 1; t1.sid = 0; t1.sno = 0; t1.start_ts = 1; t1.commit_ts = 2;
    t1.ops.push_back({OpType::kWrite, 1, 1, 0});
    t2.tid = 2; t2.sid = 1; t2.sno = 0; t2.start_ts = 3; t2.commit_ts = 4;
    t2.ops.push_back({OpType::kWrite, 1, 2, 0});
    t3.tid = 3; t3.sid = 2; t3.sno = 0; t3.start_ts = 5; t3.commit_ts = 6;
    t3.ops.push_back({OpType::kRead, 1, 1, 0});
    fig11.txns = {t1, t2, t3};
    fig11.num_sessions = 3;
  }
  Compare("Fig 11 stale read", fig11);

  db::FaultConfig early;
  early.early_commit_prob = 0.05;
  Compare("early-commit-ts fault", WithFaults(early));

  db::FaultConfig late;
  late.late_start_prob = 0.05;
  Compare("late-start-ts fault", WithFaults(late));

  db::FaultConfig swap;
  swap.ts_swap_prob = 0.05;
  Compare("ts-swap (Eq.1) fault", WithFaults(swap));

  db::FaultConfig corrupt;
  corrupt.value_corruption_prob = 0.05;
  Compare("value corruption", WithFaults(corrupt));

  std::printf("\n(timestamp faults are invisible to black-box checkers: the\n"
              " paper's completeness argument for white-box checking)\n");
  return 0;
}
