// Fig. 16: AION under a constrained memory budget — GC triggers at the
// cap, memory oscillates between the cap and the post-GC level, and the
// whole stream still completes.
#include "bench_util.h"
#include "core/aion.h"
#include "online/pipeline.h"

using namespace chronos;

int main() {
  uint64_t scale = bench::ScaleFactor();
  bench::Header("Fig 16", "Aion under constrained memory (live-txn cap)");
  History h = bench::DefaultHistory(100000 * scale);
  hist::CollectorParams cp;
  cp.delay_mean_ms = 2;
  cp.delay_stddev_ms = 1;
  auto stream = hist::ScheduleDelivery(h, cp);

  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 50;
  Aion checker(opt, &sink);
  online::RunResult r = online::RunMaxRate(
      &checker, stream, online::GcPolicy::HardCap(10000), 5000);
  std::printf("completed %llu txns in %.2fs (avg %.0f TPS), violations=%zu\n",
              static_cast<unsigned long long>(r.txns), r.wall_seconds,
              r.AvgTps(), static_cast<size_t>(sink.total()));
  std::printf("%10s %12s %12s %12s\n", "t(s)", "txns", "live txns", "RSS MB");
  for (const auto& s : r.samples) {
    std::printf("%10.2f %12llu %12zu %12.1f\n", s.wall_seconds,
                static_cast<unsigned long long>(s.txns_done), s.live_txns,
                s.rss_bytes / 1048576.0);
  }
  std::printf("GC passes: %llu\n",
              static_cast<unsigned long long>(checker.stats().gc_passes));
  return 0;
}
