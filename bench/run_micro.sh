#!/usr/bin/env bash
# Runs the bench_micro google-benchmark suite and emits BENCH_micro.json
# (items/sec for the per-transaction checker paths plus the old-vs-new
# data-structure comparisons). The perf trajectory of this repo is the
# series of these artifacts over PRs.
#
# Usage: bench/run_micro.sh [build_dir] [output_json]
#   build_dir    defaults to ./build
#   output_json  defaults to ./BENCH_micro.json
#
# CHRONOS_BENCH_SCALE (default 1) scales the figure benches, not this
# suite; bench_micro sizes are fixed so numbers stay comparable across
# runs.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_micro.json}"
FILTER="${BENCH_FILTER:-BM_AionPerTxn|BM_ShardedAionPerTxn|BM_ChronosPerTxn|BM_VersionedKv|BM_MapKv|BM_AionFootprint}"
MIN_TIME="${BENCH_MIN_TIME:-0.5}"

BIN="$BUILD_DIR/bench_micro"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found; build with: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" --benchmark_filter="$FILTER" \
       --benchmark_min_time="$MIN_TIME" \
       --benchmark_format=json >"$OUT"

python3 - "$OUT" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
print(f"wrote {sys.argv[1]}:")
for b in d.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips:
        print(f"  {b['name']:<32} {ips:>14,.0f} items/s")
    else:
        print(f"  {b['name']:<32} {b['real_time']:>10.0f} {b['time_unit']}")
EOF
