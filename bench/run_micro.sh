#!/usr/bin/env bash
# Runs the bench_micro google-benchmark suite and emits BENCH_micro.json
# (items/sec for the per-transaction checker paths plus the old-vs-new
# data-structure comparisons). The perf trajectory of this repo is the
# series of these artifacts over PRs.
#
# Usage: bench/run_micro.sh [build_dir] [output_json]
#   build_dir    defaults to ./build-bench (configured+built Release here
#                if missing). A dir whose CMakeCache is not
#                CMAKE_BUILD_TYPE=Release is refused: debug/RelWithDebInfo
#                numbers silently pollute the artifact series. Set
#                CHRONOS_BENCH_ALLOW_NONRELEASE=1 to override (CI smoke
#                only verifies the harness runs, not the numbers).
#   output_json  defaults to ./BENCH_micro.json
#
# CHRONOS_BENCH_SCALE (default 1) scales the figure benches, not this
# suite; bench_micro sizes are fixed so numbers stay comparable across
# runs.
set -euo pipefail

BUILD_DIR="${1:-build-bench}"
OUT="${2:-BENCH_micro.json}"
FILTER="${BENCH_FILTER:-BM_AionPerTxn|BM_ShardedAionPerTxn|BM_ChronosPerTxn|BM_VersionedKv|BM_MapKv|BM_AionFootprint}"
MIN_TIME="${BENCH_MIN_TIME:-0.5}"

if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  echo "configuring Release build dir $BUILD_DIR" >&2
  cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
        -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
if [[ "$BUILD_TYPE" != "Release" &&
      "${CHRONOS_BENCH_ALLOW_NONRELEASE:-0}" != "1" ]]; then
  echo "error: $BUILD_DIR has CMAKE_BUILD_TYPE='$BUILD_TYPE', not Release;" \
       "benchmark numbers from it are not comparable. Point this script at" \
       "a Release dir (default: build-bench) or set" \
       "CHRONOS_BENCH_ALLOW_NONRELEASE=1 for a smoke run." >&2
  exit 1
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_micro >/dev/null

BIN="$BUILD_DIR/bench_micro"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found after build" >&2
  exit 1
fi

"$BIN" --benchmark_filter="$FILTER" \
       --benchmark_min_time="$MIN_TIME" \
       --benchmark_format=json >"$OUT"

python3 - "$OUT" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
print(f"wrote {sys.argv[1]}:")
for b in d.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips:
        print(f"  {b['name']:<32} {ips:>14,.0f} items/s")
    else:
        print(f"  {b['name']:<32} {b['real_time']:>10.0f} {b['time_unit']}")
EOF
