// Reference (pre-flat-chain) implementation of the versioned frontier:
// per-key std::map<Timestamp, VersionEntry> with O(all-keys) GC and
// accounting, kept verbatim as the baseline side of the old-vs-new micro
// benchmarks in bench_micro.cc. Not used by the checker.
#ifndef CHRONOS_BENCH_REF_MAP_KV_H_
#define CHRONOS_BENCH_REF_MAP_KV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "core/versioned_kv.h"

namespace chronos::bench {

/// The seed's node-based VersionedKv, for apples-to-apples comparison.
class RefMapKv {
 public:
  using VersionMap = std::map<Timestamp, VersionEntry>;

  bool Put(Key key, Timestamp ts, Value value, TxnId tid) {
    auto [it, ok] = versions_[key].emplace(ts, VersionEntry{value, tid});
    (void)it;
    return ok;
  }

  VersionedKv::Lookup GetAtOrBefore(Key key, Timestamp ts) const {
    auto it = versions_.find(key);
    if (it == versions_.end()) return {};
    const VersionMap& m = it->second;
    auto vit = m.upper_bound(ts);
    if (vit == m.begin()) return {};
    --vit;
    return {vit->second.value, vit->second.tid, vit->first};
  }

  size_t TotalVersions() const {
    size_t n = 0;
    for (const auto& [k, m] : versions_) n += m.size();
    return n;
  }

  size_t CollectUpTo(Timestamp ts,
                     std::vector<std::tuple<Key, Timestamp, VersionEntry>>*
                         evicted = nullptr) {
    size_t n = 0;
    for (auto& [key, vmap] : versions_) {
      auto end = vmap.upper_bound(ts);
      if (end == vmap.begin()) continue;
      --end;
      for (auto it = vmap.begin(); it != end;) {
        if (evicted) evicted->emplace_back(key, it->first, it->second);
        it = vmap.erase(it);
        ++n;
      }
    }
    return n;
  }

 private:
  std::unordered_map<Key, VersionMap> versions_;
};

}  // namespace chronos::bench

#endif  // CHRONOS_BENCH_REF_MAP_KV_H_
