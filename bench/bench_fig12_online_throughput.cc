// Fig. 12 (+ Fig. 23): online checking throughput over time.
//   (a) SER checking, default workload: Aion-SER under three GC
//       strategies vs Cobra under (fence, round) configurations;
//   (b) SI checking, default workload: Aion under three GC strategies;
//   (c, d) SER on RUBiS and Twitter; Fig. 23: SI on RUBiS and Twitter.
#include "baselines/cobra.h"
#include "bench_util.h"
#include "core/aion.h"
#include "online/pipeline.h"
#include "online/sharded_aion.h"
#include "workload/apps.h"

using namespace chronos;

namespace {

std::vector<hist::CollectedTxn> Stream(const History& h) {
  hist::CollectorParams cp;
  cp.delay_mean_ms = 2;
  cp.delay_stddev_ms = 1;
  return hist::ScheduleDelivery(h, cp);
}

void RunAionRow(const char* label, Aion::Mode mode,
                const std::vector<hist::CollectedTxn>& stream,
                online::GcPolicy gc, bool threaded = false,
                size_t shards = 1) {
  CountingSink sink;
  Aion::Options opt;
  opt.mode = mode;
  opt.ext_timeout_ms = 50;
  std::unique_ptr<OnlineChecker> checker =
      online::MakeChecker(opt, shards, &sink);
  online::RunResult r =
      threaded ? online::RunThreaded(checker.get(), stream, gc)
               : online::RunMaxRate(checker.get(), stream, gc);
  std::printf("%24s  avg=%8.0f TPS  violations=%-6zu windows:", label,
              r.AvgTps(), static_cast<size_t>(sink.total()));
  for (size_t i = 0; i < r.tps_per_window.size() && i < 8; ++i) {
    std::printf(" %.0f", r.tps_per_window[i]);
  }
  std::printf("\n");
}

void RunCobraRow(const char* label, uint32_t fence, uint32_t round,
                 const std::vector<hist::CollectedTxn>& stream) {
  CountingSink sink;
  baselines::CobraParams cp;
  cp.fence_every = fence;
  cp.round_size = round;
  baselines::CobraRun run = baselines::RunCobraSer(stream, cp, &sink);
  std::printf("%24s  avg=%8.0f TPS  stopped=%-3s round TPS:", label,
              run.wall_seconds > 0 ? run.processed / run.wall_seconds : 0,
              run.violation_found ? "yes" : "no");
  // Per-round throughput: the paper's declining-over-time Cobra curves.
  double prev_t = 0;
  uint64_t prev_n = 0;
  for (const auto& [t, n] : run.round_progress) {
    if (t > prev_t) std::printf(" %.0f", (n - prev_n) / (t - prev_t));
    prev_t = t;
    prev_n = n;
  }
  std::printf("\n");
}

History DefaultFor(bool ser, uint64_t txns) {
  workload::WorkloadParams p;
  p.sessions = 24;
  p.ops_per_txn = 8;
  p.txns = txns;
  // Wider, uniform key space: our interleaved generator holds transactions
  // open far longer than a real client, so the paper's zipf default would
  // drown SER generation in OCC aborts. Checker throughput, the subject
  // of this figure, is unaffected.
  p.keys = 10000;
  p.dist = workload::WorkloadParams::KeyDist::kUniform;
  if (ser) p.read_ratio = 0.9;  // paper: prevents Cobra blow-up
  db::DbConfig cfg;
  if (ser) cfg.isolation = db::DbConfig::Isolation::kSer;
  return workload::GenerateDefaultHistory(p, cfg);
}

}  // namespace

int main() {
  uint64_t scale = bench::ScaleFactor();
  uint64_t txns = 50000 * scale;  // paper: 500K

  bench::Header("Fig 12a", "SER checking throughput (default workload)");
  {
    auto stream = Stream(DefaultFor(true, txns));
    RunAionRow("Aion-SER-no-gc", Aion::Mode::kSer, stream,
               online::GcPolicy::None());
    RunAionRow("Aion-SER-checking-gc", Aion::Mode::kSer, stream,
               online::GcPolicy::Threshold(20000, 10000));
    RunAionRow("Aion-SER-full-gc", Aion::Mode::kSer, stream,
               online::GcPolicy::HardCap(5000));
    // Cobra's closure is O(N^2) bits of memory (GPU-resident in the
    // original): cap its slice so the CPU model stays within RAM.
    auto cobra_stream = std::vector<hist::CollectedTxn>(
        stream.begin(),
        stream.begin() +
            std::min<size_t>(stream.size(),
                             std::min<uint64_t>(20000 * scale, 24000)));
    RunCobraRow("Cobra-F20-R2k4", 20, 2400, cobra_stream);
    RunCobraRow("Cobra-F20-R4k8", 20, 4800, cobra_stream);
    RunCobraRow("Cobra-F1-R2k4", 1, 2400, cobra_stream);
    RunCobraRow("Cobra-F1-R4k8", 1, 4800, cobra_stream);
  }

  bench::Header("Fig 12b", "SI checking throughput (default workload)");
  {
    auto stream = Stream(DefaultFor(false, txns));
    RunAionRow("Aion-no-gc", Aion::Mode::kSi, stream,
               online::GcPolicy::None());
    RunAionRow("Aion-checking-gc", Aion::Mode::kSi, stream,
               online::GcPolicy::Threshold(20000, 10000));
    RunAionRow("Aion-full-gc", Aion::Mode::kSi, stream,
               online::GcPolicy::HardCap(5000));
    RunAionRow("Aion-threaded-no-gc", Aion::Mode::kSi, stream,
               online::GcPolicy::None(), /*threaded=*/true);
    // Key-partitioned checking (collector -> coordinator -> shards).
    RunAionRow("Aion-sharded2-no-gc", Aion::Mode::kSi, stream,
               online::GcPolicy::None(), /*threaded=*/true, /*shards=*/2);
    RunAionRow("Aion-sharded4-no-gc", Aion::Mode::kSi, stream,
               online::GcPolicy::None(), /*threaded=*/true, /*shards=*/4);
    RunAionRow("Aion-sharded4-chk-gc", Aion::Mode::kSi, stream,
               online::GcPolicy::Threshold(20000, 10000), /*threaded=*/true,
               /*shards=*/4);
  }

  uint64_t app_txns = 20000 * scale;
  bench::Header("Fig 12c/23a", "RUBiS: SER and SI");
  {
    workload::RubisParams rp;
    rp.txns = app_txns;
    db::DbConfig ser_cfg;
    ser_cfg.isolation = db::DbConfig::Isolation::kSer;
    auto ser_stream = Stream(workload::GenerateRubisHistory(rp, ser_cfg));
    RunAionRow("Aion-SER-rubis", Aion::Mode::kSer, ser_stream,
               online::GcPolicy::Threshold(20000, 10000));
    auto si_stream = Stream(workload::GenerateRubisHistory(rp));
    RunAionRow("Aion-SI-rubis", Aion::Mode::kSi, si_stream,
               online::GcPolicy::Threshold(20000, 10000));
  }

  bench::Header("Fig 12d/23b", "Twitter: SER and SI (more keys -> slower)");
  {
    workload::TwitterParams tp;
    tp.txns = app_txns;
    db::DbConfig ser_cfg;
    ser_cfg.isolation = db::DbConfig::Isolation::kSer;
    auto ser_stream = Stream(workload::GenerateTwitterHistory(tp, ser_cfg));
    RunAionRow("Aion-SER-twitter", Aion::Mode::kSer, ser_stream,
               online::GcPolicy::Threshold(20000, 10000));
    auto si_stream = Stream(workload::GenerateTwitterHistory(tp));
    RunAionRow("Aion-SI-twitter", Aion::Mode::kSi, si_stream,
               online::GcPolicy::Threshold(20000, 10000));
  }
  return 0;
}
