// Shared plumbing for the paper-figure bench harness. Every bench binary
// prints the series of one table/figure of the paper; CHRONOS_BENCH_SCALE
// (default 1) multiplies workload sizes towards paper scale.
#ifndef CHRONOS_BENCH_BENCH_UTIL_H_
#define CHRONOS_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "core/stats.h"
#include "hist/codec.h"
#include "online/metrics.h"
#include "workload/generator.h"

namespace chronos::bench {

inline uint64_t ScaleFactor() {
  const char* env = std::getenv("CHRONOS_BENCH_SCALE");
  if (!env) return 1;
  uint64_t s = std::strtoull(env, nullptr, 10);
  return s == 0 ? 1 : s;
}

inline void Header(const char* fig, const char* what) {
  std::printf("=== %s: %s (scale x%llu) ===\n", fig, what,
              static_cast<unsigned long long>(ScaleFactor()));
}

/// Samples peak RSS on a background thread while `fn` runs; returns
/// (seconds, peak_rss_delta_bytes). malloc_trim first so allocator
/// caching from earlier runs does not swallow the delta.
template <typename Fn>
std::pair<double, size_t> TimedWithPeakRss(Fn&& fn) {
  std::atomic<bool> done{false};
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  size_t base = online::ReadRssBytes();
  std::atomic<size_t> peak{base};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_relaxed)) {
      size_t rss = online::ReadRssBytes();
      size_t cur = peak.load(std::memory_order_relaxed);
      while (rss > cur &&
             !peak.compare_exchange_weak(cur, rss, std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  Stopwatch sw;
  fn();
  double secs = sw.Seconds();
  done.store(true);
  sampler.join();
  size_t p = peak.load();
  return {secs, p > base ? p - base : 0};
}

/// Default-workload history with the paper's Table I defaults, overriding
/// the transaction count.
inline History DefaultHistory(uint64_t txns, uint32_t ops_per_txn = 15,
                              uint64_t keys = 1000, uint32_t sessions = 50,
                              workload::WorkloadParams::KeyDist dist =
                                  workload::WorkloadParams::KeyDist::kZipf,
                              double read_ratio = 0.5, uint64_t seed = 1) {
  workload::WorkloadParams p;
  p.sessions = sessions;
  p.txns = txns;
  p.ops_per_txn = ops_per_txn;
  p.keys = keys;
  p.dist = dist;
  p.read_ratio = read_ratio;
  p.seed = seed;
  return workload::GenerateDefaultHistory(p);
}

/// Round-trips a history through the codec to measure the loading stage
/// (Figs. 8, 9, 24). Returns (load_seconds, history).
inline std::pair<double, History> SaveAndLoad(const History& h,
                                              const std::string& name) {
  std::string path = "/tmp/chronos-bench-" + name + ".hist";
  hist::SaveHistory(h, path);
  Stopwatch sw;
  History loaded;
  hist::LoadHistory(path, &loaded);
  double secs = sw.Seconds();
  std::remove(path.c_str());
  return {secs, std::move(loaded)};
}

}  // namespace chronos::bench

#endif  // CHRONOS_BENCH_BENCH_UTIL_H_
