// Appendix Fig. 24: Chronos offline stage decomposition on application
// workloads (TPC-C, RUBiS, Twitter). TPC-C's composite keys make online
// checking expensive but offline checking with a single global frontier
// handles it easily.
#include "bench_util.h"
#include "core/chronos.h"
#include "workload/apps.h"

using namespace chronos;

namespace {

void Row(const char* label, const History& h) {
  auto [load_s, loaded] = bench::SaveAndLoad(h, label);
  CountingSink sink;
  Chronos checker(ChronosOptions{}, &sink);
  CheckStats stats = checker.Check(std::move(loaded));
  std::printf("%10s %10.3fs %10.4fs %10.3fs  (%zu txns, %zu ops, %zu viol)\n",
              label, load_s, stats.sort_seconds, stats.check_seconds,
              stats.txns, stats.ops, stats.violations);
}

}  // namespace

int main() {
  uint64_t scale = bench::ScaleFactor();
  uint64_t txns = 20000 * scale;
  bench::Header("Fig 24", "offline decomposition on app workloads");
  std::printf("%10s %11s %11s %11s\n", "workload", "loading", "sorting",
              "checking");
  {
    workload::TpccParams p;
    p.txns = txns;
    Row("TPCC", GenerateTpccHistory(p));
  }
  {
    workload::RubisParams p;
    p.txns = txns;
    Row("RUBiS", GenerateRubisHistory(p));
  }
  {
    workload::TwitterParams p;
    p.txns = txns;
    Row("Twitter", GenerateTwitterHistory(p));
  }
  return 0;
}
