// Fig. 6 (and appendix Fig. 22): Chronos runtime under varying GC
// frequencies and workload parameters — #txns, #ops/txn, #keys, key
// distribution, #sessions, read proportion.
#include "bench_util.h"
#include "core/chronos.h"

using namespace chronos;

namespace {

double RunChronos(History h, uint64_t gc_every) {
  CountingSink sink;
  Chronos checker(ChronosOptions{.gc_every_n_txns = gc_every}, &sink);
  CheckStats stats = checker.Check(std::move(h));
  return stats.sort_seconds + stats.check_seconds + stats.gc_seconds;
}

void Row(const char* label, const History& h,
         const std::vector<uint64_t>& gcs) {
  std::printf("%14s", label);
  for (uint64_t gc : gcs) {
    std::printf(" %9.3fs", RunChronos(h, gc));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  uint64_t scale = bench::ScaleFactor();
  // GC frequencies scaled from the paper's gc-10k/20k/50k/inf.
  std::vector<uint64_t> gcs = {1000 * scale, 2000 * scale, 5000 * scale, 0};

  bench::Header("Fig 6", "Chronos runtime x GC frequency x parameters");
  std::printf("%14s %10s %10s %10s %10s\n", "param", "gc-1k", "gc-2k",
              "gc-5k", "gc-inf");

  std::printf("-- (a) #txns --\n");
  for (uint64_t n : {10000, 20000, 50000}) {
    Row(std::to_string(n * scale).c_str(),
        bench::DefaultHistory(n * scale), gcs);
  }
  std::printf("-- (b) #ops/txn (20k txns) --\n");
  for (uint32_t ops : {5, 15, 30, 50, 100}) {
    Row(std::to_string(ops).c_str(),
        bench::DefaultHistory(20000 * scale, ops), gcs);
  }
  std::printf("-- (c) #keys (20k txns) --\n");
  for (uint64_t keys : {200, 500, 1000, 2000, 5000}) {
    Row(std::to_string(keys).c_str(),
        bench::DefaultHistory(20000 * scale, 15, keys), gcs);
  }
  std::printf("-- (d) key distribution (20k txns) --\n");
  Row("uniform",
      bench::DefaultHistory(20000 * scale, 15, 1000, 50,
                            workload::WorkloadParams::KeyDist::kUniform),
      gcs);
  Row("zipfian",
      bench::DefaultHistory(20000 * scale, 15, 1000, 50,
                            workload::WorkloadParams::KeyDist::kZipf),
      gcs);
  Row("hotspot",
      bench::DefaultHistory(20000 * scale, 15, 1000, 50,
                            workload::WorkloadParams::KeyDist::kHotspot),
      gcs);
  std::printf("-- (Fig 22a) #sessions (20k txns) --\n");
  for (uint32_t sess : {10, 20, 50, 100, 200}) {
    Row(std::to_string(sess).c_str(),
        bench::DefaultHistory(20000 * scale, 15, 1000, sess), gcs);
  }
  std::printf("-- (Fig 22b) read proportion (20k txns) --\n");
  for (int reads : {10, 30, 50, 70, 90}) {
    Row((std::to_string(reads) + "%").c_str(),
        bench::DefaultHistory(20000 * scale, 15, 1000, 50,
                              workload::WorkloadParams::KeyDist::kZipf,
                              reads / 100.0),
        gcs);
  }
  return 0;
}
