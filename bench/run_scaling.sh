#!/usr/bin/env bash
# Multicore scaling artifact: BM_ShardedAionPerTxn across shard counts
# {1,2,4,8} in a Release build, emitting BENCH_scaling.json plus the
# computed speedup of 4 shards over 1.
#
# On a machine with >= 4 cores the script FAILS (exit 1) when that
# speedup is below CHRONOS_SCALING_MIN (default 2.0) — this is the CI
# gate that keeps the sharded pipeline an actual parallel speedup, not
# just a coordination tax. With fewer cores the ratio is printed for the
# record only (the pipeline cannot scale past the core count).
#
# Usage: bench/run_scaling.sh [build_dir] [output_json]
#   build_dir    defaults to ./build-bench (configured+built Release here
#                if missing; non-Release dirs are refused)
#   output_json  defaults to ./BENCH_scaling.json
set -euo pipefail

BUILD_DIR="${1:-build-bench}"
OUT="${2:-BENCH_scaling.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.5}"
MIN_SPEEDUP="${CHRONOS_SCALING_MIN:-2.0}"

if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  echo "configuring Release build dir $BUILD_DIR" >&2
  cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
        -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "error: $BUILD_DIR has CMAKE_BUILD_TYPE='$BUILD_TYPE', not Release;" \
       "scaling numbers from it would be meaningless" >&2
  exit 1
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_micro >/dev/null

"$BUILD_DIR/bench_micro" \
    --benchmark_filter='BM_ShardedAionPerTxn' \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json >"$OUT"

python3 - "$OUT" "$MIN_SPEEDUP" <<'EOF'
import json, os, sys

d = json.load(open(sys.argv[1]))
need = float(sys.argv[2])
ips = {}
for b in d.get("benchmarks", []):
    if "items_per_second" not in b:
        continue
    # Names look like BM_ShardedAionPerTxn/shards:4.
    shards = int(b["name"].rsplit(":", 1)[1])
    ips[shards] = b["items_per_second"]
if 1 not in ips:
    print("error: no 1-shard baseline in the benchmark output", file=sys.stderr)
    sys.exit(1)

print(f"wrote {sys.argv[1]}:")
for s in sorted(ips):
    print(f"  shards={s:<2} {ips[s]:>14,.0f} items/s   "
          f"speedup={ips[s] / ips[1]:5.2f}x")

cores = os.cpu_count() or 1
speedup = ips[4] / ips[1] if 4 in ips else 0.0
if cores >= 4:
    if speedup < need:
        print(f"FAIL: 4-shard speedup {speedup:.2f}x < required "
              f"{need:.2f}x on {cores} cores", file=sys.stderr)
        sys.exit(1)
    print(f"OK: 4-shard speedup {speedup:.2f}x >= {need:.2f}x "
          f"(cores={cores})")
else:
    print(f"note: only {cores} core(s); 4-shard speedup {speedup:.2f}x "
          f"recorded, gate ({need:.2f}x) not enforced")
EOF
