// Fig. 9: Chronos stage decomposition under varying GC frequencies for a
// large history: frequent GC becomes the dominant stage; its total cost
// falls as the frequency decreases.
#include "bench_util.h"
#include "core/chronos.h"

using namespace chronos;

int main() {
  uint64_t scale = bench::ScaleFactor();
  uint64_t txns = 100000 * scale;  // paper: 1M
  bench::Header("Fig 9", "decomposition x GC frequency");
  History h = bench::DefaultHistory(txns);
  auto [load_s, loaded] = bench::SaveAndLoad(h, "fig9");
  std::printf("history: %llu txns, loading %.3fs\n",
              static_cast<unsigned long long>(txns), load_s);
  std::printf("%10s %11s %11s %11s %8s\n", "txns/gc", "sorting", "checking",
              "GC", "passes");
  for (uint64_t gc : {1000 * scale, 2000 * scale, 5000 * scale,
                      10000 * scale, 20000 * scale, 50000 * scale,
                      uint64_t{0}}) {
    CountingSink sink;
    Chronos checker(ChronosOptions{.gc_every_n_txns = gc}, &sink);
    History copy = h;
    CheckStats stats = checker.Check(std::move(copy));
    std::printf("%10s %10.4fs %10.3fs %10.3fs %8zu\n",
                gc == 0 ? "inf" : std::to_string(gc).c_str(),
                stats.sort_seconds, stats.check_seconds, stats.gc_seconds,
                stats.gc_passes);
  }
  return 0;
}
