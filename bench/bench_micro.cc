// Micro/ablation benchmarks (google-benchmark): per-transaction checker
// cost and the data-structure choices DESIGN.md calls out — the
// augmented interval tree vs brute-force overlap scans, per-key version
// maps vs linear scans, and timeline insertion.
#include <benchmark/benchmark.h>

#include <random>

#include "core/aion.h"
#include "core/chronos.h"
#include "core/event_timeline.h"
#include "core/interval_tree.h"
#include "core/versioned_kv.h"
#include "workload/generator.h"

namespace chronos {
namespace {

History MakeHistory(uint64_t txns) {
  workload::WorkloadParams p;
  p.sessions = 24;
  p.txns = txns;
  p.ops_per_txn = 8;
  p.keys = 500;
  return workload::GenerateDefaultHistory(p);
}

void BM_ChronosPerTxn(benchmark::State& state) {
  History h = MakeHistory(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    CountingSink sink;
    History copy = h;
    Chronos checker(ChronosOptions{}, &sink);
    benchmark::DoNotOptimize(checker.Check(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(h.txns.size()));
}
BENCHMARK(BM_ChronosPerTxn)->Arg(2000)->Arg(10000);

void BM_AionPerTxn(benchmark::State& state) {
  History h = MakeHistory(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    CountingSink sink;
    Aion::Options opt;
    opt.ext_timeout_ms = 50;
    Aion aion(opt, &sink);
    uint64_t now = 0;
    for (const Transaction& t : h.txns) aion.OnTransaction(t, ++now);
    aion.Finish();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(h.txns.size()));
}
BENCHMARK(BM_AionPerTxn)->Arg(2000)->Arg(10000);

void BM_IntervalTreeOverlap(benchmark::State& state) {
  IntervalTree tree;
  std::mt19937_64 rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    Timestamp s = rng() % 100000;
    tree.Insert({s, s + rng() % 100, static_cast<TxnId>(i)});
  }
  std::vector<WriteInterval> out;
  for (auto _ : state) {
    out.clear();
    Timestamp lo = rng() % 100000;
    tree.QueryOverlap(lo, lo + 50, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_IntervalTreeOverlap)->Arg(1000)->Arg(100000);

void BM_BruteForceOverlap(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::vector<WriteInterval> ivs;
  for (int i = 0; i < state.range(0); ++i) {
    Timestamp s = rng() % 100000;
    ivs.push_back({s, s + rng() % 100, static_cast<TxnId>(i)});
  }
  std::vector<WriteInterval> out;
  for (auto _ : state) {
    out.clear();
    Timestamp lo = rng() % 100000, hi = lo + 50;
    for (const auto& iv : ivs) {
      if (iv.start <= hi && iv.end >= lo) out.push_back(iv);
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BruteForceOverlap)->Arg(1000)->Arg(100000);

void BM_VersionedKvLookup(benchmark::State& state) {
  VersionedKv kv;
  std::mt19937_64 rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    kv.Put(i % 100, static_cast<Timestamp>(i + 1), i, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kv.GetAtOrBefore(rng() % 100, rng() % state.range(0)));
  }
}
BENCHMARK(BM_VersionedKvLookup)->Arg(10000)->Arg(1000000);

void BM_TimelineInsert(benchmark::State& state) {
  std::mt19937_64 rng(1);
  EventTimeline tl;
  TxnId tid = 0;
  for (auto _ : state) {
    Transaction t;
    t.tid = ++tid;
    t.start_ts = rng();
    t.commit_ts = t.start_ts + 1;
    benchmark::DoNotOptimize(tl.Insert(t));
  }
}
BENCHMARK(BM_TimelineInsert);

}  // namespace
}  // namespace chronos

BENCHMARK_MAIN();
