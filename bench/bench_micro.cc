// Micro/ablation benchmarks (google-benchmark): per-transaction checker
// cost and the data-structure choices DESIGN.md calls out — the
// augmented interval tree vs brute-force overlap scans, per-key version
// maps vs linear scans, and timeline insertion.
#include <benchmark/benchmark.h>

#include <random>

#include "core/aion.h"
#include "core/chronos.h"
#include "core/event_timeline.h"
#include "core/interval_tree.h"
#include "core/versioned_kv.h"
#include "online/sharded_aion.h"
#include "ref_map_kv.h"
#include "workload/generator.h"

namespace chronos {
namespace {

History MakeHistory(uint64_t txns) {
  workload::WorkloadParams p;
  p.sessions = 24;
  p.txns = txns;
  p.ops_per_txn = 8;
  p.keys = 500;
  return workload::GenerateDefaultHistory(p);
}

void BM_ChronosPerTxn(benchmark::State& state) {
  History h = MakeHistory(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    CountingSink sink;
    History copy = h;
    Chronos checker(ChronosOptions{}, &sink);
    benchmark::DoNotOptimize(checker.Check(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(h.txns.size()));
}
BENCHMARK(BM_ChronosPerTxn)->Arg(2000)->Arg(10000);

void BM_AionPerTxn(benchmark::State& state) {
  History h = MakeHistory(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    CountingSink sink;
    Aion::Options opt;
    opt.ext_timeout_ms = 50;
    Aion aion(opt, &sink);
    uint64_t now = 0;
    for (const Transaction& t : h.txns) aion.OnTransaction(t, ++now);
    aion.Finish();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(h.txns.size()));
}
BENCHMARK(BM_AionPerTxn)->Arg(2000)->Arg(10000);

// The key-partitioned checker at the 10k-txn size of BM_AionPerTxn.
// items/s vs BM_AionPerTxn/10000 is the sharding speedup (needs >= the
// shard count in cores to show; on a 1-core runner the series measures
// coordination overhead instead).
void BM_ShardedAionPerTxn(benchmark::State& state) {
  History h = MakeHistory(10000);
  const size_t shards = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CountingSink sink;
    Aion::Options opt;
    opt.ext_timeout_ms = 50;
    online::ShardedAion aion(opt, shards, &sink);
    uint64_t now = 0;
    for (const Transaction& t : h.txns) aion.OnTransaction(t, ++now);
    aion.Finish();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(h.txns.size()));
}
BENCHMARK(BM_ShardedAionPerTxn)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_IntervalTreeOverlap(benchmark::State& state) {
  IntervalTree tree;
  std::mt19937_64 rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    Timestamp s = rng() % 100000;
    tree.Insert({s, s + rng() % 100, static_cast<TxnId>(i)});
  }
  std::vector<WriteInterval> out;
  for (auto _ : state) {
    out.clear();
    Timestamp lo = rng() % 100000;
    tree.QueryOverlap(lo, lo + 50, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_IntervalTreeOverlap)->Arg(1000)->Arg(100000);

void BM_BruteForceOverlap(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::vector<WriteInterval> ivs;
  for (int i = 0; i < state.range(0); ++i) {
    Timestamp s = rng() % 100000;
    ivs.push_back({s, s + rng() % 100, static_cast<TxnId>(i)});
  }
  std::vector<WriteInterval> out;
  for (auto _ : state) {
    out.clear();
    Timestamp lo = rng() % 100000, hi = lo + 50;
    for (const auto& iv : ivs) {
      if (iv.start <= hi && iv.end >= lo) out.push_back(iv);
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BruteForceOverlap)->Arg(1000)->Arg(100000);

void BM_VersionedKvLookup(benchmark::State& state) {
  VersionedKv kv;
  std::mt19937_64 rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    kv.Put(i % 100, static_cast<Timestamp>(i + 1), i, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kv.GetAtOrBefore(rng() % 100, rng() % state.range(0)));
  }
}
BENCHMARK(BM_VersionedKvLookup)->Arg(10000)->Arg(1000000);

// Old-vs-new: the seed's per-key std::map frontier (ref_map_kv.h) against
// the flat chains on the same access pattern.
void BM_MapKvLookup(benchmark::State& state) {
  bench::RefMapKv kv;
  std::mt19937_64 rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    kv.Put(i % 100, static_cast<Timestamp>(i + 1), i, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kv.GetAtOrBefore(rng() % 100, rng() % state.range(0)));
  }
}
BENCHMARK(BM_MapKvLookup)->Arg(10000)->Arg(1000000);

void BM_VersionedKvPut(benchmark::State& state) {
  for (auto _ : state) {
    VersionedKv kv;
    for (int i = 0; i < state.range(0); ++i) {
      kv.Put(i % 100, static_cast<Timestamp>(i + 1), i, i);
    }
    benchmark::DoNotOptimize(kv.TotalVersions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VersionedKvPut)->Arg(100000);

void BM_MapKvPut(benchmark::State& state) {
  for (auto _ : state) {
    bench::RefMapKv kv;
    for (int i = 0; i < state.range(0); ++i) {
      kv.Put(i % 100, static_cast<Timestamp>(i + 1), i, i);
    }
    benchmark::DoNotOptimize(kv.TotalVersions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MapKvPut)->Arg(100000);

// Streaming GC with a sparse dirty set (the paper's frequent-GC mode,
// Fig. 6/9 gc-10k): state.range(0) keys stay clean while one hot key per
// pass accumulates collectible versions. Each iteration is one put
// burst plus one GC pass; the flat KV's trigger heap touches only the
// dirty key, the map baseline re-scans every key per pass. items/sec ==
// GC passes per second.
template <typename Kv>
void StreamingSparseGc(benchmark::State& state, Kv* kv) {
  const int num_keys = static_cast<int>(state.range(0));
  for (int k = 0; k < num_keys; ++k) {
    kv->Put(k, 1, 1, 1);  // single clean version: never collectible
  }
  Timestamp ts = 10;
  uint64_t i = 0;
  for (auto _ : state) {
    Key hot = i % 100;
    kv->Put(hot, ts, 1, 1);
    kv->Put(hot, ts + 1, 2, 2);
    benchmark::DoNotOptimize(kv->CollectUpTo(ts + 2));
    ts += 10;
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_VersionedKvGcSparse(benchmark::State& state) {
  VersionedKv kv;
  StreamingSparseGc(state, &kv);
}
BENCHMARK(BM_VersionedKvGcSparse)->Arg(10000)->Arg(100000);

void BM_MapKvGcSparse(benchmark::State& state) {
  bench::RefMapKv kv;
  StreamingSparseGc(state, &kv);
}
BENCHMARK(BM_MapKvGcSparse)->Arg(10000)->Arg(100000);

void BM_AionFootprint(benchmark::State& state) {
  History h = MakeHistory(5000);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 50;
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : h.txns) aion.OnTransaction(t, ++now);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aion.GetFootprint());
  }
  aion.Finish();
}
BENCHMARK(BM_AionFootprint);

void BM_TimelineInsert(benchmark::State& state) {
  std::mt19937_64 rng(1);
  EventTimeline tl;
  TxnId tid = 0;
  for (auto _ : state) {
    Transaction t;
    t.tid = ++tid;
    t.start_ts = rng();
    t.commit_ts = t.start_ts + 1;
    benchmark::DoNotOptimize(tl.Insert(t));
  }
}
BENCHMARK(BM_TimelineInsert);

}  // namespace
}  // namespace chronos

BENCHMARK_MAIN();
