// Fig. 15: database throughput with and without history collection. The
// paper reports a ~5% collection overhead.
#include "bench_util.h"
#include "db/database.h"

using namespace chronos;

int main() {
  uint64_t scale = bench::ScaleFactor();
  bench::Header("Fig 15", "DB throughput with/without history collection");
  std::printf("%10s %14s %14s %10s\n", "#ops/txn", "w/o collecting",
              "w collecting", "overhead");
  for (uint32_t ops : {5, 15, 30, 50, 100}) {
    workload::WorkloadParams p;
    p.sessions = 24;
    p.txns = 20000 * scale / ops;  // keep per-row work comparable
    p.ops_per_txn = ops;
    p.keys = 1000;

    db::DbConfig without;
    without.record_history = false;
    db::Database db1(without);
    double tps_without = workload::RunThreadedWorkload(&db1, p, 8);

    db::DbConfig with;
    db::Database db2(with);
    double tps_with = workload::RunThreadedWorkload(&db2, p, 8);

    std::printf("%10u %11.0f TPS %11.0f TPS %9.1f%%\n", ops, tps_without,
                tps_with,
                tps_without > 0
                    ? 100.0 * (tps_without - tps_with) / tps_without
                    : 0.0);
  }
  return 0;
}
