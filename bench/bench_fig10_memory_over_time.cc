// Fig. 10: Chronos memory usage over time while checking a 100K-txn
// history under different GC frequencies — rises during loading, then a
// sawtooth decline during checking as GC releases processed transactions.
#include <atomic>
#include <thread>

#include "bench_util.h"
#include "core/chronos.h"

using namespace chronos;

int main() {
  uint64_t scale = bench::ScaleFactor();
  uint64_t txns = 100000 * scale;
  bench::Header("Fig 10", "Chronos memory over time");
  for (uint64_t gc : {2000 * scale, 5000 * scale, 20000 * scale,
                      uint64_t{0}}) {
    History h = bench::DefaultHistory(txns);
    std::atomic<bool> done{false};
    std::vector<std::pair<double, size_t>> samples;
    std::thread sampler([&] {
      Stopwatch sw;
      while (!done.load()) {
        samples.emplace_back(sw.Seconds(), online::ReadRssBytes());
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    CountingSink sink;
    Chronos checker(ChronosOptions{.gc_every_n_txns = gc, .trim_on_gc = true},
                    &sink);
    checker.Check(std::move(h));
    done.store(true);
    sampler.join();
    std::printf("-- gc-%s: %zu samples --\n",
                gc == 0 ? "inf" : std::to_string(gc).c_str(), samples.size());
    size_t step = std::max<size_t>(1, samples.size() / 12);
    for (size_t i = 0; i < samples.size(); i += step) {
      std::printf("  t=%6.2fs rss=%7.1fMB\n", samples[i].first,
                  samples[i].second / 1048576.0);
    }
  }
  return 0;
}
