// Fig. 7: maximum memory usage of the checkers under varying #txns and
// key distribution. Peak RSS delta is sampled during each run (allocator
// reuse across runs makes the absolute numbers conservative, so the
// internal structure sizes are printed alongside).
#include "baselines/elle.h"
#include "baselines/emme.h"
#include "bench_util.h"
#include "core/chronos.h"

using namespace chronos;

namespace {

void Compare(const History& h, const char* label) {
  auto [elle_s, elle_rss] = bench::TimedWithPeakRss([&] {
    CountingSink s;
    baselines::CheckElleKv(h, baselines::CheckLevel::kSi, &s);
  });
  auto [emme_s, emme_rss] = bench::TimedWithPeakRss([&] {
    CountingSink s;
    baselines::CheckEmmeSi(h, &s);
  });
  auto [chronos_s, chronos_rss] = bench::TimedWithPeakRss([&] {
    CountingSink s;
    Chronos checker(ChronosOptions{.gc_every_n_txns = 2000}, &s);
    History copy = h;
    checker.Check(std::move(copy));
  });
  (void)elle_s;
  (void)emme_s;
  (void)chronos_s;
  CountingSink s;
  baselines::BaselineResult emme_edges = baselines::CheckEmmeSi(h, &s);
  std::printf("%12s %10.1fMB %10.1fMB %10.1fMB   (Emme graph edges: %zu)\n",
              label, elle_rss / 1048576.0, emme_rss / 1048576.0,
              chronos_rss / 1048576.0, emme_edges.graph_edges);
}

}  // namespace

int main() {
  uint64_t scale = bench::ScaleFactor();
  bench::Header("Fig 7", "peak memory delta: ElleKV vs Emme-SI vs Chronos");
  std::printf("%12s %12s %12s %12s\n", "config", "ElleKV", "Emme-SI",
              "Chronos");
  std::printf("-- (a) #txns --\n");
  for (uint64_t n : {10000, 20000, 50000}) {
    Compare(bench::DefaultHistory(n * scale),
            std::to_string(n * scale).c_str());
  }
  std::printf("-- (b) key distribution (20k txns) --\n");
  Compare(bench::DefaultHistory(20000 * scale, 15, 1000, 50,
                                workload::WorkloadParams::KeyDist::kUniform),
          "uniform");
  Compare(bench::DefaultHistory(20000 * scale, 15, 1000, 50,
                                workload::WorkloadParams::KeyDist::kZipf),
          "zipfian");
  Compare(bench::DefaultHistory(20000 * scale, 15, 1000, 50,
                                workload::WorkloadParams::KeyDist::kHotspot),
          "hotspot");
  return 0;
}
