// Fig. 13: flip-flop statistics under injected delays N(100, 10^2) —
// (a) flip counts per transaction and per (txn, key) pair;
// (b) time to rectify transient false positives/negatives.
#include "bench_util.h"
#include "core/aion.h"
#include "online/pipeline.h"

using namespace chronos;

int main() {
  uint64_t scale = bench::ScaleFactor();
  bench::Header("Fig 13", "flip-flops under delays N(100,10^2)");
  History h = bench::DefaultHistory(10000 * scale);
  hist::CollectorParams cp;
  cp.delay_mean_ms = 100;
  cp.delay_stddev_ms = 10;
  auto stream = hist::ScheduleDelivery(h, cp);

  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 5000;  // the paper's conservative 5 s
  Aion checker(opt, &sink);
  online::RunVirtualTime(&checker, stream);
  const FlipFlopStats& fs = checker.flip_stats();

  std::printf("(a) flip-flop counts\n");
  std::printf("%10s %10s %10s\n", "flips", "txn", "(txn,key)");
  auto txn_hist = fs.txn_flip_histogram();
  auto pair_hist = fs.pair_flip_histogram();
  const char* buckets[] = {"1", "2", "3", "4+"};
  for (size_t i = 0; i < 4; ++i) {
    std::printf("%10s %10llu %10llu\n", buckets[i],
                static_cast<unsigned long long>(txn_hist[i]),
                static_cast<unsigned long long>(pair_hist[i]));
  }
  std::printf("txns with flip-flops: %llu / %zu (%.1f%%)\n",
              static_cast<unsigned long long>(fs.txns_with_flips()),
              h.txns.size(),
              100.0 * fs.txns_with_flips() / h.txns.size());

  std::printf("(b) rectification latency (virtual ms)\n");
  auto lat = fs.latency_histogram();
  uint64_t total = 0;
  for (auto c : lat) total += c;
  for (size_t i = 0; i < FlipFlopStats::kNumLatencyBuckets; ++i) {
    std::printf("%10s %10llu (%.1f%%)\n", FlipFlopStats::LatencyBucketName(i),
                static_cast<unsigned long long>(lat[i]),
                total > 0 ? 100.0 * lat[i] / total : 0.0);
  }
  return 0;
}
