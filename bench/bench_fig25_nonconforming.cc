// Fig. 25 (+ Sec. VI-B): online SER checking of a non-conforming history
// (generated under SI, so write skew and commit-order read anomalies are
// present). AION-SER reports every violation and keeps going at full
// speed; Cobra terminates at the first one. The violation count is
// cross-validated against CHRONOS-SER.
#include "baselines/cobra.h"
#include "bench_util.h"
#include "core/aion.h"
#include "core/chronos.h"
#include "online/pipeline.h"

using namespace chronos;

int main() {
  uint64_t scale = bench::ScaleFactor();
  bench::Header("Fig 25", "Aion-SER on a non-conforming (SI-level) history");
  // SI database, low read ratio: plenty of SER anomalies.
  workload::WorkloadParams p;
  p.sessions = 24;
  p.ops_per_txn = 8;
  p.txns = 50000 * scale;
  p.read_ratio = 0.5;
  History h = workload::GenerateDefaultHistory(p);

  CountingSink ref;
  ChronosSer::CheckHistory(h, &ref);
  std::printf("Chronos-SER ground truth: %zu violations\n",
              static_cast<size_t>(ref.total()));

  hist::CollectorParams cp;
  cp.delay_mean_ms = 2;
  cp.delay_stddev_ms = 1;
  auto stream = hist::ScheduleDelivery(h, cp);

  for (auto gc : {online::GcPolicy::None(),
                  online::GcPolicy::Threshold(20000, 10000),
                  online::GcPolicy::HardCap(5000)}) {
    CountingSink sink;
    Aion::Options opt;
    opt.mode = Aion::Mode::kSer;
    opt.ext_timeout_ms = 50;
    Aion checker(opt, &sink);
    online::RunResult r = online::RunMaxRate(&checker, stream, gc);
    const char* name = gc.mode == online::GcPolicy::Mode::kNone
                           ? "Aion-SER-no-gc"
                           : gc.mode == online::GcPolicy::Mode::kThreshold
                                 ? "Aion-SER-checking-gc"
                                 : "Aion-SER-full-gc";
    std::printf("%22s  avg=%8.0f TPS  violations=%zu (all reported)\n", name,
                r.AvgTps(), static_cast<size_t>(sink.total()));
  }

  auto cobra_stream = std::vector<hist::CollectedTxn>(
      stream.begin(),
      stream.begin() +
          std::min<size_t>(stream.size(),
                           std::min<uint64_t>(10000 * scale, 24000)));
  CountingSink cobra_sink;
  baselines::CobraParams cparams;
  baselines::CobraRun run =
      baselines::RunCobraSer(cobra_stream, cparams, &cobra_sink);
  std::printf("%22s  processed %llu/%zu before terminating at first "
              "violation\n",
              "Cobra", static_cast<unsigned long long>(run.processed),
              cobra_stream.size());
  return 0;
}
