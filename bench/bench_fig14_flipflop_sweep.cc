// Fig. 14 (+ appendix Figs. 17-21): flip-flop counts as functions of the
// delay mean mu and standard deviation sigma. The mean barely matters
// (all transactions shift together); the deviation drives reordering and
// hence flip-flops.
#include "bench_util.h"
#include "core/aion.h"
#include "online/pipeline.h"

using namespace chronos;

namespace {

void RunOne(const History& h, double mu, double sigma) {
  hist::CollectorParams cp;
  cp.delay_mean_ms = mu;
  cp.delay_stddev_ms = sigma;
  cp.seed = 5;
  auto stream = hist::ScheduleDelivery(h, cp);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 5000;
  Aion checker(opt, &sink);
  online::RunVirtualTime(&checker, stream);
  const FlipFlopStats& fs = checker.flip_stats();
  auto lat = fs.latency_histogram();
  uint64_t fast = lat[0] + lat[1] + lat[2] + lat[3];
  uint64_t total = 0;
  for (auto c : lat) total += c;
  std::printf("  N(%3.0f,%2.0f^2): (txn,key) flips=%-6llu txns=%-6llu "
              "rectified<99ms=%.1f%%\n",
              mu, sigma, static_cast<unsigned long long>(fs.total_flips()),
              static_cast<unsigned long long>(fs.txns_with_flips()),
              total > 0 ? 100.0 * fast / total : 100.0);
}

}  // namespace

int main() {
  uint64_t scale = bench::ScaleFactor();
  History h = bench::DefaultHistory(10000 * scale);

  bench::Header("Fig 14a / 17 / 19 / 20", "flip-flops vs delay mean mu");
  for (double mu : {50, 100, 200, 300, 400, 500}) RunOne(h, mu, 10);

  bench::Header("Fig 14b / 18 / 19 / 21", "flip-flops vs delay stddev sigma");
  for (double sigma : {1, 10, 20, 30, 40, 50}) RunOne(h, 100, sigma);
  return 0;
}
