// Fig. 8: Chronos runtime decomposition (loading / sorting / checking)
// without GC, under varying #txns and #ops/txn. Loading dominates; both
// loading and checking grow linearly.
#include "bench_util.h"
#include "core/chronos.h"

using namespace chronos;

namespace {

void Row(const char* label, const History& h, const std::string& name) {
  auto [load_s, loaded] = bench::SaveAndLoad(h, name);
  CountingSink sink;
  Chronos checker(ChronosOptions{}, &sink);
  CheckStats stats = checker.Check(std::move(loaded));
  std::printf("%10s %10.3fs %10.4fs %10.3fs\n", label, load_s,
              stats.sort_seconds, stats.check_seconds);
}

}  // namespace

int main() {
  uint64_t scale = bench::ScaleFactor();
  bench::Header("Fig 8", "Chronos stage decomposition (no GC)");
  std::printf("%10s %11s %11s %11s\n", "config", "loading", "sorting",
              "checking");
  std::printf("-- (a) #txns --\n");
  for (uint64_t n : {5000, 10000, 50000, 100000}) {
    Row(std::to_string(n * scale).c_str(), bench::DefaultHistory(n * scale),
        "fig8a");
  }
  std::printf("-- (b) #ops/txn (20k txns) --\n");
  for (uint32_t ops : {5, 15, 30, 50, 100}) {
    Row(std::to_string(ops).c_str(),
        bench::DefaultHistory(20000 * scale, ops), "fig8b");
  }
  return 0;
}
