// Fig. 4: runtime comparison of all five SI checkers on key-value
// histories with up to a few thousand transactions. PolySI and Viper grow
// super-linearly; Chronos / ElleKV / Emme-SI stay flat at this scale.
#include "baselines/elle.h"
#include "baselines/emme.h"
#include "baselines/polysi.h"
#include "bench_util.h"
#include "core/chronos.h"

using namespace chronos;

int main() {
  bench::Header("Fig 4", "checker runtime vs #txns (key-value histories)");
  std::printf("%8s %10s %10s %10s %10s %10s\n", "#txns", "PolySI", "Viper",
              "ElleKV", "Emme-SI", "Chronos");
  uint64_t scale = bench::ScaleFactor();
  for (uint64_t n : {200, 500, 1000, 2000, 3000}) {
    uint64_t txns = n * scale;
    History h = bench::DefaultHistory(txns);

    CountingSink s1;
    Stopwatch sw;
    baselines::CheckPolySi(h, &s1);
    double polysi = sw.Seconds();

    CountingSink s2;
    sw.Reset();
    baselines::CheckViper(h, &s2);
    double viper = sw.Seconds();

    CountingSink s3;
    baselines::BaselineResult elle =
        baselines::CheckElleKv(h, baselines::CheckLevel::kSi, &s3);

    CountingSink s4;
    baselines::BaselineResult emme = baselines::CheckEmmeSi(h, &s4);

    CountingSink s5;
    CheckStats chronos = Chronos::CheckHistory(h, &s5);

    std::printf("%8llu %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs\n",
                static_cast<unsigned long long>(txns), polysi, viper,
                elle.seconds, emme.seconds,
                chronos.sort_seconds + chronos.check_seconds);
  }
  return 0;
}
