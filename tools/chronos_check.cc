// chronos_check: check a history file for isolation violations.
//
//   chronos_check --in=h.hist [--level=si|ser|list]
//                 [--online] [--timeout-ms=5000] [--spill=/tmp/aion]
//                 [--delay-mean=0 --delay-stddev=0]   (online only)
//                 [--threaded] [--batch=500]          (online only)
//                 [--shards=1] [--pre-stage-workers=2] (online only)
//                 [--checkpoint-dir=DIR] [--checkpoint-every=5000]
//                 [--resume] [--memory-ceiling=BYTES] (online only)
//                 [--gc-every=0] [--gc-target=0]
//                 [--stats] [--max-report=20] [--help]
//
// Offline mode runs CHRONOS (--level=list: ChronosList); --online
// replays the history through AION via the collector (delays model
// asynchrony). AION understands list histories natively, so --online
// works for every level (--level=list selects the SI read-view rule,
// matching the list workloads). --shards=N checks with the
// key-partitioned ShardedAion (N worker threads); violations are then
// reported in deterministic (commit_ts, txn id) order.
//
// --checkpoint-dir enables the crash-safe durable driver
// (online/checkpoint.h): every arrival is WAL-logged before it is
// checked, checkpoints are cut every --checkpoint-every arrivals, and a
// killed run resumes verdict-identical with --resume (same --in and
// options). --memory-ceiling forces checkpoint + GC + list-buffer
// shedding whenever the checker footprint exceeds the ceiling.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "flags.h"

#include "core/aion.h"
#include "core/chronos.h"
#include "core/chronos_list.h"
#include "hist/codec.h"
#include "hist/collector.h"
#include "core/online_checker.h"
#include "online/checkpoint.h"
#include "online/metrics.h"
#include "online/pipeline.h"
#include "online/recovery.h"
#include "online/sharded_aion.h"

using namespace chronos;

namespace {

using namespace chronos::tools;

void PrintReport(const CountingSink& sink, size_t max_report) {
  std::printf("violations: total=%zu SESSION=%zu INT=%zu EXT=%zu "
              "NOCONFLICT=%zu TS-ORDER=%zu TS-DUP=%zu\n",
              sink.total(), sink.count(ViolationType::kSession),
              sink.count(ViolationType::kInt), sink.count(ViolationType::kExt),
              sink.count(ViolationType::kNoConflict),
              sink.count(ViolationType::kTsOrder),
              sink.count(ViolationType::kTsDuplicate));
  size_t shown = 0;
  for (const Violation& v : sink.first()) {
    if (++shown > max_report) break;
    std::printf("  %s\n", v.ToString().c_str());
  }
}

void PrintCheckerStats(const CheckerStats& s) {
  std::printf("stats: txns=%llu ext_rechecks=%llu noconflict_checks=%llu "
              "gc_passes=%llu spill_reloads=%llu unsafe_wm=%llu "
              "unsafe_horizon=%llu corrupt_epochs=%llu\n",
              static_cast<unsigned long long>(s.txns_processed),
              static_cast<unsigned long long>(s.ext_rechecks),
              static_cast<unsigned long long>(s.noconflict_checks),
              static_cast<unsigned long long>(s.gc_passes),
              static_cast<unsigned long long>(s.spill_reloads),
              static_cast<unsigned long long>(s.unsafe_below_watermark),
              static_cast<unsigned long long>(s.unsafe_below_horizon),
              static_cast<unsigned long long>(s.corrupt_spill_epochs));
}

void PrintUsage(FILE* out) {
  std::fprintf(out,
      "usage: chronos_check --in=FILE [options]\n"
      "\n"
      "  --in=FILE             history file (hist/codec.h text format)\n"
      "  --level=si|ser|list   run-level default isolation (default si);\n"
      "                        rc/ra are per-transaction only (iso= tags\n"
      "                        in the history). A history with iso= tags\n"
      "                        dispatches offline to the mixed-level\n"
      "                        checker; untagged transactions follow\n"
      "                        --level\n"
      "  --max-report=N        violations to print (default 20)\n"
      "  --gc-every=N          offline: GC every N txns; online durable:\n"
      "                        GcToLiveTarget cadence in arrivals (0: off)\n"
      "\n"
      "online mode (--online):\n"
      "  --timeout-ms=N        EXT finalization timeout (default 5000)\n"
      "  --spill=DIR           GC spill store directory\n"
      "  --delay-mean=N --delay-stddev=N   collector delay model (ms)\n"
      "  --threaded            collector thread + batched delivery\n"
      "  --batch=N             delivery batch size (default 500)\n"
      "  --shards=N            key-partitioned ShardedAion workers\n"
      "  --pre-stage-workers=N classifier threads ahead of the sharded\n"
      "                        coordinator (default 2; verdict-neutral)\n"
      "  --stats               print processing counters after the check\n"
      "                        (sharded: plus pipeline ring health)\n"
      "\n"
      "crash-safe durable mode (--online, implies ShardedAion):\n"
      "  --checkpoint-dir=DIR  WAL + checkpoints here; enables durability\n"
      "  --checkpoint-every=N  checkpoint cadence in arrivals (default 5000)\n"
      "  --resume              recover from DIR, skip replayed arrivals,\n"
      "                        continue with the rest of --in\n"
      "  --memory-ceiling=B    footprint bound in bytes: exceeding it forces\n"
      "                        checkpoint + GC + list-buffer shedding\n"
      "                        (degraded reads counted, never mis-reported)\n"
      "  --gc-target=N         live-txn target for --gc-every GC (default 0)\n"
      "  (spill defaults to DIR/spill so recovery finds the epoch files)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--help")) {
    PrintUsage(stdout);
    return 0;
  }
  const char* in = FlagValue(argc, argv, "--in");
  if (!in) {
    PrintUsage(stderr);
    return 2;
  }
  std::string level =
      FlagValue(argc, argv, "--level") ? FlagValue(argc, argv, "--level") : "si";
  CheckMode mode = CheckMode::kSi;
  if (level != "list") {
    std::string err;
    if (!ParseRunLevel(level.c_str(), &mode, &err)) {
      std::fprintf(stderr, "--level=%s: %s\n", level.c_str(), err.c_str());
      return 2;
    }
  }
  size_t max_report = U64Flag(argc, argv, "--max-report", 20);

  Stopwatch load_sw;
  History h;
  hist::CodecStatus st = hist::LoadHistory(in, &h);
  if (!st.ok) {
    std::fprintf(stderr, "load failed: %s\n", st.message.c_str());
    return 1;
  }
  std::printf("loaded %zu txns (%zu ops) in %.3fs\n", h.txns.size(),
              h.NumOps(), load_sw.Seconds());

  CountingSink sink(max_report);
  if (HasFlag(argc, argv, "--online")) {
    hist::CollectorParams cp;
    cp.delay_mean_ms = static_cast<double>(
        U64Flag(argc, argv, "--delay-mean", 0));
    cp.delay_stddev_ms = static_cast<double>(
        U64Flag(argc, argv, "--delay-stddev", 0));
    auto stream = hist::ScheduleDelivery(h, cp);
    Aion::Options opt;
    opt.mode = mode;  // list=si; iso= tags override per transaction
    opt.ext_timeout_ms = U64Flag(argc, argv, "--timeout-ms", 5000);
    if (const char* spill = FlagValue(argc, argv, "--spill")) {
      opt.spill_dir = spill;
    }
    opt.pre_stage_workers =
        static_cast<size_t>(U64Flag(argc, argv, "--pre-stage-workers", 2));
    const size_t shards =
        static_cast<size_t>(U64Flag(argc, argv, "--shards", 1));
    const bool want_stats = HasFlag(argc, argv, "--stats");
    if (const char* ckpt_dir = FlagValue(argc, argv, "--checkpoint-dir")) {
      // Durable driver: always the sharded checker (its state export is
      // the checkpoint format), even for one shard.
      if (opt.spill_dir.empty()) opt.spill_dir = std::string(ckpt_dir) + "/spill";
      std::unique_ptr<online::ShardedAion> checker;
      uint64_t start_seq = 1, start_events = 0, wal_trunc = 0;
      if (HasFlag(argc, argv, "--resume")) {
        online::RecoverResult rec = online::Recover(opt, ckpt_dir, &sink, shards);
        if (!rec.checker) {
          std::fprintf(stderr, "recovery failed: %s\n", rec.error.c_str());
          return 1;
        }
        std::printf("recovered: ckpt=%llu events=%llu%s%s\n",
                    static_cast<unsigned long long>(rec.ckpt_seq),
                    static_cast<unsigned long long>(rec.events),
                    rec.from_checkpoint ? "" : " (wal-only)",
                    rec.used_fallback ? " (newest checkpoint corrupt)" : "");
        checker = std::move(rec.checker);
        start_seq = rec.next_seq;
        start_events = rec.events;
        wal_trunc = rec.wal_truncate_to;
      } else {
        checker = std::make_unique<online::ShardedAion>(opt, shards, &sink);
      }
      online::DurableRunner::Options dopts;
      dopts.dir = ckpt_dir;
      dopts.checkpoint_every_events =
          U64Flag(argc, argv, "--checkpoint-every", 5000);
      dopts.gc_every_events =
          static_cast<size_t>(U64Flag(argc, argv, "--gc-every", 0));
      dopts.gc_target = static_cast<size_t>(U64Flag(argc, argv, "--gc-target", 0));
      dopts.memory_ceiling_bytes =
          static_cast<size_t>(U64Flag(argc, argv, "--memory-ceiling", 0));
      online::DurableRunner runner(checker.get(), dopts, start_seq,
                                   start_events, wal_trunc);
      // Single-threaded driver: main() owns the runner for its lifetime.
      AssumeRole driver(runner.driver_role);
      Stopwatch sw;
      for (size_t i = start_events; i < stream.size(); ++i) {
        if (!runner.Feed(stream[i].txn, stream[i].deliver_at_ms)) {
          std::fprintf(stderr, "durable run failed: WAL/checkpoint write error\n");
          return 1;
        }
      }
      runner.Finish();
      std::printf("online %s durable check (%zu shards): %.3fs, "
                  "%llu checkpoints, %llu sheds, %llu flip-flops\n",
                  level.c_str(), checker->num_shards(), sw.Seconds(),
                  static_cast<unsigned long long>(runner.checkpoints_written()),
                  static_cast<unsigned long long>(runner.sheds()),
                  static_cast<unsigned long long>(
                      checker->flip_stats().total_flips()));
      if (want_stats) {
        PrintCheckerStats(checker->stats());
        online::PrintPipelineHealth(checker->pipeline_health(), stdout);
      }
      PrintReport(sink, max_report);
      return sink.total() > 0 ? 3 : 0;
    }
    std::unique_ptr<Aion> mono;
    std::unique_ptr<online::ShardedAion> shard;
    OnlineChecker* checker;
    if (shards > 1) {
      shard = std::make_unique<online::ShardedAion>(opt, shards, &sink);
      checker = shard.get();
    } else {
      mono = std::make_unique<Aion>(opt, &sink);
      checker = mono.get();
    }
    Stopwatch sw;
    const bool threaded = HasFlag(argc, argv, "--threaded");
    online::RunResult r =
        threaded ? online::RunThreaded(checker, stream,
                                       online::GcPolicy::None(),
                                       /*sample_every=*/10000,
                                       U64Flag(argc, argv, "--batch", 500))
                 : online::RunMaxRate(checker, stream,
                                      online::GcPolicy::None());
    uint64_t flips = shard ? shard->flip_stats().total_flips()
                           : mono->flip_stats().total_flips();
    std::string driver = threaded ? "threaded" : "max-rate";
    if (shard) driver += ", " + std::to_string(shard->num_shards()) + " shards";
    std::printf("online %s check (%s): %.3fs (%.0f TPS), %llu flip-flops\n",
                level.c_str(), driver.c_str(), sw.Seconds(), r.AvgTps(),
                static_cast<unsigned long long>(flips));
    if (want_stats) {
      PrintCheckerStats(shard ? shard->stats() : mono->stats());
      if (shard) {
        online::PrintPipelineHealth(shard->pipeline_health(), stdout);
      }
    }
  } else {
    ChronosOptions opt;
    opt.gc_every_n_txns = U64Flag(argc, argv, "--gc-every", 0);
    Stopwatch sw;
    CheckStats stats;
    if (level != "list" && HistoryHasLevelTags(h)) {
      // Per-transaction iso= tags: the single-level replayers would
      // misjudge the weaker-level transactions, so route to the mixed
      // checker with --level as the default for untagged ones.
      ChronosMixed checker(mode, &sink);
      stats = checker.Check(std::move(h));
      level = "mixed(default=" + level + ")";
    } else if (level == "ser") {
      ChronosSer checker(&sink);
      stats = checker.Check(std::move(h));
    } else if (level == "list") {
      ChronosList checker(&sink);
      stats = checker.Check(std::move(h));
    } else {
      Chronos checker(opt, &sink);
      stats = checker.Check(std::move(h));
    }
    std::printf("offline %s check: sort=%.3fs check=%.3fs gc=%.3fs\n",
                level.c_str(), stats.sort_seconds, stats.check_seconds,
                stats.gc_seconds);
  }
  PrintReport(sink, max_report);
  return sink.total() > 0 ? 3 : 0;
}
