// chronos_check: check a history file for isolation violations.
//
//   chronos_check --in=h.hist [--level=si|ser|list]
//                 [--online] [--timeout-ms=5000] [--spill=/tmp/aion]
//                 [--delay-mean=0 --delay-stddev=0]   (online only)
//                 [--threaded] [--batch=500]          (online only)
//                 [--shards=1]                        (online only)
//                 [--gc-every=0] [--max-report=20]
//
// Offline mode runs CHRONOS (--level=list: ChronosList); --online
// replays the history through AION via the collector (delays model
// asynchrony). AION understands list histories natively, so --online
// works for every level (--level=list selects the SI read-view rule,
// matching the list workloads). --shards=N checks with the
// key-partitioned ShardedAion (N worker threads); violations are then
// reported in deterministic (commit_ts, txn id) order.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "flags.h"

#include "core/aion.h"
#include "core/chronos.h"
#include "core/chronos_list.h"
#include "hist/codec.h"
#include "hist/collector.h"
#include "online/pipeline.h"
#include "online/sharded_aion.h"

using namespace chronos;

namespace {

using namespace chronos::tools;

void PrintReport(const CountingSink& sink, size_t max_report) {
  std::printf("violations: total=%zu SESSION=%zu INT=%zu EXT=%zu "
              "NOCONFLICT=%zu TS-ORDER=%zu TS-DUP=%zu\n",
              sink.total(), sink.count(ViolationType::kSession),
              sink.count(ViolationType::kInt), sink.count(ViolationType::kExt),
              sink.count(ViolationType::kNoConflict),
              sink.count(ViolationType::kTsOrder),
              sink.count(ViolationType::kTsDuplicate));
  size_t shown = 0;
  for (const Violation& v : sink.first()) {
    if (++shown > max_report) break;
    std::printf("  %s\n", v.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* in = FlagValue(argc, argv, "--in");
  if (!in) {
    std::fprintf(stderr, "usage: chronos_check --in=FILE [options]\n");
    return 2;
  }
  std::string level =
      FlagValue(argc, argv, "--level") ? FlagValue(argc, argv, "--level") : "si";
  size_t max_report = U64Flag(argc, argv, "--max-report", 20);

  Stopwatch load_sw;
  History h;
  hist::CodecStatus st = hist::LoadHistory(in, &h);
  if (!st.ok) {
    std::fprintf(stderr, "load failed: %s\n", st.message.c_str());
    return 1;
  }
  std::printf("loaded %zu txns (%zu ops) in %.3fs\n", h.txns.size(),
              h.NumOps(), load_sw.Seconds());

  CountingSink sink(max_report);
  if (HasFlag(argc, argv, "--online")) {
    hist::CollectorParams cp;
    cp.delay_mean_ms = static_cast<double>(
        U64Flag(argc, argv, "--delay-mean", 0));
    cp.delay_stddev_ms = static_cast<double>(
        U64Flag(argc, argv, "--delay-stddev", 0));
    auto stream = hist::ScheduleDelivery(h, cp);
    Aion::Options opt;
    opt.mode = level == "ser" ? Aion::Mode::kSer : Aion::Mode::kSi;  // list=si
    opt.ext_timeout_ms = U64Flag(argc, argv, "--timeout-ms", 5000);
    if (const char* spill = FlagValue(argc, argv, "--spill")) {
      opt.spill_dir = spill;
    }
    const size_t shards =
        static_cast<size_t>(U64Flag(argc, argv, "--shards", 1));
    std::unique_ptr<Aion> mono;
    std::unique_ptr<online::ShardedAion> shard;
    OnlineChecker* checker;
    if (shards > 1) {
      shard = std::make_unique<online::ShardedAion>(opt, shards, &sink);
      checker = shard.get();
    } else {
      mono = std::make_unique<Aion>(opt, &sink);
      checker = mono.get();
    }
    Stopwatch sw;
    const bool threaded = HasFlag(argc, argv, "--threaded");
    online::RunResult r =
        threaded ? online::RunThreaded(checker, stream,
                                       online::GcPolicy::None(),
                                       /*sample_every=*/10000,
                                       U64Flag(argc, argv, "--batch", 500))
                 : online::RunMaxRate(checker, stream,
                                      online::GcPolicy::None());
    uint64_t flips = shard ? shard->flip_stats().total_flips()
                           : mono->flip_stats().total_flips();
    std::string driver = threaded ? "threaded" : "max-rate";
    if (shard) driver += ", " + std::to_string(shard->num_shards()) + " shards";
    std::printf("online %s check (%s): %.3fs (%.0f TPS), %llu flip-flops\n",
                level.c_str(), driver.c_str(), sw.Seconds(), r.AvgTps(),
                static_cast<unsigned long long>(flips));
  } else {
    ChronosOptions opt;
    opt.gc_every_n_txns = U64Flag(argc, argv, "--gc-every", 0);
    Stopwatch sw;
    CheckStats stats;
    if (level == "ser") {
      ChronosSer checker(&sink);
      stats = checker.Check(std::move(h));
    } else if (level == "list") {
      ChronosList checker(&sink);
      stats = checker.Check(std::move(h));
    } else {
      Chronos checker(opt, &sink);
      stats = checker.Check(std::move(h));
    }
    std::printf("offline %s check: sort=%.3fs check=%.3fs gc=%.3fs\n",
                level.c_str(), stats.sort_seconds, stats.check_seconds,
                stats.gc_seconds);
  }
  PrintReport(sink, max_report);
  return sink.total() > 0 ? 3 : 0;
}
