// Minimal --flag=value parsing shared by the CLI tools (chronos_gen,
// chronos_check, chronos_fuzz, chronos_explore), plus the unified
// isolation-level spelling (si|ser|rc|ra) they all accept.
#ifndef CHRONOS_TOOLS_FLAGS_H_
#define CHRONOS_TOOLS_FLAGS_H_

#include <cstdlib>
#include <cstring>
#include <cstdint>
#include <string>

#include "core/online_checker.h"

namespace chronos::tools {

inline const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

inline uint64_t U64Flag(int argc, char** argv, const char* name,
                        uint64_t def) {
  const char* v = FlagValue(argc, argv, name);
  return v ? strtoull(v, nullptr, 10) : def;
}

inline double DoubleFlag(int argc, char** argv, const char* name,
                         double def) {
  const char* v = FlagValue(argc, argv, name);
  return v ? atof(v) : def;
}

/// Unified run-level isolation parsing for every CLI tool. Only si and
/// ser are valid run-level defaults; rc and ra exist solely as
/// per-transaction tags (Transaction::iso), so naming them here gets a
/// specific explanation rather than "unknown level".
inline bool ParseRunLevel(const char* v, CheckMode* mode, std::string* err) {
  if (strcmp(v, "si") == 0) {
    *mode = CheckMode::kSi;
    return true;
  }
  if (strcmp(v, "ser") == 0) {
    *mode = CheckMode::kSer;
    return true;
  }
  if (strcmp(v, "rc") == 0 || strcmp(v, "ra") == 0) {
    *err = std::string(v) +
           " is a per-transaction isolation level: tag individual "
           "transactions (iso=" + v +
           " in the history file, or --mix=" + v +
           ":<pct> in chronos_gen); the run-level default must be si or "
           "ser";
    return false;
  }
  *err = "unknown isolation level '" + std::string(v) +
         "' (expected si, ser, rc, or ra)";
  return false;
}

/// Parses a --mix=si:70,ser:10,rc:10,ra:10 spec (any subset of levels,
/// any order; percentages must sum to at most 100 — the remainder stays
/// untagged and follows the run-level default). Out-params instead of a
/// workload::LevelMix so this header stays free of the workload layer.
inline bool ParseLevelMixSpec(const char* v, uint32_t* si, uint32_t* ser,
                              uint32_t* rc, uint32_t* ra, std::string* err) {
  *si = *ser = *rc = *ra = 0;
  const std::string spec(v);
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const size_t colon = part.find(':');
    if (part.empty() || colon == std::string::npos) {
      *err = "bad --mix component '" + part +
             "' (expected <level>:<percent>, e.g. si:70,rc:30)";
      return false;
    }
    const std::string name = part.substr(0, colon);
    uint32_t* slot = name == "si"    ? si
                     : name == "ser" ? ser
                     : name == "rc"  ? rc
                     : name == "ra"  ? ra
                                     : nullptr;
    if (!slot) {
      *err = "unknown isolation level '" + name +
             "' in --mix (expected si, ser, rc, or ra)";
      return false;
    }
    if (*slot != 0) {
      *err = "duplicate level '" + name + "' in --mix";
      return false;
    }
    char* end = nullptr;
    const char* digits = part.c_str() + colon + 1;
    unsigned long pct = strtoul(digits, &end, 10);
    if (end == digits || *end != '\0' || pct == 0 || pct > 100) {
      *err = "bad percentage in --mix component '" + part +
             "' (expected an integer in [1, 100])";
      return false;
    }
    *slot = static_cast<uint32_t>(pct);
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (*si + *ser + *rc + *ra > 100) {
    *err = "--mix percentages sum to " +
           std::to_string(*si + *ser + *rc + *ra) +
           " (must be at most 100; the remainder stays untagged)";
    return false;
  }
  return true;
}

}  // namespace chronos::tools

#endif  // CHRONOS_TOOLS_FLAGS_H_
