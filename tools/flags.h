// Minimal --flag=value parsing shared by the CLI tools (chronos_gen,
// chronos_check, chronos_fuzz).
#ifndef CHRONOS_TOOLS_FLAGS_H_
#define CHRONOS_TOOLS_FLAGS_H_

#include <cstdlib>
#include <cstring>
#include <cstdint>

namespace chronos::tools {

inline const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

inline uint64_t U64Flag(int argc, char** argv, const char* name,
                        uint64_t def) {
  const char* v = FlagValue(argc, argv, name);
  return v ? strtoull(v, nullptr, 10) : def;
}

inline double DoubleFlag(int argc, char** argv, const char* name,
                         double def) {
  const char* v = FlagValue(argc, argv, name);
  return v ? atof(v) : def;
}

}  // namespace chronos::tools

#endif  // CHRONOS_TOOLS_FLAGS_H_
