// chronos_fuzz: differential fuzzing harness (see src/fuzz/).
//
//   chronos_fuzz [--seeds=200] [--seed-start=0] [--time-budget=0]
//                [--list-only] [--mix-only] [--ckpt] [--out-dir=DIR]
//                [--verbose]
//   chronos_fuzz --repro=FILE [--ser | --mode=si|ser]
//   chronos_fuzz --corpus=DIR
//
// Default mode runs seed-derived chaos scenarios (workload x faults x
// oracle x GC/spill/shard knobs) through every checker and cross-checks
// the verdicts. Any unexplained disagreement is minimized with the
// delta-debugging shrinker and written to <out-dir>/seed<N>.repro — a
// plain history file replayable with `chronos_check --in=...` or
// `chronos_fuzz --repro=...` — plus a seed<N>.repro.meta sidecar naming
// the seed, scenario knobs, and breached rules; --repro re-derives the
// scenario from the sidecar when present (knob-dependent disagreements
// only reproduce under their original knobs). --corpus replays a shrunk
// regression corpus (tests/corpus) and validates its manifest pins
// (Chronos per-class counts and the black-box verdict).
//
// --list-only keeps the seed->scenario map intact but runs only the
// seeds whose scenario is a list workload — the CI list smoke walks a
// bigger seed block at the same cost. --mix-only does the same for the
// seeds whose scenario tags a mixed isolation-level workload (entry D8:
// ChronosMixed as the offline reference, level-aware online matrix).
//
// --ckpt forces the mid-stream checkpoint/restore checker (scenario knob
// ckpt_restore, rule "ckpt-restore-identity") on for every seed instead
// of its ~25% sample — the CI fuzz-extended job uses it to sweep the
// restore path across the whole scenario space.
//
// --time-budget is also checked *between checkers inside a scenario*
// (fuzz::OverBudgetFn): once spent, the remaining checkers of the
// current seed are skipped, the partial report is discarded (no rules
// ran), and the run stops — a long 300-txn matrix pass or a PolySI
// CEGAR blowup overshoots by at most one checker run.
//
// Exit status: 0 all clean, 1 disagreements/mismatches, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "flags.h"

#include "core/stats.h"
#include "fuzz/corpus.h"
#include "fuzz/differ.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"
#include "hist/codec.h"

using namespace chronos;

namespace {

using chronos::tools::FlagValue;
using chronos::tools::HasFlag;
using chronos::tools::U64Flag;

// Replay knobs: strict, no GC, infinite timeout, commit-order arrival —
// the configuration under which every equality rule applies.
fuzz::FuzzScenario ReplayScenario(bool ser) {
  fuzz::FuzzScenario sc;
  if (ser) sc.db.isolation = db::DbConfig::Isolation::kSer;
  return sc;
}

int RunRepro(const std::string& path, bool ser, const std::string& work_dir) {
  History h;
  hist::CodecStatus st = hist::LoadHistory(path, &h);
  if (!st.ok) {
    std::fprintf(stderr, "load failed: %s\n", st.message.c_str());
    return 2;
  }
  // A fuzz-emitted repro carries a .meta sidecar naming its seed;
  // knob-dependent disagreements (shuffle order, finite timeout, GC
  // cadence) only reproduce under that scenario's knobs, so re-derive
  // them. Without a sidecar, replay under the strict default knobs.
  fuzz::FuzzScenario sc = ReplayScenario(ser);
  if (FILE* meta = fopen((path + ".meta").c_str(), "r")) {
    unsigned long long seed = 0;
    if (fscanf(meta, "seed=%llu", &seed) == 1) {
      sc = fuzz::ScenarioFromSeed(seed);
      std::printf("replaying under fuzz scenario [%s]\n",
                  sc.Describe().c_str());
    }
    fclose(meta);
  }
  fuzz::DiffReport report =
      fuzz::DiffHistory(h, sc, fuzz::CleanExpectation::kUnknown, work_dir);
  std::printf("repro %s (%zu txns, %zu ops):\n%s", path.c_str(),
              h.txns.size(), h.NumOps(), report.Summary().c_str());
  std::printf(report.Clean() ? "no disagreement\n"
                             : "DISAGREEMENT still present\n");
  return report.Clean() ? 0 : 1;
}

int RunCorpus(const std::string& dir, const std::string& work_dir) {
  fuzz::Corpus corpus = fuzz::LoadCorpus(dir);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.error.c_str());
    return 2;
  }
  int failures = 0;
  for (const fuzz::CorpusEntry& entry : corpus.entries) {
    fuzz::CleanExpectation expect = entry.ExpectedTotal() == 0
                                        ? fuzz::CleanExpectation::kClean
                                        : fuzz::CleanExpectation::kFaulty;
    fuzz::DiffReport report = fuzz::DiffHistory(
        entry.history, ReplayScenario(entry.ser), expect, work_dir);
    const fuzz::CheckerReport* ref = report.Find("chronos");
    if (!ref) ref = report.Find("chronos-list");
    if (!ref) ref = report.Find("chronos-mixed");
    bool counts_ok = ref && ref->counts == entry.expected;
    // Mixed-level entries gate out every black-box checker (entry D8),
    // so there is no black-box verdict to pin for them.
    const fuzz::CheckerReport* blackbox = report.Find("ellekv");
    if (!blackbox) blackbox = report.Find("elle-list");
    bool blackbox_ok = entry.mixed
                           ? blackbox == nullptr
                           : blackbox && blackbox->detected ==
                                             entry.blackbox_detect;
    if (!report.Clean() || !counts_ok || !blackbox_ok) {
      ++failures;
      std::printf("corpus FAIL %s (%s):\n%s", entry.file.c_str(),
                  entry.tag.c_str(), report.Summary().c_str());
      if (!counts_ok) {
        std::printf("  !! chronos counts differ from manifest\n");
      }
      if (!blackbox_ok) {
        std::printf("  !! black-box verdict differs from manifest\n");
      }
    } else {
      std::printf("corpus ok   %s (%s)\n", entry.file.c_str(),
                  entry.tag.c_str());
    }
  }
  std::printf("corpus: %zu entries, %d failures\n", corpus.entries.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = FlagValue(argc, argv, "--out-dir")
                            ? FlagValue(argc, argv, "--out-dir")
                            : (std::filesystem::temp_directory_path() /
                               "chronos_fuzz")
                                  .string();
  std::filesystem::create_directories(out_dir);
  const std::string work_dir = out_dir + "/work";

  if (const char* repro = FlagValue(argc, argv, "--repro")) {
    bool ser = HasFlag(argc, argv, "--ser");
    if (const char* m = FlagValue(argc, argv, "--mode")) {
      CheckMode mode;
      std::string err;
      if (!tools::ParseRunLevel(m, &mode, &err)) {
        std::fprintf(stderr, "--mode=%s: %s\n", m, err.c_str());
        return 2;
      }
      ser = mode == CheckMode::kSer;
    }
    return RunRepro(repro, ser, work_dir);
  }
  if (const char* corpus = FlagValue(argc, argv, "--corpus")) {
    return RunCorpus(corpus, work_dir);
  }

  const uint64_t seeds = U64Flag(argc, argv, "--seeds", 50);
  const uint64_t seed_start = U64Flag(argc, argv, "--seed-start", 0);
  const uint64_t budget_s = U64Flag(argc, argv, "--time-budget", 0);
  const bool verbose = HasFlag(argc, argv, "--verbose");
  const bool list_only = HasFlag(argc, argv, "--list-only");
  const bool mix_only = HasFlag(argc, argv, "--mix-only");
  const bool force_ckpt = HasFlag(argc, argv, "--ckpt");

  Stopwatch sw;
  fuzz::OverBudgetFn over_budget;
  if (budget_s > 0) {
    over_budget = [&] {
      return sw.Seconds() > static_cast<double>(budget_s);
    };
  }
  uint64_t ran = 0;
  std::vector<uint64_t> failing_seeds;
  for (uint64_t seed = seed_start; seed < seed_start + seeds; ++seed) {
    if (budget_s > 0 && sw.Seconds() > static_cast<double>(budget_s)) break;
    fuzz::FuzzScenario sc = fuzz::ScenarioFromSeed(seed);
    if (list_only && !sc.wl.list_mode) continue;
    if (mix_only && sc.wl.mix.empty()) continue;
    if (force_ckpt) sc.ckpt_restore = true;
    History h;
    fuzz::DiffReport report =
        fuzz::RunDiffer(sc, work_dir, &h, nullptr, over_budget);
    if (report.timed_out) {
      std::printf("time budget spent mid-seed %llu; partial matrix "
                  "discarded\n",
                  static_cast<unsigned long long>(seed));
      break;
    }
    ++ran;
    if (verbose) {
      std::printf("[%s]\n%s", sc.Describe().c_str(),
                  report.Summary().c_str());
    }
    if (report.Clean()) continue;

    failing_seeds.push_back(seed);
    std::printf("DISAGREEMENT at %s\n%s", sc.Describe().c_str(),
                report.Summary().c_str());

    // Failure signature: the originally-breached (rule, checker) pairs.
    // A reduction must preserve one of them — same rule AND same
    // offending checker — and for clean-accept breaches the reference
    // checker must still accept, otherwise a shrink that fabricates a
    // genuine violation (every checker detects, including the
    // reference) would masquerade as the original false positive.
    std::vector<std::pair<std::string, std::string>> signature;
    for (const fuzz::Disagreement& d : report.disagreements) {
      auto key = std::make_pair(d.rule, d.checker);
      if (std::find(signature.begin(), signature.end(), key) ==
          signature.end()) {
        signature.push_back(std::move(key));
      }
    }
    auto matches = [](const fuzz::DiffReport& r, const std::string& rule,
                      const std::string& checker) {
      for (const fuzz::Disagreement& d : r.disagreements) {
        if (d.rule == rule && (checker.empty() || d.checker == checker)) {
          return true;
        }
      }
      return false;
    };
    fuzz::FailurePredicate still_fails = [&](const History& candidate) {
      fuzz::DiffReport r = fuzz::DiffHistory(candidate, sc,
                                             report.expectation, work_dir);
      for (const auto& [rule, checker] : signature) {
        if (!matches(r, rule, checker)) continue;
        if (rule == "clean-accept" &&
            (matches(r, "clean-accept", "chronos") ||
             matches(r, "clean-accept", "chronos-list"))) {
          continue;  // reference detects too: genuinely-faulty candidate
        }
        return true;
      }
      return false;
    };
    fuzz::ShrinkResult shrunk = fuzz::ShrinkHistory(h, still_fails);
    const std::string repro_path =
        out_dir + "/seed" + std::to_string(seed) + ".repro";
    hist::CodecStatus st = hist::SaveHistory(shrunk.minimized, repro_path);
    // Sidecar with the scenario knobs: knob-dependent disagreements
    // (shuffle order, finite timeout, GC cadence) only reproduce under
    // the original scenario, which --repro re-derives from this seed.
    if (st.ok) {
      if (FILE* meta = fopen((repro_path + ".meta").c_str(), "w")) {
        std::fprintf(meta, "seed=%llu\nscenario=%s\n",
                     static_cast<unsigned long long>(seed),
                     sc.Describe().c_str());
        for (const auto& [rule, checker] : signature) {
          std::fprintf(meta, "rule=%s%s%s\n", rule.c_str(),
                       checker.empty() ? "" : " checker=",
                       checker.c_str());
        }
        fclose(meta);
      }
    }
    std::printf("shrunk %zu txns (%zu ops) -> %zu txns (%zu ops) in %zu "
                "predicate calls; %s %s\n",
                shrunk.initial_txns, shrunk.initial_ops, shrunk.final_txns,
                shrunk.final_ops,
                shrunk.predicate_calls,
                st.ok ? "wrote" : "FAILED to write", repro_path.c_str());
  }

  std::printf("fuzz: %llu scenarios in %.1fs, %zu disagreement(s)\n",
              static_cast<unsigned long long>(ran), sw.Seconds(),
              failing_seeds.size());
  for (uint64_t s : failing_seeds) std::printf("  failing seed: %llu\n",
                                               static_cast<unsigned long long>(s));
  return failing_seeds.empty() ? 0 : 1;
}
