// chronos_explore: exhaustive schedule exploration of a small history.
//
// Enumerates every inequivalent session-preserving arrival order of the
// input (DPOR-style pruning: orders that differ only by commuting
// arrivals with disjoint key/timestamp footprints are explored once) and
// runs each schedule through the full online checker matrix under
// adversarial pipeline timing — Aion, ShardedAion{1,2,8} with
// cmd_batch=1, minimal rings and forced stalls, and a 2-shard checker
// that checkpoint-restores after every arrival. Verdicts must be
// identical within a schedule and invariant across schedules (modulo the
// documented divergence table, fuzz/differ.h D4-D7). A flip is shrunk
// with the fuzz ddmin shrinker and written as a .repro plus a .schedule
// sidecar pinning the flipping arrival order.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "flags.h"

#include "db/database.h"
#include "explore/enumerator.h"
#include "explore/oracle.h"
#include "explore/schedule.h"
#include "hist/codec.h"
#include "workload/generator.h"

using namespace chronos;
using namespace chronos::tools;

namespace {

void PrintUsage(FILE* out) {
  std::fprintf(out,
      "usage: chronos_explore --in=FILE | --repro=FILE | --sweep-seeds=N\n"
      "\n"
      "Exhaustively explores every inequivalent arrival schedule of a\n"
      "small history (<= %zu txns) and cross-checks that the online\n"
      "checker matrix (Aion, ShardedAion x {1,2,8} shards, per-arrival\n"
      "checkpoint/restore) reaches the same verdict on every schedule,\n"
      "under adversarial pipeline timing (cmd_batch=1, capacity-2 rings,\n"
      "forced stalls). A flip is ddmin-shrunk to OUT/flip-*.repro with a\n"
      "OUT/flip-*.repro.schedule sidecar pinning the flipping schedule.\n"
      "\n"
      "input (one of):\n"
      "  --in=FILE             history file (hist/codec.h text format)\n"
      "  --repro=FILE          alias for --in: fuzz .repro corpus files\n"
      "                        load through the same codec unchanged\n"
      "  --sweep-seeds=N       generate and explore N small seed-derived\n"
      "                        workloads (extended CI mode)\n"
      "  --sweep-start=S       first sweep seed (default 1)\n"
      "\n"
      "checker config:\n"
      "  --mode=si|ser         run-level default isolation (default si);\n"
      "                        per-transaction iso= tags in the input\n"
      "                        override it, and RC/RA-tagged arrivals\n"
      "                        register no timestamps (wider DPOR\n"
      "                        commutativity)\n"
      "  --ser                 shorthand for --mode=ser\n"
      "  --timeout-ms=N        finite EXT timeout (default: infinite;\n"
      "                        finite waives cross-schedule EXT equality,\n"
      "                        divergence entry D5)\n"
      "  --gc-every=N          GcToLiveTarget every N arrivals (0: off;\n"
      "                        active GC waives EXT/NOCONFLICT equality\n"
      "                        and makes all arrival pairs dependent, D7)\n"
      "  --gc-target=N         live-txn target for --gc-every (default 0)\n"
      "\n"
      "exploration:\n"
      "  --max-schedules=N     stop after N schedules (0 = exhaust)\n"
      "  --no-stall            disable the adversarial timing axis\n"
      "  --plant-bug           plant the test-only flipped-frontier EXT\n"
      "                        oracle (self-check: must be caught)\n"
      "  --shrink-budget=N     ddmin predicate budget (default 300)\n"
      "  --out-dir=DIR         where flip artifacts go (default .)\n"
      "  --verbose             print every explored schedule\n"
      "\n"
      "exit status: 0 all schedules agree, 1 flip found (artifacts\n"
      "written), 2 usage or load error (including > %zu-txn input).\n",
      explore::kMaxExploreTxns, explore::kMaxExploreTxns);
}

// Explores one history; returns the process exit code (0 ok, 1 flip).
int ExploreOne(const History& h, const explore::ExploreOptions& opts,
               const std::string& label, const std::string& out_dir,
               bool verbose) {
  explore::ExploreResult r;
  if (verbose) {
    explore::ExploreOptions vopts = opts;
    // Re-run the enumeration alone first to log the schedule space.
    std::vector<explore::Arrival> arrivals =
        explore::CanonicalArrivals(h, opts.oracle.mode);
    explore::Dependence dep(arrivals, opts.oracle.finite_timeout() ||
                                          opts.oracle.gc_active());
    explore::EnumerateSchedules(arrivals, dep, opts.max_schedules,
                                [&](const std::vector<size_t>& perm) {
                                  std::printf("  schedule %s\n",
                                              explore::FormatSchedule(
                                                  arrivals, perm)
                                                  .c_str());
                                  return true;
                                });
    r = explore::ExploreHistory(h, vopts);
  } else {
    r = explore::ExploreHistory(h, opts);
  }
  if (!r.error.empty()) {
    std::fprintf(stderr, "%s: %s\n", label.c_str(), r.error.c_str());
    return 2;
  }
  std::printf("%s: explored=%llu pruned=%llu%s counts"
              "[SESSION=%zu INT=%zu EXT=%zu NOCONFLICT=%zu TS-ORDER=%zu "
              "TS-DUP=%zu]\n",
              label.c_str(), static_cast<unsigned long long>(r.explored),
              static_cast<unsigned long long>(r.pruned),
              r.truncated ? " (truncated)" : "", r.reference_counts[0],
              r.reference_counts[1], r.reference_counts[2],
              r.reference_counts[3], r.reference_counts[4],
              r.reference_counts[5]);
  if (!r.flip_found) return 0;

  std::printf("FLIP (%s): %s\n", r.rule.c_str(), r.detail.c_str());
  explore::ShrunkFlip shrunk = explore::ShrinkFlip(h, opts);
  const explore::ExploreResult& fr =
      shrunk.result.flip_found ? shrunk.result : r;
  const History& fh = shrunk.result.flip_found ? shrunk.history : h;
  std::printf("shrunk to %zu txns (%zu predicate calls)\n", fh.txns.size(),
              shrunk.predicate_calls);

  std::filesystem::create_directories(out_dir);
  const std::string repro = out_dir + "/flip-" + label + ".repro";
  hist::CodecStatus st = hist::SaveHistory(fh, repro);
  if (!st.ok) {
    std::fprintf(stderr, "writing %s failed: %s\n", repro.c_str(),
                 st.message.c_str());
  }
  const std::string sidecar = repro + ".schedule";
  std::ofstream sc(sidecar);
  sc << explore::FormatScheduleSidecar(fr);
  sc.close();
  std::printf("artifacts: %s %s\n", repro.c_str(), sidecar.c_str());
  std::printf("  flip schedule: ");
  for (size_t i = 0; i < fr.flip_schedule.size(); ++i) {
    std::printf("%s%llu", i ? "," : "",
                static_cast<unsigned long long>(fr.flip_schedule[i]));
  }
  std::printf("\n");
  return 1;
}

// Extended CI mode: small seed-derived workloads, a third of them with
// an injected database fault so violating histories are swept too, plus
// rotating GC/timeout configs to exercise the waiver paths.
History SweepHistory(uint64_t seed) {
  workload::WorkloadParams wl;
  wl.sessions = 2 + seed % 2;
  wl.txns = 4 + seed % 3;
  wl.ops_per_txn = static_cast<uint32_t>(2 + seed % 3);
  wl.keys = 2 + seed % 2;
  wl.dist = workload::WorkloadParams::KeyDist::kUniform;
  wl.seed = seed;
  // Every 5th sweep seed tags a mixed isolation-level workload so the
  // enumerator exercises the wider RC/RA commutativity (no registered
  // timestamps) and the membership read rules across schedules.
  if (seed % 5 == 2) wl.mix = {50, 0, 30, 20};
  db::DbConfig db;
  db.fault_seed = seed;
  switch (seed % 3) {
    case 0:
      db.faults.value_corruption_prob = 0.3;
      break;
    case 1:
      db.faults.lost_update_prob = 0.5;
      break;
    default:
      break;  // clean
  }
  return workload::GenerateDefaultHistory(wl, db);
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--help")) {
    PrintUsage(stdout);
    return 0;
  }

  explore::ExploreOptions opts;
  opts.oracle.mode =
      HasFlag(argc, argv, "--ser") ? CheckMode::kSer : CheckMode::kSi;
  if (const char* m = FlagValue(argc, argv, "--mode")) {
    std::string err;
    if (!ParseRunLevel(m, &opts.oracle.mode, &err)) {
      std::fprintf(stderr, "--mode=%s: %s\n", m, err.c_str());
      return 2;
    }
  }
  opts.oracle.ext_timeout_ms =
      U64Flag(argc, argv, "--timeout-ms", explore::kInfiniteTimeoutMs);
  opts.oracle.gc_every = U64Flag(argc, argv, "--gc-every", 0);
  opts.oracle.gc_target = U64Flag(argc, argv, "--gc-target", 0);
  opts.oracle.adversarial_timing = !HasFlag(argc, argv, "--no-stall");
  opts.oracle.plant_frontier_bug = HasFlag(argc, argv, "--plant-bug");
  opts.max_schedules = U64Flag(argc, argv, "--max-schedules", 0);
  opts.shrink_predicate_calls = U64Flag(argc, argv, "--shrink-budget", 300);
  const bool verbose = HasFlag(argc, argv, "--verbose");
  const char* out_dir_flag = FlagValue(argc, argv, "--out-dir");
  const std::string out_dir = out_dir_flag ? out_dir_flag : ".";

  const char* in = FlagValue(argc, argv, "--in");
  if (!in) in = FlagValue(argc, argv, "--repro");
  const uint64_t sweep = U64Flag(argc, argv, "--sweep-seeds", 0);

  if (in) {
    History h;
    hist::CodecStatus st = hist::LoadHistory(in, &h);
    if (!st.ok) {
      std::fprintf(stderr, "load failed: %s\n", st.message.c_str());
      return 2;
    }
    if (h.txns.size() > explore::kMaxExploreTxns) {
      std::fprintf(stderr,
                   "%s has %zu transactions; the exhaustive enumerator "
                   "accepts at most %zu (shrink the history first, e.g. "
                   "with chronos_fuzz --shrink)\n",
                   in, h.txns.size(), explore::kMaxExploreTxns);
      return 2;
    }
    std::string label = std::filesystem::path(in).stem().string();
    return ExploreOne(h, opts, label, out_dir, verbose);
  }

  if (sweep > 0) {
    const uint64_t start = U64Flag(argc, argv, "--sweep-start", 1);
    for (uint64_t seed = start; seed < start + sweep; ++seed) {
      explore::ExploreOptions sopts = opts;
      if (seed % 4 == 0) {
        sopts.oracle.gc_every = 2;
        sopts.oracle.gc_target = 0;
      }
      if (seed % 5 == 0) sopts.oracle.ext_timeout_ms = 2;
      History h = SweepHistory(seed);
      if (h.txns.size() > explore::kMaxExploreTxns) continue;
      int rc = ExploreOne(h, sopts, "sweep-" + std::to_string(seed), out_dir,
                          verbose);
      if (rc != 0) return rc;
    }
    return 0;
  }

  PrintUsage(stderr);
  return 2;
}
