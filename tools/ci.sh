#!/usr/bin/env bash
# Tier-1 verify plus a bench smoke: configure, build everything, run the
# full ctest suite, then a tiny bench_micro pass so a perf-path compile
# or runtime regression cannot land silently. Run from the repo root.
#
# A blocking lint stage (tools/chronos_lint) runs right after the build:
# banned determinism tokens, ring alignas/ordering contracts, include
# hygiene. Skip with CHRONOS_CI_LINT=0.
#
# A ThreadSanitizer pass then rebuilds the concurrent suites (the batched
# queue pipeline and the sharded checker) in a separate build dir and
# runs them under TSan, so a data race in the coordinator->shard fan-out
# cannot land silently either. Skip with CHRONOS_CI_TSAN=0; run only the
# TSan stage with CHRONOS_CI_TSAN_ONLY=1 (the workflow's dedicated job).
#
# AddressSanitizer (+LSan) and UBSan passes rebuild the whole tree in
# their own build dirs and run the full ctest suite plus a fixed-seed
# fuzz/explore smoke. Skip with CHRONOS_CI_ASAN=0 / CHRONOS_CI_UBSAN=0;
# run just one with CHRONOS_CI_ASAN_ONLY=1 / CHRONOS_CI_UBSAN_ONLY=1.
#
# Usage: tools/ci.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

# Standalone lint build (LINT_ONLY mode, the workflow's dedicated job):
# its own dir so it cannot clobber an existing full configuration.
run_lint() {
  local dir="${BUILD_DIR}-lint"
  cmake -B "$dir" -S . -DCHRONOS_BUILD_TESTS=OFF \
        -DCHRONOS_BUILD_BENCH=OFF -DCHRONOS_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j --target chronos_lint
  echo "lint: chronos_lint over the full tree"
  "$dir/chronos_lint" --root=.
}

# Full-tree sanitizer pass: rebuild everything under $2, run the whole
# ctest suite, then a fixed-seed (deterministic) fuzz + explore smoke so
# the tool mainlines and the differential oracle run sanitized too.
run_san() {
  local name="$1" flags="$2"
  local dir="${BUILD_DIR}-${name}"
  # Per-config flags overridden for the same reason as run_tsan below:
  # keep -O1 codegen and asserts alive under the sanitizer.
  cmake -B "$dir" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="$flags" \
        -DCMAKE_CXX_FLAGS_RELWITHDEBINFO="-O1 -g" \
        -DCMAKE_EXE_LINKER_FLAGS="$flags" \
        -DCHRONOS_BUILD_BENCH=OFF -DCHRONOS_BUILD_TOOLS=ON \
        -DCHRONOS_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  echo "$name: fixed-seed fuzz + explore smoke"
  "$dir/chronos_fuzz" --seeds=40 --out-dir="$dir/fuzz-smoke"
  "$dir/chronos_explore" --repro=tests/corpus/fig11_stale_read.repro \
                         --out-dir="$dir/explore-out"
  "$dir/chronos_explore" --sweep-seeds=5 --out-dir="$dir/explore-out"
}

run_asan() { run_san asan "-fsanitize=address"; }
run_ubsan() { run_san ubsan "-fsanitize=undefined -fno-sanitize-recover=undefined"; }

# The threaded test binaries TSan covers; extend when adding concurrent
# suites (this list is the single source for local runs and CI).
TSAN_TESTS=(spsc_ring_test batch_pipeline_test online_test
            sharded_aion_test sharded_property_test list_parity_test
            pipeline_health_test explore_oracle_test)

run_tsan() {
  local tsan_dir="${BUILD_DIR}-tsan"
  # Per-config flags are overridden too: the default RelWithDebInfo ones
  # would append -O2 -DNDEBUG after CMAKE_CXX_FLAGS, silently undoing the
  # -O1 (TSan-friendly codegen) and disabling asserts in the suites.
  cmake -B "$tsan_dir" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
        -DCMAKE_CXX_FLAGS_RELWITHDEBINFO="-O1 -g" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
        -DCHRONOS_BUILD_BENCH=OFF -DCHRONOS_BUILD_TOOLS=ON \
        -DCHRONOS_BUILD_EXAMPLES=OFF
  cmake --build "$tsan_dir" -j --target "${TSAN_TESTS[@]}" chronos_explore
  local t
  for t in "${TSAN_TESTS[@]}"; do
    echo "tsan: $t"
    "$tsan_dir/$t"
  done
  # Bounded schedule exploration under TSan: a fixed history set through
  # the full adversarial matrix (forced stalls, capacity-2 rings,
  # per-arrival restore) — certifies the stall-hook plumbing and the
  # verdict-invariance loop race-free. Any flip fails the stage and
  # leaves its .repro + .schedule sidecar under $tsan_dir/explore-out.
  echo "tsan: chronos_explore bounded exploration"
  "$tsan_dir/chronos_explore" --repro=tests/corpus/fig11_stale_read.repro \
                              --out-dir="$tsan_dir/explore-out"
  "$tsan_dir/chronos_explore" --repro=tests/corpus/gc_straggler.repro \
                              --out-dir="$tsan_dir/explore-out"
  "$tsan_dir/chronos_explore" --repro=tests/corpus/list_stale_read.repro \
                              --out-dir="$tsan_dir/explore-out"
  # Mixed-isolation entries: per-transaction RC tags ride through the
  # sharded pipeline under TSan, and the RC no-registration footprint
  # exercises the wider DPOR commutativity (PR 9).
  "$tsan_dir/chronos_explore" --repro=tests/corpus/mixed_rc_session.repro \
                              --out-dir="$tsan_dir/explore-out"
  "$tsan_dir/chronos_explore" --repro=tests/corpus/mixed_rc_dup.repro \
                              --out-dir="$tsan_dir/explore-out"
  "$tsan_dir/chronos_explore" --sweep-seeds=10 \
                              --out-dir="$tsan_dir/explore-out"
}

if [[ "${CHRONOS_CI_LINT_ONLY:-0}" == "1" ]]; then
  run_lint
  echo "ci.sh: OK (lint only)"
  exit 0
fi
if [[ "${CHRONOS_CI_TSAN_ONLY:-0}" == "1" ]]; then
  run_tsan
  echo "ci.sh: OK (tsan only)"
  exit 0
fi
if [[ "${CHRONOS_CI_ASAN_ONLY:-0}" == "1" ]]; then
  run_asan
  echo "ci.sh: OK (asan only)"
  exit 0
fi
if [[ "${CHRONOS_CI_UBSAN_ONLY:-0}" == "1" ]]; then
  run_ubsan
  echo "ci.sh: OK (ubsan only)"
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

# Blocking lint gate, before the (longer) test stages: a banned token or
# a broken ring contract fails in seconds, not minutes.
if [[ "${CHRONOS_CI_LINT:-1}" != "0" ]]; then
  echo "lint: chronos_lint over the full tree"
  "$BUILD_DIR/chronos_lint" --root=.
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Crash-recovery stage: the exhaustive kill-point sweep. The tier-1
# ctest run above already covers a bounded sweep plus the corrupt-
# checkpoint / corrupt-WAL / corrupt-spill fixtures; this pass re-runs
# the durability suites killing the checker at EVERY event boundary and
# a much larger set of random WAL byte truncations (~30s). Skip with
# CHRONOS_CI_KILLPOINT=0.
if [[ "${CHRONOS_CI_KILLPOINT:-1}" != "0" ]]; then
  echo "crash-recovery: exhaustive kill-point sweep"
  CHRONOS_KILLPOINT_EXHAUSTIVE=1 "$BUILD_DIR/recovery_killpoint_test"
  "$BUILD_DIR/checkpoint_test"
fi

# Differential-fuzz smoke (fixed seed blocks, deterministic): 200 seeded
# chaos scenarios through every checker, then a list-only pass over a
# wider seed block (~10% of scenarios are list workloads, so this walks
# ~60 list histories through the full online matrix at similar cost),
# plus a corpus replay. Any unexplained cross-checker disagreement fails
# the build and leaves the shrunk .repro under $BUILD_DIR/fuzz-smoke/.
if [[ -x "$BUILD_DIR/chronos_fuzz" ]]; then
  "$BUILD_DIR/chronos_fuzz" --seeds=200 --out-dir="$BUILD_DIR/fuzz-smoke"
  "$BUILD_DIR/chronos_fuzz" --seeds=600 --seed-start=1000 --list-only \
                            --out-dir="$BUILD_DIR/fuzz-smoke"
  # Mixed-isolation pass (fixed seed block, deterministic): only the
  # scenarios whose workload carries a per-transaction si/rc/ra level
  # mix (~25%), so this walks ~100 mixed histories through the online
  # matrix plus the ChronosMixed offline reference (divergence entries
  # D8/D9) at similar cost.
  "$BUILD_DIR/chronos_fuzz" --seeds=400 --seed-start=2000 --mix-only \
                            --out-dir="$BUILD_DIR/fuzz-smoke"
  "$BUILD_DIR/chronos_fuzz" --corpus=tests/corpus \
                            --out-dir="$BUILD_DIR/fuzz-smoke"
else
  echo "chronos_fuzz not built (tools disabled); skipping fuzz smoke"
fi

# Bench smoke: minimal runtime, just proves the binaries execute. The
# tier-1 build is RelWithDebInfo, so the Release guard is waived — these
# numbers are never recorded.
if [[ -x "$BUILD_DIR/bench_micro" ]]; then
  CHRONOS_BENCH_ALLOW_NONRELEASE=1 \
  BENCH_MIN_TIME=0.01 \
  BENCH_FILTER='BM_AionPerTxn/2000|BM_ShardedAionPerTxn/shards:2|BM_VersionedKvLookup/10000' \
    bench/run_micro.sh "$BUILD_DIR" "$BUILD_DIR/BENCH_micro_smoke.json"
else
  echo "bench_micro not built (google-benchmark missing); skipping smoke"
fi

if [[ "${CHRONOS_CI_TSAN:-1}" != "0" ]]; then
  run_tsan
fi

if [[ "${CHRONOS_CI_ASAN:-1}" != "0" ]]; then
  run_asan
fi

if [[ "${CHRONOS_CI_UBSAN:-1}" != "0" ]]; then
  run_ubsan
fi

echo "ci.sh: OK"
