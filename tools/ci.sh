#!/usr/bin/env bash
# Tier-1 verify plus a bench smoke: configure, build everything, run the
# full ctest suite, then a tiny bench_micro pass so a perf-path compile
# or runtime regression cannot land silently. Run from the repo root.
#
# Usage: tools/ci.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Bench smoke: minimal runtime, just proves the binaries execute.
if [[ -x "$BUILD_DIR/bench_micro" ]]; then
  BENCH_MIN_TIME=0.01 \
  BENCH_FILTER='BM_AionPerTxn/2000|BM_VersionedKvLookup/10000' \
    bench/run_micro.sh "$BUILD_DIR" "$BUILD_DIR/BENCH_micro_smoke.json"
else
  echo "bench_micro not built (google-benchmark missing); skipping smoke"
fi

echo "ci.sh: OK"
