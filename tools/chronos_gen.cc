// chronos_gen: generate a transaction history file from the bundled
// workloads and database, optionally with injected faults.
//
//   chronos_gen --out=h.hist --workload=default --txns=100000
//               [--sessions=50] [--ops=15] [--keys=1000] [--reads=0.5]
//               [--dist=zipf|uniform|hotspot] [--list] [--ser]
//               [--mix=si:70,ser:10,rc:10,ra:10]
//               [--seed=1] [--fault=lost_update|stale_read|value|ts_swap|
//                           early_commit|late_start|session_reorder]
//               [--fault-prob=0.05] [--fault-seed=42]
//               [--hlc=<nodes>] [--skew=<max>]
//   chronos_gen --out=h.hist --workload=twitter|rubis|tpcc --txns=20000
//               [--seed=N]
//
// Every history is reproducible from its command line: --seed drives the
// workload's operation stream (each workload has its own default),
// --fault-seed the injection coin flips, and the database's written
// values are derived from a run-local counter. --mix tags the given
// percentage of transactions with per-transaction isolation levels
// (Transaction::iso, saved as iso= in the history file); the assignment
// hashes (seed, tid), so it is seed-deterministic too.
#include <cstdio>
#include <cstring>
#include <string>

#include "flags.h"
#include "hist/codec.h"
#include "workload/apps.h"
#include "workload/generator.h"

using namespace chronos;

using namespace chronos::tools;

int main(int argc, char** argv) {
  const char* out = FlagValue(argc, argv, "--out");
  if (!out) {
    std::fprintf(stderr, "usage: chronos_gen --out=FILE [options]\n");
    return 2;
  }
  std::string workload = FlagValue(argc, argv, "--workload")
                             ? FlagValue(argc, argv, "--workload")
                             : "default";
  uint64_t txns = U64Flag(argc, argv, "--txns", 10000);

  db::DbConfig cfg;
  if (HasFlag(argc, argv, "--ser")) {
    cfg.isolation = db::DbConfig::Isolation::kSer;
  }
  cfg.fault_seed = U64Flag(argc, argv, "--fault-seed", cfg.fault_seed);
  if (const char* hlc = FlagValue(argc, argv, "--hlc")) {
    uint64_t nodes = strtoull(hlc, nullptr, 10);
    if (nodes == 0 || nodes > 256) {
      std::fprintf(stderr, "--hlc=%s: node count must be in [1, 256]\n", hlc);
      return 2;
    }
    cfg.timestamping = db::DbConfig::Timestamping::kHlc;
    cfg.hlc_nodes = static_cast<uint32_t>(nodes);
    cfg.hlc_max_skew =
        static_cast<int64_t>(U64Flag(argc, argv, "--skew", 0));
  }
  if (const char* fault = FlagValue(argc, argv, "--fault")) {
    double p = DoubleFlag(argc, argv, "--fault-prob", 0.05);
    if (!strcmp(fault, "lost_update")) cfg.faults.lost_update_prob = p;
    else if (!strcmp(fault, "stale_read")) cfg.faults.stale_read_prob = p;
    else if (!strcmp(fault, "value")) cfg.faults.value_corruption_prob = p;
    else if (!strcmp(fault, "ts_swap")) cfg.faults.ts_swap_prob = p;
    else if (!strcmp(fault, "early_commit")) cfg.faults.early_commit_prob = p;
    else if (!strcmp(fault, "late_start")) cfg.faults.late_start_prob = p;
    else if (!strcmp(fault, "session_reorder")) {
      cfg.faults.session_reorder_prob = p;
    } else {
      std::fprintf(stderr, "unknown --fault=%s\n", fault);
      return 2;
    }
  }

  workload::LevelMix mix;
  if (const char* m = FlagValue(argc, argv, "--mix")) {
    std::string err;
    if (!ParseLevelMixSpec(m, &mix.si, &mix.ser, &mix.rc, &mix.ra, &err)) {
      std::fprintf(stderr, "--mix=%s: %s\n", m, err.c_str());
      return 2;
    }
  }

  History h;
  uint64_t mix_seed = 1;
  if (workload == "default") {
    workload::WorkloadParams p;
    p.txns = txns;
    p.sessions = static_cast<uint32_t>(U64Flag(argc, argv, "--sessions", 50));
    p.ops_per_txn = static_cast<uint32_t>(U64Flag(argc, argv, "--ops", 15));
    p.keys = U64Flag(argc, argv, "--keys", 1000);
    p.read_ratio = DoubleFlag(argc, argv, "--reads", 0.5);
    p.seed = U64Flag(argc, argv, "--seed", 1);
    mix_seed = p.seed;
    p.list_mode = HasFlag(argc, argv, "--list");
    if (const char* d = FlagValue(argc, argv, "--dist")) {
      if (!strcmp(d, "uniform")) {
        p.dist = workload::WorkloadParams::KeyDist::kUniform;
      } else if (!strcmp(d, "hotspot")) {
        p.dist = workload::WorkloadParams::KeyDist::kHotspot;
      } else {
        p.dist = workload::WorkloadParams::KeyDist::kZipf;
      }
    }
    h = workload::GenerateDefaultHistory(p, cfg);
  } else if (workload == "twitter") {
    workload::TwitterParams p;
    p.txns = txns;
    p.seed = U64Flag(argc, argv, "--seed", p.seed);
    mix_seed = p.seed;
    h = workload::GenerateTwitterHistory(p, cfg);
  } else if (workload == "rubis") {
    workload::RubisParams p;
    p.txns = txns;
    p.seed = U64Flag(argc, argv, "--seed", p.seed);
    mix_seed = p.seed;
    h = workload::GenerateRubisHistory(p, cfg);
  } else if (workload == "tpcc") {
    workload::TpccParams p;
    p.txns = txns;
    p.seed = U64Flag(argc, argv, "--seed", p.seed);
    mix_seed = p.seed;
    h = workload::GenerateTpccHistory(p, cfg);
  } else {
    std::fprintf(stderr, "unknown --workload=%s\n", workload.c_str());
    return 2;
  }
  workload::AssignLevels(&h, mix, mix_seed);

  hist::CodecStatus st = hist::SaveHistory(h, out);
  if (!st.ok) {
    std::fprintf(stderr, "save failed: %s\n", st.message.c_str());
    return 1;
  }
  std::printf("wrote %zu txns (%zu ops) to %s\n", h.txns.size(), h.NumOps(),
              out);
  return 0;
}
