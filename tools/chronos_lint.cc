// chronos_lint: repository-specific static checks for the determinism
// and concurrency contracts that generic tooling cannot express (see
// ROADMAP "Static analysis"). The checker's whole recovery and
// exploration story rests on "verdicts are a pure function of the input
// stream": wall-clock reads, unseeded randomness, or pointer-keyed
// iteration order anywhere on a verdict path would silently break it,
// and a second producer on an SPSC ring would corrupt the pipeline.
// Clang's -Wthread-safety enforces the ownership half of that story;
// this linter enforces the textual half — banned tokens per directory,
// cache-line alignment of shared ring atomics, explicit memory orders,
// and the single-producer call-site allowlists.
//
// Usage:
//   chronos_lint --root=DIR [--compdb=FILE] [--list-rules]
//
// Scans src/, tools/, tests/, bench/ under DIR (plus any in-tree files
// named by the compile_commands.json, which catches generated sources).
// Directories named `fixtures` are skipped: they hold the linter's own
// planted-violation test data (tests/tools/fixtures/<rule>/), linted by
// pointing --root at the fixture itself. Findings go to stdout as
// `path:line: rule-id: message`. Exit 0 when clean, 1 with findings,
// 2 on usage/IO errors.
//
// Suppressions: `// chronos-lint: allow(<rule-id>)` on the offending line
// or in the comment block directly above it. Every honored suppression
// is counted and reported; an allow() naming an unknown rule is itself
// a finding (unknown-allow), so stale escapes cannot rot silently.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Rule {
  const char* id;
  const char* what;
};

// The registry: ids are stable (they appear in allow() escapes and in
// ROADMAP's rule table).
const Rule kRules[] = {
    {"banned-clock",
     "no wall/steady clock reads in src/core, src/online, src/explore "
     "(verdicts must be a pure function of the input stream)"},
    {"banned-random",
     "no ambient randomness (rand, random_device, mt19937) in src/core, "
     "src/online, src/explore; seeded PRNGs live in fuzz/workload"},
    {"ptr-ordered-container",
     "no pointer-keyed std::map/std::set in src/ (iteration order would "
     "depend on the allocator)"},
    {"ring-alignas",
     "every std::atomic member of the SPSC ring carries an explicit "
     "alignas (false sharing between the ring sides)"},
    {"atomic-explicit-order",
     "atomic ops in the ring and the sharded pipeline name their "
     "memory_order explicitly (no seq_cst-by-default)"},
    {"seqcst-waiter-only",
     "memory_order_seq_cst in the ring only on waiter-flag statements "
     "(the documented park/wake protocol)"},
    {"ring-single-producer",
     "ring operations in sharded_aion.cc only from the functions that "
     "own that ring side (the SPSC contract)"},
    {"footprint-lockfree",
     "GetFootprint bodies take no locks and no barriers (they run "
     "inside the GC policy check)"},
    {"include-guard",
     "canonical include guards: CHRONOS_<PATH>_H_ with src/ stripped"},
    {"assert-style",
     "no bare assert() in src/ (disabled under NDEBUG; prefer explicit "
     "handling, escape deliberate unreachable-guards)"},
    {"unknown-allow", "chronos-lint: allow() names a registered rule"},
};

bool KnownRule(const std::string& id) {
  for (const Rule& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

struct Finding {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string msg;
};

struct FileCtx {
  std::string rel;                // forward-slash path relative to root
  std::vector<std::string> raw;   // as read
  std::vector<std::string> code;  // comments and string literals blanked
  // Per line: raw content is only comments/whitespace (escape blocks).
  std::vector<bool> comment_only;
  // Per line: rule ids named by chronos-lint: allow(...) on that line.
  std::vector<std::vector<std::string>> allows;
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Blanks comments and string/char literals so token rules cannot match
// inside them. Tracks block comments across lines.
std::vector<std::string> StripCode(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    for (size_t i = 0; i < line.size();) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        code[i] = quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            code[i] = quote;
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = c;
      ++i;
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool IsBlank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

FileCtx LoadFile(const fs::path& root, const fs::path& path) {
  FileCtx ctx;
  ctx.rel = fs::relative(path, root).generic_string();
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ctx.raw.push_back(line);
  }
  ctx.code = StripCode(ctx.raw);
  static const std::regex kAllow(R"(chronos-lint:\s*allow\(([A-Za-z0-9_-]+)\))");
  ctx.comment_only.resize(ctx.raw.size());
  ctx.allows.resize(ctx.raw.size());
  for (size_t i = 0; i < ctx.raw.size(); ++i) {
    ctx.comment_only[i] = !IsBlank(ctx.raw[i]) && IsBlank(ctx.code[i]);
    auto begin = std::sregex_iterator(ctx.raw[i].begin(), ctx.raw[i].end(),
                                      kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      ctx.allows[i].push_back((*it)[1].str());
    }
  }
  return ctx;
}

// A finding at `line` (0-based) is suppressed by an allow(rule) on the
// same line or anywhere in the contiguous comment block directly above.
bool Suppressed(const FileCtx& ctx, size_t line, const std::string& rule,
                size_t* suppressions) {
  auto has = [&](size_t i) {
    for (const std::string& id : ctx.allows[i]) {
      if (id == rule) return true;
    }
    return false;
  };
  if (has(line)) {
    ++*suppressions;
    return true;
  }
  for (size_t i = line; i > 0 && ctx.comment_only[i - 1];) {
    --i;
    if (has(i)) {
      ++*suppressions;
      return true;
    }
  }
  return false;
}

class Linter {
 public:
  void Report(const FileCtx& ctx, size_t line0, const char* rule,
              std::string msg) {
    if (Suppressed(ctx, line0, rule, &suppressions_)) return;
    findings_.push_back({ctx.rel, line0 + 1, rule, std::move(msg)});
  }

  // Joins the statement starting at the opening paren found at/after
  // `col` on `line0` until parens balance (multi-line calls).
  static std::string JoinCall(const FileCtx& ctx, size_t line0, size_t col) {
    std::string joined;
    int depth = 0;
    bool opened = false;
    for (size_t i = line0; i < ctx.code.size(); ++i) {
      const std::string& l = ctx.code[i];
      size_t start = (i == line0) ? col : 0;
      for (size_t j = start; j < l.size(); ++j) {
        joined.push_back(l[j]);
        if (l[j] == '(') {
          ++depth;
          opened = true;
        } else if (l[j] == ')') {
          --depth;
          if (opened && depth == 0) return joined;
        }
      }
      joined.push_back('\n');
      if (i - line0 > 20) break;  // malformed; bail out
    }
    return joined;
  }

  void CheckBannedTokens(const FileCtx& ctx) {
    const bool critical = StartsWith(ctx.rel, "src/core/") ||
                          StartsWith(ctx.rel, "src/online/") ||
                          StartsWith(ctx.rel, "src/explore/");
    if (!critical) return;
    // Wall-clock timing is legitimate exactly where we *measure* the
    // checker (never where we decide): the Stopwatch utility and the
    // pipeline's throughput meter.
    const bool clock_ok =
        ctx.rel == "src/core/stats.h" || ctx.rel == "src/online/pipeline.cc";
    static const std::regex kClock(
        R"(std::chrono::(steady|system|high_resolution)_clock|\bgettimeofday\b|\btime\s*\(\s*(NULL|nullptr|0|\))|\bclock\s*\(\s*\))");
    static const std::regex kRandom(
        R"(\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bmt19937)");
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      if (!clock_ok && std::regex_search(ctx.code[i], kClock)) {
        Report(ctx, i, "banned-clock",
               "wall/steady clock read on a determinism-critical path");
      }
      if (std::regex_search(ctx.code[i], kRandom)) {
        Report(ctx, i, "banned-random",
               "ambient randomness on a determinism-critical path");
      }
    }
  }

  void CheckPtrOrderedContainers(const FileCtx& ctx) {
    if (!StartsWith(ctx.rel, "src/")) return;
    static const std::regex kPtrKey(R"(std::(map|set)\s*<[^<>,]*\*)");
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      if (std::regex_search(ctx.code[i], kPtrKey)) {
        Report(ctx, i, "ptr-ordered-container",
               "pointer-keyed ordered container: iteration order depends "
               "on the allocator");
      }
    }
  }

  void CheckRingAlignas(const FileCtx& ctx) {
    if (ctx.rel != "src/online/spsc_ring.h") return;
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      const std::string& l = ctx.code[i];
      if (l.find("std::atomic<") == std::string::npos) continue;
      if (l.find("alignas(") == std::string::npos) {
        Report(ctx, i, "ring-alignas",
               "std::atomic ring member without an explicit alignas");
      }
    }
  }

  void CheckAtomicOrders(const FileCtx& ctx) {
    if (ctx.rel != "src/online/spsc_ring.h" &&
        ctx.rel != "src/online/sharded_aion.cc") {
      return;
    }
    static const std::regex kOp(
        R"(\.\s*(load|store|fetch_add|fetch_sub|exchange|compare_exchange_\w+)\s*\()");
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      auto begin = std::sregex_iterator(ctx.code[i].begin(), ctx.code[i].end(),
                                        kOp);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        size_t col = static_cast<size_t>(it->position()) + it->length() - 1;
        std::string call = JoinCall(ctx, i, col);
        if (call.find("memory_order") == std::string::npos) {
          Report(ctx, i, "atomic-explicit-order",
                 "atomic " + (*it)[1].str() +
                     " without an explicit memory_order");
        }
      }
    }
  }

  void CheckSeqCstWaiterOnly(const FileCtx& ctx) {
    if (ctx.rel != "src/online/spsc_ring.h") return;
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      if (ctx.code[i].find("memory_order_seq_cst") == std::string::npos) {
        continue;
      }
      if (ctx.code[i].find("waiting_") == std::string::npos) {
        Report(ctx, i, "seqcst-waiter-only",
               "seq_cst outside the waiter-flag protocol (the ring's only "
               "sanctioned use)");
      }
    }
  }

  // Tracks `ShardedAion::Function` definitions by brace depth and
  // restricts every ring operation to the functions that own that ring
  // side. This is the textual complement of the -Wthread-safety roles:
  // the annotations prove a role is held, the allowlist pins down *who*
  // may legally assume it.
  void CheckRingSingleProducer(const FileCtx& ctx) {
    if (ctx.rel != "src/online/sharded_aion.cc") return;
    static const std::map<std::string, std::set<std::string>> kAllowed = {
        // Per-shard command rings: sequencer produces, worker consumes.
        {"ring.Stage", {"StageShard"}},
        {"ring.Publish", {"StageShard", "FlushShards"}},
        {"ring.Close", {"SequencerLoop"}},
        {"ring.PopBatch", {"WorkerLoop"}},
        // Header ring: coordinator produces, sequencer consumes.
        {"seq_ring_.Push",
         {"OnTransaction", "DispatchFinalize", "DispatchGc", "WaitAll"}},
        {"seq_ring_.Close", {"~ShardedAion"}},
        {"seq_ring_.PopBatch", {"SequencerLoop"}},
        // Pre-stage ingress rings: coordinator produces, classifier
        // consumes.
        {"in.Push", {"OnTransaction"}},
        {"in.Close", {"~ShardedAion"}},
        {"in.PopBatch", {"ClassifierLoop"}},
        // Pre-stage egress rings: classifier produces, sequencer
        // consumes.
        {"out.Push", {"ClassifierLoop"}},
        {"out.Close", {"ClassifierLoop"}},
        {"out.Pop", {"SequencerLoop"}},
    };
    // A definition line is `... ShardedAion::Name(...`; the last match
    // wins (qualified return types also match). Thread-entry bindings
    // like `&ShardedAion::WorkerLoop,` carry no `(` and do not match.
    static const std::regex kDef(R"(ShardedAion::(~?\w+)\s*\()");
    static const std::regex kOp(
        R"((?:^|[^\w.])((?:\w+(?:\.|->))?(ring|seq_ring_|in|out)\.(Stage|Publish|Push|Pop|PopBatch|Close))\s*\()");
    std::string current;
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      const std::string& l = ctx.code[i];
      auto defs = std::sregex_iterator(l.begin(), l.end(), kDef);
      std::string last;
      for (auto it = defs; it != std::sregex_iterator(); ++it) {
        last = (*it)[1].str();
      }
      if (!last.empty()) current = last;
      auto begin = std::sregex_iterator(l.begin(), l.end(), kOp);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::string key = (*it)[2].str() + "." + (*it)[3].str();
        if (key == "ring.Push") key = "ring.Stage";  // same producer side
        auto allowed = kAllowed.find(key);
        if (allowed == kAllowed.end()) continue;  // not a tracked ring
        if (allowed->second.count(current) == 0) {
          Report(ctx, i, "ring-single-producer",
                 key + " from " +
                     (current.empty() ? "file scope" :
                                        "ShardedAion::" + current) +
                     " violates the ring ownership allowlist");
        }
      }
    }
  }

  void CheckFootprintLockfree(const FileCtx& ctx) {
    if (!StartsWith(ctx.rel, "src/online/") || !EndsWith(ctx.rel, ".cc")) {
      return;
    }
    static const std::regex kDef(R"(\w+::GetFootprint\s*\()");
    static const std::regex kBanned(
        R"(\bmutex\b|\bMutex\b|MutexLock|lock_guard|unique_lock|scoped_lock|\block\b|\bLock\b|WaitAll)");
    // Depth is tracked relative to the definition line (the file-level
    // namespace braces put every function at depth >= 1).
    bool in_footprint = false;
    bool entered = false;
    int depth = 0;
    int base = 0;
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      const std::string& l = ctx.code[i];
      if (!in_footprint && std::regex_search(l, kDef)) {
        in_footprint = true;
        entered = false;
        base = depth;
      }
      if (in_footprint && entered && std::regex_search(l, kBanned)) {
        Report(ctx, i, "footprint-lockfree",
               "lock or barrier on the GetFootprint path (it runs inside "
               "the GC policy check)");
      }
      for (char c : l) {
        if (c == '{') {
          ++depth;
          if (in_footprint) entered = true;
        }
        if (c == '}') --depth;
      }
      if (in_footprint && entered && depth <= base) in_footprint = false;
    }
  }

  void CheckIncludeGuard(const FileCtx& ctx) {
    if (!EndsWith(ctx.rel, ".h")) return;
    std::string stem = ctx.rel;
    if (StartsWith(stem, "src/")) stem = stem.substr(4);
    std::string guard = "CHRONOS_";
    for (char c : stem) {
      guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? static_cast<char>(
                                std::toupper(static_cast<unsigned char>(c)))
                          : '_');
    }
    guard.push_back('_');
    bool saw_ifndef = false;
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      const std::string& l = ctx.code[i];
      size_t pos = l.find("#ifndef");
      if (pos == std::string::npos) continue;
      saw_ifndef = true;
      std::istringstream ss(l.substr(pos + 7));
      std::string got;
      ss >> got;
      if (got != guard) {
        Report(ctx, i, "include-guard",
               "guard is " + got + ", expected " + guard);
      } else if (i + 1 >= ctx.code.size() ||
                 ctx.code[i + 1].find("#define " + guard) ==
                     std::string::npos) {
        Report(ctx, i, "include-guard",
               "#ifndef " + guard + " not followed by its #define");
      }
      break;  // only the first #ifndef is the guard
    }
    if (!saw_ifndef && !ctx.raw.empty()) {
      Report(ctx, 0, "include-guard", "header has no include guard");
    }
  }

  void CheckAssertStyle(const FileCtx& ctx) {
    if (!StartsWith(ctx.rel, "src/")) return;
    static const std::regex kAssert(R"((^|[^\w_])assert\s*\()");
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      if (ctx.code[i].find("static_assert") != std::string::npos) continue;
      if (std::regex_search(ctx.code[i], kAssert)) {
        Report(ctx, i, "assert-style",
               "bare assert() compiles out under NDEBUG");
      }
    }
  }

  void CheckUnknownAllows(const FileCtx& ctx) {
    for (size_t i = 0; i < ctx.allows.size(); ++i) {
      for (const std::string& id : ctx.allows[i]) {
        if (!KnownRule(id)) {
          findings_.push_back({ctx.rel, i + 1, "unknown-allow",
                               "allow(" + id + ") names no registered rule"});
        }
      }
    }
  }

  void LintFile(const FileCtx& ctx) {
    ++files_scanned_;
    CheckBannedTokens(ctx);
    CheckPtrOrderedContainers(ctx);
    CheckRingAlignas(ctx);
    CheckAtomicOrders(ctx);
    CheckSeqCstWaiterOnly(ctx);
    CheckRingSingleProducer(ctx);
    CheckFootprintLockfree(ctx);
    CheckIncludeGuard(ctx);
    CheckAssertStyle(ctx);
    CheckUnknownAllows(ctx);
  }

  int Finish() {
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    for (const Finding& f : findings_) {
      std::printf("%s:%zu: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.msg.c_str());
    }
    std::printf(
        "chronos_lint: %zu finding(s), %zu suppression(s) honored, "
        "%zu file(s) scanned\n",
        findings_.size(), suppressions_, files_scanned_);
    return findings_.empty() ? 0 : 1;
  }

 private:
  std::vector<Finding> findings_;
  size_t suppressions_ = 0;
  size_t files_scanned_ = 0;
};

bool LintableName(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

// Minimal compile_commands.json scan: every `"file": "..."` entry. The
// format is machine-written by CMake, so a targeted scan beats hauling
// in a JSON parser the toolchain image may not have.
std::vector<std::string> CompdbFiles(const std::string& path) {
  std::vector<std::string> files;
  std::ifstream in(path);
  if (!in) return files;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  static const std::regex kFile(R"re("file"\s*:\s*"([^"]+)")re");
  auto begin = std::sregex_iterator(text.begin(), text.end(), kFile);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    files.push_back((*it)[1].str());
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg = ".";
  std::string compdb;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--root=")) {
      root_arg = arg.substr(7);
    } else if (StartsWith(arg, "--compdb=")) {
      compdb = arg.substr(9);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else {
      std::fprintf(stderr,
                   "usage: chronos_lint --root=DIR [--compdb=FILE] "
                   "[--list-rules]\n");
      return 2;
    }
  }
  if (list_rules) {
    for (const Rule& r : kRules) std::printf("%s: %s\n", r.id, r.what);
    return 0;
  }

  std::error_code ec;
  fs::path root = fs::canonical(root_arg, ec);
  if (ec) {
    std::fprintf(stderr, "chronos_lint: cannot open root %s\n",
                 root_arg.c_str());
    return 2;
  }

  std::set<std::string> paths;  // absolute, deduplicated, sorted
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    fs::path d = root / dir;
    if (!fs::is_directory(d, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(d, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory(ec) && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();  // linter test data, linted solo
        continue;
      }
      if (it->is_regular_file(ec) && LintableName(it->path())) {
        paths.insert(fs::canonical(it->path(), ec).string());
      }
    }
  }
  if (!compdb.empty()) {
    for (const std::string& f : CompdbFiles(compdb)) {
      fs::path p = fs::canonical(f, ec);
      if (ec) continue;
      // Only files inside the tree; system headers and generated
      // out-of-tree sources are not ours to lint.
      if (StartsWith(p.generic_string(), root.generic_string() + "/") &&
          LintableName(p)) {
        paths.insert(p.string());
      }
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "chronos_lint: nothing to scan under %s\n",
                 root.string().c_str());
    return 2;
  }

  Linter linter;
  for (const std::string& p : paths) {
    linter.LintFile(LoadFile(root, fs::path(p)));
  }
  return linter.Finish();
}
