// Quickstart: generate a workload on the bundled SI database, export its
// history, and check it offline with CHRONOS — the 60-second tour of the
// library's public API.
#include <cstdio>

#include "core/chronos.h"
#include "hist/codec.h"
#include "workload/generator.h"

using namespace chronos;

int main() {
  // 1. Run a Table-I-style workload against the in-memory SI database.
  workload::WorkloadParams params;
  params.sessions = 20;
  params.txns = 10000;
  params.ops_per_txn = 10;
  params.keys = 500;
  History history = workload::GenerateDefaultHistory(params);
  std::printf("generated %zu committed transactions (%zu operations)\n",
              history.txns.size(), history.NumOps());

  // 2. Persist and reload it (the CDC-style text format).
  hist::SaveHistory(history, "/tmp/quickstart.hist");
  History loaded;
  hist::CodecStatus status = hist::LoadHistory("/tmp/quickstart.hist", &loaded);
  if (!status.ok) {
    std::printf("load failed: %s\n", status.message.c_str());
    return 1;
  }

  // 3. Check snapshot isolation offline.
  CountingSink sink;
  CheckStats stats = Chronos::CheckHistory(loaded, &sink);
  std::printf("checked %zu txns in %.3fs: %zu violations\n", stats.txns,
              stats.TotalSeconds(), stats.violations);

  // 4. Corrupt one read and check again: CHRONOS pinpoints the anomaly.
  loaded.txns[5000].ops[0] = {OpType::kRead, 1, 424242, 0};
  CountingSink bad;
  Chronos::CheckHistory(loaded, &bad);
  std::printf("after corrupting one read: %zu violations\n", bad.total());
  for (const Violation& v : bad.first()) {
    std::printf("  %s\n", v.ToString().c_str());
  }
  return bad.total() > 0 ? 0 : 1;
}
