// Online monitoring (the paper's Fig. 3 workflow): a database runs a
// workload while a collector streams committed transactions — batched,
// delayed, out of order — into AION, which reports violations as EXT
// timeouts expire. Demonstrates flip-flop statistics and GC under a
// live stream.
#include <cstdio>

#include "core/aion.h"
#include "hist/collector.h"
#include "online/pipeline.h"
#include "workload/generator.h"

using namespace chronos;

int main() {
  // A database with a lurking bug: 0.2% of reads are served from a stale
  // snapshot (the kind of defect Jepsen hunts for).
  db::DbConfig cfg;
  cfg.faults.stale_read_prob = 0.002;
  workload::WorkloadParams params;
  params.sessions = 24;
  params.txns = 20000;
  params.ops_per_txn = 8;
  History history = workload::GenerateDefaultHistory(params, cfg);

  // Collector: batches of 500 txns, per-txn delays N(100, 15^2) ms.
  hist::CollectorParams cp;
  cp.batch_size = 500;
  cp.delay_mean_ms = 100;
  cp.delay_stddev_ms = 15;
  auto stream = hist::ScheduleDelivery(history, cp);

  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 5000;  // the paper's conservative timeout
  Aion checker(opt, &sink);
  online::RunResult result =
      online::RunMaxRate(&checker, stream, online::GcPolicy::Threshold(8000, 4000));

  std::printf("online check: %llu txns in %.2fs (avg %.0f TPS)\n",
              static_cast<unsigned long long>(result.txns),
              result.wall_seconds, result.AvgTps());
  std::printf("violations: EXT=%zu NOCONFLICT=%zu INT=%zu SESSION=%zu\n",
              sink.count(ViolationType::kExt),
              sink.count(ViolationType::kNoConflict),
              sink.count(ViolationType::kInt),
              sink.count(ViolationType::kSession));
  std::printf("flip-flops: %llu across %llu txns (asynchrony-induced "
              "transient verdicts, later rectified)\n",
              static_cast<unsigned long long>(
                  checker.flip_stats().total_flips()),
              static_cast<unsigned long long>(
                  checker.flip_stats().txns_with_flips()));
  std::printf("GC passes: %llu, final live txns: %zu\n",
              static_cast<unsigned long long>(checker.stats().gc_passes),
              checker.GetFootprint().live_txns);
  std::printf("first findings:\n");
  size_t shown = 0;
  for (const Violation& v : sink.first()) {
    if (++shown > 5) break;
    std::printf("  %s\n", v.ToString().c_str());
  }
  return sink.count(ViolationType::kExt) > 0 ? 0 : 1;
}
