// Reproduces the clock-skew bug class of paper Sec. V-D (found in
// YugabyteDB v2.17.1.0): with decentralized HLC timestamps and skewed
// node clocks, commit timestamps can invert against start timestamps and
// snapshots become unavailable, which surfaces as Eq.(1) / EXT / SESSION
// violations under timestamp-based checking.
#include <cstdio>

#include "core/chronos.h"
#include "workload/generator.h"

using namespace chronos;

namespace {

size_t RunWithSkew(int64_t skew, CountingSink* sink) {
  db::DbConfig cfg;
  cfg.timestamping = db::DbConfig::Timestamping::kHlc;
  cfg.hlc_nodes = 3;
  cfg.hlc_max_skew = skew;
  workload::WorkloadParams params;
  params.sessions = 12;
  params.txns = 5000;
  params.ops_per_txn = 8;
  params.keys = 200;
  History h = workload::GenerateDefaultHistory(params, cfg);
  Chronos::CheckHistory(h, sink);
  return sink->total();
}

}  // namespace

int main() {
  CountingSink clean;
  size_t ok = RunWithSkew(0, &clean);
  std::printf("HLC, no skew:    %zu violations\n", ok);

  CountingSink skewed;
  size_t bad = RunWithSkew(2000, &skewed);
  std::printf("HLC, heavy skew: %zu violations "
              "(EXT=%zu SESSION=%zu TS-ORDER=%zu)\n",
              bad, skewed.count(ViolationType::kExt),
              skewed.count(ViolationType::kSession),
              skewed.count(ViolationType::kTsOrder));
  if (ok == 0 && bad > 0) {
    std::printf("clock skew made isolation observably broken — exactly the "
                "bug class CHRONOS reproduced in YugabyteDB\n");
    return 0;
  }
  return 1;
}
