// Twitter-clone end-to-end demo: run the paper's Twitter workload on the
// SER-mode database, check serializability both offline (CHRONOS-SER)
// and online (AION-SER), and show the key-space growth that makes
// Twitter the hard case for online checking (paper Sec. VI-B).
#include <cstdio>
#include <unordered_set>

#include "core/aion.h"
#include "core/chronos.h"
#include "hist/collector.h"
#include "online/pipeline.h"
#include "workload/apps.h"

using namespace chronos;

int main() {
  db::DbConfig cfg;
  cfg.isolation = db::DbConfig::Isolation::kSer;
  workload::TwitterParams params;
  params.users = 500;
  params.txns = 15000;
  History h = workload::GenerateTwitterHistory(params, cfg);

  std::unordered_set<Key> keys;
  for (const auto& t : h.txns) {
    for (const auto& op : t.ops) keys.insert(op.key);
  }
  std::printf("twitter: %zu txns over %zu distinct keys\n", h.txns.size(),
              keys.size());

  CountingSink offline;
  CheckStats stats = ChronosSer::CheckHistory(h, &offline);
  std::printf("offline CHRONOS-SER: %.3fs, %zu violations\n",
              stats.TotalSeconds(), stats.violations);

  hist::CollectorParams cp;
  cp.delay_mean_ms = 50;
  cp.delay_stddev_ms = 10;
  auto stream = hist::ScheduleDelivery(h, cp);
  CountingSink online_sink;
  Aion::Options opt;
  opt.mode = Aion::Mode::kSer;
  opt.ext_timeout_ms = 5000;
  Aion checker(opt, &online_sink);
  online::RunResult r = online::RunMaxRate(
      &checker, stream, online::GcPolicy::Threshold(8000, 4000));
  std::printf("online AION-SER: avg %.0f TPS, %zu violations, %llu "
              "flip-flops\n",
              r.AvgTps(), static_cast<size_t>(online_sink.total()),
              static_cast<unsigned long long>(
                  checker.flip_stats().total_flips()));
  return offline.total() == 0 && online_sink.total() == 0 ? 0 : 1;
}
