// Bank-transfer audit: a classic lost-update scenario. Two tellers
// concurrently update the same account; a buggy bank (first-committer-
// wins disabled) silently loses one update. CHRONOS's NOCONFLICT check
// catches it; the same history with the check enabled stays clean.
#include <cstdio>

#include "core/chronos.h"
#include "db/database.h"

using namespace chronos;

namespace {

constexpr Key kAccountA = 1;
constexpr Key kAccountB = 2;

// Transfer `amount` from A to B, reading balances first.
void Transfer(db::Database* db, SessionId teller, Value amount) {
  auto txn = db->Begin(teller);
  Value a = db->Read(txn.get(), kAccountA);
  Value b = db->Read(txn.get(), kAccountB);
  db->Write(txn.get(), kAccountA, a - amount);
  db->Write(txn.get(), kAccountB, b + amount);
  db->Commit(std::move(txn));
}

size_t AuditBank(bool buggy) {
  db::DbConfig cfg;
  if (buggy) cfg.faults.lost_update_prob = 1.0;  // validation disabled
  db::Database db(cfg);

  // Two tellers race on the same accounts: begin both, then commit both.
  for (int round = 0; round < 50; ++round) {
    auto t1 = db.Begin(0);
    auto t2 = db.Begin(1);
    Value a1 = db.Read(t1.get(), kAccountA);
    Value a2 = db.Read(t2.get(), kAccountA);
    db.Write(t1.get(), kAccountA, a1 - 10);
    db.Write(t2.get(), kAccountA, a2 - 20);
    db.Commit(std::move(t1));
    db.Commit(std::move(t2));  // buggy: commits although concurrent
    Transfer(&db, 2, 5);       // interleave a well-behaved teller
  }

  CountingSink sink;
  Chronos::CheckHistory(db.ExportHistory(), &sink);
  return sink.count(ViolationType::kNoConflict);
}

}  // namespace

int main() {
  size_t healthy = AuditBank(/*buggy=*/false);
  size_t buggy = AuditBank(/*buggy=*/true);
  std::printf("healthy bank: %zu lost-update (NOCONFLICT) findings\n",
              healthy);
  std::printf("buggy bank:   %zu lost-update (NOCONFLICT) findings\n", buggy);
  if (healthy == 0 && buggy > 0) {
    std::printf("audit verdict: the buggy bank loses updates — caught by "
                "timestamp-based checking\n");
    return 0;
  }
  return 1;
}
