// The default workload of the paper's evaluation (Table I): multi-session
// read/write transactions over a flat key space with a configurable
// access distribution, executed against the Algorithm-1 database with a
// deterministic interleaving so that transactions genuinely overlap.
#ifndef CHRONOS_WORKLOAD_GENERATOR_H_
#define CHRONOS_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "core/types.h"
#include "db/database.h"

namespace chronos::workload {

/// Percentage mix of per-transaction isolation-level tags
/// (Transaction::iso). Fields are whole percentages; the remainder up
/// to 100 stays untagged (run-level default). All-zero (the default)
/// disables tagging entirely, so existing single-level workloads stay
/// byte-identical per seed.
struct LevelMix {
  uint32_t si = 0;
  uint32_t ser = 0;
  uint32_t rc = 0;
  uint32_t ra = 0;

  bool empty() const { return si + ser + rc + ra == 0; }
  uint32_t total() const { return si + ser + rc + ra; }
};

/// Deterministically tags `history`'s transactions according to `mix`:
/// each transaction's level is decided by a splitmix64 hash of
/// (seed, tid), so the assignment is stable across runs, independent of
/// transaction order, and reproducible from the seed alone.
void AssignLevels(History* history, const LevelMix& mix, uint64_t seed);

/// Table I parameters with the paper's defaults.
struct WorkloadParams {
  uint32_t sessions = 50;        ///< #sess
  uint64_t txns = 100000;        ///< #txns (committed)
  uint32_t ops_per_txn = 15;     ///< #ops/txn
  double read_ratio = 0.5;       ///< %reads
  uint64_t keys = 1000;          ///< #keys

  enum class KeyDist { kUniform, kZipf, kHotspot };
  KeyDist dist = KeyDist::kZipf; ///< dist
  double zipf_theta = 0.99;

  bool list_mode = false;        ///< list histories (appends + list reads)
  uint64_t seed = 1;
  /// Per-transaction isolation-level tag mix, applied to the exported
  /// history by GenerateDefaultHistory (empty: no tags).
  LevelMix mix;
};

/// Runs the workload to completion against `db` (deterministic
/// single-thread interleaving of `sessions` logical sessions). Aborted
/// transactions are retried with fresh operations; exactly `params.txns`
/// transactions commit.
void RunDefaultWorkload(db::Database* db, const WorkloadParams& params);

/// Convenience: creates a database with `config`, runs the workload, and
/// exports its history.
History GenerateDefaultHistory(const WorkloadParams& params,
                               const db::DbConfig& config = {});

/// Multi-threaded variant used by the DB-throughput bench (Fig. 15):
/// `threads` worker threads each drive a disjoint set of sessions.
/// Returns the committed-transaction throughput in txns/second.
double RunThreadedWorkload(db::Database* db, const WorkloadParams& params,
                           uint32_t threads);

}  // namespace chronos::workload

#endif  // CHRONOS_WORKLOAD_GENERATOR_H_
