// Composite-key interning for the application workloads (Twitter, RUBiS,
// TPC-C): logical keys like (table, pk1, pk2) are mixed into the 64-bit
// key space the checkers operate on. TiDB/YugabyteDB do the analogous
// SQL-row -> KV-key translation in their storage layers (paper Sec. IV-B).
#ifndef CHRONOS_WORKLOAD_KEYSPACE_H_
#define CHRONOS_WORKLOAD_KEYSPACE_H_

#include <cstdint>

#include "core/types.h"

namespace chronos::workload {

/// splitmix64 finalizer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Interns a composite key (table, a, b) into the flat key space.
inline Key ComposeKey(uint64_t table, uint64_t a, uint64_t b = 0) {
  return Mix64(Mix64(table * 0x100000001B3ULL ^ a) ^ (b + 0x1234567));
}

}  // namespace chronos::workload

#endif  // CHRONOS_WORKLOAD_KEYSPACE_H_
