// Application workloads of the paper's evaluation: Twitter (a simple
// Twitter clone, Sec. V-A1), RUBiS (an eBay-like auction site), and a
// TPC-C-flavoured workload (appendix Fig. 24) whose composite primary
// keys produce a very large key domain.
#ifndef CHRONOS_WORKLOAD_APPS_H_
#define CHRONOS_WORKLOAD_APPS_H_

#include <cstdint>

#include "core/types.h"
#include "db/database.h"

namespace chronos::workload {

/// Twitter clone: users create tweets, follow/unfollow accounts, and view
/// timelines of recent tweets (paper: 500 users). The key space grows
/// with the number of posted tweets, which is what stresses AION's
/// per-key frontier structures (Sec. VI-B).
struct TwitterParams {
  uint32_t users = 500;
  uint32_t sessions = 24;
  uint64_t txns = 10000;
  uint64_t seed = 7;
  double post_ratio = 0.3;
  double follow_ratio = 0.1;  // remainder: timeline reads
};

void RunTwitterWorkload(db::Database* db, const TwitterParams& params);
History GenerateTwitterHistory(const TwitterParams& params,
                               const db::DbConfig& config = {});

/// RUBiS auction site: register users, list items, place bids, view
/// items, leave comments (paper: 200 users, 800 items).
struct RubisParams {
  uint32_t users = 200;
  uint32_t items = 800;
  uint32_t sessions = 24;
  uint64_t txns = 10000;
  uint64_t seed = 11;
};

void RunRubisWorkload(db::Database* db, const RubisParams& params);
History GenerateRubisHistory(const RubisParams& params,
                             const db::DbConfig& config = {});

/// TPC-C-flavoured workload: new-order / payment / order-status over
/// warehouses, districts, customers and stock with composite primary
/// keys. Offline checking only in the paper (appendix: maintaining
/// per-timestamp frontiers for its huge key range is what makes online
/// checking expensive).
struct TpccParams {
  uint32_t warehouses = 2;
  uint32_t districts_per_wh = 10;
  uint32_t customers_per_district = 100;
  uint32_t items = 1000;
  uint32_t sessions = 24;
  uint64_t txns = 10000;
  uint64_t seed = 13;
};

void RunTpccWorkload(db::Database* db, const TpccParams& params);
History GenerateTpccHistory(const TpccParams& params,
                            const db::DbConfig& config = {});

}  // namespace chronos::workload

#endif  // CHRONOS_WORKLOAD_APPS_H_
