// Key-access distributions of the default workload (paper Table I:
// uniform, zipfian, hotspot where 80% of operations target 20% of keys).
#ifndef CHRONOS_WORKLOAD_ZIPF_H_
#define CHRONOS_WORKLOAD_ZIPF_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace chronos::workload {

/// YCSB-style Zipfian generator over [0, n).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta = 0.99) : n_(n), theta_(theta) {
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  template <typename Rng>
  uint64_t Next(Rng& rng) {
    double u = std::uniform_real_distribution<double>(0, 1)(rng);
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_, zetan_, zeta2_, alpha_, eta_;
};

/// Hotspot: with probability `hot_op_fraction` pick uniformly from the
/// first `hot_key_fraction` of the key space, else from the rest.
class HotspotGenerator {
 public:
  HotspotGenerator(uint64_t n, double hot_key_fraction = 0.2,
                   double hot_op_fraction = 0.8)
      : n_(n),
        hot_keys_(std::max<uint64_t>(
            1, static_cast<uint64_t>(static_cast<double>(n) *
                                     hot_key_fraction))),
        hot_op_fraction_(hot_op_fraction) {}

  template <typename Rng>
  uint64_t Next(Rng& rng) {
    std::uniform_real_distribution<double> coin(0, 1);
    if (coin(rng) < hot_op_fraction_) {
      return std::uniform_int_distribution<uint64_t>(0, hot_keys_ - 1)(rng);
    }
    if (hot_keys_ >= n_) return n_ - 1;
    return std::uniform_int_distribution<uint64_t>(hot_keys_, n_ - 1)(rng);
  }

 private:
  uint64_t n_, hot_keys_;
  double hot_op_fraction_;
};

}  // namespace chronos::workload

#endif  // CHRONOS_WORKLOAD_ZIPF_H_
