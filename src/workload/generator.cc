#include "workload/generator.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "workload/zipf.h"

namespace chronos::workload {
namespace {

// Unified key picker over the three Table I distributions.
class KeyPicker {
 public:
  KeyPicker(const WorkloadParams& p)
      : dist_(p.dist),
        n_(p.keys),
        zipf_(p.keys, p.zipf_theta),
        hotspot_(p.keys) {}

  template <typename Rng>
  Key Next(Rng& rng) {
    switch (dist_) {
      case WorkloadParams::KeyDist::kUniform:
        return std::uniform_int_distribution<uint64_t>(0, n_ - 1)(rng);
      case WorkloadParams::KeyDist::kZipf:
        return std::min<uint64_t>(zipf_.Next(rng), n_ - 1);
      case WorkloadParams::KeyDist::kHotspot:
        return hotspot_.Next(rng);
    }
    return 0;
  }

 private:
  WorkloadParams::KeyDist dist_;
  uint64_t n_;
  ZipfGenerator zipf_;
  HotspotGenerator hotspot_;
};

// One logical session's in-flight transaction.
struct OpenTxn {
  std::unique_ptr<db::Database::Txn> txn;
  uint32_t ops_done = 0;
};

}  // namespace

void AssignLevels(History* history, const LevelMix& mix, uint64_t seed) {
  if (mix.empty()) return;
  for (Transaction& t : history->txns) {
    // splitmix64 finalizer over (seed, tid): order-independent and
    // stable, so re-generating or re-tagging the same history with the
    // same seed always yields the same levels.
    uint64_t x = seed ^ (t.tid * 0x9E3779B97F4A7C15ULL);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    uint32_t roll = static_cast<uint32_t>(x % 100);
    if (roll < mix.si) {
      t.iso = IsolationLevel::kSi;
    } else if (roll < mix.si + mix.ser) {
      t.iso = IsolationLevel::kSer;
    } else if (roll < mix.si + mix.ser + mix.rc) {
      t.iso = IsolationLevel::kRc;
    } else if (roll < mix.total()) {
      t.iso = IsolationLevel::kRa;
    } else {
      t.iso = IsolationLevel::kUnspecified;
    }
  }
}

void RunDefaultWorkload(db::Database* db, const WorkloadParams& params) {
  std::mt19937_64 rng(params.seed);
  KeyPicker picker(params);
  std::vector<OpenTxn> open(params.sessions);
  uint64_t committed = 0;
  // Written values only need to be unique within one history (the
  // black-box checkers' unique-value assumption); a run-local counter
  // keeps repeated in-process generations byte-identical per seed,
  // which the fuzzing harness and `chronos_gen --seed` rely on.
  Value next_value = 1;

  std::uniform_int_distribution<uint32_t> pick_session(0, params.sessions - 1);
  std::uniform_real_distribution<double> coin(0, 1);

  while (committed < params.txns) {
    uint32_t s = pick_session(rng);
    OpenTxn& slot = open[s];
    if (!slot.txn) {
      slot.txn = db->Begin(s);
      slot.ops_done = 0;
      continue;
    }
    if (slot.ops_done < params.ops_per_txn) {
      Key key = picker.Next(rng);
      bool is_read = coin(rng) < params.read_ratio;
      if (params.list_mode) {
        if (is_read) {
          db->ReadList(slot.txn.get(), key);
        } else {
          db->Append(slot.txn.get(), key, next_value++);
        }
      } else {
        if (is_read) {
          db->Read(slot.txn.get(), key);
        } else {
          db->Write(slot.txn.get(), key, next_value++);
        }
      }
      ++slot.ops_done;
      continue;
    }
    if (db->Commit(std::move(slot.txn)) ==
        db::Database::CommitResult::kCommitted) {
      ++committed;
    }
    slot = OpenTxn{};
  }
}

History GenerateDefaultHistory(const WorkloadParams& params,
                               const db::DbConfig& config) {
  db::Database db(config);
  RunDefaultWorkload(&db, params);
  History h = db.ExportHistory();
  AssignLevels(&h, params.mix, params.seed);
  return h;
}

double RunThreadedWorkload(db::Database* db, const WorkloadParams& params,
                           uint32_t threads) {
  threads = std::max(1u, std::min(threads, params.sessions));
  std::atomic<uint64_t> committed{0};
  // Run-local unique-value source (see RunDefaultWorkload); shared by
  // the workers, so values stay unique within the run.
  std::atomic<Value> next_value{1};
  auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937_64 rng(params.seed + w * 7919);
      KeyPicker picker(params);
      std::uniform_real_distribution<double> coin(0, 1);
      // Sessions are striped across workers so each session stays
      // single-threaded (the Database requires per-session serial use).
      std::vector<SessionId> my_sessions;
      for (uint32_t s = w; s < params.sessions; s += threads) {
        my_sessions.push_back(s);
      }
      size_t rr = 0;
      while (committed.load(std::memory_order_relaxed) < params.txns) {
        SessionId sid = my_sessions[rr++ % my_sessions.size()];
        auto txn = db->Begin(sid);
        for (uint32_t i = 0; i < params.ops_per_txn; ++i) {
          Key key = picker.Next(rng);
          if (coin(rng) < params.read_ratio) {
            db->Read(txn.get(), key);
          } else {
            db->Write(txn.get(), key,
                      next_value.fetch_add(1, std::memory_order_relaxed));
          }
        }
        if (db->Commit(std::move(txn)) ==
            db::Database::CommitResult::kCommitted) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(committed.load()) / std::max(secs, 1e-9);
}

}  // namespace chronos::workload
