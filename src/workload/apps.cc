#include "workload/apps.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <random>
#include <vector>

#include "workload/keyspace.h"

namespace chronos::workload {
namespace {

// Table ids for composite keys.
enum Table : uint64_t {
  kTweet = 1,        // (user, seq) -> content id
  kLastPost = 2,     // (user) -> seq
  kFollow = 3,       // (follower, followee) -> 0/1
  kUser = 10,        // (uid) -> profile version
  kItem = 11,        // (iid) -> listing version
  kBid = 12,         // (iid, seq) -> amount
  kItemTop = 13,     // (iid) -> current top bid
  kComment = 14,     // (uid, seq) -> comment id
  kWarehouse = 20,   // (w) -> ytd
  kDistrict = 21,    // (w, d) -> ytd
  kDistrictOid = 22, // (w, d) -> next order id
  kCustomer = 23,    // (w, d*1000+c) -> balance
  kStock = 24,       // (w, i) -> quantity
  kOrderLine = 25,   // (w*100+d, oid*16+line) -> item
};

// Run-local unique-value source: values only need to be unique within
// one generated history, and a per-run counter keeps `chronos_gen
// --seed` reproducible even when several histories are generated in the
// same process (the fuzz harness does).
class ValueSource {
 public:
  Value Next() { return next_++; }

 private:
  Value next_ = 1000000;
};

using TxnBody = std::function<void(db::Database*, db::Database::Txn*)>;

// Executes `total` transactions in interleaved batches: one open
// transaction per session, bodies executed while all are open, commits in
// a shuffled order. This produces genuinely overlapping start..commit
// spans (so NOCONFLICT and AION's re-check paths are exercised); aborted
// transactions are retried sequentially with the same body.
void RunInterleavedBatches(db::Database* db, uint32_t sessions, uint64_t total,
                           std::mt19937_64* rng,
                           const std::function<TxnBody()>& make_body) {
  uint64_t done = 0;
  while (done < total) {
    uint32_t batch = static_cast<uint32_t>(
        std::min<uint64_t>(sessions, total - done));
    std::vector<TxnBody> bodies;
    bodies.reserve(batch);
    for (uint32_t i = 0; i < batch; ++i) bodies.push_back(make_body());

    std::vector<std::unique_ptr<db::Database::Txn>> open;
    open.reserve(batch);
    for (uint32_t i = 0; i < batch; ++i) open.push_back(db->Begin(i));
    for (uint32_t i = 0; i < batch; ++i) bodies[i](db, open[i].get());

    std::vector<uint32_t> order(batch);
    for (uint32_t i = 0; i < batch; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), *rng);

    for (uint32_t i : order) {
      if (db->Commit(std::move(open[i])) ==
          db::Database::CommitResult::kCommitted) {
        ++done;
        continue;
      }
      // Retry sequentially until it commits (fresh snapshot each time).
      for (int attempt = 0; attempt < 256; ++attempt) {
        auto txn = db->Begin(i);
        bodies[i](db, txn.get());
        if (db->Commit(std::move(txn)) ==
            db::Database::CommitResult::kCommitted) {
          ++done;
          break;
        }
      }
    }
  }
}

}  // namespace

void RunTwitterWorkload(db::Database* db, const TwitterParams& p) {
  std::mt19937_64 rng(p.seed);
  ValueSource values;
  std::uniform_int_distribution<uint32_t> pick_user(0, p.users - 1);
  std::uniform_real_distribution<double> coin(0, 1);
  std::vector<uint64_t> post_seq(p.users, 0);

  auto make_body = [&]() -> TxnBody {
    double action = coin(rng);
    if (action < p.post_ratio) {
      uint32_t u = pick_user(rng);
      uint64_t seq = post_seq[u]++;
      Value content = values.Next();
      return [u, seq, content](db::Database* d, db::Database::Txn* t) {
        d->Write(t, ComposeKey(kTweet, u, seq), content);
        d->Write(t, ComposeKey(kLastPost, u), static_cast<Value>(seq + 1));
      };
    }
    if (action < p.post_ratio + p.follow_ratio) {
      uint32_t u = pick_user(rng), v = pick_user(rng);
      Value flag = coin(rng) < 0.8 ? 1 : 0;
      return [u, v, flag](db::Database* d, db::Database::Txn* t) {
        d->Write(t, ComposeKey(kFollow, u, v), flag);
      };
    }
    uint32_t v1 = pick_user(rng), v2 = pick_user(rng), v3 = pick_user(rng);
    return [v1, v2, v3](db::Database* d, db::Database::Txn* t) {
      for (uint32_t v : {v1, v2, v3}) {
        Value last = d->Read(t, ComposeKey(kLastPost, v));
        if (last > 0) {
          d->Read(t, ComposeKey(kTweet, v, static_cast<uint64_t>(last - 1)));
        }
      }
    };
  };

  RunInterleavedBatches(db, p.sessions, p.txns, &rng, make_body);
}

History GenerateTwitterHistory(const TwitterParams& params,
                               const db::DbConfig& config) {
  db::Database db(config);
  RunTwitterWorkload(&db, params);
  return db.ExportHistory();
}

void RunRubisWorkload(db::Database* db, const RubisParams& p) {
  std::mt19937_64 rng(p.seed);
  ValueSource values;
  std::uniform_int_distribution<uint32_t> pick_user(0, p.users - 1);
  std::uniform_int_distribution<uint32_t> pick_item(0, p.items - 1);
  std::uniform_real_distribution<double> coin(0, 1);
  uint64_t bid_seq = 0, comment_seq = 0;

  auto make_body = [&]() -> TxnBody {
    double action = coin(rng);
    if (action < 0.05) {  // register account
      uint32_t u = pick_user(rng);
      Value v = values.Next();
      return [u, v](db::Database* d, db::Database::Txn* t) {
        d->Write(t, ComposeKey(kUser, u), v);
      };
    }
    if (action < 0.15) {  // list an item
      uint32_t i = pick_item(rng);
      Value v = values.Next();
      return [i, v](db::Database* d, db::Database::Txn* t) {
        d->Write(t, ComposeKey(kItem, i), v);
      };
    }
    if (action < 0.40) {  // place a bid
      uint32_t i = pick_item(rng);
      uint64_t seq = bid_seq++;
      Value amount = values.Next(), top = values.Next();
      return [i, seq, amount, top](db::Database* d, db::Database::Txn* t) {
        d->Read(t, ComposeKey(kItem, i));
        d->Read(t, ComposeKey(kItemTop, i));
        d->Write(t, ComposeKey(kBid, i, seq), amount);
        d->Write(t, ComposeKey(kItemTop, i), top);
      };
    }
    if (action < 0.90) {  // view an item
      uint32_t i = pick_item(rng);
      return [i](db::Database* d, db::Database::Txn* t) {
        d->Read(t, ComposeKey(kItem, i));
        d->Read(t, ComposeKey(kItemTop, i));
      };
    }
    uint32_t u = pick_user(rng);  // leave a comment
    uint64_t seq = comment_seq++;
    Value v = values.Next();
    return [u, seq, v](db::Database* d, db::Database::Txn* t) {
      d->Read(t, ComposeKey(kUser, u));
      d->Write(t, ComposeKey(kComment, u, seq), v);
    };
  };

  RunInterleavedBatches(db, p.sessions, p.txns, &rng, make_body);
}

History GenerateRubisHistory(const RubisParams& params,
                             const db::DbConfig& config) {
  db::Database db(config);
  RunRubisWorkload(&db, params);
  return db.ExportHistory();
}

void RunTpccWorkload(db::Database* db, const TpccParams& p) {
  std::mt19937_64 rng(p.seed);
  ValueSource values;
  std::uniform_int_distribution<uint32_t> pick_wh(0, p.warehouses - 1);
  std::uniform_int_distribution<uint32_t> pick_d(0, p.districts_per_wh - 1);
  std::uniform_int_distribution<uint32_t> pick_c(0,
                                                 p.customers_per_district - 1);
  std::uniform_int_distribution<uint32_t> pick_i(0, p.items - 1);
  std::uniform_real_distribution<double> coin(0, 1);
  std::vector<uint64_t> next_oid(p.warehouses * p.districts_per_wh, 1);

  auto make_body = [&]() -> TxnBody {
    double action = coin(rng);
    uint32_t w = pick_wh(rng), d = pick_d(rng);
    if (action < 0.45) {  // new-order
      uint64_t oid = next_oid[w * p.districts_per_wh + d]++;
      uint32_t lines = 5 + static_cast<uint32_t>(rng() % 6);
      std::vector<uint32_t> items;
      items.reserve(lines);
      for (uint32_t l = 0; l < lines; ++l) items.push_back(pick_i(rng));
      std::vector<Value> stock_vals;
      stock_vals.reserve(lines);
      for (uint32_t l = 0; l < lines; ++l) stock_vals.push_back(values.Next());
      return [w, d, oid, items, stock_vals](db::Database* db2,
                                            db::Database::Txn* t) {
        db2->Read(t, ComposeKey(kWarehouse, w));
        db2->Read(t, ComposeKey(kDistrictOid, w, d));
        db2->Write(t, ComposeKey(kDistrictOid, w, d),
                   static_cast<Value>(oid));
        for (uint32_t l = 0; l < items.size(); ++l) {
          db2->Read(t, ComposeKey(kStock, w, items[l]));
          db2->Write(t, ComposeKey(kStock, w, items[l]), stock_vals[l]);
          db2->Write(t, ComposeKey(kOrderLine, w * 100 + d, oid * 16 + l),
                     static_cast<Value>(items[l]));
        }
      };
    }
    if (action < 0.88) {  // payment
      uint32_t c = pick_c(rng);
      Value v1 = values.Next(), v2 = values.Next(), v3 = values.Next();
      return [w, d, c, v1, v2, v3](db::Database* db2, db::Database::Txn* t) {
        db2->Read(t, ComposeKey(kWarehouse, w));
        db2->Write(t, ComposeKey(kWarehouse, w), v1);
        db2->Read(t, ComposeKey(kDistrict, w, d));
        db2->Write(t, ComposeKey(kDistrict, w, d), v2);
        db2->Read(t, ComposeKey(kCustomer, w, d * 1000 + c));
        db2->Write(t, ComposeKey(kCustomer, w, d * 1000 + c), v3);
      };
    }
    uint32_t c = pick_c(rng);  // order-status (read only)
    uint64_t oid = next_oid[w * p.districts_per_wh + d];
    return [w, d, c, oid](db::Database* db2, db::Database::Txn* t) {
      db2->Read(t, ComposeKey(kCustomer, w, d * 1000 + c));
      for (uint32_t l = 0; l < 3; ++l) {
        db2->Read(t, ComposeKey(kOrderLine, w * 100 + d,
                                (oid > 0 ? oid - 1 : 0) * 16 + l));
      }
    };
  };

  RunInterleavedBatches(db, p.sessions, p.txns, &rng, make_body);
}

History GenerateTpccHistory(const TpccParams& params,
                            const db::DbConfig& config) {
  db::Database db(config);
  RunTpccWorkload(&db, params);
  return db.ExportHistory();
}

}  // namespace chronos::workload
