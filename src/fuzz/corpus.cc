#include "fuzz/corpus.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/violation.h"
#include "hist/codec.h"

namespace chronos::fuzz {
namespace {

bool ClassIndex(const std::string& name, size_t* out) {
  static const struct {
    const char* name;
    ViolationType type;
  } kClasses[] = {
      {"SESSION", ViolationType::kSession},
      {"INT", ViolationType::kInt},
      {"EXT", ViolationType::kExt},
      {"NOCONFLICT", ViolationType::kNoConflict},
      {"TSORDER", ViolationType::kTsOrder},
      {"TSDUP", ViolationType::kTsDuplicate},
  };
  for (const auto& c : kClasses) {
    if (name == c.name) {
      *out = static_cast<size_t>(c.type);
      return true;
    }
  }
  return false;
}

}  // namespace

Corpus LoadCorpus(const std::string& dir) {
  Corpus corpus;
  const std::string manifest_path = dir + "/manifest.txt";
  std::ifstream in(manifest_path);
  if (!in) {
    corpus.error = "cannot open " + manifest_path;
    return corpus;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tokens(line);
    CorpusEntry entry;
    if (!(tokens >> entry.file) || entry.file[0] == '#') continue;
    if (!(tokens >> entry.tag)) {
      corpus.error = manifest_path + ":" + std::to_string(lineno) +
                     ": missing divergence tag";
      return corpus;
    }
    std::string kv;
    while (tokens >> kv) {
      size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        corpus.error = manifest_path + ":" + std::to_string(lineno) +
                       ": malformed token '" + kv + "'";
        return corpus;
      }
      std::string key = kv.substr(0, eq);
      std::string value = kv.substr(eq + 1);
      size_t cls;
      if (key == "blackbox") {
        if (value != "accept" && value != "detect") {
          corpus.error = manifest_path + ":" + std::to_string(lineno) +
                         ": blackbox must be accept|detect, got '" + value +
                         "'";
          return corpus;
        }
        entry.blackbox_detect = value == "detect";
      } else if (key == "iso") {
        if (value != "mixed") {
          corpus.error = manifest_path + ":" + std::to_string(lineno) +
                         ": iso must be mixed, got '" + value + "'";
          return corpus;
        }
        entry.mixed = true;
      } else if (key == "mode") {
        if (value != "si" && value != "ser") {
          corpus.error = manifest_path + ":" + std::to_string(lineno) +
                         ": mode must be si|ser, got '" + value + "'";
          return corpus;
        }
        entry.ser = value == "ser";
      } else if (ClassIndex(key, &cls)) {
        entry.expected[cls] = std::strtoull(value.c_str(), nullptr, 10);
      } else {
        corpus.error = manifest_path + ":" + std::to_string(lineno) +
                       ": unknown key '" + key + "'";
        return corpus;
      }
    }
    hist::CodecStatus st =
        hist::LoadHistory(dir + "/" + entry.file, &entry.history);
    if (!st.ok) {
      corpus.error = entry.file + ": " + st.message;
      return corpus;
    }
    if (entry.mixed != HistoryHasLevelTags(entry.history)) {
      corpus.error = entry.file + ": iso=mixed manifest tag " +
                     (entry.mixed ? "set but the history has no"
                                  : "missing but the history has") +
                     " per-transaction isolation tags";
      return corpus;
    }
    corpus.entries.push_back(std::move(entry));
  }
  if (corpus.entries.empty()) {
    corpus.error = manifest_path + ": no corpus entries";
  }
  return corpus;
}

}  // namespace chronos::fuzz
