#include "fuzz/differ.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <random>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "baselines/elle.h"
#include "baselines/emme.h"
#include "baselines/polysi.h"
#include "core/aion.h"
#include "core/chronos.h"
#include "core/chronos_list.h"
#include "hist/collector.h"
#include "online/sharded_aion.h"

namespace chronos::fuzz {
namespace {

// PolySI's CEGAR loop is exponential in the worst case (that is the
// point of Fig. 4); cap its input so one unlucky scenario cannot stall
// the whole fuzz run. kUnknown verdicts count as "no opinion".
constexpr size_t kPolysiMaxTxns = 120;

constexpr ViolationType kAllTypes[] = {
    ViolationType::kSession,    ViolationType::kInt,
    ViolationType::kExt,        ViolationType::kNoConflict,
    ViolationType::kTsOrder,    ViolationType::kTsDuplicate,
};

bool HasListOps(const History& h) {
  for (const Transaction& t : h.txns) {
    for (const Op& op : t.ops) {
      if (op.type == OpType::kAppend || op.type == OpType::kReadList) {
        return true;
      }
    }
  }
  return false;
}

// Arrival schedule for the online checkers: either the collector's
// commit-order schedule (optionally delayed) or a session-preserving
// shuffle (sno order within each session, random interleaving across).
std::vector<hist::CollectedTxn> BuildArrivals(const History& h,
                                              const FuzzScenario& sc) {
  if (sc.shuffle_seed == 0) {
    hist::CollectorParams cp;
    cp.delay_mean_ms = sc.delay_mean_ms;
    cp.delay_stddev_ms = sc.delay_stddev_ms;
    cp.seed = sc.seed * 977 + 5;
    return hist::ScheduleDelivery(h, cp);
  }
  std::vector<std::vector<const Transaction*>> sessions;
  for (const Transaction& t : h.txns) {
    if (t.sid >= sessions.size()) sessions.resize(t.sid + 1);
    sessions[t.sid].push_back(&t);
  }
  for (auto& s : sessions) {
    std::sort(s.begin(), s.end(),
              [](const Transaction* a, const Transaction* b) {
                return a->sno < b->sno;
              });
  }
  std::mt19937_64 rng(sc.shuffle_seed);
  std::vector<hist::CollectedTxn> out;
  out.reserve(h.txns.size());
  std::vector<size_t> cursor(sessions.size(), 0);
  size_t remaining = h.txns.size();
  while (remaining > 0) {
    size_t s = rng() % sessions.size();
    if (cursor[s] >= sessions[s].size()) continue;
    out.push_back({*sessions[s][cursor[s]++], out.size()});
    --remaining;
  }
  return out;
}

void CountEmissions(CheckerReport* r) {
  for (const Violation& v : r->emissions) {
    ++r->counts[static_cast<size_t>(v.type)];
  }
  r->total = r->emissions.size();
  r->detected = r->total > 0;
}

CheckerReport FromCountingSink(std::string name, const CountingSink& sink) {
  CheckerReport r;
  r.name = std::move(name);
  r.ran = true;
  r.total = sink.total();
  r.detected = r.total > 0;
  for (ViolationType t : kAllTypes) {
    r.counts[static_cast<size_t>(t)] = sink.count(t);
  }
  return r;
}

// Runs one online checker over the arrival schedule with the scenario's
// GC cadence and returns its full emission sequence.
template <typename Checker, typename StatsFn>
CheckerReport DriveOnline(std::string name, Checker* checker,
                          const std::vector<hist::CollectedTxn>& arrivals,
                          const FuzzScenario& sc, StatsFn stats_fn) {
  size_t since_gc = 0;
  for (const hist::CollectedTxn& ct : arrivals) {
    checker->OnTransaction(ct.txn, ct.deliver_at_ms);
    if (sc.gc_every > 0 && ++since_gc >= sc.gc_every) {
      since_gc = 0;
      checker->GcToLiveTarget(sc.gc_target);
    }
  }
  checker->Finish();
  CheckerReport r;
  r.name = std::move(name);
  r.ran = true;
  r.stats = stats_fn();
  return r;
}

std::string CountsToString(const CheckerReport& r) {
  std::ostringstream os;
  for (ViolationType t : kAllTypes) {
    if (r.Count(t) > 0) {
      os << " " << ViolationTypeName(t) << "=" << r.Count(t);
    }
  }
  return os.str();
}

}  // namespace

ScheduleInvariance ScheduleInvarianceFor(bool finite_ext_timeout,
                                         bool gc_active, bool has_dup_ts) {
  ScheduleInvariance inv;
  inv.dup_replay = has_dup_ts;                       // D6
  inv.ext_exact = !finite_ext_timeout && !gc_active; // D5 / D7
  inv.noconflict_exact = !gc_active;                 // D7
  return inv;
}

bool HistoryHasDuplicateTs(const History& h, bool ser) {
  std::unordered_map<Timestamp, TxnId> owner;
  for (const Transaction& t : h.txns) {
    // Eq.(1)-invalid transactions never reach the uniqueness check
    // (TxnIngress::AdmitTxn returns kIntOnly first) in SI mode.
    if (!ser && !t.TimestampsOrdered()) continue;
    auto clashes = [&](Timestamp ts) {
      auto [it, fresh] = owner.emplace(ts, t.tid);
      return !fresh && it->second != t.tid;
    };
    if (ser ? clashes(t.commit_ts)
            : (clashes(t.start_ts) || clashes(t.commit_ts))) {
      return true;
    }
  }
  return false;
}

bool HistoryHasDuplicateTs(const History& h, CheckMode mode) {
  if (!HistoryHasLevelTags(h)) {
    return HistoryHasDuplicateTs(h, mode == CheckMode::kSer);
  }
  std::unordered_map<Timestamp, TxnId> owner;  // registered timestamps
  auto clashes = [&](Timestamp ts, TxnId tid) {
    auto [it, fresh] = owner.emplace(ts, tid);
    return !fresh && it->second != tid;
  };
  // Commit timestamps seen so far, with whether any holder so far was a
  // membership-level (RC/RA) transaction.
  struct CtsInfo {
    TxnId tid;
    bool member;
  };
  std::unordered_map<Timestamp, CtsInfo> committers;
  for (const Transaction& t : h.txns) {
    const IsolationLevel lv = EffectiveLevel(t, mode);
    const bool member = MembershipLevel(lv);
    auto [cit, fresh] =
        committers.try_emplace(t.commit_ts, CtsInfo{t.tid, member});
    if (!fresh && cit->second.tid != t.tid) {
      if (member || cit->second.member) return true;  // D9
    } else if (!fresh) {
      cit->second.member = cit->second.member || member;
    }
    if (lv == IsolationLevel::kSer) {
      if (clashes(t.commit_ts, t.tid)) return true;
    } else if (lv == IsolationLevel::kSi && t.TimestampsOrdered()) {
      if (clashes(t.start_ts, t.tid) || clashes(t.commit_ts, t.tid)) {
        return true;
      }
    }
  }
  return false;
}

FaultCounts FaultCounts::FromLog(const db::FaultLog& log) {
  FaultCounts c;
  c.lost_updates = log.lost_updates.load();
  c.stale_reads = log.stale_reads.load();
  c.early_commits = log.early_commits.load();
  c.late_starts = log.late_starts.load();
  c.value_corruptions = log.value_corruptions.load();
  c.session_reorders = log.session_reorders.load();
  c.ts_swaps = log.ts_swaps.load();
  return c;
}

bool DiffReport::HasRule(const std::string& rule) const {
  for (const Disagreement& d : disagreements) {
    if (d.rule == rule) return true;
  }
  return false;
}

const CheckerReport* DiffReport::Find(const std::string& name) const {
  for (const CheckerReport& r : checkers) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string DiffReport::Summary() const {
  std::ostringstream os;
  for (const CheckerReport& r : checkers) {
    if (!r.ran) continue;
    os << "  " << r.name << ": "
       << (r.detected ? "DETECT total=" + std::to_string(r.total) : "accept")
       << CountsToString(r) << "\n";
  }
  for (const Disagreement& d : disagreements) {
    os << "  !! " << d.rule << ": " << d.detail << "\n";
  }
  return os.str();
}

DiffReport DiffHistory(const History& h, const FuzzScenario& sc,
                       CleanExpectation expect, const std::string& work_dir,
                       const OverBudgetFn& over_budget) {
  namespace fs = std::filesystem;
  DiffReport report;
  report.expectation = expect;

  // List histories are SI-only throughout the tree (ChronosList has no
  // SER mode and the scenario generator never pairs them); forcing SI
  // here keeps a stray `--ser` replay of a list repro from comparing an
  // SI offline reference against SER-mode online checkers.
  const bool list = sc.wl.list_mode || HasListOps(h);
  const bool ser =
      !list && sc.db.isolation == db::DbConfig::Isolation::kSer;
  // Mixed-level histories (entry D8): per-transaction iso tags route the
  // offline side to ChronosMixed and gate out every single-level checker
  // (Chronos/ChronosSer, Emme, ElleKV, PolySI have no notion of
  // per-transaction levels). The online matrix below is level-aware
  // end-to-end and runs unchanged.
  const bool mixed = !list && HistoryHasLevelTags(h);

  // Polled between checkers: once the caller's budget is spent, the
  // remaining (more expensive) checkers are skipped and the report is
  // marked timed_out, which suppresses every cross-check rule — a
  // partial matrix must not fabricate disagreements.
  auto budget_spent = [&]() {
    if (report.timed_out) return true;
    if (over_budget && over_budget()) report.timed_out = true;
    return report.timed_out;
  };

  // ---------------------------------------------------- offline checkers
  if (list) {
    CountingSink cl;
    ChronosList::CheckHistory(h, &cl);
    report.checkers.push_back(FromCountingSink("chronos-list", cl));

    if (!budget_spent()) {
      CountingSink el;
      baselines::BaselineResult elle =
          baselines::CheckElleList(h, baselines::CheckLevel::kSi, &el);
      CheckerReport er = FromCountingSink("elle-list", el);
      er.detected = !elle.Accepted() || er.total > 0;
      report.checkers.push_back(std::move(er));
    }
  } else if (mixed) {
    CountingSink cs;
    ChronosMixed::CheckHistory(h, ser ? CheckMode::kSer : CheckMode::kSi,
                               &cs);
    report.checkers.push_back(FromCountingSink("chronos-mixed", cs));
  } else if (ser) {
    CountingSink cs;
    ChronosSer::CheckHistory(h, &cs);
    report.checkers.push_back(FromCountingSink("chronos", cs));

    if (!budget_spent()) {
      CountingSink es;
      baselines::BaselineResult emme = baselines::CheckEmmeSer(h, &es);
      CheckerReport er = FromCountingSink("emme", es);
      er.detected = !emme.Accepted() || er.total > 0;
      report.checkers.push_back(std::move(er));
    }

    if (!budget_spent()) {
      CountingSink ks;
      baselines::BaselineResult elle =
          baselines::CheckElleKv(h, baselines::CheckLevel::kSer, &ks);
      CheckerReport kr = FromCountingSink("ellekv", ks);
      kr.detected = !elle.Accepted() || kr.total > 0;
      report.checkers.push_back(std::move(kr));
    }
  } else {
    CountingSink cs;
    Chronos::CheckHistory(h, &cs);
    report.checkers.push_back(FromCountingSink("chronos", cs));

    if (!budget_spent()) {
      ChronosOptions copt;
      copt.gc_every_n_txns = 50;
      CountingSink gs;
      Chronos gc_checker(copt, &gs);
      History copy = h;
      gc_checker.Check(std::move(copy));
      report.checkers.push_back(FromCountingSink("chronos-gc", gs));
    }

    if (!budget_spent()) {
      CountingSink es;
      baselines::BaselineResult emme = baselines::CheckEmmeSi(h, &es);
      CheckerReport er = FromCountingSink("emme", es);
      er.detected = !emme.Accepted() || er.total > 0;
      report.checkers.push_back(std::move(er));
    }

    if (!budget_spent()) {
      CountingSink ks;
      baselines::BaselineResult elle =
          baselines::CheckElleKv(h, baselines::CheckLevel::kSi, &ks);
      CheckerReport kr = FromCountingSink("ellekv", ks);
      kr.detected = !elle.Accepted() || kr.total > 0;
      report.checkers.push_back(std::move(kr));
    }

    {
      CheckerReport pr;
      pr.name = "polysi";
      if (h.txns.size() <= kPolysiMaxTxns && !budget_spent()) {
        CountingSink ps;
        baselines::PolygraphResult poly = baselines::CheckPolySi(h, &ps);
        pr.ran = true;
        pr.detected =
            poly.verdict == baselines::PolygraphResult::Verdict::kViolation ||
            poly.anomalies > 0;
        pr.total = pr.detected ? std::max<size_t>(poly.anomalies, 1) : 0;
      }
      report.checkers.push_back(std::move(pr));
    }
  }

  // ----------------------------------------------------- online checkers
  // Registers and lists alike: Aion and ShardedAion understand
  // kAppend/kReadList natively (materialized-prefix frontier), so list
  // histories run the full online matrix too.
  if (!budget_spent()) {
    std::vector<hist::CollectedTxn> arrivals = BuildArrivals(h, sc);
    const std::string spill_root =
        (sc.spill && !work_dir.empty()) ? work_dir + "/spill" : "";
    if (!spill_root.empty()) fs::remove_all(spill_root);

    CheckerOptions opt;
    opt.mode = ser ? CheckMode::kSer : CheckMode::kSi;
    opt.ext_timeout_ms = sc.ext_timeout_ms;

    {
      CheckerOptions o = opt;
      if (!spill_root.empty()) o.spill_dir = spill_root + "/aion";
      VectorSink vs;
      Aion aion(o, &vs);
      CheckerReport r = DriveOnline("aion", &aion, arrivals, sc,
                                    [&] { return aion.stats(); });
      r.emissions = vs.TakeAll();
      CountEmissions(&r);
      report.checkers.push_back(std::move(r));
    }
    for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
      if (budget_spent()) break;
      CheckerOptions o = opt;
      if (!spill_root.empty()) {
        o.spill_dir = spill_root + "/sh" + std::to_string(shards);
      }
      // Vary the pre-stage pool per seed and per shard count: the
      // sharded-identity rules below then cross-check emission stability
      // against the worker count and its thread interleavings for free.
      o.pre_stage_workers = 1 + (sc.seed + shards) % 3;
      VectorSink vs;
      std::string name = "sharded" + std::to_string(shards);
      auto sharded =
          std::make_unique<online::ShardedAion>(o, shards, &vs);
      CheckerReport r = DriveOnline(name, sharded.get(), arrivals, sc,
                                    [&] { return sharded->stats(); });
      sharded.reset();  // join workers before reading the sink
      r.emissions = vs.TakeAll();
      CountEmissions(&r);
      report.checkers.push_back(std::move(r));
    }
    // Checkpoint/restore identity: run a 2-shard checker to the midpoint,
    // export its state, import into a fresh instance (same options, same
    // spill dir — the restored manifests reference the epoch files the
    // first instance wrote), and finish the stream there. Must be
    // emission- and stats-identical to the uninterrupted sharded2 run.
    if (sc.ckpt_restore && !budget_spent()) {
      CheckerOptions o = opt;
      if (!spill_root.empty()) o.spill_dir = spill_root + "/sh2ckpt";
      // Deliberately a different pool size than the sharded2 run it must
      // match byte-for-byte: restore identity may not depend on the
      // pre-stage topology on either side of the checkpoint.
      o.pre_stage_workers = 1 + (sc.seed + 1) % 3;
      const size_t cut = arrivals.size() / 2;
      size_t since_gc = 0;
      online::ShardedAion::StateImage img;
      {
        // The pre-restore instance's destructor re-emits its buffered
        // violations; give it a throwaway sink — the image carries them
        // into the restored instance, which reports them at Finish().
        VectorSink discard;
        online::ShardedAion first(o, 2, &discard);
        for (size_t i = 0; i < cut; ++i) {
          first.OnTransaction(arrivals[i].txn, arrivals[i].deliver_at_ms);
          if (sc.gc_every > 0 && ++since_gc >= sc.gc_every) {
            since_gc = 0;
            first.GcToLiveTarget(sc.gc_target);
          }
        }
        img = first.ExportState();
      }
      VectorSink vs;
      CheckerReport r;
      r.name = "sharded2ckpt";
      auto second = std::make_unique<online::ShardedAion>(o, 2, &vs);
      if (second->ImportState(img)) {
        r.ran = true;
        for (size_t i = cut; i < arrivals.size(); ++i) {
          second->OnTransaction(arrivals[i].txn, arrivals[i].deliver_at_ms);
          if (sc.gc_every > 0 && ++since_gc >= sc.gc_every) {
            since_gc = 0;
            second->GcToLiveTarget(sc.gc_target);
          }
        }
        second->Finish();
        r.stats = second->stats();
      }
      second.reset();  // join workers before reading the sink
      r.emissions = vs.TakeAll();
      CountEmissions(&r);
      report.checkers.push_back(std::move(r));
    }
    if (!spill_root.empty()) fs::remove_all(spill_root);
  }

  // A partial matrix (budget expired) must not run the cross-check
  // rules: missing checkers would read as disagreements.
  if (report.timed_out) return report;

  // ------------------------------------------------- cross-check rules
  auto disagree = [&](const char* rule, std::string detail,
                      std::string checker = "") {
    report.disagreements.push_back(
        {rule, std::move(detail), std::move(checker)});
  };
  const CheckerReport* ref = report.Find(
      list ? "chronos-list" : mixed ? "chronos-mixed" : "chronos");

  // Rule: clean histories are accepted by everything. Online checkers
  // are exempt in weak scenarios (entries D5/D7); HLC-skew runs never
  // reach here with kClean (entry D3).
  if (expect == CleanExpectation::kClean) {
    for (const CheckerReport& r : report.checkers) {
      if (!r.ran || !r.detected) continue;
      bool online = r.name == "aion" || r.name.rfind("sharded", 0) == 0;
      if (online && !sc.strict) continue;
      disagree("clean-accept",
               r.name + " reports total=" + std::to_string(r.total) +
                   CountsToString(r) + " on a fault-free history",
               r.name);
    }
  }

  {
    const CheckerReport* aion = report.Find("aion");

    // Rule: AION's final counts equal the white-box offline reference's
    // (Chronos for registers, ChronosList for lists), class by class, in
    // strict scenarios. SESSION is boolean (entry D4); duplicate
    // timestamps suspend the class comparison (entry D6).
    if (sc.strict && ref && aion) {
      bool dup = ref->Count(ViolationType::kTsDuplicate) > 0 ||
                 aion->Count(ViolationType::kTsDuplicate) > 0;
      // Strict scenarios run with an infinite timeout and no GC, so of
      // the shared invariance table only the D6 axis can fire here.
      const ScheduleInvariance inv = ScheduleInvarianceFor(
          /*finite_ext_timeout=*/false, /*gc_active=*/false, dup);
      if (inv.dup_replay) {
        if ((ref->Count(ViolationType::kTsDuplicate) > 0) !=
            (aion->Count(ViolationType::kTsDuplicate) > 0)) {
          disagree("aion-vs-chronos",
                   "TS-DUP detection mismatch: " + ref->name + "=" +
                       std::to_string(
                           ref->Count(ViolationType::kTsDuplicate)) +
                       " aion=" +
                       std::to_string(
                           aion->Count(ViolationType::kTsDuplicate)),
                   "aion");
        }
      } else {
        std::vector<ViolationType> exact = {ViolationType::kInt,
                                            ViolationType::kTsOrder};
        if (inv.ext_exact) exact.push_back(ViolationType::kExt);
        if (inv.noconflict_exact) exact.push_back(ViolationType::kNoConflict);
        for (ViolationType t : exact) {
          if (ref->Count(t) != aion->Count(t)) {
            disagree("aion-vs-chronos",
                     std::string(ViolationTypeName(t)) + ": " + ref->name +
                         "=" + std::to_string(ref->Count(t)) + " aion=" +
                         std::to_string(aion->Count(t)),
                     "aion");
          }
        }
        if ((ref->Count(ViolationType::kSession) > 0) !=
            (aion->Count(ViolationType::kSession) > 0)) {
          disagree("aion-vs-chronos",
                   "SESSION detection mismatch: " + ref->name + "=" +
                       std::to_string(ref->Count(ViolationType::kSession)) +
                       " aion=" +
                       std::to_string(aion->Count(ViolationType::kSession)),
                   "aion");
        }
      }
    }

    // Rule: the sharded checker is deterministic across shard counts
    // (identical emission sequences) and verdict-identical to the
    // monolith (violation multisets). Holds in every scenario: all four
    // instances consumed the same schedule.
    const CheckerReport* sh1 = report.Find("sharded1");
    const CheckerReport* sh2 = report.Find("sharded2");
    const CheckerReport* sh8 = report.Find("sharded8");
    if (sh1 && sh2 && sh8) {
      if (!(sh1->emissions == sh2->emissions) ||
          !(sh1->emissions == sh8->emissions)) {
        disagree("sharded-identity",
                 "emission sequences differ across shard counts: sh1=" +
                     std::to_string(sh1->emissions.size()) + " sh2=" +
                     std::to_string(sh2->emissions.size()) + " sh8=" +
                     std::to_string(sh8->emissions.size()));
      }
      if (aion) {
        auto content_sorted = [](std::vector<Violation> v) {
          std::sort(v.begin(), v.end(), [](const Violation& a,
                                           const Violation& b) {
            if (a.tid != b.tid) return a.tid < b.tid;
            return ViolationLess(a, b);
          });
          return v;
        };
        if (content_sorted(aion->emissions) !=
            content_sorted(sh1->emissions)) {
          disagree("sharded-vs-aion",
                   "violation multisets differ: aion=" +
                       std::to_string(aion->emissions.size()) + " sharded1=" +
                       std::to_string(sh1->emissions.size()));
        }
      }
    }

    // Rule: a mid-stream checkpoint + restore is invisible — the
    // restored checker's emission sequence and stats equal the
    // uninterrupted sharded2 run's. Holds in every scenario (the restore
    // consumed the exact same schedule). A failed ImportState of a
    // just-exported image is itself a bug.
    const CheckerReport* shc = report.Find("sharded2ckpt");
    if (shc && !shc->ran) {
      disagree("ckpt-restore-identity",
               "ImportState rejected a freshly exported state image",
               "sharded2ckpt");
    } else if (shc && sh2) {
      if (!(shc->emissions == sh2->emissions)) {
        disagree("ckpt-restore-identity",
                 "emissions differ after mid-stream restore: sharded2=" +
                     std::to_string(sh2->emissions.size()) +
                     " sharded2ckpt=" + std::to_string(shc->emissions.size()),
                 "sharded2ckpt");
      }
      if (!(shc->stats == sh2->stats)) {
        disagree("ckpt-restore-identity",
                 "checker stats differ after mid-stream restore",
                 "sharded2ckpt");
      }
    }

    // Rule: the two white-box offline checkers agree on the verdict
    // (register histories only; Emme has no list mode).
    const CheckerReport* emme = report.Find("emme");
    if (ref && emme && emme->ran && ref->detected != emme->detected) {
      disagree("emme-vs-chronos",
               "verdict mismatch: chronos=" +
                   std::string(ref->detected ? "DETECT" : "accept") +
                   " emme=" +
                   std::string(emme->detected ? "DETECT" : "accept"),
               "emme");
    }

    // Rule: periodic GC never changes Chronos's verdict.
    const CheckerReport* gc = report.Find("chronos-gc");
    if (ref && gc && gc->counts != ref->counts) {
      disagree("chronos-gc-invariance",
               "per-class counts changed under gc_every=50");
    }
  }

  // Rule: black-box detection implies white-box detection (white-box
  // checkers dominate black-box ones, Fig. 11; the converse is the
  // expected divergence D1).
  for (const char* bb : {"ellekv", "elle-list", "polysi"}) {
    const CheckerReport* r = report.Find(bb);
    if (r && r->ran && r->detected && ref && !ref->detected) {
      disagree("blackbox-implies-whitebox",
               std::string(bb) + " detects a violation but " + ref->name +
                   " accepts",
               bb);
    }
  }

  return report;
}

DiffReport RunDiffer(const FuzzScenario& sc, const std::string& work_dir,
                     History* out_history, FaultCounts* out_injected,
                     const OverBudgetFn& over_budget) {
  db::Database database(sc.db);
  workload::RunDefaultWorkload(&database, sc.wl);
  History h = database.ExportHistory();
  workload::AssignLevels(&h, sc.wl.mix, sc.wl.seed);
  FaultCounts injected = FaultCounts::FromLog(database.fault_log());

  const bool skewed = sc.db.timestamping == db::DbConfig::Timestamping::kHlc &&
                      sc.db.hlc_max_skew != 0;
  CleanExpectation expect = (injected.Total() == 0 && !skewed)
                                ? CleanExpectation::kClean
                                : CleanExpectation::kFaulty;
  DiffReport report = DiffHistory(h, sc, expect, work_dir, over_budget);
  report.injected = injected;
  if (out_history) *out_history = std::move(h);
  if (out_injected) *out_injected = injected;
  return report;
}

}  // namespace chronos::fuzz
