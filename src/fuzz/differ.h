// The cross-checker oracle of the fuzzing harness: runs one history
// through every checker in the tree — Aion, ShardedAion{1,2,8}, Chronos
// (with and without periodic GC), Emme-SI/SER, ElleKV/ElleList, PolySI —
// and cross-checks the verdicts against the fault-injection ground truth
// and against each other. List histories run the full online matrix too
// (Aion and ShardedAion understand kAppend/kReadList) with ChronosList
// as the white-box reference and ElleList as the black-box one; the
// register-only baselines (Emme, PolySI, Chronos) are gated out.
//
// Expected-divergence table. A disagreement is only reported when it is
// NOT explained by one of these entries; each entry is exercised by at
// least one corpus history under tests/corpus/ (tags D1..D7):
//
//   D1  White-box detects, black-box accepts. Recording timestamp faults
//       (early-commit, late-start, ts-swap) and stale reads without a
//       cycle witness are provably invisible to black-box checkers
//       (paper Fig. 11 / Sec. V-D). The reverse direction IS checked:
//       black-box detection on a white-box-clean history is a bug.
//   D2  Faults injected, every checker accepts. A fault opportunity can
//       be benign: a lost-update skip with no concurrent writer, an
//       early-committed writer nobody reads in the shifted window.
//       Ground-truth counters are upper bounds on anomalies, not exact.
//   D3  HLC skew > 0: the database itself can commit a version below an
//       already-served snapshot (the paper's Sec. V-D clock-skew bug),
//       so genuine anomalies occur with an empty fault log. The
//       clean-accept rule is waived; checker-vs-checker rules still hold.
//   D4  SESSION multiplicity is observation-order-dependent: Chronos
//       sees timestamp order, AION sees session-clamped arrival order,
//       so a reordered session yields different counts (never a
//       different verdict). SESSION is compared as a boolean.
//   D5  Finite EXT timeout + reordered arrival (delays/shuffle): EXT
//       verdicts finalize before a relevant writer arrives, so online
//       counts may differ from offline in either direction (the paper's
//       timeout tradeoff, Sec. IV-A). Online checkers are exempt from
//       the offline-equality and clean-accept rules; the sharded-vs-
//       monolith identity still holds exactly.
//   D6  Duplicate timestamps: AION skips replaying a duplicate-ts
//       transaction, Chronos replays it; classes other than TS-DUP may
//       diverge on such histories.
//   D7  GC without spill: stragglers below the watermark become
//       unverifiable (unsafe_below_watermark), so online counts may
//       drop or gain relative to offline. Same exemption as D5. RC/RA
//       membership reads below the watermark degrade the same way (the
//       membership window always reaches back to the beginning of time).
//   D8  Mixed isolation levels (Transaction::iso tags): the single-level
//       checkers — Chronos/ChronosSer, Emme, ElleKV, PolySI — have no
//       notion of per-transaction levels, so they are gated out on mixed
//       histories rather than compared. ChronosMixed is the white-box
//       reference instead ("chronos-mixed"); the online matrix and all
//       sharded/ckpt identity rules run unchanged.
//   D9  RC/RA commit-timestamp collisions bypass the ingress dup-gate
//       (those levels register no timestamps) and surface as per-key
//       engine TS-DUP at version install instead. Which colliding writer
//       is installed — and therefore the exact EXT verdicts downstream —
//       depends on arrival order, so such histories are compared under
//       the D6 boolean-TS-DUP regime.
#ifndef CHRONOS_FUZZ_DIFFER_H_
#define CHRONOS_FUZZ_DIFFER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/online_checker.h"
#include "core/types.h"
#include "core/violation.h"
#include "db/fault.h"
#include "fuzz/scenario.h"

namespace chronos::fuzz {

/// Which per-class verdict equalities the expected-divergence table
/// leaves intact when the same history is observed under two different
/// session-preserving arrival orders (or online vs. the offline
/// timestamp order). This is the machine-readable core of entries
/// D4/D5/D6/D7 above, shared by the differ's strict rules and the
/// exhaustive schedule enumerator (explore/oracle.h):
///   - SESSION is always compared as a boolean (D4).
///   - a finite EXT timeout waives exact EXT equality (D5); active GC
///     waives EXT and NOCONFLICT (D7, stragglers below the watermark).
///   - duplicate timestamps change which twin AION replays, so only
///     TS-DUP detection (boolean) is comparable at all (D6).
struct ScheduleInvariance {
  bool dup_replay = false;       ///< D6: compare TS-DUP detection only
  bool ext_exact = true;         ///< D5/D7
  bool noconflict_exact = true;  ///< D7
};

ScheduleInvariance ScheduleInvarianceFor(bool finite_ext_timeout,
                                         bool gc_active, bool has_dup_ts);

/// True when two distinct transactions share a timestamp the ingress
/// registers: commit timestamps under SER, start and commit under SI
/// (Eq.(1)-invalid transactions never register theirs, and a single
/// transaction's start==commit is not a duplicate).
bool HistoryHasDuplicateTs(const History& h, bool ser);

/// Level-aware variant: applies each transaction's *effective*
/// registration rules under `mode` (SER registers {commit}, Eq.(1)-valid
/// SI registers {start, commit}, RC/RA register nothing), and
/// additionally reports true when two distinct transactions share a
/// commit timestamp and at least one of them is RC/RA-effective — those
/// bypass the ingress dup-gate and can still collide at version install
/// (entry D9). Conservative on that axis: the install collision is only
/// real when the pair writes a common key, but treating every such
/// history under the D6 boolean regime merely weakens a comparison,
/// never fabricates a disagreement. Untagged histories defer to the
/// plain overload above.
bool HistoryHasDuplicateTs(const History& h, CheckMode mode);

/// Plain (non-atomic) copy of the fault-injection ground truth.
struct FaultCounts {
  uint64_t lost_updates = 0;
  uint64_t stale_reads = 0;
  uint64_t early_commits = 0;
  uint64_t late_starts = 0;
  uint64_t value_corruptions = 0;
  uint64_t session_reorders = 0;
  uint64_t ts_swaps = 0;

  uint64_t Total() const {
    return lost_updates + stale_reads + early_commits + late_starts +
           value_corruptions + session_reorders + ts_swaps;
  }
  static FaultCounts FromLog(const db::FaultLog& log);
};

/// What the ground truth says about the history under test.
enum class CleanExpectation {
  kClean,    ///< no fault fired, no skew: any detection is a checker bug
  kFaulty,   ///< faults fired (or skew active): detection is legitimate
  kUnknown,  ///< no ground truth (replayed corpus/repro files)
};

/// One checker's verdict on the history.
struct CheckerReport {
  std::string name;
  bool ran = false;       ///< false: gated out (size cap, wrong mode)
  bool detected = false;
  size_t total = 0;
  std::array<size_t, 6> counts{};  ///< indexed by ViolationType
  /// Online checkers: the exact emission sequence (order-sensitive for
  /// the sharded determinism rule).
  std::vector<Violation> emissions;
  CheckerStats stats;     ///< online checkers only

  size_t Count(ViolationType t) const {
    return counts[static_cast<size_t>(t)];
  }
};

/// A rule breach the divergence table does not explain.
struct Disagreement {
  std::string rule;     ///< stable rule id, e.g. "aion-vs-chronos"
  std::string detail;   ///< human-readable specifics
  /// The offending checker for per-checker rules (clean-accept,
  /// blackbox-implies-whitebox, ...); empty for pairwise rules. The
  /// shrinker keys its failure signature on (rule, checker) so a
  /// reduction cannot swap one checker's false positive for another's.
  std::string checker;
};

/// Full differential verdict for one history.
struct DiffReport {
  std::vector<CheckerReport> checkers;
  std::vector<Disagreement> disagreements;
  FaultCounts injected;
  CleanExpectation expectation = CleanExpectation::kUnknown;
  /// The time budget expired mid-history: remaining checkers were
  /// skipped and no cross-check rules ran (a partial matrix must not
  /// fabricate disagreements). Callers treat the report as "not run".
  bool timed_out = false;

  bool Clean() const { return disagreements.empty(); }
  bool HasRule(const std::string& rule) const;
  const CheckerReport* Find(const std::string& name) const;
  /// Multi-line verdict matrix + disagreement list for fuzz logs.
  std::string Summary() const;
};

/// Returns true when the caller's time budget is spent; polled between
/// checkers inside DiffHistory so one long scenario (a 300-txn matrix
/// pass, a PolySI CEGAR blowup) overshoots a --time-budget by at most
/// one checker run instead of a whole seed.
using OverBudgetFn = std::function<bool()>;

/// Cross-checks an existing history under the scenario's checker knobs.
/// `work_dir` hosts the spill stores when sc.spill is set (created and
/// removed by the call); pass "" to disable spilling regardless.
DiffReport DiffHistory(const History& h, const FuzzScenario& sc,
                       CleanExpectation expect, const std::string& work_dir,
                       const OverBudgetFn& over_budget = {});

/// Generates the scenario's history (database + workload + fault log)
/// and diffs it. The history and ground truth are returned through the
/// optional out-params for shrinking and .repro emission.
DiffReport RunDiffer(const FuzzScenario& sc, const std::string& work_dir,
                     History* out_history = nullptr,
                     FaultCounts* out_injected = nullptr,
                     const OverBudgetFn& over_budget = {});

}  // namespace chronos::fuzz

#endif  // CHRONOS_FUZZ_DIFFER_H_
