#include "fuzz/scenario.h"

#include <random>

namespace chronos::fuzz {
namespace {

template <typename T, size_t N>
T Pick(std::mt19937_64& rng, const T (&menu)[N]) {
  return menu[rng() % N];
}

bool Chance(std::mt19937_64& rng, double p) {
  return std::uniform_real_distribution<double>(0, 1)(rng) < p;
}

// Enables one randomly-chosen fault class. List histories only record
// appends and list reads, so the register-read faults (stale read, value
// corruption) are no-ops there and are excluded from the list menu.
void PickFault(std::mt19937_64& rng, bool list_mode, db::FaultConfig* f) {
  const double prob_menu[] = {0.02, 0.05, 0.15};
  double p = Pick(rng, prob_menu);
  int n = list_mode ? 5 : 7;
  switch (rng() % n) {
    case 0: f->lost_update_prob = p; break;
    case 1: f->early_commit_prob = p; break;
    case 2: f->late_start_prob = p; break;
    case 3: f->ts_swap_prob = p; break;
    case 4: f->session_reorder_prob = p; break;
    case 5: f->stale_read_prob = p; break;
    case 6: f->value_corruption_prob = p; break;
  }
}

}  // namespace

FuzzScenario ScenarioFromSeed(uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0xC4A0A0FuLL);
  FuzzScenario sc;
  sc.seed = seed;

  // --- workload shape (small on purpose: hundreds of scenarios/minute,
  // and disagreements shrink faster from small starting points) ---
  const uint32_t session_menu[] = {2u, 4u, 8u, 16u};
  const uint64_t txn_menu[] = {40ull, 80ull, 150ull, 300ull};
  const uint32_t ops_menu[] = {2u, 4u, 8u, 12u};
  const uint64_t key_menu[] = {2ull, 8ull, 32ull, 128ull};
  const double read_menu[] = {0.2, 0.5, 0.8};
  sc.wl.sessions = Pick(rng, session_menu);
  sc.wl.txns = Pick(rng, txn_menu);
  sc.wl.ops_per_txn = Pick(rng, ops_menu);
  sc.wl.keys = Pick(rng, key_menu);
  sc.wl.read_ratio = Pick(rng, read_menu);
  sc.wl.dist = static_cast<workload::WorkloadParams::KeyDist>(rng() % 3);
  sc.wl.seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  sc.wl.list_mode = Chance(rng, 0.10);

  // --- database configuration ---
  if (!sc.wl.list_mode && Chance(rng, 0.20)) {
    sc.db.isolation = db::DbConfig::Isolation::kSer;
  }
  if (Chance(rng, 0.25)) {
    sc.db.timestamping = db::DbConfig::Timestamping::kHlc;
    sc.db.hlc_nodes = 3;
    // Skew is added to the pre-shift physical tick, so +-3 already
    // produces cross-node inversions (divergence entry D3); 0 keeps the
    // decentralized oracle but stays anomaly-free.
    const int64_t skew_menu[] = {0, 0, 3, 50};
    sc.db.hlc_max_skew = Pick(rng, skew_menu);
  }
  sc.db.fault_seed = seed * 31 + 7;
  if (Chance(rng, 0.55)) {
    PickFault(rng, sc.wl.list_mode, &sc.db.faults);
    if (Chance(rng, 0.20)) PickFault(rng, sc.wl.list_mode, &sc.db.faults);
  }

  // --- checker knobs. Strictness rule (see fuzz/differ.h): online
  // counts equal offline counts iff arrival is commit order (no delays,
  // no shuffle) or the EXT timeout is effectively infinite; GC
  // additionally needs the spill store so stragglers stay checkable. ---
  switch (rng() % 20) {
    case 0: case 1: case 2: case 3: case 4: case 5: case 6: case 7:
      // A: plain strict; half of these shuffle the arrival order.
      if (Chance(rng, 0.5)) sc.shuffle_seed = seed * 131 + 17;
      break;
    case 8: case 9: case 10: case 11: {
      // B: GC + spill, prompt timeouts, commit order — still strict.
      sc.ext_timeout_ms = 1;
      const size_t every_menu[] = {size_t{16}, size_t{64}};
      const size_t target_menu[] = {size_t{8}, size_t{32}};
      sc.gc_every = Pick(rng, every_menu);
      sc.gc_target = Pick(rng, target_menu);
      sc.spill = true;
      break;
    }
    case 12: case 13: case 14:
      // C: collector delays with an infinite timeout — strict.
      sc.delay_mean_ms = Chance(rng, 0.5) ? 2 : 10;
      sc.delay_stddev_ms = Chance(rng, 0.5) ? 1 : 5;
      break;
    case 15: case 16: case 17: {
      // D: finite timeout with reordered arrival — weak (entry D5).
      const uint64_t timeout_menu[] = {1ull, 8ull};
      sc.ext_timeout_ms = Pick(rng, timeout_menu);
      if (Chance(rng, 0.5)) {
        sc.shuffle_seed = seed * 131 + 17;
      } else {
        sc.delay_mean_ms = 5;
        sc.delay_stddev_ms = 3;
      }
      sc.strict = false;
      break;
    }
    default:
      // E: GC without spill — weak (entry D7).
      sc.ext_timeout_ms = 1;
      sc.gc_every = 16;
      sc.gc_target = 8;
      sc.spill = false;
      if (Chance(rng, 0.5)) sc.shuffle_seed = seed * 131 + 17;
      sc.strict = false;
      break;
  }
  // Drawn from an independent hash of the seed (not the rng stream) so
  // enabling this knob did not reshuffle every existing seed's scenario.
  sc.ckpt_restore = ((seed * 0x2545F4914F6CDD1DULL) >> 62) == 0;  // ~25%

  // Mixed isolation-level tags, also from an independent seed hash.
  // Only SI-database register scenarios mix, and only over {si, rc, ra}:
  // those tags keep a clean SI execution clean (an SI read is always a
  // committed-membership read, and RC/RA waive Eq. (1)/NOCONFLICT), so
  // the clean-accept rule stays meaningful. SER tags would false-fire on
  // correct SI histories, and list workloads are SI-only end to end.
  if (!sc.wl.list_mode &&
      sc.db.isolation == db::DbConfig::Isolation::kSi) {
    uint64_t mh = (seed + 0x9E3779B97F4A7C15ULL) * 0xD1B54A32D192ED03ULL;
    if ((mh >> 62) == 0) {  // ~25% of eligible scenarios
      switch ((mh >> 8) % 3) {
        case 0: sc.wl.mix = {70, 0, 20, 10}; break;  // si-heavy
        case 1: sc.wl.mix = {40, 0, 30, 20}; break;  // 10% untagged
        default: sc.wl.mix = {0, 0, 50, 50}; break;  // membership-only
      }
    }
  }
  return sc;
}

std::string FuzzScenario::Describe() const {
  const char* dist_names[] = {"uniform", "zipf", "hotspot"};
  std::string s = "seed=" + std::to_string(seed);
  s += " txns=" + std::to_string(wl.txns);
  s += " sess=" + std::to_string(wl.sessions);
  s += " ops=" + std::to_string(wl.ops_per_txn);
  s += " keys=" + std::to_string(wl.keys);
  s += std::string(" dist=") + dist_names[static_cast<int>(wl.dist)];
  if (wl.list_mode) s += " list";
  if (db.isolation == db::DbConfig::Isolation::kSer) s += " ser";
  if (db.timestamping == db::DbConfig::Timestamping::kHlc) {
    s += " hlc(skew=" + std::to_string(db.hlc_max_skew) + ")";
  }
  const db::FaultConfig& f = db.faults;
  auto fault = [&](const char* name, double p) {
    if (p > 0) s += std::string(" ") + name + "=" + std::to_string(p);
  };
  fault("lost_update", f.lost_update_prob);
  fault("stale_read", f.stale_read_prob);
  fault("early_commit", f.early_commit_prob);
  fault("late_start", f.late_start_prob);
  fault("value_corruption", f.value_corruption_prob);
  fault("session_reorder", f.session_reorder_prob);
  fault("ts_swap", f.ts_swap_prob);
  if (ext_timeout_ms != 1ull << 30) {
    s += " timeout=" + std::to_string(ext_timeout_ms);
  }
  if (gc_every > 0) {
    s += " gc=" + std::to_string(gc_every) + "/" + std::to_string(gc_target);
    s += spill ? "+spill" : "-spill";
  }
  if (delay_mean_ms > 0) {
    s += " delay=" + std::to_string(delay_mean_ms) + "/" +
         std::to_string(delay_stddev_ms);
  }
  if (!wl.mix.empty()) {
    s += " mix=";
    bool first = true;
    auto part = [&](const char* name, uint32_t pct) {
      if (pct == 0) return;
      if (!first) s += ",";
      first = false;
      s += std::string(name) + ":" + std::to_string(pct);
    };
    part("si", wl.mix.si);
    part("ser", wl.mix.ser);
    part("rc", wl.mix.rc);
    part("ra", wl.mix.ra);
  }
  if (shuffle_seed != 0) s += " shuffled";
  if (ckpt_restore) s += " ckpt";
  s += strict ? " [strict]" : " [weak]";
  return s;
}

}  // namespace chronos::fuzz
