// The shrunk regression corpus: .repro files (plain chronos-history
// format, replayable with `chronos_check --in=<file>`) plus a manifest
// recording each file's expected Chronos verdict, its black-box verdict,
// and which expected-divergence table entry (fuzz/differ.h, D1..D7) the
// history exercises. `corpus_test` replays the corpus in tier-1, making
// it the standing answer to "did this refactor change a verdict".
//
// manifest.txt format (one entry per line, '#' comments):
//   <file> <tag> [CLASS=<count>]... [blackbox=accept|detect] [mode=si|ser]
//   [iso=mixed]
// where CLASS is one of SESSION INT EXT NOCONFLICT TSORDER TSDUP;
// unlisted classes are expected to be zero and mode defaults to si.
// iso=mixed marks a history with per-transaction isolation tags: its
// counts pin the ChronosMixed reference, and no black-box verdict is
// pinned (the single-level black-box checkers are gated out, entry D8).
#ifndef CHRONOS_FUZZ_CORPUS_H_
#define CHRONOS_FUZZ_CORPUS_H_

#include <array>
#include <string>
#include <vector>

#include "core/types.h"

namespace chronos::fuzz {

struct CorpusEntry {
  std::string file;        ///< filename relative to the corpus dir
  std::string tag;         ///< divergence-table entry exercised (D1..D7)
  std::array<size_t, 6> expected{};  ///< Chronos counts per ViolationType
  bool blackbox_detect = false;      ///< expected ElleKV/ElleList verdict
  bool ser = false;                  ///< replay under the SER checker set
  bool mixed = false;                ///< per-transaction iso tags (D8/D9)
  History history;

  size_t ExpectedTotal() const {
    size_t n = 0;
    for (size_t c : expected) n += c;
    return n;
  }
};

struct Corpus {
  std::vector<CorpusEntry> entries;
  std::string error;  ///< empty on success

  bool ok() const { return error.empty(); }
};

/// Loads `dir`/manifest.txt and every history it references.
Corpus LoadCorpus(const std::string& dir);

}  // namespace chronos::fuzz

#endif  // CHRONOS_FUZZ_CORPUS_H_
