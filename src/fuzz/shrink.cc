#include "fuzz/shrink.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace chronos::fuzz {
namespace {

// Rebuilds a transaction without ops [begin, end), dropping the list
// payloads of removed list reads and reindexing the survivors.
Transaction WithoutOps(const Transaction& t, size_t begin, size_t end) {
  Transaction out;
  out.tid = t.tid;
  out.sid = t.sid;
  out.sno = t.sno;
  out.start_ts = t.start_ts;
  out.commit_ts = t.commit_ts;
  for (size_t i = 0; i < t.ops.size(); ++i) {
    if (i >= begin && i < end) continue;
    Op op = t.ops[i];
    if (op.type == OpType::kReadList) {
      uint32_t idx = static_cast<uint32_t>(out.list_args.size());
      out.list_args.push_back(t.list_args[op.list_index]);
      op.list_index = idx;
    }
    out.ops.push_back(op);
  }
  return out;
}

// Rebuilds every transaction's list_args to hold exactly the payloads
// its surviving kReadList ops reference, in op order, renumbering
// Op::list_index to match. Applied to every candidate before the
// predicate runs, so no reduction path — present or future — can leave
// an index dangling into list_args or an orphaned payload behind:
// downstream checkers (ChronosList, ElleList, the ingress) index
// list_args unchecked, and orphaned payloads bloat the emitted .repro.
// Ops whose index is already out of range are dropped outright (a
// malformed read cannot be part of a faithful reduction).
History CompactListArgs(History h) {
  for (Transaction& t : h.txns) {
    bool has_list_reads =
        std::any_of(t.ops.begin(), t.ops.end(), [](const Op& op) {
          return op.type == OpType::kReadList;
        });
    if (t.list_args.empty() && !has_list_reads) continue;
    std::vector<std::vector<Value>> compacted;
    std::vector<Op> kept_ops;
    kept_ops.reserve(t.ops.size());
    for (Op op : t.ops) {
      if (op.type == OpType::kReadList) {
        if (op.list_index >= t.list_args.size()) continue;
        uint32_t idx = static_cast<uint32_t>(compacted.size());
        compacted.push_back(t.list_args[op.list_index]);  // copy: an index
        op.list_index = idx;  // may legally be referenced more than once
      }
      kept_ops.push_back(op);
    }
    t.ops = std::move(kept_ops);
    t.list_args = std::move(compacted);
  }
  return h;
}

class Shrinker {
 public:
  Shrinker(History h, const FailurePredicate& fails,
           const ShrinkOptions& options)
      : current_(std::move(h)), fails_(fails), options_(options) {}

  bool Budget() const { return calls_ < options_.max_predicate_calls; }

  bool Accept(History&& candidate) {
    if (!Budget()) return false;
    ++calls_;
    History normalized = CompactListArgs(std::move(candidate));
    if (!fails_(normalized)) return false;
    current_ = std::move(normalized);
    return true;
  }

  // --- global interleaved ddmin over transactions and operations ------
  //
  // One pass alternates a txn-chunk sweep and an op-chunk sweep at each
  // granularity, halving both sizes together when neither removes
  // anything, instead of running each reduction to fixpoint in
  // isolation. Op chunks address the flat (txn-major) operation index
  // and may span transaction boundaries, so one predicate call can take
  // the tail of one transaction together with the head of the next —
  // repros whose failure couples ops in *different* transactions
  // (NOCONFLICT overlaps in particular) keep shrinking where a
  // per-transaction op pass plateaus.

  // One greedy sweep dropping runs of `chunk` transactions.
  bool SweepTxnChunks(size_t chunk) {
    bool removed = false;
    for (size_t start = 0; start < current_.txns.size() && Budget();) {
      History candidate = current_;
      size_t end = std::min(start + chunk, candidate.txns.size());
      candidate.txns.erase(candidate.txns.begin() + start,
                           candidate.txns.begin() + end);
      if (!candidate.txns.empty() &&
          Accept(NormalizeSessions(std::move(candidate)))) {
        removed = true;  // same start now addresses the next run
      } else {
        start += chunk;
      }
    }
    return removed;
  }

  // Rebuilds `h` without the flat op range [start, start + count): the
  // range maps to one contiguous slice per overlapped transaction.
  static History RemoveOpRange(const History& h, size_t start, size_t count) {
    History out = h;
    const size_t limit = start + count;
    size_t base = 0;
    for (size_t ti = 0; ti < h.txns.size(); ++ti) {
      const size_t n = h.txns[ti].ops.size();
      if (base < limit && base + n > start) {
        size_t b = start > base ? start - base : 0;
        size_t e = std::min(limit - base, n);
        out.txns[ti] = WithoutOps(h.txns[ti], b, e);
      }
      base += n;
    }
    return out;
  }

  // One greedy sweep dropping runs of `chunk` operations in the flat
  // txn-major index (runs may cross transaction boundaries).
  bool SweepOpChunks(size_t chunk) {
    bool removed = false;
    for (size_t start = 0; start < current_.NumOps() && Budget();) {
      if (Accept(RemoveOpRange(current_, start, chunk))) {
        removed = true;  // same start now addresses the next run
      } else {
        start += chunk;
      }
    }
    return removed;
  }

  void ShrinkGlobal() {
    size_t txn_chunk = std::max<size_t>(1, current_.txns.size() / 2);
    size_t op_chunk = std::max<size_t>(1, current_.NumOps() / 2);
    while (Budget()) {
      bool removed = SweepTxnChunks(txn_chunk);
      removed |= SweepOpChunks(op_chunk);
      // The history shrank: keep the chunks within it.
      txn_chunk =
          std::min(txn_chunk, std::max<size_t>(1, current_.txns.size()));
      op_chunk = std::min(op_chunk, std::max<size_t>(1, current_.NumOps()));
      if (!removed) {
        if (txn_chunk == 1 && op_chunk == 1) break;
        txn_chunk = std::max<size_t>(1, txn_chunk / 2);
        op_chunk = std::max<size_t>(1, op_chunk / 2);
      }
    }
  }

  // Rank-compresses all timestamps to 1..T (order- and equality-
  // preserving, so Eq. (1) inversions and duplicates survive).
  void CompactTimestamps() {
    std::map<Timestamp, Timestamp> rank;
    for (const Transaction& t : current_.txns) {
      rank[t.start_ts] = 0;
      rank[t.commit_ts] = 0;
    }
    Timestamp next = 1;
    for (auto& [ts, r] : rank) r = next++;
    History candidate = current_;
    for (Transaction& t : candidate.txns) {
      t.start_ts = rank[t.start_ts];
      t.commit_ts = rank[t.commit_ts];
    }
    Accept(std::move(candidate));
  }

  // Renames keys (to 0..k-1) and values (to 1..m, keeping the initial
  // value 0 fixed) in first-appearance order.
  void CompactKeysAndValues() {
    std::unordered_map<Key, Key> key_map;
    std::unordered_map<Value, Value> val_map;
    val_map[kValueInit] = kValueInit;
    auto key_of = [&](Key k) {
      auto [it, fresh] = key_map.emplace(k, key_map.size());
      (void)fresh;
      return it->second;
    };
    auto val_of = [&](Value v) {
      auto [it, fresh] =
          val_map.emplace(v, static_cast<Value>(val_map.size()));
      (void)fresh;
      return it->second;
    };
    History candidate = current_;
    for (Transaction& t : candidate.txns) {
      for (Op& op : t.ops) {
        op.key = key_of(op.key);
        if (op.type != OpType::kReadList) op.value = val_of(op.value);
      }
      for (auto& list : t.list_args) {
        for (Value& e : list) e = val_of(e);
      }
    }
    Accept(std::move(candidate));
  }

  ShrinkResult Finish() && {
    ShrinkResult r;
    r.minimized = std::move(current_);
    r.final_txns = r.minimized.txns.size();
    r.final_ops = r.minimized.NumOps();
    r.predicate_calls = calls_;
    return r;
  }

  History current_;

 private:
  const FailurePredicate& fails_;
  ShrinkOptions options_;
  size_t calls_ = 0;
};

}  // namespace

History NormalizeSessions(History h) {
  // Stable per-session reindex: order by current sno (ties by position),
  // reassign 0..n-1.
  std::unordered_map<SessionId, std::vector<Transaction*>> by_session;
  for (Transaction& t : h.txns) by_session[t.sid].push_back(&t);
  SessionId max_sid = 0;
  for (auto& [sid, txns] : by_session) {
    max_sid = std::max(max_sid, sid);
    std::stable_sort(txns.begin(), txns.end(),
                     [](const Transaction* a, const Transaction* b) {
                       return a->sno < b->sno;
                     });
    uint64_t next = 0;
    for (Transaction* t : txns) t->sno = next++;
  }
  h.num_sessions = h.txns.empty() ? 0 : max_sid + 1;
  return h;
}

ShrinkResult ShrinkHistory(const History& h, const FailurePredicate& fails,
                           const ShrinkOptions& options) {
  ShrinkResult nothing;
  nothing.minimized = h;
  nothing.initial_txns = nothing.final_txns = h.txns.size();
  nothing.initial_ops = nothing.final_ops = h.NumOps();
  if (!fails(h)) return nothing;  // precondition violated: no-op

  Shrinker s(h, fails, options);
  s.ShrinkGlobal();
  s.CompactTimestamps();
  s.CompactKeysAndValues();

  ShrinkResult r = std::move(s).Finish();
  r.initial_txns = h.txns.size();
  r.initial_ops = h.NumOps();
  return r;
}

}  // namespace chronos::fuzz
