// Seed-derived chaos scenarios for the differential fuzzing harness
// (paper Sec. V-D generalized): one uint64 seed deterministically picks a
// workload shape (Table I knobs), a database configuration (isolation,
// oracle choice, HLC skew, injected faults), and a checker configuration
// (EXT timeout, GC cadence, spill, arrival order). Everything downstream
// — history bytes, fault log, checker verdicts — is a pure function of
// the seed, so any fuzz finding replays from its seed alone.
#ifndef CHRONOS_FUZZ_SCENARIO_H_
#define CHRONOS_FUZZ_SCENARIO_H_

#include <cstdint>
#include <string>

#include "db/database.h"
#include "workload/generator.h"

namespace chronos::fuzz {

/// One fully-specified fuzzing scenario.
struct FuzzScenario {
  uint64_t seed = 0;

  workload::WorkloadParams wl;
  db::DbConfig db;

  // --- checker knobs ---
  /// EXT timeout on the virtual clock. Huge (the default) means verdicts
  /// finalize only at Finish(), which is what makes online counts equal
  /// offline counts for any session-preserving arrival order.
  uint64_t ext_timeout_ms = 1ull << 30;
  /// GcToLiveTarget(gc_target) every `gc_every` arrivals (0: no GC).
  size_t gc_every = 0;
  size_t gc_target = 0;
  /// Persist GC-evicted state (spill store) so stragglers stay checkable.
  bool spill = false;
  /// Collector delay model (cross-session arrival reordering).
  double delay_mean_ms = 0;
  double delay_stddev_ms = 0;
  /// Non-zero: drive the online checkers in a session-preserving shuffle
  /// with this seed instead of commit order.
  uint64_t shuffle_seed = 0;
  /// Also run a sharded checker that is checkpointed (ExportState) and
  /// restored into a fresh instance (ImportState) mid-stream; its
  /// emissions and stats must match the uninterrupted run exactly
  /// (rule "ckpt-restore-identity"). Holds in every scenario, strict or
  /// weak — restore is invisible by construction.
  bool ckpt_restore = false;

  /// Strict scenarios enforce the full cross-checker equality rules
  /// (online == offline per violation class). Weak scenarios — finite
  /// timeout with reordered arrival, or GC without spill — only enforce
  /// the rules that remain exact (sharded-vs-monolith identity, offline
  /// agreement); see the expected-divergence table in fuzz/differ.h.
  bool strict = true;

  /// One-line description (workload x faults x knobs) for fuzz logs.
  std::string Describe() const;
};

/// Deterministically derives the scenario for `seed`.
FuzzScenario ScenarioFromSeed(uint64_t seed);

}  // namespace chronos::fuzz

#endif  // CHRONOS_FUZZ_SCENARIO_H_
