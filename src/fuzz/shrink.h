// Delta-debugging shrinker for fuzz findings: given a history and a
// failure predicate ("the checker disagreement is still present"),
// greedily minimizes the history in one global ddmin pass that
// interleaves transaction-chunk sweeps with operation-chunk sweeps over
// the flat txn-major op index (op chunks may span transaction
// boundaries, so cross-transaction couplings shrink in a single
// predicate call), then compacts timestamps and renames keys/values to
// small dense domains — while preserving the failure. Every candidate
// is re-validated through the predicate, so any reduction that would
// mask the disagreement (or introduce an unrelated one under a
// different rule) is rolled back. Session sequence numbers are
// renormalized after every transaction drop so no candidate is rejected
// for a fabricated sno gap; a genuine session-order inversion survives
// renormalization because relative order is preserved.
#ifndef CHRONOS_FUZZ_SHRINK_H_
#define CHRONOS_FUZZ_SHRINK_H_

#include <cstddef>
#include <functional>

#include "core/types.h"

namespace chronos::fuzz {

/// Returns true when the (candidate) history still exhibits the failure
/// being minimized. Must be deterministic.
using FailurePredicate = std::function<bool(const History&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations (each one typically re-runs
  /// the differ); the shrinker returns its best-so-far at the cap.
  size_t max_predicate_calls = 3000;
};

struct ShrinkResult {
  History minimized;
  size_t initial_txns = 0;
  size_t final_txns = 0;
  size_t initial_ops = 0;
  size_t final_ops = 0;
  size_t predicate_calls = 0;
};

/// Renumbers each session's sequence numbers to 0..n-1 preserving
/// relative order, and recomputes num_sessions. Exposed for tests and
/// for callers that edit histories by hand.
History NormalizeSessions(History h);

/// Minimizes `h` under `fails`. Precondition: fails(h) is true (if not,
/// `h` is returned unchanged with final==initial).
ShrinkResult ShrinkHistory(const History& h, const FailurePredicate& fails,
                           const ShrinkOptions& options = {});

}  // namespace chronos::fuzz

#endif  // CHRONOS_FUZZ_SHRINK_H_
