// Cobra (Tan et al., OSDI'20): the only pre-existing online SER checker.
// Cobra requires "fence transactions" injected into the client workload
// (often unacceptable in production, as the paper stresses) and verifies
// in rounds of R transactions; fences bound which writer pairs have
// unknown order. This model reproduces its operational profile:
//   - per round, a SER polygraph over the round's transactions is solved
//     with fence-epoch pruning (pairs >= 2 epochs apart are ordered);
//   - the accumulated known graph is re-verified each round, so per-round
//     cost grows with history length (the declining curves of Fig. 12a);
//   - checking stops at the first violation (unlike AION, which reports
//     and continues).
// GPU acceleration is out of scope (DESIGN.md substitution #4).
#ifndef CHRONOS_BASELINES_COBRA_H_
#define CHRONOS_BASELINES_COBRA_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "core/violation.h"
#include "hist/collector.h"

namespace chronos::baselines {

struct CobraParams {
  uint32_t round_size = 2400;  ///< transactions per verification round
  uint32_t fence_every = 20;   ///< client txns between fences, per session
  uint32_t sessions = 24;
};

struct CobraRun {
  uint64_t processed = 0;
  bool violation_found = false;
  double wall_seconds = 0;
  /// (wall_seconds_at_round_end, txns_processed_so_far) per round.
  std::vector<std::pair<double, uint64_t>> round_progress;
};

/// Feeds `stream` (delivery order) through Cobra-style online SER
/// checking. Stops at the first violation.
CobraRun RunCobraSer(const std::vector<hist::CollectedTxn>& stream,
                     const CobraParams& params, ViolationSink* sink);

}  // namespace chronos::baselines

#endif  // CHRONOS_BASELINES_COBRA_H_
