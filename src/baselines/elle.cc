#include "baselines/elle.h"

#include "core/small_map.h"

namespace chronos::baselines {

BaselineResult CheckElleKv(const History& h, CheckLevel level,
                           ViolationSink* sink) {
  BaselineResult result;
  Stopwatch sw;

  // Registers give Elle no list prefixes to recover a version order from,
  // so the graph carries only the edges that are certain: so, wr, plus ww
  // edges from read-modify-write chains (a transaction that externally
  // reads k=u and then writes k places u's writer directly before itself).
  std::vector<std::pair<uint32_t, uint32_t>> rmw_ww;
  {
    std::unordered_map<Key, std::unordered_map<Value, uint32_t>> writer_of;
    for (uint32_t i = 0; i < h.txns.size(); ++i) {
      for (const Op& op : h.txns[i].ops) {
        if (op.type == OpType::kWrite) writer_of[op.key].emplace(op.value, i);
      }
    }
    for (uint32_t i = 0; i < h.txns.size(); ++i) {
      SmallMap<Key, Value> first_read;
      SmallMap<Key, bool> wrote;
      for (const Op& op : h.txns[i].ops) {
        if (op.type == OpType::kRead && !wrote.Find(op.key) &&
            !first_read.Find(op.key)) {
          first_read.Put(op.key, op.value);
        } else if (op.type == OpType::kWrite) {
          wrote.Put(op.key, true);
        }
      }
      for (const auto& [key, u] : first_read) {
        if (!wrote.Find(key) || u == kValueInit) continue;
        auto kit = writer_of.find(key);
        if (kit == writer_of.end()) continue;
        auto vit = kit->second.find(u);
        if (vit == kit->second.end() || vit->second == i) continue;
        rmw_ww.emplace_back(vit->second, i);
      }
    }
  }

  DepGraph g;
  result.anomalies = BuildDepGraph(h, VersionOrders{},
                                   GraphBuildOptions{true, false}, &g, sink);
  for (const auto& [a, b] : rmw_ww) g.AddDep(a, b);
  result.graph_edges = g.NumEdges();
  bool ok = level == CheckLevel::kSer ? SatisfiesSerCriterion(g)
                                      : SatisfiesSiCriterion(g);
  result.cycle_found = !ok;
  if (!ok && !h.txns.empty()) {
    sink->Report({ViolationType::kExt, h.txns[0].tid, kTxnNone, 0});
  }
  result.seconds = sw.Seconds();
  return result;
}

BaselineResult CheckElleList(const History& h, CheckLevel level,
                             ViolationSink* sink) {
  BaselineResult result;
  Stopwatch sw;
  size_t prefix_anomalies = 0;
  VersionOrders orders = RecoverFromListPrefixes(h, sink, &prefix_anomalies);
  DepGraph g;
  result.anomalies =
      prefix_anomalies +
      BuildDepGraph(h, orders, GraphBuildOptions{true, false}, &g, sink);
  result.graph_edges = g.NumEdges();
  bool ok = level == CheckLevel::kSer ? SatisfiesSerCriterion(g)
                                      : SatisfiesSiCriterion(g);
  result.cycle_found = !ok;
  if (!ok && !h.txns.empty()) {
    sink->Report({ViolationType::kExt, h.txns[0].tid, kTxnNone, 0});
  }
  result.seconds = sw.Seconds();
  return result;
}

}  // namespace chronos::baselines
