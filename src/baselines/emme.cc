#include "baselines/emme.h"

#include <algorithm>
#include <map>

#include "baselines/depgraph.h"
#include "core/small_map.h"

namespace chronos::baselines {
namespace {

// Full per-key version lists (commit_ts, value, txn index), kept resident
// for the whole check — the deliberately non-incremental design.
struct VersionLists {
  std::unordered_map<Key, std::vector<std::tuple<Timestamp, Value, uint32_t>>>
      versions;

  void Build(const History& h) {
    for (uint32_t i = 0; i < h.txns.size(); ++i) {
      SmallMap<Key, Value> last;
      for (const Op& op : h.txns[i].ops) {
        if (op.type == OpType::kWrite) last.Put(op.key, op.value);
      }
      for (const auto& [key, value] : last) {
        versions[key].emplace_back(h.txns[i].commit_ts, value, i);
      }
    }
    for (auto& [key, list] : versions) {
      (void)key;
      std::sort(list.begin(), list.end());
    }
  }

  // Latest version with cts <= view, excluding versions written by the
  // reading transaction itself (`self_index`): a start==commit-stamped
  // transaction commits at exactly its own read view, and its snapshot
  // precedes its own commit (fuzz finding: counting the self-version
  // produced EXT false positives on late-start-faulted histories).
  Value Lookup(Key key, Timestamp view, uint32_t self_index) const {
    auto it = versions.find(key);
    if (it == versions.end()) return kValueInit;
    const auto& list = it->second;
    auto vit = std::upper_bound(
        list.begin(), list.end(), view, [](Timestamp ts, const auto& v) {
          return ts < std::get<0>(v);
        });
    while (vit != list.begin()) {
      const auto& v = *std::prev(vit);
      if (std::get<2>(v) != self_index) return std::get<1>(v);
      --vit;
    }
    return kValueInit;
  }
};

}  // namespace

BaselineResult CheckEmmeSi(const History& h, ViolationSink* sink) {
  BaselineResult result;
  Stopwatch sw;
  CountingSink counted(0);

  // 1. Version-order recovery (white-box: commit timestamps).
  VersionOrders orders = RecoverByCommitTs(h);
  VersionLists lists;
  lists.Build(h);

  // 2. Full start-ordered serialization graph.
  DepGraph g;
  result.anomalies =
      BuildDepGraph(h, orders, GraphBuildOptions{true, true}, &g, sink);
  result.graph_edges = g.NumEdges();

  // 3. Read validation against the version lists (EXT), session order,
  //    Eq. (1), and write-interval overlap (NOCONFLICT).
  std::unordered_map<SessionId, std::vector<uint32_t>> by_session;
  for (uint32_t i = 0; i < h.txns.size(); ++i) {
    by_session[h.txns[i].sid].push_back(i);
  }
  for (auto& [sid, idxs] : by_session) {
    (void)sid;
    std::sort(idxs.begin(), idxs.end(), [&](uint32_t a, uint32_t b) {
      return h.txns[a].sno < h.txns[b].sno;
    });
    Timestamp last_cts = kTsMin;
    int64_t last_sno = -1;
    for (uint32_t i : idxs) {
      const Transaction& t = h.txns[i];
      if (static_cast<int64_t>(t.sno) != last_sno + 1 ||
          t.start_ts < last_cts) {
        sink->Report({ViolationType::kSession, t.tid});
        counted.Report({ViolationType::kSession, t.tid});
      }
      last_sno = static_cast<int64_t>(t.sno);
      last_cts = t.commit_ts;
    }
  }
  for (uint32_t ti = 0; ti < h.txns.size(); ++ti) {
    const Transaction& t = h.txns[ti];
    if (!t.TimestampsOrdered()) {
      sink->Report({ViolationType::kTsOrder, t.tid});
      counted.Report({ViolationType::kTsOrder, t.tid});
      continue;
    }
    SmallMap<Key, Value> int_val;
    for (const Op& op : t.ops) {
      if (op.type == OpType::kWrite) {
        int_val.Put(op.key, op.value);
      } else if (op.type == OpType::kRead) {
        if (int_val.Find(op.key)) continue;  // INT handled in BuildDepGraph
        int_val.Put(op.key, op.value);
        Value expect = lists.Lookup(op.key, t.start_ts, ti);
        if (expect != op.value) {
          sink->Report({ViolationType::kExt, t.tid, kTxnNone, op.key, expect,
                        op.value});
          counted.Report({ViolationType::kExt, t.tid});
        }
      }
    }
  }
  // NOCONFLICT: overlapping writer intervals per key (interval sweep).
  {
    std::unordered_map<Key, std::vector<std::pair<Timestamp, uint32_t>>>
        writers;
    for (uint32_t i = 0; i < h.txns.size(); ++i) {
      SmallMap<Key, bool> seen;
      for (const Op& op : h.txns[i].ops) {
        if (op.type != OpType::kWrite || seen.Find(op.key)) continue;
        seen.Put(op.key, true);
        writers[op.key].emplace_back(h.txns[i].start_ts, i);
      }
    }
    for (auto& [key, list] : writers) {
      std::sort(list.begin(), list.end());
      // Sweep by start; report pairs whose spans intersect.
      std::vector<uint32_t> active;
      for (const auto& [sts, i] : list) {
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](uint32_t j) {
                                      return h.txns[j].commit_ts < sts;
                                    }),
                     active.end());
        for (uint32_t j : active) {
          uint32_t first =
              h.txns[j].commit_ts < h.txns[i].commit_ts ? j : i;
          uint32_t second = first == j ? i : j;
          sink->Report({ViolationType::kNoConflict, h.txns[first].tid,
                        h.txns[second].tid, key});
          counted.Report({ViolationType::kNoConflict, h.txns[first].tid});
        }
        active.push_back(i);
      }
    }
  }
  result.anomalies += counted.total();

  // 4. Global cycle detection on the SI expansion.
  result.cycle_found = !SatisfiesSiCriterion(g);
  result.seconds = sw.Seconds();
  return result;
}

BaselineResult CheckEmmeSer(const History& h, ViolationSink* sink) {
  BaselineResult result;

  // SER checking ignores start timestamps (paper Sec. VI-A: transactions
  // must appear to execute sequentially in commit-timestamp order) —
  // normalize start := commit so the time-precedes chain encodes commit
  // order only. Without this, an Eq. (1)-inverted transaction (start >
  // commit) forms a self-cycle through the chain and Emme-SER rejects
  // histories the other SER checkers accept by design (fuzz finding).
  History ser_view = h;
  for (Transaction& t : ser_view.txns) t.start_ts = t.commit_ts;

  // Time the check only — the normalization copy above is harness
  // overhead, not part of the baseline's measured cost.
  Stopwatch sw;
  VersionOrders orders = RecoverByCommitTs(ser_view);
  DepGraph g;
  result.anomalies =
      BuildDepGraph(ser_view, orders, GraphBuildOptions{true, true}, &g, sink);
  result.graph_edges = g.NumEdges();
  result.cycle_found = !SatisfiesSerCriterion(g);
  result.seconds = sw.Seconds();
  return result;
}

}  // namespace chronos::baselines
