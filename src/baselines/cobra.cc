#include "baselines/cobra.h"

#include <unordered_map>

#include "baselines/depgraph.h"
#include "baselines/polysi.h"
#include "core/stats.h"

namespace chronos::baselines {

namespace {

// Reachability closure of the accumulated graph via bitset DP in reverse
// topological order. This models Cobra's frozen-graph verification (kept
// on a GPU in the original system): the dominant, history-length-
// dependent cost of each round. Returns false on a cycle.
bool RecomputeClosure(const std::vector<std::vector<uint32_t>>& adj) {
  size_t n = adj.size();
  std::vector<uint32_t> indeg(n, 0);
  for (const auto& out : adj) {
    for (uint32_t v : out) ++indeg[v];
  }
  std::vector<uint32_t> order;
  order.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) order.push_back(i);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    for (uint32_t v : adj[order[head]]) {
      if (--indeg[v] == 0) order.push_back(v);
    }
  }
  if (order.size() != n) return false;  // cycle
  size_t words = (n + 63) / 64;
  std::vector<uint64_t> reach(n * words, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    uint32_t u = *it;
    uint64_t* row = &reach[static_cast<size_t>(u) * words];
    row[u / 64] |= uint64_t{1} << (u % 64);
    for (uint32_t v : adj[u]) {
      const uint64_t* vrow = &reach[static_cast<size_t>(v) * words];
      for (size_t w = 0; w < words; ++w) row[w] |= vrow[w];
    }
  }
  return true;
}

}  // namespace

CobraRun RunCobraSer(const std::vector<hist::CollectedTxn>& stream,
                     const CobraParams& params, ViolationSink* sink) {
  CobraRun run;
  Stopwatch sw;

  // Accumulated known graph (so + wr + frozen ww from solved rounds),
  // re-verified wholesale every round: this is the growing cost term.
  std::vector<std::vector<uint32_t>> acc_adj;
  std::unordered_map<TxnId, uint32_t> acc_index;
  std::unordered_map<Key, std::unordered_map<Value, uint32_t>> acc_writer;
  std::unordered_map<SessionId, uint32_t> acc_session_tail;

  const uint64_t fence_period =
      std::max<uint64_t>(1, static_cast<uint64_t>(params.fence_every) *
                                params.sessions);
  // Fence epochs follow commit order: fence transactions commit between
  // epochs, so the epoch of a transaction is its commit rank divided by
  // the fence period (delivery order is too scrambled to use directly).
  std::vector<uint64_t> epoch_of_pos(stream.size());
  {
    std::vector<uint32_t> by_cts(stream.size());
    for (uint32_t i = 0; i < by_cts.size(); ++i) by_cts[i] = i;
    std::sort(by_cts.begin(), by_cts.end(), [&](uint32_t a, uint32_t b) {
      return stream[a].txn.commit_ts < stream[b].txn.commit_ts;
    });
    for (uint32_t rank = 0; rank < by_cts.size(); ++rank) {
      epoch_of_pos[by_cts[rank]] = rank / fence_period;
    }
  }

  size_t pos = 0;
  while (pos < stream.size() && !run.violation_found) {
    size_t round_end = std::min(stream.size(), pos + params.round_size);

    // Build the round sub-history. Reads justified by earlier rounds are
    // dropped from the round-local polygraph (their wr edges live in the
    // accumulated graph below); reads of writers not yet seen stay out as
    // well (stragglers resolve in a later round's accumulated pass).
    std::unordered_map<Key, std::unordered_map<Value, bool>> in_round_writer;
    for (size_t i = pos; i < round_end; ++i) {
      for (const Op& op : stream[i].txn.ops) {
        if (op.type == OpType::kWrite) {
          in_round_writer[op.key][op.value] = true;
        }
      }
    }
    History round;
    round.txns.reserve(round_end - pos);
    for (size_t i = pos; i < round_end; ++i) {
      Transaction t = stream[i].txn;
      std::vector<Op> kept;
      kept.reserve(t.ops.size());
      for (const Op& op : t.ops) {
        if (op.type == OpType::kRead && op.value != kValueInit) {
          auto kit = in_round_writer.find(op.key);
          bool local = kit != in_round_writer.end() &&
                       kit->second.count(op.value) > 0;
          if (!local) continue;  // justified upstream (or straggler)
        }
        kept.push_back(op);
      }
      t.ops = std::move(kept);
      round.txns.push_back(std::move(t));
    }

    // Solve the round's SER polygraph with fence-epoch pruning.
    PolygraphParams pp;
    pp.level = CheckLevel::kSer;
    pp.prune_known_orders = true;
    uint64_t base_index = pos;
    pp.epoch_of = [&epoch_of_pos, base_index](uint32_t local) {
      return epoch_of_pos[base_index + local];
    };
    CountingSink round_sink;
    PolygraphResult pr = CheckPolygraph(round, pp, &round_sink);
    if (pr.verdict == PolygraphResult::Verdict::kViolation ||
        round_sink.total() > 0) {
      for (const Violation& v : round_sink.first()) sink->Report(v);
      run.violation_found = true;  // Cobra terminates at first violation
    }

    // Freeze round edges into the accumulated graph and re-verify it.
    for (size_t i = pos; i < round_end; ++i) {
      const Transaction& t = stream[i].txn;
      uint32_t idx = static_cast<uint32_t>(acc_adj.size());
      acc_adj.emplace_back();
      acc_index[t.tid] = idx;
      auto sit = acc_session_tail.find(t.sid);
      if (sit != acc_session_tail.end()) acc_adj[sit->second].push_back(idx);
      acc_session_tail[t.sid] = idx;
      for (const Op& op : t.ops) {
        if (op.type == OpType::kWrite) {
          acc_writer[op.key][op.value] = idx;
        } else if (op.type == OpType::kRead && op.value != kValueInit) {
          auto kit = acc_writer.find(op.key);
          if (kit == acc_writer.end()) continue;
          auto vit = kit->second.find(op.value);
          if (vit != kit->second.end() && vit->second != idx) {
            acc_adj[vit->second].push_back(idx);
          }
        }
      }
    }
    if (!RecomputeClosure(acc_adj)) {
      if (!stream.empty()) {
        sink->Report({ViolationType::kExt, stream[pos].txn.tid});
      }
      run.violation_found = true;
    }

    pos = round_end;
    run.processed = pos;
    run.round_progress.emplace_back(sw.Seconds(), run.processed);
  }

  run.wall_seconds = sw.Seconds();
  return run;
}

}  // namespace chronos::baselines
