// Elle-style black-box checkers (Kingsbury & Alvaro, VLDB'20): infer
// transaction dependencies from observed values under the unique-value
// assumption and hunt for cycles. ElleList uses list-append version-order
// recovery (Elle's core strength); ElleKV handles plain registers, where
// version orders are only partially recoverable — the paper notes Elle
// "has limited capabilities" for key-value pairs, and this implementation
// mirrors that: it detects G1a/G1b/INT/G1c-style anomalies and
// read-modify-write ww chains but cannot place blind writes.
#ifndef CHRONOS_BASELINES_ELLE_H_
#define CHRONOS_BASELINES_ELLE_H_

#include "baselines/depgraph.h"
#include "core/stats.h"
#include "core/types.h"
#include "core/violation.h"

namespace chronos::baselines {

/// Result of a baseline black-box check.
struct BaselineResult {
  bool cycle_found = false;   ///< dependency-cycle violation
  size_t anomalies = 0;       ///< non-cycle anomalies (G1a, INT, prefix...)
  size_t graph_edges = 0;
  double seconds = 0;

  bool Accepted() const { return !cycle_found && anomalies == 0; }
};

/// Isolation level for the cycle criterion.
enum class CheckLevel { kSer, kSi };

/// ElleKV: register histories.
BaselineResult CheckElleKv(const History& h, CheckLevel level,
                           ViolationSink* sink);

/// ElleList: list-append histories with prefix-based recovery.
BaselineResult CheckElleList(const History& h, CheckLevel level,
                             ViolationSink* sink);

}  // namespace chronos::baselines

#endif  // CHRONOS_BASELINES_ELLE_H_
