// PolySI (Huang et al., VLDB'23) and Viper (Zhang et al., EuroSys'23)
// modeled as polygraph checkers: black-box SI checking with unknown
// per-key version orders encoded as SAT variables, solved with a CEGAR
// loop around the in-tree SAT solver (the MonoSAT substitution of
// DESIGN.md): solve -> build the induced dependency graph -> find a
// cycle -> add a blocking clause -> repeat. Exponential in the worst
// case, which is exactly the scaling behaviour Fig. 4 shows.
//
// Viper differs by (a) pruning order variables that session order or
// read-modify-write chains already fix and (b) using the leaner
// BC-polygraph anti-dependency widening (rw only to the immediate next
// version instead of all later versions).
#ifndef CHRONOS_BASELINES_POLYSI_H_
#define CHRONOS_BASELINES_POLYSI_H_

#include <cstddef>
#include <functional>

#include "baselines/elle.h"
#include "core/types.h"
#include "core/violation.h"

namespace chronos::baselines {

/// Tuning for the polygraph CEGAR check.
struct PolygraphParams {
  CheckLevel level = CheckLevel::kSi;
  bool prune_known_orders = false;  ///< Viper-style session/RMW pruning
  /// Cobra fence epochs: writer pairs two or more epochs apart are
  /// ordered by epoch instead of a SAT variable (nullptr: disabled).
  std::function<uint64_t(uint32_t txn_index)> epoch_of;
  uint64_t max_cegar_rounds = 10000;
  uint64_t max_conflicts = 2000000;
};

/// Outcome of a polygraph check.
struct PolygraphResult {
  enum class Verdict { kAccepted, kViolation, kUnknown };
  Verdict verdict = Verdict::kUnknown;
  size_t cegar_rounds = 0;
  size_t sat_vars = 0;
  size_t anomalies = 0;
  double seconds = 0;
};

/// Core engine shared by PolySI / Viper / Cobra.
PolygraphResult CheckPolygraph(const History& h, const PolygraphParams& params,
                               ViolationSink* sink);

/// PolySI: SI polygraph, no pruning, full widening.
PolygraphResult CheckPolySi(const History& h, ViolationSink* sink);

/// Viper: SI BC-polygraph with pruning.
PolygraphResult CheckViper(const History& h, ViolationSink* sink);

}  // namespace chronos::baselines

#endif  // CHRONOS_BASELINES_POLYSI_H_
