// Emme-SI (Clark et al., EuroSys'24 family): a timestamp-based
// (white-box) SI checker built on version-order recovery. Unlike CHRONOS
// it is not incremental: it recovers the full per-key version order from
// commit timestamps, materializes the complete start-ordered
// serialization graph of the history (so + wr + ww + rw + realtime
// edges), validates every read against the stored version lists, and
// finishes with a global cycle-detection pass. The full-graph
// materialization is what makes it memory-heavy and unsuited to online
// checking (paper Secs. I, V-B, VII).
#ifndef CHRONOS_BASELINES_EMME_H_
#define CHRONOS_BASELINES_EMME_H_

#include "baselines/elle.h"
#include "core/types.h"
#include "core/violation.h"

namespace chronos::baselines {

/// Offline Emme-style SI check. Reports the same violation classes as
/// CHRONOS (SESSION/INT/EXT/NOCONFLICT/Eq.1) plus dependency cycles.
BaselineResult CheckEmmeSi(const History& h, ViolationSink* sink);

/// Emme-style SER check (commit-order replay via the graph machinery).
BaselineResult CheckEmmeSer(const History& h, ViolationSink* sink);

}  // namespace chronos::baselines

#endif  // CHRONOS_BASELINES_EMME_H_
