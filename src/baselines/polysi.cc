#include "baselines/polysi.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "baselines/depgraph.h"
#include "baselines/sat/solver.h"
#include "core/small_map.h"

namespace chronos::baselines {
namespace {

uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// A directed edge annotated with the SAT literal that produced it
// (0 for fixed edges: so / wr / pruned ww).
struct AnnEdge {
  uint32_t to = 0;
  sat::Lit lit = 0;
  bool is_rw = false;
};

// Finds a cycle in the annotated graph under the SER (plain) or SI
// (phase expansion) criterion. Returns the literals of the edges on one
// cycle, or nullopt if acyclic. `hard_cycle` is set when a cycle exists
// whose edges are all fixed (no literals to block).
std::optional<std::vector<sat::Lit>> FindCycle(
    const std::vector<std::vector<AnnEdge>>& adj, bool si_expansion,
    bool* hard_cycle) {
  size_t n = adj.size();
  size_t total = si_expansion ? 2 * n : n;
  // Expansion node e = 2x+phase (SI) or x (SER).
  auto expand = [&](uint32_t x, bool phase) {
    return si_expansion ? 2 * x + (phase ? 1 : 0) : x;
  };
  std::vector<uint8_t> color(total, 0);
  std::vector<int64_t> on_path(total, -1);
  struct Frame {
    uint32_t node;   // original node
    bool phase;      // entered via rw?
    size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<sat::Lit> path_lits;

  for (size_t root = 0; root < total; ++root) {
    if (color[root] != 0) continue;
    uint32_t rnode = static_cast<uint32_t>(si_expansion ? root / 2 : root);
    bool rphase = si_expansion && root % 2 == 1;
    stack.push_back({rnode, rphase, 0});
    color[root] = 1;
    on_path[root] = 0;
    path_lits.clear();
    while (!stack.empty()) {
      Frame& f = stack.back();
      size_t self = expand(f.node, f.phase);
      bool advanced = false;
      while (f.next < adj[f.node].size()) {
        const AnnEdge& e = adj[f.node][f.next++];
        if (e.is_rw && f.phase) continue;        // two adjacent rw: allowed
        bool child_phase = si_expansion && e.is_rw;
        size_t child = expand(e.to, child_phase);
        if (color[child] == 1) {
          // Cycle: collect literals from the path suffix plus this edge.
          std::vector<sat::Lit> lits;
          size_t from = static_cast<size_t>(on_path[child]);
          for (size_t i = from; i < path_lits.size(); ++i) {
            if (path_lits[i] != 0) lits.push_back(path_lits[i]);
          }
          if (e.lit != 0) lits.push_back(e.lit);
          *hard_cycle = lits.empty();
          return lits;
        }
        if (color[child] == 0) {
          color[child] = 1;
          on_path[child] = static_cast<int64_t>(path_lits.size() + 1);
          path_lits.push_back(e.lit);
          stack.push_back({e.to, child_phase, 0});
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        color[self] = 2;
        on_path[self] = -1;
        stack.pop_back();
        if (!path_lits.empty()) path_lits.pop_back();
      }
    }
  }
  *hard_cycle = false;
  return std::nullopt;
}

}  // namespace

PolygraphResult CheckPolygraph(const History& h,
                               const PolygraphParams& params,
                               ViolationSink* sink) {
  PolygraphResult result;
  Stopwatch sw;
  const size_t n = h.txns.size();

  // Fixed edges (so + wr) and pre-checks (INT, G1a) via the shared
  // builder with no recovered version order.
  DepGraph base;
  result.anomalies = BuildDepGraph(h, VersionOrders{},
                                   GraphBuildOptions{true, false}, &base, sink);

  // Per-key writers (stream order) and external reads mapped to writers.
  std::unordered_map<Key, std::vector<uint32_t>> writers;
  std::unordered_map<Key, std::unordered_map<Value, uint32_t>> writer_of;
  for (uint32_t i = 0; i < n; ++i) {
    SmallMap<Key, bool> seen;
    for (const Op& op : h.txns[i].ops) {
      if (op.type != OpType::kWrite) continue;
      writer_of[op.key].emplace(op.value, i);
      if (!seen.Find(op.key)) {
        seen.Put(op.key, true);
        writers[op.key].push_back(i);
      }
    }
  }
  struct ExtRead {
    Key key;
    uint32_t reader;
    uint32_t writer;  // UINT32_MAX: read of the initial version
  };
  std::vector<ExtRead> ext_reads;
  for (uint32_t i = 0; i < n; ++i) {
    SmallMap<Key, bool> accessed;
    for (const Op& op : h.txns[i].ops) {
      if (op.type == OpType::kWrite) {
        accessed.Put(op.key, true);
      } else if (op.type == OpType::kRead) {
        if (accessed.Find(op.key)) continue;
        accessed.Put(op.key, true);
        uint32_t w = UINT32_MAX;
        if (op.value != kValueInit) {
          auto kit = writer_of.find(op.key);
          if (kit != writer_of.end()) {
            auto vit = kit->second.find(op.value);
            if (vit != kit->second.end()) w = vit->second;
          }
          if (w == UINT32_MAX) continue;  // G1a already reported
          if (w == i) continue;
        }
        ext_reads.push_back({op.key, i, w});
      }
    }
  }

  // Order variables for unordered writer pairs; Viper-style pruning fixes
  // pairs that session order or RMW chains determine.
  sat::Solver solver;
  std::unordered_map<Key, std::unordered_map<uint64_t, sat::Lit>> pair_lit;
  std::unordered_map<Key, std::unordered_map<uint64_t, bool>> pair_fixed;
  for (const auto& [key, ws] : writers) {
    auto& lits = pair_lit[key];
    auto& fixed = pair_fixed[key];
    for (size_t a = 0; a < ws.size(); ++a) {
      for (size_t b = a + 1; b < ws.size(); ++b) {
        uint32_t i = ws[a], j = ws[b];
        if (params.prune_known_orders &&
            h.txns[i].sid == h.txns[j].sid) {
          fixed[PairKey(i, j)] = h.txns[i].sno < h.txns[j].sno;
          continue;
        }
        if (params.epoch_of) {
          uint64_t ei = params.epoch_of(i), ej = params.epoch_of(j);
          if (ei + 2 <= ej || ej + 2 <= ei) {
            fixed[PairKey(i, j)] = ei < ej;
            continue;
          }
        }
        int v = solver.NewVar();
        solver.SetPhase(v, true);  // seed: stream order (i before j)
        lits[PairKey(i, j)] = v;
      }
    }
  }
  result.sat_vars = static_cast<size_t>(solver.NumVars());

  // Literal asserting "i's version precedes j's" (0 when fixed true;
  // callers must consult ordered() for the direction of fixed pairs).
  auto lit_before = [&](Key key, uint32_t i, uint32_t j) -> sat::Lit {
    auto& lits = pair_lit[key];
    auto it = lits.find(PairKey(std::min(i, j), std::max(i, j)));
    if (it == lits.end()) return 0;
    return i < j ? it->second : -it->second;
  };
  auto is_before = [&](Key key, uint32_t i, uint32_t j) -> bool {
    sat::Lit l = lit_before(key, i, j);
    if (l != 0) {
      bool v = solver.Value(l > 0 ? l : -l);
      return l > 0 ? v : !v;
    }
    auto& fixed = pair_fixed[key];
    auto it = fixed.find(PairKey(std::min(i, j), std::max(i, j)));
    if (it != fixed.end()) return i < j ? it->second : !it->second;
    return i < j;  // defensive: deterministic default
  };

  // ---- CEGAR loop ----
  const bool si = params.level == CheckLevel::kSi;
  while (result.cegar_rounds < params.max_cegar_rounds) {
    ++result.cegar_rounds;
    sat::Solver::Result sres = solver.Solve(params.max_conflicts);
    if (sres == sat::Solver::Result::kUnsat) {
      result.verdict = PolygraphResult::Verdict::kViolation;
      if (!h.txns.empty()) {
        sink->Report({ViolationType::kExt, h.txns[0].tid, kTxnNone, 0});
      }
      break;
    }
    if (sres == sat::Solver::Result::kUnknown) {
      result.verdict = PolygraphResult::Verdict::kUnknown;
      break;
    }

    // Induced annotated graph under the current model.
    std::vector<std::vector<AnnEdge>> adj(n);
    for (uint32_t x = 0; x < n; ++x) {
      for (uint32_t y : base.dep[x]) adj[x].push_back({y, 0, false});
    }
    for (const auto& [key, ws] : writers) {
      for (size_t a = 0; a < ws.size(); ++a) {
        for (size_t b = a + 1; b < ws.size(); ++b) {
          uint32_t i = ws[a], j = ws[b];
          bool before = is_before(key, i, j);
          sat::Lit l = lit_before(key, before ? i : j, before ? j : i);
          if (before) {
            adj[i].push_back({j, l, false});
          } else {
            adj[j].push_back({i, l, false});
          }
        }
      }
    }
    for (const ExtRead& er : ext_reads) {
      const auto& ws = writers[er.key];
      for (uint32_t x : ws) {
        if (x == er.writer || x == er.reader) continue;
        if (er.writer == UINT32_MAX || is_before(er.key, er.writer, x)) {
          sat::Lit l = er.writer == UINT32_MAX
                           ? 0
                           : lit_before(er.key, er.writer, x);
          adj[er.reader].push_back({x, l, true});
        }
      }
    }

    bool hard = false;
    auto cycle_lits = FindCycle(adj, si, &hard);
    if (!cycle_lits) {
      result.verdict = PolygraphResult::Verdict::kAccepted;
      break;
    }
    if (hard) {
      result.verdict = PolygraphResult::Verdict::kViolation;
      if (!h.txns.empty()) {
        sink->Report({ViolationType::kExt, h.txns[0].tid, kTxnNone, 0});
      }
      break;
    }
    std::vector<sat::Lit> clause;
    clause.reserve(cycle_lits->size());
    for (sat::Lit l : *cycle_lits) clause.push_back(-l);
    solver.AddClause(std::move(clause));
  }

  if (result.cegar_rounds >= params.max_cegar_rounds &&
      result.verdict == PolygraphResult::Verdict::kUnknown) {
    result.verdict = PolygraphResult::Verdict::kUnknown;
  }
  result.seconds = sw.Seconds();
  return result;
}

PolygraphResult CheckPolySi(const History& h, ViolationSink* sink) {
  PolygraphParams p;
  p.level = CheckLevel::kSi;
  p.prune_known_orders = false;
  return CheckPolygraph(h, p, sink);
}

PolygraphResult CheckViper(const History& h, ViolationSink* sink) {
  PolygraphParams p;
  p.level = CheckLevel::kSi;
  p.prune_known_orders = true;
  return CheckPolygraph(h, p, sink);
}

}  // namespace chronos::baselines
