#include "baselines/depgraph.h"

#include <algorithm>
#include <map>

#include "core/small_map.h"

namespace chronos::baselines {

bool IsAcyclic(const std::vector<std::vector<uint32_t>>& adj) {
  size_t n = adj.size();
  std::vector<uint8_t> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (uint32_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    stack.emplace_back(root, 0);
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < adj[node].size()) {
        uint32_t child = adj[node][next++];
        if (color[child] == 1) return false;  // back edge: cycle
        if (color[child] == 0) {
          color[child] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

bool SatisfiesSerCriterion(const DepGraph& g) {
  std::vector<std::vector<uint32_t>> adj(g.n);
  for (uint32_t i = 0; i < g.n; ++i) {
    adj[i] = g.dep[i];
    adj[i].insert(adj[i].end(), g.rw[i].begin(), g.rw[i].end());
  }
  return IsAcyclic(adj);
}

bool SatisfiesSiCriterion(const DepGraph& g) {
  // Phase expansion: node 2x is "entered via dep", 2x+1 is "entered via
  // rw". An rw edge may only leave a dep-entered node, so cycles where
  // two rw edges are adjacent cannot close (those are SI-legal).
  std::vector<std::vector<uint32_t>> adj(2 * g.n);
  for (uint32_t x = 0; x < g.n; ++x) {
    for (uint32_t y : g.dep[x]) {
      adj[2 * x].push_back(2 * y);
      adj[2 * x + 1].push_back(2 * y);
    }
    for (uint32_t y : g.rw[x]) {
      adj[2 * x].push_back(2 * y + 1);
    }
  }
  return IsAcyclic(adj);
}

VersionOrders RecoverByCommitTs(const History& h) {
  VersionOrders vo;
  std::unordered_map<Key, std::vector<std::pair<Timestamp, uint32_t>>> tmp;
  for (uint32_t i = 0; i < h.txns.size(); ++i) {
    SmallMap<Key, bool> seen;
    for (const Op& op : h.txns[i].ops) {
      if (op.type != OpType::kWrite && op.type != OpType::kAppend) continue;
      if (seen.Find(op.key)) continue;
      seen.Put(op.key, true);
      tmp[op.key].emplace_back(h.txns[i].commit_ts, i);
    }
  }
  for (auto& [key, writers] : tmp) {
    std::sort(writers.begin(), writers.end());
    auto& order = vo.order[key];
    order.reserve(writers.size());
    for (const auto& [ts, idx] : writers) {
      (void)ts;
      order.push_back(idx);
    }
  }
  return vo;
}

VersionOrders RecoverFromListPrefixes(const History& h, ViolationSink* sink,
                                      size_t* anomalies) {
  *anomalies = 0;
  // Canonical per-key element sequence: the longest observed list; every
  // other observation must be one of its prefixes.
  std::unordered_map<Key, std::vector<Value>> canon;
  for (const Transaction& t : h.txns) {
    for (const Op& op : t.ops) {
      if (op.type != OpType::kReadList) continue;
      const std::vector<Value>& obs = t.list_args[op.list_index];
      auto& c = canon[op.key];
      size_t common = std::min(c.size(), obs.size());
      bool prefix_ok =
          std::equal(obs.begin(), obs.begin() + static_cast<long>(common),
                     c.begin());
      if (!prefix_ok) {
        sink->Report({ViolationType::kExt, t.tid, kTxnNone, op.key,
                      static_cast<Value>(c.size()),
                      static_cast<Value>(obs.size())});
        ++*anomalies;
        continue;
      }
      if (obs.size() > c.size()) c = obs;
    }
  }
  // Element -> appender map, then collapse elements to writer sequences.
  std::unordered_map<Key, std::unordered_map<Value, uint32_t>> appender;
  for (uint32_t i = 0; i < h.txns.size(); ++i) {
    for (const Op& op : h.txns[i].ops) {
      if (op.type == OpType::kAppend) appender[op.key][op.value] = i;
    }
  }
  VersionOrders vo;
  for (const auto& [key, elems] : canon) {
    auto& order = vo.order[key];
    auto ait = appender.find(key);
    for (Value e : elems) {
      if (ait == appender.end()) break;
      auto wit = ait->second.find(e);
      if (wit == ait->second.end()) continue;  // unknown writer: skip
      if (order.empty() || order.back() != wit->second) {
        order.push_back(wit->second);
      }
    }
  }
  return vo;
}

size_t BuildDepGraph(const History& h, const VersionOrders& orders,
                     const GraphBuildOptions& options, DepGraph* out,
                     ViolationSink* sink) {
  const size_t n = h.txns.size();
  size_t anomalies = 0;

  // Time-precedes chain (Emme's start-ordered edges): auxiliary nodes, one
  // per distinct timestamp, chained in ascending order. A transaction
  // links commit -> chain and chain -> start, so Ti ->* Tj iff
  // Ti.commit_ts < Tj.start_ts — O(N) edges, exact reachability.
  std::map<Timestamp, uint32_t> time_node;
  if (options.add_time_edges) {
    for (const Transaction& t : h.txns) {
      time_node.emplace(t.start_ts, 0);
      time_node.emplace(t.commit_ts, 0);
    }
    uint32_t next = static_cast<uint32_t>(n);
    for (auto& [ts, idx] : time_node) {
      (void)ts;
      idx = next++;
    }
  }
  out->Reset(n + time_node.size());
  if (options.add_time_edges) {
    uint32_t prev = UINT32_MAX;
    for (auto& [ts, idx] : time_node) {
      (void)ts;
      if (prev != UINT32_MAX) out->AddDep(prev, idx);
      prev = idx;
    }
    for (uint32_t i = 0; i < n; ++i) {
      const Transaction& t = h.txns[i];
      out->AddDep(i, time_node[t.commit_ts]);       // commit enters chain
      // The chain node *before* the start releases into the transaction;
      // entering at start itself would equate cts == sts with cts < sts.
      auto it = time_node.find(t.start_ts);
      if (it != time_node.begin()) {
        // Find the predecessor timestamp node.
        auto pit = std::prev(time_node.lower_bound(t.start_ts));
        out->AddDep(pit->second, i);
      }
    }
  }

  // Session order chains.
  if (options.add_session_edges) {
    std::unordered_map<SessionId, std::vector<std::pair<uint64_t, uint32_t>>>
        sessions;
    for (uint32_t i = 0; i < n; ++i) {
      sessions[h.txns[i].sid].emplace_back(h.txns[i].sno, i);
    }
    for (auto& [sid, seq] : sessions) {
      (void)sid;
      std::sort(seq.begin(), seq.end());
      for (size_t i = 0; i + 1 < seq.size(); ++i) {
        out->AddDep(seq[i].second, seq[i + 1].second);
      }
    }
  }

  // Unique-value writer map: (key, value) -> writer index.
  std::unordered_map<Key, std::unordered_map<Value, uint32_t>> writer_of;
  for (uint32_t i = 0; i < n; ++i) {
    for (const Op& op : h.txns[i].ops) {
      if (op.type != OpType::kWrite && op.type != OpType::kAppend) continue;
      auto [it, fresh] = writer_of[op.key].emplace(op.value, i);
      if (!fresh && it->second != i) {
        // Unique-value assumption broken; black-box checkers treat this
        // as ambiguity. Report and keep the first writer.
        sink->Report({ViolationType::kExt, h.txns[i].tid,
                      h.txns[it->second].tid, op.key, kValueBottom,
                      op.value});
        ++anomalies;
      }
    }
  }

  // Per-key version ranks and ww chains.
  std::unordered_map<Key, std::unordered_map<uint32_t, size_t>> rank;
  for (const auto& [key, order] : orders.order) {
    auto& r = rank[key];
    for (size_t i = 0; i < order.size(); ++i) {
      r[order[i]] = i;
      if (i + 1 < order.size()) out->AddDep(order[i], order[i + 1]);
    }
  }

  auto rw_to_next = [&](Key key, uint32_t writer_idx, uint32_t reader) {
    auto oit = orders.order.find(key);
    if (oit == orders.order.end()) return;
    auto rit = rank[key].find(writer_idx);
    if (rit == rank[key].end()) return;
    size_t next = rit->second + 1;
    if (next < oit->second.size()) out->AddRw(reader, oit->second[next]);
  };

  // Reads: wr and rw edges; INT and aborted reads (G1a) as a by-product.
  for (uint32_t i = 0; i < n; ++i) {
    const Transaction& t = h.txns[i];
    SmallMap<Key, Value> int_val;
    for (const Op& op : t.ops) {
      switch (op.type) {
        case OpType::kWrite:
        case OpType::kAppend:
          int_val.Put(op.key, op.value);
          break;
        case OpType::kRead: {
          if (Value* iv = int_val.Find(op.key)) {
            if (*iv != op.value) {
              sink->Report({ViolationType::kInt, t.tid, kTxnNone, op.key, *iv,
                            op.value});
              ++anomalies;
            }
            int_val.Put(op.key, op.value);
            break;
          }
          int_val.Put(op.key, op.value);
          if (op.value == kValueInit) {
            // Read of the initial version: anti-depends on the first
            // committed version.
            auto oit = orders.order.find(op.key);
            if (oit != orders.order.end() && !oit->second.empty()) {
              out->AddRw(i, oit->second[0]);
            }
            break;
          }
          auto kit = writer_of.find(op.key);
          const uint32_t* w = nullptr;
          if (kit != writer_of.end()) {
            auto vit = kit->second.find(op.value);
            if (vit != kit->second.end()) w = &vit->second;
          }
          if (!w) {
            // Aborted/phantom read (G1a-flavoured): no committed writer.
            sink->Report({ViolationType::kExt, t.tid, kTxnNone, op.key,
                          kValueBottom, op.value});
            ++anomalies;
            break;
          }
          out->AddDep(*w, i);  // wr
          rw_to_next(op.key, *w, i);
          break;
        }
        case OpType::kReadList: {
          const std::vector<Value>& obs = t.list_args[op.list_index];
          auto oit = orders.order.find(op.key);
          if (obs.empty()) {
            if (oit != orders.order.end() && !oit->second.empty()) {
              out->AddRw(i, oit->second[0]);
            }
            break;
          }
          auto kit = writer_of.find(op.key);
          const uint32_t* w = nullptr;
          if (kit != writer_of.end()) {
            auto vit = kit->second.find(obs.back());
            if (vit != kit->second.end()) w = &vit->second;
          }
          if (!w) {
            sink->Report({ViolationType::kExt, t.tid, kTxnNone, op.key,
                          kValueBottom, obs.back()});
            ++anomalies;
            break;
          }
          out->AddDep(*w, i);
          rw_to_next(op.key, *w, i);
          break;
        }
      }
    }
  }
  return anomalies;
}

}  // namespace chronos::baselines
