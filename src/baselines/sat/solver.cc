#include "baselines/sat/solver.h"

#include <algorithm>

namespace chronos::sat {

int Solver::NewVar() {
  assign_.push_back(kUndef);
  activity_.push_back(0.0);
  phase_.push_back(false);
  watches_.push_back({});
  watches_.push_back({});
  return NumVars();
}

void Solver::AddClause(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  // Tautology?
  for (size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i] == -lits[i + 1]) return;
  }
  if (lits.empty()) {
    unsat_ = true;
    return;
  }
  if (lits.size() == 1) {
    root_units_.push_back(lits[0]);
    return;
  }
  size_t idx = clauses_.size();
  clauses_.push_back({std::move(lits)});
  watches_[LitIndex(clauses_[idx].lits[0])].push_back(idx);
  watches_[LitIndex(clauses_[idx].lits[1])].push_back(idx);
}

void Solver::Enqueue(Lit l) {
  assign_[static_cast<size_t>(l > 0 ? l : -l)] = l > 0 ? kTrue : kFalse;
  phase_[static_cast<size_t>(l > 0 ? l : -l)] = l > 0;
  trail_.push_back(l);
}

void Solver::UndoTo(size_t trail_limit) {
  while (trail_.size() > trail_limit) {
    Lit l = trail_.back();
    trail_.pop_back();
    assign_[static_cast<size_t>(l > 0 ? l : -l)] = kUndef;
  }
}

bool Solver::Propagate(size_t* conflict_clause) {
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];
    std::vector<size_t>& watchers = watches_[LitIndex(-p)];
    size_t keep = 0;
    for (size_t wi = 0; wi < watchers.size(); ++wi) {
      size_t ci = watchers[wi];
      Clause& c = clauses_[ci];
      // Normalize: the falsified watched literal sits at position 1.
      if (c.lits[0] == -p) std::swap(c.lits[0], c.lits[1]);
      if (LitValue(c.lits[0]) == kTrue) {
        watchers[keep++] = ci;  // clause satisfied; keep watching
        continue;
      }
      bool moved = false;
      for (size_t j = 2; j < c.lits.size(); ++j) {
        if (LitValue(c.lits[j]) != kFalse) {
          std::swap(c.lits[1], c.lits[j]);
          watches_[LitIndex(c.lits[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch relocated; drop from this list
      watchers[keep++] = ci;
      if (LitValue(c.lits[0]) == kFalse) {
        // Conflict: restore untraversed watchers and report.
        for (size_t rest = wi + 1; rest < watchers.size(); ++rest) {
          watchers[keep++] = watchers[rest];
        }
        watchers.resize(keep);
        *conflict_clause = ci;
        return false;
      }
      Enqueue(c.lits[0]);
    }
    watchers.resize(keep);
  }
  return true;
}

Solver::Result Solver::Solve(uint64_t max_conflicts) {
  if (unsat_) return Result::kUnsat;
  UndoTo(0);
  qhead_ = 0;
  struct Frame {
    size_t trail_size;
    Lit lit;
    bool flipped;
    int cursor;
  };
  std::vector<Frame> frames;

  for (Lit u : root_units_) {
    if (LitValue(u) == kFalse) return Result::kUnsat;
    if (LitValue(u) == kUndef) Enqueue(u);
  }

  uint64_t conflicts = 0;
  int cursor = 1;
  while (true) {
    size_t confl = 0;
    if (!Propagate(&confl)) {
      for (Lit l : clauses_[confl].lits) {
        activity_[static_cast<size_t>(l > 0 ? l : -l)] += 1.0;
      }
      if (++conflicts > max_conflicts) return Result::kUnknown;
      while (!frames.empty() && frames.back().flipped) frames.pop_back();
      if (frames.empty()) return Result::kUnsat;
      Frame& f = frames.back();
      UndoTo(f.trail_size);
      qhead_ = trail_.size();
      f.flipped = true;
      cursor = f.cursor;
      Enqueue(-f.lit);
      continue;
    }
    // Pick the next unassigned variable (scan resumes from the parent
    // frame's cursor; within one branch the cursor only moves forward).
    int v = 0;
    for (int i = cursor; i <= NumVars(); ++i) {
      if (assign_[static_cast<size_t>(i)] == kUndef) {
        v = i;
        break;
      }
    }
    if (v == 0) return Result::kSat;
    Lit decision = phase_[static_cast<size_t>(v)] ? v : -v;
    frames.push_back({trail_.size(), decision, false, cursor});
    cursor = v + 1;
    Enqueue(decision);
  }
}

}  // namespace chronos::sat
