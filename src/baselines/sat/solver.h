// A from-scratch CDCL-lite SAT solver (unit propagation with watched
// literals, first-UIP-free conflict handling via chronological
// backtracking, activity-based branching). Stands in for MonoSAT in the
// PolySI / Viper / Cobra baselines (DESIGN.md substitution #3); the
// acyclicity theory is handled by a CEGAR loop around this solver.
#ifndef CHRONOS_BASELINES_SAT_SOLVER_H_
#define CHRONOS_BASELINES_SAT_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chronos::sat {

/// A literal: +v asserts variable v, -v negates it (v >= 1).
using Lit = int32_t;

/// CDCL-lite SAT solver. Add variables and clauses, then Solve();
/// repeated Solve() calls after adding clauses are supported
/// (incremental use by the CEGAR loop).
class Solver {
 public:
  /// Allocates a fresh variable, returning its index (>= 1).
  int NewVar();
  int NumVars() const { return static_cast<int>(assign_.size()) - 1; }

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable.
  void AddClause(std::vector<Lit> lits);

  enum class Result { kSat, kUnsat, kUnknown };

  /// Solves with a conflict budget (kUnknown when exhausted).
  Result Solve(uint64_t max_conflicts = 10000000);

  /// Model value of variable v after kSat.
  bool Value(int v) const { return assign_[static_cast<size_t>(v)] == 1; }

  /// Sets the initial decision phase of variable v (phases are also saved
  /// across restarts). Lets CEGAR callers seed the first model.
  void SetPhase(int v, bool value) { phase_[static_cast<size_t>(v)] = value; }

  size_t NumClauses() const { return clauses_.size(); }

 private:
  struct Clause {
    std::vector<Lit> lits;
  };

  enum : int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  size_t LitIndex(Lit l) const {
    int v = l > 0 ? l : -l;
    return static_cast<size_t>(v) * 2 + (l > 0 ? 0 : 1);
  }
  int8_t LitValue(Lit l) const {
    int8_t a = assign_[static_cast<size_t>(l > 0 ? l : -l)];
    if (a == kUndef) return kUndef;
    return (l > 0) == (a == kTrue) ? kTrue : kFalse;
  }
  void Enqueue(Lit l);
  bool Propagate(size_t* conflict_clause);
  void UndoTo(size_t trail_limit);

  std::vector<int8_t> assign_{kUndef};  // 1-indexed by variable
  std::vector<Clause> clauses_;
  std::vector<std::vector<size_t>> watches_{{}, {}};  // lit index -> clauses
  std::vector<Lit> trail_;
  std::vector<Lit> root_units_;
  std::vector<double> activity_{0.0};
  std::vector<bool> phase_{false};  // saved phase per variable
  size_t qhead_ = 0;
  bool unsat_ = false;
};

}  // namespace chronos::sat

#endif  // CHRONOS_BASELINES_SAT_SOLVER_H_
