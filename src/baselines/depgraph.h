// Dependency-graph machinery shared by the baseline checkers (ElleKV,
// ElleList, Emme-SI, PolySI, Viper, Cobra): graph construction from
// histories under the unique-value assumption, Tarjan SCC cycle
// detection, and the serializability / snapshot-isolation acyclicity
// criteria.
//
// SER criterion: dep ∪ rw must be acyclic (dep = so ∪ wr ∪ ww).
// SI criterion (Cerone & Gotsman, JACM'18): (dep ; rw?) must be acyclic,
// i.e. no cycle in which anti-dependency edges are adjacent-free; we test
// this on a 2n-node expansion where an rw edge may only follow a dep edge.
#ifndef CHRONOS_BASELINES_DEPGRAPH_H_
#define CHRONOS_BASELINES_DEPGRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "core/violation.h"

namespace chronos::baselines {

/// Transaction-level dependency graph. Node i is history.txns[i].
struct DepGraph {
  size_t n = 0;
  std::vector<std::vector<uint32_t>> dep;  ///< so ∪ wr ∪ ww (∪ time edges)
  std::vector<std::vector<uint32_t>> rw;   ///< anti-dependencies

  explicit DepGraph(size_t nodes = 0) { Reset(nodes); }
  void Reset(size_t nodes) {
    n = nodes;
    dep.assign(nodes, {});
    rw.assign(nodes, {});
  }
  void AddDep(uint32_t a, uint32_t b) {
    if (a != b) dep[a].push_back(b);
  }
  void AddRw(uint32_t a, uint32_t b) {
    if (a != b) rw[a].push_back(b);
  }
  size_t NumEdges() const {
    size_t e = 0;
    for (const auto& v : dep) e += v.size();
    for (const auto& v : rw) e += v.size();
    return e;
  }
};

/// True if `adj` (indices 0..n-1) has no directed cycle. Iterative Tarjan.
bool IsAcyclic(const std::vector<std::vector<uint32_t>>& adj);

/// SER: dep ∪ rw acyclic.
bool SatisfiesSerCriterion(const DepGraph& g);

/// SI: (dep ; rw?) acyclic — tested on the phase expansion (see header
/// comment). Pure-rw cycles of length >= 2 are permitted by SI.
bool SatisfiesSiCriterion(const DepGraph& g);

/// Per-key recovered version orders: for each key, writer transaction
/// indices in version order. Writers absent from `order[k]` have unknown
/// placement.
struct VersionOrders {
  std::unordered_map<Key, std::vector<uint32_t>> order;
};

/// Recovers version orders from commit timestamps (white-box recovery as
/// used by the Emme family).
VersionOrders RecoverByCommitTs(const History& h);

/// Recovers version orders for list histories from observed prefixes
/// (Elle's core inference): the longest observed list per key defines the
/// element order; observation prefix mismatches are reported as
/// violations via `sink` (and counted in the return's second member).
VersionOrders RecoverFromListPrefixes(const History& h, ViolationSink* sink,
                                      size_t* anomalies);

/// Graph construction configuration.
struct GraphBuildOptions {
  bool add_session_edges = true;
  /// Add timestamp-derived "time precedes" edges: Ti -> Tj when Ti
  /// commits before Tj starts (start-ordered serialization graph; used by
  /// Emme). Implemented with an auxiliary realtime chain so edge count
  /// stays O(N) while preserving exact cts<sts reachability.
  bool add_time_edges = false;
};

/// Builds the dependency graph of `h` under `orders`. Reads of values
/// with no known writer (other than the initial value) are reported as
/// aborted-read/G1a anomalies. INT is checked as a by-product. Returns
/// the number of read anomalies found.
size_t BuildDepGraph(const History& h, const VersionOrders& orders,
                     const GraphBuildOptions& options, DepGraph* out,
                     ViolationSink* sink);

}  // namespace chronos::baselines

#endif  // CHRONOS_BASELINES_DEPGRAPH_H_
