// Stage timing and result statistics shared by the offline checkers
// (used by the Fig. 8/9/24 decomposition benches).
#ifndef CHRONOS_CORE_STATS_H_
#define CHRONOS_CORE_STATS_H_

#include <chrono>
#include <cstddef>

namespace chronos {

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Result of an offline check, decomposed by stage (paper Sec. V-C1:
/// loading / sorting / checking / GC). Loading happens in the history
/// codec; its time is filled in by the caller.
struct CheckStats {
  double load_seconds = 0;
  double sort_seconds = 0;
  double check_seconds = 0;
  double gc_seconds = 0;
  size_t txns = 0;
  size_t ops = 0;
  size_t violations = 0;
  size_t gc_passes = 0;

  double TotalSeconds() const {
    return load_seconds + sort_seconds + check_seconds + gc_seconds;
  }
};

}  // namespace chronos

#endif  // CHRONOS_CORE_STATS_H_
