#include "core/spill.h"

#include <cstdio>
#include <filesystem>

namespace chronos {
namespace {

bool WriteU64(FILE* f, uint64_t v) { return fwrite(&v, 8, 1, f) == 1; }
bool ReadU64(FILE* f, uint64_t* v) { return fread(v, 8, 1, f) == 1; }

}  // namespace

SpillStore::SpillStore(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) dir_.clear();  // fall back to discard mode
  }
}

std::string SpillStore::PathFor(uint64_t id) const {
  return dir_ + "/spill-" + std::to_string(id) + ".bin";
}

uint64_t SpillStore::Spill(const SpillPayload& payload) {
  if (payload.Empty()) return 0;
  if (!persistent()) return 0;
  uint64_t id = next_id_++;
  FILE* f = fopen(PathFor(id).c_str(), "wb");
  if (!f) return 0;
  bool ok = WriteU64(f, payload.max_ts);
  ok = ok && WriteU64(f, payload.versions.size());
  for (const auto& [k, ts, e] : payload.versions) {
    ok = ok && WriteU64(f, k) && WriteU64(f, ts) &&
         WriteU64(f, static_cast<uint64_t>(e.value)) && WriteU64(f, e.tid);
  }
  ok = ok && WriteU64(f, payload.intervals.size());
  for (const auto& [k, iv] : payload.intervals) {
    ok = ok && WriteU64(f, k) && WriteU64(f, iv.start) &&
         WriteU64(f, iv.end) && WriteU64(f, iv.tid);
  }
  ok = ok && WriteU64(f, payload.list_versions.size());
  for (const ListSpillVersion& lv : payload.list_versions) {
    ok = ok && WriteU64(f, lv.key) && WriteU64(f, lv.ts) &&
         WriteU64(f, lv.tid) && WriteU64(f, lv.delta.size());
    for (Value e : lv.delta) {
      ok = ok && WriteU64(f, static_cast<uint64_t>(e));
    }
  }
  fclose(f);
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(PathFor(id), ec);
    return 0;
  }
  epochs_[id] = payload.max_ts;
  return id;
}

SpillStore::LoadStatus SpillStore::Load(uint64_t epoch_id,
                                        SpillPayload* out) const {
  if (!persistent() || epochs_.find(epoch_id) == epochs_.end()) {
    return LoadStatus::kMissing;
  }
  FILE* f = fopen(PathFor(epoch_id).c_str(), "rb");
  if (!f) return LoadStatus::kMissing;
  out->versions.clear();
  out->intervals.clear();
  uint64_t n = 0;
  bool ok = ReadU64(f, &out->max_ts) && ReadU64(f, &n);
  for (uint64_t i = 0; ok && i < n; ++i) {
    uint64_t k, ts, v, tid;
    ok = ReadU64(f, &k) && ReadU64(f, &ts) && ReadU64(f, &v) &&
         ReadU64(f, &tid);
    if (ok) {
      out->versions.emplace_back(
          k, ts, VersionEntry{static_cast<Value>(v), tid});
    }
  }
  uint64_t m = 0;
  ok = ok && ReadU64(f, &m);
  for (uint64_t i = 0; ok && i < m; ++i) {
    uint64_t k, s, e, tid;
    ok = ReadU64(f, &k) && ReadU64(f, &s) && ReadU64(f, &e) && ReadU64(f, &tid);
    if (ok) out->intervals.emplace_back(k, WriteInterval{s, e, tid});
  }
  out->list_versions.clear();
  uint64_t l = 0;
  ok = ok && ReadU64(f, &l);
  for (uint64_t i = 0; ok && i < l; ++i) {
    ListSpillVersion lv;
    uint64_t n_elems = 0;
    ok = ReadU64(f, &lv.key) && ReadU64(f, &lv.ts) && ReadU64(f, &lv.tid) &&
         ReadU64(f, &n_elems);
    for (uint64_t j = 0; ok && j < n_elems; ++j) {
      uint64_t e;
      ok = ReadU64(f, &e);
      if (ok) lv.delta.push_back(static_cast<Value>(e));
    }
    if (ok) out->list_versions.push_back(std::move(lv));
  }
  // A well-formed epoch is consumed exactly; trailing bytes mean the
  // file was overwritten or appended to — treat as corrupt too.
  if (ok) {
    uint64_t extra;
    if (ReadU64(f, &extra)) ok = false;
  }
  fclose(f);
  return ok ? LoadStatus::kOk : LoadStatus::kCorrupt;
}

void SpillStore::SerializeManifest(StateWriter* w) const {
  w->U64(next_id_);
  w->U64(epochs_.size());
  for (const auto& [id, max_ts] : epochs_) {
    w->U64(id);
    w->U64(max_ts);
  }
}

bool SpillStore::DeserializeManifest(StateReader* r) {
  next_id_ = r->U64();
  uint64_t n = r->U64();
  epochs_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    uint64_t id = r->U64();
    Timestamp max_ts = r->U64();
    epochs_[id] = max_ts;
  }
  return r->ok();
}

std::vector<uint64_t> SpillStore::EpochsAtOrBelow(Timestamp ts) const {
  std::vector<uint64_t> ids;
  for (const auto& [id, max_ts] : epochs_) {
    (void)max_ts;
    // Epoch contents are bounded above by max_ts but unbounded below, so
    // any epoch may intersect [0, ts]; filter only those entirely above.
    if (ts == 0) continue;
    ids.push_back(id);
  }
  (void)ts;
  return ids;
}

}  // namespace chronos
