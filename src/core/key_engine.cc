#include "core/key_engine.h"

#include <algorithm>
#include <optional>

namespace chronos {
namespace {

constexpr size_t kEpochCacheCap = 4;

}  // namespace

KeyEngine::KeyEngine(const Options& options, CheckerStats* stats,
                     FlipFlopStats* flips, ReportFn report)
    : options_(options),
      stats_(stats),
      flip_stats_(flips),
      report_(std::move(report)),
      spill_(options.spill_dir) {}

void KeyEngine::ProcessTxn(const TxnCtx& ctx, const ExtReadReq* reads,
                           size_t num_reads, const WriteReq* writes,
                           size_t num_writes, bool register_reads,
                           uint64_t now_ms) {
  const bool ser = options_.mode == CheckMode::kSer;

  // Step 1 (per-key half): tentative EXT verdict against the current
  // frontier at the read view (Algorithm 3 lines 13-15). A replayed tid
  // keeps its original record and registrations (register_reads false):
  // its reads are ignored — re-evaluating them could only feed a record
  // that does not exist — but its writes below still go through Steps
  // 2-3 like any other arrival.
  LocalTxn* rec = nullptr;
  if (register_reads && num_reads > 0) {
    rec = &local_txns_[ctx.tid];
    rec->view_ts = ctx.view_ts;
    rec->commit_ts = ctx.commit_ts;
    rec->ext_reads.reserve(num_reads);
    for (size_t i = 0; i < num_reads; ++i) {
      VersionedKv::Lookup cur = LookupFrontier(reads[i].key, ctx.view_ts);
      ExtReadState er;
      er.key = reads[i].key;
      er.observed = reads[i].observed;
      er.satisfied = (cur.value == reads[i].observed);
      er.last_change_ms = now_ms;
      rec->ext_reads.push_back(er);
    }
  }

  // Register the reads before installing this transaction's versions so
  // that Step-3 re-checking can find them (its own reads are never in
  // the affected range: an SI read view precedes its own commit and SER
  // readers see strictly earlier versions only).
  if (rec) {
    if (commit_index_.empty() || ctx.commit_ts > commit_index_.back().first) {
      commit_index_.emplace_back(ctx.commit_ts, ctx.tid);
    } else {
      auto pos = std::lower_bound(
          commit_index_.begin(), commit_index_.end(), ctx.commit_ts,
          [](const auto& p, Timestamp ts) { return p.first < ts; });
      commit_index_.insert(pos, {ctx.commit_ts, ctx.tid});
    }
    for (uint32_t i = 0; i < rec->ext_reads.size(); ++i) {
      ReaderChain& chain = reader_index_[rec->ext_reads[i].key];
      ReaderRef ref{ctx.view_ts, ctx.tid, i};
      if (chain.empty() || ctx.view_ts > chain.back().view_ts) {
        chain.push_back(ref);  // common: views arrive in near-ts order
      } else {
        auto pos = std::lower_bound(
            chain.begin(), chain.end(), ctx.view_ts,
            [](const ReaderRef& r, Timestamp ts) { return r.view_ts < ts; });
        chain.insert(pos, ref);
      }
    }
  }

  // Step 3 (per written key): install the version and re-check EXT for
  // affected readers.
  for (size_t i = 0; i < num_writes; ++i) {
    InstallVersionAndRecheck(ctx, writes[i].key, writes[i].value, now_ms);
  }

  // Step 2: NOCONFLICT against overlapping writers (SI only).
  if (!ser && num_writes > 0) {
    CheckNoConflict(ctx, writes, num_writes);
    for (size_t i = 0; i < num_writes; ++i) {
      ongoing_.Add(writes[i].key, ctx.start_ts, ctx.commit_ts, ctx.tid);
    }
  }
}

VersionedKv::Lookup KeyEngine::LookupFrontier(Key key, Timestamp view) {
  const bool inclusive = options_.mode == CheckMode::kSi;
  VersionedKv::Lookup mem = inclusive ? versions_.GetAtOrBefore(key, view)
                                      : versions_.GetBefore(key, view);
  if (view >= watermark_ || watermark_ == kTsMin) return mem;
  // The read view lies below the GC watermark: in-memory state may lack
  // the intermediate versions; merge with the spill store.
  if (!spill_.persistent()) {
    ++stats_->unsafe_below_watermark;
    return mem;
  }
  VersionedKv::Lookup spilled = LookupSpilled(key, view);
  return spilled.ts > mem.ts || (mem.tid == kTxnNone && spilled.tid != kTxnNone)
             ? spilled
             : mem;
}

const SpillPayload* KeyEngine::LoadEpoch(uint64_t id, SpillPayload* scratch) {
  for (auto& [cid, cp] : epoch_cache_) {
    if (cid == id) return &cp;
  }
  if (!spill_.Load(id, scratch)) return nullptr;
  ++stats_->spill_reloads;
  if (epoch_cache_.size() >= kEpochCacheCap) {
    epoch_cache_.erase(epoch_cache_.begin());
  }
  epoch_cache_.emplace_back(id, std::move(*scratch));
  return &epoch_cache_.back().second;
}

VersionedKv::Lookup KeyEngine::LookupSpilled(Key key, Timestamp view) {
  const bool inclusive = options_.mode == CheckMode::kSi;
  VersionedKv::Lookup best;
  for (uint64_t id : spill_epochs_) {
    SpillPayload scratch;
    const SpillPayload* payload = LoadEpoch(id, &scratch);
    if (!payload) continue;
    for (const auto& [k, ts, entry] : payload->versions) {
      bool qualifies = inclusive ? ts <= view : ts < view;
      if (k == key && qualifies && ts >= best.ts) {
        best = VersionedKv::Lookup{entry.value, entry.tid, ts};
      }
    }
  }
  return best;
}

void KeyEngine::InstallVersionAndRecheck(const TxnCtx& ctx, Key key,
                                         Value value, uint64_t now_ms) {
  const bool ser = options_.mode == CheckMode::kSer;
  const Timestamp cts = ctx.commit_ts;

  // If an in-memory version at or after cts but at or below the watermark
  // exists, this writer is a straggler shadowed below the watermark: every
  // affected reader is already finalized, so no re-check is needed
  // (DESIGN.md Sec. 1.1). Evicted versions are all strictly older than the
  // retained per-key base, so the in-memory NextVersionAfter bound is
  // exact in the re-check path below.
  VersionedKv::Lookup base = versions_.GetAtOrBefore(key, watermark_);
  bool shadowed_below_watermark =
      watermark_ != kTsMin && cts < watermark_ && base.ts >= cts;

  std::optional<Timestamp> next = versions_.NextVersionAfter(key, cts);
  if (!versions_.Put(key, cts, value, ctx.tid)) {
    report_(cts, {ViolationType::kTsDuplicate, ctx.tid, kTxnNone, key});
    return;
  }
  if (shadowed_below_watermark) return;

  auto rit = reader_index_.find(key);
  if (rit == reader_index_.end()) return;
  const ReaderChain& readers = rit->second;

  // Affected read views: SI sees versions with cts <= view, so the range
  // is [cts, next]; SER sees versions with cts < view, so it is (cts,
  // next]. The upper bound is inclusive in both modes: timestamps are
  // unique across transactions, so a reader whose view equals `next` can
  // only be the writer of the version at `next` itself (start == commit),
  // and its own version is invisible to it — the version installed here
  // is its real frontier (fuzz finding: a late-start-stamped
  // read-then-write transaction was left with a stale tentative EXT
  // verdict because the re-check stopped at `next` exclusive).
  // The uniqueness premise holds even for malformed input: the ingress
  // dup-gate rejects any arrival whose start or commit timestamp was
  // already used (the offender is never dispatched, divergence entry
  // D6), and once GC prunes the used-ts window a colliding straggler can
  // only shadow readers the watermark clamp already finalized — which
  // the `finalized` check below skips.
  auto view_lt = [](const ReaderRef& r, Timestamp ts) {
    return r.view_ts < ts;
  };
  auto view_gt = [](Timestamp ts, const ReaderRef& r) {
    return ts < r.view_ts;
  };
  auto begin = ser ? std::upper_bound(readers.begin(), readers.end(), cts,
                                      view_gt)
                   : std::lower_bound(readers.begin(), readers.end(), cts,
                                      view_lt);
  for (auto it = begin; it != readers.end(); ++it) {
    if (next && it->view_ts > *next) break;
    auto tit = local_txns_.find(it->tid);
    if (tit == local_txns_.end()) continue;
    LocalTxn& reader = tit->second;
    if (reader.finalized) continue;  // Algorithm 3 line 40
    if (it->tid == ctx.tid) continue;
    const TxnId rtid = it->tid;
    ExtReadState& er = reader.ext_reads[it->read_idx];
    bool now_satisfied = (er.observed == value);
    ++stats_->ext_rechecks;
    if (now_satisfied != er.satisfied) {
      flip_stats_->RecordFlip(rtid, now_ms - er.last_change_ms);
      ++er.flips;
      er.satisfied = now_satisfied;
      er.last_change_ms = now_ms;
    }
  }
}

void KeyEngine::CheckNoConflict(const TxnCtx& ctx, const WriteReq* writes,
                                size_t num_writes) {
  // `writes` already carries each written key once, in first-write op
  // order (the ingress deduplicated).
  for (size_t i = 0; i < num_writes; ++i) {
    const Key key = writes[i].key;
    ++stats_->noconflict_checks;
    for (const WriteInterval& iv :
         ongoing_.Overlapping(key, ctx.start_ts, ctx.commit_ts)) {
      if (iv.tid == ctx.tid) continue;
      // Attribute the conflict to the earlier committer (paper's
      // deduplication rule).
      TxnId first = iv.end < ctx.commit_ts ? iv.tid : ctx.tid;
      TxnId second = first == iv.tid ? ctx.tid : iv.tid;
      report_(std::min(iv.end, ctx.commit_ts),
              {ViolationType::kNoConflict, first, second, key});
    }
    // Straggler below the watermark: evicted intervals may also overlap.
    if (watermark_ != kTsMin && ctx.start_ts < watermark_) {
      if (!spill_.persistent()) {
        ++stats_->unsafe_below_watermark;
      } else {
        for (uint64_t id : spill_epochs_) {
          SpillPayload scratch;
          const SpillPayload* p = LoadEpoch(id, &scratch);
          if (!p) continue;
          for (const auto& [k, iv] : p->intervals) {
            if (k != key || iv.tid == ctx.tid) continue;
            if (iv.start <= ctx.commit_ts && iv.end >= ctx.start_ts) {
              TxnId first = iv.end < ctx.commit_ts ? iv.tid : ctx.tid;
              TxnId second = first == iv.tid ? ctx.tid : iv.tid;
              report_(std::min(iv.end, ctx.commit_ts),
                      {ViolationType::kNoConflict, first, second, key});
            }
          }
        }
      }
    }
  }
}

void KeyEngine::FinalizeTxn(TxnId tid) {
  auto it = local_txns_.find(tid);
  if (it == local_txns_.end()) return;
  LocalTxn& rec = it->second;
  if (rec.finalized) return;
  rec.finalized = true;
  for (const ExtReadState& er : rec.ext_reads) {
    flip_stats_->RecordPairDone(er.flips);
    if (!er.satisfied) {
      VersionedKv::Lookup cur = LookupFrontier(er.key, rec.view_ts);
      report_(rec.commit_ts, {ViolationType::kExt, tid, cur.tid, er.key,
                              cur.value, er.observed});
    }
  }
}

void KeyEngine::CollectUpTo(Timestamp watermark) {
  SpillPayload payload;
  payload.max_ts = watermark;
  versions_.CollectUpTo(watermark, &payload.versions);
  ongoing_.CollectUpTo(watermark, &payload.intervals);
  uint64_t id = spill_.Spill(payload);
  if (id != 0) spill_epochs_.push_back(id);

  // Drop finalized transaction records committed at or below the line.
  // Reader refs are batch-compacted per key afterwards: erasing each ref
  // individually would make a pass over a hot key's chain quadratic.
  std::unordered_map<Key, std::vector<Timestamp>> dropped_views;
  auto line_end = std::upper_bound(
      commit_index_.begin(), commit_index_.end(), watermark,
      [](Timestamp ts, const auto& p) { return ts < p.first; });
  auto keep = std::remove_if(
      commit_index_.begin(), line_end,
      [&](const std::pair<Timestamp, TxnId>& p) {
        auto tit = local_txns_.find(p.second);
        if (tit == local_txns_.end() || !tit->second.finalized) return false;
        for (const ExtReadState& er : tit->second.ext_reads) {
          dropped_views[er.key].push_back(tit->second.view_ts);
        }
        local_txns_.erase(tit);
        return true;
      });
  commit_index_.erase(keep, line_end);
  for (auto& [key, views] : dropped_views) {
    auto rit = reader_index_.find(key);
    if (rit == reader_index_.end()) continue;
    std::sort(views.begin(), views.end());
    ReaderChain& chain = rit->second;
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const ReaderRef& r) {
                                 return std::binary_search(
                                     views.begin(), views.end(), r.view_ts);
                               }),
                chain.end());
    if (chain.empty()) reader_index_.erase(rit);
  }

  watermark_ = std::max(watermark_, watermark);
}

}  // namespace chronos
