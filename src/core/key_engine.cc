#include "core/key_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>

#include "core/list_replay.h"

namespace chronos {
namespace {

constexpr size_t kEpochCacheCap = 4;

// Flip bookkeeping shared by register and list re-checks (the two
// tentative-verdict states carry the same satisfied/flips fields).
template <typename ReadState>
void UpdateTentativeVerdict(ReadState& s, bool now_satisfied, TxnId rtid,
                            uint64_t now_ms, FlipFlopStats* flips,
                            CheckerStats* stats) {
  ++stats->ext_rechecks;
  if (now_satisfied != s.satisfied) {
    flips->RecordFlip(rtid, now_ms - s.last_change_ms);
    ++s.flips;
    s.satisfied = now_satisfied;
    s.last_change_ms = now_ms;
  }
}

}  // namespace

template <typename Fn>
void KeyEngine::WalkAffectedReaders(const ReaderChain& readers, Timestamp cts,
                                    const std::optional<Timestamp>& upper,
                                    TxnId writer, Fn&& fn) {
  auto view_lt = [](const ReaderRef& r, Timestamp ts) {
    return r.view_ts < ts;
  };
  auto begin =
      std::lower_bound(readers.begin(), readers.end(), cts, view_lt);
  for (auto it = begin; it != readers.end(); ++it) {
    if (upper && it->view_ts > *upper) break;
    auto tit = local_txns_.find(it->tid);
    if (tit == local_txns_.end()) continue;
    if (tit->second.finalized) continue;  // Algorithm 3 line 40
    if (it->tid == writer) continue;
    // The lower range bound is per *reader* level (chains may mix
    // levels): SI sees the version at its own view ([cts, ...]), every
    // commit-view level sees strictly earlier versions only ((cts, ...]).
    if (it->view_ts == cts &&
        tit->second.level != IsolationLevel::kSi) {
      continue;
    }
    fn(*it, tit->second);
  }
}

KeyEngine::KeyEngine(const Options& options, CheckerStats* stats,
                     FlipFlopStats* flips, ReportFn report)
    : options_(options),
      stats_(stats),
      flip_stats_(flips),
      report_(std::move(report)),
      spill_(options.spill_dir) {}

void KeyEngine::ProcessTxn(const TxnCtx& ctx, const OpsView& ops,
                           bool register_reads, uint64_t now_ms) {
  const bool membership = MembershipLevel(ctx.level);

  // Step 1 (per-key half): tentative EXT verdict against the current
  // frontier at the read view (Algorithm 3 lines 13-15) — or, for the
  // commit-order levels (RC/RA), against committed membership before
  // the view. A replayed tid keeps its original record and
  // registrations (register_reads false): its reads are ignored —
  // re-evaluating them could only feed a record that does not exist —
  // but its writes below still go through Steps 2-3 like any other
  // arrival.
  LocalTxn* rec = nullptr;
  if (register_reads && ops.num_reads + ops.num_list_reads > 0) {
    rec = &local_txns_[ctx.tid];
    rec->view_ts = ctx.view_ts;
    rec->commit_ts = ctx.commit_ts;
    rec->level = ctx.level;
    rec->ext_reads.reserve(ops.num_reads);
    for (size_t i = 0; i < ops.num_reads; ++i) {
      ExtReadState er;
      er.key = ops.reads[i].key;
      er.observed = ops.reads[i].observed;
      if (membership) {
        er.satisfied =
            EvaluateMembership(er.key, ctx.view_ts, er.observed);
      } else {
        VersionedKv::Lookup cur =
            LookupFrontier(er.key, ctx.view_ts,
                           /*inclusive=*/ctx.level == IsolationLevel::kSi);
        er.satisfied = (cur.value == er.observed);
      }
      er.last_change_ms = now_ms;
      rec->ext_reads.push_back(er);
    }
    rec->list_reads.reserve(ops.num_list_reads);
    for (size_t i = 0; i < ops.num_list_reads; ++i) {
      ListReadState lr;
      lr.key = ops.list_reads[i].key;
      lr.observed = ops.list_reads[i].observed;
      lr.satisfied =
          EvaluateListRead(lr.key, ctx.view_ts, lr.observed).satisfied;
      lr.last_change_ms = now_ms;
      rec->list_reads.push_back(std::move(lr));
    }
  }

  // Register the reads before installing this transaction's versions so
  // that Step-3 re-checking can find them (its own reads are never in
  // the affected range: an SI read view precedes its own commit and SER
  // readers see strictly earlier versions only; the re-check loops skip
  // the writer's own tid).
  if (rec) {
    if (commit_index_.empty() || ctx.commit_ts > commit_index_.back().first) {
      commit_index_.emplace_back(ctx.commit_ts, ctx.tid);
    } else {
      auto pos = std::lower_bound(
          commit_index_.begin(), commit_index_.end(), ctx.commit_ts,
          [](const auto& p, Timestamp ts) { return p.first < ts; });
      commit_index_.insert(pos, {ctx.commit_ts, ctx.tid});
    }
    auto register_ref = [&](std::unordered_map<Key, ReaderChain>* index,
                            Key key, uint32_t i) {
      ReaderChain& chain = (*index)[key];
      ReaderRef ref{ctx.view_ts, ctx.tid, i};
      if (chain.empty() || ctx.view_ts > chain.back().view_ts) {
        chain.push_back(ref);  // common: views arrive in near-ts order
      } else {
        auto pos = std::lower_bound(
            chain.begin(), chain.end(), ctx.view_ts,
            [](const ReaderRef& r, Timestamp ts) { return r.view_ts < ts; });
        chain.insert(pos, ref);
      }
    };
    auto* register_index =
        membership ? &membership_reader_index_ : &reader_index_;
    for (uint32_t i = 0; i < rec->ext_reads.size(); ++i) {
      register_ref(register_index, rec->ext_reads[i].key, i);
    }
    for (uint32_t i = 0; i < rec->list_reads.size(); ++i) {
      register_ref(&list_reader_index_, rec->list_reads[i].key, i);
    }
  }

  // Step 3 (per written key): install the version and re-check EXT for
  // affected readers.
  for (size_t i = 0; i < ops.num_writes; ++i) {
    InstallVersionAndRecheck(ctx, ops.writes[i].key, ops.writes[i].value,
                             now_ms);
  }
  for (size_t i = 0; i < ops.num_appends; ++i) {
    InstallAppendAndRecheck(ctx, ops.appends[i].key, ops.appends[i].delta,
                            now_ms);
  }

  // Step 2: NOCONFLICT against overlapping writers (SI transactions
  // only — commit-order levels have no validated start interval, so
  // neither their writes register intervals nor are they checked;
  // appends are writers of their key too, and a key both written and
  // appended by the same transaction is checked and registered once).
  if (ctx.level == IsolationLevel::kSi &&
      ops.num_writes + ops.num_appends > 0) {
    for (size_t i = 0; i < ops.num_writes; ++i) {
      CheckNoConflictKey(ctx, ops.writes[i].key);
    }
    // One pass decides which appended keys the write loop already
    // covered; checks run before any interval registration (above).
    std::vector<bool> append_written(ops.num_appends, false);
    for (size_t i = 0; i < ops.num_appends; ++i) {
      for (size_t w = 0; w < ops.num_writes; ++w) {
        if (ops.writes[w].key == ops.appends[i].key) {
          append_written[i] = true;
          break;
        }
      }
      if (!append_written[i]) CheckNoConflictKey(ctx, ops.appends[i].key);
    }
    for (size_t i = 0; i < ops.num_writes; ++i) {
      ongoing_.Add(ops.writes[i].key, ctx.start_ts, ctx.commit_ts, ctx.tid);
    }
    for (size_t i = 0; i < ops.num_appends; ++i) {
      if (!append_written[i]) {
        ongoing_.Add(ops.appends[i].key, ctx.start_ts, ctx.commit_ts,
                     ctx.tid);
      }
    }
  }
}

VersionedKv::Lookup KeyEngine::LookupFrontier(Key key, Timestamp view,
                                              bool inclusive) {
  VersionedKv::Lookup mem = inclusive ? versions_.GetAtOrBefore(key, view)
                                      : versions_.GetBefore(key, view);
  if (view >= watermark_ || watermark_ == kTsMin) return mem;
  // The read view lies below the GC watermark: in-memory state may lack
  // the intermediate versions; merge with the spill store.
  if (!spill_.persistent()) {
    ++stats_->unsafe_below_watermark;
    return mem;
  }
  VersionedKv::Lookup spilled = LookupSpilled(key, view, inclusive);
  return spilled.ts > mem.ts || (mem.tid == kTxnNone && spilled.tid != kTxnNone)
             ? spilled
             : mem;
}

bool KeyEngine::EvaluateMembership(Key key, Timestamp view, Value observed) {
  // The initial transaction (bottom-T) committed every key's initial
  // value, so it is always a member.
  if (observed == kValueInit) return true;
  if (versions_.HasValueBefore(key, view, observed)) return true;
  // The membership window spans [bottom, view): once GC has evicted
  // anything, the in-memory chain alone is incomplete for every key
  // with a collapsed base — merge with the spill store or degrade.
  if (watermark_ == kTsMin) return false;
  if (!spill_.persistent()) {
    ++stats_->unsafe_below_watermark;
    return false;
  }
  bool degraded = false;
  bool found = false;
  for (uint64_t id : spill_epochs_) {
    SpillPayload scratch;
    const SpillPayload* payload = LoadEpoch(id, &scratch);
    if (!payload) {
      degraded = true;
      continue;
    }
    for (const auto& [k, ts, entry] : payload->versions) {
      if (k == key && ts < view && entry.value == observed) {
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found && degraded) ++stats_->unsafe_below_watermark;
  return found;
}

const SpillPayload* KeyEngine::LoadEpoch(uint64_t id, SpillPayload* scratch) {
  for (auto& [cid, cp] : epoch_cache_) {
    if (cid == id) return &cp;
  }
  SpillStore::LoadStatus st = spill_.Load(id, scratch);
  if (st != SpillStore::LoadStatus::kOk) {
    // Both outcomes degrade the consulting site to best-effort (the
    // epoch's records are simply absent, the D7 accounting model), but
    // a present-yet-unparseable file is an integrity failure: count it
    // once and say so.
    if (st == SpillStore::LoadStatus::kCorrupt &&
        std::find(corrupt_epochs_.begin(), corrupt_epochs_.end(), id) ==
            corrupt_epochs_.end()) {
      corrupt_epochs_.push_back(id);
      ++stats_->corrupt_spill_epochs;
      std::fprintf(stderr,
                   "chronos: spill epoch %llu is corrupt; below-watermark "
                   "checking degrades to best effort\n",
                   static_cast<unsigned long long>(id));
    }
    return nullptr;
  }
  ++stats_->spill_reloads;
  if (epoch_cache_.size() >= kEpochCacheCap) {
    epoch_cache_.erase(epoch_cache_.begin());
  }
  epoch_cache_.emplace_back(id, std::move(*scratch));
  return &epoch_cache_.back().second;
}

VersionedKv::Lookup KeyEngine::LookupSpilled(Key key, Timestamp view,
                                             bool inclusive) {
  VersionedKv::Lookup best;
  bool degraded = false;
  for (uint64_t id : spill_epochs_) {
    SpillPayload scratch;
    const SpillPayload* payload = LoadEpoch(id, &scratch);
    if (!payload) {
      degraded = true;
      continue;
    }
    for (const auto& [k, ts, entry] : payload->versions) {
      bool qualifies = inclusive ? ts <= view : ts < view;
      if (k == key && qualifies && ts >= best.ts) {
        best = VersionedKv::Lookup{entry.value, entry.tid, ts};
      }
    }
  }
  // A missing or corrupt epoch degrades this consult to the same
  // best-effort verdict as spill-less GC (D7): count it the same way.
  if (degraded) ++stats_->unsafe_below_watermark;
  return best;
}

void KeyEngine::InstallVersionAndRecheck(const TxnCtx& ctx, Key key,
                                         Value value, uint64_t now_ms) {
  const Timestamp cts = ctx.commit_ts;

  // If an in-memory version at or after cts but at or below the watermark
  // exists, this writer is a straggler shadowed below the watermark: every
  // affected reader is already finalized, so no re-check is needed
  // (DESIGN.md Sec. 1.1). Evicted versions are all strictly older than the
  // retained per-key base, so the in-memory NextVersionAfter bound is
  // exact in the re-check path below.
  VersionedKv::Lookup base = versions_.GetAtOrBefore(key, watermark_);
  bool shadowed_below_watermark =
      watermark_ != kTsMin && cts < watermark_ && base.ts >= cts;

  std::optional<Timestamp> next = versions_.NextVersionAfter(key, cts);
  if (!versions_.Put(key, cts, value, ctx.tid)) {
    report_(cts, {ViolationType::kTsDuplicate, ctx.tid, kTxnNone, key});
    return;
  }

  // Membership readers (RC/RA): a new version joins the committed set
  // of every live reader with view > cts — verdicts are monotone (a
  // satisfied read can never become unsatisfied), and the range has no
  // NextVersionAfter bound. This applies even to a writer shadowed
  // below the watermark: its value still becomes a member for live
  // readers above it.
  auto mit = membership_reader_index_.find(key);
  if (mit != membership_reader_index_.end()) {
    WalkAffectedReaders(
        mit->second, cts, std::nullopt, ctx.tid,
        [&](const ReaderRef& ref, LocalTxn& reader) {
          ExtReadState& er = reader.ext_reads[ref.read_idx];
          UpdateTentativeVerdict(er, er.satisfied || er.observed == value,
                                 ref.tid, now_ms, flip_stats_, stats_);
        });
  }

  if (shadowed_below_watermark) return;

  auto rit = reader_index_.find(key);
  if (rit == reader_index_.end()) return;

  // Affected read views: SI sees versions with cts <= view, so the range
  // is [cts, next]; SER sees versions with cts < view, so it is (cts,
  // next]. The upper bound is inclusive in both modes: timestamps are
  // unique across transactions, so a reader whose view equals `next` can
  // only be the writer of the version at `next` itself (start == commit),
  // and its own version is invisible to it — the version installed here
  // is its real frontier (fuzz finding: a late-start-stamped
  // read-then-write transaction was left with a stale tentative EXT
  // verdict because the re-check stopped at `next` exclusive).
  // The uniqueness premise holds even for malformed input: the ingress
  // dup-gate rejects any arrival whose start or commit timestamp was
  // already used (the offender is never dispatched, divergence entry
  // D6), and once GC prunes the used-ts window a colliding straggler can
  // only shadow readers the watermark clamp already finalized — which
  // the walk's `finalized` check skips.
  WalkAffectedReaders(
      rit->second, cts, next, ctx.tid,
      [&](const ReaderRef& ref, LocalTxn& reader) {
        ExtReadState& er = reader.ext_reads[ref.read_idx];
        UpdateTentativeVerdict(er, er.observed == value, ref.tid, now_ms,
                               flip_stats_, stats_);
      });
}

template <typename Fn>
void KeyEngine::ForEachSpilledListVersion(Key key, Fn&& fn) {
  bool degraded = false;
  for (uint64_t id : spill_epochs_) {
    SpillPayload scratch;
    const SpillPayload* p = LoadEpoch(id, &scratch);
    if (!p) {
      degraded = true;
      continue;
    }
    for (const ListSpillVersion& lv : p->list_versions) {
      if (lv.key == key) fn(lv);
    }
  }
  // Unloadable epoch: the reconstruction is incomplete — same D7
  // best-effort accounting as the spill-less paths.
  if (degraded) ++stats_->unsafe_below_watermark;
}

std::vector<std::pair<Timestamp, std::vector<Value>>>
KeyEngine::SpilledListDeltas(Key key) {
  std::vector<std::pair<Timestamp, std::vector<Value>>> out;
  ForEachSpilledListVersion(key, [&](const ListSpillVersion& lv) {
    out.emplace_back(lv.ts, lv.delta);
  });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<Timestamp, size_t>> KeyEngine::SpilledListLens(
    Key key) {
  // Placement offsets only need boundary lengths, not element payloads.
  std::vector<std::pair<Timestamp, size_t>> out;
  ForEachSpilledListVersion(key, [&](const ListSpillVersion& lv) {
    out.emplace_back(lv.ts, lv.delta.size());
  });
  std::sort(out.begin(), out.end());
  return out;
}

KeyEngine::ListEval KeyEngine::EvaluateListRead(
    Key key, Timestamp view, const std::vector<Value>& observed) {
  // SI evaluates at ts <= view — except that a version at exactly
  // ts == view can only be the reading transaction's own append
  // (timestamps are unique across transactions and the ingress dup-gate
  // never dispatches a collision, so only a start==commit-stamped
  // read-then-append transaction puts a version at its own read view).
  // Its own delta is stripped from the resolved base (list_replay.h), so
  // the evaluation must step to the predecessor — the list analogue of
  // the self_stamped_rw fuzz finding for registers.
  const bool inclusive = options_.mode == CheckMode::kSi;
  ListEval ev;

  // Below-base straggler view: the in-memory prefix is incomplete (the
  // collapsed base absorbs everything at or below the watermark), so the
  // cumulative sequence at the view must be reconstructed from the
  // spilled boundaries plus any merged below-base stragglers.
  Timestamp base_ts = lists_.BaseTs(key);
  bool below_base = base_ts != kTsMin && base_ts <= watermark_ &&
                    (inclusive ? view < base_ts : view <= base_ts);
  if (below_base) {
    if (lists_.TrimmedLen(key) > 0) {
      // Horizon trim may have truncated this key's spilled deltas
      // (ListKv invariant 5), so the reconstruction below cannot be
      // trusted element-wise. Deterministic-optimistic, counted.
      ++stats_->unsafe_below_horizon;
      ev.frontier_len = observed.size();
      ev.satisfied = true;
      ev.divergence = -1;
      return ev;
    }
    if (!spill_.persistent()) {
      ++stats_->unsafe_below_watermark;
      // Deterministic best effort: no below-base content is resolvable.
      ev.frontier_len = 0;
      ev.satisfied = observed.empty();
      ev.divergence = observed.empty() ? -1 : 0;
      return ev;
    }
    std::vector<std::pair<Timestamp, std::vector<Value>>> parts =
        SpilledListDeltas(key);
    if (const auto* merged = lists_.MergedBelow(key)) {
      parts.insert(parts.end(), merged->begin(), merged->end());
      std::sort(parts.begin(), parts.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    std::vector<Value> prefix;
    for (const auto& [ts, delta] : parts) {
      if (ts < view) {  // ts == view would be the reader's own delta
        prefix.insert(prefix.end(), delta.begin(), delta.end());
      }
    }
    ev.frontier_len = prefix.size();
    ev.divergence = FirstListDivergence(prefix, observed);
    ev.satisfied = ev.divergence < 0;
    return ev;
  }

  ListKv::Prefix p = lists_.PrefixAt(key, view, inclusive);
  if (inclusive && p.ts == view && p.ts != kTsMin) {
    p = lists_.PrefixAt(key, view, /*inclusive=*/false);
  }
  ev.frontier_len = p.len;
  ev.frontier_tid = p.tid;
  if (p.trimmed == 0) {
    ev.divergence = FirstListDivergence(p.data, p.len, observed.data(),
                                        observed.size());
    ev.satisfied = ev.divergence < 0;
    return ev;
  }
  // Trim-aware comparison: the materialized tail element-wise, then the
  // hash-trimmed region by FNV (a mismatch there reports divergence 0 —
  // the exact index is gone with the elements). A tainted hash cannot
  // verify the region at all: deterministic-optimistic, counted.
  size_t n = std::min(p.len, observed.size());
  int64_t div = -1;
  for (size_t i = p.trimmed; i < n; ++i) {
    if (p.data[i - p.trimmed] != observed[i]) {
      div = static_cast<int64_t>(i);
      break;
    }
  }
  if (div < 0 && p.len != observed.size()) div = static_cast<int64_t>(n);
  if (div < 0) {
    if (p.hash_tainted) {
      ++stats_->unsafe_below_horizon;
    } else if (Fnv1a(observed.data(), p.trimmed * sizeof(Value)) !=
               p.trimmed_hash) {
      div = 0;
    }
  }
  ev.divergence = div;
  ev.satisfied = div < 0;
  return ev;
}

void KeyEngine::InstallAppendAndRecheck(const TxnCtx& ctx, Key key,
                                        const std::vector<Value>& delta,
                                        uint64_t now_ms) {
  const Timestamp cts = ctx.commit_ts;

  // Route a below-base straggler through the spill-informed merge path
  // (ListKv invariant 4); otherwise a plain chain insert.
  Timestamp base_ts = lists_.BaseTs(key);
  bool ok;
  if (base_ts != kTsMin && base_ts <= watermark_ && cts < base_ts) {
    std::vector<std::pair<Timestamp, size_t>> spilled_lens;
    if (!spill_.persistent()) {
      ++stats_->unsafe_below_watermark;
    } else {
      spilled_lens = SpilledListLens(key);
    }
    bool into_trimmed = false;
    ok = lists_.PutBelowBase(key, cts, delta, ctx.tid, spilled_lens,
                             &into_trimmed);
    if (into_trimmed) ++stats_->unsafe_below_horizon;
  } else {
    ok = lists_.Put(key, cts, delta, ctx.tid);
  }
  if (!ok) {
    report_(cts, {ViolationType::kTsDuplicate, ctx.tid, kTxnNone, key});
    return;
  }

  // Appends compose rather than shadow: the installed delta changes the
  // cumulative prefix of *every* read view at or after cts, so the
  // re-check range has no NextVersionAfter upper bound (ListKv
  // invariant 2). Finalized readers — everything at or below the
  // watermark — are skipped, which bounds the walk to live readers; the
  // writer's own read is skipped too (its own delta is not its base).
  auto rit = list_reader_index_.find(key);
  if (rit == list_reader_index_.end()) return;
  WalkAffectedReaders(
      rit->second, cts, std::nullopt, ctx.tid,
      [&](const ReaderRef& ref, LocalTxn& reader) {
        ListReadState& lr = reader.list_reads[ref.read_idx];
        UpdateTentativeVerdict(
            lr, EvaluateListRead(key, ref.view_ts, lr.observed).satisfied,
            ref.tid, now_ms, flip_stats_, stats_);
      });
}

void KeyEngine::CheckNoConflictKey(const TxnCtx& ctx, Key key) {
  // The caller already deduplicated: each written/appended key is
  // checked once, in first-access op order.
  ++stats_->noconflict_checks;
  for (const WriteInterval& iv :
       ongoing_.Overlapping(key, ctx.start_ts, ctx.commit_ts)) {
    if (iv.tid == ctx.tid) continue;
    // Attribute the conflict to the earlier committer (paper's
    // deduplication rule).
    TxnId first = iv.end < ctx.commit_ts ? iv.tid : ctx.tid;
    TxnId second = first == iv.tid ? ctx.tid : iv.tid;
    report_(std::min(iv.end, ctx.commit_ts),
            {ViolationType::kNoConflict, first, second, key});
  }
  // Straggler below the watermark: evicted intervals may also overlap.
  if (watermark_ != kTsMin && ctx.start_ts < watermark_) {
    if (!spill_.persistent()) {
      ++stats_->unsafe_below_watermark;
    } else {
      bool degraded = false;
      for (uint64_t id : spill_epochs_) {
        SpillPayload scratch;
        const SpillPayload* p = LoadEpoch(id, &scratch);
        if (!p) {
          degraded = true;
          continue;
        }
        for (const auto& [k, iv] : p->intervals) {
          if (k != key || iv.tid == ctx.tid) continue;
          if (iv.start <= ctx.commit_ts && iv.end >= ctx.start_ts) {
            TxnId first = iv.end < ctx.commit_ts ? iv.tid : ctx.tid;
            TxnId second = first == iv.tid ? ctx.tid : iv.tid;
            report_(std::min(iv.end, ctx.commit_ts),
                    {ViolationType::kNoConflict, first, second, key});
          }
        }
      }
      // Epochs that failed to load leave the interval scan incomplete:
      // same best-effort accounting as running without a spill dir.
      if (degraded) ++stats_->unsafe_below_watermark;
    }
  }
}

void KeyEngine::FinalizeTxn(TxnId tid) {
  auto it = local_txns_.find(tid);
  if (it == local_txns_.end()) return;
  LocalTxn& rec = it->second;
  if (rec.finalized) return;
  rec.finalized = true;
  for (const ExtReadState& er : rec.ext_reads) {
    flip_stats_->RecordPairDone(er.flips);
    if (!er.satisfied) {
      // Attribution: the frontier at the reader's view — the value the
      // reader "should" have seen. For a membership reader (RC/RA) no
      // single version is mandated; the latest committed one before the
      // view is the representative witness.
      VersionedKv::Lookup cur =
          LookupFrontier(er.key, rec.view_ts,
                         /*inclusive=*/rec.level == IsolationLevel::kSi);
      report_(rec.commit_ts, {ViolationType::kExt, tid, cur.tid, er.key,
                              cur.value, er.observed});
    }
  }
  for (const ListReadState& lr : rec.list_reads) {
    flip_stats_->RecordPairDone(lr.flips);
    if (!lr.satisfied) {
      // Lengths + first divergent element index identify the mismatch;
      // full contents are unbounded (same convention as ChronosList).
      ListEval ev = EvaluateListRead(lr.key, rec.view_ts, lr.observed);
      report_(rec.commit_ts,
              {ViolationType::kExt, tid, ev.frontier_tid, lr.key,
               static_cast<Value>(ev.frontier_len),
               static_cast<Value>(lr.observed.size()), ev.divergence});
    }
  }
}

void KeyEngine::CollectUpTo(Timestamp watermark) {
  SpillPayload payload;
  payload.max_ts = watermark;
  versions_.CollectUpTo(watermark, &payload.versions);
  ongoing_.CollectUpTo(watermark, &payload.intervals);
  lists_.CollectUpTo(watermark, &payload.list_versions);
  uint64_t id = spill_.Spill(payload);
  if (id != 0) spill_epochs_.push_back(id);

  // Drop finalized transaction records committed at or below the line.
  // Reader refs are batch-compacted per key afterwards: erasing each ref
  // individually would make a pass over a hot key's chain quadratic.
  std::unordered_map<Key, std::vector<Timestamp>> dropped_views;
  std::unordered_map<Key, std::vector<Timestamp>> dropped_member_views;
  std::unordered_map<Key, std::vector<Timestamp>> dropped_list_views;
  auto line_end = std::upper_bound(
      commit_index_.begin(), commit_index_.end(), watermark,
      [](Timestamp ts, const auto& p) { return ts < p.first; });
  auto keep = std::remove_if(
      commit_index_.begin(), line_end,
      [&](const std::pair<Timestamp, TxnId>& p) {
        auto tit = local_txns_.find(p.second);
        if (tit == local_txns_.end() || !tit->second.finalized) return false;
        auto* ext_dropped = MembershipLevel(tit->second.level)
                                ? &dropped_member_views
                                : &dropped_views;
        for (const ExtReadState& er : tit->second.ext_reads) {
          (*ext_dropped)[er.key].push_back(tit->second.view_ts);
        }
        for (const ListReadState& lr : tit->second.list_reads) {
          dropped_list_views[lr.key].push_back(tit->second.view_ts);
        }
        local_txns_.erase(tit);
        return true;
      });
  commit_index_.erase(keep, line_end);
  auto compact = [](std::unordered_map<Key, ReaderChain>* index,
                    std::unordered_map<Key, std::vector<Timestamp>>* dropped) {
    for (auto& [key, views] : *dropped) {
      auto rit = index->find(key);
      if (rit == index->end()) continue;
      std::sort(views.begin(), views.end());
      ReaderChain& chain = rit->second;
      chain.erase(std::remove_if(chain.begin(), chain.end(),
                                 [&](const ReaderRef& r) {
                                   return std::binary_search(
                                       views.begin(), views.end(), r.view_ts);
                                 }),
                  chain.end());
      if (chain.empty()) index->erase(rit);
    }
  };
  compact(&reader_index_, &dropped_views);
  compact(&membership_reader_index_, &dropped_member_views);
  compact(&list_reader_index_, &dropped_list_views);

  watermark_ = std::max(watermark_, watermark);
}

size_t KeyEngine::TrimListsBelowHorizon() {
  return lists_.TrimTo(watermark_);
}

void KeyEngine::Serialize(StateWriter* w) const {
  w->U64(watermark_);
  versions_.Serialize(w);
  lists_.Serialize(w);
  ongoing_.Serialize(w);
  spill_.SerializeManifest(w);
  w->U64(spill_epochs_.size());
  for (uint64_t id : spill_epochs_) w->U64(id);
  // Cache ids only: the payloads are re-read from the (still on disk)
  // epoch files on restore, without counting as spill_reloads — so the
  // reload counter evolves exactly as in an uninterrupted run.
  w->U64(epoch_cache_.size());
  for (const auto& [id, payload] : epoch_cache_) w->U64(id);

  std::vector<TxnId> tids;
  tids.reserve(local_txns_.size());
  for (const auto& [tid, rec] : local_txns_) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());
  w->U64(tids.size());
  for (TxnId tid : tids) {
    const LocalTxn& rec = local_txns_.at(tid);
    w->U64(tid);
    w->U64(rec.view_ts);
    w->U64(rec.commit_ts);
    w->U8(rec.finalized ? 1 : 0);
    w->U8(static_cast<uint8_t>(rec.level));
    w->U64(rec.ext_reads.size());
    for (const ExtReadState& er : rec.ext_reads) {
      w->U64(er.key);
      w->I64(er.observed);
      w->U8(er.satisfied ? 1 : 0);
      w->U64(er.flips);
      w->U64(er.last_change_ms);
    }
    w->U64(rec.list_reads.size());
    for (const ListReadState& lr : rec.list_reads) {
      w->U64(lr.key);
      w->Bytes(lr.observed.data(), lr.observed.size() * sizeof(Value));
      w->U8(lr.satisfied ? 1 : 0);
      w->U64(lr.flips);
      w->U64(lr.last_change_ms);
    }
  }
  w->U64(commit_index_.size());
  for (const auto& [cts, tid] : commit_index_) {
    w->U64(cts);
    w->U64(tid);
  }
}

bool KeyEngine::Deserialize(StateReader* r) {
  watermark_ = r->U64();
  if (!versions_.Deserialize(r)) return false;
  if (!lists_.Deserialize(r)) return false;
  if (!ongoing_.Deserialize(r)) return false;
  if (!spill_.DeserializeManifest(r)) return false;
  spill_epochs_.clear();
  uint64_t ne = r->U64();
  for (uint64_t i = 0; i < ne && r->ok(); ++i) spill_epochs_.push_back(r->U64());
  epoch_cache_.clear();
  uint64_t nc = r->U64();
  for (uint64_t i = 0; i < nc && r->ok(); ++i) {
    uint64_t id = r->U64();
    SpillPayload payload;
    if (spill_.Load(id, &payload) == SpillStore::LoadStatus::kOk) {
      epoch_cache_.emplace_back(id, std::move(payload));
    }
  }

  local_txns_.clear();
  uint64_t nt = r->U64();
  for (uint64_t i = 0; i < nt && r->ok(); ++i) {
    TxnId tid = r->U64();
    LocalTxn& rec = local_txns_[tid];
    rec.view_ts = r->U64();
    rec.commit_ts = r->U64();
    rec.finalized = r->U8() != 0;
    rec.level = static_cast<IsolationLevel>(r->U8());
    uint64_t nr = r->U64();
    rec.ext_reads.reserve(nr);
    for (uint64_t j = 0; j < nr && r->ok(); ++j) {
      ExtReadState er;
      er.key = r->U64();
      er.observed = r->I64();
      er.satisfied = r->U8() != 0;
      er.flips = static_cast<uint32_t>(r->U64());
      er.last_change_ms = r->U64();
      rec.ext_reads.push_back(er);
    }
    uint64_t nl = r->U64();
    rec.list_reads.reserve(nl);
    for (uint64_t j = 0; j < nl && r->ok(); ++j) {
      ListReadState lr;
      lr.key = r->U64();
      std::string raw = r->Bytes();
      if (!r->ok() || raw.size() % sizeof(Value) != 0) return false;
      lr.observed.resize(raw.size() / sizeof(Value));
      // Empty reads leave data() null; memcpy's args are declared nonnull.
      if (!raw.empty()) {
        std::memcpy(lr.observed.data(), raw.data(), raw.size());
      }
      lr.satisfied = r->U8() != 0;
      lr.flips = static_cast<uint32_t>(r->U64());
      lr.last_change_ms = r->U64();
      rec.list_reads.push_back(std::move(lr));
    }
  }
  commit_index_.clear();
  uint64_t nci = r->U64();
  commit_index_.reserve(nci);
  for (uint64_t i = 0; i < nci && r->ok(); ++i) {
    Timestamp cts = r->U64();
    TxnId tid = r->U64();
    commit_index_.emplace_back(cts, tid);
  }

  // The reader indexes are derivable: every resident transaction's reads
  // are registered (refs persist until the record itself is dropped), so
  // rebuilding from local_txns_ and sorting by the unique view timestamps
  // reproduces the chains exactly.
  reader_index_.clear();
  membership_reader_index_.clear();
  list_reader_index_.clear();
  for (const auto& [tid, rec] : local_txns_) {
    auto* ext_index = MembershipLevel(rec.level) ? &membership_reader_index_
                                                 : &reader_index_;
    for (uint32_t i = 0; i < rec.ext_reads.size(); ++i) {
      (*ext_index)[rec.ext_reads[i].key].push_back(
          ReaderRef{rec.view_ts, tid, i});
    }
    for (uint32_t i = 0; i < rec.list_reads.size(); ++i) {
      list_reader_index_[rec.list_reads[i].key].push_back(
          ReaderRef{rec.view_ts, tid, i});
    }
  }
  auto sort_chains = [](std::unordered_map<Key, ReaderChain>* index) {
    for (auto& [key, chain] : *index) {
      std::sort(chain.begin(), chain.end(),
                [](const ReaderRef& a, const ReaderRef& b) {
                  return a.view_ts < b.view_ts;
                });
    }
  };
  sort_chains(&reader_index_);
  sort_chains(&membership_reader_index_);
  sort_chains(&list_reader_index_);
  corrupt_epochs_.clear();
  return r->ok();
}

}  // namespace chronos
