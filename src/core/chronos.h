// CHRONOS: the offline timestamp-based snapshot isolation checker
// (paper Algorithm 2, Sec. III-B). O(N log N + M) for N transactions and
// M operations: sort all start/commit timestamps, then simulate the
// execution in timestamp order while checking SESSION, INT, EXT and
// NOCONFLICT on the fly.
#ifndef CHRONOS_CORE_CHRONOS_H_
#define CHRONOS_CORE_CHRONOS_H_

#include <cstdint>

#include "core/online_checker.h"
#include "core/stats.h"
#include "core/types.h"
#include "core/violation.h"

namespace chronos {

/// Options controlling the offline SI check.
struct ChronosOptions {
  /// Trigger a periodic garbage-collection pass after this many commit
  /// events (paper Fig. 6/9: gc-10k, gc-20k, ...). 0 disables periodic GC;
  /// the per-transaction prompt GC of Algorithm 2 lines 30-33 always runs.
  uint64_t gc_every_n_txns = 0;
  /// Return freed memory to the OS after each GC pass (glibc
  /// malloc_trim), making the Fig. 10 RSS sawtooth observable.
  bool trim_on_gc = false;
};

/// Offline SI checker. Not thread-safe; use one instance per check.
class Chronos {
 public:
  Chronos(const ChronosOptions& options, ViolationSink* sink);

  /// Checks `history` against SI. Consumes the history: operation storage
  /// is released as transactions are garbage-collected (this is what makes
  /// the Fig. 10 memory curve decrease over time).
  CheckStats Check(History&& history);

  /// Convenience: checks a copy of `history` with default options.
  static CheckStats CheckHistory(const History& history, ViolationSink* sink);

 private:
  ChronosOptions options_;
  ViolationSink* sink_;
};

/// CHRONOS-SER: the offline serializability checker (paper Sec. VI-A and
/// VI-B: "checks whether all transactions appear to execute sequentially
/// in commit timestamp order"; start timestamps are ignored and
/// NOCONFLICT is not checked).
class ChronosSer {
 public:
  explicit ChronosSer(ViolationSink* sink) : sink_(sink) {}

  CheckStats Check(History&& history);

  static CheckStats CheckHistory(const History& history, ViolationSink* sink);

 private:
  ViolationSink* sink_;
};

/// CHRONOS-MIXED: the offline mirror of AION on per-transaction
/// isolation levels (Transaction::iso; untagged transactions fall back
/// to `default_mode`). An independent, batch re-implementation of the
/// online per-level semantics, used by the differ as the white-box
/// reference for mixed histories:
///   - admission replayed in canonical (commit_ts, tid) order with
///     per-level timestamp registration (SER {commit}, Eq.(1)-valid SI
///     {start, commit}, RC/RA none);
///   - version chains built from the final writes of admitted
///     transactions only, with engine-style TS-DUP on per-key commit
///     collisions (the RC/RA dup-gate bypass fallback);
///   - EXT evaluated against the *final* chains per reader level (SI
///     inclusive snapshot, SER exclusive frontier, RC/RA committed
///     membership strictly before the commit view), which equals AION's
///     Finish-time verdicts under an infinite EXT timeout and no GC;
///   - NOCONFLICT as pairwise SI-vs-SI write-interval overlap per key;
///   - SESSION replayed per session in sequence-number order with the
///     per-level ordering rule of TxnIngress::CheckSession.
class ChronosMixed {
 public:
  ChronosMixed(CheckMode default_mode, ViolationSink* sink)
      : default_mode_(default_mode), sink_(sink) {}

  CheckStats Check(History&& history);

  static CheckStats CheckHistory(const History& history,
                                 CheckMode default_mode, ViolationSink* sink);

 private:
  CheckMode default_mode_;
  ViolationSink* sink_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_CHRONOS_H_
