// The key-scoped half of AION (paper Algorithm 3): version chains, write
// intervals, per-key tentative-EXT bookkeeping, the Step-2 NOCONFLICT and
// Step-3 EXT re-checks, and the GC spill path. Everything in here is
// keyed by Key and only ever consults state of the keys it is handed, so
// a checker may run one engine (the monolithic `Aion`) or N key-disjoint
// engines (`ShardedAion`, keys partitioned by hash) with identical
// results: the engine never reaches across keys.
//
// The transaction-scoped half (SESSION/INT checks, timestamp
// uniqueness, the EXT timeout clock, and the GC watermark decision)
// lives in core/txn_ingress.h; the ingress drives the engine through
// ProcessTxn/FinalizeTxn/CollectUpTo in a single well-defined order.
// A KeyEngine instance is single-threaded: exactly one thread (its
// owner) may call into it.
#ifndef CHRONOS_CORE_KEY_ENGINE_H_
#define CHRONOS_CORE_KEY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/flipflop_stats.h"
#include "core/interval_tree.h"
#include "core/list_kv.h"
#include "core/online_checker.h"
#include "core/spill.h"
#include "core/types.h"
#include "core/versioned_kv.h"
#include "core/violation.h"

namespace chronos {

class KeyEngine {
 public:
  struct Options {
    CheckMode mode = CheckMode::kSi;
    std::string spill_dir;  ///< empty disables spill persistence
  };

  /// The transaction-scoped facts a per-key step needs. `level` is the
  /// effective isolation level the ingress resolved for the arrival
  /// (never kUnspecified); it rides next to the footprint in the sharded
  /// checker's ShardCmd, so per-level evaluation needs no new
  /// synchronization.
  struct TxnCtx {
    TxnId tid = 0;
    Timestamp view_ts = 0;  ///< start_ts (SI) or commit_ts (SER/RC/RA)
    Timestamp commit_ts = 0;
    Timestamp start_ts = 0;
    IsolationLevel level = IsolationLevel::kSi;
  };

  /// One external read of the transaction being processed (op order).
  struct ExtReadReq {
    Key key = 0;
    Value observed = kValueBottom;
  };

  /// One final write of the transaction (distinct keys, first-write op
  /// order, carrying the last written value per key).
  struct WriteReq {
    Key key = 0;
    Value value = kValueInit;
  };

  /// One external list read: the resolved base prefix (the observed list
  /// minus the transaction's own append suffix; see core/list_replay.h)
  /// that must equal the key's committed cumulative append sequence at
  /// the read view.
  struct ListReadReq {
    Key key = 0;
    std::vector<Value> observed;
  };

  /// One list append footprint (distinct keys, first-append op order,
  /// carrying every element the transaction appended to the key).
  struct AppendReq {
    Key key = 0;
    std::vector<Value> delta;
  };

  /// A transaction's full per-key footprint, passed as raw spans so the
  /// monolith can point into ClassifiedOps and a sharded caller into the
  /// per-shard command slices.
  struct OpsView {
    const ExtReadReq* reads = nullptr;
    size_t num_reads = 0;
    const WriteReq* writes = nullptr;
    size_t num_writes = 0;
    const ListReadReq* list_reads = nullptr;
    size_t num_list_reads = 0;
    const AppendReq* appends = nullptr;
    size_t num_appends = 0;
  };

  /// Violation reporting with a deterministic ordering tag: `order_ts`
  /// is the commit timestamp of the transaction the violation is
  /// attributed to, so a coordinator can merge-sort reports from
  /// several engines into one stable stream. The monolith forwards to
  /// its sink directly and ignores the tag.
  using ReportFn = std::function<void(Timestamp order_ts, const Violation&)>;

  /// `stats` and `flips` are owned by the caller and must outlive the
  /// engine; the monolith shares its own structs, a sharded checker
  /// hands each engine private ones and merges on read.
  KeyEngine(const Options& options, CheckerStats* stats, FlipFlopStats* flips,
            ReportFn report);

  KeyEngine(const KeyEngine&) = delete;
  KeyEngine& operator=(const KeyEngine&) = delete;

  /// Runs the per-key steps of Algorithm 3 for one transaction, in the
  /// monolith's exact order: tentative EXT evaluation and registration
  /// for register and list reads (op order; skipped entirely when
  /// `register_reads` is false — the replayed-tid case), version install
  /// + Step-3 re-check per write and per append, then Step-2 NOCONFLICT
  /// and interval registration (SI only; appends are writers too).
  void ProcessTxn(const TxnCtx& ctx, const OpsView& ops, bool register_reads,
                  uint64_t now_ms);

  /// Finalizes this engine's external reads of `tid` (EXT timeout fired):
  /// records flip totals and reports EXT violations for reads that ended
  /// unsatisfied. No-op if the transaction has no reads here.
  void FinalizeTxn(TxnId tid);

  /// Garbage-collects versions and write intervals at or below
  /// `watermark` into the spill store and drops finalized local
  /// transaction state below it. The caller guarantees watermarks are
  /// strictly increasing and safe (no unfinalized read view at or below).
  void CollectUpTo(Timestamp watermark);

  /// Memory-ceiling degradation: trims list element buffers below the
  /// current watermark down to a prefix hash (ListKv::TrimTo). Returns
  /// the number of elements released.
  size_t TrimListsBelowHorizon();

  /// Checkpoint hooks: a full dump of this engine's state (byte-
  /// deterministic — hash-map contents are emitted in sorted order) and
  /// its exact inverse. Deserialize rebuilds the derivable structures
  /// (reader indexes, GC trigger heaps, epoch cache payloads) instead of
  /// reading them, and assumes an engine constructed with the same
  /// Options (in particular the same spill_dir, which must still hold
  /// the manifest's epoch files).
  void Serialize(StateWriter* w) const;
  bool Deserialize(StateReader* r);

  /// Accounting (O(1), backed by running counters). Versions count both
  /// register versions and list version boundaries.
  size_t TotalVersions() const {
    return versions_.TotalVersions() + lists_.TotalVersions();
  }
  size_t TotalIntervals() const { return ongoing_.TotalIntervals(); }
  size_t ApproxBytes() const {
    return versions_.ApproxBytes() + lists_.ApproxBytes();
  }
  /// Transactions with external reads resident in this engine.
  size_t ResidentTxns() const { return local_txns_.size(); }

  Timestamp watermark() const { return watermark_; }

 private:
  struct ExtReadState {
    Key key = 0;
    Value observed = kValueBottom;
    bool satisfied = true;
    uint32_t flips = 0;
    uint64_t last_change_ms = 0;
  };

  struct ListReadState {
    Key key = 0;
    std::vector<Value> observed;  ///< resolved base prefix
    bool satisfied = true;
    uint32_t flips = 0;
    uint64_t last_change_ms = 0;
  };

  /// Per-engine record of a transaction's external reads on this
  /// engine's keys (the key-scoped slice of the monolith's TxnRec).
  struct LocalTxn {
    Timestamp view_ts = 0;
    Timestamp commit_ts = 0;
    std::vector<ExtReadState> ext_reads;
    std::vector<ListReadState> list_reads;
    bool finalized = false;
    /// The reader's effective level: decides the frontier bound its
    /// reads are (re-)evaluated against (SI inclusive snapshot, SER
    /// exclusive commit view, RC/RA committed membership).
    IsolationLevel level = IsolationLevel::kSi;
  };

  // One external-read registration: txn `tid` read `key` at `view_ts`,
  // stored as ext_reads[read_idx]. Chains are flat vectors sorted by
  // view_ts (append-mostly: views arrive in near-timestamp order). At
  // most one external read per (txn, key), and view timestamps are
  // unique per transaction.
  struct ReaderRef {
    Timestamp view_ts = kTsMin;
    TxnId tid = kTxnNone;
    uint32_t read_idx = 0;
  };
  using ReaderChain = std::vector<ReaderRef>;

  // Frontier lookup honoring the GC watermark: below it, consults the
  // spill store. `inclusive` selects the reader-level bound: SI sees the
  // latest version at or before `view`, SER/RC/RA strictly before.
  VersionedKv::Lookup LookupFrontier(Key key, Timestamp view, bool inclusive);
  VersionedKv::Lookup LookupSpilled(Key key, Timestamp view, bool inclusive);
  const SpillPayload* LoadEpoch(uint64_t id, SpillPayload* scratch);

  /// The RC/RA committed-membership query: was `observed` ever a
  /// committed value of `key` strictly before `view` (the initial value
  /// always qualifies)? The window reaches all the way down to the
  /// initial transaction, so once GC has run the in-memory chain alone
  /// is incomplete: the spill store is merged in, or — without one — the
  /// consult degrades to best effort (unsafe_below_watermark, the D7
  /// accounting model).
  bool EvaluateMembership(Key key, Timestamp view, Value observed);

  void InstallVersionAndRecheck(const TxnCtx& ctx, Key key, Value value,
                                uint64_t now_ms);
  void InstallAppendAndRecheck(const TxnCtx& ctx, Key key,
                               const std::vector<Value>& delta,
                               uint64_t now_ms);
  void CheckNoConflictKey(const TxnCtx& ctx, Key key);

  /// The Step-3 walk shared by register and list re-checks: visits every
  /// live (unfinalized, non-writer) reader of `readers` whose view lies
  /// in the affected range — [cts, upper] for an SI reader, (cts, upper]
  /// for a SER reader (the bound is per *reader* level now that one
  /// chain may mix them), unbounded above when `upper` is nullopt
  /// (lists: appends compose; membership chains: versions compose).
  /// `fn(ref, reader)` re-evaluates one read.
  template <typename Fn>
  void WalkAffectedReaders(const ReaderChain& readers, Timestamp cts,
                           const std::optional<Timestamp>& upper,
                           TxnId writer, Fn&& fn);

  /// Evaluates one external list read against the frontier at `view`
  /// (cumulative committed append sequence), consulting the spill store
  /// for views below the collapsed base.
  struct ListEval {
    bool satisfied = false;
    size_t frontier_len = 0;
    TxnId frontier_tid = kTxnNone;
    int64_t divergence = -1;
  };
  ListEval EvaluateListRead(Key key, Timestamp view,
                            const std::vector<Value>& observed);
  /// Visits every spilled list version boundary of `key` (epoch order).
  template <typename Fn>
  void ForEachSpilledListVersion(Key key, Fn&& fn);
  /// (ts, delta) of every spilled list version of `key`, sorted by ts.
  std::vector<std::pair<Timestamp, std::vector<Value>>> SpilledListDeltas(
      Key key);
  /// Lengths-only variant for below-base placement offsets.
  std::vector<std::pair<Timestamp, size_t>> SpilledListLens(Key key);

  Options options_;
  CheckerStats* stats_;
  FlipFlopStats* flip_stats_;
  ReportFn report_;

  VersionedKv versions_;
  ListKv lists_;
  OngoingIndex ongoing_;
  SpillStore spill_;
  std::vector<uint64_t> spill_epochs_;  // ids, in spill order
  // Tiny cache of reloaded epochs (stragglers cluster in time).
  std::vector<std::pair<uint64_t, SpillPayload>> epoch_cache_;
  // Epochs already counted in CheckerStats::corrupt_spill_epochs (each
  // corrupt file is counted and logged once, on first consult).
  std::vector<uint64_t> corrupt_epochs_;

  std::unordered_map<TxnId, LocalTxn> local_txns_;
  // (cts, tid) of resident local txns, sorted by cts (append-mostly).
  std::vector<std::pair<Timestamp, TxnId>> commit_index_;
  std::unordered_map<Key, ReaderChain> reader_index_;
  // External list reads per key (same layout; read_idx indexes
  // LocalTxn::list_reads). Kept separate from the register chain: a
  // register write never affects a list read and vice versa.
  std::unordered_map<Key, ReaderChain> list_reader_index_;
  // RC/RA register reads per key, separate from the frontier chain: a
  // membership verdict has no NextVersionAfter upper bound (any newer
  // version with the observed value satisfies it), so keeping these
  // readers out of reader_index_ preserves the bounded frontier walk
  // for SI/SER-only keys.
  std::unordered_map<Key, ReaderChain> membership_reader_index_;
  Timestamp watermark_ = kTsMin;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_KEY_ENGINE_H_
