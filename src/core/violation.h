// Violation taxonomy and reporting sinks. Checkers never abort on the
// first violation: they report and continue (paper Sec. III-C2).
#ifndef CHRONOS_CORE_VIOLATION_H_
#define CHRONOS_CORE_VIOLATION_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace chronos {

/// The axiom (or well-formedness condition) a violation falls under.
enum class ViolationType : uint8_t {
  kSession,      ///< SESSION axiom: session order or sno gap broken
  kInt,          ///< INT axiom: internal read disagrees with prior op
  kExt,          ///< EXT axiom: external read disagrees with the frontier
  kNoConflict,   ///< NOCONFLICT axiom: overlapping writers on a key
  kTsOrder,      ///< Eq. (1): start_ts > commit_ts
  kTsDuplicate,  ///< two distinct transactions share a timestamp
};

/// Name of a violation type, e.g. "EXT".
const char* ViolationTypeName(ViolationType t);

/// One detected violation. `other_tid` is the conflicting transaction for
/// NOCONFLICT (kTxnNone otherwise). For read-related violations `expected`
/// is what a correct execution would have returned and `got` what the
/// history recorded. List-read mismatches report *lengths* in
/// `expected`/`got` (full contents are unbounded) plus `divergence`, the
/// first element index at which the expected and observed lists differ —
/// that index is what makes a shrunk list repro diagnosable.
struct Violation {
  ViolationType type = ViolationType::kExt;
  TxnId tid = 0;
  TxnId other_tid = kTxnNone;
  Key key = 0;
  Value expected = kValueBottom;
  Value got = kValueBottom;
  int64_t divergence = -1;  ///< list mismatches only; -1 otherwise

  std::string ToString() const;
};

/// Field-wise equality (used by tests comparing violation sets).
bool operator==(const Violation& a, const Violation& b);
inline bool operator!=(const Violation& a, const Violation& b) {
  return !(a == b);
}

/// Deterministic total order over violations by content. The sharded
/// coordinator uses it (after its primary (commit_ts, tid) key) so the
/// emitted stream is identical regardless of shard count or thread
/// timing; tests use it to compare violation multisets.
bool ViolationLess(const Violation& a, const Violation& b);

/// Receiver of violation reports. Implementations must tolerate concurrent
/// Report() calls when used from the online pipeline. Emission order is
/// checker-specific: the monolithic checkers report as they detect, while
/// the sharded checker buffers per shard and reports everything on its
/// coordinator thread at Finish(), sorted by (commit_ts of the attributed
/// transaction, txn id, content) — callers must not assume a violation is
/// visible before Finish() returns, nor that detection order is emission
/// order.
class ViolationSink {
 public:
  virtual ~ViolationSink() = default;
  virtual void Report(const Violation& v) = 0;
};

/// Counts violations per type; optionally retains the first `keep_first`
/// full records for inspection. Thread-safe.
class CountingSink : public ViolationSink {
 public:
  explicit CountingSink(size_t keep_first = 256) : keep_first_(keep_first) {}

  void Report(const Violation& v) override;

  /// Total violations reported.
  size_t total() const;
  /// Violations reported for a given type.
  size_t count(ViolationType t) const;
  /// The first retained violation records (up to `keep_first`).
  std::vector<Violation> first() const;
  /// Drops all recorded state.
  void Reset();

 private:
  mutable std::mutex mu_;
  size_t keep_first_;
  size_t total_ = 0;
  std::unordered_map<uint8_t, size_t> by_type_;
  std::vector<Violation> first_;
};

/// Retains every violation. Thread-safe. Intended for tests.
class VectorSink : public ViolationSink {
 public:
  void Report(const Violation& v) override {
    std::lock_guard<std::mutex> lock(mu_);
    violations_.push_back(v);
  }
  std::vector<Violation> TakeAll() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(violations_);
  }
  std::vector<Violation> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Violation> violations_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_VIOLATION_H_
