// The timestamp-versioned list frontier: per key, a flat chain of append
// versions (sorted by commit ts, append-mostly like VersionedKv) over one
// shared materialized element buffer. The cumulative append sequence at a
// read view is the buffer prefix ending at the latest version at or
// before the view, so a whole-list read resolves to a (length, pointer)
// pair in one binary search — the list analogue of the register
// frontier_ts query.
//
// Frontier-resolution invariants (see ROADMAP "Online list checking"):
//   1. elems[0 .. versions[i].end_off) is exactly the concatenation of
//      every installed delta with ts <= versions[i].ts, in ts order.
//   2. Installing a delta at ts affects the cumulative prefix of *every*
//      view >= ts — appends compose rather than shadow, so there is no
//      NextVersionAfter bound on list re-checks (unlike registers).
//   3. GC collapses version boundaries at or below the watermark into the
//      retained base version but never drops elements: a future reader
//      above the watermark still needs the full prefix. Eviction returns
//      the collapsed boundaries (ts, tid, delta) for spilling so a
//      straggler below the watermark stays resolvable from disk.
//   4. A straggler delta below the collapsed base is merged into the base
//      region at the offset implied by ts order (computed by the caller
//      from the spilled boundaries) and remembered in `merged_below`, so
//      later stragglers and below-watermark reads see it.
//   5. Horizon trim (`TrimTo`, the --memory-ceiling degradation path)
//      may drop the materialized elements of the base version's region —
//      and only that region, so every in-chain insert offset stays at or
//      above the cut — replacing them with their length and FNV-1a hash.
//      Element offsets (`end_off`) remain full-sequence coordinates; the
//      buffer simply starts at `trimmed_len`. Readers at or above the
//      base verify the trimmed region by hash; a straggler landing
//      inside it taints the hash and degrades verification (counted as
//      CheckerStats::unsafe_below_horizon by the caller).
#ifndef CHRONOS_CORE_LIST_KV_H_
#define CHRONOS_CORE_LIST_KV_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/state_io.h"
#include "core/types.h"

namespace chronos {

/// One evicted list version boundary (spill record).
struct ListSpillVersion {
  Key key = 0;
  Timestamp ts = kTsMin;
  TxnId tid = kTxnNone;
  std::vector<Value> delta;
};

class ListKv {
 public:
  /// One version boundary of a key's chain.
  struct ListVersion {
    Timestamp ts = kTsMin;
    TxnId tid = kTxnNone;
    uint32_t delta_len = 0;  ///< elements this version appended
    size_t end_off = 0;      ///< cumulative length including this delta
  };

  /// Result of a frontier query: the cumulative prefix at the view.
  /// Offsets are full-sequence coordinates; when `trimmed` > 0 the
  /// element at full index i (trimmed <= i < len) is data[i - trimmed],
  /// and the region [0, trimmed) is only available as `trimmed_hash`
  /// (FNV-1a over its Value bytes), unusable when `hash_tainted`.
  struct Prefix {
    size_t len = 0;          ///< 0 when no version qualifies
    TxnId tid = kTxnNone;    ///< writer of the resolving version
    Timestamp ts = kTsMin;   ///< its commit ts (kTsMin: no version)
    const Value* data = nullptr;  ///< elements from `trimmed` upward
    size_t trimmed = 0;           ///< leading elements replaced by hash
    uint64_t trimmed_hash = kFnvOffset;  ///< FNV-1a over the trimmed region
    bool hash_tainted = false;    ///< straggler merged into trimmed region
  };

  /// Installs `delta` (the transaction's appends to `key`, in program
  /// order) at commit ts. Returns false on a duplicate timestamp.
  /// Precondition: ts is not below a collapsed base (use PutBelowBase).
  bool Put(Key key, Timestamp ts, const std::vector<Value>& delta,
           TxnId tid) {
    Chain& chain = chains_[key];
    if (chain.versions.empty() || ts > chain.versions.back().ts) {
      // Common case: in-order commit, append at the tail.
      chain.elems.insert(chain.elems.end(), delta.begin(), delta.end());
      chain.versions.push_back({ts, tid, static_cast<uint32_t>(delta.size()),
                                chain.trimmed_len + chain.elems.size()});
    } else {
      auto it = LowerBound(chain.versions, ts);
      if (it != chain.versions.end() && it->ts == ts) return false;
      size_t offset = it == chain.versions.begin()
                          ? 0
                          : (it - 1)->end_off;
      InsertAt(&chain, it - chain.versions.begin(), offset, ts, tid, delta);
    }
    ++total_versions_;
    total_elems_ += delta.size();
    ArmTrigger(chain, key, ts);
    return true;
  }

  /// Installs a straggler delta whose ts lies below the collapsed base.
  /// `spilled_below` holds the (ts, delta length) of this key's spilled
  /// version boundaries, sorted by ts (empty when spilling is disabled —
  /// the delta then lands at the front of the base region, a documented
  /// D7 approximation). Returns false on a ts collision with a merged
  /// straggler. A collision with a *spilled* boundary is deliberately
  /// not detected: by then GC has pruned the ingress used-ts window, so
  /// the duplicate is silently ordered after the spilled delta — the
  /// same policy as register stragglers (VersionedKv::Put only checks
  /// in-memory versions), deterministic and covered by the D6 reasoning.
  ///
  /// When the delta lands inside a hash-trimmed region (invariant 5) it
  /// is not materialized: the trimmed length grows, the hash is tainted,
  /// and `*into_trimmed` (when non-null) is set so the caller can count
  /// the degradation (unsafe_below_horizon).
  bool PutBelowBase(Key key, Timestamp ts, const std::vector<Value>& delta,
                    TxnId tid,
                    const std::vector<std::pair<Timestamp, size_t>>&
                        spilled_below,
                    bool* into_trimmed = nullptr) {
    (void)tid;  // merged boundaries are never re-attributed to a writer
    Chain& chain = chains_[key];
    size_t offset = 0;
    for (const auto& [sts, slen] : spilled_below) {
      if (sts <= ts) offset += slen;
    }
    for (const auto& [mts, mdelta] : chain.merged_below) {
      if (mts == ts) return false;
      if (mts < ts) offset += mdelta.size();
    }
    // Shift every version boundary (all of them sit at or above the
    // base, whose region absorbs the delta).
    for (ListVersion& v : chain.versions) v.end_off += delta.size();
    if (offset < chain.trimmed_len) {
      // The insert position was trimmed away: absorb the delta into the
      // hashed region. Its content is remembered in merged_below (for
      // below-base reconstruction) but the hash can no longer be
      // recomputed incrementally — taint it.
      chain.trimmed_len += delta.size();
      chain.hash_tainted = true;
      if (into_trimmed) *into_trimmed = true;
    } else {
      chain.elems.insert(
          chain.elems.begin() + static_cast<long>(offset - chain.trimmed_len),
          delta.begin(), delta.end());
      total_elems_ += delta.size();
    }
    auto mit = std::lower_bound(
        chain.merged_below.begin(), chain.merged_below.end(), ts,
        [](const auto& m, Timestamp t) { return m.first < t; });
    chain.merged_below.insert(mit, {ts, delta});
    return true;
  }

  /// The cumulative prefix at `view` (inclusive: versions with ts <=
  /// view; exclusive: ts < view). len == 0 with ts == kTsMin means no
  /// in-memory version qualifies — content below a collapsed base must
  /// be reconstructed from the spill store (see invariant 3).
  Prefix PrefixAt(Key key, Timestamp view, bool inclusive) const {
    auto it = chains_.find(key);
    if (it == chains_.end()) return Prefix{};
    const Chain& chain = it->second;
    if (!chain.versions.empty()) {
      const ListVersion& back = chain.versions.back();
      if (inclusive ? back.ts <= view : back.ts < view) {
        return MakePrefix(chain, back);
      }
    }
    auto vit = inclusive ? UpperBound(chain.versions, view)
                         : LowerBound(chain.versions, view);
    if (vit == chain.versions.begin()) return Prefix{};
    --vit;
    return MakePrefix(chain, *vit);
  }

  /// Commit ts of the oldest in-memory version of `key` (kTsMin: none).
  /// A ts below this and at or below the GC watermark is a below-base
  /// straggler.
  Timestamp BaseTs(Key key) const {
    auto it = chains_.find(key);
    if (it == chains_.end() || it->second.versions.empty()) return kTsMin;
    return it->second.versions.front().ts;
  }

  /// Stragglers merged into the collapsed base region, sorted by ts
  /// (nullptr when none) — needed to reconstruct below-watermark
  /// prefixes alongside the spilled boundaries.
  const std::vector<std::pair<Timestamp, std::vector<Value>>>* MergedBelow(
      Key key) const {
    auto it = chains_.find(key);
    if (it == chains_.end() || it->second.merged_below.empty()) return nullptr;
    return &it->second.merged_below;
  }

  /// Collapses version boundaries with ts <= `ts` into the retained base
  /// (the latest qualifying version), appending the evicted boundaries
  /// with their deltas to `evicted`. Elements are never dropped
  /// (invariant 3). O(dirty) via the same lazy trigger heap as
  /// VersionedKv. Returns the number of collapsed boundaries.
  size_t CollectUpTo(Timestamp ts, std::vector<ListSpillVersion>* evicted) {
    size_t n = 0;
    std::unordered_set<Key> visited;
    while (!gc_triggers_.empty() && gc_triggers_.top().first <= ts) {
      Key key = gc_triggers_.top().second;
      gc_triggers_.pop();
      if (!visited.insert(key).second) continue;
      auto it = chains_.find(key);
      if (it == chains_.end()) continue;
      Chain& chain = it->second;
      auto end = UpperBound(chain.versions, ts);
      if (end - chain.versions.begin() >= 2) {
        --end;  // keep the latest version <= ts as the collapsed base
        size_t removed = static_cast<size_t>(end - chain.versions.begin());
        if (evicted) {
          for (auto vit = chain.versions.begin(); vit != end; ++vit) {
            ListSpillVersion rec;
            rec.key = key;
            rec.ts = vit->ts;
            rec.tid = vit->tid;
            // Clamp to the materialized range: a boundary whose elements
            // were hash-trimmed (invariant 5) spills a truncated delta.
            // Below-base reads on a trimmed chain degrade to
            // unsafe_below_horizon at the consulting site, so the short
            // record is never trusted for element-wise verification.
            size_t lo = std::max(vit->end_off - vit->delta_len,
                                 chain.trimmed_len);
            size_t hi = std::max(vit->end_off, chain.trimmed_len);
            rec.delta.assign(
                chain.elems.begin() + static_cast<long>(lo - chain.trimmed_len),
                chain.elems.begin() + static_cast<long>(hi - chain.trimmed_len));
            evicted->push_back(std::move(rec));
          }
        }
        chain.versions.erase(chain.versions.begin(), end);
        total_versions_ -= removed;
        n += removed;
      }
      if (chain.versions.size() >= 2) {
        gc_triggers_.push({chain.versions[1].ts, key});
      }
    }
    return n;
  }

  /// Trims the materialized elements of every chain whose base version
  /// (oldest in-memory boundary) sits at or below `horizon`, replacing
  /// the base's element region [0, base.end_off) with its length and
  /// FNV-1a hash (invariant 5). Only the base region is ever trimmed so
  /// in-chain insert offsets stay at or above the cut. Returns the
  /// number of elements released by this call.
  size_t TrimTo(Timestamp horizon) {
    size_t released = 0;
    for (auto& [key, chain] : chains_) {
      (void)key;
      if (chain.versions.empty()) continue;
      const ListVersion& base = chain.versions.front();
      if (base.ts > horizon) continue;
      size_t cut = base.end_off;
      if (cut <= chain.trimmed_len) continue;  // already trimmed this far
      size_t n = cut - chain.trimmed_len;
      chain.trimmed_hash =
          Fnv1a(chain.elems.data(), n * sizeof(Value), chain.trimmed_hash);
      chain.elems.erase(chain.elems.begin(),
                        chain.elems.begin() + static_cast<long>(n));
      chain.trimmed_len = cut;
      total_elems_ -= n;
      total_trimmed_ += n;
      released += n;
    }
    return released;
  }

  /// Full-sequence length of `key`'s hash-trimmed region (0: untrimmed).
  size_t TrimmedLen(Key key) const {
    auto it = chains_.find(key);
    return it == chains_.end() ? 0 : it->second.trimmed_len;
  }

  /// Elements released by TrimTo across all keys, cumulative.
  size_t TotalTrimmed() const { return total_trimmed_; }

  /// Live version boundaries across all keys. O(1).
  size_t TotalVersions() const { return total_versions_; }
  size_t NumKeys() const { return chains_.size(); }

  /// Checkpoint hooks: full dump including trim state, keys sorted for
  /// byte-determinism; Deserialize re-arms the trigger heap.
  void Serialize(StateWriter* w) const {
    std::vector<Key> keys;
    keys.reserve(chains_.size());
    for (const auto& [k, chain] : chains_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w->U64(total_trimmed_);
    w->U64(keys.size());
    for (Key k : keys) {
      const Chain& chain = chains_.at(k);
      w->U64(k);
      w->U64(chain.versions.size());
      for (const ListVersion& v : chain.versions) {
        w->U64(v.ts);
        w->U64(v.tid);
        w->U64(v.delta_len);
        w->U64(v.end_off);
      }
      w->Bytes(chain.elems.data(), chain.elems.size() * sizeof(Value));
      w->U64(chain.merged_below.size());
      for (const auto& [mts, mdelta] : chain.merged_below) {
        w->U64(mts);
        w->Bytes(mdelta.data(), mdelta.size() * sizeof(Value));
      }
      w->U64(chain.trimmed_len);
      w->U64(chain.trimmed_hash);
      w->U8(chain.hash_tainted ? 1 : 0);
    }
  }

  bool Deserialize(StateReader* r) {
    chains_.clear();
    total_versions_ = 0;
    total_elems_ = 0;
    gc_triggers_ = {};
    total_trimmed_ = r->U64();
    uint64_t num_keys = r->U64();
    for (uint64_t i = 0; i < num_keys && r->ok(); ++i) {
      Key k = r->U64();
      Chain& chain = chains_[k];
      uint64_t nv = r->U64();
      chain.versions.reserve(nv);
      for (uint64_t j = 0; j < nv && r->ok(); ++j) {
        ListVersion v;
        v.ts = r->U64();
        v.tid = r->U64();
        v.delta_len = static_cast<uint32_t>(r->U64());
        v.end_off = r->U64();
        chain.versions.push_back(v);
      }
      if (!ReadValueVec(r, &chain.elems)) break;
      uint64_t nm = r->U64();
      chain.merged_below.reserve(nm);
      for (uint64_t j = 0; j < nm && r->ok(); ++j) {
        Timestamp mts = r->U64();
        std::vector<Value> mdelta;
        if (!ReadValueVec(r, &mdelta)) break;
        chain.merged_below.emplace_back(mts, std::move(mdelta));
      }
      chain.trimmed_len = r->U64();
      chain.trimmed_hash = r->U64();
      chain.hash_tainted = r->U8() != 0;
      total_versions_ += chain.versions.size();
      total_elems_ += chain.elems.size();
      if (chain.versions.size() >= 2) {
        gc_triggers_.push({chain.versions[1].ts, k});
      }
    }
    return r->ok();
  }

  /// Approximate heap footprint (materialized prefixes dominate). O(1).
  size_t ApproxBytes() const {
    return chains_.bucket_count() * sizeof(void*) +
           chains_.size() * (sizeof(Chain) + 48) +
           total_versions_ * sizeof(ListVersion) +
           total_elems_ * sizeof(Value);
  }

 private:
  struct Chain {
    std::vector<ListVersion> versions;  // sorted by ts
    // Materialized cumulative prefix, starting at full index trimmed_len
    // (the sequence below it was hash-trimmed away, invariant 5).
    std::vector<Value> elems;
    // Below-base stragglers merged into the collapsed region (ts order).
    std::vector<std::pair<Timestamp, std::vector<Value>>> merged_below;
    size_t trimmed_len = 0;              // full-sequence trim cut
    uint64_t trimmed_hash = kFnvOffset;  // FNV-1a over trimmed elements
    bool hash_tainted = false;           // straggler merged into trim region
  };

  static Prefix MakePrefix(const Chain& chain, const ListVersion& v) {
    Prefix p{v.end_off, v.tid, v.ts, chain.elems.data()};
    p.trimmed = chain.trimmed_len;
    p.trimmed_hash = chain.trimmed_hash;
    p.hash_tainted = chain.hash_tainted;
    return p;
  }

  static bool ReadValueVec(StateReader* r, std::vector<Value>* out) {
    std::string raw = r->Bytes();
    if (!r->ok() || raw.size() % sizeof(Value) != 0) return false;
    out->resize(raw.size() / sizeof(Value));
    // Empty vectors leave data() null; memcpy's args are declared nonnull.
    if (!raw.empty()) std::memcpy(out->data(), raw.data(), raw.size());
    return true;
  }

  struct TsOrder {
    bool operator()(const ListVersion& v, Timestamp t) const {
      return v.ts < t;
    }
    bool operator()(Timestamp t, const ListVersion& v) const {
      return t < v.ts;
    }
  };
  template <typename Vec>
  static auto LowerBound(Vec& vec, Timestamp ts) -> decltype(vec.begin()) {
    return std::lower_bound(vec.begin(), vec.end(), ts, TsOrder{});
  }
  template <typename Vec>
  static auto UpperBound(Vec& vec, Timestamp ts) -> decltype(vec.begin()) {
    return std::upper_bound(vec.begin(), vec.end(), ts, TsOrder{});
  }

  void InsertAt(Chain* chain, std::ptrdiff_t pos, size_t offset, Timestamp ts,
                TxnId tid, const std::vector<Value>& delta) {
    // `offset` is a full-sequence coordinate; storage starts at
    // trimmed_len. Only the base region is ever trimmed, so in-chain
    // inserts (pos >= 1 => offset >= front().end_off >= trimmed_len)
    // never land inside the trimmed cut.
    size_t store = offset >= chain->trimmed_len ? offset - chain->trimmed_len
                                                : 0;
    chain->elems.insert(chain->elems.begin() + static_cast<long>(store),
                        delta.begin(), delta.end());
    for (auto it = chain->versions.begin() + pos; it != chain->versions.end();
         ++it) {
      it->end_off += delta.size();
    }
    chain->versions.insert(
        chain->versions.begin() + pos,
        {ts, tid, static_cast<uint32_t>(delta.size()), offset + delta.size()});
  }

  void ArmTrigger(const Chain& chain, Key key, Timestamp inserted_ts) {
    if (chain.versions.size() >= 2 &&
        (chain.versions.size() == 2 || inserted_ts <= chain.versions[1].ts)) {
      gc_triggers_.push({chain.versions[1].ts, key});
    }
  }

  std::unordered_map<Key, Chain> chains_;
  size_t total_versions_ = 0;
  size_t total_elems_ = 0;   // materialized only; trimmed elements excluded
  size_t total_trimmed_ = 0; // cumulative elements released by TrimTo
  // Same lazy-trigger invariant as VersionedKv: every key with >= 2
  // versions has an entry with trigger <= its current versions[1].ts.
  std::priority_queue<std::pair<Timestamp, Key>,
                      std::vector<std::pair<Timestamp, Key>>, std::greater<>>
      gc_triggers_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_LIST_KV_H_
