// Flip-flop bookkeeping for AION's tentative EXT verdicts (paper Sec.
// VI-C and Figs. 13/14/17-21): a flip-flop is a switch of T.EXT between
// satisfied and violated caused by out-of-order arrivals; rectification
// time is how long a transient wrong verdict was held.
#ifndef CHRONOS_CORE_FLIPFLOP_STATS_H_
#define CHRONOS_CORE_FLIPFLOP_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/state_io.h"

namespace chronos {

/// Aggregated flip-flop statistics. Single-threaded: owned by the
/// monolithic Aion, or one per shard (merged on read) when sharded.
class FlipFlopStats {
 public:
  /// Rectification latency buckets in milliseconds, matching the paper's
  /// Fig. 13(b) x-axis: [0,1), [1,2), [2,10), [10,99), [99,1000), 1000+.
  static constexpr size_t kNumLatencyBuckets = 6;

  /// Records one verdict flip for (txn, key) rectified after `held_ms`.
  void RecordFlip(uint64_t tid, uint64_t held_ms) {
    ++flips_per_txnkey_total_;
    ++flips_per_txn_[tid];
    ++latency_hist_[LatencyBucket(held_ms)];
  }

  /// Records that a (txn, key) pair finished with `flips` total flips
  /// (called at finalization; zero-flip pairs are not recorded).
  void RecordPairDone(uint32_t flips) {
    if (flips == 0) return;
    ++pair_flip_hist_[FlipBucket(flips)];
  }

  /// Histogram over (txn,key) pairs by number of flips: {1, 2, 3, 4+}.
  std::array<uint64_t, 4> pair_flip_histogram() const {
    return pair_flip_hist_;
  }

  /// Histogram over unique transactions by number of flips: {1, 2, 3, 4+}.
  std::array<uint64_t, 4> txn_flip_histogram() const {
    std::array<uint64_t, 4> h{};
    for (const auto& [tid, flips] : flips_per_txn_) {
      (void)tid;
      if (flips > 0) ++h[FlipBucket(flips)];
    }
    return h;
  }

  /// Rectification-latency histogram (see kNumLatencyBuckets).
  std::array<uint64_t, kNumLatencyBuckets> latency_histogram() const {
    return latency_hist_;
  }

  /// Number of unique transactions that experienced at least one flip.
  uint64_t txns_with_flips() const { return flips_per_txn_.size(); }
  /// Total flips across all (txn, key) pairs.
  uint64_t total_flips() const { return flips_per_txnkey_total_; }

  /// Folds another instance in (sharded checking: one instance per key
  /// shard). Commutative and associative: the pair/latency histograms
  /// and the total are plain sums, and the per-txn flip counts are
  /// summed per tid before `txn_flip_histogram()` buckets them — a
  /// transaction's flips on keys of different shards therefore bucket
  /// exactly as they would in a single instance.
  void Merge(const FlipFlopStats& o) {
    flips_per_txnkey_total_ += o.flips_per_txnkey_total_;
    for (const auto& [tid, flips] : o.flips_per_txn_) {
      flips_per_txn_[tid] += flips;
    }
    for (size_t i = 0; i < pair_flip_hist_.size(); ++i) {
      pair_flip_hist_[i] += o.pair_flip_hist_[i];
    }
    for (size_t i = 0; i < latency_hist_.size(); ++i) {
      latency_hist_[i] += o.latency_hist_[i];
    }
  }

  /// Checkpoint hooks; per-txn counts emitted sorted by tid for
  /// byte-determinism.
  void Serialize(StateWriter* w) const {
    w->U64(flips_per_txnkey_total_);
    std::vector<std::pair<uint64_t, uint32_t>> per_txn(flips_per_txn_.begin(),
                                                       flips_per_txn_.end());
    std::sort(per_txn.begin(), per_txn.end());
    w->U64(per_txn.size());
    for (const auto& [tid, flips] : per_txn) {
      w->U64(tid);
      w->U64(flips);
    }
    for (uint64_t v : pair_flip_hist_) w->U64(v);
    for (uint64_t v : latency_hist_) w->U64(v);
  }

  bool Deserialize(StateReader* r) {
    flips_per_txn_.clear();
    flips_per_txnkey_total_ = r->U64();
    uint64_t n = r->U64();
    for (uint64_t i = 0; i < n && r->ok(); ++i) {
      uint64_t tid = r->U64();
      flips_per_txn_[tid] = static_cast<uint32_t>(r->U64());
    }
    for (uint64_t& v : pair_flip_hist_) v = r->U64();
    for (uint64_t& v : latency_hist_) v = r->U64();
    return r->ok();
  }

  static const char* LatencyBucketName(size_t i) {
    static const char* kNames[kNumLatencyBuckets] = {"0-1",   "1-2",
                                                     "2-10",  "10-99",
                                                     "99-1000", "1000+"};
    return kNames[i];
  }

 private:
  static size_t FlipBucket(uint32_t flips) {
    return flips >= 4 ? 3 : flips - 1;
  }
  static size_t LatencyBucket(uint64_t ms) {
    if (ms < 1) return 0;
    if (ms < 2) return 1;
    if (ms < 10) return 2;
    if (ms < 99) return 3;
    if (ms < 1000) return 4;
    return 5;
  }

  uint64_t flips_per_txnkey_total_ = 0;
  std::unordered_map<uint64_t, uint32_t> flips_per_txn_;
  std::array<uint64_t, 4> pair_flip_hist_{};
  std::array<uint64_t, kNumLatencyBuckets> latency_hist_{};
};

}  // namespace chronos

#endif  // CHRONOS_CORE_FLIPFLOP_STATS_H_
