// Disk spill store backing AION's conservative garbage collection
// (Algorithm 3 lines 62-66): frontier versions and write intervals below
// a timestamp watermark are moved from memory to disk and reloaded on
// demand when an out-of-order transaction arrives below the watermark.
#ifndef CHRONOS_CORE_SPILL_H_
#define CHRONOS_CORE_SPILL_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/interval_tree.h"
#include "core/list_kv.h"
#include "core/state_io.h"
#include "core/types.h"
#include "core/versioned_kv.h"

namespace chronos {

/// Everything evicted by one GC pass.
struct SpillPayload {
  Timestamp max_ts = kTsMin;  ///< all records have timestamps <= max_ts
  std::vector<std::tuple<Key, Timestamp, VersionEntry>> versions;
  std::vector<std::pair<Key, WriteInterval>> intervals;
  /// Collapsed list version boundaries (ts, tid, delta) — what a
  /// below-watermark straggler needs to place or resolve a list prefix.
  std::vector<ListSpillVersion> list_versions;

  bool Empty() const {
    return versions.empty() && intervals.empty() && list_versions.empty();
  }
};

/// Append-only store of GC epochs, one binary file per epoch. Not
/// thread-safe; AION serializes access.
class SpillStore {
 public:
  /// `dir` is created if missing. An empty dir disables persistence:
  /// Spill() then discards payloads (documented fast mode for benches
  /// whose arrival order never dips below the GC watermark).
  explicit SpillStore(std::string dir);

  /// True when spilled data can be reloaded later.
  bool persistent() const { return !dir_.empty(); }

  /// Writes one epoch; returns its id (0 when persistence is disabled or
  /// the payload is empty).
  uint64_t Spill(const SpillPayload& payload);

  /// Outcome of a Load: callers must distinguish an epoch that never
  /// existed (or whose file vanished) from one whose file is present but
  /// unparseable — the latter is an integrity failure worth logging and
  /// counting (CheckerStats::corrupt_spill_epochs), not a silent miss.
  enum class LoadStatus { kOk, kMissing, kCorrupt };

  /// Loads one epoch.
  LoadStatus Load(uint64_t epoch_id, SpillPayload* out) const;

  /// Ids of all epochs whose contents may intersect timestamps <= ts.
  std::vector<uint64_t> EpochsAtOrBelow(Timestamp ts) const;

  size_t NumEpochs() const { return epochs_.size(); }

  /// Checkpoint hooks: the manifest (next id + id->max_ts map) is part
  /// of the checker state; the epoch files themselves stay on disk and
  /// are re-opened on demand after a restore.
  void SerializeManifest(StateWriter* w) const;
  bool DeserializeManifest(StateReader* r);

  /// On-disk path of an epoch's file (exposed for integrity tooling and
  /// the crash-recovery corruption fixtures).
  std::string PathFor(uint64_t id) const;

 private:
  std::string dir_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Timestamp> epochs_;  // id -> max_ts
};

}  // namespace chronos

#endif  // CHRONOS_CORE_SPILL_H_
