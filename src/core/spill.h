// Disk spill store backing AION's conservative garbage collection
// (Algorithm 3 lines 62-66): frontier versions and write intervals below
// a timestamp watermark are moved from memory to disk and reloaded on
// demand when an out-of-order transaction arrives below the watermark.
#ifndef CHRONOS_CORE_SPILL_H_
#define CHRONOS_CORE_SPILL_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/interval_tree.h"
#include "core/list_kv.h"
#include "core/types.h"
#include "core/versioned_kv.h"

namespace chronos {

/// Everything evicted by one GC pass.
struct SpillPayload {
  Timestamp max_ts = kTsMin;  ///< all records have timestamps <= max_ts
  std::vector<std::tuple<Key, Timestamp, VersionEntry>> versions;
  std::vector<std::pair<Key, WriteInterval>> intervals;
  /// Collapsed list version boundaries (ts, tid, delta) — what a
  /// below-watermark straggler needs to place or resolve a list prefix.
  std::vector<ListSpillVersion> list_versions;

  bool Empty() const {
    return versions.empty() && intervals.empty() && list_versions.empty();
  }
};

/// Append-only store of GC epochs, one binary file per epoch. Not
/// thread-safe; AION serializes access.
class SpillStore {
 public:
  /// `dir` is created if missing. An empty dir disables persistence:
  /// Spill() then discards payloads (documented fast mode for benches
  /// whose arrival order never dips below the GC watermark).
  explicit SpillStore(std::string dir);

  /// True when spilled data can be reloaded later.
  bool persistent() const { return !dir_.empty(); }

  /// Writes one epoch; returns its id (0 when persistence is disabled or
  /// the payload is empty).
  uint64_t Spill(const SpillPayload& payload);

  /// Loads one epoch. Returns false on missing/corrupt file.
  bool Load(uint64_t epoch_id, SpillPayload* out) const;

  /// Ids of all epochs whose contents may intersect timestamps <= ts.
  std::vector<uint64_t> EpochsAtOrBelow(Timestamp ts) const;

  size_t NumEpochs() const { return epochs_.size(); }

 private:
  std::string PathFor(uint64_t id) const;

  std::string dir_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Timestamp> epochs_;  // id -> max_ts
};

}  // namespace chronos

#endif  // CHRONOS_CORE_SPILL_H_
