// An augmented treap of write intervals, realizing the timestamp-versioned
// `ongoing_ts` structure of Algorithm 3. A transaction T writing key k
// contributes the interval [T.start_ts, T.commit_ts] to k's tree; the
// NOCONFLICT axiom fails exactly when two intervals of the same key
// overlap (DESIGN.md Sec. 1.1). Overlap queries are O(log n + answer)
// regardless of history pathology, which a plain ordered map of disjoint
// intervals cannot guarantee.
#ifndef CHRONOS_CORE_INTERVAL_TREE_H_
#define CHRONOS_CORE_INTERVAL_TREE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/state_io.h"
#include "core/types.h"

namespace chronos {

/// One write interval: transaction `tid` held key ownership over
/// [start, end] (its start..commit span).
struct WriteInterval {
  Timestamp start = 0;
  Timestamp end = 0;
  TxnId tid = kTxnNone;
};

/// Augmented treap keyed by (start, tid) with subtree-max end times.
/// Supports insert, erase, stabbing and range-overlap queries, and
/// bulk eviction of intervals ending at or before a watermark.
class IntervalTree {
 public:
  IntervalTree() = default;
  IntervalTree(IntervalTree&&) = default;
  IntervalTree& operator=(IntervalTree&&) = default;

  /// Inserts an interval. Duplicate (start, tid) pairs are allowed but do
  /// not occur in well-formed use (one interval per txn per key).
  void Insert(const WriteInterval& iv) {
    root_ = InsertNode(std::move(root_), MakeNode(iv));
    ++size_;
  }

  /// Removes the interval with exactly this (start, tid). Returns whether
  /// an interval was removed.
  bool Erase(Timestamp start, TxnId tid) {
    bool removed = false;
    root_ = EraseNode(std::move(root_), start, tid, &removed);
    if (removed) --size_;
    return removed;
  }

  /// Appends to `out` every stored interval that overlaps [lo, hi]
  /// (closed-closed overlap: iv.start <= hi && iv.end >= lo).
  void QueryOverlap(Timestamp lo, Timestamp hi,
                    std::vector<WriteInterval>* out) const {
    QueryNode(root_.get(), lo, hi, out);
  }

  /// Appends every interval containing the point `ts`.
  void QueryStab(Timestamp ts, std::vector<WriteInterval>* out) const {
    QueryNode(root_.get(), ts, ts, out);
  }

  /// Removes every interval with end <= `ts`; appends them to `evicted`
  /// when non-null. Returns the number removed. Used by GC: an interval
  /// wholly below the watermark can no longer overlap future arrivals
  /// above it.
  size_t EvictEndingUpTo(Timestamp ts, std::vector<WriteInterval>* evicted) {
    std::vector<WriteInterval> all;
    CollectEndingUpTo(root_.get(), ts, &all);
    for (const auto& iv : all) {
      Erase(iv.start, iv.tid);
      if (evicted) evicted->push_back(iv);
    }
    return all.size();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends every stored interval to `out` in unspecified order
  /// (checkpoint serialization; callers sort for determinism).
  void CollectAllIntervals(std::vector<WriteInterval>* out) const {
    CollectAll(root_.get(), out);
  }

 private:
  struct Node {
    WriteInterval iv;
    Timestamp max_end;
    uint64_t prio;
    std::unique_ptr<Node> left, right;
  };
  using NodePtr = std::unique_ptr<Node>;

  static uint64_t NextPrio() {
    // xorshift64*; deterministic per-process sequence is fine for a treap.
    static thread_local uint64_t state = 0x9E3779B97F4A7C15ULL;
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }

  static NodePtr MakeNode(const WriteInterval& iv) {
    auto n = std::make_unique<Node>();
    n->iv = iv;
    n->max_end = iv.end;
    n->prio = NextPrio();
    return n;
  }

  static void Pull(Node* n) {
    n->max_end = n->iv.end;
    if (n->left) n->max_end = std::max(n->max_end, n->left->max_end);
    if (n->right) n->max_end = std::max(n->max_end, n->right->max_end);
  }

  static bool KeyLess(const WriteInterval& a, const WriteInterval& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.tid < b.tid;
  }

  static NodePtr RotateRight(NodePtr n) {
    NodePtr l = std::move(n->left);
    n->left = std::move(l->right);
    Pull(n.get());
    l->right = std::move(n);
    Pull(l.get());
    return l;
  }

  static NodePtr RotateLeft(NodePtr n) {
    NodePtr r = std::move(n->right);
    n->right = std::move(r->left);
    Pull(n.get());
    r->left = std::move(n);
    Pull(r.get());
    return r;
  }

  static NodePtr InsertNode(NodePtr n, NodePtr fresh) {
    if (!n) return fresh;
    if (KeyLess(fresh->iv, n->iv)) {
      n->left = InsertNode(std::move(n->left), std::move(fresh));
      Pull(n.get());
      if (n->left->prio > n->prio) n = RotateRight(std::move(n));
    } else {
      n->right = InsertNode(std::move(n->right), std::move(fresh));
      Pull(n.get());
      if (n->right->prio > n->prio) n = RotateLeft(std::move(n));
    }
    return n;
  }

  static NodePtr EraseNode(NodePtr n, Timestamp start, TxnId tid,
                           bool* removed) {
    if (!n) return nullptr;
    if (n->iv.start == start && n->iv.tid == tid) {
      *removed = true;
      return MergeChildren(std::move(n));
    }
    WriteInterval probe{start, 0, tid};
    if (KeyLess(probe, n->iv)) {
      n->left = EraseNode(std::move(n->left), start, tid, removed);
    } else {
      n->right = EraseNode(std::move(n->right), start, tid, removed);
    }
    Pull(n.get());
    return n;
  }

  static NodePtr MergeChildren(NodePtr n) {
    if (!n->left) return std::move(n->right);
    if (!n->right) return std::move(n->left);
    if (n->left->prio > n->right->prio) {
      n = RotateRight(std::move(n));
      n->right = MergeChildren(std::move(n->right));
    } else {
      n = RotateLeft(std::move(n));
      n->left = MergeChildren(std::move(n->left));
    }
    Pull(n.get());
    return n;
  }

  static void QueryNode(const Node* n, Timestamp lo, Timestamp hi,
                        std::vector<WriteInterval>* out) {
    if (!n || n->max_end < lo) return;  // no interval below reaches lo
    QueryNode(n->left.get(), lo, hi, out);
    if (n->iv.start <= hi && n->iv.end >= lo) out->push_back(n->iv);
    if (n->iv.start <= hi) QueryNode(n->right.get(), lo, hi, out);
  }

  static void CollectEndingUpTo(const Node* n, Timestamp ts,
                                std::vector<WriteInterval>* out) {
    if (!n) return;
    if (n->iv.end <= ts) out->push_back(n->iv);
    if (n->left && n->left->max_end <= ts) {
      CollectAll(n->left.get(), out);
    } else {
      CollectEndingUpTo(n->left.get(), ts, out);
    }
    if (n->right && n->right->max_end <= ts) {
      CollectAll(n->right.get(), out);
    } else {
      CollectEndingUpTo(n->right.get(), ts, out);
    }
  }

  static void CollectAll(const Node* n, std::vector<WriteInterval>* out) {
    if (!n) return;
    out->push_back(n->iv);
    CollectAll(n->left.get(), out);
    CollectAll(n->right.get(), out);
  }

  NodePtr root_;
  size_t size_ = 0;
};

/// Per-key collection of interval trees (the full ongoing_ts structure).
/// `TotalIntervals()` is an O(1) running counter, and `CollectUpTo` is
/// O(dirty): a lazy min-heap of (interval end, key) entries — one armed
/// per insert — means a GC pass visits only keys that actually hold an
/// interval ending at or below the watermark.
class OngoingIndex {
 public:
  /// Registers txn `tid` as holding key `key` over [start, commit].
  void Add(Key key, Timestamp start, Timestamp commit, TxnId tid) {
    trees_[key].Insert({start, commit, tid});
    gc_triggers_.push({commit, key});
    ++total_;
  }

  /// All writer intervals of `key` overlapping [lo, hi].
  std::vector<WriteInterval> Overlapping(Key key, Timestamp lo,
                                         Timestamp hi) const {
    std::vector<WriteInterval> out;
    auto it = trees_.find(key);
    if (it != trees_.end()) it->second.QueryOverlap(lo, hi, &out);
    return out;
  }

  /// GC: drop intervals wholly at or below `ts`. Visits only dirty keys.
  size_t CollectUpTo(Timestamp ts,
                     std::vector<std::pair<Key, WriteInterval>>* evicted) {
    size_t n = 0;
    std::vector<WriteInterval> local;
    while (!gc_triggers_.empty() && gc_triggers_.top().first <= ts) {
      Key key = gc_triggers_.top().second;
      gc_triggers_.pop();
      auto it = trees_.find(key);
      if (it == trees_.end()) continue;  // stale: key already emptied
      local.clear();
      size_t evicted_here = it->second.EvictEndingUpTo(ts, &local);
      n += evicted_here;
      total_ -= evicted_here;
      if (evicted) {
        for (const auto& iv : local) evicted->emplace_back(key, iv);
      }
      if (it->second.empty()) trees_.erase(it);
    }
    return n;
  }

  /// Spill-reload path.
  void Restore(Key key, const WriteInterval& iv) {
    Add(key, iv.start, iv.end, iv.tid);
  }

  /// Live interval count. O(1).
  size_t TotalIntervals() const { return total_; }

  /// Checkpoint hooks. The treap shapes and trigger heap are not
  /// serialized: Deserialize re-Adds every interval (rebuilding both),
  /// which preserves query results exactly — overlap answers depend
  /// only on the interval set, not on treap priorities. Keys and
  /// intervals are emitted sorted so the image is byte-deterministic.
  void Serialize(StateWriter* w) const {
    std::vector<Key> keys;
    keys.reserve(trees_.size());
    for (const auto& [k, tree] : trees_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w->U64(keys.size());
    std::vector<WriteInterval> ivs;
    for (Key k : keys) {
      ivs.clear();
      trees_.at(k).CollectAllIntervals(&ivs);
      std::sort(ivs.begin(), ivs.end(),
                [](const WriteInterval& a, const WriteInterval& b) {
                  if (a.start != b.start) return a.start < b.start;
                  if (a.tid != b.tid) return a.tid < b.tid;
                  return a.end < b.end;
                });
      w->U64(k);
      w->U64(ivs.size());
      for (const WriteInterval& iv : ivs) {
        w->U64(iv.start);
        w->U64(iv.end);
        w->U64(iv.tid);
      }
    }
  }

  bool Deserialize(StateReader* r) {
    trees_.clear();
    total_ = 0;
    gc_triggers_ = {};
    uint64_t num_keys = r->U64();
    for (uint64_t i = 0; i < num_keys && r->ok(); ++i) {
      Key k = r->U64();
      uint64_t n = r->U64();
      for (uint64_t j = 0; j < n && r->ok(); ++j) {
        WriteInterval iv;
        iv.start = r->U64();
        iv.end = r->U64();
        iv.tid = r->U64();
        Add(k, iv.start, iv.end, iv.tid);
      }
    }
    return r->ok();
  }

 private:
  std::unordered_map<Key, IntervalTree> trees_;
  size_t total_ = 0;
  // Lazy min-heap: every live interval has one (end, key) entry, so any
  // interval with end <= ts is reachable by popping triggers <= ts.
  // Entries outlive their interval (eviction drains whole keys at once);
  // such stale pops are skipped.
  std::priority_queue<std::pair<Timestamp, Key>,
                      std::vector<std::pair<Timestamp, Key>>, std::greater<>>
      gc_triggers_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_INTERVAL_TREE_H_
