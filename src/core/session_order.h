// Shared SESSION-axiom bookkeeping (Algorithm 2 lines 7-10) and the
// offline checkers' well-formedness pre-pass: the last-seen sequence
// number and commit timestamp per session, the set of sequence numbers
// excluded from replay (Eq. (1) violations) that the contiguity check
// steps over instead of false-firing, and the Eq. (1) /
// duplicate-timestamp scan itself. One definition serves Chronos,
// ChronosList, and the online ingress so the skip and replay policies
// cannot desynchronize between checkers the differ compares.
#ifndef CHRONOS_CORE_SESSION_ORDER_H_
#define CHRONOS_CORE_SESSION_ORDER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/types.h"
#include "core/violation.h"

namespace chronos {

struct SessionState {
  int64_t last_sno = -1;
  Timestamp last_cts = kTsMin;
  /// snos of transactions excluded from replay; the SESSION contiguity
  /// check skips over them instead of false-firing.
  std::unordered_set<uint64_t> skipped_snos;
};

/// Advances last_sno across contiguously skipped sequence numbers.
inline void AdvanceOverSkipped(SessionState* ss) {
  while (ss->skipped_snos.erase(static_cast<uint64_t>(ss->last_sno + 1)) >
         0) {
    ++ss->last_sno;
  }
}

/// The offline pre-pass shared by Chronos and ChronosList: Eq. (1)
/// violations are reported, handed to `int_only` (INT never depends on
/// timestamps) and excluded from replay via skipped_snos; duplicate
/// timestamps across distinct transactions are reported but still
/// replayed (AION instead skips them — divergence entry D6). SER has
/// its own commit-only dup rule and does not use this.
template <typename IntOnlyFn>
void WellFormednessPrePass(
    const History& history, ViolationSink* sink, CountingSink* counted,
    std::unordered_map<SessionId, SessionState>* sessions,
    IntOnlyFn&& int_only) {
  std::unordered_set<Timestamp> seen;
  seen.reserve(history.txns.size() * 2);
  for (const Transaction& t : history.txns) {
    if (!t.TimestampsOrdered()) {
      sink->Report({ViolationType::kTsOrder, t.tid, kTxnNone, 0,
                    static_cast<Value>(t.start_ts),
                    static_cast<Value>(t.commit_ts)});
      counted->Report({ViolationType::kTsOrder, t.tid});
      int_only(t);
      (*sessions)[t.sid].skipped_snos.insert(t.sno);
      continue;
    }
    if (!seen.insert(t.start_ts).second ||
        (t.commit_ts != t.start_ts && !seen.insert(t.commit_ts).second)) {
      sink->Report({ViolationType::kTsDuplicate, t.tid});
      counted->Report({ViolationType::kTsDuplicate, t.tid});
    }
  }
}

}  // namespace chronos

#endif  // CHRONOS_CORE_SESSION_ORDER_H_
