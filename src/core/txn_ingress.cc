#include "core/txn_ingress.h"

#include <algorithm>
#include <utility>

#include "core/list_replay.h"
#include "core/small_map.h"

namespace chronos {

void ClassifyOps(const Transaction& t, const KeyEngine::ReportFn& report,
                 ClassifiedOps* out) {
  SmallMap<Key, Value> int_val;
  SmallMap<Key, Value> ext_val;
  // List replay state: register and list namespaces are independent (a
  // key used both ways keeps two states; generated workloads never mix).
  SmallMap<Key, ListAccess> list_state;
  SmallMap<Key, std::vector<Value>> all_appends;  // full delta per key
  for (const Op& op : t.ops) {
    if (op.type == OpType::kRead) {
      if (Value* iv = int_val.Find(op.key)) {
        if (*iv != op.value) {
          report(t.commit_ts, {ViolationType::kInt, t.tid, kTxnNone, op.key,
                               *iv, op.value});
        }
        int_val.Put(op.key, op.value);
      } else {
        // External read: evaluated against the frontier by the engine.
        if (out) out->ext_reads.push_back({op.key, op.value});
        int_val.Put(op.key, op.value);
      }
    } else if (op.type == OpType::kWrite) {
      int_val.Put(op.key, op.value);
      if (out && !ext_val.Find(op.key)) {
        out->writes.push_back({op.key, op.value});
      }
      ext_val.Put(op.key, op.value);
    } else if (op.type == OpType::kAppend) {
      list_state.FindOrInsert(op.key)->own.push_back(op.value);
      std::vector<Value>* delta = all_appends.Find(op.key);
      if (!delta) {
        delta = all_appends.FindOrInsert(op.key);
        if (out) out->appends.push_back({op.key, {}});
      }
      delta->push_back(op.value);
    } else if (op.type == OpType::kReadList) {
      if (op.list_index >= t.list_args.size()) continue;  // malformed input
      const std::vector<Value>& observed = t.list_args[op.list_index];
      ListReadOutcome oc =
          ClassifyListRead(list_state.FindOrInsert(op.key), observed);
      if (oc.kind == ListReadOutcome::Kind::kIntMismatch) {
        report(t.commit_ts,
               {ViolationType::kInt, t.tid, kTxnNone, op.key,
                static_cast<Value>(oc.expected_len),
                static_cast<Value>(oc.got_len), oc.divergence});
      } else if (oc.kind == ListReadOutcome::Kind::kResolvedBase && out) {
        out->list_reads.push_back({op.key, std::move(oc.resolved)});
      }
    }
  }
  // writes must carry the *last* written value per key; appends carry
  // the full concatenated delta.
  if (out) {
    for (auto& w : out->writes) w.value = *ext_val.Find(w.key);
    for (auto& a : out->appends) a.delta = std::move(*all_appends.Find(a.key));
  }
}

TxnIngress::TxnIngress(const CheckerOptions& options, CheckerStats* stats,
                       KeyEngine::ReportFn report, Dispatch* dispatch)
    : options_(options),
      stats_(stats),
      report_(std::move(report)),
      dispatch_(dispatch) {}

TxnIngress::Admission TxnIngress::AdmitTxn(const Transaction& t,
                                           uint64_t now_ms) {
  Admission adm;
  last_now_ms_ = std::max(last_now_ms_, now_ms);
  FireDeadlines(last_now_ms_);
  adm.now_ms = last_now_ms_;

  const IsolationLevel lv = EffectiveLevel(t, options_.mode);

  // Eq. (1) well-formedness (Algorithm 3 lines 4-5) applies only to SI:
  // every other level reads at its commit view and ignores start
  // timestamps entirely. INT does not depend on timestamps, so the
  // footprint still goes through the INT replay (kIntOnly).
  if (lv == IsolationLevel::kSi && !t.TimestampsOrdered()) {
    report_(t.commit_ts, {ViolationType::kTsOrder, t.tid, kTxnNone, 0,
                          static_cast<Value>(t.start_ts),
                          static_cast<Value>(t.commit_ts)});
    sessions_[t.sid].skipped_snos.insert(t.sno);
    adm.kind = Admission::Kind::kIntOnly;
    return adm;
  }

  // Duplicate timestamps across distinct transactions. Per-level
  // registration (see RegistersTimestamps): SER consumes {commit}, SI
  // {start, commit}; the commit-order membership levels (RC/RA) consume
  // nothing — they neither claim snapshot timestamps nor participate in
  // the dup-gate (a same-commit-ts collision surfaces at the engine's
  // version install as TS-DUP instead).
  bool dup = false;
  if (lv == IsolationLevel::kSer) {
    dup = !used_ts_.insert(t.commit_ts).second;
    if (!dup) used_ts_min_.push(t.commit_ts);
  } else if (lv == IsolationLevel::kSi) {
    dup = used_ts_.count(t.start_ts) || used_ts_.count(t.commit_ts);
    if (!dup) {
      if (used_ts_.insert(t.start_ts).second) used_ts_min_.push(t.start_ts);
      if (used_ts_.insert(t.commit_ts).second) used_ts_min_.push(t.commit_ts);
    }
  }
  if (dup) {
    report_(t.commit_ts, {ViolationType::kTsDuplicate, t.tid});
    sessions_[t.sid].skipped_snos.insert(t.sno);
    adm.kind = Admission::Kind::kDrop;
    return adm;
  }

  CheckSession(t, lv);

  const Timestamp view_ts =
      lv == IsolationLevel::kSi ? t.start_ts : t.commit_ts;

  // A replayed tid keeps its original record and registrations: pushing
  // its view on the heap again would outlive the single finalize
  // tombstone and pin the GC watermark forever. Its footprint still goes
  // through Steps 2-3 like any other arrival.
  auto [it, inserted] = txns_.emplace(t.tid, TxnRec{view_ts, t.commit_ts,
                                                    false});
  (void)it;
  if (inserted) {
    if (commit_index_.empty() || t.commit_ts > commit_index_.back().first) {
      commit_index_.emplace_back(t.commit_ts, t.tid);  // common: in order
    } else {
      auto pos = std::lower_bound(
          commit_index_.begin(), commit_index_.end(), t.commit_ts,
          [](const auto& p, Timestamp ts) { return p.first < ts; });
      commit_index_.insert(pos, {t.commit_ts, t.tid});
    }
    view_heap_.push(view_ts);
    deadlines_.emplace_back(last_now_ms_ + options_.ext_timeout_ms, t.tid);
  }

  ++stats_->txns_processed;
  adm.kind = Admission::Kind::kDispatch;
  adm.register_reads = inserted;
  adm.ctx = KeyEngine::TxnCtx{t.tid, view_ts, t.commit_ts, t.start_ts, lv};
  return adm;
}

void TxnIngress::OnTransaction(const Transaction& t, uint64_t now_ms) {
  Admission adm = AdmitTxn(t, now_ms);
  switch (adm.kind) {
    case Admission::Kind::kDrop:
      return;
    case Admission::Kind::kIntOnly:
      ClassifyOps(t, report_, nullptr);
      return;
    case Admission::Kind::kDispatch: {
      // Step 1 (transaction-scoped half): INT checks and the per-key
      // footprint classification.
      ClassifiedOps ops;
      ClassifyOps(t, report_, &ops);
      dispatch_->DispatchTxn(adm.ctx, std::move(ops), adm.register_reads,
                             adm.now_ms);
      return;
    }
  }
}

void TxnIngress::CheckSession(const Transaction& t, IsolationLevel lv) {
  SessionState& ss = sessions_[t.sid];
  AdvanceOverSkipped(&ss);
  // SI: the next transaction of a session must start after the previous
  // one committed (strong session). Every commit-view level (SER, RC,
  // RA): its commit must come later in commit order.
  const bool si = lv == IsolationLevel::kSi;
  Timestamp order_ts = si ? t.start_ts : t.commit_ts;
  bool bad_order = si ? order_ts < ss.last_cts
                      : order_ts <= ss.last_cts && ss.last_sno >= 0;
  if (static_cast<int64_t>(t.sno) != ss.last_sno + 1 || bad_order) {
    report_(t.commit_ts, {ViolationType::kSession, t.tid, kTxnNone, 0,
                          static_cast<Value>(ss.last_sno + 1),
                          static_cast<Value>(t.sno)});
  }
  ss.last_sno = static_cast<int64_t>(t.sno);
  ss.last_cts = t.commit_ts;
}

void TxnIngress::FinalizeRec(TxnId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end() || it->second.finalized) return;
  it->second.finalized = true;
  finalized_views_.insert(it->second.view_ts);
  dispatch_->DispatchFinalize(tid);
}

void TxnIngress::FireDeadlines(uint64_t now_ms) {
  while (!deadlines_.empty() && deadlines_.front().first <= now_ms) {
    TxnId tid = deadlines_.front().second;
    deadlines_.pop_front();
    FinalizeRec(tid);
  }
}

void TxnIngress::AdvanceTime(uint64_t now_ms) {
  last_now_ms_ = std::max(last_now_ms_, now_ms);
  FireDeadlines(last_now_ms_);
}

void TxnIngress::Finish() {
  while (!deadlines_.empty()) {
    TxnId tid = deadlines_.front().second;
    deadlines_.pop_front();
    FinalizeRec(tid);
  }
}

std::optional<Timestamp> TxnIngress::OldestUnfinalizedView() {
  while (!view_heap_.empty()) {
    Timestamp v = view_heap_.top();
    auto it = finalized_views_.find(v);
    if (it == finalized_views_.end()) return v;
    view_heap_.pop();
    finalized_views_.erase(it);
  }
  return std::nullopt;
}

Timestamp TxnIngress::Gc(Timestamp up_to) {
  // Clamp to the safe watermark: no unfinalized transaction's read view
  // may fall at or below the eviction point, otherwise a future Step-3
  // re-check could silently use an incomplete version bound.
  Timestamp effective = up_to;
  if (std::optional<Timestamp> oldest = OldestUnfinalizedView()) {
    if (*oldest == kTsMin) return watermark_;
    effective = std::min(effective, *oldest - 1);
  }
  if (effective <= watermark_) return watermark_;

  ++stats_->gc_passes;

  // Drop finalized transaction records committed at or below the line;
  // the engines drop their own ext-read payloads and reader refs when
  // the GC dispatch reaches them.
  auto line_end = std::upper_bound(
      commit_index_.begin(), commit_index_.end(), effective,
      [](Timestamp ts, const auto& p) { return ts < p.first; });
  auto keep = std::remove_if(
      commit_index_.begin(), line_end,
      [&](const std::pair<Timestamp, TxnId>& p) {
        auto tit = txns_.find(p.second);
        if (tit == txns_.end() || !tit->second.finalized) return false;
        txns_.erase(tit);
        return true;
      });
  commit_index_.erase(keep, line_end);

  // Timestamp-uniqueness bookkeeping below the line is no longer needed;
  // duplicates of recycled timestamps would be stragglers anyway.
  while (!used_ts_min_.empty() && used_ts_min_.top() <= effective) {
    used_ts_.erase(used_ts_min_.top());
    used_ts_min_.pop();
  }

  watermark_ = effective;
  dispatch_->DispatchGc(effective);
  return watermark_;
}

void TxnIngress::Serialize(StateWriter* w) const {
  w->U64(watermark_);
  w->U64(last_now_ms_);

  std::vector<TxnId> tids;
  tids.reserve(txns_.size());
  for (const auto& [tid, rec] : txns_) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());
  w->U64(tids.size());
  for (TxnId tid : tids) {
    const TxnRec& rec = txns_.at(tid);
    w->U64(tid);
    w->U64(rec.view_ts);
    w->U64(rec.commit_ts);
    w->U8(rec.finalized ? 1 : 0);
  }

  w->U64(commit_index_.size());
  for (const auto& [cts, tid] : commit_index_) {
    w->U64(cts);
    w->U64(tid);
  }

  // Heaps are drained from a copy (ascending order — deterministic);
  // behavior depends only on the multiset, so re-pushing restores the
  // exact pop sequence.
  auto dump_heap = [&](const std::priority_queue<Timestamp,
                                                 std::vector<Timestamp>,
                                                 std::greater<>>& heap) {
    auto copy = heap;
    w->U64(copy.size());
    while (!copy.empty()) {
      w->U64(copy.top());
      copy.pop();
    }
  };
  auto dump_set = [&](const std::unordered_set<Timestamp>& set) {
    std::vector<Timestamp> v(set.begin(), set.end());
    std::sort(v.begin(), v.end());
    w->U64(v.size());
    for (Timestamp ts : v) w->U64(ts);
  };
  dump_heap(view_heap_);
  dump_set(finalized_views_);
  dump_set(used_ts_);
  dump_heap(used_ts_min_);

  std::vector<SessionId> sids;
  sids.reserve(sessions_.size());
  for (const auto& [sid, ss] : sessions_) sids.push_back(sid);
  std::sort(sids.begin(), sids.end());
  w->U64(sids.size());
  for (SessionId sid : sids) {
    const SessionState& ss = sessions_.at(sid);
    w->U64(sid);
    w->I64(ss.last_sno);
    w->U64(ss.last_cts);
    std::vector<uint64_t> skipped(ss.skipped_snos.begin(),
                                  ss.skipped_snos.end());
    std::sort(skipped.begin(), skipped.end());
    w->U64(skipped.size());
    for (uint64_t sno : skipped) w->U64(sno);
  }

  w->U64(deadlines_.size());
  for (const auto& [deadline, tid] : deadlines_) {
    w->U64(deadline);
    w->U64(tid);
  }
}

bool TxnIngress::Deserialize(StateReader* r) {
  watermark_ = r->U64();
  last_now_ms_ = r->U64();

  txns_.clear();
  uint64_t nt = r->U64();
  for (uint64_t i = 0; i < nt && r->ok(); ++i) {
    TxnId tid = r->U64();
    TxnRec rec;
    rec.view_ts = r->U64();
    rec.commit_ts = r->U64();
    rec.finalized = r->U8() != 0;
    txns_.emplace(tid, rec);
  }

  commit_index_.clear();
  uint64_t nci = r->U64();
  commit_index_.reserve(nci);
  for (uint64_t i = 0; i < nci && r->ok(); ++i) {
    Timestamp cts = r->U64();
    TxnId tid = r->U64();
    commit_index_.emplace_back(cts, tid);
  }

  auto read_heap = [&](std::priority_queue<Timestamp, std::vector<Timestamp>,
                                           std::greater<>>* heap) {
    *heap = {};
    uint64_t n = r->U64();
    for (uint64_t i = 0; i < n && r->ok(); ++i) heap->push(r->U64());
  };
  auto read_set = [&](std::unordered_set<Timestamp>* set) {
    set->clear();
    uint64_t n = r->U64();
    for (uint64_t i = 0; i < n && r->ok(); ++i) set->insert(r->U64());
  };
  read_heap(&view_heap_);
  read_set(&finalized_views_);
  read_set(&used_ts_);
  read_heap(&used_ts_min_);

  sessions_.clear();
  uint64_t ns = r->U64();
  for (uint64_t i = 0; i < ns && r->ok(); ++i) {
    SessionId sid = static_cast<SessionId>(r->U64());
    SessionState& ss = sessions_[sid];
    ss.last_sno = r->I64();
    ss.last_cts = r->U64();
    uint64_t nk = r->U64();
    for (uint64_t j = 0; j < nk && r->ok(); ++j) {
      ss.skipped_snos.insert(r->U64());
    }
  }

  deadlines_.clear();
  uint64_t nd = r->U64();
  for (uint64_t i = 0; i < nd && r->ok(); ++i) {
    uint64_t deadline = r->U64();
    TxnId tid = r->U64();
    deadlines_.emplace_back(deadline, tid);
  }
  return r->ok();
}

void TxnIngress::GcToLiveTarget(size_t target) {
  if (txns_.size() <= target) return;
  // Fast reject: if the oldest unfinalized view already pins the
  // watermark, no amount of scanning will free anything (asynchrony
  // preventing recycling, Sec. III-C2 challenge 3).
  if (std::optional<Timestamp> oldest = OldestUnfinalizedView()) {
    if (*oldest == kTsMin || *oldest - 1 <= watermark_) return;
  }
  size_t excess = txns_.size() - target;
  Timestamp line = kTsMin;
  if (excess > 0 && !commit_index_.empty()) {
    line = commit_index_[std::min(excess, commit_index_.size()) - 1].first;
  }
  if (line != kTsMin) Gc(line);
}

}  // namespace chronos
