// Shared per-transaction replay of list operations (paper Sec. III-B1:
// CHRONOS/AION "easily adaptable to support other data types such as
// lists"). Both the offline ChronosList and the online ingress
// (TxnIngress::ClassifyOps) classify a transaction's list reads with
// this helper, so their INT/EXT taxonomy agrees by construction:
//
//   INT  — the read contradicts the transaction's *own* prior list state
//          (a previously observed list plus its own appends since), a
//          frontier-independent fact.
//   EXT  — the first consistent read of a key resolves an external base
//          prefix (the observed list minus the transaction's own append
//          suffix); that base must equal the key's committed cumulative
//          append sequence at the read view, which only a frontier check
//          (offline snapshot or online version chain) can decide.
//
// Mirroring the register classification in ClassifyOps: the last
// observed list becomes the expected state for later internal reads, so
// one bad read does not cascade into one violation per subsequent read.
#ifndef CHRONOS_CORE_LIST_REPLAY_H_
#define CHRONOS_CORE_LIST_REPLAY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace chronos {

/// First index at which `expected` and `got` differ: the first unequal
/// element, or the shorter length when one is a proper prefix of the
/// other. -1 when the lists are equal.
inline int64_t FirstListDivergence(const Value* expected, size_t expected_len,
                                   const Value* got, size_t got_len) {
  size_t n = expected_len < got_len ? expected_len : got_len;
  for (size_t i = 0; i < n; ++i) {
    if (expected[i] != got[i]) return static_cast<int64_t>(i);
  }
  if (expected_len != got_len) return static_cast<int64_t>(n);
  return -1;
}

inline int64_t FirstListDivergence(const std::vector<Value>& expected,
                                   const std::vector<Value>& got) {
  return FirstListDivergence(expected.data(), expected.size(), got.data(),
                             got.size());
}

/// Per-(transaction, key) list replay state.
struct ListAccess {
  /// Expected cumulative list as of the last read (base resolved).
  bool base_known = false;
  std::vector<Value> base;
  /// Own appends since the last read (program order).
  std::vector<Value> own;
};

/// Outcome of classifying one list read.
struct ListReadOutcome {
  enum class Kind {
    kConsistent,    ///< matches the expected state; nothing to report
    kIntMismatch,   ///< contradicts the transaction's own prior list ops
    kResolvedBase,  ///< first consistent read: `resolved` needs an EXT check
  };
  Kind kind = Kind::kConsistent;
  /// kResolvedBase: the external base prefix (observed minus own suffix).
  std::vector<Value> resolved;
  /// kIntMismatch: report payload (lengths + first divergent index).
  int64_t expected_len = 0;
  int64_t got_len = 0;
  int64_t divergence = -1;
};

/// Classifies one list read observing `observed` against `st`, updating
/// `st` to adopt the observation (last read wins, like register int_val).
inline ListReadOutcome ClassifyListRead(ListAccess* st,
                                        const std::vector<Value>& observed) {
  ListReadOutcome out;
  if (st->base_known) {
    // Expected = base ++ own, compared in place (no concatenation: this
    // runs per internal read on both checkers' hot paths).
    const size_t base_len = st->base.size();
    const size_t exp_len = base_len + st->own.size();
    const size_t n = exp_len < observed.size() ? exp_len : observed.size();
    int64_t div = -1;
    for (size_t i = 0; i < n; ++i) {
      Value e = i < base_len ? st->base[i] : st->own[i - base_len];
      if (e != observed[i]) {
        div = static_cast<int64_t>(i);
        break;
      }
    }
    if (div < 0 && exp_len != observed.size()) div = static_cast<int64_t>(n);
    if (div >= 0) {
      out.kind = ListReadOutcome::Kind::kIntMismatch;
      out.expected_len = static_cast<int64_t>(exp_len);
      out.got_len = static_cast<int64_t>(observed.size());
      out.divergence = div;
    }
  } else if (observed.size() >= st->own.size() &&
             std::equal(st->own.begin(), st->own.end(),
                        observed.end() - static_cast<long>(st->own.size()))) {
    // First consistent read: everything before the own-append suffix is
    // the external base this transaction claims to have started from.
    out.kind = ListReadOutcome::Kind::kResolvedBase;
    out.resolved.assign(observed.begin(),
                        observed.end() - static_cast<long>(st->own.size()));
  } else {
    // The observation does not even end with the transaction's own
    // appends: internally inconsistent regardless of the frontier. The
    // divergence index is reported in observed-list coordinates, aligned
    // so the own suffix would occupy the tail.
    out.kind = ListReadOutcome::Kind::kIntMismatch;
    out.expected_len = static_cast<int64_t>(st->own.size());
    out.got_len = static_cast<int64_t>(observed.size());
    if (observed.size() < st->own.size()) {
      out.divergence = static_cast<int64_t>(observed.size());
    } else {
      size_t off = observed.size() - st->own.size();
      out.divergence = static_cast<int64_t>(off) +
                       FirstListDivergence(st->own.data(), st->own.size(),
                                           observed.data() + off,
                                           st->own.size());
    }
  }
  st->base_known = true;
  st->base = observed;
  st->own.clear();
  return out;
}

}  // namespace chronos

#endif  // CHRONOS_CORE_LIST_REPLAY_H_
