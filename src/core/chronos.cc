#include "core/chronos.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "core/event_timeline.h"
#include "core/session_order.h"
#include "core/small_map.h"
#include "core/txn_ingress.h"

namespace chronos {
namespace {

// Per-transaction replay state (Algorithm 2's int_val[tid] / ext_val[tid] /
// T.wkey). Released at the transaction's commit event (prompt GC).
struct TxnState {
  SmallMap<Key, Value> int_val;  // last value read-or-written per key
  SmallMap<Key, Value> ext_val;  // last value written per key
  std::vector<Key> wkey;         // keys written (insertion order, unique)
};

// Checks the INT axiom of one transaction in isolation. INT only depends
// on program order, never on timestamps, so it is checked even for
// transactions whose timestamps are malformed. Reports feed `counted`
// too so CheckStats.violations stays equal to the sink total (the same
// convention as ChronosList's CheckListIntOnly).
void CheckIntOnly(const Transaction& t, ViolationSink* sink,
                  CountingSink* counted) {
  SmallMap<Key, Value> int_val;
  for (const Op& op : t.ops) {
    if (op.type == OpType::kWrite) {
      int_val.Put(op.key, op.value);
    } else if (op.type == OpType::kRead) {
      if (const Value* v = int_val.Find(op.key)) {
        if (*v != op.value) {
          sink->Report({ViolationType::kInt, t.tid, kTxnNone, op.key, *v,
                        op.value});
          counted->Report({ViolationType::kInt, t.tid});
        }
        // Track the read value so later internal reads compare against it,
        // mirroring int_val semantics (last read-or-written value).
        int_val.Put(op.key, op.value);
      } else {
        int_val.Put(op.key, op.value);  // external read: EXT handled later
      }
    }
  }
}

}  // namespace

Chronos::Chronos(const ChronosOptions& options, ViolationSink* sink)
    : options_(options), sink_(sink) {}

CheckStats Chronos::Check(History&& history) {
  CheckStats stats;
  stats.txns = history.txns.size();
  stats.ops = history.NumOps();
  CountingSink counted(0);

  // ---- Pre-pass: Eq. (1) and duplicate-timestamp well-formedness. ----
  Stopwatch sw;
  std::unordered_map<SessionId, SessionState> sessions;
  WellFormednessPrePass(history, sink_, &counted, &sessions,
                        [&](const Transaction& t) {
                          CheckIntOnly(t, sink_, &counted);
                        });

  // ---- Sorting stage (Algorithm 2 line 2). ----
  std::vector<Event> events = BuildSortedEvents(history);
  stats.sort_seconds = sw.Seconds();
  sw.Reset();

  // ---- Checking stage: simulate in timestamp order. ----
  std::unordered_map<Key, Value> frontier;
  std::unordered_map<Key, std::vector<TxnId>> ongoing;
  std::unordered_map<TxnId, TxnState> live;
  live.reserve(1024);

  uint64_t commits_since_gc = 0;
  double gc_seconds = 0;
  std::vector<uint32_t> committed_since_gc;

  for (const Event& ev : events) {
    Transaction& t = history.txns[ev.txn_index];
    if (ev.kind == EventKind::kStart) {
      // SESSION (Algorithm 2 lines 7-10).
      SessionState& ss = sessions[t.sid];
      AdvanceOverSkipped(&ss);
      if (static_cast<int64_t>(t.sno) != ss.last_sno + 1 ||
          t.start_ts < ss.last_cts) {
        sink_->Report({ViolationType::kSession, t.tid, kTxnNone, 0,
                       static_cast<Value>(ss.last_sno + 1),
                       static_cast<Value>(t.sno)});
        counted.Report({ViolationType::kSession, t.tid});
      }
      ss.last_sno = static_cast<int64_t>(t.sno);
      ss.last_cts = t.commit_ts;

      // INT and EXT per operation (lines 11-22).
      TxnState& st = live[t.tid];
      for (const Op& op : t.ops) {
        if (op.type == OpType::kRead) {
          if (Value* iv = st.int_val.Find(op.key)) {
            if (*iv != op.value) {
              sink_->Report({ViolationType::kInt, t.tid, kTxnNone, op.key,
                             *iv, op.value});
              counted.Report({ViolationType::kInt, t.tid});
            }
            st.int_val.Put(op.key, op.value);
          } else {
            auto fit = frontier.find(op.key);
            Value expect = fit == frontier.end() ? kValueInit : fit->second;
            if (op.value != expect) {
              sink_->Report({ViolationType::kExt, t.tid, kTxnNone, op.key,
                             expect, op.value});
              counted.Report({ViolationType::kExt, t.tid});
            }
            st.int_val.Put(op.key, op.value);
          }
        } else if (op.type == OpType::kWrite) {
          if (!st.ext_val.Find(op.key)) st.wkey.push_back(op.key);
          st.ext_val.Put(op.key, op.value);
          st.int_val.Put(op.key, op.value);
          auto& og = ongoing[op.key];
          if (std::find(og.begin(), og.end(), t.tid) == og.end()) {
            og.push_back(t.tid);
          }
        }
      }
    } else {
      // Commit event: NOCONFLICT and frontier update (lines 23-33).
      auto lit = live.find(t.tid);
      if (lit == live.end()) continue;  // defensive; start always precedes
      TxnState& st = lit->second;
      for (Key k : st.wkey) {
        auto& og = ongoing[k];
        og.erase(std::remove(og.begin(), og.end(), t.tid), og.end());
        for (TxnId other : og) {
          sink_->Report({ViolationType::kNoConflict, t.tid, other, k});
          counted.Report({ViolationType::kNoConflict, t.tid});
        }
        frontier[k] = *st.ext_val.Find(k);
      }
      live.erase(lit);                    // prompt GC of int_val/ext_val
      committed_since_gc.push_back(ev.txn_index);

      if (options_.gc_every_n_txns > 0 &&
          ++commits_since_gc >= options_.gc_every_n_txns) {
        Stopwatch gc_sw;
        commits_since_gc = 0;
        ++stats.gc_passes;
        // Release operation storage of processed transactions (T <- T\{T})
        // and shed container slack so memory actually returns to the OS
        // allocator (Fig. 10's sawtooth).
        for (uint32_t idx : committed_since_gc) {
          Transaction& done = history.txns[idx];
          done.ops.clear();
          done.ops.shrink_to_fit();
          done.list_args.clear();
          done.list_args.shrink_to_fit();
        }
        committed_since_gc.clear();
        committed_since_gc.shrink_to_fit();
        std::unordered_map<Key, std::vector<TxnId>> compact_ongoing;
        for (auto& [k, v] : ongoing) {
          if (!v.empty()) compact_ongoing.emplace(k, std::move(v));
        }
        ongoing = std::move(compact_ongoing);
#if defined(__GLIBC__)
        if (options_.trim_on_gc) malloc_trim(0);
#endif
        gc_seconds += gc_sw.Seconds();
      }
    }
  }

  stats.check_seconds = sw.Seconds() - gc_seconds;
  stats.gc_seconds = gc_seconds;
  stats.violations = counted.total();
  return stats;
}

CheckStats Chronos::CheckHistory(const History& history, ViolationSink* sink) {
  Chronos checker(ChronosOptions{}, sink);
  History copy = history;
  return checker.Check(std::move(copy));
}

CheckStats ChronosSer::Check(History&& history) {
  CheckStats stats;
  stats.txns = history.txns.size();
  stats.ops = history.NumOps();
  CountingSink counted(0);

  Stopwatch sw;
  // SER replay order: commit timestamps only (start timestamps ignored).
  std::vector<uint32_t> order(history.txns.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Transaction &ta = history.txns[a], &tb = history.txns[b];
    if (ta.commit_ts != tb.commit_ts) return ta.commit_ts < tb.commit_ts;
    return ta.tid < tb.tid;
  });
  {
    std::unordered_set<Timestamp> seen;
    seen.reserve(history.txns.size());
    for (const Transaction& t : history.txns) {
      if (!seen.insert(t.commit_ts).second) {
        sink_->Report({ViolationType::kTsDuplicate, t.tid});
        counted.Report({ViolationType::kTsDuplicate, t.tid});
      }
    }
  }
  stats.sort_seconds = sw.Seconds();
  sw.Reset();

  std::unordered_map<Key, Value> frontier;
  std::unordered_map<SessionId, int64_t> last_sno;
  SmallMap<Key, Value> int_val;

  for (uint32_t idx : order) {
    const Transaction& t = history.txns[idx];
    auto [sit, inserted] = last_sno.emplace(t.sid, -1);
    // SESSION under SER: commit order must extend session order, i.e. the
    // per-session sequence numbers appear consecutively in replay order.
    if (static_cast<int64_t>(t.sno) != sit->second + 1) {
      sink_->Report({ViolationType::kSession, t.tid, kTxnNone, 0,
                     static_cast<Value>(sit->second + 1),
                     static_cast<Value>(t.sno)});
      counted.Report({ViolationType::kSession, t.tid});
    }
    sit->second = static_cast<int64_t>(t.sno);

    int_val.Clear();
    for (const Op& op : t.ops) {
      if (op.type == OpType::kRead) {
        if (Value* iv = int_val.Find(op.key)) {
          if (*iv != op.value) {
            sink_->Report({ViolationType::kInt, t.tid, kTxnNone, op.key, *iv,
                           op.value});
            counted.Report({ViolationType::kInt, t.tid});
          }
        } else {
          auto fit = frontier.find(op.key);
          Value expect = fit == frontier.end() ? kValueInit : fit->second;
          if (op.value != expect) {
            sink_->Report({ViolationType::kExt, t.tid, kTxnNone, op.key,
                           expect, op.value});
            counted.Report({ViolationType::kExt, t.tid});
          }
        }
        int_val.Put(op.key, op.value);
      } else if (op.type == OpType::kWrite) {
        int_val.Put(op.key, op.value);
        frontier[op.key] = op.value;  // applied in commit order
      }
    }
  }

  stats.check_seconds = sw.Seconds();
  stats.violations = counted.total();
  return stats;
}

CheckStats ChronosSer::CheckHistory(const History& history,
                                    ViolationSink* sink) {
  ChronosSer checker(sink);
  History copy = history;
  return checker.Check(std::move(copy));
}

CheckStats ChronosMixed::Check(History&& history) {
  CheckStats stats;
  stats.txns = history.txns.size();
  stats.ops = history.NumOps();
  CountingSink counted(0);
  auto report = [&](const Violation& v) {
    sink_->Report(v);
    counted.Report({v.type, v.tid});
  };

  Stopwatch sw;
  const size_t n = history.txns.size();
  // Canonical admission order: commit timestamps, ties by tid — the
  // arrival order every schedule-invariant verdict is independent of.
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Transaction &ta = history.txns[a], &tb = history.txns[b];
    if (ta.commit_ts != tb.commit_ts) return ta.commit_ts < tb.commit_ts;
    return ta.tid < tb.tid;
  });
  stats.sort_seconds = sw.Seconds();
  sw.Reset();

  // ---- Admission replay: Eq. (1) and the per-level dup-gate. ----
  enum : uint8_t { kDropped = 0, kIntOnly = 1, kAdmitted = 2 };
  std::vector<uint8_t> admit(n, kDropped);
  std::unordered_set<Timestamp> used;
  used.reserve(n * 2);
  std::unordered_map<SessionId, SessionState> sessions;
  for (uint32_t idx : order) {
    const Transaction& t = history.txns[idx];
    const IsolationLevel lv = EffectiveLevel(t, default_mode_);
    if (lv == IsolationLevel::kSi && !t.TimestampsOrdered()) {
      report({ViolationType::kTsOrder, t.tid, kTxnNone, 0,
              static_cast<Value>(t.start_ts),
              static_cast<Value>(t.commit_ts)});
      sessions[t.sid].skipped_snos.insert(t.sno);
      admit[idx] = kIntOnly;
      continue;
    }
    bool dup = false;
    if (lv == IsolationLevel::kSer) {
      dup = !used.insert(t.commit_ts).second;
    } else if (lv == IsolationLevel::kSi) {
      dup = used.count(t.start_ts) || used.count(t.commit_ts);
      if (!dup) {
        used.insert(t.start_ts);
        used.insert(t.commit_ts);
      }
    }  // RC/RA: no registration, never gated here
    if (dup) {
      report({ViolationType::kTsDuplicate, t.tid});
      sessions[t.sid].skipped_snos.insert(t.sno);
      continue;
    }
    admit[idx] = kAdmitted;
  }

  // ---- INT + footprint classification (per-txn, order-free). ----
  auto classify_report = [&](Timestamp, const Violation& v) { report(v); };
  std::vector<ClassifiedOps> footprints(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (admit[i] == kAdmitted) {
      ClassifyOps(history.txns[i], classify_report, &footprints[i]);
    } else if (admit[i] == kIntOnly) {
      ClassifyOps(history.txns[i], classify_report, nullptr);
    }
  }

  // ---- SESSION: per session in sequence-number order, with the
  // per-level ordering rule of TxnIngress::CheckSession. ----
  {
    std::unordered_map<SessionId, std::vector<uint32_t>> by_session;
    for (uint32_t i = 0; i < n; ++i) by_session[history.txns[i].sid].push_back(i);
    for (auto& [sid, idxs] : by_session) {
      std::sort(idxs.begin(), idxs.end(), [&](uint32_t a, uint32_t b) {
        const Transaction &ta = history.txns[a], &tb = history.txns[b];
        if (ta.sno != tb.sno) return ta.sno < tb.sno;
        return ta.tid < tb.tid;
      });
      SessionState& ss = sessions[sid];
      for (uint32_t idx : idxs) {
        if (admit[idx] != kAdmitted) continue;  // skipped_snos already set
        const Transaction& t = history.txns[idx];
        const IsolationLevel lv = EffectiveLevel(t, default_mode_);
        AdvanceOverSkipped(&ss);
        const bool si = lv == IsolationLevel::kSi;
        Timestamp order_ts = si ? t.start_ts : t.commit_ts;
        bool bad_order = si ? order_ts < ss.last_cts
                            : order_ts <= ss.last_cts && ss.last_sno >= 0;
        if (static_cast<int64_t>(t.sno) != ss.last_sno + 1 || bad_order) {
          report({ViolationType::kSession, t.tid, kTxnNone, 0,
                  static_cast<Value>(ss.last_sno + 1),
                  static_cast<Value>(t.sno)});
        }
        ss.last_sno = static_cast<int64_t>(t.sno);
        ss.last_cts = t.commit_ts;
      }
    }
  }

  // ---- Final version chains from admitted final writes. A per-key
  // commit-ts collision (possible only with an unregistered RC/RA
  // writer in the pair) mirrors the engine's install-time TS-DUP. ----
  struct ChainVersion {
    Timestamp ts;
    Value value;
    TxnId tid;
  };
  std::unordered_map<Key, std::vector<ChainVersion>> chains;
  for (uint32_t idx : order) {
    if (admit[idx] != kAdmitted) continue;
    const Transaction& t = history.txns[idx];
    for (const KeyEngine::WriteReq& w : footprints[idx].writes) {
      auto& chain = chains[w.key];
      bool collide = false;
      for (const ChainVersion& v : chain) {
        if (v.ts == t.commit_ts) {
          collide = true;
          break;
        }
      }
      if (collide) {
        report({ViolationType::kTsDuplicate, t.tid, kTxnNone, w.key});
      } else {
        chain.push_back({t.commit_ts, w.value, t.tid});
      }
    }
  }
  for (auto& [key, chain] : chains) {
    std::sort(chain.begin(), chain.end(),
              [](const ChainVersion& a, const ChainVersion& b) {
                return a.ts < b.ts;
              });
  }

  // ---- EXT against the final chains, per reader level. ----
  auto frontier_at = [&](Key key, Timestamp view, bool inclusive,
                         TxnId skip_tid) -> VersionedKv::Lookup {
    VersionedKv::Lookup best;
    auto it = chains.find(key);
    if (it == chains.end()) return best;
    for (const ChainVersion& v : it->second) {
      if (inclusive ? v.ts > view : v.ts >= view) break;
      if (v.tid == skip_tid) continue;
      best = VersionedKv::Lookup{v.value, v.tid, v.ts};
    }
    return best;
  };
  for (uint32_t idx : order) {
    if (admit[idx] != kAdmitted) continue;
    const Transaction& t = history.txns[idx];
    const IsolationLevel lv = EffectiveLevel(t, default_mode_);
    const bool si = lv == IsolationLevel::kSi;
    const Timestamp view = si ? t.start_ts : t.commit_ts;
    for (const KeyEngine::ExtReadReq& r : footprints[idx].ext_reads) {
      bool ok;
      if (MembershipLevel(lv)) {
        ok = r.observed == kValueInit;
        if (!ok) {
          auto it = chains.find(r.key);
          if (it != chains.end()) {
            for (const ChainVersion& v : it->second) {
              if (v.ts >= view) break;
              if (v.tid != t.tid && v.value == r.observed) {
                ok = true;
                break;
              }
            }
          }
        }
      } else {
        ok = frontier_at(r.key, view, si, t.tid).value == r.observed;
      }
      if (!ok) {
        // Attribution mirrors KeyEngine::FinalizeTxn: the raw frontier
        // at the view (the reader's own version not excluded).
        VersionedKv::Lookup cur = frontier_at(r.key, view, si, kTxnNone);
        report({ViolationType::kExt, t.tid, cur.tid, r.key, cur.value,
                r.observed});
      }
    }
  }

  // ---- NOCONFLICT: pairwise SI-vs-SI write-interval overlap. ----
  {
    struct Interval {
      Timestamp start, end;
      TxnId tid;
    };
    std::unordered_map<Key, std::vector<Interval>> intervals;
    for (uint32_t idx : order) {
      if (admit[idx] != kAdmitted) continue;
      const Transaction& t = history.txns[idx];
      if (EffectiveLevel(t, default_mode_) != IsolationLevel::kSi) continue;
      SmallMap<Key, bool> seen_key;
      auto add = [&](Key key) {
        if (seen_key.Find(key)) return;
        seen_key.Put(key, true);
        intervals[key].push_back({t.start_ts, t.commit_ts, t.tid});
      };
      for (const KeyEngine::WriteReq& w : footprints[idx].writes) add(w.key);
      for (const KeyEngine::AppendReq& a : footprints[idx].appends) {
        add(a.key);
      }
    }
    for (const auto& [key, ivs] : intervals) {
      for (size_t i = 0; i < ivs.size(); ++i) {
        for (size_t j = i + 1; j < ivs.size(); ++j) {
          const Interval &a = ivs[i], &b = ivs[j];
          if (a.start <= b.end && a.end >= b.start) {
            TxnId first = a.end < b.end ? a.tid : b.tid;
            TxnId second = first == a.tid ? b.tid : a.tid;
            report({ViolationType::kNoConflict, first, second, key});
          }
        }
      }
    }
  }

  stats.check_seconds = sw.Seconds();
  stats.violations = counted.total();
  return stats;
}

CheckStats ChronosMixed::CheckHistory(const History& history,
                                      CheckMode default_mode,
                                      ViolationSink* sink) {
  ChronosMixed checker(default_mode, sink);
  History copy = history;
  return checker.Check(std::move(copy));
}

}  // namespace chronos
