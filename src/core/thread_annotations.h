// Clang thread-safety annotations (-Wthread-safety) for the concurrent
// parts of the pipeline, plus the annotated synchronization primitives
// the analysis needs to see through. Everything here compiles to nothing
// under non-Clang compilers; under Clang with -Wthread-safety the
// annotations turn the ownership rules that ROADMAP documents in prose
// (single-producer rings, caller-thread admission, barrier-gated shard
// state) into compile errors.
//
// Two kinds of capability are used:
//
//   - chronos::Mutex / chronos::MutexLock / chronos::CondVar: thin
//     annotated wrappers over the std primitives. The std types carry no
//     annotations under libstdc++, so GUARDED_BY members locked through
//     a bare std::lock_guard would produce false positives; routing all
//     lock acquisition through these wrappers is what lets the analysis
//     verify it. CondVar deliberately has no predicate overload: a
//     lambda does not inherit the caller's lock set, so wait loops are
//     written as explicit `while (!pred) cv.Wait(lock);` in the method
//     body where the analysis can see the lock.
//
//   - chronos::ThreadRole / chronos::AssumeRole: zero-size "role"
//     capabilities modelling thread ownership where there is no lock by
//     design (the SPSC ring sides, the sequencer-owned and shard-worker-
//     owned state of ShardedAion, the DurableRunner driver thread).
//     A function REQUIRES the role of the state it touches; a thread's
//     entry loop (or a caller standing at a quiescent barrier) acquires
//     it with a scoped AssumeRole naming the same object expression.
//     AssumeRole is purely static — it has no runtime effect and cannot
//     detect two threads assuming one role — but it forces every access
//     site to carry a visible, greppable ownership marker, which is what
//     chronos_lint's ring-single-producer rule then restricts to the
//     approved functions (see ROADMAP "Static analysis").
#ifndef CHRONOS_CORE_THREAD_ANNOTATIONS_H_
#define CHRONOS_CORE_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define CHRONOS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CHRONOS_THREAD_ANNOTATION_(x)  // no-op on non-Clang
#endif

#define CHRONOS_CAPABILITY(x) CHRONOS_THREAD_ANNOTATION_(capability(x))
#define CHRONOS_SCOPED_CAPABILITY CHRONOS_THREAD_ANNOTATION_(scoped_lockable)
#define CHRONOS_GUARDED_BY(x) CHRONOS_THREAD_ANNOTATION_(guarded_by(x))
#define CHRONOS_PT_GUARDED_BY(x) CHRONOS_THREAD_ANNOTATION_(pt_guarded_by(x))
#define CHRONOS_REQUIRES(...) \
  CHRONOS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CHRONOS_REQUIRES_SHARED(...) \
  CHRONOS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define CHRONOS_ACQUIRE(...) \
  CHRONOS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CHRONOS_RELEASE(...) \
  CHRONOS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CHRONOS_EXCLUDES(...) \
  CHRONOS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define CHRONOS_RETURN_CAPABILITY(x) \
  CHRONOS_THREAD_ANNOTATION_(lock_returned(x))
#define CHRONOS_NO_THREAD_SAFETY_ANALYSIS \
  CHRONOS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace chronos {

/// Annotated std::mutex. Prefer MutexLock over manual Lock/Unlock.
class CHRONOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CHRONOS_ACQUIRE() { mu_.lock(); }
  void Unlock() CHRONOS_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over an annotated Mutex (std::unique_lock underneath so
/// CondVar can wait on it).
class CHRONOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CHRONOS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() CHRONOS_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over an annotated Mutex. Wait/WaitFor atomically
/// release and reacquire the lock; the analysis does not model that
/// window, which is sound as long as callers re-check their predicate in
/// a loop (the only supported idiom — there is no predicate overload on
/// purpose, see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  template <class Rep, class Period>
  void WaitFor(MutexLock& lock, const std::chrono::duration<Rep, Period>& d) {
    cv_.wait_for(lock.lock_, d);
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A zero-size capability standing for "this thread owns that state".
/// Declared as a (usually public) member next to the state it guards;
/// see the header comment for the acquisition discipline.
class CHRONOS_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

/// Statically assumes a ThreadRole for the current scope. Use at a
/// thread's entry loop (the thread IS the owner) or, with a comment
/// naming the happens-before edge, where a quiescent barrier hands
/// ownership across threads (e.g. ShardedAion's WaitAll).
class CHRONOS_SCOPED_CAPABILITY AssumeRole {
 public:
  explicit AssumeRole(const ThreadRole& role) CHRONOS_ACQUIRE(role) {
    (void)role;
  }
  ~AssumeRole() CHRONOS_RELEASE() {}

  AssumeRole(const AssumeRole&) = delete;
  AssumeRole& operator=(const AssumeRole&) = delete;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_THREAD_ANNOTATIONS_H_
