// The sorted start/commit event sequence that Chronos replays (Algorithm 2
// line 2) and that Aion maintains incrementally (Sec. III-C4: insertion
// into an already-sorted structure in logarithmic time).
#ifndef CHRONOS_CORE_EVENT_TIMELINE_H_
#define CHRONOS_CORE_EVENT_TIMELINE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "core/types.h"

namespace chronos {

/// Kind of a timeline event. Start events sort before commit events at
/// equal timestamps so that a read-only transaction with
/// start_ts == commit_ts is processed start-first.
enum class EventKind : uint8_t { kStart = 0, kCommit = 1 };

/// One replay event.
struct Event {
  Timestamp ts = 0;
  EventKind kind = EventKind::kStart;
  uint32_t txn_index = 0;  ///< index into the history's txns vector

  friend bool operator<(const Event& a, const Event& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.txn_index < b.txn_index;
  }
};

/// Builds the fully sorted event vector for an offline history.
inline std::vector<Event> BuildSortedEvents(const History& h) {
  std::vector<Event> events;
  events.reserve(h.txns.size() * 2);
  for (uint32_t i = 0; i < h.txns.size(); ++i) {
    const Transaction& t = h.txns[i];
    if (!t.TimestampsOrdered()) continue;  // reported separately; not replayed
    events.push_back({t.start_ts, EventKind::kStart, i});
    events.push_back({t.commit_ts, EventKind::kCommit, i});
  }
  std::sort(events.begin(), events.end());
  return events;
}

/// Aion's incrementally maintained, always-sorted event index. Backed by a
/// balanced BST keyed by (ts, kind); lookups of "events in [a, b]" and
/// "events after t" are O(log N + answer).
class EventTimeline {
 public:
  struct Entry {
    EventKind kind;
    TxnId tid;
  };
  using Map = std::map<std::pair<Timestamp, uint8_t>, Entry>;
  using const_iterator = Map::const_iterator;

  /// Inserts both events of a transaction. Returns false (and inserts
  /// nothing) if either timestamp collides with an existing *distinct*
  /// transaction's event at the same (ts, kind) slot.
  bool Insert(const Transaction& t) {
    auto ks = std::make_pair(t.start_ts, uint8_t(EventKind::kStart));
    auto kc = std::make_pair(t.commit_ts, uint8_t(EventKind::kCommit));
    if (map_.count(ks) || map_.count(kc)) return false;
    map_.emplace(ks, Entry{EventKind::kStart, t.tid});
    map_.emplace(kc, Entry{EventKind::kCommit, t.tid});
    return true;
  }

  /// True if some event of a distinct transaction already uses `ts`.
  bool HasTimestamp(Timestamp ts) const {
    auto it = map_.lower_bound({ts, 0});
    return it != map_.end() && it->first.first == ts;
  }

  /// First event with timestamp >= ts.
  const_iterator LowerBound(Timestamp ts) const {
    return map_.lower_bound({ts, 0});
  }
  /// First event with timestamp > ts.
  const_iterator UpperBound(Timestamp ts) const {
    return map_.upper_bound({ts, uint8_t(255)});
  }
  const_iterator begin() const { return map_.begin(); }
  const_iterator end() const { return map_.end(); }
  size_t size() const { return map_.size(); }

  /// Removes all events with timestamp <= ts (garbage collection).
  /// Returns the number of removed events.
  size_t EraseUpTo(Timestamp ts) {
    auto it = map_.upper_bound({ts, uint8_t(255)});
    size_t n = 0;
    for (auto i = map_.begin(); i != it;) {
      i = map_.erase(i);
      ++n;
    }
    return n;
  }

 private:
  Map map_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_EVENT_TIMELINE_H_
