#include "core/violation.h"

#include <sstream>
#include <tuple>

namespace chronos {

std::string ToString(const Op& op) {
  std::ostringstream os;
  switch (op.type) {
    case OpType::kRead: os << "R(" << op.key << "," << op.value << ")"; break;
    case OpType::kWrite: os << "W(" << op.key << "," << op.value << ")"; break;
    case OpType::kAppend: os << "A(" << op.key << "," << op.value << ")"; break;
    case OpType::kReadList: os << "L(" << op.key << ",#" << op.list_index << ")"; break;
  }
  return os.str();
}

const char* IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kUnspecified: return "default";
    case IsolationLevel::kSer: return "ser";
    case IsolationLevel::kSi: return "si";
    case IsolationLevel::kRc: return "rc";
    case IsolationLevel::kRa: return "ra";
  }
  return "?";
}

bool IsolationLevelFromName(const std::string& name, IsolationLevel* out) {
  if (name == "ser") *out = IsolationLevel::kSer;
  else if (name == "si") *out = IsolationLevel::kSi;
  else if (name == "rc") *out = IsolationLevel::kRc;
  else if (name == "ra") *out = IsolationLevel::kRa;
  else return false;
  return true;
}

bool HistoryHasLevelTags(const History& h) {
  for (const Transaction& t : h.txns) {
    if (t.iso != IsolationLevel::kUnspecified) return true;
  }
  return false;
}

const char* ViolationTypeName(ViolationType t) {
  switch (t) {
    case ViolationType::kSession: return "SESSION";
    case ViolationType::kInt: return "INT";
    case ViolationType::kExt: return "EXT";
    case ViolationType::kNoConflict: return "NOCONFLICT";
    case ViolationType::kTsOrder: return "TS-ORDER";
    case ViolationType::kTsDuplicate: return "TS-DUP";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::ostringstream os;
  os << ViolationTypeName(type) << " txn=" << tid;
  if (other_tid != kTxnNone) os << " other=" << other_tid;
  os << " key=" << key;
  if (expected != kValueBottom) os << " expected=" << expected;
  if (got != kValueBottom) os << " got=" << got;
  if (divergence >= 0) os << " divergence=" << divergence;
  return os.str();
}

bool operator==(const Violation& a, const Violation& b) {
  return a.type == b.type && a.tid == b.tid && a.other_tid == b.other_tid &&
         a.key == b.key && a.expected == b.expected && a.got == b.got &&
         a.divergence == b.divergence;
}

bool ViolationLess(const Violation& a, const Violation& b) {
  auto key = [](const Violation& v) {
    return std::make_tuple(static_cast<uint8_t>(v.type), v.tid, v.other_tid,
                           v.key, v.expected, v.got, v.divergence);
  };
  return key(a) < key(b);
}

void CountingSink::Report(const Violation& v) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  ++by_type_[static_cast<uint8_t>(v.type)];
  if (first_.size() < keep_first_) first_.push_back(v);
}

size_t CountingSink::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t CountingSink::count(ViolationType t) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_type_.find(static_cast<uint8_t>(t));
  return it == by_type_.end() ? 0 : it->second;
}

std::vector<Violation> CountingSink::first() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_;
}

void CountingSink::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = 0;
  by_type_.clear();
  first_.clear();
}

}  // namespace chronos
