// Byte-level serialization primitives for the checkpoint subsystem
// (online/checkpoint.h): a little-endian append-only writer and a
// bounds-checked reader over one contiguous buffer, plus the FNV-1a
// checksum every checkpoint section and WAL record carries. Lives in
// core/ so the per-structure Serialize/Deserialize hooks (VersionedKv,
// ListKv, OngoingIndex, SpillStore, FlipFlopStats, KeyEngine,
// TxnIngress) need no dependency on the online layer.
//
// The format has no self-description: reader and writer must agree on
// the field sequence, and every container is length-prefixed with a
// u64. A reader that runs off the end (torn section, corrupted length)
// latches !ok() and every subsequent read returns zeros — callers check
// ok() once at the end instead of after each field.
#ifndef CHRONOS_CORE_STATE_IO_H_
#define CHRONOS_CORE_STATE_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace chronos {

inline constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

/// FNV-1a over `n` bytes, chainable through `seed`.
inline uint64_t Fnv1a(const void* data, size_t n, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Appends fixed-width little-endian fields to a growable buffer.
class StateWriter {
 public:
  void U64(uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, 8);
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void U32(uint32_t v) { U64(v); }
  void U8(uint8_t v) { U64(v); }
  void Bytes(const void* data, size_t n) {
    U64(n);
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads the writer's field sequence back; latches !ok() on underrun.
class StateReader {
 public:
  StateReader(const char* data, size_t n) : p_(data), end_(data + n) {}
  explicit StateReader(const std::string& buf)
      : StateReader(buf.data(), buf.size()) {}

  uint64_t U64() {
    if (end_ - p_ < 8) {
      ok_ = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    }
    p_ += 8;
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  uint32_t U32() { return static_cast<uint32_t>(U64()); }
  uint8_t U8() { return static_cast<uint8_t>(U64()); }
  std::string Bytes() {
    uint64_t n = U64();
    if (!ok_ || static_cast<uint64_t>(end_ - p_) < n) {
      ok_ = false;
      return {};
    }
    std::string out(p_, n);
    p_ += n;
    return out;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_STATE_IO_H_
