// The transaction-scoped half of AION: SESSION order, Eq. (1)
// well-formedness, timestamp uniqueness, INT replay/classification, the
// EXT timeout clock, and the global GC watermark decision. The ingress
// never touches key-scoped state; it classifies each arrival into its
// per-key footprint (external reads + final writes) and hands that to a
// Dispatch, which either calls a single KeyEngine inline (the monolithic
// `Aion`) or fans it out to key-partitioned engine shards
// (`ShardedAion`). Because every Dispatch call is issued from one thread
// in a single total order, and engines only consult key-local state, any
// per-shard FIFO delivery of these calls reproduces the monolith's
// verdicts exactly.
#ifndef CHRONOS_CORE_TXN_INGRESS_H_
#define CHRONOS_CORE_TXN_INGRESS_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/key_engine.h"
#include "core/online_checker.h"
#include "core/session_order.h"
#include "core/types.h"

namespace chronos {

/// A transaction's per-key footprint, classified by INT replay:
/// `ext_reads` holds the first read of each key not covered by an
/// earlier internal op (op order); `writes` holds each written key once
/// (first-write order) with the last value written to it. List
/// operations classify the same way (core/list_replay.h): `list_reads`
/// holds each key's resolved external base prefix (at most one per key,
/// from its first consistent list read) and `appends` each appended key
/// once (first-append order) with the transaction's full append delta.
struct ClassifiedOps {
  std::vector<KeyEngine::ExtReadReq> ext_reads;
  std::vector<KeyEngine::WriteReq> writes;
  std::vector<KeyEngine::ListReadReq> list_reads;
  std::vector<KeyEngine::AppendReq> appends;
};

/// Replays `t`'s operations, reporting INT violations through `report`
/// (tagged with t.commit_ts) and, when `out` is non-null, producing the
/// per-key footprint. Pure per-transaction computation: no key state.
void ClassifyOps(const Transaction& t, const KeyEngine::ReportFn& report,
                 ClassifiedOps* out);

class TxnIngress {
 public:
  /// Receiver of the key-scoped work the ingress produces. Calls arrive
  /// in one total order from the ingress's thread; implementations may
  /// execute them inline or forward them (per key-partition FIFO) to
  /// worker threads.
  class Dispatch {
   public:
    virtual ~Dispatch() = default;
    /// One arrival's footprint. `register_reads` is false for a
    /// replayed tid (reads are evaluated but not retained).
    virtual void DispatchTxn(const KeyEngine::TxnCtx& ctx,
                             ClassifiedOps&& ops, bool register_reads,
                             uint64_t now_ms) = 0;
    /// `tid`'s EXT timeout fired: finalize its reads.
    virtual void DispatchFinalize(TxnId tid) = 0;
    /// GC to `watermark` (strictly increasing across calls, safe per the
    /// oldest-unfinalized-view clamp).
    virtual void DispatchGc(Timestamp watermark) = 0;
  };

  /// The cross-transaction verdict of admitting one arrival, everything
  /// OnTransaction decides *except* the per-txn INT replay/classification
  /// (which is pure and may run on another thread, see ClassifyOps):
  /// - kDrop: duplicate timestamp — no INT reports, no dispatch.
  /// - kIntOnly: Eq. (1) violation — INT replay still applies, but the
  ///   footprint is not dispatched.
  /// - kDispatch: dispatch the classified footprint with `ctx`;
  ///   `register_reads` is false for a replayed tid.
  struct Admission {
    enum class Kind : uint8_t { kDrop, kIntOnly, kDispatch };
    Kind kind = Kind::kDrop;
    bool register_reads = false;
    KeyEngine::TxnCtx ctx{};
    uint64_t now_ms = 0;  ///< the clamped clock DispatchTxn must carry
  };

  TxnIngress(const CheckerOptions& options, CheckerStats* stats,
             KeyEngine::ReportFn report, Dispatch* dispatch);

  TxnIngress(const TxnIngress&) = delete;
  TxnIngress& operator=(const TxnIngress&) = delete;

  void OnTransaction(const Transaction& t, uint64_t now_ms);
  /// The admission half of OnTransaction: fires deadlines, runs the
  /// Eq. (1)/duplicate-timestamp/SESSION checks, registers the record,
  /// and says what to do with the (separately computed) footprint.
  /// `OnTransaction(t, now)` == `AdmitTxn(t, now)` + ClassifyOps +
  /// DispatchTxn per the returned kind; callers that pre-stage
  /// classification on worker threads use this entry point directly.
  Admission AdmitTxn(const Transaction& t, uint64_t now_ms);
  void AdvanceTime(uint64_t now_ms);
  /// Clamps to the safe watermark and dispatches GC; returns the
  /// effective watermark used.
  Timestamp Gc(Timestamp up_to);
  void GcToLiveTarget(size_t target);
  /// Finalizes every outstanding transaction (end of stream).
  void Finish();

  Timestamp watermark() const { return watermark_; }
  size_t live_txns() const { return txns_.size(); }
  size_t used_ts_count() const { return used_ts_.size(); }

  /// Checkpoint hooks: byte-deterministic dump of the transaction-scoped
  /// state (hash containers sorted, heaps drained in order) and its
  /// inverse. The options/report/dispatch wiring is reconstructed by the
  /// caller, not serialized.
  void Serialize(StateWriter* w) const;
  bool Deserialize(StateReader* r);

 private:
  /// Global (cross-key) record of a live transaction; the ext-read
  /// payload lives in the key engines.
  struct TxnRec {
    Timestamp view_ts = 0;  // start_ts (SI) or commit_ts (SER/RC/RA)
    Timestamp commit_ts = 0;
    bool finalized = false;
  };

  void CheckSession(const Transaction& t, IsolationLevel lv);
  void FireDeadlines(uint64_t now_ms);
  void FinalizeRec(TxnId tid);
  // Oldest view among unfinalized transactions (lazily drops finalized
  // views off the heap top). nullopt when everything is finalized.
  std::optional<Timestamp> OldestUnfinalizedView();

  CheckerOptions options_;
  CheckerStats* stats_;
  KeyEngine::ReportFn report_;
  Dispatch* dispatch_;

  std::unordered_map<TxnId, TxnRec> txns_;
  // (cts, tid) of live txns, sorted by cts (append-mostly flat map).
  std::vector<std::pair<Timestamp, TxnId>> commit_index_;
  // Unfinalized read views: min-heap plus a lazy tombstone set.
  std::priority_queue<Timestamp, std::vector<Timestamp>, std::greater<>>
      view_heap_;
  std::unordered_set<Timestamp> finalized_views_;
  // Timestamp-uniqueness tracking: O(1) membership plus a min-heap so GC
  // can drop everything below the watermark in O(dropped log n).
  std::unordered_set<Timestamp> used_ts_;
  std::priority_queue<Timestamp, std::vector<Timestamp>, std::greater<>>
      used_ts_min_;
  std::unordered_map<SessionId, SessionState> sessions_;
  // (deadline, tid) FIFO for EXT timeouts: arrival time is non-decreasing
  // and the timeout is constant, so deadlines are already sorted.
  std::deque<std::pair<uint64_t, TxnId>> deadlines_;
  Timestamp watermark_ = kTsMin;
  uint64_t last_now_ms_ = 0;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_TXN_INGRESS_H_
