#include "core/chronos_list.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/event_timeline.h"
#include "core/list_replay.h"
#include "core/session_order.h"
#include "core/small_map.h"

namespace chronos {
namespace {

// Per-transaction replay state: the shared list classification plus the
// full append delta per key (what the commit event applies).
struct ListTxnState {
  SmallMap<Key, ListAccess> access;
  SmallMap<Key, std::vector<Value>> appends;
  std::vector<Key> wkey;  // appended keys, first-append order
};

// INT is frontier-independent, so it is checked even for transactions
// whose timestamps are malformed (mirrors CheckIntOnly for registers).
void CheckListIntOnly(const Transaction& t, ViolationSink* sink,
                      CountingSink* counted) {
  SmallMap<Key, ListAccess> access;
  for (const Op& op : t.ops) {
    if (op.type == OpType::kAppend) {
      access.FindOrInsert(op.key)->own.push_back(op.value);
    } else if (op.type == OpType::kReadList) {
      if (op.list_index >= t.list_args.size()) continue;
      ListAccess* st = access.FindOrInsert(op.key);
      ListReadOutcome oc = ClassifyListRead(st, t.list_args[op.list_index]);
      if (oc.kind == ListReadOutcome::Kind::kIntMismatch) {
        sink->Report({ViolationType::kInt, t.tid, kTxnNone, op.key,
                      static_cast<Value>(oc.expected_len),
                      static_cast<Value>(oc.got_len), oc.divergence});
        counted->Report({ViolationType::kInt, t.tid});
      }
    }
  }
}

}  // namespace

CheckStats ChronosList::Check(History&& history) {
  CheckStats stats;
  stats.txns = history.txns.size();
  stats.ops = history.NumOps();
  CountingSink counted(0);

  // ---- Pre-pass: Eq. (1) and duplicate-timestamp well-formedness
  // (shared with the register Chronos, core/session_order.h). ----
  Stopwatch sw;
  std::unordered_map<SessionId, SessionState> sessions;
  WellFormednessPrePass(history, sink_, &counted, &sessions,
                        [&](const Transaction& t) {
                          CheckListIntOnly(t, sink_, &counted);
                        });
  std::vector<Event> events = BuildSortedEvents(history);
  stats.sort_seconds = sw.Seconds();
  sw.Reset();

  // The frontier of a list key is its committed cumulative append
  // sequence. Replay processes commit events in timestamp order, so the
  // frontier only ever grows at the tail — the offline mirror of the
  // online materialized-prefix chain (core/list_kv.h), and of what the
  // database itself does (MvccStore::ApplyAppend merges by commit ts).
  std::unordered_map<Key, std::vector<Value>> frontier;
  std::unordered_map<Key, std::vector<TxnId>> ongoing;
  std::unordered_map<TxnId, ListTxnState> live;

  for (const Event& ev : events) {
    Transaction& t = history.txns[ev.txn_index];
    if (ev.kind == EventKind::kStart) {
      // SESSION (same contiguity-with-skips rule as register Chronos).
      SessionState& ss = sessions[t.sid];
      AdvanceOverSkipped(&ss);
      if (static_cast<int64_t>(t.sno) != ss.last_sno + 1 ||
          t.start_ts < ss.last_cts) {
        sink_->Report({ViolationType::kSession, t.tid, kTxnNone, 0,
                       static_cast<Value>(ss.last_sno + 1),
                       static_cast<Value>(t.sno)});
        counted.Report({ViolationType::kSession, t.tid});
      }
      ss.last_sno = static_cast<int64_t>(t.sno);
      ss.last_cts = t.commit_ts;

      ListTxnState& st = live[t.tid];
      for (const Op& op : t.ops) {
        if (op.type == OpType::kAppend) {
          st.access.FindOrInsert(op.key)->own.push_back(op.value);
          std::vector<Value>* pending = st.appends.Find(op.key);
          if (!pending) {
            pending = st.appends.FindOrInsert(op.key);
            st.wkey.push_back(op.key);
          }
          pending->push_back(op.value);
          auto& og = ongoing[op.key];
          if (std::find(og.begin(), og.end(), t.tid) == og.end()) {
            og.push_back(t.tid);
          }
        } else if (op.type == OpType::kReadList) {
          if (op.list_index >= t.list_args.size()) continue;
          const std::vector<Value>& observed = t.list_args[op.list_index];
          ListReadOutcome oc =
              ClassifyListRead(st.access.FindOrInsert(op.key), observed);
          if (oc.kind == ListReadOutcome::Kind::kIntMismatch) {
            sink_->Report({ViolationType::kInt, t.tid, kTxnNone, op.key,
                           static_cast<Value>(oc.expected_len),
                           static_cast<Value>(oc.got_len), oc.divergence});
            counted.Report({ViolationType::kInt, t.tid});
          } else if (oc.kind == ListReadOutcome::Kind::kResolvedBase) {
            // EXT: the resolved base must equal the committed cumulative
            // sequence at this transaction's snapshot. All ops replay at
            // the start event, so the frontier *is* the snapshot.
            const std::vector<Value>& snap = frontier[op.key];
            int64_t div = FirstListDivergence(snap, oc.resolved);
            if (div >= 0) {
              sink_->Report({ViolationType::kExt, t.tid, kTxnNone, op.key,
                             static_cast<Value>(snap.size()),
                             static_cast<Value>(oc.resolved.size()), div});
              counted.Report({ViolationType::kExt, t.tid});
            }
          }
        }
      }
    } else {
      auto lit = live.find(t.tid);
      if (lit == live.end()) continue;
      ListTxnState& st = lit->second;
      for (Key k : st.wkey) {
        auto& og = ongoing[k];
        og.erase(std::remove(og.begin(), og.end(), t.tid), og.end());
        for (TxnId other : og) {
          sink_->Report({ViolationType::kNoConflict, t.tid, other, k});
          counted.Report({ViolationType::kNoConflict, t.tid});
        }
        const std::vector<Value>& appends = *st.appends.Find(k);
        std::vector<Value>& f = frontier[k];
        f.insert(f.end(), appends.begin(), appends.end());
      }
      live.erase(lit);
      t.ops.clear();
      t.ops.shrink_to_fit();
      t.list_args.clear();
      t.list_args.shrink_to_fit();
    }
  }

  stats.check_seconds = sw.Seconds();
  stats.violations = counted.total();
  return stats;
}

CheckStats ChronosList::CheckHistory(const History& history,
                                     ViolationSink* sink) {
  ChronosList checker(sink);
  History copy = history;
  return checker.Check(std::move(copy));
}

}  // namespace chronos
