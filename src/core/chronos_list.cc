#include "core/chronos_list.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/event_timeline.h"
#include "core/small_map.h"

namespace chronos {
namespace {

// The frontier of a list key is represented as a shared append-only
// element sequence plus the committed prefix length. Capturing a
// snapshot is O(1) (sequence pointer + length); commits append in place
// unless a concurrent committer already extended the sequence, in which
// case the committing transaction forks its own copy (rare: that is
// exactly a NOCONFLICT violation).
struct ListFrontier {
  std::shared_ptr<std::vector<Value>> seq =
      std::make_shared<std::vector<Value>>();
  size_t committed_len = 0;
};

// Per-(transaction, key) state: the snapshot captured at first access
// plus the transaction's own appends.
struct ListState {
  std::shared_ptr<std::vector<Value>> base_seq;
  size_t base_len = 0;
};

struct ListTxnState {
  SmallMap<Key, ListState> keys;
  SmallMap<Key, std::vector<Value>> appends;
  std::vector<Key> wkey;
};

bool ObservationMatches(const ListState& st, const std::vector<Value>* appends,
                        const std::vector<Value>& observed) {
  size_t own = appends ? appends->size() : 0;
  if (observed.size() != st.base_len + own) return false;
  if (!std::equal(st.base_seq->begin(),
                  st.base_seq->begin() + static_cast<long>(st.base_len),
                  observed.begin())) {
    return false;
  }
  return own == 0 ||
         std::equal(appends->begin(), appends->end(),
                    observed.begin() + static_cast<long>(st.base_len));
}

}  // namespace

CheckStats ChronosList::Check(History&& history) {
  CheckStats stats;
  stats.txns = history.txns.size();
  stats.ops = history.NumOps();
  CountingSink counted(0);

  Stopwatch sw;
  for (const Transaction& t : history.txns) {
    if (!t.TimestampsOrdered()) {
      sink_->Report({ViolationType::kTsOrder, t.tid, kTxnNone, 0,
                     static_cast<Value>(t.start_ts),
                     static_cast<Value>(t.commit_ts)});
      counted.Report({ViolationType::kTsOrder, t.tid});
    }
  }
  std::vector<Event> events = BuildSortedEvents(history);
  stats.sort_seconds = sw.Seconds();
  sw.Reset();

  std::unordered_map<Key, ListFrontier> frontier;
  std::unordered_map<Key, std::vector<TxnId>> ongoing;
  std::unordered_map<TxnId, ListTxnState> live;
  std::unordered_map<SessionId, std::pair<int64_t, Timestamp>> sessions;

  auto state_for = [&](ListTxnState& st, Key k) -> ListState& {
    if (ListState* s = st.keys.Find(k)) return *s;
    ListFrontier& f = frontier[k];
    ListState fresh;
    fresh.base_seq = f.seq;
    fresh.base_len = f.committed_len;
    st.keys.Put(k, std::move(fresh));
    return *st.keys.Find(k);
  };

  for (const Event& ev : events) {
    Transaction& t = history.txns[ev.txn_index];
    if (ev.kind == EventKind::kStart) {
      auto [sit, fresh] = sessions.emplace(t.sid, std::make_pair(-1, kTsMin));
      (void)fresh;
      if (static_cast<int64_t>(t.sno) != sit->second.first + 1 ||
          t.start_ts < sit->second.second) {
        sink_->Report({ViolationType::kSession, t.tid, kTxnNone, 0,
                       static_cast<Value>(sit->second.first + 1),
                       static_cast<Value>(t.sno)});
        counted.Report({ViolationType::kSession, t.tid});
      }
      sit->second = {static_cast<int64_t>(t.sno), t.commit_ts};

      ListTxnState& st = live[t.tid];
      for (const Op& op : t.ops) {
        if (op.type == OpType::kAppend) {
          state_for(st, op.key);
          std::vector<Value>* pending = st.appends.Find(op.key);
          if (!pending) {
            st.appends.Put(op.key, {});
            pending = st.appends.Find(op.key);
            st.wkey.push_back(op.key);
          }
          pending->push_back(op.value);
          auto& og = ongoing[op.key];
          if (std::find(og.begin(), og.end(), t.tid) == og.end()) {
            og.push_back(t.tid);
          }
        } else if (op.type == OpType::kReadList) {
          bool first_access = st.keys.Find(op.key) == nullptr;
          ListState& ls = state_for(st, op.key);
          const std::vector<Value>& observed = t.list_args[op.list_index];
          if (!ObservationMatches(ls, st.appends.Find(op.key), observed)) {
            size_t own =
                st.appends.Find(op.key) ? st.appends.Find(op.key)->size() : 0;
            ViolationType vt =
                first_access ? ViolationType::kExt : ViolationType::kInt;
            sink_->Report({vt, t.tid, kTxnNone, op.key,
                           static_cast<Value>(ls.base_len + own),
                           static_cast<Value>(observed.size())});
            counted.Report({vt, t.tid});
          }
        }
      }
    } else {
      auto lit = live.find(t.tid);
      if (lit == live.end()) continue;
      ListTxnState& st = lit->second;
      for (Key k : st.wkey) {
        auto& og = ongoing[k];
        og.erase(std::remove(og.begin(), og.end(), t.tid), og.end());
        for (TxnId other : og) {
          sink_->Report({ViolationType::kNoConflict, t.tid, other, k});
          counted.Report({ViolationType::kNoConflict, t.tid});
        }
        ListState* ls = st.keys.Find(k);
        const std::vector<Value>& appends = *st.appends.Find(k);
        ListFrontier& f = frontier[k];
        if (f.seq == ls->base_seq && f.seq->size() == ls->base_len) {
          // Common case: nobody extended the sequence since the snapshot;
          // append in place.
          f.seq->insert(f.seq->end(), appends.begin(), appends.end());
        } else {
          // Conflict already reported above: fork base ++ appends so the
          // paper's frontier semantics are preserved exactly.
          auto forked = std::make_shared<std::vector<Value>>(
              ls->base_seq->begin(),
              ls->base_seq->begin() + static_cast<long>(ls->base_len));
          forked->insert(forked->end(), appends.begin(), appends.end());
          f.seq = std::move(forked);
        }
        f.committed_len = ls->base_len + appends.size();
      }
      live.erase(lit);
      t.ops.clear();
      t.ops.shrink_to_fit();
      t.list_args.clear();
      t.list_args.shrink_to_fit();
    }
  }

  stats.check_seconds = sw.Seconds();
  stats.violations = counted.total();
  return stats;
}

CheckStats ChronosList::CheckHistory(const History& history,
                                     ViolationSink* sink) {
  ChronosList checker(sink);
  History copy = history;
  return checker.Check(std::move(copy));
}

}  // namespace chronos
