// The common surface of the online checkers: the monolithic `Aion`
// (core/aion.h) and the key-partitioned `ShardedAion`
// (online/sharded_aion.h) implement the same contract, so the pipeline
// drivers (online/pipeline.h) and the GC policies work against either.
// The mode/options/stats/footprint types live here — outside Aion — so
// the key-scoped `KeyEngine` layer and the sharded coordinator can share
// them without depending on the monolith.
#ifndef CHRONOS_CORE_ONLINE_CHECKER_H_
#define CHRONOS_CORE_ONLINE_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/types.h"

namespace chronos {

/// The run-level default isolation level. SER ignores start timestamps,
/// uses the commit timestamp as the read view, and skips NOCONFLICT
/// (paper Sec. VI-A). Individual transactions may override the default
/// via Transaction::iso (mixed-level histories); EffectiveLevel resolves
/// the two.
enum class CheckMode { kSi, kSer };

/// The IsolationLevel a CheckMode defaults untagged transactions to.
inline IsolationLevel DefaultLevel(CheckMode mode) {
  return mode == CheckMode::kSer ? IsolationLevel::kSer
                                 : IsolationLevel::kSi;
}

/// The level a transaction is actually checked under: its own tag, or
/// the run-level default when untagged. Resolved exactly once per
/// arrival (TxnIngress::AdmitTxn) and carried through the engines in
/// KeyEngine::TxnCtx, so every downstream decision sees one value.
inline IsolationLevel EffectiveLevel(const Transaction& t, CheckMode mode) {
  return t.iso == IsolationLevel::kUnspecified ? DefaultLevel(mode) : t.iso;
}

/// Which timestamps the ingress registers for the cross-transaction
/// uniqueness check under `level`: SER {commit}, SI {start, commit}
/// (none for an Eq.(1)-invalid SI transaction, which is rejected
/// earlier), RC/RA none — commit-order levels neither consume snapshot
/// timestamps nor participate in the dup-gate. The explorer's
/// commutativity rules and the offline mixed mirror share this table.
inline bool RegistersTimestamps(IsolationLevel level) {
  return level == IsolationLevel::kSer || level == IsolationLevel::kSi;
}

/// True for the commit-order membership levels (RC/RA): reads are
/// satisfied by *any* committed version of the key before the reader's
/// commit timestamp rather than by the frontier at a snapshot view.
inline bool MembershipLevel(IsolationLevel level) {
  return level == IsolationLevel::kRc || level == IsolationLevel::kRa;
}

/// Pipeline stage at which a stall hook fires (sharded checker only;
/// the monolith has no pipeline). `stage_index` identifies the
/// pre-stage worker or shard; the sequencer passes 0.
enum class StallPoint : uint8_t {
  kPreStage = 0,     ///< classifier worker, before classifying a batch
  kSequencer = 1,    ///< sequencer, before processing a header batch
  kShardWorker = 2,  ///< shard worker, before executing a command chunk
};

/// Test-only stall injection (explore/oracle.h, adversarial-timing
/// tests): invoked from the pipeline threads, so it must be thread-safe
/// and must not call back into the checker. Verdicts, stats, and
/// emission order are independent of anything the hook does — that is
/// the determinism contract the schedule enumerator certifies.
using StallHook = std::function<void(StallPoint, size_t stage_index)>;

/// Configuration shared by the monolithic and sharded checkers.
struct CheckerOptions {
  CheckMode mode = CheckMode::kSi;
  /// EXT verdicts become final this long after the transaction arrives
  /// (the paper conservatively uses 5000 ms). Time is whatever unit the
  /// caller passes to OnTransaction/AdvanceTime; tests use virtual ms.
  uint64_t ext_timeout_ms = 5000;
  /// Directory for the GC spill store. Empty disables persistence: GC
  /// then discards evicted state, which is only safe when no arrival
  /// ever dips below the GC watermark (fast mode for throughput
  /// benches; stragglers below the watermark are counted in
  /// CheckerStats::unsafe_below_watermark instead of being re-checked).
  /// A sharded checker appends "/shard<i>" per shard.
  std::string spill_dir;
  /// Pre-stage classifier threads in the sharded checker (clamped to
  /// [1, 16]; ignored by the monolith). These run the pure per-txn INT
  /// replay and key->shard partitioning off the coordinator thread;
  /// verdicts and emission order are independent of this value.
  size_t pre_stage_workers = 2;
  /// Test-only forced-stall injection points in the sharded pipeline
  /// (empty: never called, zero cost). See StallHook above.
  StallHook stall_hook;
};

/// Aggregate processing counters. In the sharded checker the key-scoped
/// counters are accumulated per shard and summed on read; every field is
/// a plain sum, so the merge is commutative.
struct CheckerStats {
  uint64_t txns_processed = 0;
  uint64_t ext_rechecks = 0;           ///< Step-3 reader re-evaluations
  uint64_t noconflict_checks = 0;      ///< Step-2 overlap queries
  uint64_t spill_reloads = 0;          ///< epochs loaded back from disk
  uint64_t unsafe_below_watermark = 0; ///< stragglers GC made unverifiable
  /// Reads whose evaluation touched a hash-trimmed list prefix region
  /// that could not be verified element-wise (ListKv horizon trim; same
  /// deterministic-degradation accounting as unsafe_below_watermark).
  uint64_t unsafe_below_horizon = 0;
  /// Spill epochs whose file existed but failed to parse. Distinct from
  /// a missing epoch (both degrade to unsafe_below_watermark at the
  /// consulting site, but corruption is loudly logged and counted here).
  uint64_t corrupt_spill_epochs = 0;
  uint64_t gc_passes = 0;

  CheckerStats& operator+=(const CheckerStats& o) {
    txns_processed += o.txns_processed;
    ext_rechecks += o.ext_rechecks;
    noconflict_checks += o.noconflict_checks;
    spill_reloads += o.spill_reloads;
    unsafe_below_watermark += o.unsafe_below_watermark;
    unsafe_below_horizon += o.unsafe_below_horizon;
    corrupt_spill_epochs += o.corrupt_spill_epochs;
    gc_passes += o.gc_passes;
    return *this;
  }

  bool operator==(const CheckerStats& o) const {
    return txns_processed == o.txns_processed &&
           ext_rechecks == o.ext_rechecks &&
           noconflict_checks == o.noconflict_checks &&
           spill_reloads == o.spill_reloads &&
           unsafe_below_watermark == o.unsafe_below_watermark &&
           unsafe_below_horizon == o.unsafe_below_horizon &&
           corrupt_spill_epochs == o.corrupt_spill_epochs &&
           gc_passes == o.gc_passes;
  }
};

/// Live memory footprint, used by the Fig. 12/16 benches and the GC
/// policies of the pipeline drivers (live_txns in particular).
struct CheckerFootprint {
  size_t live_txns = 0;
  size_t versions = 0;
  size_t intervals = 0;
  size_t approx_bytes = 0;
};

/// Abstract online checker driven by the pipeline (online/pipeline.h).
/// All methods are called from the single driver ("coordinator") thread;
/// implementations may spread the work over internal worker threads.
class OnlineChecker {
 public:
  virtual ~OnlineChecker() = default;

  /// Feeds one collected transaction. `now_ms` is the arrival time on the
  /// checker's clock; it must be non-decreasing across calls.
  virtual void OnTransaction(const Transaction& t, uint64_t now_ms) = 0;

  /// Fires all EXT timeouts with deadline <= now_ms, finalizing and
  /// reporting their verdicts.
  virtual void AdvanceTime(uint64_t now_ms) = 0;

  /// Garbage-collects state at or below `up_to` (clamped to the safe
  /// watermark). Returns the effective watermark used.
  virtual Timestamp Gc(Timestamp up_to) = 0;

  /// Convenience: GC so that at most `target` transaction records stay
  /// resident (the paper's "maximum transaction limit" strategy).
  virtual void GcToLiveTarget(size_t target) = 0;

  /// Finalizes every outstanding transaction (end of stream).
  virtual void Finish() = 0;

  /// Cheap (lock-free) footprint estimate; exact for live_txns.
  virtual CheckerFootprint GetFootprint() const = 0;

  /// Best-effort memory release beyond GC: trims list element buffers
  /// below the current watermark down to a prefix hash (the
  /// --memory-ceiling degradation path). Verdicts for live readers are
  /// unaffected; stragglers into a trimmed region degrade to
  /// CheckerStats::unsafe_below_horizon accounting. Default: no-op.
  virtual void ShedMemory() {}
};

}  // namespace chronos

#endif  // CHRONOS_CORE_ONLINE_CHECKER_H_
