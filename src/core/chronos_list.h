// CHRONOS for list histories (paper Sec. III-B1: "easily adaptable to
// support other data types such as lists", evaluated in Fig. 5b).
// Operations are A(k, e) appends and L(k, [e...]) whole-list reads; the
// frontier maps each key to the last committed list value.
#ifndef CHRONOS_CORE_CHRONOS_LIST_H_
#define CHRONOS_CORE_CHRONOS_LIST_H_

#include "core/stats.h"
#include "core/types.h"
#include "core/violation.h"

namespace chronos {

/// Offline SI checker for list histories. The frontier of a key is its
/// committed cumulative append sequence in commit-timestamp order (the
/// offline mirror of the online materialized-prefix chain). List reads
/// classify through the shared replay helper (core/list_replay.h) so the
/// INT/EXT taxonomy matches AION's exactly; mismatches are reported with
/// `expected`/`got` set to the respective list lengths plus
/// `Violation::divergence`, the first divergent element index.
class ChronosList {
 public:
  explicit ChronosList(ViolationSink* sink) : sink_(sink) {}

  CheckStats Check(History&& history);

  static CheckStats CheckHistory(const History& history, ViolationSink* sink);

 private:
  ViolationSink* sink_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_CHRONOS_LIST_H_
