// CHRONOS for list histories (paper Sec. III-B1: "easily adaptable to
// support other data types such as lists", evaluated in Fig. 5b).
// Operations are A(k, e) appends and L(k, [e...]) whole-list reads; the
// frontier maps each key to the last committed list value.
#ifndef CHRONOS_CORE_CHRONOS_LIST_H_
#define CHRONOS_CORE_CHRONOS_LIST_H_

#include "core/stats.h"
#include "core/types.h"
#include "core/violation.h"

namespace chronos {

/// Offline SI checker for list histories. Mismatching list reads are
/// reported with `expected`/`got` set to the respective list lengths
/// (full contents are unbounded; lengths identify the divergence point
/// for diagnostics).
class ChronosList {
 public:
  explicit ChronosList(ViolationSink* sink) : sink_(sink) {}

  CheckStats Check(History&& history);

  static CheckStats CheckHistory(const History& history, ViolationSink* sink);

 private:
  ViolationSink* sink_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_CHRONOS_LIST_H_
