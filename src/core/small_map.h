// A tiny open-addressing-free flat map for per-transaction state
// (int_val / ext_val in Algorithms 2 and 3). Transactions have at most a
// few dozen distinct keys, so a linear-scanned vector beats a hash map on
// both time and allocation churn.
#ifndef CHRONOS_CORE_SMALL_MAP_H_
#define CHRONOS_CORE_SMALL_MAP_H_

#include <utility>
#include <vector>

namespace chronos {

/// Flat key->value map with linear lookup. Suitable for small cardinality
/// (ops per transaction). Keys compare with ==.
template <typename K, typename V>
class SmallMap {
 public:
  /// Pointer to the value for `key`, or nullptr.
  V* Find(const K& key) {
    for (auto& [k, v] : entries_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  const V* Find(const K& key) const {
    return const_cast<SmallMap*>(this)->Find(key);
  }

  /// Inserts or overwrites.
  void Put(const K& key, V value) {
    if (V* v = Find(key)) {
      *v = std::move(value);
      return;
    }
    entries_.emplace_back(key, std::move(value));
  }

  /// The value for `key`, default-constructing it on first access (one
  /// scan, unlike a Find/Put/Find sequence).
  V* FindOrInsert(const K& key) {
    if (V* v = Find(key)) return v;
    entries_.emplace_back(key, V{});
    return &entries_.back().second;
  }

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<K, V>> entries_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_SMALL_MAP_H_
