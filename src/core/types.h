// Fundamental types shared by every checker: transaction identifiers,
// timestamps, operations, transactions, and histories (paper Defs. 1-2).
#ifndef CHRONOS_CORE_TYPES_H_
#define CHRONOS_CORE_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace chronos {

/// Unique transaction identifier (`T.tid` in the paper).
using TxnId = uint64_t;
/// Session identifier (`T.sid`).
using SessionId = uint32_t;
/// Timestamps issued by the database's time oracle. Totally ordered and,
/// across distinct transactions, unique (paper Sec. II-A).
using Timestamp = uint64_t;
/// Keys of the key-value store.
using Key = uint64_t;
/// Register values. `kValueInit` is the value written by the implicit
/// initial transaction that initializes every key (paper's bottom-T).
using Value = int64_t;

/// Value of every key before any transaction writes it.
inline constexpr Value kValueInit = 0;
/// The artificial "bottom" value used internally to mean "never accessed"
/// (paper's bottom-v, which is not a member of V).
inline constexpr Value kValueBottom = std::numeric_limits<Value>::min();
/// The minimum timestamp (paper's bottom-ts); no real event uses it.
inline constexpr Timestamp kTsMin = 0;
/// Sentinel for "no transaction".
inline constexpr TxnId kTxnNone = std::numeric_limits<TxnId>::max();

/// Per-transaction isolation level. Histories may mix levels freely
/// (mixed-levels checking, Bouajjani et al.); `kUnspecified` means "use
/// the run-level default" (CheckerOptions::mode) and is what every
/// pre-existing history deserializes to, so untagged inputs behave
/// exactly as before. The per-level checking rules (which timestamps
/// register for uniqueness, which frontier a read is evaluated against)
/// are documented in ROADMAP.md "Mixed isolation levels".
enum class IsolationLevel : uint8_t {
  kUnspecified = 0,  ///< run-level default (CheckerOptions::mode)
  kSer = 1,          ///< serializability: commit-order reads
  kSi = 2,           ///< snapshot isolation: snapshot reads at start_ts
  kRc = 3,           ///< read committed: per-operation committed recency
  kRa = 4,           ///< read atomic: committed recency + atomic writers
};

/// Canonical lowercase spelling ("ser", "si", "rc", "ra"); kUnspecified
/// renders as "default".
const char* IsolationLevelName(IsolationLevel level);

/// Inverse of IsolationLevelName for the four concrete levels. Returns
/// false on any other spelling (callers report their own error).
bool IsolationLevelFromName(const std::string& name, IsolationLevel* out);

/// Kind of a key-value operation.
enum class OpType : uint8_t {
  kRead,        ///< R(k, v): read v from register k.
  kWrite,       ///< W(k, v): write v to register k.
  kAppend,      ///< A(k, e): append element e to list k (list histories).
  kReadList,    ///< L(k, [e...]): read the whole list k (list histories).
};

/// One operation of a transaction. Register ops use `value`; list reads
/// store their observed elements out-of-line in `Transaction::list_args`
/// (indexed by `list_index`) so that Op stays POD-small.
struct Op {
  OpType type = OpType::kRead;
  Key key = 0;
  Value value = kValueInit;   ///< value read/written/appended
  uint32_t list_index = 0;    ///< for kReadList: index into list_args
};

/// A committed transaction as recorded in a history (paper Sec. III-B1).
/// Only committed transactions appear in histories (Sec. IV-B).
struct Transaction {
  TxnId tid = 0;
  SessionId sid = 0;
  uint64_t sno = 0;            ///< sequence number within its session
  Timestamp start_ts = 0;      ///< `T.start_ts`
  Timestamp commit_ts = 0;     ///< `T.commit_ts`
  std::vector<Op> ops;         ///< operations in program order
  /// Observed list contents for kReadList ops (indexed by Op::list_index).
  std::vector<std::vector<Value>> list_args;
  /// Isolation level this transaction ran under; kUnspecified defers to
  /// the run-level default. Serialized as the optional `iso=` field of
  /// the history codec.
  IsolationLevel iso = IsolationLevel::kUnspecified;

  /// True iff Eq. (1) of the paper holds: start_ts <= commit_ts.
  bool TimestampsOrdered() const { return start_ts <= commit_ts; }
};

/// A history: a set of transactions plus the session order, which is
/// encoded by (sid, sno) pairs (paper Def. 2). Transactions of a session
/// are totally ordered by `sno`, starting at 0.
struct History {
  std::vector<Transaction> txns;
  uint32_t num_sessions = 0;

  size_t NumOps() const {
    size_t n = 0;
    for (const auto& t : txns) n += t.ops.size();
    return n;
  }
};

/// True when any transaction carries an explicit isolation level (the
/// signal that per-transaction dispatch, the mixed offline mirror, and
/// the differ's level gating apply; untagged histories take the fast
/// single-level paths unchanged).
bool HistoryHasLevelTags(const History& h);

/// Returns a short human-readable description of an operation.
std::string ToString(const Op& op);

}  // namespace chronos

#endif  // CHRONOS_CORE_TYPES_H_
