// AION: the online timestamp-based isolation checker (paper Algorithm 3,
// Sec. III-C). Receives transactions one by one in arbitrary cross-session
// order (session order is preserved per session) and checks SI or SER
// incrementally:
//
//   Step 1  check SESSION / INT / EXT for the new transaction;
//   Step 2  re-check NOCONFLICT against transactions overlapping it
//           (write-interval overlap on shared keys);
//   Step 3  re-check EXT for transactions whose read view falls between
//           the new transaction's commit and the next version of each
//           written key.
//
// EXT verdicts are tentative until a per-transaction timeout expires
// (Sec. IV-A); verdict switches are recorded as flip-flops (Sec. VI-C).
// Garbage collection moves versions and write intervals below a safe
// watermark to a disk spill store and reloads them when a straggler
// arrives below the watermark (Algorithm 3 lines 62-66).
#ifndef CHRONOS_CORE_AION_H_
#define CHRONOS_CORE_AION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/flipflop_stats.h"
#include "core/interval_tree.h"
#include "core/spill.h"
#include "core/types.h"
#include "core/versioned_kv.h"
#include "core/violation.h"

namespace chronos {

/// Online checker for SI (default) or SER histories.
class Aion {
 public:
  /// Which isolation level to check. SER ignores start timestamps, uses
  /// the commit timestamp as the read view, and skips NOCONFLICT
  /// (paper Sec. VI-A).
  enum class Mode { kSi, kSer };

  struct Options {
    Mode mode = Mode::kSi;
    /// EXT verdicts become final this long after the transaction arrives
    /// (the paper conservatively uses 5000 ms). Time is whatever unit the
    /// caller passes to OnTransaction/AdvanceTime; tests use virtual ms.
    uint64_t ext_timeout_ms = 5000;
    /// Directory for the GC spill store. Empty disables persistence: GC
    /// then discards evicted state, which is only safe when no arrival
    /// ever dips below the GC watermark (fast mode for throughput
    /// benches; stragglers below the watermark are counted in
    /// Stats::unsafe_below_watermark instead of being re-checked).
    std::string spill_dir;
  };

  /// Aggregate processing counters.
  struct Stats {
    uint64_t txns_processed = 0;
    uint64_t ext_rechecks = 0;          ///< Step-3 reader re-evaluations
    uint64_t noconflict_checks = 0;     ///< Step-2 overlap queries
    uint64_t spill_reloads = 0;         ///< epochs loaded back from disk
    uint64_t unsafe_below_watermark = 0;///< stragglers GC made unverifiable
    uint64_t gc_passes = 0;
  };

  /// Live memory footprint, used by the Fig. 12/16 benches.
  struct Footprint {
    size_t live_txns = 0;
    size_t versions = 0;
    size_t intervals = 0;
    size_t approx_bytes = 0;
  };

  Aion(const Options& options, ViolationSink* sink);
  ~Aion();

  Aion(const Aion&) = delete;
  Aion& operator=(const Aion&) = delete;

  /// Feeds one collected transaction. `now_ms` is the arrival time on the
  /// checker's clock; it must be non-decreasing across calls.
  void OnTransaction(const Transaction& t, uint64_t now_ms);

  /// Fires all EXT timeouts with deadline <= now_ms, finalizing and
  /// reporting their verdicts.
  void AdvanceTime(uint64_t now_ms);

  /// Garbage-collects versions, write intervals and transaction records
  /// at or below `up_to` (clamped to the safe watermark: nothing an
  /// unfinalized transaction might still need is evicted). Evicted state
  /// goes to the spill store. Returns the effective watermark used.
  Timestamp Gc(Timestamp up_to);

  /// Convenience: GC so that at most `target` transaction records stay
  /// resident (the paper's "maximum transaction limit" strategy).
  void GcToLiveTarget(size_t target);

  /// Finalizes every outstanding transaction (end of stream).
  void Finish();

  const Stats& stats() const { return stats_; }
  const FlipFlopStats& flip_stats() const { return flip_stats_; }
  Footprint GetFootprint() const;
  /// Current GC watermark (kTsMin if GC never ran).
  Timestamp watermark() const { return watermark_; }

 private:
  struct ExtReadState {
    Key key = 0;
    Value observed = kValueBottom;
    bool satisfied = true;
    uint32_t flips = 0;
    uint64_t last_change_ms = 0;
  };

  struct TxnRec {
    TxnId tid = 0;
    Timestamp view_ts = 0;    // start_ts (SI) or commit_ts (SER)
    Timestamp commit_ts = 0;
    std::vector<ExtReadState> ext_reads;
    bool finalized = false;
  };

  struct SessionState {
    int64_t last_sno = -1;
    Timestamp last_cts = kTsMin;
    std::unordered_set<uint64_t> skipped_snos;
  };

  // One external-read registration: txn `tid` read `key` at `view_ts`,
  // stored as ext_reads[read_idx]. Chains are flat vectors sorted by
  // view_ts (append-mostly: views arrive in near-timestamp order). At
  // most one external read per (txn, key), and view timestamps are
  // unique per transaction.
  struct ReaderRef {
    Timestamp view_ts = kTsMin;
    TxnId tid = kTxnNone;
    uint32_t read_idx = 0;
  };
  using ReaderChain = std::vector<ReaderRef>;

  // Frontier lookup honoring the GC watermark: below it, consults the
  // spill store (latest version of `key` at or before `view`).
  VersionedKv::Lookup LookupFrontier(Key key, Timestamp view);
  VersionedKv::Lookup LookupSpilled(Key key, Timestamp view);

  void CheckSession(const Transaction& t);
  void ReplayOps(const Transaction& t, TxnRec* rec, uint64_t now_ms,
                 std::vector<std::pair<Key, Value>>* final_writes);
  void InstallVersionAndRecheck(const Transaction& t, Key key, Value value,
                                uint64_t now_ms);
  void CheckNoConflict(const Transaction& t);
  void FinalizeTxn(TxnRec* rec);
  void FireDeadlines(uint64_t now_ms);
  // Oldest view among unfinalized transactions (lazily drops finalized
  // views off the heap top). nullopt when everything is finalized.
  std::optional<Timestamp> OldestUnfinalizedView();

  Options options_;
  ViolationSink* sink_;
  Stats stats_;
  FlipFlopStats flip_stats_;

  VersionedKv versions_;
  OngoingIndex ongoing_;
  SpillStore spill_;
  std::vector<uint64_t> spill_epochs_;  // ids, in spill order
  // Tiny cache of reloaded epochs (stragglers cluster in time).
  mutable std::vector<std::pair<uint64_t, SpillPayload>> epoch_cache_;

  std::unordered_map<TxnId, TxnRec> txns_;
  // (cts, tid) of live txns, sorted by cts (append-mostly flat map).
  std::vector<std::pair<Timestamp, TxnId>> commit_index_;
  // Unfinalized read views: min-heap plus a lazy tombstone set.
  std::priority_queue<Timestamp, std::vector<Timestamp>, std::greater<>>
      view_heap_;
  std::unordered_set<Timestamp> finalized_views_;
  // Timestamp-uniqueness tracking: O(1) membership plus a min-heap so GC
  // can drop everything below the watermark in O(dropped log n).
  std::unordered_set<Timestamp> used_ts_;
  std::priority_queue<Timestamp, std::vector<Timestamp>, std::greater<>>
      used_ts_min_;
  std::unordered_map<SessionId, SessionState> sessions_;
  std::unordered_map<Key, ReaderChain> reader_index_;
  // (deadline, tid) FIFO for EXT timeouts: arrival time is non-decreasing
  // and the timeout is constant, so deadlines are already sorted.
  std::deque<std::pair<uint64_t, TxnId>> deadlines_;
  Timestamp watermark_ = kTsMin;
  uint64_t last_now_ms_ = 0;
};

/// AION-SER: the online serializability checker (paper Sec. VI). Same
/// engine with the SER read-view rule; exposed as its own type to mirror
/// the paper's presentation.
class AionSer : public Aion {
 public:
  AionSer(uint64_t ext_timeout_ms, ViolationSink* sink,
          std::string spill_dir = "")
      : Aion(MakeOptions(ext_timeout_ms, std::move(spill_dir)), sink) {}

 private:
  static Options MakeOptions(uint64_t timeout, std::string dir) {
    Options o;
    o.mode = Mode::kSer;
    o.ext_timeout_ms = timeout;
    o.spill_dir = std::move(dir);
    return o;
  }
};

}  // namespace chronos

#endif  // CHRONOS_CORE_AION_H_
