// AION: the online timestamp-based isolation checker (paper Algorithm 3,
// Sec. III-C). Receives transactions one by one in arbitrary cross-session
// order (session order is preserved per session) and checks SI or SER
// incrementally:
//
//   Step 1  check SESSION / INT / EXT for the new transaction;
//   Step 2  re-check NOCONFLICT against transactions overlapping it
//           (write-interval overlap on shared keys);
//   Step 3  re-check EXT for transactions whose read view falls between
//           the new transaction's commit and the next version of each
//           written key.
//
// EXT verdicts are tentative until a per-transaction timeout expires
// (Sec. IV-A); verdict switches are recorded as flip-flops (Sec. VI-C).
// Garbage collection moves versions and write intervals below a safe
// watermark to a disk spill store and reloads them when a straggler
// arrives below the watermark (Algorithm 3 lines 62-66).
//
// Structurally, Aion is the transaction-scoped `TxnIngress`
// (core/txn_ingress.h) driving a single key-scoped `KeyEngine`
// (core/key_engine.h) inline. The key-partitioned `ShardedAion`
// (online/sharded_aion.h) drives N engines on worker threads through
// the same ingress and is verdict-identical to this monolith.
#ifndef CHRONOS_CORE_AION_H_
#define CHRONOS_CORE_AION_H_

#include <string>
#include <utility>

#include "core/flipflop_stats.h"
#include "core/key_engine.h"
#include "core/online_checker.h"
#include "core/txn_ingress.h"
#include "core/types.h"
#include "core/violation.h"

namespace chronos {

/// Online checker for SI (default) or SER histories.
class Aion : public OnlineChecker, private TxnIngress::Dispatch {
 public:
  using Mode = CheckMode;
  using Options = CheckerOptions;
  using Stats = CheckerStats;
  using Footprint = CheckerFootprint;

  Aion(const Options& options, ViolationSink* sink);
  ~Aion() override;

  Aion(const Aion&) = delete;
  Aion& operator=(const Aion&) = delete;

  /// Feeds one collected transaction. `now_ms` is the arrival time on the
  /// checker's clock; it must be non-decreasing across calls.
  void OnTransaction(const Transaction& t, uint64_t now_ms) override;

  /// Fires all EXT timeouts with deadline <= now_ms, finalizing and
  /// reporting their verdicts.
  void AdvanceTime(uint64_t now_ms) override;

  /// Garbage-collects versions, write intervals and transaction records
  /// at or below `up_to` (clamped to the safe watermark: nothing an
  /// unfinalized transaction might still need is evicted). Evicted state
  /// goes to the spill store. Returns the effective watermark used.
  Timestamp Gc(Timestamp up_to) override;

  /// Convenience: GC so that at most `target` transaction records stay
  /// resident (the paper's "maximum transaction limit" strategy).
  void GcToLiveTarget(size_t target) override;

  /// Finalizes every outstanding transaction (end of stream).
  void Finish() override;

  /// Trims list element buffers below the watermark to a prefix hash
  /// (the --memory-ceiling degradation path; see OnlineChecker).
  void ShedMemory() override { engine_.TrimListsBelowHorizon(); }

  const Stats& stats() const { return stats_; }
  const FlipFlopStats& flip_stats() const { return flip_stats_; }
  Footprint GetFootprint() const override;
  /// Current GC watermark (kTsMin if GC never ran).
  Timestamp watermark() const { return ingress_.watermark(); }

 private:
  // TxnIngress::Dispatch: the monolith executes key-scoped work inline.
  void DispatchTxn(const KeyEngine::TxnCtx& ctx, ClassifiedOps&& ops,
                   bool register_reads, uint64_t now_ms) override;
  void DispatchFinalize(TxnId tid) override;
  void DispatchGc(Timestamp watermark) override;

  Stats stats_;
  FlipFlopStats flip_stats_;
  KeyEngine engine_;
  TxnIngress ingress_;
};

/// AION-SER: the online serializability checker (paper Sec. VI). Same
/// engine with the SER read-view rule; exposed as its own type to mirror
/// the paper's presentation.
class AionSer : public Aion {
 public:
  AionSer(uint64_t ext_timeout_ms, ViolationSink* sink,
          std::string spill_dir = "")
      : Aion(MakeOptions(ext_timeout_ms, std::move(spill_dir)), sink) {}

 private:
  static Options MakeOptions(uint64_t timeout, std::string dir) {
    Options o;
    o.mode = Mode::kSer;
    o.ext_timeout_ms = timeout;
    o.spill_dir = std::move(dir);
    return o;
  }
};

}  // namespace chronos

#endif  // CHRONOS_CORE_AION_H_
