// The timestamp-versioned frontier (`frontier_ts` of Algorithm 3), stored
// per key as a flat, sorted, append-mostly version chain. Commits arrive
// in near-timestamp order, so the common insert is a push_back; the rare
// out-of-order writer pays one binary search plus a tail move. Frontier
// queries (`GetAtOrBefore`/`GetBefore`/`NextVersionAfter`) are binary
// searches over contiguous memory. See DESIGN.md Sec. 1.1: per-key
// version storage makes the paper's lines 3:56-57 (propagating a late
// writer's value into later frontier versions) automatic.
//
// Accounting is incremental: `TotalVersions()`/`ApproxBytes()` are O(1)
// running counters, and `CollectUpTo` is O(dirty): a lazy min-trigger
// heap tracks only keys whose chain has >= 2 versions, keyed by the
// timestamp of the chain's second version — the exact watermark at which
// the key first yields an eviction.
#ifndef CHRONOS_CORE_VERSIONED_KV_H_
#define CHRONOS_CORE_VERSIONED_KV_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/state_io.h"
#include "core/types.h"

namespace chronos {

/// One committed version of a key.
struct VersionEntry {
  Value value = kValueInit;
  TxnId tid = kTxnNone;
};

/// A multi-version register map with "latest version at or before ts"
/// queries. Inserts are amortized O(1) for in-order commits; queries are
/// O(log V) binary searches in the queried key's contiguous chain.
class VersionedKv {
 public:
  /// One element of a key's flat chain.
  struct Version {
    Timestamp ts = kTsMin;
    Value value = kValueInit;
    TxnId tid = kTxnNone;
  };
  /// A key's versions, sorted ascending by ts.
  using Chain = std::vector<Version>;

  /// Result of a frontier query.
  struct Lookup {
    Value value = kValueInit;      ///< kValueInit if no version qualifies
    TxnId tid = kTxnNone;          ///< writer, kTxnNone for the initial value
    Timestamp ts = kTsMin;         ///< commit ts of the version (kTsMin: init)
  };

  /// Inserts the version (ts -> value by tid) for `key`. Returns false if a
  /// version with the same timestamp already exists (duplicate commit ts).
  bool Put(Key key, Timestamp ts, Value value, TxnId tid) {
    Chain& chain = versions_[key];
    if (chain.empty() || ts > chain.back().ts) {
      chain.push_back({ts, value, tid});        // common case: in-order
    } else {
      auto it = LowerBound(chain, ts);
      if (it != chain.end() && it->ts == ts) return false;
      chain.insert(it, {ts, value, tid});
    }
    ++total_versions_;
    // A chain becomes collectible once >= 2 of its versions sit at or
    // below a watermark; that first happens at chain[1].ts. Re-arm when
    // the insert created or lowered that trigger.
    if (chain.size() >= 2 &&
        (chain.size() == 2 || ts <= chain[1].ts)) {
      gc_triggers_.push({chain[1].ts, key});
    }
    return true;
  }

  /// The latest version with commit ts <= `ts` (paper's frontier_ts[ts^]).
  /// Falls back to the initial value when no committed version qualifies.
  Lookup GetAtOrBefore(Key key, Timestamp ts) const {
    return GetBound(key, ts, /*inclusive=*/true);
  }

  /// The latest version with commit ts strictly < `ts` (SER read view).
  Lookup GetBefore(Key key, Timestamp ts) const {
    return GetBound(key, ts, /*inclusive=*/false);
  }

  /// Commit timestamp of the next version of `key` strictly after `ts`, or
  /// nullopt. Used to bound EXT re-checking (Step 3 of Algorithm 3): a late
  /// writer at ts affects only readers with view timestamps before this.
  std::optional<Timestamp> NextVersionAfter(Key key, Timestamp ts) const {
    auto it = versions_.find(key);
    if (it == versions_.end()) return std::nullopt;
    const Chain& chain = it->second;
    auto vit = UpperBound(chain, ts);
    if (vit == chain.end()) return std::nullopt;
    return vit->ts;
  }

  /// True when some in-memory version of `key` with commit ts strictly
  /// before `ts` carries `value` (the RC/RA committed-membership query).
  /// O(versions before ts) — a linear prefix scan of the chain; below
  /// the GC watermark the caller merges with the spill store.
  bool HasValueBefore(Key key, Timestamp ts, Value value) const {
    auto it = versions_.find(key);
    if (it == versions_.end()) return false;
    const Chain& chain = it->second;
    auto end = LowerBound(chain, ts);
    for (auto vit = chain.begin(); vit != end; ++vit) {
      if (vit->value == value) return true;
    }
    return false;
  }

  /// Number of live versions across all keys. O(1).
  size_t TotalVersions() const { return total_versions_; }

  size_t NumKeys() const { return versions_.size(); }

  /// Garbage-collects versions with commit ts <= `ts`, keeping per key the
  /// single latest qualifying version as the "base" so that queries at or
  /// above `ts` stay answerable. Evicted versions are appended to `evicted`
  /// (for spilling to disk) when non-null. Returns the eviction count.
  ///
  /// O(dirty): only keys whose armed trigger fired are visited; clean keys
  /// are never touched.
  size_t CollectUpTo(Timestamp ts,
                     std::vector<std::tuple<Key, Timestamp, VersionEntry>>*
                         evicted = nullptr) {
    size_t n = 0;
    std::unordered_set<Key> visited;
    while (!gc_triggers_.empty() && gc_triggers_.top().first <= ts) {
      Key key = gc_triggers_.top().second;
      gc_triggers_.pop();
      if (!visited.insert(key).second) continue;  // stale duplicate entry
      auto it = versions_.find(key);
      if (it == versions_.end()) continue;        // stale: key dropped
      Chain& chain = it->second;
      auto end = UpperBound(chain, ts);
      if (end - chain.begin() >= 2) {
        --end;  // keep the latest version <= ts as the base
        size_t removed = static_cast<size_t>(end - chain.begin());
        if (evicted) {
          for (auto vit = chain.begin(); vit != end; ++vit) {
            evicted->emplace_back(key, vit->ts,
                                  VersionEntry{vit->value, vit->tid});
          }
        }
        chain.erase(chain.begin(), end);
        total_versions_ -= removed;
        n += removed;
      }
      // Re-arm at the key's next trigger point (now above `ts`).
      if (chain.size() >= 2) gc_triggers_.push({chain[1].ts, key});
    }
    return n;
  }

  /// Re-inserts a previously evicted version (spill reload path).
  void Restore(Key key, Timestamp ts, const VersionEntry& e) {
    Put(key, ts, e.value, e.tid);
  }

  /// Direct access to a key's chain (for tests/inspection).
  const Chain* Find(Key key) const {
    auto it = versions_.find(key);
    return it == versions_.end() ? nullptr : &it->second;
  }

  /// Checkpoint hook: dumps every chain, keys in sorted order so the
  /// image is byte-deterministic regardless of hash-map iteration order.
  void Serialize(StateWriter* w) const {
    std::vector<Key> keys;
    keys.reserve(versions_.size());
    for (const auto& [k, chain] : versions_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w->U64(keys.size());
    for (Key k : keys) {
      const Chain& chain = versions_.at(k);
      w->U64(k);
      w->U64(chain.size());
      for (const Version& v : chain) {
        w->U64(v.ts);
        w->I64(v.value);
        w->U64(v.tid);
      }
    }
  }

  /// Restores a serialized image, replacing current contents. The GC
  /// trigger heap is re-armed from the restored chains rather than
  /// serialized (the lazy-heap invariant only needs one entry per key
  /// with >= 2 versions).
  bool Deserialize(StateReader* r) {
    versions_.clear();
    total_versions_ = 0;
    gc_triggers_ = {};
    uint64_t num_keys = r->U64();
    for (uint64_t i = 0; i < num_keys && r->ok(); ++i) {
      Key k = r->U64();
      uint64_t n = r->U64();
      Chain& chain = versions_[k];
      chain.reserve(n);
      for (uint64_t j = 0; j < n && r->ok(); ++j) {
        Version v;
        v.ts = r->U64();
        v.value = r->I64();
        v.tid = r->U64();
        chain.push_back(v);
      }
      total_versions_ += chain.size();
      if (chain.size() >= 2) gc_triggers_.push({chain[1].ts, k});
    }
    return r->ok();
  }

  /// Approximate heap footprint in bytes. O(1): derived from the running
  /// counters plus the hash-map geometry; close enough for the relative
  /// memory curves of Fig. 7/10/16.
  size_t ApproxBytes() const {
    return versions_.bucket_count() * sizeof(void*) +
           versions_.size() * (sizeof(Chain) + 48) +
           total_versions_ * sizeof(Version);
  }

 private:
  // Heterogeneous ts <-> Version comparator for the sorted chains.
  struct TsOrder {
    bool operator()(const Version& v, Timestamp t) const { return v.ts < t; }
    bool operator()(Timestamp t, const Version& v) const { return t < v.ts; }
  };
  template <typename ChainT>
  static auto LowerBound(ChainT& chain, Timestamp ts)
      -> decltype(chain.begin()) {
    return std::lower_bound(chain.begin(), chain.end(), ts, TsOrder{});
  }
  template <typename ChainT>
  static auto UpperBound(ChainT& chain, Timestamp ts)
      -> decltype(chain.begin()) {
    return std::upper_bound(chain.begin(), chain.end(), ts, TsOrder{});
  }

  Lookup GetBound(Key key, Timestamp ts, bool inclusive) const {
    auto it = versions_.find(key);
    if (it == versions_.end()) return Lookup{};
    const Chain& chain = it->second;
    // Fast path: the chain's newest version qualifies (frontier reads at
    // the current edge dominate in-order streams).
    if (!chain.empty()) {
      const Version& back = chain.back();
      if (inclusive ? back.ts <= ts : back.ts < ts) {
        return Lookup{back.value, back.tid, back.ts};
      }
    }
    auto vit = inclusive ? UpperBound(chain, ts) : LowerBound(chain, ts);
    if (vit == chain.begin()) return Lookup{};
    --vit;
    return Lookup{vit->value, vit->tid, vit->ts};
  }

  std::unordered_map<Key, Chain> versions_;
  size_t total_versions_ = 0;
  // Lazy min-heap of (chain[1].ts at arm time, key). Invariant: every key
  // with >= 2 versions has an entry whose trigger <= its current
  // chain[1].ts, so CollectUpTo never misses a collectible key. Entries
  // may be stale (key re-armed or shrunk); stale pops are skipped.
  std::priority_queue<std::pair<Timestamp, Key>,
                      std::vector<std::pair<Timestamp, Key>>, std::greater<>>
      gc_triggers_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_VERSIONED_KV_H_
