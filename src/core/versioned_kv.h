// The timestamp-versioned frontier (`frontier_ts` of Algorithm 3), stored
// per key as an ordered map commit_ts -> value. See DESIGN.md Sec. 1.1:
// per-key version storage makes the paper's lines 3:56-57 (propagating a
// late writer's value into later frontier versions) automatic.
#ifndef CHRONOS_CORE_VERSIONED_KV_H_
#define CHRONOS_CORE_VERSIONED_KV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace chronos {

/// One committed version of a key.
struct VersionEntry {
  Value value = kValueInit;
  TxnId tid = kTxnNone;
};

/// A multi-version register map with "latest version at or before ts"
/// queries. All operations are amortized O(log V) in the number of live
/// versions of the queried key.
class VersionedKv {
 public:
  using VersionMap = std::map<Timestamp, VersionEntry>;

  /// Result of a frontier query.
  struct Lookup {
    Value value = kValueInit;      ///< kValueInit if no version qualifies
    TxnId tid = kTxnNone;          ///< writer, kTxnNone for the initial value
    Timestamp ts = kTsMin;         ///< commit ts of the version (kTsMin: init)
  };

  /// Inserts the version (ts -> value by tid) for `key`. Returns false if a
  /// version with the same timestamp already exists (duplicate commit ts).
  bool Put(Key key, Timestamp ts, Value value, TxnId tid) {
    auto [it, ok] = versions_[key].emplace(ts, VersionEntry{value, tid});
    (void)it;
    return ok;
  }

  /// The latest version with commit ts <= `ts` (paper's frontier_ts[ts^]).
  /// Falls back to the initial value when no committed version qualifies.
  Lookup GetAtOrBefore(Key key, Timestamp ts) const {
    return GetBound(key, ts, /*inclusive=*/true);
  }

  /// The latest version with commit ts strictly < `ts` (SER read view).
  Lookup GetBefore(Key key, Timestamp ts) const {
    return GetBound(key, ts, /*inclusive=*/false);
  }

  /// Commit timestamp of the next version of `key` strictly after `ts`, or
  /// nullopt. Used to bound EXT re-checking (Step 3 of Algorithm 3): a late
  /// writer at ts affects only readers with view timestamps before this.
  std::optional<Timestamp> NextVersionAfter(Key key, Timestamp ts) const {
    auto it = versions_.find(key);
    if (it == versions_.end()) return std::nullopt;
    auto vit = it->second.upper_bound(ts);
    if (vit == it->second.end()) return std::nullopt;
    return vit->first;
  }

  /// Number of live versions across all keys.
  size_t TotalVersions() const {
    size_t n = 0;
    for (const auto& [k, m] : versions_) n += m.size();
    return n;
  }

  size_t NumKeys() const { return versions_.size(); }

  /// Garbage-collects versions with commit ts <= `ts`, keeping per key the
  /// single latest qualifying version as the "base" so that queries at or
  /// above `ts` stay answerable. Evicted versions are appended to `evicted`
  /// (for spilling to disk) when non-null. Returns the eviction count.
  size_t CollectUpTo(Timestamp ts,
                     std::vector<std::tuple<Key, Timestamp, VersionEntry>>*
                         evicted = nullptr) {
    size_t n = 0;
    for (auto& [key, vmap] : versions_) {
      auto end = vmap.upper_bound(ts);
      if (end == vmap.begin()) continue;
      --end;  // keep the latest version <= ts as the base
      for (auto it = vmap.begin(); it != end;) {
        if (evicted) evicted->emplace_back(key, it->first, it->second);
        it = vmap.erase(it);
        ++n;
      }
    }
    return n;
  }

  /// Re-inserts a previously evicted version (spill reload path).
  void Restore(Key key, Timestamp ts, const VersionEntry& e) {
    versions_[key].emplace(ts, e);
  }

  /// Direct access to a key's version map (for tests/inspection).
  const VersionMap* Find(Key key) const {
    auto it = versions_.find(key);
    return it == versions_.end() ? nullptr : &it->second;
  }

  /// Approximate heap footprint in bytes (for the memory figures).
  size_t ApproxBytes() const {
    // unordered_map bucket + per-node overhead estimates; close enough for
    // the relative memory curves of Fig. 7/10/16.
    size_t bytes = versions_.bucket_count() * sizeof(void*);
    for (const auto& [k, m] : versions_) {
      (void)k;
      bytes += 64 + m.size() * (sizeof(Timestamp) + sizeof(VersionEntry) + 48);
    }
    return bytes;
  }

 private:
  Lookup GetBound(Key key, Timestamp ts, bool inclusive) const {
    auto it = versions_.find(key);
    if (it == versions_.end()) return Lookup{};
    const VersionMap& m = it->second;
    auto vit = inclusive ? m.upper_bound(ts) : m.lower_bound(ts);
    if (vit == m.begin()) return Lookup{};
    --vit;
    return Lookup{vit->second.value, vit->second.tid, vit->first};
  }

  std::unordered_map<Key, VersionMap> versions_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_VERSIONED_KV_H_
