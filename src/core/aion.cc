#include "core/aion.h"

namespace chronos {
namespace {

KeyEngine::Options EngineOptions(const CheckerOptions& o) {
  KeyEngine::Options eo;
  eo.mode = o.mode;
  eo.spill_dir = o.spill_dir;
  return eo;
}

}  // namespace

Aion::Aion(const Options& options, ViolationSink* sink)
    : engine_(EngineOptions(options), &stats_, &flip_stats_,
              [sink](Timestamp, const Violation& v) { sink->Report(v); }),
      ingress_(options, &stats_,
               [sink](Timestamp, const Violation& v) { sink->Report(v); },
               this) {}

Aion::~Aion() = default;

void Aion::OnTransaction(const Transaction& t, uint64_t now_ms) {
  ingress_.OnTransaction(t, now_ms);
}

void Aion::AdvanceTime(uint64_t now_ms) { ingress_.AdvanceTime(now_ms); }

Timestamp Aion::Gc(Timestamp up_to) { return ingress_.Gc(up_to); }

void Aion::GcToLiveTarget(size_t target) { ingress_.GcToLiveTarget(target); }

void Aion::Finish() { ingress_.Finish(); }

void Aion::DispatchTxn(const KeyEngine::TxnCtx& ctx, ClassifiedOps&& ops,
                       bool register_reads, uint64_t now_ms) {
  KeyEngine::OpsView view;
  view.reads = ops.ext_reads.data();
  view.num_reads = ops.ext_reads.size();
  view.writes = ops.writes.data();
  view.num_writes = ops.writes.size();
  view.list_reads = ops.list_reads.data();
  view.num_list_reads = ops.list_reads.size();
  view.appends = ops.appends.data();
  view.num_appends = ops.appends.size();
  engine_.ProcessTxn(ctx, view, register_reads, now_ms);
}

void Aion::DispatchFinalize(TxnId tid) { engine_.FinalizeTxn(tid); }

void Aion::DispatchGc(Timestamp watermark) { engine_.CollectUpTo(watermark); }

Aion::Footprint Aion::GetFootprint() const {
  Footprint f;
  f.live_txns = ingress_.live_txns();
  f.versions = engine_.TotalVersions();
  f.intervals = engine_.TotalIntervals();
  f.approx_bytes = engine_.ApproxBytes() + f.live_txns * 160 +
                   f.intervals * 64 + ingress_.used_ts_count() * 48;
  return f;
}

}  // namespace chronos
