#include "core/aion.h"

#include <algorithm>

#include "core/small_map.h"

namespace chronos {
namespace {

constexpr size_t kEpochCacheCap = 4;

}  // namespace

Aion::Aion(const Options& options, ViolationSink* sink)
    : options_(options), sink_(sink), spill_(options.spill_dir) {}

Aion::~Aion() = default;

void Aion::OnTransaction(const Transaction& t, uint64_t now_ms) {
  last_now_ms_ = std::max(last_now_ms_, now_ms);
  FireDeadlines(last_now_ms_);

  const bool ser = options_.mode == Mode::kSer;

  // Eq. (1) well-formedness (Algorithm 3 lines 4-5). SER ignores start
  // timestamps entirely.
  if (!ser && !t.TimestampsOrdered()) {
    sink_->Report({ViolationType::kTsOrder, t.tid, kTxnNone, 0,
                   static_cast<Value>(t.start_ts),
                   static_cast<Value>(t.commit_ts)});
    // INT does not depend on timestamps; still check it.
    SmallMap<Key, Value> int_val;
    for (const Op& op : t.ops) {
      if (op.type == OpType::kRead) {
        if (const Value* v = int_val.Find(op.key); v && *v != op.value) {
          sink_->Report(
              {ViolationType::kInt, t.tid, kTxnNone, op.key, *v, op.value});
        }
        int_val.Put(op.key, op.value);
      } else if (op.type == OpType::kWrite) {
        int_val.Put(op.key, op.value);
      }
    }
    sessions_[t.sid].skipped_snos.insert(t.sno);
    return;
  }

  // Duplicate timestamps across distinct transactions.
  bool dup = false;
  if (ser) {
    dup = !used_ts_.insert(t.commit_ts).second;
    if (!dup) used_ts_min_.push(t.commit_ts);
  } else {
    dup = used_ts_.count(t.start_ts) || used_ts_.count(t.commit_ts);
    if (!dup) {
      if (used_ts_.insert(t.start_ts).second) used_ts_min_.push(t.start_ts);
      if (used_ts_.insert(t.commit_ts).second) used_ts_min_.push(t.commit_ts);
    }
  }
  if (dup) {
    sink_->Report({ViolationType::kTsDuplicate, t.tid});
    sessions_[t.sid].skipped_snos.insert(t.sno);
    return;
  }

  CheckSession(t);

  TxnRec rec;
  rec.tid = t.tid;
  rec.commit_ts = t.commit_ts;
  rec.view_ts = ser ? t.commit_ts : t.start_ts;

  // Step 1: INT and (tentative) EXT for the new transaction.
  std::vector<std::pair<Key, Value>> final_writes;
  ReplayOps(t, &rec, last_now_ms_, &final_writes);

  // Register the transaction before installing its versions so that
  // Step-3 re-checking can find it (its own reads are never in the
  // affected range: an SI read view precedes its own commit and SER
  // readers see strictly earlier versions only).
  auto [stored_it, inserted] = txns_.emplace(t.tid, std::move(rec));
  TxnRec& stored = stored_it->second;
  // A replayed tid keeps its original record and registrations: pushing
  // its view on the heap again would outlive the single finalize
  // tombstone and pin the GC watermark forever. Its writes below still
  // go through Steps 2-3 like any other arrival.
  if (inserted) {
    if (commit_index_.empty() || t.commit_ts > commit_index_.back().first) {
      commit_index_.emplace_back(t.commit_ts, t.tid);  // common: in order
    } else {
      auto pos = std::lower_bound(
          commit_index_.begin(), commit_index_.end(), t.commit_ts,
          [](const auto& p, Timestamp ts) { return p.first < ts; });
      commit_index_.insert(pos, {t.commit_ts, t.tid});
    }
    view_heap_.push(stored.view_ts);
    for (uint32_t i = 0; i < stored.ext_reads.size(); ++i) {
      ReaderChain& chain = reader_index_[stored.ext_reads[i].key];
      ReaderRef ref{stored.view_ts, t.tid, i};
      if (chain.empty() || stored.view_ts > chain.back().view_ts) {
        chain.push_back(ref);  // common: views arrive in near-ts order
      } else {
        auto pos = std::lower_bound(
            chain.begin(), chain.end(), stored.view_ts,
            [](const ReaderRef& r, Timestamp ts) { return r.view_ts < ts; });
        chain.insert(pos, ref);
      }
    }
    deadlines_.emplace_back(last_now_ms_ + options_.ext_timeout_ms, t.tid);
  }

  // Step 3 (per written key): install the version and re-check EXT for
  // affected readers.
  for (const auto& [key, value] : final_writes) {
    InstallVersionAndRecheck(t, key, value, last_now_ms_);
  }

  // Step 2: NOCONFLICT against overlapping writers (SI only).
  if (!ser && !final_writes.empty()) {
    CheckNoConflict(t);
    for (const auto& [key, value] : final_writes) {
      (void)value;
      ongoing_.Add(key, t.start_ts, t.commit_ts, t.tid);
    }
  }

  ++stats_.txns_processed;
}

void Aion::CheckSession(const Transaction& t) {
  SessionState& ss = sessions_[t.sid];
  while (ss.skipped_snos.erase(static_cast<uint64_t>(ss.last_sno + 1)) > 0) {
    ++ss.last_sno;
  }
  const bool ser = options_.mode == Mode::kSer;
  // SI: the next transaction of a session must start after the previous
  // one committed (strong session). SER: its commit must come later in
  // commit order.
  Timestamp order_ts = ser ? t.commit_ts : t.start_ts;
  bool bad_order = ser ? order_ts <= ss.last_cts && ss.last_sno >= 0
                       : order_ts < ss.last_cts;
  if (static_cast<int64_t>(t.sno) != ss.last_sno + 1 || bad_order) {
    sink_->Report({ViolationType::kSession, t.tid, kTxnNone, 0,
                   static_cast<Value>(ss.last_sno + 1),
                   static_cast<Value>(t.sno)});
  }
  ss.last_sno = static_cast<int64_t>(t.sno);
  ss.last_cts = t.commit_ts;
}

void Aion::ReplayOps(const Transaction& t, TxnRec* rec, uint64_t now_ms,
                     std::vector<std::pair<Key, Value>>* final_writes) {
  SmallMap<Key, Value> int_val;
  SmallMap<Key, Value> ext_val;
  for (const Op& op : t.ops) {
    if (op.type == OpType::kRead) {
      if (Value* iv = int_val.Find(op.key)) {
        if (*iv != op.value) {
          sink_->Report({ViolationType::kInt, t.tid, kTxnNone, op.key, *iv,
                         op.value});
        }
        int_val.Put(op.key, op.value);
      } else {
        // External read: tentative EXT verdict against the current
        // frontier at the read view (Algorithm 3 lines 13-15).
        VersionedKv::Lookup cur = LookupFrontier(op.key, rec->view_ts);
        ExtReadState er;
        er.key = op.key;
        er.observed = op.value;
        er.satisfied = (cur.value == op.value);
        er.last_change_ms = now_ms;
        rec->ext_reads.push_back(er);
        int_val.Put(op.key, op.value);
      }
    } else if (op.type == OpType::kWrite) {
      int_val.Put(op.key, op.value);
      if (!ext_val.Find(op.key)) {
        final_writes->emplace_back(op.key, op.value);
      }
      ext_val.Put(op.key, op.value);
    }
  }
  // final_writes must carry the *last* written value per key.
  for (auto& [key, value] : *final_writes) value = *ext_val.Find(key);
}

VersionedKv::Lookup Aion::LookupFrontier(Key key, Timestamp view) {
  const bool inclusive = options_.mode == Mode::kSi;
  VersionedKv::Lookup mem = inclusive ? versions_.GetAtOrBefore(key, view)
                                      : versions_.GetBefore(key, view);
  if (view >= watermark_ || watermark_ == kTsMin) return mem;
  // The read view lies below the GC watermark: in-memory state may lack
  // the intermediate versions; merge with the spill store.
  if (!spill_.persistent()) {
    ++stats_.unsafe_below_watermark;
    return mem;
  }
  VersionedKv::Lookup spilled = LookupSpilled(key, view);
  return spilled.ts > mem.ts || (mem.tid == kTxnNone && spilled.tid != kTxnNone)
             ? spilled
             : mem;
}

VersionedKv::Lookup Aion::LookupSpilled(Key key, Timestamp view) {
  const bool inclusive = options_.mode == Mode::kSi;
  VersionedKv::Lookup best;
  for (uint64_t id : spill_epochs_) {
    const SpillPayload* payload = nullptr;
    for (auto& [cid, cp] : epoch_cache_) {
      if (cid == id) {
        payload = &cp;
        break;
      }
    }
    if (!payload) {
      SpillPayload loaded;
      if (!spill_.Load(id, &loaded)) continue;
      ++stats_.spill_reloads;
      if (epoch_cache_.size() >= kEpochCacheCap) {
        epoch_cache_.erase(epoch_cache_.begin());
      }
      epoch_cache_.emplace_back(id, std::move(loaded));
      payload = &epoch_cache_.back().second;
    }
    for (const auto& [k, ts, entry] : payload->versions) {
      bool qualifies = inclusive ? ts <= view : ts < view;
      if (k == key && qualifies && ts >= best.ts) {
        best = VersionedKv::Lookup{entry.value, entry.tid, ts};
      }
    }
  }
  return best;
}

void Aion::InstallVersionAndRecheck(const Transaction& t, Key key, Value value,
                                    uint64_t now_ms) {
  const bool ser = options_.mode == Mode::kSer;
  const Timestamp cts = t.commit_ts;

  // If an in-memory version at or after cts but at or below the watermark
  // exists, this writer is a straggler shadowed below the watermark: every
  // affected reader is already finalized, so no re-check is needed
  // (DESIGN.md Sec. 1.1). Evicted versions are all strictly older than the
  // retained per-key base, so the in-memory NextVersionAfter bound is
  // exact in the re-check path below.
  VersionedKv::Lookup base = versions_.GetAtOrBefore(key, watermark_);
  bool shadowed_below_watermark =
      watermark_ != kTsMin && cts < watermark_ && base.ts >= cts;

  std::optional<Timestamp> next = versions_.NextVersionAfter(key, cts);
  if (!versions_.Put(key, cts, value, t.tid)) {
    sink_->Report({ViolationType::kTsDuplicate, t.tid, kTxnNone, key});
    return;
  }
  if (shadowed_below_watermark) return;

  auto rit = reader_index_.find(key);
  if (rit == reader_index_.end()) return;
  const ReaderChain& readers = rit->second;

  // Affected read views: SI sees versions with cts <= view, so the range
  // is [cts, next); SER sees versions with cts < view, so it is (cts,
  // next].
  auto view_lt = [](const ReaderRef& r, Timestamp ts) {
    return r.view_ts < ts;
  };
  auto view_gt = [](Timestamp ts, const ReaderRef& r) {
    return ts < r.view_ts;
  };
  auto begin = ser ? std::upper_bound(readers.begin(), readers.end(), cts,
                                      view_gt)
                   : std::lower_bound(readers.begin(), readers.end(), cts,
                                      view_lt);
  for (auto it = begin; it != readers.end(); ++it) {
    if (next) {
      if (ser ? it->view_ts > *next : it->view_ts >= *next) break;
    }
    auto tit = txns_.find(it->tid);
    if (tit == txns_.end()) continue;
    TxnRec& reader = tit->second;
    if (reader.finalized) continue;  // Algorithm 3 line 40
    if (it->tid == t.tid) continue;
    const TxnId rtid = it->tid;
    ExtReadState& er = reader.ext_reads[it->read_idx];
    bool now_satisfied = (er.observed == value);
    ++stats_.ext_rechecks;
    if (now_satisfied != er.satisfied) {
      flip_stats_.RecordFlip(rtid, now_ms - er.last_change_ms);
      ++er.flips;
      er.satisfied = now_satisfied;
      er.last_change_ms = now_ms;
    }
  }
}

void Aion::CheckNoConflict(const Transaction& t) {
  // Collect this transaction's distinct written keys once.
  SmallMap<Key, bool> seen;
  for (const Op& op : t.ops) {
    if (op.type != OpType::kWrite || seen.Find(op.key)) continue;
    seen.Put(op.key, true);
    ++stats_.noconflict_checks;
    for (const WriteInterval& iv :
         ongoing_.Overlapping(op.key, t.start_ts, t.commit_ts)) {
      if (iv.tid == t.tid) continue;
      // Attribute the conflict to the earlier committer (paper's
      // deduplication rule).
      TxnId first = iv.end < t.commit_ts ? iv.tid : t.tid;
      TxnId second = first == iv.tid ? t.tid : iv.tid;
      sink_->Report({ViolationType::kNoConflict, first, second, op.key});
    }
    // Straggler below the watermark: evicted intervals may also overlap.
    if (watermark_ != kTsMin && t.start_ts < watermark_) {
      if (!spill_.persistent()) {
        ++stats_.unsafe_below_watermark;
      } else {
        for (uint64_t id : spill_epochs_) {
          SpillPayload payload;
          const SpillPayload* p = nullptr;
          for (auto& [cid, cp] : epoch_cache_) {
            if (cid == id) {
              p = &cp;
              break;
            }
          }
          if (!p) {
            if (!spill_.Load(id, &payload)) continue;
            ++stats_.spill_reloads;
            if (epoch_cache_.size() >= kEpochCacheCap) {
              epoch_cache_.erase(epoch_cache_.begin());
            }
            epoch_cache_.emplace_back(id, std::move(payload));
            p = &epoch_cache_.back().second;
          }
          for (const auto& [k, iv] : p->intervals) {
            if (k != op.key || iv.tid == t.tid) continue;
            if (iv.start <= t.commit_ts && iv.end >= t.start_ts) {
              TxnId first = iv.end < t.commit_ts ? iv.tid : t.tid;
              TxnId second = first == iv.tid ? t.tid : iv.tid;
              sink_->Report(
                  {ViolationType::kNoConflict, first, second, op.key});
            }
          }
        }
      }
    }
  }
}

void Aion::FinalizeTxn(TxnRec* rec) {
  if (rec->finalized) return;
  rec->finalized = true;
  finalized_views_.insert(rec->view_ts);
  for (const ExtReadState& er : rec->ext_reads) {
    flip_stats_.RecordPairDone(er.flips);
    if (!er.satisfied) {
      VersionedKv::Lookup cur = LookupFrontier(er.key, rec->view_ts);
      sink_->Report({ViolationType::kExt, rec->tid, cur.tid, er.key,
                     cur.value, er.observed});
    }
  }
}

std::optional<Timestamp> Aion::OldestUnfinalizedView() {
  while (!view_heap_.empty()) {
    Timestamp v = view_heap_.top();
    auto it = finalized_views_.find(v);
    if (it == finalized_views_.end()) return v;
    view_heap_.pop();
    finalized_views_.erase(it);
  }
  return std::nullopt;
}

void Aion::FireDeadlines(uint64_t now_ms) {
  while (!deadlines_.empty() && deadlines_.front().first <= now_ms) {
    TxnId tid = deadlines_.front().second;
    deadlines_.pop_front();
    auto it = txns_.find(tid);
    if (it != txns_.end()) FinalizeTxn(&it->second);
  }
}

void Aion::AdvanceTime(uint64_t now_ms) {
  last_now_ms_ = std::max(last_now_ms_, now_ms);
  FireDeadlines(last_now_ms_);
}

void Aion::Finish() {
  while (!deadlines_.empty()) {
    TxnId tid = deadlines_.front().second;
    deadlines_.pop_front();
    auto it = txns_.find(tid);
    if (it != txns_.end()) FinalizeTxn(&it->second);
  }
}

Timestamp Aion::Gc(Timestamp up_to) {
  // Clamp to the safe watermark: no unfinalized transaction's read view
  // may fall at or below the eviction point, otherwise a future Step-3
  // re-check could silently use an incomplete version bound.
  Timestamp effective = up_to;
  if (std::optional<Timestamp> oldest = OldestUnfinalizedView()) {
    if (*oldest == kTsMin) return watermark_;
    effective = std::min(effective, *oldest - 1);
  }
  if (effective <= watermark_) return watermark_;

  ++stats_.gc_passes;
  SpillPayload payload;
  payload.max_ts = effective;
  versions_.CollectUpTo(effective, &payload.versions);
  ongoing_.CollectUpTo(effective, &payload.intervals);
  uint64_t id = spill_.Spill(payload);
  if (id != 0) spill_epochs_.push_back(id);

  // Drop finalized transaction records committed at or below the line.
  // Reader refs are batch-compacted per key afterwards: erasing each ref
  // individually would make a pass over a hot key's chain quadratic.
  std::unordered_map<Key, std::vector<Timestamp>> dropped_views;
  auto line_end = std::upper_bound(
      commit_index_.begin(), commit_index_.end(), effective,
      [](Timestamp ts, const auto& p) { return ts < p.first; });
  auto keep = std::remove_if(
      commit_index_.begin(), line_end, [&](const std::pair<Timestamp, TxnId>& p) {
        auto tit = txns_.find(p.second);
        if (tit == txns_.end() || !tit->second.finalized) return false;
        for (const ExtReadState& er : tit->second.ext_reads) {
          dropped_views[er.key].push_back(tit->second.view_ts);
        }
        txns_.erase(tit);
        return true;
      });
  commit_index_.erase(keep, line_end);
  for (auto& [key, views] : dropped_views) {
    auto rit = reader_index_.find(key);
    if (rit == reader_index_.end()) continue;
    std::sort(views.begin(), views.end());
    ReaderChain& chain = rit->second;
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const ReaderRef& r) {
                                 return std::binary_search(
                                     views.begin(), views.end(), r.view_ts);
                               }),
                chain.end());
    if (chain.empty()) reader_index_.erase(rit);
  }
  // Timestamp-uniqueness bookkeeping below the line is no longer needed;
  // duplicates of recycled timestamps would be stragglers anyway.
  while (!used_ts_min_.empty() && used_ts_min_.top() <= effective) {
    used_ts_.erase(used_ts_min_.top());
    used_ts_min_.pop();
  }

  watermark_ = effective;
  return watermark_;
}

void Aion::GcToLiveTarget(size_t target) {
  if (txns_.size() <= target) return;
  // Fast reject: if the oldest unfinalized view already pins the
  // watermark, no amount of scanning will free anything (asynchrony
  // preventing recycling, Sec. III-C2 challenge 3).
  if (std::optional<Timestamp> oldest = OldestUnfinalizedView()) {
    if (*oldest == kTsMin || *oldest - 1 <= watermark_) return;
  }
  size_t excess = txns_.size() - target;
  Timestamp line = kTsMin;
  if (excess > 0 && !commit_index_.empty()) {
    line = commit_index_[std::min(excess, commit_index_.size()) - 1].first;
  }
  if (line != kTsMin) Gc(line);
}

Aion::Footprint Aion::GetFootprint() const {
  Footprint f;
  f.live_txns = txns_.size();
  f.versions = versions_.TotalVersions();
  f.intervals = ongoing_.TotalIntervals();
  f.approx_bytes = versions_.ApproxBytes() + f.live_txns * 160 +
                   f.intervals * 64 + used_ts_.size() * 48;
  return f;
}

}  // namespace chronos
