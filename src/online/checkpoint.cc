#include "online/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>

#include "core/state_io.h"

#ifdef _WIN32
#include <io.h>
#define chronos_fsync _commit
#define chronos_fileno _fileno
#else
#include <unistd.h>
#define chronos_fsync fsync
#define chronos_fileno fileno
#endif

namespace chronos::online {

namespace {

constexpr char kWalHeader[] = "chronos-wal v1\n";
constexpr uint64_t kCkptMagic = 0x43484B5054763101ULL;   // "CHKPTv1" + 1
constexpr uint64_t kCkptFooter = 0x454E44434B505401ULL;  // "ENDCKPT" + 1

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

// Serializes one transaction in the hist/codec.h line shapes, so WAL
// records are inspectable with the same eyes as .hist files.
void AppendTxnLines(std::string* out, const Transaction& t) {
  AppendF(out, "T %" PRIu64 " %u %" PRIu64 " %" PRIu64 " %" PRIu64 " %zu\n",
          t.tid, t.sid, t.sno, t.start_ts, t.commit_ts, t.ops.size());
  for (const Op& op : t.ops) {
    switch (op.type) {
      case OpType::kRead:
        AppendF(out, "R %" PRIu64 " %" PRId64 "\n", op.key, op.value);
        break;
      case OpType::kWrite:
        AppendF(out, "W %" PRIu64 " %" PRId64 "\n", op.key, op.value);
        break;
      case OpType::kAppend:
        AppendF(out, "A %" PRIu64 " %" PRId64 "\n", op.key, op.value);
        break;
      case OpType::kReadList: {
        const std::vector<Value>& elems = t.list_args[op.list_index];
        AppendF(out, "L %" PRIu64 " %zu", op.key, elems.size());
        for (Value e : elems) AppendF(out, " %" PRId64, e);
        out->push_back('\n');
        break;
      }
    }
  }
}

// Pulls the next newline-terminated line out of `s` starting at *pos.
// Returns false (leaving *pos alone) when no complete line remains —
// a torn tail.
bool NextLine(const std::string& s, size_t* pos, std::string* line) {
  size_t nl = s.find('\n', *pos);
  if (nl == std::string::npos) return false;
  line->assign(s, *pos, nl - *pos);
  *pos = nl + 1;
  return true;
}

// Parses one codec-shaped op line into `t`. Returns false on any
// malformed field.
bool ParseOpLine(const std::string& line, Transaction* t) {
  if (line.empty()) return false;
  char tag = line[0];
  const char* p = line.c_str() + 1;
  char* end = nullptr;
  if (tag == 'R' || tag == 'W' || tag == 'A') {
    Op op;
    op.type = tag == 'R' ? OpType::kRead
                         : tag == 'W' ? OpType::kWrite : OpType::kAppend;
    op.key = strtoull(p, &end, 10);
    if (end == p) return false;
    p = end;
    op.value = strtoll(p, &end, 10);
    if (end == p) return false;
    t->ops.push_back(op);
    return true;
  }
  if (tag == 'L') {
    Op op;
    op.type = OpType::kReadList;
    op.key = strtoull(p, &end, 10);
    if (end == p) return false;
    p = end;
    unsigned long long n = strtoull(p, &end, 10);
    if (end == p) return false;
    p = end;
    std::vector<Value> elems;
    elems.reserve(n);
    for (unsigned long long i = 0; i < n; ++i) {
      Value v = strtoll(p, &end, 10);
      if (end == p) return false;
      p = end;
      elems.push_back(v);
    }
    op.list_index = static_cast<uint32_t>(t->list_args.size());
    t->list_args.push_back(std::move(elems));
    t->ops.push_back(op);
    return true;
  }
  return false;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  FILE* f = fopen(path.c_str(), "rb");
  if (!f) return false;
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool ok = !ferror(f);
  fclose(f);
  return ok;
}

// tmp + fsync + rename: the destination either keeps its old content or
// holds the complete new content, never a torn prefix.
bool WriteFileAtomic(const std::string& path, const char* data, size_t len) {
  std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = fwrite(data, 1, len, f) == len && fflush(f) == 0 &&
            chronos_fsync(chronos_fileno(f)) == 0;
  ok = (fclose(f) == 0) && ok;
  if (!ok) {
    remove(tmp.c_str());
    return false;
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// WalWriter

bool WalWriter::Open(const std::string& path, uint64_t truncate_to) {
  if (f_) return false;
  if (truncate_to > 0) {
    std::error_code ec;
    std::filesystem::resize_file(path, truncate_to, ec);
    if (ec) return false;
  }
  f_ = fopen(path.c_str(), "ab");
  if (!f_) return false;
  long at = ftell(f_);
  if (at == 0) {
    if (fwrite(kWalHeader, 1, sizeof(kWalHeader) - 1, f_) !=
        sizeof(kWalHeader) - 1) {
      fclose(f_);
      f_ = nullptr;
      return false;
    }
  }
  return fflush(f_) == 0;
}

WalWriter::~WalWriter() {
  if (f_) fclose(f_);
}

bool WalWriter::Append(const std::string& body) {
  if (!f_) return false;
  uint64_t sum = Fnv1a(body.data(), body.size());
  std::string rec = body;
  AppendF(&rec, "E %016" PRIx64 "\n", sum);
  return fwrite(rec.data(), 1, rec.size(), f_) == rec.size() &&
         fflush(f_) == 0;
}

bool WalWriter::LogStep(const WalRecord& rec) {
  std::string body;
  AppendF(&body, "B %" PRIu64 " T %" PRIu64 " %d %" PRIu64 " %d\n", rec.seq,
          rec.now_ms, rec.gc ? 1 : 0, rec.gc_target, rec.shed ? 1 : 0);
  AppendTxnLines(&body, rec.txn);
  return Append(body);
}

bool WalWriter::Sync() {
  return f_ && fflush(f_) == 0 && chronos_fsync(chronos_fileno(f_)) == 0;
}

// ---------------------------------------------------------------------------
// ReadWal

bool ReadWal(const std::string& path, std::vector<WalRecord>* records,
             uint64_t* valid_bytes) {
  records->clear();
  *valid_bytes = 0;
  std::string data;
  if (!ReadWholeFile(path, &data)) return false;
  const size_t header_len = sizeof(kWalHeader) - 1;
  if (data.size() < header_len ||
      data.compare(0, header_len, kWalHeader) != 0) {
    return false;
  }
  size_t pos = header_len;
  *valid_bytes = pos;
  for (;;) {
    size_t rec_start = pos;
    std::string line;
    if (!NextLine(data, &pos, &line)) break;  // torn or end of file
    WalRecord rec;
    int gc = 0, shed = 0;
    if (sscanf(line.c_str(), "B %" SCNu64 " T %" SCNu64 " %d %" SCNu64 " %d",
               &rec.seq, &rec.now_ms, &gc, &rec.gc_target, &shed) != 5) {
      break;
    }
    rec.gc = gc != 0;
    rec.shed = shed != 0;
    std::string tline;
    size_t nops = 0;
    if (!NextLine(data, &pos, &tline) ||
        sscanf(tline.c_str(), "T %" SCNu64 " %u %" SCNu64 " %" SCNu64
                              " %" SCNu64 " %zu",
               &rec.txn.tid, &rec.txn.sid, &rec.txn.sno, &rec.txn.start_ts,
               &rec.txn.commit_ts, &nops) != 6) {
      break;
    }
    bool body_ok = true;
    for (size_t i = 0; i < nops && body_ok; ++i) {
      std::string opline;
      body_ok = NextLine(data, &pos, &opline) && ParseOpLine(opline, &rec.txn);
    }
    if (!body_ok) break;
    // Checksum line covers everything from the 'B' line through the last
    // body line, newline included.
    size_t body_end = pos;
    std::string eline;
    uint64_t want = 0;
    if (!NextLine(data, &pos, &eline) ||
        sscanf(eline.c_str(), "E %" SCNx64, &want) != 1 ||
        Fnv1a(data.data() + rec_start, body_end - rec_start) != want) {
      break;
    }
    records->push_back(std::move(rec));
    *valid_bytes = pos;
  }
  return true;
}

// ---------------------------------------------------------------------------
// CheckpointManager

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {
  for (const auto& [seq, path] : List(dir_)) {
    (void)path;
    if (seq >= next_seq_) next_seq_ = seq + 1;
  }
}

std::vector<std::pair<uint64_t, std::string>> CheckpointManager::List(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    int consumed = 0;
    if (sscanf(name.c_str(), "ckpt-%" SCNu64 ".ckpt%n", &seq, &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      out.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool CheckpointManager::Write(const ShardedAion::StateImage& img,
                              uint64_t wal_seq, uint64_t events, size_t keep) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  StateWriter w;
  w.U64(kCkptMagic);
  w.U64(next_seq_);
  w.U64(wal_seq);
  w.U64(events);
  w.U64(2 + img.shards.size());
  // Header checksum: the five leading u64s carry the replay metadata
  // (which WAL records the image covers) — a flipped bit there would
  // silently skip or double-replay records, so it must fail the load
  // just as loudly as a corrupt section.
  w.U64(Fnv1a(w.data().data(), w.data().size()));
  auto section = [&w](const std::string& s) {
    w.Bytes(s.data(), s.size());
    w.U64(Fnv1a(s.data(), s.size()));
  };
  section(img.ingress);
  section(img.coordinator);
  for (const std::string& s : img.shards) section(s);
  w.U64(kCkptFooter);

  char name[64];
  snprintf(name, sizeof(name), "/ckpt-%" PRIu64 ".ckpt", next_seq_);
  if (!WriteFileAtomic(dir_ + name, w.data().data(), w.data().size())) {
    return false;
  }
  ++next_seq_;

  auto all = List(dir_);
  while (all.size() > keep) {
    remove(all.front().second.c_str());
    all.erase(all.begin());
  }
  return true;
}

bool CheckpointManager::Load(const std::string& path, Loaded* out) {
  std::string data;
  if (!ReadWholeFile(path, &data)) return false;
  StateReader r(data);
  if (r.U64() != kCkptMagic) return false;
  out->ckpt_seq = r.U64();
  out->wal_seq = r.U64();
  out->events = r.U64();
  uint64_t nsections = r.U64();
  if (!r.ok() || nsections < 2 || nsections > 2 + 64) return false;
  if (data.size() < 40 || r.U64() != Fnv1a(data.data(), 40) || !r.ok()) {
    return false;
  }
  auto section = [&r](std::string* s) {
    *s = r.Bytes();
    return r.ok() && Fnv1a(s->data(), s->size()) == r.U64() && r.ok();
  };
  if (!section(&out->img.ingress) || !section(&out->img.coordinator)) {
    return false;
  }
  out->img.shards.resize(nsections - 2);
  for (std::string& s : out->img.shards) {
    if (!section(&s)) return false;
  }
  if (r.U64() != kCkptFooter || !r.ok() || !r.AtEnd()) return false;
  // The coordinator section leads with the shard count; cross-check it
  // against the section count so a truncated-and-repadded file can't
  // smuggle a mismatched geometry past the checksums.
  StateReader peek(out->img.coordinator);
  out->num_shards = peek.U64();
  return peek.ok() && out->num_shards == nsections - 2;
}

// ---------------------------------------------------------------------------
// DurableRunner

DurableRunner::DurableRunner(ShardedAion* checker, const Options& opts,
                             uint64_t start_seq, uint64_t start_events,
                             uint64_t wal_truncate_to)
    : checker_(checker),
      opts_(opts),
      ckpts_(opts.dir),
      next_seq_(start_seq),
      events_(start_events) {
  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  ok_ = wal_.Open(opts_.dir + "/wal.log", wal_truncate_to);
}

bool DurableRunner::Checkpoint() {
  if (!ok_) return false;
  // The WAL must be durable up to the cut the image covers: otherwise a
  // crash could leave a checkpoint that references records the log lost.
  if (!wal_.Sync()) {
    ok_ = false;
    return false;
  }
  ShardedAion::StateImage img = checker_->ExportState();
  if (!ckpts_.Write(img, next_seq_ - 1, events_, opts_.keep_checkpoints)) {
    ok_ = false;
    return false;
  }
  ++checkpoints_;
  return true;
}

bool DurableRunner::Feed(const Transaction& t, uint64_t now_ms) {
  if (!ok_) return false;
  checker_->OnTransaction(t, now_ms);
  ++events_;

  WalRecord rec;
  rec.seq = next_seq_;
  rec.now_ms = now_ms;
  rec.txn = t;
  rec.gc_target = opts_.gc_target;
  rec.gc =
      opts_.gc_every_events > 0 && events_ % opts_.gc_every_events == 0;
  if (rec.gc) checker_->GcToLiveTarget(opts_.gc_target);

  // Bounded-memory degradation, on a fixed cadence with the barrier-
  // exact footprint so the decision is a pure function of the event
  // prefix: GC as far as the safe watermark allows, then trim list
  // buffers below it.
  if (opts_.memory_ceiling_bytes > 0 && opts_.ceiling_check_every > 0 &&
      events_ % opts_.ceiling_check_every == 0 &&
      checker_->FootprintExact().approx_bytes > opts_.memory_ceiling_bytes) {
    rec.shed = true;
    checker_->Gc(std::numeric_limits<Timestamp>::max());
    checker_->ShedMemory();
    ++sheds_;
  }

  // The whole step lands as one atomic record: a crash can lose the
  // step entirely (the caller refeeds it and the decisions above are
  // re-derived identically) but never split it.
  if (!wal_.LogStep(rec)) {
    ok_ = false;
    return false;
  }
  ++next_seq_;

  if (rec.shed) {
    if (!Checkpoint()) return false;  // persist the shrunken state
  } else if (opts_.checkpoint_every_events > 0 &&
             events_ % opts_.checkpoint_every_events == 0) {
    if (!Checkpoint()) return false;
  }
  return true;
}

}  // namespace chronos::online
