#include "online/pipeline.h"

#include <chrono>

namespace chronos::online {

RunResult RunMaxRate(Aion* checker,
                     const std::vector<hist::CollectedTxn>& stream,
                     const GcPolicy& gc, uint64_t sample_every) {
  RunResult result;
  ThroughputMeter meter(1000);
  auto start = std::chrono::steady_clock::now();
  auto wall_ms = [&] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  uint64_t done = 0;
  for (const hist::CollectedTxn& ct : stream) {
    checker->OnTransaction(ct.txn, ct.deliver_at_ms);
    ++done;
    meter.Record(wall_ms());

    // GC is clamped to the safe watermark inside Aion: transactions whose
    // EXT timeout has not expired are never evicted, so collection only
    // reclaims finalized state (paper: asynchrony may prevent recycling).
    // Attempts are rate-limited: a hard cap retries constantly (the
    // paper's thrashing full-gc mode), a threshold policy checks more
    // lazily.
    if (gc.mode != GcPolicy::Mode::kNone) {
      uint64_t gc_check_every =
          gc.mode == GcPolicy::Mode::kHardCap ? 64 : 1024;
      if (done % gc_check_every == 0 &&
          checker->GetFootprint().live_txns >= gc.max_live) {
        checker->GcToLiveTarget(gc.target_live);
      }
    }

    if (done % sample_every == 0) {
      result.samples.push_back({static_cast<double>(wall_ms()) / 1000.0, done,
                                ReadRssBytes(),
                                checker->GetFootprint().live_txns});
    }
  }
  checker->Finish();

  result.txns = done;
  result.wall_seconds = static_cast<double>(wall_ms()) / 1000.0;
  for (size_t i = 0; i < meter.counts().size(); ++i) {
    result.tps_per_window.push_back(meter.Tps(i));
  }
  return result;
}

void RunVirtualTime(Aion* checker,
                    const std::vector<hist::CollectedTxn>& stream) {
  for (const hist::CollectedTxn& ct : stream) {
    checker->OnTransaction(ct.txn, ct.deliver_at_ms);
  }
  checker->Finish();
}

}  // namespace chronos::online
