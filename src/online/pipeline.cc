#include "online/pipeline.h"

#include <chrono>
#include <thread>

#include "core/aion.h"
#include "online/queue.h"
#include "online/sharded_aion.h"

namespace chronos::online {
namespace {

/// Per-transaction bookkeeping shared by RunMaxRate and RunThreaded so
/// both drivers report byte-identical RunResult series (modulo wall
/// clock) and apply GC at the same points of the stream.
class DriverLoop {
 public:
  DriverLoop(OnlineChecker* checker, const GcPolicy& gc, uint64_t sample_every,
             RunResult* result)
      : checker_(checker),
        gc_(gc),
        sample_every_(sample_every),
        result_(result),
        meter_(1000),
        start_(std::chrono::steady_clock::now()) {}

  uint64_t WallMs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  void Feed(const hist::CollectedTxn& ct) {
    checker_->OnTransaction(ct.txn, ct.deliver_at_ms);
    ++done_;
    meter_.Record(WallMs());

    // GC is clamped to the safe watermark inside Aion: transactions whose
    // EXT timeout has not expired are never evicted, so collection only
    // reclaims finalized state (paper: asynchrony may prevent recycling).
    // Attempts are rate-limited: a hard cap retries constantly (the
    // paper's thrashing full-gc mode), a threshold policy checks more
    // lazily.
    if (gc_.mode != GcPolicy::Mode::kNone) {
      uint64_t gc_check_every =
          gc_.mode == GcPolicy::Mode::kHardCap ? 64 : 1024;
      if (done_ % gc_check_every == 0 &&
          checker_->GetFootprint().live_txns >= gc_.max_live) {
        checker_->GcToLiveTarget(gc_.target_live);
      }
    }

    if (done_ % sample_every_ == 0) {
      result_->samples.push_back({static_cast<double>(WallMs()) / 1000.0,
                                  done_, ReadRssBytes(),
                                  checker_->GetFootprint().live_txns});
    }
  }

  void Finish() {
    checker_->Finish();
    result_->txns = done_;
    result_->wall_seconds = static_cast<double>(WallMs()) / 1000.0;
    for (size_t i = 0; i < meter_.counts().size(); ++i) {
      result_->tps_per_window.push_back(meter_.Tps(i));
    }
  }

 private:
  OnlineChecker* checker_;
  GcPolicy gc_;
  uint64_t sample_every_;
  RunResult* result_;
  ThroughputMeter meter_;
  std::chrono::steady_clock::time_point start_;
  uint64_t done_ = 0;
};

}  // namespace

RunResult RunMaxRate(OnlineChecker* checker,
                     const std::vector<hist::CollectedTxn>& stream,
                     const GcPolicy& gc, uint64_t sample_every) {
  RunResult result;
  DriverLoop loop(checker, gc, sample_every, &result);
  for (const hist::CollectedTxn& ct : stream) loop.Feed(ct);
  loop.Finish();
  return result;
}

RunResult RunThreaded(OnlineChecker* checker,
                      const std::vector<hist::CollectedTxn>& stream,
                      const GcPolicy& gc, uint64_t sample_every,
                      size_t batch_size, size_t queue_capacity) {
  if (batch_size == 0) batch_size = 1;
  RunResult result;
  DriverLoop loop(checker, gc, sample_every, &result);
  BoundedQueue<hist::CollectedTxn> queue(queue_capacity);

  // Producer: the "collector" side. Decoding/preparing batches happens
  // here, off the checker thread; with a pre-collected stream this is the
  // copy into the queue.
  std::thread producer([&] {
    std::vector<hist::CollectedTxn> batch;
    batch.reserve(batch_size);
    for (const hist::CollectedTxn& ct : stream) {
      batch.push_back(ct);
      if (batch.size() >= batch_size) {
        if (!queue.PushBatch(std::move(batch))) return;
        batch.clear();
        batch.reserve(batch_size);
      }
    }
    if (!batch.empty()) queue.PushBatch(std::move(batch));
    queue.Close();
  });

  // Consumer: the checker/coordinator thread (this thread). A sharded
  // checker fans the drained transactions out to its workers from here.
  std::vector<hist::CollectedTxn> chunk;
  while (queue.PopBatch(&chunk, batch_size)) {
    for (const hist::CollectedTxn& ct : chunk) loop.Feed(ct);
  }
  producer.join();
  loop.Finish();
  return result;
}

void RunVirtualTime(OnlineChecker* checker,
                    const std::vector<hist::CollectedTxn>& stream) {
  for (const hist::CollectedTxn& ct : stream) {
    checker->OnTransaction(ct.txn, ct.deliver_at_ms);
  }
  checker->Finish();
}

std::unique_ptr<OnlineChecker> MakeChecker(const CheckerOptions& options,
                                           size_t shards,
                                           ViolationSink* sink) {
  if (shards <= 1) return std::make_unique<Aion>(options, sink);
  return std::make_unique<ShardedAion>(options, shards, sink);
}

}  // namespace chronos::online
