#include "online/metrics.h"

#include <cstdio>
#include <unistd.h>

namespace chronos::online {

size_t ReadRssBytes() {
  FILE* f = fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long total = 0, resident = 0;
  int n = fscanf(f, "%ld %ld", &total, &resident);
  fclose(f);
  if (n != 2) return 0;
  long page = sysconf(_SC_PAGESIZE);
  return static_cast<size_t>(resident) * static_cast<size_t>(page);
}

}  // namespace chronos::online
