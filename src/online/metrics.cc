#include "online/metrics.h"

#include <cstdio>
#include <unistd.h>

namespace chronos::online {

size_t ReadRssBytes() {
  FILE* f = fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long total = 0, resident = 0;
  int n = fscanf(f, "%ld %ld", &total, &resident);
  fclose(f);
  if (n != 2) return 0;
  long page = sysconf(_SC_PAGESIZE);
  return static_cast<size_t>(resident) * static_cast<size_t>(page);
}

namespace {

void PrintRing(std::FILE* out, const char* name, size_t index,
               const RingHealth& r) {
  std::fprintf(out,
               "  %s[%zu]: depth_hwm=%llu producer_stalls=%llu "
               "consumer_stalls=%llu\n",
               name, index, static_cast<unsigned long long>(r.depth_hwm),
               static_cast<unsigned long long>(r.producer_stalls),
               static_cast<unsigned long long>(r.consumer_stalls));
}

}  // namespace

void PrintPipelineHealth(const PipelineHealth& h, std::FILE* out) {
  std::fprintf(out, "pipeline: sequencer_msgs=%llu coordinator_idle=%.3f\n",
               static_cast<unsigned long long>(h.sequencer_msgs),
               h.CoordinatorIdleRatio());
  PrintRing(out, "seq_ring", 0, h.seq_ring);
  for (size_t i = 0; i < h.pre_stage_in.size(); ++i) {
    PrintRing(out, "pre_stage_in", i, h.pre_stage_in[i]);
  }
  for (size_t i = 0; i < h.pre_stage_out.size(); ++i) {
    PrintRing(out, "pre_stage_out", i, h.pre_stage_out[i]);
  }
  for (size_t i = 0; i < h.shard_rings.size(); ++i) {
    PrintRing(out, "shard_ring", i, h.shard_rings[i]);
  }
}

}  // namespace chronos::online
