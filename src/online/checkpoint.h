// Crash-safe durability for the online checker: periodic checkpoints of
// the full ShardedAion state plus a write-ahead log of input events, so
// a killed checker process resumes verdict-identical to an uninterrupted
// run (see ROADMAP "Checkpoint & recovery").
//
// Determinism basis: every verdict, stat and watermark of the checker is
// a pure function of the arrival sequence (transaction, now_ms) and the
// driver's GC/shed decisions, all of which the WAL records. A checkpoint
// is therefore only ever taken at a quiescent cut (ExportState drains
// the shard pipeline), and recovery = newest valid checkpoint + WAL
// replay of the records past its cut.
//
// Checkpoint file (ckpt-<seq>.ckpt, binary, written tmp+fsync+rename):
//   u64 magic | u64 ckpt_seq | u64 wal_seq | u64 events | u64 nsections
//   u64 fnv1a(previous 40 bytes)      header checksum (replay metadata)
//   per section: u64 len | bytes | u64 fnv1a(bytes)
//   u64 footer magic
// Sections are [ingress, coordinator, shard 0..N-1] in StateImage order;
// the coordinator section begins with the shard count, so recovery can
// size the checker without being told --shards. The two newest
// checkpoints are retained: a torn or corrupt newest file falls back to
// its predecessor (plus a longer WAL replay).
//
// WAL (wal.log, text, one record per Feed step, codec line discipline):
//   chronos-wal v1
//   B <seq> T <now_ms> <gc> <gc_target> <shed>
//   T <tid> <sid> <sno> ...     codec transaction block (hist/codec.h)
//   R|W|A|L ...
//   E <fnv1a-hex>               checksum of the record body ('B'..'\n')
// One record describes EVERYTHING the runner did for one arrival: feed
// the transaction, then (gc=1) GcToLiveTarget(gc_target), then (shed=1)
// the ceiling shed (max GC + list-buffer trim). The record is written
// atomically AFTER those decisions, so a crash leaves either the whole
// step or none of it — there is no window where replay would feed the
// arrival but lose its GC/shed, which would fork the recovered state
// from the uninterrupted run. (A step lost entirely is refed by the
// caller; its decisions are re-derived deterministically: the GC cadence
// from the event count, the shed from the barrier-exact footprint.)
// A torn tail (partial record, bad checksum) ends replay at the last
// valid record; recovery truncates the file there before appending.
#ifndef CHRONOS_ONLINE_CHECKPOINT_H_
#define CHRONOS_ONLINE_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"
#include "core/types.h"
#include "online/sharded_aion.h"

namespace chronos::online {

/// One parsed WAL record: a full Feed step.
struct WalRecord {
  uint64_t seq = 0;
  uint64_t now_ms = 0;
  Transaction txn;
  bool gc = false;          ///< GcToLiveTarget(gc_target) after the feed
  uint64_t gc_target = 0;
  bool shed = false;        ///< ceiling shed (max GC + trim) after that
};

/// Appends checksummed records to a WAL file. Not thread-safe; owned by
/// the driver thread.
class WalWriter {
 public:
  /// Opens `path` for append, writing the header when the file is new
  /// (or empty). `truncate_to` > 0 first truncates the file to that many
  /// bytes — recovery uses it to drop a torn tail before resuming.
  bool Open(const std::string& path, uint64_t truncate_to = 0);
  ~WalWriter();

  bool LogStep(const WalRecord& rec);
  /// Flushes user-space buffers and fsyncs (checkpoint boundaries).
  bool Sync();

 private:
  bool Append(const std::string& body);

  FILE* f_ = nullptr;
};

/// Parses a WAL file. `records` receives every valid record in order;
/// `valid_bytes` the file offset just past the last valid record (the
/// truncation point for resuming). Returns false only when the file
/// cannot be read at all or its header is wrong — a torn tail is a
/// normal, expected outcome, not an error.
bool ReadWal(const std::string& path, std::vector<WalRecord>* records,
             uint64_t* valid_bytes);

/// Checkpoint writer/loader for one durability directory.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir);

  /// Writes `img` as the next checkpoint (tmp + fsync + rename), then
  /// prunes to the `keep` newest. `wal_seq` is the last WAL record the
  /// image covers and `events` the arrival count it covers.
  bool Write(const ShardedAion::StateImage& img, uint64_t wal_seq,
             uint64_t events, size_t keep = 2);

  uint64_t next_seq() const { return next_seq_; }
  const std::string& dir() const { return dir_; }

  /// A successfully parsed and checksum-verified checkpoint.
  struct Loaded {
    ShardedAion::StateImage img;
    uint64_t ckpt_seq = 0;
    uint64_t wal_seq = 0;
    uint64_t events = 0;
    size_t num_shards = 0;
  };
  /// Strict load: any framing, length or checksum mismatch fails.
  static bool Load(const std::string& path, Loaded* out);

  /// (seq, path) of every ckpt-<seq>.ckpt in `dir`, ascending by seq.
  static std::vector<std::pair<uint64_t, std::string>> List(
      const std::string& dir);

 private:
  std::string dir_;
  uint64_t next_seq_ = 1;
};

/// Drives a ShardedAion durably: every Feed step (arrival + GC cadence
/// + ceiling decision) becomes one atomic WAL record, checkpoints are
/// cut every `checkpoint_every_events` arrivals, and when
/// `memory_ceiling_bytes` is exceeded the runner GCs, sheds list memory
/// (the bounded-memory degradation path), and checkpoints the shrunken
/// state. A kill at any byte of this sequence recovers
/// verdict-identical via Recover() (online/recovery.h).
class DurableRunner {
 public:
  struct Options {
    std::string dir;                     ///< checkpoints + wal.log
    uint64_t checkpoint_every_events = 0;  ///< 0: only ceiling checkpoints
    size_t gc_every_events = 0;          ///< GcToLiveTarget cadence (0: off)
    size_t gc_target = 0;
    size_t memory_ceiling_bytes = 0;     ///< 0: no ceiling
    /// Ceiling checks run every this-many events with the barrier-exact
    /// footprint: the check is deterministic (so replay and refeed make
    /// the same shed decisions) at the cost of one pipeline drain per
    /// check; the footprint can overshoot the ceiling by at most the
    /// growth of one check interval.
    size_t ceiling_check_every = 16;
    size_t keep_checkpoints = 2;
  };

  /// `start_seq`/`start_events` resume the WAL numbering after recovery
  /// (1/0 for a fresh run). `wal_truncate_to` drops a torn tail first.
  DurableRunner(ShardedAion* checker, const Options& opts,
                uint64_t start_seq = 1, uint64_t start_events = 0,
                uint64_t wal_truncate_to = 0);

  /// Capability of the single driver thread. The runner is not
  /// thread-safe by design (the WAL sequence numbers and the checker's
  /// coordinator API both assume one caller); a driver assumes this role
  /// once and makes every Feed/Checkpoint/Finish call under it.
  ThreadRole driver_role;

  /// Feeds one arrival, runs the GC cadence and the ceiling check, logs
  /// the whole step as one atomic WAL record, then runs the checkpoint
  /// cadence. Returns false on an I/O failure.
  bool Feed(const Transaction& t, uint64_t now_ms)
      CHRONOS_REQUIRES(driver_role);

  /// Cuts a checkpoint now (also used by tests to force boundaries).
  bool Checkpoint() CHRONOS_REQUIRES(driver_role);

  /// Finalizes the checker (end of stream; not WAL-logged).
  void Finish() CHRONOS_REQUIRES(driver_role) { checker_->Finish(); }

  bool ok() const { return ok_; }
  uint64_t events() const CHRONOS_REQUIRES_SHARED(driver_role) {
    return events_;
  }
  uint64_t next_seq() const CHRONOS_REQUIRES_SHARED(driver_role) {
    return next_seq_;
  }
  uint64_t checkpoints_written() const { return checkpoints_; }
  uint64_t sheds() const { return sheds_; }

 private:
  ShardedAion* checker_;
  Options opts_;
  CheckpointManager ckpts_;
  WalWriter wal_;
  uint64_t next_seq_ CHRONOS_GUARDED_BY(driver_role) = 1;
  uint64_t events_ CHRONOS_GUARDED_BY(driver_role) = 0;
  uint64_t checkpoints_ = 0;
  uint64_t sheds_ = 0;
  bool ok_ = true;
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_CHECKPOINT_H_
