// Drivers that feed collected transaction streams into AION under the
// paper's three GC strategies (Fig. 12: no-gc / checking-gc / full-gc)
// and sample throughput and memory as they go.
#ifndef CHRONOS_ONLINE_PIPELINE_H_
#define CHRONOS_ONLINE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/online_checker.h"
#include "core/violation.h"
#include "hist/collector.h"
#include "online/metrics.h"

namespace chronos::online {

/// The paper's GC strategies for online checking (Sec. VI-B).
struct GcPolicy {
  enum class Mode {
    kNone,       ///< never collect: memory grows with the stream
    kThreshold,  ///< collect down to `target_live` when `max_live` reached
    kHardCap,    ///< collect every time the hard cap is hit (paper's
                 ///< "maximum transaction limit" / full-gc mode)
  };
  Mode mode = Mode::kNone;
  size_t max_live = 100000;
  size_t target_live = 50000;

  static GcPolicy None() { return {}; }
  static GcPolicy Threshold(size_t max_live, size_t target_live) {
    return {Mode::kThreshold, max_live, target_live};
  }
  static GcPolicy HardCap(size_t cap) {
    return {Mode::kHardCap, cap, cap > 1 ? cap - cap / 16 : cap};
  }
};

/// One sample of the run's progress.
struct RunSample {
  double wall_seconds = 0;
  uint64_t txns_done = 0;
  size_t rss_bytes = 0;
  size_t live_txns = 0;
};

/// Result of driving a stream through a checker at maximum rate.
struct RunResult {
  double wall_seconds = 0;
  uint64_t txns = 0;
  std::vector<RunSample> samples;        ///< taken every `sample_every` txns
  std::vector<double> tps_per_window;    ///< throughput series (1 s windows)

  double AvgTps() const {
    return wall_seconds > 0 ? static_cast<double>(txns) / wall_seconds : 0;
  }
};

/// Feeds the stream into `checker` as fast as it will go (the paper's
/// throughput-limit methodology: pre-collected logs arriving faster than
/// the checker can process). Virtual delivery timestamps drive the EXT
/// timeout clock; wall time drives the TPS series. The checker is either
/// the monolithic `Aion` or a `ShardedAion` (the shards knob: see
/// MakeChecker below) — the driver bookkeeping is identical, so their
/// RunResult series stay comparable.
RunResult RunMaxRate(OnlineChecker* checker,
                     const std::vector<hist::CollectedTxn>& stream,
                     const GcPolicy& gc, uint64_t sample_every = 10000);

/// Feeds the stream honoring virtual delivery times (for flip-flop
/// studies, Figs. 13/14): each transaction is delivered at its scheduled
/// virtual millisecond and timeouts fire in virtual time.
void RunVirtualTime(OnlineChecker* checker,
                    const std::vector<hist::CollectedTxn>& stream);

/// Two-stage collector->checker pipeline (paper Fig. 3): a producer
/// thread batches the stream into a bounded queue (`PushBatch`, one lock
/// per batch) and the calling thread drains it with `PopBatch`, feeding
/// the checker — with a `ShardedAion` the drained commands fan out again
/// to the shard workers, making this a three-stage
/// collector->coordinator->shards pipeline. GC policy, sampling, and the
/// reported RunResult series are identical to RunMaxRate on the same
/// stream, so Fig. 12 style runs can use either driver interchangeably.
RunResult RunThreaded(OnlineChecker* checker,
                      const std::vector<hist::CollectedTxn>& stream,
                      const GcPolicy& gc, uint64_t sample_every = 10000,
                      size_t batch_size = 500, size_t queue_capacity = 4096);

/// The shards knob: constructs the checker for `shards` (<= 1 the
/// monolithic `Aion`, otherwise a `ShardedAion` with that many key
/// partitions). Callers that need concrete-type accessors (stats,
/// flip_stats) construct the checker themselves instead.
std::unique_ptr<OnlineChecker> MakeChecker(const CheckerOptions& options,
                                           size_t shards,
                                           ViolationSink* sink);

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_PIPELINE_H_
