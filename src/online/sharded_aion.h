// ShardedAion: AION over N key-partitioned KeyEngine shards, each owned
// by a worker thread, fed through the batched BoundedQueue path (paper
// Fig. 3, parallelized). The per-key decomposition is sound because
// every expensive step of Algorithm 3 — NOCONFLICT overlap queries,
// Step-3 EXT re-checks, frontier lookups, GC eviction — only consults
// state of the key it operates on (cf. the per-key version-order
// decomposition of Biswas & Enea).
//
// Architecture:
//   - The calling thread runs the transaction-scoped `TxnIngress`
//     (SESSION/INT/timestamp checks, EXT timeout clock, GC watermark)
//     and acts as coordinator: it partitions each transaction's
//     footprint by hash(key) % N and appends per-shard commands to
//     per-shard pending buffers, flushed as batches into each shard's
//     BoundedQueue (one lock per batch).
//   - Each worker drains its queue in FIFO order. Because the
//     coordinator issues commands in one total order and engines never
//     read other shards' keys, per-shard FIFO delivery reproduces the
//     monolith's verdicts exactly: a 1-shard ShardedAion is verdict- and
//     violation-identical to `Aion`.
//   - Finalize commands go only to the shards holding the transaction's
//     external reads; GC commands broadcast the coordinator's effective
//     watermark to every shard, which collects and spills independently
//     (spill_dir/shard<i>) but at the same cut.
//   - Violations are buffered per shard (plus the coordinator's own) and
//     emitted to the sink at Finish(), sorted by (commit_ts, txn id,
//     content) — deterministic regardless of shard count or thread
//     timing. Buffering until Finish is deliberate: stragglers can
//     report NOCONFLICT against spilled intervals of arbitrarily old
//     transactions, so no mid-stream flush point preserves global
//     sortedness. The cost is O(#violations) memory for the run —
//     violations are anomalies, so this stays small in practice.
#ifndef CHRONOS_ONLINE_SHARDED_AION_H_
#define CHRONOS_ONLINE_SHARDED_AION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/flipflop_stats.h"
#include "core/key_engine.h"
#include "core/online_checker.h"
#include "core/txn_ingress.h"
#include "core/types.h"
#include "core/violation.h"
#include "online/queue.h"

namespace chronos::online {

class ShardedAion : public OnlineChecker, private TxnIngress::Dispatch {
 public:
  using Options = CheckerOptions;

  /// `num_shards` is clamped to [1, 64]. `cmd_batch` commands are
  /// buffered per shard before one PushBatch; `queue_capacity` bounds
  /// each shard's queue (backpressure on the coordinator).
  ShardedAion(const Options& options, size_t num_shards, ViolationSink* sink,
              size_t cmd_batch = 256, size_t queue_capacity = 8192);
  ~ShardedAion() override;

  ShardedAion(const ShardedAion&) = delete;
  ShardedAion& operator=(const ShardedAion&) = delete;

  // OnlineChecker. All calls must come from one coordinator thread.
  void OnTransaction(const Transaction& t, uint64_t now_ms) override;
  void AdvanceTime(uint64_t now_ms) override;
  Timestamp Gc(Timestamp up_to) override;
  void GcToLiveTarget(size_t target) override;
  /// Finalizes outstanding transactions, drains every shard, and emits
  /// all buffered violations to the sink in (commit_ts, txn id) order.
  void Finish() override;

  /// Cheap footprint: live_txns is exact (coordinator state); versions/
  /// intervals/bytes read per-shard atomics that trail the workers by at
  /// most one command batch (exact after Finish()/stats()).
  CheckerFootprint GetFootprint() const override;

  /// Exact footprint: drains every dispatched command first, so the
  /// result is a pure function of the events consumed — the durable
  /// runner's memory-ceiling decisions use this to stay reproducible
  /// across crash/recovery (online/checkpoint.h).
  CheckerFootprint FootprintExact();

  /// Merged stats across the coordinator and all shards. Blocks until
  /// every dispatched command has executed.
  CheckerStats stats();
  /// Merged flip-flop statistics (see FlipFlopStats::Merge). Blocks
  /// until every dispatched command has executed.
  FlipFlopStats flip_stats();

  size_t num_shards() const { return shards_.size(); }
  Timestamp watermark() const { return ingress_.watermark(); }

  /// Crash-safe checkpoint support (online/checkpoint.h): a full state
  /// image, one byte-deterministic section per component. ExportState
  /// drains every dispatched command first (the workers' done-barrier
  /// mutex makes the subsequent coordinator-side reads race-free);
  /// ImportState assumes a freshly constructed checker with the same
  /// options and shard count, whose spill directories still hold the
  /// epoch files the serialized manifests reference. The coordinator
  /// section begins with the shard count so recovery can size the
  /// checker before parsing the rest.
  struct StateImage {
    std::string ingress;
    std::string coordinator;  ///< shard count, stats, violations, masks
    std::vector<std::string> shards;  ///< stats + flips + violations + engine
  };
  StateImage ExportState();
  bool ImportState(const StateImage& img);

  /// Memory-ceiling degradation: drains dispatched work, then trims list
  /// element buffers below the watermark on every shard (see
  /// OnlineChecker::ShedMemory).
  void ShedMemory() override;

 private:
  struct ShardCmd {
    enum class Kind : uint8_t { kTxn, kFinalize, kGc };
    Kind kind = Kind::kTxn;
    bool register_reads = false;
    KeyEngine::TxnCtx ctx{};       // kTxn; ctx.tid also keys kFinalize
    Timestamp gc_watermark = kTsMin;  // kGc
    uint64_t now_ms = 0;
    std::vector<KeyEngine::ExtReadReq> reads;
    std::vector<KeyEngine::WriteReq> writes;
    std::vector<KeyEngine::ListReadReq> list_reads;
    std::vector<KeyEngine::AppendReq> appends;
  };

  struct TaggedViolation {
    Timestamp order_ts = kTsMin;
    Violation v;
  };

  struct Shard {
    explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

    BoundedQueue<ShardCmd> queue;
    std::unique_ptr<KeyEngine> engine;   // worker-thread state
    CheckerStats stats;                  // worker-written, read at barrier
    FlipFlopStats flips;                 // worker-written, read at barrier
    std::vector<TaggedViolation> violations;  // worker-written
    // Footprint mirrors, refreshed by the worker after each batch.
    std::atomic<size_t> versions{0};
    std::atomic<size_t> intervals{0};
    std::atomic<size_t> approx_bytes{0};

    // Coordinator-side command buffer and issue counter.
    std::vector<ShardCmd> pending;
    uint64_t issued = 0;

    // Completion barrier: worker bumps `done` after executing a batch.
    std::mutex done_mu;
    std::condition_variable done_cv;
    uint64_t done = 0;

    std::thread worker;
  };

  // TxnIngress::Dispatch — partition and enqueue.
  void DispatchTxn(const KeyEngine::TxnCtx& ctx, ClassifiedOps&& ops,
                   bool register_reads, uint64_t now_ms) override;
  void DispatchFinalize(TxnId tid) override;
  void DispatchGc(Timestamp watermark) override;

  size_t ShardOf(Key key) const;
  void Append(size_t shard, ShardCmd&& cmd);
  void FlushShard(size_t shard);
  /// Flushes all pending commands and blocks until every shard has
  /// executed everything issued so far.
  void WaitAll();
  /// Merge-sorts all buffered violations into the sink (coordinator
  /// thread, after WaitAll).
  void EmitViolations();

  void WorkerLoop(Shard* shard);
  void ExecuteCmd(Shard* shard, ShardCmd& cmd);

  Options options_;
  ViolationSink* sink_;
  size_t cmd_batch_;
  CheckerStats coord_stats_;  // txns_processed, gc_passes
  std::vector<TaggedViolation> coord_violations_;  // ingress-side reports
  std::vector<std::unique_ptr<Shard>> shards_;
  // Per-shard slot index reused by DispatchTxn's partitioning (-1 when
  // the shard is untouched by the current transaction; otherwise the
  // command's position in that shard's pending buffer), plus the list of
  // shards the current transaction touched.
  std::vector<int32_t> slot_;
  std::vector<uint32_t> touched_;
  // Which shards hold a registered transaction's external reads; the
  // finalize fan-out targets exactly these. Erased at finalize.
  std::unordered_map<TxnId, uint64_t> read_shard_mask_;
  TxnIngress ingress_;
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_SHARDED_AION_H_
