// ShardedAion: AION over N key-partitioned KeyEngine shards, each owned
// by a worker thread, fed through lock-free SPSC rings (paper Fig. 3,
// parallelized). The per-key decomposition is sound because every
// expensive step of Algorithm 3 — NOCONFLICT overlap queries, Step-3
// EXT re-checks, frontier lookups, GC eviction — only consults state of
// the key it operates on (cf. the per-key version-order decomposition of
// Biswas & Enea).
//
// Pipeline topology (every hand-off is an SpscRing, one ring per
// producer/consumer pair):
//
//   caller ──in[i]──> pre-stage worker i ──out[i]──> sequencer ──> shard j
//     └──────────────── seq ring (headers) ─────────────┘
//
//   - The calling thread runs only the *cross-transaction* half of the
//     ingress (TxnIngress::AdmitTxn: SESSION/Eq.(1)/timestamp-uniqueness
//     checks, EXT timeout clock, GC watermark decisions). Per arrival it
//     hands the raw transaction to one pre-stage worker (round-robin by
//     arrival index — a function of the stream, not of timing) and
//     pushes the admission header into the sequencer ring.
//   - Pre-stage workers run the pure per-transaction work in parallel:
//     INT replay/classification (ClassifyOps) and key->shard
//     partitioning, emitting one StagedTxn per arrival.
//   - The sequencer thread joins headers with staged footprints in
//     arrival order, applies the admission verdict (drop / INT-only /
//     dispatch), owns the finalize fan-out masks, and stages ShardCmds
//     into the per-shard rings with batched cursor publication (one
//     release store per cmd_batch commands).
//   - Each shard worker drains its ring in FIFO order. Because the
//     sequencer issues commands in the caller's total order and engines
//     never read other shards' keys, per-shard FIFO delivery reproduces
//     the monolith's verdicts exactly: a 1-shard ShardedAion is verdict-
//     and violation-identical to `Aion`, for any pre-stage worker count.
//   - Finalize commands go only to the shards holding the transaction's
//     external reads; GC commands broadcast the coordinator's effective
//     watermark to every shard, which collects and spills independently
//     (spill_dir/shard<i>) but at the same cut.
//   - Violations are buffered per producer (caller, sequencer, shards)
//     and emitted to the sink at Finish(), sorted by (commit_ts, txn id,
//     content) — deterministic regardless of shard count, pre-stage
//     worker count, or thread timing. Buffering until Finish is
//     deliberate: stragglers can report NOCONFLICT against spilled
//     intervals of arbitrarily old transactions, so no mid-stream flush
//     point preserves global sortedness. The cost is O(#violations)
//     memory for the run — violations are anomalies, so this stays small
//     in practice.
//
// Determinism contract: every verdict-affecting decision (admission,
// watermarks, finalize deadlines) is made synchronously on the caller
// thread; the pipeline threads only execute work whose outcome is a pure
// function of the commands they receive. GetFootprint().live_txns is
// exact caller-side state, so GC-policy decisions — and hence WAL-replay
// recovery — never depend on pipeline timing.
#ifndef CHRONOS_ONLINE_SHARDED_AION_H_
#define CHRONOS_ONLINE_SHARDED_AION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/flipflop_stats.h"
#include "core/key_engine.h"
#include "core/online_checker.h"
#include "core/thread_annotations.h"
#include "core/txn_ingress.h"
#include "core/types.h"
#include "core/violation.h"
#include "online/metrics.h"
#include "online/spsc_ring.h"

namespace chronos::online {

class ShardedAion : public OnlineChecker, private TxnIngress::Dispatch {
 public:
  using Options = CheckerOptions;

  /// `num_shards` is clamped to [1, 64]; `options.pre_stage_workers` to
  /// [1, 16]. `cmd_batch` commands are staged per shard ring before one
  /// cursor publication; `queue_capacity` bounds each ring
  /// (backpressure on the upstream stage).
  ShardedAion(const Options& options, size_t num_shards, ViolationSink* sink,
              size_t cmd_batch = 256, size_t queue_capacity = 8192);
  ~ShardedAion() override;

  ShardedAion(const ShardedAion&) = delete;
  ShardedAion& operator=(const ShardedAion&) = delete;

  // OnlineChecker. All calls must come from one coordinator thread.
  void OnTransaction(const Transaction& t, uint64_t now_ms) override;
  void AdvanceTime(uint64_t now_ms) override;
  Timestamp Gc(Timestamp up_to) override;
  void GcToLiveTarget(size_t target) override;
  /// Finalizes outstanding transactions, drains the pipeline, and emits
  /// all buffered violations to the sink in (commit_ts, txn id) order.
  void Finish() override;

  /// Cheap footprint: live_txns is exact (caller-side ingress state);
  /// versions/intervals/bytes read per-shard atomics that trail the
  /// workers by at most one command batch (exact after Finish()/stats()).
  CheckerFootprint GetFootprint() const override;

  /// Exact footprint: drains every dispatched command first, so the
  /// result is a pure function of the events consumed — the durable
  /// runner's memory-ceiling decisions use this to stay reproducible
  /// across crash/recovery (online/checkpoint.h).
  CheckerFootprint FootprintExact();

  /// Merged stats across the coordinator and all shards. Blocks until
  /// every dispatched command has executed.
  CheckerStats stats();
  /// Merged flip-flop statistics (see FlipFlopStats::Merge). Blocks
  /// until every dispatched command has executed.
  FlipFlopStats flip_stats();

  /// Ring depth high-water marks, stall counts, and the coordinator idle
  /// ratio (online/metrics.h). Drains the pipeline first so the snapshot
  /// is quiescent.
  PipelineHealth pipeline_health();

  size_t num_shards() const { return shards_.size(); }
  size_t pre_stage_worker_count() const { return prestages_.size(); }
  Timestamp watermark() const { return ingress_.watermark(); }

  /// Crash-safe checkpoint support (online/checkpoint.h): a full state
  /// image, one byte-deterministic section per component. ExportState
  /// drains the pipeline first (the barrier handshake makes the
  /// subsequent coordinator-side reads race-free); ImportState assumes a
  /// freshly constructed checker with the same options and shard count,
  /// whose spill directories still hold the epoch files the serialized
  /// manifests reference. The coordinator section begins with the shard
  /// count so recovery can size the checker before parsing the rest.
  struct StateImage {
    std::string ingress;
    std::string coordinator;  ///< shard count, stats, violations, masks
    std::vector<std::string> shards;  ///< stats + flips + violations + engine
  };
  StateImage ExportState();
  bool ImportState(const StateImage& img);

  /// Memory-ceiling degradation: drains dispatched work, then trims list
  /// element buffers below the watermark on every shard (see
  /// OnlineChecker::ShedMemory).
  void ShedMemory() override;

 private:
  struct ShardCmd {
    enum class Kind : uint8_t { kTxn, kFinalize, kGc };
    Kind kind = Kind::kTxn;
    bool register_reads = false;
    KeyEngine::TxnCtx ctx{};       // kTxn; ctx.tid also keys kFinalize
    Timestamp gc_watermark = kTsMin;  // kGc
    uint64_t now_ms = 0;
    std::vector<KeyEngine::ExtReadReq> reads;
    std::vector<KeyEngine::WriteReq> writes;
    std::vector<KeyEngine::ListReadReq> list_reads;
    std::vector<KeyEngine::AppendReq> appends;
  };

  struct TaggedViolation {
    Timestamp order_ts = kTsMin;
    Violation v;
  };

  /// One classified arrival, produced by a pre-stage worker: the txn's
  /// INT reports (kept or discarded by the sequencer per the admission
  /// verdict) plus its footprint sliced per touched shard.
  struct StagedTxn {
    struct Slice {
      uint32_t shard = 0;
      ClassifiedOps ops;
    };
    std::vector<TaggedViolation> int_reports;
    std::vector<Slice> slices;
  };

  /// Admission header the caller sequences per event. A kTxn header
  /// pairs with exactly one StagedTxn from the arrival's pre-stage
  /// worker (round-robin by arrival index).
  struct SeqMsg {
    enum class Kind : uint8_t { kTxn, kFinalize, kGc, kBarrier };
    Kind kind = Kind::kTxn;
    TxnIngress::Admission::Kind admit = TxnIngress::Admission::Kind::kDrop;
    bool register_reads = false;
    KeyEngine::TxnCtx ctx{};          // kTxn
    uint64_t now_ms = 0;              // kTxn
    Timestamp gc_watermark = kTsMin;  // kGc
    TxnId tid = 0;                    // kFinalize
    uint64_t ticket = 0;              // kBarrier
  };

  struct PreStage {
    PreStage(size_t in_capacity, size_t out_capacity)
        : in(in_capacity), out(out_capacity) {}
    SpscRing<Transaction> in;  // caller -> worker (raw arrivals)
    SpscRing<StagedTxn> out;   // worker -> sequencer (classified)
    std::thread worker;
  };

  struct Shard {
    explicit Shard(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing<ShardCmd> ring;  // sequencer -> worker

    /// Capability of the shard's worker thread: guards the engine and
    /// the verdict side-products it writes. The caller may assume it
    /// only behind a quiescent barrier (WaitAll / joined threads).
    ThreadRole owner;
    /// Capability of the sequencer thread over this shard's issue
    /// bookkeeping.
    ThreadRole seq_side;

    std::unique_ptr<KeyEngine> engine CHRONOS_PT_GUARDED_BY(owner);
    CheckerStats stats CHRONOS_GUARDED_BY(owner);  // read at barrier
    FlipFlopStats flips CHRONOS_GUARDED_BY(owner);  // read at barrier
    std::vector<TaggedViolation> violations CHRONOS_GUARDED_BY(owner);
    // Footprint mirrors, refreshed by the worker after each batch;
    // lock-free by design (GetFootprint runs inside the GC policy
    // check), so they carry explicit memory orders instead of a guard.
    std::atomic<size_t> versions{0};
    std::atomic<size_t> intervals{0};
    std::atomic<size_t> approx_bytes{0};

    // Sequencer-side issue bookkeeping: commands staged into the ring
    // (`issued`) and staged-but-unpublished since the last cursor
    // publication (`staged`).
    uint64_t issued CHRONOS_GUARDED_BY(seq_side) = 0;
    uint32_t staged CHRONOS_GUARDED_BY(seq_side) = 0;

    // Completion barrier: worker bumps `done` after executing a batch.
    Mutex done_mu;
    CondVar done_cv;
    uint64_t done CHRONOS_GUARDED_BY(done_mu) = 0;

    std::thread worker;
  };

  // TxnIngress::Dispatch. The caller drives the ingress through
  // AdmitTxn, so DispatchTxn is never reached; finalize/GC decisions are
  // forwarded to the sequencer as headers.
  void DispatchTxn(const KeyEngine::TxnCtx& ctx, ClassifiedOps&& ops,
                   bool register_reads, uint64_t now_ms) override;
  void DispatchFinalize(TxnId tid) override;
  void DispatchGc(Timestamp watermark) override;

  size_t ShardOf(Key key) const;

  // Pre-stage worker: pure per-txn classification + partitioning.
  void ClassifierLoop(PreStage* ps, size_t index);
  StagedTxn ClassifyAndPartition(const Transaction& t) const;

  // Sequencer: in-order merge of headers and staged footprints; sole
  // producer of every shard ring; owner of the finalize fan-out masks
  // and the INT-report buffer. SequencerLoop assumes `seq_role_` (and,
  // per shard it touches, that shard's `seq_side` + ring producer role);
  // the helpers REQUIRE it so only the sequencer can stage commands.
  void SequencerLoop();
  void StageShard(size_t shard, ShardCmd&& cmd) CHRONOS_REQUIRES(seq_role_);
  void FlushShards() CHRONOS_REQUIRES(seq_role_);
  void WaitShardsDone() CHRONOS_REQUIRES(seq_role_);

  /// Caller-side barrier: sequences a ticket and blocks until the
  /// sequencer has drained every prior header and every shard has
  /// executed everything issued.
  void WaitAll();
  /// Merge-sorts all buffered violations into the sink (caller thread,
  /// after WaitAll or after the pipeline joined).
  void EmitViolations();

  void WorkerLoop(Shard* shard, size_t index);
  void ExecuteCmd(Shard* shard, ShardCmd& cmd)
      CHRONOS_REQUIRES(shard->owner);

  Options options_;
  ViolationSink* sink_;
  size_t cmd_batch_;

  // --- caller-thread state ---
  CheckerStats coord_stats_;  // txns_processed, gc_passes
  std::vector<TaggedViolation> coord_violations_;  // admission-side reports
  uint64_t arrival_seq_ = 0;   // round-robin pre-stage assignment
  uint64_t barrier_next_ = 0;  // last barrier ticket handed out

  // --- pipeline plumbing ---
  std::vector<std::unique_ptr<PreStage>> prestages_;
  SpscRing<SeqMsg> seq_ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread sequencer_;

  // --- sequencer-thread state (caller may touch only at a barrier) ---
  /// Capability of the sequencer thread. SequencerLoop assumes it for
  /// its lifetime; the caller assumes it only behind the barrier
  /// handshake (WaitAll) or after the sequencer joined — each such site
  /// carries an AssumeRole naming the happens-before edge.
  ThreadRole seq_role_;
  // Which shards hold a registered transaction's external reads; the
  // finalize fan-out targets exactly these. Erased at finalize.
  std::unordered_map<TxnId, uint64_t> read_shard_mask_
      CHRONOS_GUARDED_BY(seq_role_);
  std::vector<TaggedViolation> seq_violations_  // INT reports, arrival order
      CHRONOS_GUARDED_BY(seq_role_);
  uint64_t seq_msgs_ CHRONOS_GUARDED_BY(seq_role_) = 0;

  // Barrier handshake (sequencer signals, caller waits).
  Mutex barrier_mu_;
  CondVar barrier_cv_;
  uint64_t barrier_done_ CHRONOS_GUARDED_BY(barrier_mu_) = 0;

  TxnIngress ingress_;
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_SHARDED_AION_H_
