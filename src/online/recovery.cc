#include "online/recovery.h"

#include <filesystem>
#include <limits>
#include <utility>
#include <vector>

#include "online/checkpoint.h"

namespace chronos::online {

RecoverResult Recover(const CheckerOptions& options, const std::string& dir,
                      ViolationSink* sink, size_t default_shards,
                      size_t cmd_batch, size_t queue_capacity) {
  RecoverResult res;

  // Newest checkpoint first; a corrupt or torn file (or one whose state
  // fails to import) falls back to its predecessor. Keep-2 retention
  // guarantees a predecessor exists unless the run never checkpointed
  // twice — and WAL-only replay covers even that.
  auto ckpts = CheckpointManager::List(dir);
  uint64_t replay_from_seq = 0;
  for (size_t i = ckpts.size(); i-- > 0;) {
    CheckpointManager::Loaded loaded;
    if (!CheckpointManager::Load(ckpts[i].second, &loaded)) {
      res.used_fallback = true;
      continue;
    }
    auto checker = std::make_unique<ShardedAion>(
        options, loaded.num_shards, sink, cmd_batch, queue_capacity);
    if (!checker->ImportState(loaded.img)) {
      res.used_fallback = true;
      continue;
    }
    res.checker = std::move(checker);
    res.ckpt_seq = loaded.ckpt_seq;
    res.from_checkpoint = true;
    res.next_seq = loaded.wal_seq + 1;
    res.events = loaded.events;
    replay_from_seq = loaded.wal_seq;
    break;
  }
  if (!res.checker) {
    res.checker = std::make_unique<ShardedAion>(options, default_shards, sink,
                                                cmd_batch, queue_capacity);
  }

  std::string wal_path = dir + "/wal.log";
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  std::error_code ec;
  if (std::filesystem::exists(wal_path, ec)) {
    if (!ReadWal(wal_path, &records, &valid_bytes)) {
      res.checker.reset();
      res.error = "wal.log unreadable or header corrupt";
      return res;
    }
  }
  res.wal_truncate_to = valid_bytes;

  // Replay everything past the checkpoint's cut, reproducing the crashed
  // driver's exact step sequence (arrivals with their original clocks,
  // GC decisions, shed decisions — all inside the same record).
  for (const WalRecord& rec : records) {
    if (rec.seq <= replay_from_seq) continue;
    res.checker->OnTransaction(rec.txn, rec.now_ms);
    ++res.events;
    if (rec.gc) res.checker->GcToLiveTarget(rec.gc_target);
    if (rec.shed) {
      res.checker->Gc(std::numeric_limits<Timestamp>::max());
      res.checker->ShedMemory();
    }
    res.next_seq = rec.seq + 1;
  }
  return res;
}

}  // namespace chronos::online
