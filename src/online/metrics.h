// Throughput and memory meters for the online experiments (Figs. 12, 15,
// 16, 23), plus the pipeline-health counters the sharded checker exposes
// (per-ring depth high-water marks, stall counts, coordinator idle
// ratio) — printed by `chronos_check --stats`.
#ifndef CHRONOS_ONLINE_METRICS_H_
#define CHRONOS_ONLINE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace chronos::online {

/// Buckets event counts into fixed windows, yielding a throughput series
/// ("TPS over time" curves). Single-threaded.
class ThroughputMeter {
 public:
  explicit ThroughputMeter(uint64_t window_ms = 1000)
      : window_ms_(window_ms) {}

  /// Records `n` events at time `t_ms`.
  void Record(uint64_t t_ms, uint64_t n = 1) {
    size_t bucket = static_cast<size_t>(t_ms / window_ms_);
    if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
    counts_[bucket] += n;
  }

  /// Per-window event counts (index i covers [i*window, (i+1)*window)).
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t window_ms() const { return window_ms_; }

  /// Events per second in window i.
  double Tps(size_t i) const {
    if (i >= counts_.size()) return 0;
    return static_cast<double>(counts_[i]) * 1000.0 /
           static_cast<double>(window_ms_);
  }

 private:
  uint64_t window_ms_;
  std::vector<uint64_t> counts_;
};

/// Resident-set size of this process in bytes (Linux /proc/self/statm);
/// 0 when unavailable.
size_t ReadRssBytes();

/// Health counters of one SPSC ring (online/spsc_ring.h): the deepest
/// occupancy the producer observed at a publication point, and how often
/// each side fell off the spin fast-path into a parked (mutex/condvar)
/// wait. Stall counts are park *events*, not parked time: a producer
/// stall means the downstream stage applied backpressure; a consumer
/// stall means the stage ran dry and idled.
struct RingHealth {
  uint64_t depth_hwm = 0;
  uint64_t producer_stalls = 0;
  uint64_t consumer_stalls = 0;
};

/// One quiescent snapshot of the sharded pipeline's plumbing
/// (ShardedAion::pipeline_health): every ring on the
/// caller -> pre-stage -> sequencer -> shard path.
struct PipelineHealth {
  std::vector<RingHealth> pre_stage_in;   ///< caller -> classifier, per worker
  std::vector<RingHealth> pre_stage_out;  ///< classifier -> sequencer
  RingHealth seq_ring;                    ///< caller -> sequencer (headers)
  std::vector<RingHealth> shard_rings;    ///< sequencer -> shard, per shard
  uint64_t sequencer_msgs = 0;            ///< headers the sequencer consumed

  /// Fraction of sequencer messages that required a parked wait (for the
  /// next header or for a classifier result): how idle the pipeline's
  /// serial coordinator stage ran. 0 = never starved, ~1 = input-bound.
  double CoordinatorIdleRatio() const {
    uint64_t waits = seq_ring.consumer_stalls;
    for (const RingHealth& r : pre_stage_out) waits += r.consumer_stalls;
    if (sequencer_msgs == 0) return 0.0;
    double ratio = static_cast<double>(waits) /
                   static_cast<double>(sequencer_msgs);
    return ratio > 1.0 ? 1.0 : ratio;
  }
};

/// Human-readable dump (one line per ring) for `chronos_check --stats`.
void PrintPipelineHealth(const PipelineHealth& h, std::FILE* out);

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_METRICS_H_
