// Throughput and memory meters for the online experiments (Figs. 12, 15,
// 16, 23).
#ifndef CHRONOS_ONLINE_METRICS_H_
#define CHRONOS_ONLINE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chronos::online {

/// Buckets event counts into fixed windows, yielding a throughput series
/// ("TPS over time" curves). Single-threaded.
class ThroughputMeter {
 public:
  explicit ThroughputMeter(uint64_t window_ms = 1000)
      : window_ms_(window_ms) {}

  /// Records `n` events at time `t_ms`.
  void Record(uint64_t t_ms, uint64_t n = 1) {
    size_t bucket = static_cast<size_t>(t_ms / window_ms_);
    if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
    counts_[bucket] += n;
  }

  /// Per-window event counts (index i covers [i*window, (i+1)*window)).
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t window_ms() const { return window_ms_; }

  /// Events per second in window i.
  double Tps(size_t i) const {
    if (i >= counts_.size()) return 0;
    return static_cast<double>(counts_[i]) * 1000.0 /
           static_cast<double>(window_ms_);
  }

 private:
  uint64_t window_ms_;
  std::vector<uint64_t> counts_;
};

/// Resident-set size of this process in bytes (Linux /proc/self/statm);
/// 0 when unavailable.
size_t ReadRssBytes();

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_METRICS_H_
