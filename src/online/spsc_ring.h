// Single-producer single-consumer ring buffer: the lock-free hand-off
// between the stages of the sharded pipeline (caller -> pre-stage
// classifiers -> sequencer -> shard workers). Replaces the BoundedQueue
// mutex hand-off on the per-transaction hot path.
//
// Memory-ordering contract:
//   - The producer writes a slot, then publishes it with a release store
//     of `tail_`; the consumer acquires `tail_` before reading the slot.
//     Symmetrically the consumer releases `head_` after moving items out
//     and the producer acquires it before reusing a slot. These two
//     edges are the only synchronization on the fast path — no locks,
//     no RMW operations.
//   - Publication is batched: `Stage()` appends to slots without
//     touching `tail_`; `Publish()` makes everything staged visible with
//     one release store. A producer that must block (ring full) first
//     publishes its staged items so the consumer can drain — staged work
//     is never held across a park.
//   - `Close()` (producer side) publishes staged items before the
//     release store of `closed_`, so a consumer that observes the close
//     flag also observes the final tail: `PopBatch` drains every
//     published item and returns false only once closed AND empty.
//
// Blocking is spin-then-park: a bounded spin on the fast path, then a
// mutex/condvar wait. The waker probes the waiter flag (seq_cst) after
// its cursor store and notifies under the mutex; the parked side
// additionally re-checks its predicate on a short wait_for tick, so a
// theoretically lost wakeup costs one tick, never a hang. Park events
// are counted per side (RingHealth) — producer stalls are backpressure,
// consumer stalls are starvation.
//
// Cursors are free-running uint64 (never wrapped); the slot index is
// cursor & mask. Capacity is rounded up to a power of two. Producer-
// local, consumer-local, and shared cursor state live on separate cache
// lines so the two threads never false-share (chronos_lint's
// ring-alignas rule keeps it that way when fields are added).
//
// Ownership is annotated for Clang's thread-safety analysis
// (core/thread_annotations.h): the public `producer_role` and
// `consumer_role` capabilities split the API and the member state into
// the two sides of the single-producer/single-consumer contract. A
// thread acquires its side's role at its entry loop (AssumeRole); a new
// call site of Stage/Push/Publish/Close that does not hold the producer
// role — a second producer — fails the -Wthread-safety build, and
// chronos_lint's ring-single-producer rule restricts who may legally
// assume it (ROADMAP "Static analysis").
#ifndef CHRONOS_ONLINE_SPSC_RING_H_
#define CHRONOS_ONLINE_SPSC_RING_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"
#include "online/metrics.h"

namespace chronos::online {

template <typename T>
class SpscRing {
 public:
  /// Rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// The two sides of the SPSC contract: exactly one thread may hold
  /// each at any time (statically assumed via AssumeRole; see header).
  ThreadRole producer_role;
  ThreadRole consumer_role;

  // --- producer side (exactly one thread) -----------------------------

  /// Appends an item without publishing it. Blocks when the ring is full
  /// (publishing everything staged so far first, so the consumer can
  /// drain while we wait). Must not be called after Close().
  void Stage(T&& item) CHRONOS_REQUIRES(producer_role) {
    uint64_t t = staged_tail_;
    if (t - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ >= capacity_) {
        PublishAt(t);
        WaitForRoom(t);
      }
    }
    slots_[t & mask_] = std::move(item);
    staged_tail_ = t + 1;
  }

  /// Makes every staged item visible to the consumer (one release
  /// store). No-op when nothing is staged.
  void Publish() CHRONOS_REQUIRES(producer_role) {
    if (staged_tail_ != published_tail_) PublishAt(staged_tail_);
  }

  /// Stage + Publish: the unbatched convenience path.
  void Push(T&& item) CHRONOS_REQUIRES(producer_role) {
    Stage(std::move(item));
    Publish();
  }

  /// Publishes staged items, then marks the ring closed and wakes the
  /// consumer. Producer side; no Stage/Push may follow.
  void Close() CHRONOS_REQUIRES(producer_role) {
    Publish();
    closed_.store(true, std::memory_order_release);
    {
      MutexLock lock(mu_);
    }
    cv_.NotifyAll();
  }

  // --- consumer side (exactly one thread) -----------------------------

  /// Moves up to `max` published items into `*out` (cleared first).
  /// Blocks while the ring is open and empty; returns false only when
  /// the ring is closed and fully drained.
  bool PopBatch(std::vector<T>* out, size_t max)
      CHRONOS_REQUIRES(consumer_role) {
    out->clear();
    if (max == 0) max = 1;
    uint64_t h = head_cursor_;
    if (cached_tail_ == h) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == h) {
        if (!WaitNonEmpty(h)) return false;
        cached_tail_ = tail_.load(std::memory_order_acquire);
      }
    }
    size_t n = static_cast<size_t>(cached_tail_ - h);
    if (n > max) n = max;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(slots_[(h + i) & mask_]));
    }
    Advance(h + n);
    return true;
  }

  /// Single-item pop with the same blocking/drain semantics.
  std::optional<T> Pop() CHRONOS_REQUIRES(consumer_role) {
    uint64_t h = head_cursor_;
    if (cached_tail_ == h) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == h) {
        if (!WaitNonEmpty(h)) return std::nullopt;
        cached_tail_ = tail_.load(std::memory_order_acquire);
      }
    }
    std::optional<T> item(std::move(slots_[h & mask_]));
    Advance(h + 1);
    return item;
  }

  // --- any thread -----------------------------------------------------

  size_t capacity() const { return capacity_; }

  /// Approximate occupancy (racy by design; exact when both sides are
  /// quiescent).
  size_t SizeApprox() const {
    uint64_t t = tail_.load(std::memory_order_relaxed);
    uint64_t h = head_.load(std::memory_order_relaxed);
    return static_cast<size_t>(t - h);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  RingHealth health() const {
    RingHealth r;
    r.depth_hwm = depth_hwm_.load(std::memory_order_relaxed);
    r.producer_stalls = producer_stalls_.load(std::memory_order_relaxed);
    r.consumer_stalls = consumer_stalls_.load(std::memory_order_relaxed);
    return r;
  }

 private:
  static constexpr int kSpinIterations = 256;
  static constexpr std::chrono::microseconds kParkTick{200};

  void PublishAt(uint64_t t) CHRONOS_REQUIRES(producer_role) {
    published_tail_ = t;
    tail_.store(t, std::memory_order_release);
    uint64_t depth = t - head_.load(std::memory_order_relaxed);
    if (depth > depth_hwm_.load(std::memory_order_relaxed)) {
      depth_hwm_.store(depth, std::memory_order_relaxed);
    }
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      {
        MutexLock lock(mu_);
      }
      cv_.NotifyAll();
    }
  }

  void Advance(uint64_t h) CHRONOS_REQUIRES(consumer_role) {
    head_cursor_ = h;
    head_.store(h, std::memory_order_release);
    if (producer_waiting_.load(std::memory_order_seq_cst)) {
      {
        MutexLock lock(mu_);
      }
      cv_.NotifyAll();
    }
  }

  void WaitForRoom(uint64_t t) CHRONOS_REQUIRES(producer_role) {
    for (int i = 0; i < kSpinIterations; ++i) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ < capacity_) return;
    }
    producer_stalls_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(mu_);
    producer_waiting_.store(true, std::memory_order_seq_cst);
    for (;;) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ < capacity_) break;
      cv_.WaitFor(lock, kParkTick);
    }
    producer_waiting_.store(false, std::memory_order_relaxed);
  }

  // Returns true when an item is published past `h`; false when the ring
  // is closed and empty.
  bool WaitNonEmpty(uint64_t h) CHRONOS_REQUIRES(consumer_role) {
    for (int i = 0; i < kSpinIterations; ++i) {
      if (tail_.load(std::memory_order_acquire) != h) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Close published before setting the flag, so this re-read sees
        // the final tail.
        return tail_.load(std::memory_order_acquire) != h;
      }
    }
    consumer_stalls_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(mu_);
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    bool have = false;
    for (;;) {
      if (tail_.load(std::memory_order_acquire) != h) {
        have = true;
        break;
      }
      if (closed_.load(std::memory_order_acquire)) {
        have = tail_.load(std::memory_order_acquire) != h;
        break;
      }
      cv_.WaitFor(lock, kParkTick);
    }
    consumer_waiting_.store(false, std::memory_order_relaxed);
    return have;
  }

  // Shared cursors, one cache line each.
  alignas(64) std::atomic<uint64_t> tail_{0};  // next unpublished slot
  alignas(64) std::atomic<uint64_t> head_{0};  // next unconsumed slot
  alignas(64) std::atomic<bool> closed_{false};

  // Producer-local state.
  alignas(64) uint64_t staged_tail_ CHRONOS_GUARDED_BY(producer_role) = 0;
  uint64_t published_tail_ CHRONOS_GUARDED_BY(producer_role) = 0;
  uint64_t cached_head_ CHRONOS_GUARDED_BY(producer_role) = 0;

  // Consumer-local state.
  alignas(64) uint64_t head_cursor_ CHRONOS_GUARDED_BY(consumer_role) = 0;
  uint64_t cached_tail_ CHRONOS_GUARDED_BY(consumer_role) = 0;

  // Slot contents hand over between the sides through the cursor
  // release/acquire edges; neither role alone guards them.
  alignas(64) std::vector<T> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;

  // Park/wake plumbing (slow path only). The waiting flags are the
  // seq_cst waiter-flag protocol from the header comment; they get their
  // own cache lines since the two sides write them independently.
  Mutex mu_;
  CondVar cv_;
  alignas(64) std::atomic<bool> producer_waiting_{false};
  alignas(64) std::atomic<bool> consumer_waiting_{false};

  // Health counters (RingHealth), split by writing side.
  alignas(64) std::atomic<uint64_t> depth_hwm_{0};
  alignas(8) std::atomic<uint64_t> producer_stalls_{0};  // producer-written,
  // shares depth_hwm_'s line deliberately (same writing side).
  alignas(64) std::atomic<uint64_t> consumer_stalls_{0};
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_SPSC_RING_H_
