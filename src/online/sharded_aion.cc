#include "online/sharded_aion.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace chronos::online {
namespace {

constexpr size_t kMaxShards = 64;  // finalize fan-out uses a 64-bit mask
constexpr size_t kMaxPreStageWorkers = 16;

// splitmix64 finalizer: keys are often small sequential integers, so mix
// before taking the remainder to spread hot ranges across shards.
uint64_t MixKey(Key key) {
  uint64_t x = key + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void WriteStats(StateWriter* w, const CheckerStats& s) {
  w->U64(s.txns_processed);
  w->U64(s.ext_rechecks);
  w->U64(s.noconflict_checks);
  w->U64(s.spill_reloads);
  w->U64(s.unsafe_below_watermark);
  w->U64(s.unsafe_below_horizon);
  w->U64(s.corrupt_spill_epochs);
  w->U64(s.gc_passes);
}

void ReadStats(StateReader* r, CheckerStats* s) {
  s->txns_processed = r->U64();
  s->ext_rechecks = r->U64();
  s->noconflict_checks = r->U64();
  s->spill_reloads = r->U64();
  s->unsafe_below_watermark = r->U64();
  s->unsafe_below_horizon = r->U64();
  s->corrupt_spill_epochs = r->U64();
  s->gc_passes = r->U64();
}

void WriteViolation(StateWriter* w, Timestamp order_ts, const Violation& v) {
  w->U64(order_ts);
  w->U8(static_cast<uint8_t>(v.type));
  w->U64(v.tid);
  w->U64(v.other_tid);
  w->U64(v.key);
  w->I64(v.expected);
  w->I64(v.got);
  w->I64(v.divergence);
}

Violation ReadViolation(StateReader* r, Timestamp* order_ts) {
  *order_ts = r->U64();
  Violation v;
  v.type = static_cast<ViolationType>(r->U8());
  v.tid = r->U64();
  v.other_tid = r->U64();
  v.key = r->U64();
  v.expected = r->I64();
  v.got = r->I64();
  v.divergence = r->I64();
  return v;
}

}  // namespace

ShardedAion::ShardedAion(const Options& options, size_t num_shards,
                         ViolationSink* sink, size_t cmd_batch,
                         size_t queue_capacity)
    : options_(options),
      sink_(sink),
      cmd_batch_(cmd_batch == 0 ? 1 : cmd_batch),
      seq_ring_(queue_capacity == 0 ? 2 : queue_capacity),
      ingress_(options, &coord_stats_,
               [this](Timestamp order_ts, const Violation& v) {
                 coord_violations_.push_back({order_ts, v});
               },
               this) {
  const size_t n = std::min(std::max<size_t>(num_shards, 1), kMaxShards);
  const size_t p = std::min(std::max<size_t>(options.pre_stage_workers, 1),
                            kMaxPreStageWorkers);
  const size_t ring_cap = queue_capacity == 0 ? 2 : queue_capacity;
  // Pre-stage rings carry whole transactions / classified footprints,
  // which are heavier than ShardCmds; cap their slot count so a large
  // queue_capacity doesn't balloon idle memory.
  const size_t stage_cap = std::min<size_t>(ring_cap, 1024);

  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(ring_cap);
    Shard* raw = shard.get();
    KeyEngine::Options eo;
    eo.mode = options_.mode;
    if (!options_.spill_dir.empty()) {
      eo.spill_dir = options_.spill_dir + "/shard" + std::to_string(i);
    }
    shard->engine = std::make_unique<KeyEngine>(
        eo, &shard->stats, &shard->flips,
        [raw](Timestamp order_ts, const Violation& v) {
          // Engine callbacks fire only on the shard's worker thread
          // (inside ExecuteCmd), which owns the violation buffer.
          AssumeRole own(raw->owner);
          raw->violations.push_back({order_ts, v});
        });
    shards_.push_back(std::move(shard));
  }
  prestages_.reserve(p);
  for (size_t i = 0; i < p; ++i) {
    prestages_.push_back(std::make_unique<PreStage>(stage_cap, stage_cap));
  }

  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker =
        std::thread(&ShardedAion::WorkerLoop, this, shards_[i].get(), i);
  }
  sequencer_ = std::thread(&ShardedAion::SequencerLoop, this);
  for (size_t i = 0; i < prestages_.size(); ++i) {
    prestages_[i]->worker =
        std::thread(&ShardedAion::ClassifierLoop, this, prestages_[i].get(), i);
  }
}

ShardedAion::~ShardedAion() {
  // Teardown follows the pipeline direction: close the caller-fed rings,
  // join each stage once its input is exhausted. The sequencer closes
  // the shard rings after flushing everything staged, so no command —
  // and no detected violation — is lost for a caller that skipped
  // Finish().
  for (auto& ps : prestages_) {
    // The destructor runs on the coordinator thread, which is the sole
    // producer of the ingress rings.
    AssumeRole prod(ps->in.producer_role);
    ps->in.Close();
  }
  {
    AssumeRole prod(seq_ring_.producer_role);
    seq_ring_.Close();
  }
  for (auto& ps : prestages_) {
    if (ps->worker.joinable()) ps->worker.join();
  }
  if (sequencer_.joinable()) sequencer_.join();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  EmitViolations();  // no-op after a normal Finish()
}

size_t ShardedAion::ShardOf(Key key) const {
  return static_cast<size_t>(MixKey(key) % shards_.size());
}

// --- pre-stage workers ------------------------------------------------

ShardedAion::StagedTxn ShardedAion::ClassifyAndPartition(
    const Transaction& t) const {
  StagedTxn st;
  ClassifiedOps ops;
  ClassifyOps(t,
              [&st](Timestamp order_ts, const Violation& v) {
                st.int_reports.push_back({order_ts, v});
              },
              &ops);
  const size_t n = shards_.size();
  if (n == 1) {
    // Single shard: no partitioning, and always one slice (the monolith
    // runs ProcessTxn even for an empty footprint, so 1-shard must too
    // to stay byte-identical).
    StagedTxn::Slice sl;
    sl.shard = 0;
    sl.ops = std::move(ops);
    st.slices.push_back(std::move(sl));
    return st;
  }

  // Partition the footprint, at most one slice per touched shard, in
  // first-touch order. `slot` maps shard -> slice index (-1 untouched).
  std::vector<int32_t> slot(n, -1);
  auto slice_for = [&](size_t s) -> ClassifiedOps& {
    if (slot[s] < 0) {
      slot[s] = static_cast<int32_t>(st.slices.size());
      st.slices.emplace_back();
      st.slices.back().shard = static_cast<uint32_t>(s);
    }
    return st.slices[slot[s]].ops;
  };
  for (const KeyEngine::ExtReadReq& r : ops.ext_reads) {
    slice_for(ShardOf(r.key)).ext_reads.push_back(r);
  }
  for (const KeyEngine::WriteReq& w : ops.writes) {
    slice_for(ShardOf(w.key)).writes.push_back(w);
  }
  for (KeyEngine::ListReadReq& r : ops.list_reads) {
    slice_for(ShardOf(r.key)).list_reads.push_back(std::move(r));
  }
  for (KeyEngine::AppendReq& a : ops.appends) {
    slice_for(ShardOf(a.key)).appends.push_back(std::move(a));
  }
  return st;
}

void ShardedAion::ClassifierLoop(PreStage* ps, size_t index) {
  // This thread is the sole consumer of its `in` ring and the sole
  // producer of its `out` ring for the whole pipeline lifetime.
  AssumeRole in_cons(ps->in.consumer_role);
  AssumeRole out_prod(ps->out.producer_role);
  std::vector<Transaction> batch;
  while (ps->in.PopBatch(&batch, 64)) {
    if (options_.stall_hook) {
      options_.stall_hook(StallPoint::kPreStage, index);
    }
    for (Transaction& t : batch) {
      ps->out.Push(ClassifyAndPartition(t));
    }
  }
  ps->out.Close();
}

// --- sequencer --------------------------------------------------------

void ShardedAion::StageShard(size_t shard, ShardCmd&& cmd) {
  Shard& s = *shards_[shard];
  // REQUIRES(seq_role_) gates the caller, and the seq_role_ holder is
  // the only thread that touches any shard's sequencer side, so the
  // per-shard capabilities derive from it.
  AssumeRole seq_side(s.seq_side);
  AssumeRole prod(s.ring.producer_role);
  s.ring.Stage(std::move(cmd));
  ++s.issued;
  if (++s.staged >= cmd_batch_) {
    s.ring.Publish();
    s.staged = 0;
  }
}

void ShardedAion::FlushShards() {
  for (auto& shard : shards_) {
    AssumeRole seq_side(shard->seq_side);  // derived from seq_role_
    AssumeRole prod(shard->ring.producer_role);
    if (shard->staged != 0) {
      shard->ring.Publish();
      shard->staged = 0;
    }
  }
}

void ShardedAion::WaitShardsDone() {
  for (auto& shard : shards_) {
    AssumeRole seq_side(shard->seq_side);  // derived from seq_role_
    MutexLock lock(shard->done_mu);
    while (shard->done < shard->issued) shard->done_cv.Wait(lock);
  }
}

void ShardedAion::SequencerLoop() {
  // The sequencer thread owns its role, and is the sole consumer of the
  // header ring, for the whole pipeline lifetime.
  AssumeRole seq(seq_role_);
  AssumeRole seq_cons(seq_ring_.consumer_role);
  using AdmitKind = TxnIngress::Admission::Kind;
  std::vector<SeqMsg> msgs;
  uint64_t txn_seq = 0;
  const size_t num_prestages = prestages_.size();
  while (seq_ring_.PopBatch(&msgs, 256)) {
    if (options_.stall_hook) {
      options_.stall_hook(StallPoint::kSequencer, 0);
    }
    for (SeqMsg& m : msgs) {
      ++seq_msgs_;
      switch (m.kind) {
        case SeqMsg::Kind::kTxn: {
          // One staged footprint per header, from the arrival's worker.
          PreStage& ps = *prestages_[txn_seq % num_prestages];
          ++txn_seq;
          // Sole consumer of every pre-stage `out` ring.
          AssumeRole cons(ps.out.consumer_role);
          std::optional<StagedTxn> st = ps.out.Pop();
          if (!st) break;  // unreachable: the txn precedes its header
          if (m.admit == AdmitKind::kDrop) break;  // duplicate timestamp
          for (TaggedViolation& tv : st->int_reports) {
            seq_violations_.push_back(std::move(tv));
          }
          if (m.admit == AdmitKind::kIntOnly) break;  // Eq. (1) violation
          uint64_t read_mask = 0;
          for (StagedTxn::Slice& sl : st->slices) {
            if (m.register_reads && (!sl.ops.ext_reads.empty() ||
                                     !sl.ops.list_reads.empty())) {
              read_mask |= 1ull << sl.shard;
            }
            ShardCmd cmd;
            cmd.kind = ShardCmd::Kind::kTxn;
            cmd.register_reads = m.register_reads;
            cmd.ctx = m.ctx;
            cmd.now_ms = m.now_ms;
            cmd.reads = std::move(sl.ops.ext_reads);
            cmd.writes = std::move(sl.ops.writes);
            cmd.list_reads = std::move(sl.ops.list_reads);
            cmd.appends = std::move(sl.ops.appends);
            StageShard(sl.shard, std::move(cmd));
          }
          if (read_mask != 0) read_shard_mask_[m.ctx.tid] = read_mask;
          break;
        }
        case SeqMsg::Kind::kFinalize: {
          auto it = read_shard_mask_.find(m.tid);
          if (it == read_shard_mask_.end()) break;  // no reads anywhere
          uint64_t mask = it->second;
          read_shard_mask_.erase(it);
          for (size_t s = 0; mask != 0; ++s, mask >>= 1) {
            if (mask & 1) {
              ShardCmd cmd;
              cmd.kind = ShardCmd::Kind::kFinalize;
              cmd.ctx.tid = m.tid;
              StageShard(s, std::move(cmd));
            }
          }
          break;
        }
        case SeqMsg::Kind::kGc: {
          for (size_t s = 0; s < shards_.size(); ++s) {
            ShardCmd cmd;
            cmd.kind = ShardCmd::Kind::kGc;
            cmd.gc_watermark = m.gc_watermark;
            StageShard(s, std::move(cmd));
          }
          break;
        }
        case SeqMsg::Kind::kBarrier: {
          FlushShards();
          WaitShardsDone();
          {
            MutexLock lock(barrier_mu_);
            barrier_done_ = m.ticket;
          }
          barrier_cv_.NotifyAll();
          break;
        }
      }
    }
  }
  FlushShards();
  for (auto& shard : shards_) {
    AssumeRole prod(shard->ring.producer_role);  // derived from seq_role_
    shard->ring.Close();
  }
}

// --- shard workers ----------------------------------------------------

void ShardedAion::WorkerLoop(Shard* shard, size_t index) {
  // This thread owns the shard's engine/stats/violations and is the
  // sole consumer of its command ring for the whole pipeline lifetime.
  AssumeRole own(shard->owner);
  AssumeRole cons(shard->ring.consumer_role);
  std::vector<ShardCmd> chunk;
  while (shard->ring.PopBatch(&chunk, cmd_batch_)) {
    if (options_.stall_hook) {
      options_.stall_hook(StallPoint::kShardWorker, index);
    }
    for (ShardCmd& cmd : chunk) ExecuteCmd(shard, cmd);
    shard->versions.store(shard->engine->TotalVersions(),
                          std::memory_order_relaxed);
    shard->intervals.store(shard->engine->TotalIntervals(),
                           std::memory_order_relaxed);
    shard->approx_bytes.store(shard->engine->ApproxBytes(),
                              std::memory_order_relaxed);
    {
      MutexLock lock(shard->done_mu);
      shard->done += chunk.size();
    }
    shard->done_cv.NotifyAll();
  }
}

void ShardedAion::ExecuteCmd(Shard* shard, ShardCmd& cmd) {
  switch (cmd.kind) {
    case ShardCmd::Kind::kTxn: {
      KeyEngine::OpsView view;
      view.reads = cmd.reads.data();
      view.num_reads = cmd.reads.size();
      view.writes = cmd.writes.data();
      view.num_writes = cmd.writes.size();
      view.list_reads = cmd.list_reads.data();
      view.num_list_reads = cmd.list_reads.size();
      view.appends = cmd.appends.data();
      view.num_appends = cmd.appends.size();
      shard->engine->ProcessTxn(cmd.ctx, view, cmd.register_reads,
                                cmd.now_ms);
      break;
    }
    case ShardCmd::Kind::kFinalize:
      shard->engine->FinalizeTxn(cmd.ctx.tid);
      break;
    case ShardCmd::Kind::kGc:
      shard->engine->CollectUpTo(cmd.gc_watermark);
      break;
  }
}

// --- caller side ------------------------------------------------------

void ShardedAion::DispatchTxn(const KeyEngine::TxnCtx& ctx,
                              ClassifiedOps&& ops, bool register_reads,
                              uint64_t now_ms) {
  // The caller drives the ingress through AdmitTxn and runs ClassifyOps
  // on the pre-stage workers, so the ingress never dispatches a
  // footprint here.
  (void)ctx;
  (void)ops;
  (void)register_reads;
  (void)now_ms;
  // chronos-lint: allow(assert-style): unreachable-path guard; CHECK
  // would pull the logging dependency into the hot translation unit.
  assert(false && "ShardedAion sequences footprints via AdmitTxn");
}

void ShardedAion::DispatchFinalize(TxnId tid) {
  SeqMsg m;
  m.kind = SeqMsg::Kind::kFinalize;
  m.tid = tid;
  // Called from ingress_.AdmitTxn on the coordinator thread: the sole
  // producer of the header ring.
  AssumeRole prod(seq_ring_.producer_role);
  seq_ring_.Push(std::move(m));
}

void ShardedAion::DispatchGc(Timestamp watermark) {
  SeqMsg m;
  m.kind = SeqMsg::Kind::kGc;
  m.gc_watermark = watermark;
  AssumeRole prod(seq_ring_.producer_role);  // coordinator thread
  seq_ring_.Push(std::move(m));
}

void ShardedAion::OnTransaction(const Transaction& t, uint64_t now_ms) {
  // Raw arrival to its pre-stage worker first (round-robin by arrival
  // index), so classification overlaps the admission checks below. The
  // worker assignment depends only on the arrival sequence — never on
  // timing — and the sequencer re-joins results in arrival order, so
  // verdicts and emission are independent of the worker count.
  PreStage& ps = *prestages_[arrival_seq_ % prestages_.size()];
  ++arrival_seq_;
  {
    // Coordinator thread: sole producer of every pre-stage `in` ring.
    AssumeRole prod(ps.in.producer_role);
    ps.in.Push(Transaction(t));
  }

  // Cross-transaction admission on the caller thread: deadlines fired
  // here sequence their finalize headers (DispatchFinalize) before this
  // arrival's own header, exactly like the monolith's order.
  TxnIngress::Admission adm = ingress_.AdmitTxn(t, now_ms);

  SeqMsg m;
  m.kind = SeqMsg::Kind::kTxn;
  m.admit = adm.kind;
  m.register_reads = adm.register_reads;
  m.ctx = adm.ctx;
  m.now_ms = adm.now_ms;
  AssumeRole prod(seq_ring_.producer_role);  // coordinator thread
  seq_ring_.Push(std::move(m));
}

void ShardedAion::AdvanceTime(uint64_t now_ms) {
  ingress_.AdvanceTime(now_ms);
}

Timestamp ShardedAion::Gc(Timestamp up_to) { return ingress_.Gc(up_to); }

void ShardedAion::GcToLiveTarget(size_t target) {
  ingress_.GcToLiveTarget(target);
}

void ShardedAion::WaitAll() {
  SeqMsg m;
  m.kind = SeqMsg::Kind::kBarrier;
  m.ticket = ++barrier_next_;
  {
    AssumeRole prod(seq_ring_.producer_role);  // coordinator thread
    seq_ring_.Push(std::move(m));
  }
  MutexLock lock(barrier_mu_);
  while (barrier_done_ < barrier_next_) barrier_cv_.Wait(lock);
}

void ShardedAion::Finish() {
  ingress_.Finish();
  WaitAll();
  EmitViolations();
}

void ShardedAion::EmitViolations() {
  // Caller thread, behind WaitAll (Finish) or after the pipeline threads
  // joined (destructor): that barrier/join edge hands the sequencer's
  // and each worker's buffers over race-free, and no new work can arrive
  // concurrently because all OnlineChecker calls share one coordinator.
  AssumeRole seq(seq_role_);
  std::vector<TaggedViolation> all = std::move(coord_violations_);
  coord_violations_.clear();
  all.insert(all.end(), seq_violations_.begin(), seq_violations_.end());
  seq_violations_.clear();
  for (auto& shard : shards_) {
    AssumeRole own(shard->owner);  // same barrier/join edge
    all.insert(all.end(), shard->violations.begin(), shard->violations.end());
    shard->violations.clear();
  }
  // Deterministic order regardless of shard count and thread timing:
  // (commit_ts of the attributed txn, txn id), then content.
  std::sort(all.begin(), all.end(),
            [](const TaggedViolation& a, const TaggedViolation& b) {
              if (a.order_ts != b.order_ts) return a.order_ts < b.order_ts;
              if (a.v.tid != b.v.tid) return a.v.tid < b.v.tid;
              return ViolationLess(a.v, b.v);
            });
  for (const TaggedViolation& tv : all) sink_->Report(tv.v);
}

ShardedAion::StateImage ShardedAion::ExportState() {
  WaitAll();
  // Behind the barrier: sequencer drained and shard workers idle, so the
  // caller may read their state (see EmitViolations for the full
  // argument).
  AssumeRole seq(seq_role_);
  StateImage img;
  {
    StateWriter w;
    ingress_.Serialize(&w);
    img.ingress = w.Take();
  }
  {
    StateWriter w;
    w.U64(shards_.size());
    WriteStats(&w, coord_stats_);
    // Admission-side then INT reports: import loads both into the
    // caller's buffer, so export -> import -> export is byte-stable.
    w.U64(coord_violations_.size() + seq_violations_.size());
    for (const TaggedViolation& tv : coord_violations_) {
      WriteViolation(&w, tv.order_ts, tv.v);
    }
    for (const TaggedViolation& tv : seq_violations_) {
      WriteViolation(&w, tv.order_ts, tv.v);
    }
    std::vector<std::pair<TxnId, uint64_t>> masks(read_shard_mask_.begin(),
                                                  read_shard_mask_.end());
    std::sort(masks.begin(), masks.end());
    w.U64(masks.size());
    for (const auto& [tid, mask] : masks) {
      w.U64(tid);
      w.U64(mask);
    }
    img.coordinator = w.Take();
  }
  img.shards.reserve(shards_.size());
  for (auto& shard : shards_) {
    AssumeRole own(shard->owner);  // barrier edge, as above
    StateWriter w;
    WriteStats(&w, shard->stats);
    shard->flips.Serialize(&w);
    w.U64(shard->violations.size());
    for (const TaggedViolation& tv : shard->violations) {
      WriteViolation(&w, tv.order_ts, tv.v);
    }
    shard->engine->Serialize(&w);
    img.shards.push_back(w.Take());
  }
  return img;
}

bool ShardedAion::ImportState(const StateImage& img) {
  if (img.shards.size() != shards_.size()) return false;
  WaitAll();
  // Behind the barrier, as in ExportState.
  AssumeRole seq(seq_role_);
  {
    StateReader r(img.ingress);
    if (!ingress_.Deserialize(&r) || !r.AtEnd()) return false;
  }
  {
    StateReader r(img.coordinator);
    if (r.U64() != shards_.size()) return false;
    ReadStats(&r, &coord_stats_);
    coord_violations_.clear();
    seq_violations_.clear();
    uint64_t nv = r.U64();
    for (uint64_t i = 0; i < nv && r.ok(); ++i) {
      Timestamp order_ts;
      Violation v = ReadViolation(&r, &order_ts);
      coord_violations_.push_back({order_ts, v});
    }
    read_shard_mask_.clear();
    uint64_t nm = r.U64();
    for (uint64_t i = 0; i < nm && r.ok(); ++i) {
      TxnId tid = r.U64();
      uint64_t mask = r.U64();
      read_shard_mask_[tid] = mask;
    }
    if (!r.ok() || !r.AtEnd()) return false;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    AssumeRole own(shard.owner);  // barrier edge, as above
    StateReader r(img.shards[s]);
    ReadStats(&r, &shard.stats);
    if (!shard.flips.Deserialize(&r)) return false;
    shard.violations.clear();
    uint64_t nv = r.U64();
    for (uint64_t i = 0; i < nv && r.ok(); ++i) {
      Timestamp order_ts;
      Violation v = ReadViolation(&r, &order_ts);
      shard.violations.push_back({order_ts, v});
    }
    if (!shard.engine->Deserialize(&r) || !r.AtEnd()) return false;
    shard.versions.store(shard.engine->TotalVersions(),
                         std::memory_order_relaxed);
    shard.intervals.store(shard.engine->TotalIntervals(),
                          std::memory_order_relaxed);
    shard.approx_bytes.store(shard.engine->ApproxBytes(),
                             std::memory_order_relaxed);
  }
  return true;
}

void ShardedAion::ShedMemory() {
  WaitAll();
  for (auto& shard : shards_) {
    AssumeRole own(shard->owner);  // barrier edge, as in ExportState
    shard->engine->TrimListsBelowHorizon();
    shard->approx_bytes.store(shard->engine->ApproxBytes(),
                              std::memory_order_relaxed);
  }
}

CheckerStats ShardedAion::stats() {
  WaitAll();
  CheckerStats merged = coord_stats_;
  for (auto& shard : shards_) {
    AssumeRole own(shard->owner);  // barrier edge, as in ExportState
    merged += shard->stats;
  }
  return merged;
}

FlipFlopStats ShardedAion::flip_stats() {
  WaitAll();
  FlipFlopStats merged;
  for (auto& shard : shards_) {
    AssumeRole own(shard->owner);  // barrier edge, as in ExportState
    merged.Merge(shard->flips);
  }
  return merged;
}

PipelineHealth ShardedAion::pipeline_health() {
  WaitAll();
  // Behind the barrier, as in ExportState (seq_msgs_ read below).
  AssumeRole seq(seq_role_);
  PipelineHealth h;
  h.pre_stage_in.reserve(prestages_.size());
  h.pre_stage_out.reserve(prestages_.size());
  for (auto& ps : prestages_) {
    h.pre_stage_in.push_back(ps->in.health());
    h.pre_stage_out.push_back(ps->out.health());
  }
  h.seq_ring = seq_ring_.health();
  h.shard_rings.reserve(shards_.size());
  for (auto& shard : shards_) h.shard_rings.push_back(shard->ring.health());
  h.sequencer_msgs = seq_msgs_;
  return h;
}

CheckerFootprint ShardedAion::GetFootprint() const {
  CheckerFootprint f;
  f.live_txns = ingress_.live_txns();
  size_t engine_bytes = 0;
  for (const auto& shard : shards_) {
    f.versions += shard->versions.load(std::memory_order_relaxed);
    f.intervals += shard->intervals.load(std::memory_order_relaxed);
    engine_bytes += shard->approx_bytes.load(std::memory_order_relaxed);
  }
  f.approx_bytes = engine_bytes + f.live_txns * 160 + f.intervals * 64 +
                   ingress_.used_ts_count() * 48;
  return f;
}

CheckerFootprint ShardedAion::FootprintExact() {
  // After the barrier the per-shard mirrors reflect every issued
  // command, so the estimate is deterministic for a given event prefix.
  WaitAll();
  return GetFootprint();
}

}  // namespace chronos::online
