#include "online/sharded_aion.h"

#include <algorithm>
#include <string>
#include <utility>

namespace chronos::online {
namespace {

constexpr size_t kMaxShards = 64;  // finalize fan-out uses a 64-bit mask

// splitmix64 finalizer: keys are often small sequential integers, so mix
// before taking the remainder to spread hot ranges across shards.
uint64_t MixKey(Key key) {
  uint64_t x = key + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void WriteStats(StateWriter* w, const CheckerStats& s) {
  w->U64(s.txns_processed);
  w->U64(s.ext_rechecks);
  w->U64(s.noconflict_checks);
  w->U64(s.spill_reloads);
  w->U64(s.unsafe_below_watermark);
  w->U64(s.unsafe_below_horizon);
  w->U64(s.corrupt_spill_epochs);
  w->U64(s.gc_passes);
}

void ReadStats(StateReader* r, CheckerStats* s) {
  s->txns_processed = r->U64();
  s->ext_rechecks = r->U64();
  s->noconflict_checks = r->U64();
  s->spill_reloads = r->U64();
  s->unsafe_below_watermark = r->U64();
  s->unsafe_below_horizon = r->U64();
  s->corrupt_spill_epochs = r->U64();
  s->gc_passes = r->U64();
}

void WriteViolation(StateWriter* w, Timestamp order_ts, const Violation& v) {
  w->U64(order_ts);
  w->U8(static_cast<uint8_t>(v.type));
  w->U64(v.tid);
  w->U64(v.other_tid);
  w->U64(v.key);
  w->I64(v.expected);
  w->I64(v.got);
  w->I64(v.divergence);
}

Violation ReadViolation(StateReader* r, Timestamp* order_ts) {
  *order_ts = r->U64();
  Violation v;
  v.type = static_cast<ViolationType>(r->U8());
  v.tid = r->U64();
  v.other_tid = r->U64();
  v.key = r->U64();
  v.expected = r->I64();
  v.got = r->I64();
  v.divergence = r->I64();
  return v;
}

}  // namespace

ShardedAion::ShardedAion(const Options& options, size_t num_shards,
                         ViolationSink* sink, size_t cmd_batch,
                         size_t queue_capacity)
    : options_(options),
      sink_(sink),
      cmd_batch_(cmd_batch == 0 ? 1 : cmd_batch),
      ingress_(options, &coord_stats_,
               [this](Timestamp order_ts, const Violation& v) {
                 coord_violations_.push_back({order_ts, v});
               },
               this) {
  const size_t n = std::min(std::max<size_t>(num_shards, 1), kMaxShards);
  shards_.reserve(n);
  slot_.assign(n, -1);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(queue_capacity);
    Shard* raw = shard.get();
    KeyEngine::Options eo;
    eo.mode = options_.mode;
    if (!options_.spill_dir.empty()) {
      eo.spill_dir = options_.spill_dir + "/shard" + std::to_string(i);
    }
    shard->engine = std::make_unique<KeyEngine>(
        eo, &shard->stats, &shard->flips,
        [raw](Timestamp order_ts, const Violation& v) {
          raw->violations.push_back({order_ts, v});
        });
    shard->pending.reserve(cmd_batch_);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread(&ShardedAion::WorkerLoop, this, shard.get());
  }
}

ShardedAion::~ShardedAion() {
  for (size_t s = 0; s < shards_.size(); ++s) FlushShard(s);
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // A caller that skipped Finish() must not lose detected violations:
  // the workers have drained their queues by now, so emit whatever is
  // still buffered (no-op after a normal Finish()).
  EmitViolations();
}

size_t ShardedAion::ShardOf(Key key) const {
  return static_cast<size_t>(MixKey(key) % shards_.size());
}

void ShardedAion::Append(size_t shard, ShardCmd&& cmd) {
  Shard& s = *shards_[shard];
  s.pending.push_back(std::move(cmd));
  if (s.pending.size() >= cmd_batch_) FlushShard(shard);
}

void ShardedAion::FlushShard(size_t shard) {
  Shard& s = *shards_[shard];
  if (s.pending.empty()) return;
  s.issued += s.pending.size();
  s.queue.PushBatch(std::move(s.pending));
  s.pending = {};
  s.pending.reserve(cmd_batch_);
}

void ShardedAion::WaitAll() {
  for (size_t s = 0; s < shards_.size(); ++s) FlushShard(s);
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->done_mu);
    shard->done_cv.wait(lock,
                        [&] { return shard->done >= shard->issued; });
  }
}

void ShardedAion::WorkerLoop(Shard* shard) {
  std::vector<ShardCmd> chunk;
  while (shard->queue.PopBatch(&chunk, cmd_batch_)) {
    for (ShardCmd& cmd : chunk) ExecuteCmd(shard, cmd);
    shard->versions.store(shard->engine->TotalVersions(),
                          std::memory_order_relaxed);
    shard->intervals.store(shard->engine->TotalIntervals(),
                           std::memory_order_relaxed);
    shard->approx_bytes.store(shard->engine->ApproxBytes(),
                              std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(shard->done_mu);
      shard->done += chunk.size();
    }
    shard->done_cv.notify_all();
  }
}

void ShardedAion::ExecuteCmd(Shard* shard, ShardCmd& cmd) {
  switch (cmd.kind) {
    case ShardCmd::Kind::kTxn: {
      KeyEngine::OpsView view;
      view.reads = cmd.reads.data();
      view.num_reads = cmd.reads.size();
      view.writes = cmd.writes.data();
      view.num_writes = cmd.writes.size();
      view.list_reads = cmd.list_reads.data();
      view.num_list_reads = cmd.list_reads.size();
      view.appends = cmd.appends.data();
      view.num_appends = cmd.appends.size();
      shard->engine->ProcessTxn(cmd.ctx, view, cmd.register_reads,
                                cmd.now_ms);
      break;
    }
    case ShardCmd::Kind::kFinalize:
      shard->engine->FinalizeTxn(cmd.ctx.tid);
      break;
    case ShardCmd::Kind::kGc:
      shard->engine->CollectUpTo(cmd.gc_watermark);
      break;
  }
}

void ShardedAion::DispatchTxn(const KeyEngine::TxnCtx& ctx,
                              ClassifiedOps&& ops, bool register_reads,
                              uint64_t now_ms) {
  const size_t n = shards_.size();
  if (n == 1) {
    if (register_reads &&
        (!ops.ext_reads.empty() || !ops.list_reads.empty())) {
      read_shard_mask_[ctx.tid] = 1;
    }
    ShardCmd cmd;
    cmd.kind = ShardCmd::Kind::kTxn;
    cmd.register_reads = register_reads;
    cmd.ctx = ctx;
    cmd.now_ms = now_ms;
    cmd.reads = std::move(ops.ext_reads);
    cmd.writes = std::move(ops.writes);
    cmd.list_reads = std::move(ops.list_reads);
    cmd.appends = std::move(ops.appends);
    Append(0, std::move(cmd));
    return;
  }

  // Partition the footprint, building at most one command per touched
  // shard directly in that shard's pending buffer (no intermediate
  // allocation on the coordinator hot path). Flushing is deferred past
  // the partition loop so the slot indices stay valid.
  auto slot_for = [&](size_t s) -> ShardCmd& {
    std::vector<ShardCmd>& pending = shards_[s]->pending;
    if (slot_[s] < 0) {
      slot_[s] = static_cast<int32_t>(pending.size());
      touched_.push_back(static_cast<uint32_t>(s));
      pending.emplace_back();
      ShardCmd& c = pending.back();
      c.kind = ShardCmd::Kind::kTxn;
      c.register_reads = register_reads;
      c.ctx = ctx;
      c.now_ms = now_ms;
    }
    return pending[slot_[s]];
  };
  for (const KeyEngine::ExtReadReq& r : ops.ext_reads) {
    slot_for(ShardOf(r.key)).reads.push_back(r);
  }
  for (const KeyEngine::WriteReq& w : ops.writes) {
    slot_for(ShardOf(w.key)).writes.push_back(w);
  }
  for (KeyEngine::ListReadReq& r : ops.list_reads) {
    slot_for(ShardOf(r.key)).list_reads.push_back(std::move(r));
  }
  for (KeyEngine::AppendReq& a : ops.appends) {
    slot_for(ShardOf(a.key)).appends.push_back(std::move(a));
  }

  uint64_t read_mask = 0;
  for (uint32_t s : touched_) {
    const ShardCmd& c = shards_[s]->pending[slot_[s]];
    if (register_reads && (!c.reads.empty() || !c.list_reads.empty())) {
      read_mask |= 1ull << s;
    }
    slot_[s] = -1;  // reset for the next transaction
    if (shards_[s]->pending.size() >= cmd_batch_) FlushShard(s);
  }
  touched_.clear();
  if (read_mask != 0) read_shard_mask_[ctx.tid] = read_mask;
}

void ShardedAion::DispatchFinalize(TxnId tid) {
  auto it = read_shard_mask_.find(tid);
  if (it == read_shard_mask_.end()) return;  // no external reads anywhere
  uint64_t mask = it->second;
  read_shard_mask_.erase(it);
  for (size_t s = 0; mask != 0; ++s, mask >>= 1) {
    if (mask & 1) {
      ShardCmd cmd;
      cmd.kind = ShardCmd::Kind::kFinalize;
      cmd.ctx.tid = tid;
      Append(s, std::move(cmd));
    }
  }
}

void ShardedAion::DispatchGc(Timestamp watermark) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardCmd cmd;
    cmd.kind = ShardCmd::Kind::kGc;
    cmd.gc_watermark = watermark;
    Append(s, std::move(cmd));
  }
}

void ShardedAion::OnTransaction(const Transaction& t, uint64_t now_ms) {
  ingress_.OnTransaction(t, now_ms);
}

void ShardedAion::AdvanceTime(uint64_t now_ms) {
  ingress_.AdvanceTime(now_ms);
}

Timestamp ShardedAion::Gc(Timestamp up_to) { return ingress_.Gc(up_to); }

void ShardedAion::GcToLiveTarget(size_t target) {
  ingress_.GcToLiveTarget(target);
}

void ShardedAion::Finish() {
  ingress_.Finish();
  WaitAll();
  EmitViolations();
}

void ShardedAion::EmitViolations() {
  std::vector<TaggedViolation> all = std::move(coord_violations_);
  coord_violations_.clear();
  for (auto& shard : shards_) {
    all.insert(all.end(), shard->violations.begin(), shard->violations.end());
    shard->violations.clear();
  }
  // Deterministic order regardless of shard count and thread timing:
  // (commit_ts of the attributed txn, txn id), then content.
  std::sort(all.begin(), all.end(),
            [](const TaggedViolation& a, const TaggedViolation& b) {
              if (a.order_ts != b.order_ts) return a.order_ts < b.order_ts;
              if (a.v.tid != b.v.tid) return a.v.tid < b.v.tid;
              return ViolationLess(a.v, b.v);
            });
  for (const TaggedViolation& tv : all) sink_->Report(tv.v);
}

ShardedAion::StateImage ShardedAion::ExportState() {
  WaitAll();
  StateImage img;
  {
    StateWriter w;
    ingress_.Serialize(&w);
    img.ingress = w.Take();
  }
  {
    StateWriter w;
    w.U64(shards_.size());
    WriteStats(&w, coord_stats_);
    w.U64(coord_violations_.size());
    for (const TaggedViolation& tv : coord_violations_) {
      WriteViolation(&w, tv.order_ts, tv.v);
    }
    std::vector<std::pair<TxnId, uint64_t>> masks(read_shard_mask_.begin(),
                                                  read_shard_mask_.end());
    std::sort(masks.begin(), masks.end());
    w.U64(masks.size());
    for (const auto& [tid, mask] : masks) {
      w.U64(tid);
      w.U64(mask);
    }
    img.coordinator = w.Take();
  }
  img.shards.reserve(shards_.size());
  for (auto& shard : shards_) {
    StateWriter w;
    WriteStats(&w, shard->stats);
    shard->flips.Serialize(&w);
    w.U64(shard->violations.size());
    for (const TaggedViolation& tv : shard->violations) {
      WriteViolation(&w, tv.order_ts, tv.v);
    }
    shard->engine->Serialize(&w);
    img.shards.push_back(w.Take());
  }
  return img;
}

bool ShardedAion::ImportState(const StateImage& img) {
  if (img.shards.size() != shards_.size()) return false;
  WaitAll();
  {
    StateReader r(img.ingress);
    if (!ingress_.Deserialize(&r) || !r.AtEnd()) return false;
  }
  {
    StateReader r(img.coordinator);
    if (r.U64() != shards_.size()) return false;
    ReadStats(&r, &coord_stats_);
    coord_violations_.clear();
    uint64_t nv = r.U64();
    for (uint64_t i = 0; i < nv && r.ok(); ++i) {
      Timestamp order_ts;
      Violation v = ReadViolation(&r, &order_ts);
      coord_violations_.push_back({order_ts, v});
    }
    read_shard_mask_.clear();
    uint64_t nm = r.U64();
    for (uint64_t i = 0; i < nm && r.ok(); ++i) {
      TxnId tid = r.U64();
      uint64_t mask = r.U64();
      read_shard_mask_[tid] = mask;
    }
    if (!r.ok() || !r.AtEnd()) return false;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    StateReader r(img.shards[s]);
    ReadStats(&r, &shard.stats);
    if (!shard.flips.Deserialize(&r)) return false;
    shard.violations.clear();
    uint64_t nv = r.U64();
    for (uint64_t i = 0; i < nv && r.ok(); ++i) {
      Timestamp order_ts;
      Violation v = ReadViolation(&r, &order_ts);
      shard.violations.push_back({order_ts, v});
    }
    if (!shard.engine->Deserialize(&r) || !r.AtEnd()) return false;
    shard.versions.store(shard.engine->TotalVersions(),
                         std::memory_order_relaxed);
    shard.intervals.store(shard.engine->TotalIntervals(),
                          std::memory_order_relaxed);
    shard.approx_bytes.store(shard.engine->ApproxBytes(),
                             std::memory_order_relaxed);
  }
  return true;
}

void ShardedAion::ShedMemory() {
  WaitAll();
  for (auto& shard : shards_) {
    shard->engine->TrimListsBelowHorizon();
    shard->approx_bytes.store(shard->engine->ApproxBytes(),
                              std::memory_order_relaxed);
  }
}

CheckerStats ShardedAion::stats() {
  WaitAll();
  CheckerStats merged = coord_stats_;
  for (auto& shard : shards_) merged += shard->stats;
  return merged;
}

FlipFlopStats ShardedAion::flip_stats() {
  WaitAll();
  FlipFlopStats merged;
  for (auto& shard : shards_) merged.Merge(shard->flips);
  return merged;
}

CheckerFootprint ShardedAion::GetFootprint() const {
  CheckerFootprint f;
  f.live_txns = ingress_.live_txns();
  size_t engine_bytes = 0;
  for (const auto& shard : shards_) {
    f.versions += shard->versions.load(std::memory_order_relaxed);
    f.intervals += shard->intervals.load(std::memory_order_relaxed);
    engine_bytes += shard->approx_bytes.load(std::memory_order_relaxed);
  }
  f.approx_bytes = engine_bytes + f.live_txns * 160 + f.intervals * 64 +
                   ingress_.used_ts_count() * 48;
  return f;
}

CheckerFootprint ShardedAion::FootprintExact() {
  // After the barrier the per-shard mirrors reflect every issued
  // command, so the estimate is deterministic for a given event prefix.
  WaitAll();
  return GetFootprint();
}

}  // namespace chronos::online
