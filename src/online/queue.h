// Bounded multi-producer single-consumer queue connecting the history
// collector to the online checker thread (paper Fig. 3 pipeline).
// Batch variants (`PushBatch`/`PopBatch`) amortize the lock to one
// acquisition per batch, matching the collector's batched dispatch
// (500 transactions per batch in the paper).
//
// All queue state is guarded by `mu_` and annotated for Clang's
// thread-safety analysis (core/thread_annotations.h): adding an access
// to `items_`/`closed_` outside the lock fails the -Wthread-safety
// build. Wait loops are explicit while-loops rather than predicate
// lambdas so the analysis can see the lock across the predicate reads.
#ifndef CHRONOS_ONLINE_QUEUE_H_
#define CHRONOS_ONLINE_QUEUE_H_

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"

namespace chronos::online {

/// Blocking bounded queue. Close() wakes all waiters; Pop() returns
/// nullopt once the queue is closed and drained.
template <typename T>
class BoundedQueue {
 public:
  // Capacity 0 would make PushBatch's chunking spin forever; clamp.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while empty. Returns nullopt when closed and drained.
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    // NotifyAll: batch producers wait for multi-slot room, so a
    // NotifyOne could land on a waiter whose predicate is still false.
    not_full_.NotifyAll();
    return item;
  }

  /// Pushes every element of `batch` (in order) under one lock
  /// acquisition. A batch that fits the capacity is enqueued atomically
  /// (contiguously, even with competing producers) once enough room
  /// frees up; an oversized batch is split into capacity-sized chunks,
  /// each atomic. Returns false if the queue was closed before the whole
  /// batch was enqueued (the unpushed remainder is dropped).
  bool PushBatch(std::vector<T>&& batch) {
    size_t i = 0;
    MutexLock lock(mu_);
    while (i < batch.size()) {
      size_t chunk = std::min(batch.size() - i, capacity_);
      while (!closed_ && capacity_ - items_.size() < chunk) {
        not_full_.Wait(lock);
      }
      if (closed_) return false;
      for (size_t j = 0; j < chunk; ++j) {
        items_.push_back(std::move(batch[i + j]));
      }
      i += chunk;
      not_empty_.NotifyOne();
    }
    return true;
  }

  /// Pops up to `max_items` elements into `*out` (cleared first) under a
  /// single lock acquisition; blocks while empty. Returns false — with
  /// `*out` empty — only when the queue is closed and drained.
  bool PopBatch(std::vector<T>* out, size_t max_items) {
    out->clear();
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(lock);
    if (items_.empty()) return false;
    size_t n = std::min(max_items, items_.size());
    out->reserve(n);
    for (size_t j = 0; j < n; ++j) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.NotifyAll();
    return true;
  }

  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  size_t Size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar not_empty_, not_full_;
  std::deque<T> items_ CHRONOS_GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ CHRONOS_GUARDED_BY(mu_) = false;
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_QUEUE_H_
