// Bounded multi-producer single-consumer queue connecting the history
// collector to the online checker thread (paper Fig. 3 pipeline).
#ifndef CHRONOS_ONLINE_QUEUE_H_
#define CHRONOS_ONLINE_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace chronos::online {

/// Blocking bounded queue. Close() wakes all waiters; Pop() returns
/// nullopt once the queue is closed and drained.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_QUEUE_H_
