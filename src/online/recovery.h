// Crash recovery for the durable online checker (online/checkpoint.h):
// reconstructs a ShardedAion from the newest valid checkpoint plus a WAL
// replay of every record past the checkpoint's cut. Because the checker
// is a pure function of its input sequence, the recovered instance is
// verdict-identical to one that never crashed — same violation bytes,
// same stats, same watermark — which the kill-point tests enforce at
// every crash offset.
#ifndef CHRONOS_ONLINE_RECOVERY_H_
#define CHRONOS_ONLINE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/online_checker.h"
#include "core/violation.h"
#include "online/sharded_aion.h"

namespace chronos::online {

struct RecoverResult {
  /// Null iff recovery failed outright (see `error`). On success the
  /// checker has absorbed the checkpoint and the WAL tail and is ready
  /// for more arrivals.
  std::unique_ptr<ShardedAion> checker;
  /// Next WAL sequence number to append (pass to DurableRunner).
  uint64_t next_seq = 1;
  /// Arrivals already consumed (checkpoint + replay): the caller resumes
  /// its input stream at this index.
  uint64_t events = 0;
  /// Byte offset of the WAL's last valid record end. Pass to
  /// DurableRunner as `wal_truncate_to` so a torn tail is dropped before
  /// new records are appended.
  uint64_t wal_truncate_to = 0;
  /// Sequence of the checkpoint used (0: none; replay covered the run).
  uint64_t ckpt_seq = 0;
  bool from_checkpoint = false;
  /// True when the newest checkpoint was corrupt/torn and recovery fell
  /// back to an older one (or to WAL-only replay).
  bool used_fallback = false;
  std::string error;  ///< non-empty on failure
};

/// Recovers from `dir` (checkpoints + wal.log). Tries checkpoints newest
/// first, discarding any that fail checksum/framing validation or state
/// import; with no usable checkpoint, replays the WAL from the start
/// into a fresh checker with `default_shards` shards. `options` must
/// match the crashed run's (same mode, timeout, and spill_dir — the
/// imported spill manifests reference epoch files under it).
RecoverResult Recover(const CheckerOptions& options, const std::string& dir,
                      ViolationSink* sink, size_t default_shards = 1,
                      size_t cmd_batch = 256, size_t queue_capacity = 8192);

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_RECOVERY_H_
