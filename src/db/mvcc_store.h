// Multi-version storage for the Algorithm-1 database: every committed
// write is kept as a (commit_ts, value) version so reads can be served
// as of any snapshot timestamp (paper Algorithm 1 line 8: "value of k
// from log as of T.start_ts"). Lists are stored as element streams; the
// list value at a snapshot is the prefix of elements committed at or
// before it.
#ifndef CHRONOS_DB_MVCC_STORE_H_
#define CHRONOS_DB_MVCC_STORE_H_

#include <algorithm>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace chronos::db {

/// Thread-safe multi-version register + list store.
class MvccStore {
 public:
  /// Latest register value with commit ts <= snapshot (kValueInit if none).
  Value ReadAsOf(Key key, Timestamp snapshot) const {
    std::shared_lock lock(mu_);
    auto it = regs_.find(key);
    if (it == regs_.end()) return kValueInit;
    const auto& versions = it->second;
    auto vit = std::upper_bound(
        versions.begin(), versions.end(), snapshot,
        [](Timestamp ts, const auto& v) { return ts < v.first; });
    if (vit == versions.begin()) return kValueInit;
    return std::prev(vit)->second;
  }

  /// Register value `depth` versions older than the snapshot view (used by
  /// the stale-read fault injector). depth=0 equals ReadAsOf.
  Value ReadStale(Key key, Timestamp snapshot, uint32_t depth) const {
    std::shared_lock lock(mu_);
    auto it = regs_.find(key);
    if (it == regs_.end()) return kValueInit;
    const auto& versions = it->second;
    auto vit = std::upper_bound(
        versions.begin(), versions.end(), snapshot,
        [](Timestamp ts, const auto& v) { return ts < v.first; });
    size_t n = static_cast<size_t>(vit - versions.begin());
    if (n <= depth) return kValueInit;
    return versions[n - 1 - depth].second;
  }

  /// List contents visible at the snapshot: all elements appended by
  /// transactions with commit ts <= snapshot, in commit order.
  std::vector<Value> ReadListAsOf(Key key, Timestamp snapshot) const {
    std::shared_lock lock(mu_);
    std::vector<Value> out;
    auto it = lists_.find(key);
    if (it == lists_.end()) return out;
    for (const auto& [ts, elem] : it->second) {
      if (ts <= snapshot) out.push_back(elem);
    }
    return out;
  }

  /// Commit timestamp of the newest version of `key` (kTsMin if none).
  Timestamp LatestCommitTs(Key key) const {
    std::shared_lock lock(mu_);
    Timestamp best = kTsMin;
    auto it = regs_.find(key);
    if (it != regs_.end() && !it->second.empty()) {
      best = it->second.back().first;
    }
    auto lit = lists_.find(key);
    if (lit != lists_.end() && !lit->second.empty()) {
      best = std::max(best, lit->second.back().first);
    }
    return best;
  }

  /// Installs a committed register write. Versions arrive in commit-lock
  /// order but HLC timestamps may be non-monotonic, so insert sorted.
  void ApplyWrite(Key key, Timestamp cts, Value value) {
    std::unique_lock lock(mu_);
    auto& versions = regs_[key];
    auto vit = std::upper_bound(
        versions.begin(), versions.end(), cts,
        [](Timestamp ts, const auto& v) { return ts < v.first; });
    versions.insert(vit, {cts, value});
  }

  /// Installs a committed list append.
  void ApplyAppend(Key key, Timestamp cts, Value elem) {
    std::unique_lock lock(mu_);
    auto& elems = lists_[key];
    auto vit = std::upper_bound(
        elems.begin(), elems.end(), cts,
        [](Timestamp ts, const auto& v) { return ts < v.first; });
    elems.insert(vit, {cts, elem});
  }

  size_t NumKeys() const {
    std::shared_lock lock(mu_);
    return regs_.size() + lists_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<Key, std::vector<std::pair<Timestamp, Value>>> regs_;
  std::unordered_map<Key, std::vector<std::pair<Timestamp, Value>>> lists_;
};

}  // namespace chronos::db

#endif  // CHRONOS_DB_MVCC_STORE_H_
