// An in-memory transactional key-value database implementing the paper's
// Algorithm 1 (operational SI semantics): snapshot reads as of start_ts,
// buffered writes, first-committer-wins conflict detection, and a commit
// log. A SER mode additionally validates the read set at commit (OCC),
// so committed histories are serializable in commit-timestamp order.
//
// This is the substrate substituting for TiDB / YugabyteDB / Dgraph in
// the paper's evaluation (DESIGN.md substitution #1).
#ifndef CHRONOS_DB_DATABASE_H_
#define CHRONOS_DB_DATABASE_H_

#include <memory>
#include <mutex>
#include <random>
#include <unordered_map>
#include <vector>

#include "core/small_map.h"
#include "core/types.h"
#include "db/fault.h"
#include "db/mvcc_store.h"
#include "db/oracle.h"

namespace chronos::db {

/// Database configuration.
struct DbConfig {
  enum class Isolation { kSi, kSer };
  Isolation isolation = Isolation::kSi;

  enum class Timestamping { kCentralized, kHlc };
  Timestamping timestamping = Timestamping::kCentralized;
  uint32_t hlc_nodes = 3;
  /// Per-node physical-clock skew magnitude (node i gets a deterministic
  /// skew in [-hlc_max_skew, +hlc_max_skew]).
  int64_t hlc_max_skew = 0;

  FaultConfig faults;
  uint64_t fault_seed = 42;

  /// When false, committed transactions are not recorded to the history
  /// log (models running the database without checker collection; used
  /// by the Fig. 15 overhead bench).
  bool record_history = true;
};

/// The database. Thread-safe: sessions may run on separate threads, with
/// at most one open transaction per session at a time.
class Database {
 public:
  class Txn;

  explicit Database(const DbConfig& config);
  ~Database();

  /// Starts a transaction in `sid` (Algorithm 1 START).
  std::unique_ptr<Txn> Begin(SessionId sid);
  /// Snapshot-or-buffer read (Algorithm 1 READ); records the observation.
  Value Read(Txn* txn, Key key);
  /// Buffered write (Algorithm 1 WRITE).
  void Write(Txn* txn, Key key, Value value);
  /// Buffered list append.
  void Append(Txn* txn, Key key, Value elem);
  /// Snapshot-plus-buffer list read.
  std::vector<Value> ReadList(Txn* txn, Key key);

  enum class CommitResult { kCommitted, kAborted };
  /// Algorithm 1 COMMIT: first-committer-wins (plus read validation under
  /// SER). On success the transaction is appended to the history log.
  CommitResult Commit(std::unique_ptr<Txn> txn);

  /// Snapshot of the committed history (recording faults already applied).
  History ExportHistory() const;
  size_t CommittedCount() const;
  size_t AbortedCount() const;
  const FaultLog& fault_log() const { return fault_log_; }

 private:
  bool Flip(double prob, std::mt19937_64* rng);

  DbConfig config_;
  std::unique_ptr<TimestampOracle> oracle_;
  MvccStore store_;
  FaultLog fault_log_;

  mutable std::mutex commit_mu_;
  std::vector<Transaction> log_;
  std::unordered_map<SessionId, uint64_t> next_sno_;
  std::unordered_map<SessionId, bool> pending_reorder_;
  uint64_t next_tid_ = 1;
  uint64_t aborted_ = 0;
  uint64_t log_committed_unrecorded_ = 0;
  std::mt19937_64 fault_rng_;
};

/// Open-transaction handle. Not thread-safe (single session owner).
class Database::Txn {
 public:
  Timestamp start_ts() const { return start_ts_; }
  SessionId sid() const { return sid_; }

 private:
  friend class Database;
  SessionId sid_ = 0;
  Timestamp start_ts_ = 0;
  SmallMap<Key, Value> write_buffer_;
  SmallMap<Key, std::vector<Value>> append_buffer_;
  std::vector<Key> read_keys_;   // for SER OCC validation
  std::vector<Op> recorded_ops_;
  std::vector<std::vector<Value>> recorded_lists_;
};

}  // namespace chronos::db

#endif  // CHRONOS_DB_DATABASE_H_
