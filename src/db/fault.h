// Fault injection for the Algorithm-1 database (paper Sec. V-D: a real
// clock-skew bug plus injected timestamp faults). Engine faults corrupt
// the execution itself; recording faults corrupt only the history handed
// to the checkers, modelling buggy CDC/WAL timestamp extraction. Every
// injected fault is counted so tests can assert detection.
#ifndef CHRONOS_DB_FAULT_H_
#define CHRONOS_DB_FAULT_H_

#include <atomic>
#include <cstdint>

namespace chronos::db {

/// Probabilities are per opportunity (per read, per commit, ...).
struct FaultConfig {
  // --- engine faults (the database itself misbehaves) ---
  /// Skip first-committer-wins validation: permits lost updates, so the
  /// NOCONFLICT axiom fails for the overlapping writers.
  double lost_update_prob = 0;
  /// Serve a read from a snapshot `stale_depth` versions older than the
  /// correct one: EXT violations.
  double stale_read_prob = 0;
  uint32_t stale_depth = 1;

  // --- recording faults (history extraction is wrong) ---
  /// Record commit_ts := start_ts, making the transaction appear to
  /// commit instantly at its snapshot: timestamp-based checkers see EXT /
  /// NOCONFLICT divergence that black-box checkers cannot (Fig. 11).
  double early_commit_prob = 0;
  /// Record start_ts := commit_ts (snapshot appears taken at commit).
  double late_start_prob = 0;
  /// Record a read value off by one: EXT (or INT) violations.
  double value_corruption_prob = 0;
  /// Swap the session sequence numbers of two adjacent transactions in
  /// the same session: SESSION violations.
  double session_reorder_prob = 0;
  /// Record start/commit swapped where it breaks Eq. (1).
  double ts_swap_prob = 0;

  bool AnyEnabled() const {
    return lost_update_prob > 0 || stale_read_prob > 0 ||
           early_commit_prob > 0 || late_start_prob > 0 ||
           value_corruption_prob > 0 || session_reorder_prob > 0 ||
           ts_swap_prob > 0;
  }
};

/// Counters of faults actually injected (ground truth for tests).
struct FaultLog {
  std::atomic<uint64_t> lost_updates{0};
  std::atomic<uint64_t> stale_reads{0};
  std::atomic<uint64_t> early_commits{0};
  std::atomic<uint64_t> late_starts{0};
  std::atomic<uint64_t> value_corruptions{0};
  std::atomic<uint64_t> session_reorders{0};
  std::atomic<uint64_t> ts_swaps{0};

  uint64_t Total() const {
    return lost_updates + stale_reads + early_commits + late_starts +
           value_corruptions + session_reorders + ts_swaps;
  }
};

}  // namespace chronos::db

#endif  // CHRONOS_DB_FAULT_H_
