// Timestamp oracles (paper Sec. II-A's time oracle O, Appendix A/B).
// The centralized oracle models TiDB's Placement Driver / Dgraph's Zero
// group: strictly increasing, unique timestamps. The HLC oracle models
// YugabyteDB's decentralized hybrid logical clocks: per-node clocks with
// bounded skew whose timestamps are unique but not globally monotonic in
// real-time order.
#ifndef CHRONOS_DB_ORACLE_H_
#define CHRONOS_DB_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/types.h"

namespace chronos::db {

/// Issues unique, totally ordered timestamps. `node` selects the issuing
/// node for decentralized implementations and is ignored by centralized
/// ones. Thread-safe.
class TimestampOracle {
 public:
  virtual ~TimestampOracle() = default;
  virtual Timestamp Next(uint32_t node) = 0;
};

/// Strictly increasing atomic counter (TiDB PD / Dgraph Zero model).
class CentralizedOracle : public TimestampOracle {
 public:
  explicit CentralizedOracle(Timestamp first = 1) : next_(first) {}
  Timestamp Next(uint32_t /*node*/) override { return next_.fetch_add(1); }

 private:
  std::atomic<Timestamp> next_;
};

/// Hybrid logical clock per node (YugabyteDB model). The "physical" part
/// is a shared tick counter offset by a per-node skew; the logical part
/// and the node id guarantee uniqueness. With zero skew the output is
/// causally monotonic; with skew, cross-node timestamp inversions occur,
/// reproducing the clock-skew anomalies of paper Sec. V-D.
class HlcOracle : public TimestampOracle {
 public:
  /// `skews[i]` is added to node i's physical reading (may be negative).
  HlcOracle(uint32_t nodes, std::vector<int64_t> skews)
      : skews_(std::move(skews)), last_(nodes, 0) {
    skews_.resize(nodes, 0);
  }

  Timestamp Next(uint32_t node) override {
    std::lock_guard<std::mutex> lock(mu_);
    node %= static_cast<uint32_t>(last_.size());
    uint64_t physical = static_cast<uint64_t>(
        static_cast<int64_t>(ticks_.fetch_add(1) + 1000000) + skews_[node]);
    // Layout: [physical | 8-bit logical | 8-bit node]; the logical part
    // makes a node's own outputs strictly increasing.
    uint64_t candidate = physical << 16;
    uint64_t next = std::max(candidate, last_[node] + (1u << 8));
    last_[node] = next;
    return next | node;
  }

 private:
  std::mutex mu_;
  std::atomic<uint64_t> ticks_{0};
  std::vector<int64_t> skews_;
  std::vector<uint64_t> last_;
};

}  // namespace chronos::db

#endif  // CHRONOS_DB_ORACLE_H_
