#include "db/database.h"

#include <algorithm>

namespace chronos::db {

Database::Database(const DbConfig& config)
    : config_(config), fault_rng_(config.fault_seed) {
  if (config.timestamping == DbConfig::Timestamping::kCentralized) {
    oracle_ = std::make_unique<CentralizedOracle>();
  } else {
    std::vector<int64_t> skews(config.hlc_nodes, 0);
    for (uint32_t i = 0; i < config.hlc_nodes; ++i) {
      // Deterministic alternating skews in [-max, +max].
      int64_t magnitude =
          config.hlc_max_skew == 0
              ? 0
              : static_cast<int64_t>(i + 1) * config.hlc_max_skew /
                    static_cast<int64_t>(config.hlc_nodes);
      skews[i] = (i % 2 == 0) ? magnitude : -magnitude;
    }
    oracle_ = std::make_unique<HlcOracle>(config.hlc_nodes, std::move(skews));
  }
}

Database::~Database() = default;

bool Database::Flip(double prob, std::mt19937_64* rng) {
  if (prob <= 0) return false;
  return std::uniform_real_distribution<double>(0, 1)(*rng) < prob;
}

std::unique_ptr<Database::Txn> Database::Begin(SessionId sid) {
  auto txn = std::unique_ptr<Txn>(new Txn());
  txn->sid_ = sid;
  txn->start_ts_ = oracle_->Next(sid % std::max(1u, config_.hlc_nodes));
  return txn;
}

Value Database::Read(Txn* txn, Key key) {
  Value observed;
  if (Value* buffered = txn->write_buffer_.Find(key)) {
    observed = *buffered;  // reads own buffered write (Algorithm 1 READ)
  } else {
    bool stale = false;
    if (config_.faults.stale_read_prob > 0) {
      std::lock_guard<std::mutex> lock(commit_mu_);
      stale = Flip(config_.faults.stale_read_prob, &fault_rng_);
    }
    if (stale) {
      observed = store_.ReadStale(key, txn->start_ts_, config_.faults.stale_depth);
      ++fault_log_.stale_reads;
    } else {
      observed = store_.ReadAsOf(key, txn->start_ts_);
    }
    txn->read_keys_.push_back(key);
  }
  txn->recorded_ops_.push_back({OpType::kRead, key, observed, 0});
  return observed;
}

void Database::Write(Txn* txn, Key key, Value value) {
  txn->write_buffer_.Put(key, value);
  txn->recorded_ops_.push_back({OpType::kWrite, key, value, 0});
}

void Database::Append(Txn* txn, Key key, Value elem) {
  std::vector<Value>* pending = txn->append_buffer_.Find(key);
  if (!pending) {
    txn->append_buffer_.Put(key, {});
    pending = txn->append_buffer_.Find(key);
  }
  pending->push_back(elem);
  txn->recorded_ops_.push_back({OpType::kAppend, key, elem, 0});
}

std::vector<Value> Database::ReadList(Txn* txn, Key key) {
  std::vector<Value> observed = store_.ReadListAsOf(key, txn->start_ts_);
  if (const std::vector<Value>* pending = txn->append_buffer_.Find(key)) {
    observed.insert(observed.end(), pending->begin(), pending->end());
  } else {
    txn->read_keys_.push_back(key);
  }
  Op op;
  op.type = OpType::kReadList;
  op.key = key;
  op.list_index = static_cast<uint32_t>(txn->recorded_lists_.size());
  txn->recorded_ops_.push_back(op);
  txn->recorded_lists_.push_back(observed);
  return observed;
}

Database::CommitResult Database::Commit(std::unique_ptr<Txn> txn) {
  std::lock_guard<std::mutex> lock(commit_mu_);

  // First-committer-wins over the write set (Algorithm 1 line 11), unless
  // the lost-update fault suppresses validation for this commit.
  bool validate = !Flip(config_.faults.lost_update_prob, &fault_rng_);
  bool has_writes =
      !txn->write_buffer_.empty() || !txn->append_buffer_.empty();
  if (validate && has_writes) {
    for (const auto& [key, value] : txn->write_buffer_) {
      (void)value;
      if (store_.LatestCommitTs(key) > txn->start_ts_) {
        ++aborted_;
        return CommitResult::kAborted;
      }
    }
    for (const auto& [key, elems] : txn->append_buffer_) {
      (void)elems;
      if (store_.LatestCommitTs(key) > txn->start_ts_) {
        ++aborted_;
        return CommitResult::kAborted;
      }
    }
  } else if (!validate && has_writes) {
    ++fault_log_.lost_updates;
  }
  // SER: OCC read validation — any newer version of a read key aborts.
  if (config_.isolation == DbConfig::Isolation::kSer) {
    for (Key key : txn->read_keys_) {
      if (store_.LatestCommitTs(key) > txn->start_ts_) {
        ++aborted_;
        return CommitResult::kAborted;
      }
    }
  }

  Timestamp cts;
  if (has_writes) {
    cts = oracle_->Next(txn->sid_ % std::max(1u, config_.hlc_nodes));
  } else {
    cts = txn->start_ts_;  // read-only: commit_ts == start_ts is allowed
  }

  for (const auto& [key, value] : txn->write_buffer_) {
    store_.ApplyWrite(key, cts, value);
  }
  for (const auto& [key, elems] : txn->append_buffer_) {
    for (Value e : elems) store_.ApplyAppend(key, cts, e);
  }

  // ---- Record the committed transaction (with recording faults). ----
  if (!config_.record_history) {
    next_sno_[txn->sid_]++;
    log_committed_unrecorded_++;
    return CommitResult::kCommitted;
  }
  Transaction rec;
  rec.tid = next_tid_++;
  rec.sid = txn->sid_;
  rec.sno = next_sno_[txn->sid_]++;
  rec.start_ts = txn->start_ts_;
  rec.commit_ts = cts;
  rec.ops = std::move(txn->recorded_ops_);
  rec.list_args = std::move(txn->recorded_lists_);

  const FaultConfig& f = config_.faults;
  if (Flip(f.early_commit_prob, &fault_rng_) && rec.commit_ts != rec.start_ts) {
    rec.commit_ts = rec.start_ts;
    ++fault_log_.early_commits;
  }
  if (Flip(f.late_start_prob, &fault_rng_) && rec.start_ts != rec.commit_ts) {
    rec.start_ts = rec.commit_ts;
    ++fault_log_.late_starts;
  }
  if (Flip(f.ts_swap_prob, &fault_rng_) && rec.start_ts < rec.commit_ts) {
    std::swap(rec.start_ts, rec.commit_ts);
    ++fault_log_.ts_swaps;
  }
  if (f.value_corruption_prob > 0) {
    for (Op& op : rec.ops) {
      if (op.type == OpType::kRead && Flip(f.value_corruption_prob, &fault_rng_)) {
        op.value += 1;
        ++fault_log_.value_corruptions;
      }
    }
  }
  if (Flip(f.session_reorder_prob, &fault_rng_)) {
    pending_reorder_[rec.sid] = true;
  } else if (pending_reorder_[rec.sid]) {
    // Swap this transaction's sno with the previous one in its session.
    for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
      if (it->sid == rec.sid) {
        std::swap(it->sno, rec.sno);
        ++fault_log_.session_reorders;
        break;
      }
    }
    pending_reorder_[rec.sid] = false;
  }

  log_.push_back(std::move(rec));
  return CommitResult::kCommitted;
}

History Database::ExportHistory() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  History h;
  h.txns = log_;
  SessionId max_sid = 0;
  for (const auto& t : log_) max_sid = std::max(max_sid, t.sid);
  h.num_sessions = log_.empty() ? 0 : max_sid + 1;
  return h;
}

size_t Database::CommittedCount() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return log_.size() + log_committed_unrecorded_;
}

size_t Database::AbortedCount() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return aborted_;
}

}  // namespace chronos::db
