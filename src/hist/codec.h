// Text serialization of histories. The offline benches measure the
// "loading" stage of Fig. 8/9/24 through this codec; the format is
// line-oriented so histories are diffable and easy to inspect:
//
//   chronos-history v1 sessions=<n> txns=<m>
//   T <tid> <sid> <sno> <start_ts> <commit_ts> <nops> [iso=<level>]
//   R <key> <value>        (one line per op, in program order)
//   W <key> <value>
//   A <key> <elem>
//   L <key> <n> <e1> ... <en>
//
// The optional trailing `iso=<si|ser|rc|ra>` tags the transaction's own
// isolation level (Transaction::iso); absent means run-level default, so
// histories saved before mixed-level support load (and re-save)
// byte-identically.
#ifndef CHRONOS_HIST_CODEC_H_
#define CHRONOS_HIST_CODEC_H_

#include <string>

#include "core/types.h"

namespace chronos::hist {

/// Success/error result for codec operations.
struct CodecStatus {
  bool ok = true;
  std::string message;

  static CodecStatus Ok() { return {}; }
  static CodecStatus Error(std::string msg) { return {false, std::move(msg)}; }
};

/// Writes `history` to `path`, overwriting.
CodecStatus SaveHistory(const History& history, const std::string& path);

/// Reads a history written by SaveHistory. Validates structure (counts,
/// op tags) and reports the first malformed line.
CodecStatus LoadHistory(const std::string& path, History* out);

}  // namespace chronos::hist

#endif  // CHRONOS_HIST_CODEC_H_
