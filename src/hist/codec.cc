#include "hist/codec.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#ifdef _WIN32
#include <io.h>
#define chronos_fsync _commit
#define chronos_fileno _fileno
#else
#include <unistd.h>
#define chronos_fsync fsync
#define chronos_fileno fileno
#endif

namespace chronos::hist {

CodecStatus SaveHistory(const History& history, const std::string& path) {
  // Written tmp + fsync + rename so a crash mid-save leaves either the
  // previous file or the complete new one, never a torn prefix; the
  // footer lets LoadHistory reject a file truncated at a record boundary
  // (which would otherwise parse cleanly).
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (!f) return CodecStatus::Error("cannot open for write: " + tmp);
  fprintf(f, "chronos-history v1 sessions=%u txns=%zu\n", history.num_sessions,
          history.txns.size());
  for (const Transaction& t : history.txns) {
    fprintf(f, "T %" PRIu64 " %u %" PRIu64 " %" PRIu64 " %" PRIu64 " %zu",
            t.tid, t.sid, t.sno, t.start_ts, t.commit_ts, t.ops.size());
    if (t.iso != IsolationLevel::kUnspecified) {
      fprintf(f, " iso=%s", IsolationLevelName(t.iso));
    }
    fprintf(f, "\n");
    for (const Op& op : t.ops) {
      switch (op.type) {
        case OpType::kRead:
          fprintf(f, "R %" PRIu64 " %" PRId64 "\n", op.key, op.value);
          break;
        case OpType::kWrite:
          fprintf(f, "W %" PRIu64 " %" PRId64 "\n", op.key, op.value);
          break;
        case OpType::kAppend:
          fprintf(f, "A %" PRIu64 " %" PRId64 "\n", op.key, op.value);
          break;
        case OpType::kReadList: {
          const auto& elems = t.list_args[op.list_index];
          fprintf(f, "L %" PRIu64 " %zu", op.key, elems.size());
          for (Value e : elems) fprintf(f, " %" PRId64, e);
          fprintf(f, "\n");
          break;
        }
      }
    }
  }
  fprintf(f, "# end txns=%zu\n", history.txns.size());
  bool ok = fflush(f) == 0 && chronos_fsync(chronos_fileno(f)) == 0;
  ok = (fclose(f) == 0) && ok;
  if (!ok) {
    remove(tmp.c_str());
    return CodecStatus::Error("flush failed: " + tmp);
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    remove(tmp.c_str());
    return CodecStatus::Error("rename failed: " + path);
  }
  return CodecStatus::Ok();
}

CodecStatus LoadHistory(const std::string& path, History* out) {
  FILE* f = fopen(path.c_str(), "r");
  if (!f) return CodecStatus::Error("cannot open for read: " + path);
  out->txns.clear();
  out->num_sessions = 0;

  size_t declared_txns = 0;
  if (fscanf(f, "chronos-history v1 sessions=%u txns=%zu\n",
             &out->num_sessions, &declared_txns) != 2) {
    fclose(f);
    return CodecStatus::Error("bad header in " + path);
  }
  out->txns.reserve(declared_txns);

  char tag[4];
  bool footer_seen = false;
  size_t footer_txns = 0;
  while (fscanf(f, "%3s", tag) == 1) {
    if (strcmp(tag, "#") == 0) {
      if (fscanf(f, " end txns=%zu", &footer_txns) != 1) {
        fclose(f);
        return CodecStatus::Error("malformed footer in " + path);
      }
      footer_seen = true;
      break;
    }
    if (strcmp(tag, "T") != 0) {
      fclose(f);
      return CodecStatus::Error("expected transaction record, got tag: " +
                                std::string(tag));
    }
    Transaction t;
    size_t nops = 0;
    if (fscanf(f, "%" SCNu64 " %u %" SCNu64 " %" SCNu64 " %" SCNu64 " %zu",
               &t.tid, &t.sid, &t.sno, &t.start_ts, &t.commit_ts,
               &nops) != 6) {
      fclose(f);
      return CodecStatus::Error("malformed transaction header");
    }
    // Optional trailing `iso=<level>` on the same line; absent means
    // run-level default (Transaction::iso stays kUnspecified).
    char rest[64];
    if (!fgets(rest, sizeof(rest), f)) {
      fclose(f);
      return CodecStatus::Error("truncated transaction header");
    }
    char* p = rest;
    while (*p == ' ') ++p;
    p[strcspn(p, "\r\n")] = '\0';
    if (*p != '\0') {
      if (strncmp(p, "iso=", 4) != 0 ||
          !IsolationLevelFromName(p + 4, &t.iso)) {
        fclose(f);
        return CodecStatus::Error("bad transaction header suffix: " +
                                  std::string(p));
      }
    }
    t.ops.reserve(nops);
    for (size_t i = 0; i < nops; ++i) {
      if (fscanf(f, "%3s", tag) != 1) {
        fclose(f);
        return CodecStatus::Error("truncated operation list");
      }
      Op op;
      if (strcmp(tag, "R") == 0 || strcmp(tag, "W") == 0 ||
          strcmp(tag, "A") == 0) {
        op.type = tag[0] == 'R'   ? OpType::kRead
                  : tag[0] == 'W' ? OpType::kWrite
                                  : OpType::kAppend;
        if (fscanf(f, "%" SCNu64 " %" SCNd64, &op.key, &op.value) != 2) {
          fclose(f);
          return CodecStatus::Error("malformed register op");
        }
      } else if (strcmp(tag, "L") == 0) {
        op.type = OpType::kReadList;
        size_t n = 0;
        if (fscanf(f, "%" SCNu64 " %zu", &op.key, &n) != 2) {
          fclose(f);
          return CodecStatus::Error("malformed list read header");
        }
        std::vector<Value> elems(n);
        for (size_t j = 0; j < n; ++j) {
          if (fscanf(f, "%" SCNd64, &elems[j]) != 1) {
            fclose(f);
            return CodecStatus::Error("truncated list read");
          }
        }
        op.list_index = static_cast<uint32_t>(t.list_args.size());
        t.list_args.push_back(std::move(elems));
      } else {
        fclose(f);
        return CodecStatus::Error("unknown op tag: " + std::string(tag));
      }
      t.ops.push_back(op);
    }
    out->txns.push_back(std::move(t));
  }
  fclose(f);
  if (out->txns.size() != declared_txns) {
    return CodecStatus::Error("header declared " +
                              std::to_string(declared_txns) + " txns, found " +
                              std::to_string(out->txns.size()));
  }
  // The footer is mandatory: without it, a file truncated exactly at a
  // record boundary is indistinguishable from a complete one.
  if (!footer_seen) {
    return CodecStatus::Error("missing end footer (truncated file?): " + path);
  }
  if (footer_txns != out->txns.size()) {
    return CodecStatus::Error("footer declared " +
                              std::to_string(footer_txns) + " txns, found " +
                              std::to_string(out->txns.size()));
  }
  return CodecStatus::Ok();
}

}  // namespace chronos::hist
