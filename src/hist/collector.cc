#include "hist/collector.h"

#include <algorithm>
#include <random>
#include <unordered_map>

namespace chronos::hist {

std::vector<CollectedTxn> ScheduleDelivery(const History& history,
                                           const CollectorParams& params) {
  // CDC emission order: commit timestamp order.
  std::vector<uint32_t> order(history.txns.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return history.txns[a].commit_ts < history.txns[b].commit_ts;
  });

  std::mt19937_64 rng(params.seed);
  std::normal_distribution<double> delay(params.delay_mean_ms,
                                         params.delay_stddev_ms);

  std::vector<CollectedTxn> out;
  out.reserve(order.size());
  std::unordered_map<SessionId, uint64_t> session_floor;

  for (size_t i = 0; i < order.size(); ++i) {
    const Transaction& t = history.txns[order[i]];
    uint64_t batch_time =
        (i / params.batch_size) * params.batch_interval_ms;
    double d = params.delay_stddev_ms > 0 || params.delay_mean_ms > 0
                   ? std::max(0.0, delay(rng))
                   : 0.0;
    uint64_t at = batch_time + static_cast<uint64_t>(d);
    // Preserve session order: never deliver before the session's previous
    // transaction.
    uint64_t& floor = session_floor[t.sid];
    at = std::max(at, floor);
    floor = at;
    out.push_back({t, at});
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const CollectedTxn& a, const CollectedTxn& b) {
                     return a.deliver_at_ms < b.deliver_at_ms;
                   });
  return out;
}

}  // namespace chronos::hist
