// The history collector of the online workflow (paper Fig. 3): committed
// transactions are dispatched to the checker in batches (500 per batch in
// the paper), and asynchrony is modelled by per-transaction delivery
// delays drawn from N(mu, sigma^2) (paper Sec. VI-C). Session order is
// preserved at delivery, which AION assumes (Sec. III-C1).
#ifndef CHRONOS_HIST_COLLECTOR_H_
#define CHRONOS_HIST_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace chronos::hist {

/// Delay / batching parameters.
struct CollectorParams {
  uint32_t batch_size = 500;       ///< transactions per dispatched batch
  uint64_t batch_interval_ms = 40; ///< time between batch dispatches
  double delay_mean_ms = 0;        ///< mu of the per-txn delay
  double delay_stddev_ms = 0;      ///< sigma of the per-txn delay
  uint64_t seed = 99;
};

/// A transaction with its delivery time on the checker's (virtual) clock.
struct CollectedTxn {
  Transaction txn;
  uint64_t deliver_at_ms = 0;
};

/// Computes the delivery schedule for `history` (transactions taken in
/// commit-timestamp order, as a CDC stream would emit them): batch k is
/// dispatched at k * batch_interval_ms and each transaction adds its own
/// normal delay. Delivery times are clamped so that each session's
/// transactions arrive in session order; the result is sorted by delivery
/// time (stable for ties).
std::vector<CollectedTxn> ScheduleDelivery(const History& history,
                                           const CollectorParams& params);

}  // namespace chronos::hist

#endif  // CHRONOS_HIST_COLLECTOR_H_
