#include "explore/enumerator.h"

#include <algorithm>

namespace chronos::explore {
namespace {

// DFS state over the canonical arrival indices. Enabledness is the
// session partial order: an arrival is placeable once every earlier
// (smaller-sno) arrival of its session is placed. Candidates are tried
// in ascending canonical index, so the first complete schedule is the
// lex-min linear extension — the reference schedule.
class Dfs {
 public:
  Dfs(const std::vector<Arrival>& arrivals, const Dependence& dep,
      uint64_t max_schedules, const ScheduleVisitor& visit)
      : arrivals_(arrivals),
        dep_(dep),
        max_schedules_(max_schedules),
        visit_(visit),
        placed_(arrivals.size(), false) {
    seq_.reserve(arrivals.size());
  }

  EnumerationCounts Run() {
    Step();
    return counts_;
  }

 private:
  // An arrival is enabled when no unplaced same-session arrival has a
  // smaller sno (same-session pairs are always dependent, so session
  // order also survives every trace-equivalent swap).
  bool Enabled(size_t i) const {
    const Transaction* t = arrivals_[i].txn;
    for (size_t j = 0; j < arrivals_.size(); ++j) {
      if (j == i || placed_[j]) continue;
      const Transaction* u = arrivals_[j].txn;
      if (u->sid == t->sid && u->sno < t->sno) return false;
    }
    return true;
  }

  // Lex-normal-form check (the sleep-set discipline): appending `i` is
  // allowed only if the backward walk over the prefix, through arrivals
  // independent of `i`, never meets a canonically larger one — such a
  // prefix could swap `i` before that arrival and is not the lex-min
  // member of its trace class.
  bool CanAppend(size_t i) const {
    for (size_t k = seq_.size(); k-- > 0;) {
      size_t j = seq_[k];
      if (dep_.Depends(j, i)) break;
      if (j > i) return false;
    }
    return true;
  }

  // Returns false to abort the whole enumeration.
  bool Step() {
    if (seq_.size() == arrivals_.size()) {
      ++counts_.explored;
      if (!visit_(seq_)) {
        counts_.aborted = true;
        return false;
      }
      if (max_schedules_ != 0 && counts_.explored >= max_schedules_) {
        counts_.truncated = true;
        return false;
      }
      return true;
    }
    for (size_t i = 0; i < arrivals_.size(); ++i) {
      if (placed_[i] || !Enabled(i)) continue;
      if (!CanAppend(i)) {
        ++counts_.pruned;
        continue;
      }
      placed_[i] = true;
      seq_.push_back(i);
      bool keep_going = Step();
      seq_.pop_back();
      placed_[i] = false;
      if (!keep_going) return false;
    }
    return true;
  }

  const std::vector<Arrival>& arrivals_;
  const Dependence& dep_;
  const uint64_t max_schedules_;
  const ScheduleVisitor& visit_;

  std::vector<bool> placed_;
  std::vector<size_t> seq_;
  EnumerationCounts counts_;
};

}  // namespace

EnumerationCounts EnumerateSchedules(const std::vector<Arrival>& arrivals,
                                     const Dependence& dep,
                                     uint64_t max_schedules,
                                     const ScheduleVisitor& visit) {
  if (arrivals.empty()) {
    EnumerationCounts c;
    c.explored = 1;
    visit({});
    return c;
  }
  return Dfs(arrivals, dep, max_schedules, visit).Run();
}

}  // namespace chronos::explore
