#include "explore/schedule.h"

#include <algorithm>
#include <sstream>

namespace chronos::explore {

std::vector<Arrival> CanonicalArrivals(const History& h, CheckMode mode) {
  std::vector<Arrival> out;
  out.reserve(h.txns.size());
  for (const Transaction& t : h.txns) {
    Arrival a;
    a.txn = &t;
    for (const Op& op : t.ops) a.keys.push_back(op.key);
    std::sort(a.keys.begin(), a.keys.end());
    a.keys.erase(std::unique(a.keys.begin(), a.keys.end()), a.keys.end());
    // Registration footprint follows the transaction's effective level:
    // SER registers {commit}, Eq.(1)-valid SI registers {start, commit},
    // and RC/RA register nothing at all — which makes mixed-level
    // histories commute more widely under the DPOR dependence relation.
    switch (EffectiveLevel(t, mode)) {
      case IsolationLevel::kSer:
        a.reg_ts = {t.commit_ts};
        break;
      case IsolationLevel::kSi:
        if (t.TimestampsOrdered()) {
          a.reg_ts = {t.start_ts, t.commit_ts};
          if (t.start_ts == t.commit_ts) a.reg_ts.pop_back();
        }
        break;
      default:  // kRc / kRa: membership levels, no timestamp registration
        break;
    }
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(), [](const Arrival& a, const Arrival& b) {
    if (a.txn->commit_ts != b.txn->commit_ts) {
      return a.txn->commit_ts < b.txn->commit_ts;
    }
    return a.txn->tid < b.txn->tid;
  });
  return out;
}

namespace {

template <typename V>
bool SortedIntersect(const std::vector<V>& a, const std::vector<V>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

Dependence::Dependence(const std::vector<Arrival>& arrivals,
                       bool position_sensitive)
    : n_(arrivals.size()), m_(n_ * n_, 0) {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      const Arrival& a = arrivals[i];
      const Arrival& b = arrivals[j];
      bool dep = position_sensitive || a.txn->sid == b.txn->sid ||
                 SortedIntersect(a.keys, b.keys);
      if (!dep) {
        std::vector<Timestamp> ta = a.reg_ts, tb = b.reg_ts;
        std::sort(ta.begin(), ta.end());
        std::sort(tb.begin(), tb.end());
        dep = SortedIntersect(ta, tb);
      }
      m_[i * n_ + j] = m_[j * n_ + i] = dep ? 1 : 0;
    }
  }
}

std::string FormatSchedule(const std::vector<Arrival>& arrivals,
                           const std::vector<size_t>& perm) {
  std::ostringstream os;
  for (size_t k = 0; k < perm.size(); ++k) {
    if (k > 0) os << ",";
    os << arrivals[perm[k]].txn->tid;
  }
  return os.str();
}

std::vector<TxnId> ScheduleTids(const std::vector<Arrival>& arrivals,
                                const std::vector<size_t>& perm) {
  std::vector<TxnId> tids;
  tids.reserve(perm.size());
  for (size_t idx : perm) tids.push_back(arrivals[idx].txn->tid);
  return tids;
}

}  // namespace chronos::explore
