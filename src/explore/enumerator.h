// DPOR-style exhaustive schedule enumeration: visits exactly one
// representative — the lexicographically minimal linear extension — of
// every Mazurkiewicz trace class of session-preserving arrival orders,
// under the dependence relation of explore/schedule.h.
//
// The pruning is a sleep-set discipline folded into a normal-form
// check: a DFS branch appending arrival `e` is cut whenever some
// already-placed arrival `f` with a smaller canonical index could
// commute forward past everything between it and `e` (equivalently, a
// backward walk from the end of the prefix meets an arrival that is
// independent of `e` but canonically larger — the candidate prefix is
// then not the lex-min member of its trace and an equivalent schedule
// was, or will be, visited elsewhere). Soundness: adjacent independent
// swaps preserve verdicts by construction of the dependence relation,
// so one representative per class suffices; completeness: every class
// of linear extensions contains its lex-min member, which passes the
// check at every prefix.
#ifndef CHRONOS_EXPLORE_ENUMERATOR_H_
#define CHRONOS_EXPLORE_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "explore/schedule.h"

namespace chronos::explore {

struct EnumerationCounts {
  uint64_t explored = 0;  ///< schedules visited (one per trace class)
  uint64_t pruned = 0;    ///< DFS branches cut by the sleep-set check
  bool truncated = false; ///< stopped at max_schedules, not exhausted
  bool aborted = false;   ///< the visitor returned false (flip found)
};

/// Called once per explored schedule with the permutation of canonical
/// arrival indices; return false to stop the enumeration.
using ScheduleVisitor = std::function<bool(const std::vector<size_t>&)>;

/// Enumerates every inequivalent session-preserving schedule of
/// `arrivals` under `dep`. `max_schedules` bounds the count (0 =
/// unbounded); hitting the bound sets `truncated`. The first schedule
/// visited is always the canonical (reference) one.
EnumerationCounts EnumerateSchedules(const std::vector<Arrival>& arrivals,
                                     const Dependence& dep,
                                     uint64_t max_schedules,
                                     const ScheduleVisitor& visit);

}  // namespace chronos::explore

#endif  // CHRONOS_EXPLORE_ENUMERATOR_H_
