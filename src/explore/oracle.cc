#include "explore/oracle.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "core/aion.h"
#include "explore/enumerator.h"
#include "fuzz/shrink.h"
#include "online/sharded_aion.h"

namespace chronos::explore {
namespace {

// One checker's observable outcome for a schedule.
struct Run {
  std::vector<Violation> emissions;
  CheckerStats stats;
  Timestamp watermark = kTsMin;
  std::string fail;  ///< ckpt chain only: rejected restore image
};

std::string TidList(const std::vector<TxnId>& tids) {
  std::ostringstream os;
  for (size_t i = 0; i < tids.size(); ++i) {
    if (i > 0) os << ",";
    os << tids[i];
  }
  return os.str();
}

std::string OneLine(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ';');
  return s;
}

std::vector<Violation> ContentSorted(std::vector<Violation> v) {
  std::sort(v.begin(), v.end(), [](const Violation& a, const Violation& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return ViolationLess(a, b);
  });
  return v;
}

// Cross-schedule normal form: SESSION and TS-DUP drop out (compared as
// booleans per D4/D6), NOCONFLICT keeps only its unordered transaction
// pair and key — which of the two overlapping writers gets the report
// attributed to it depends on which arrived second.
std::vector<Violation> NormalizeForSchedule(const std::vector<Violation>& in) {
  std::vector<Violation> out;
  for (Violation v : in) {
    if (v.type == ViolationType::kSession ||
        v.type == ViolationType::kTsDuplicate) {
      continue;
    }
    if (v.type == ViolationType::kNoConflict) {
      if (v.other_tid != kTxnNone && v.other_tid < v.tid) {
        std::swap(v.tid, v.other_tid);
      }
      v.expected = kValueBottom;
      v.got = kValueBottom;
      v.divergence = -1;
    }
    out.push_back(v);
  }
  std::sort(out.begin(), out.end(), ViolationLess);
  return out;
}

// The planted verdict-order bug (OracleConfig::plant_frontier_bug): a
// scratch EXT evaluator that validates each external register read at
// *arrival* time against only the versions already-arrived writers have
// installed, with the frontier bound flipped — it picks the first
// version strictly after the read view (shrink_test's BuggyFrontierExt
// bound) instead of the newest one at or below it. Both halves are
// wrong on purpose: the arrival-time half makes the count depend on the
// schedule, which is exactly the class of bug the enumerator exists to
// catch.
uint64_t PlantedFrontierExtCount(const std::vector<Arrival>& arrivals,
                                 const std::vector<size_t>& perm,
                                 CheckMode mode) {
  std::map<Key, std::vector<std::pair<Timestamp, Value>>> versions;
  uint64_t mismatches = 0;
  for (size_t idx : perm) {
    const Transaction& t = *arrivals[idx].txn;
    const Timestamp view = mode == CheckMode::kSer ? t.commit_ts : t.start_ts;
    std::set<Key> own;
    for (const Op& op : t.ops) {
      if (op.type == OpType::kWrite) {
        own.insert(op.key);
        auto& vv = versions[op.key];
        vv.insert(std::lower_bound(vv.begin(), vv.end(),
                                   std::make_pair(t.commit_ts, op.value)),
                  {t.commit_ts, op.value});
      } else if (op.type == OpType::kRead) {
        if (!own.insert(op.key).second) continue;  // internal, INT's job
        Value expect = kValueInit;
        auto found = versions.find(op.key);
        if (found != versions.end()) {
          const auto& vv = found->second;
          auto it = std::upper_bound(
              vv.begin(), vv.end(), view,
              [](Timestamp v, const std::pair<Timestamp, Value>& p) {
                return v < p.first;
              });
          if (it != vv.end()) expect = it->second;
        }
        if (expect != op.value) ++mismatches;
      }
      // Appends/list reads are out of scope for the scratch oracle.
    }
  }
  return mismatches;
}

}  // namespace

ScheduleVerdict RunSchedule(const std::vector<Arrival>& arrivals,
                            const std::vector<size_t>& perm,
                            const OracleConfig& cfg) {
  ScheduleVerdict out;

  CheckerOptions base;
  base.mode = cfg.mode;
  base.ext_timeout_ms = cfg.ext_timeout_ms;
  std::atomic<uint32_t> pulse{0};
  if (cfg.adversarial_timing) {
    // Forced stalls: every 4th hook call (across all stages of all
    // instances of this run) parks its pipeline thread long enough for
    // the neighbors to hit the tiny rings' full/empty edges.
    base.stall_hook = [&pulse](StallPoint, size_t) {
      if (pulse.fetch_add(1, std::memory_order_relaxed) % 4 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    };
  }
  const size_t cmd_batch = cfg.adversarial_timing ? 1 : 256;
  const size_t queue_capacity = cfg.adversarial_timing ? 2 : 8192;

  auto drive = [&](OnlineChecker* c) {
    uint64_t now = 1;
    size_t since_gc = 0;
    for (size_t idx : perm) {
      c->OnTransaction(*arrivals[idx].txn, now++);
      if (cfg.gc_every > 0 && ++since_gc >= cfg.gc_every) {
        since_gc = 0;
        c->GcToLiveTarget(cfg.gc_target);
      }
    }
    c->Finish();
  };

  Run aion;
  {
    VectorSink sink;
    Aion a(base, &sink);
    drive(&a);
    aion.stats = a.stats();
    aion.watermark = a.watermark();
    aion.emissions = sink.TakeAll();
  }

  auto run_sharded = [&](size_t shards, size_t prestage_workers) {
    Run r;
    VectorSink sink;
    CheckerOptions o = base;
    o.pre_stage_workers = prestage_workers;
    {
      online::ShardedAion sh(o, shards, &sink, cmd_batch, queue_capacity);
      drive(&sh);
      r.stats = sh.stats();
      r.watermark = sh.watermark();
    }  // join workers before reading the sink
    r.emissions = sink.TakeAll();
    return r;
  };
  Run sh1 = run_sharded(1, 1);
  Run sh2 = run_sharded(2, 2);
  Run sh8 = run_sharded(8, 3);

  // Checkpoint/restore at every arrival boundary: a chain of 2-shard
  // instances, each fed exactly one arrival and then exported into a
  // fresh successor (pre-stage pool size varied along the chain — the
  // image must restore across topology changes). Every instance's sink
  // must stay alive until that instance is destroyed; only the final
  // one is read (the image carries the buffered violations forward).
  Run ckpt;
  {
    std::deque<VectorSink> sinks;
    sinks.emplace_back();
    CheckerOptions o = base;
    o.pre_stage_workers = 1;
    auto cur = std::make_unique<online::ShardedAion>(o, 2, &sinks.back(),
                                                     cmd_batch, queue_capacity);
    uint64_t now = 1;
    size_t since_gc = 0;
    size_t step = 0;
    bool ok = true;
    for (size_t idx : perm) {
      cur->OnTransaction(*arrivals[idx].txn, now++);
      if (cfg.gc_every > 0 && ++since_gc >= cfg.gc_every) {
        since_gc = 0;
        cur->GcToLiveTarget(cfg.gc_target);
      }
      online::ShardedAion::StateImage img = cur->ExportState();
      sinks.emplace_back();
      CheckerOptions next_opts = base;
      next_opts.pre_stage_workers = 1 + (++step % 3);
      auto next = std::make_unique<online::ShardedAion>(
          next_opts, 2, &sinks.back(), cmd_batch, queue_capacity);
      if (!next->ImportState(img)) {
        ckpt.fail = "ImportState rejected a freshly exported image at arrival " +
                    std::to_string(step);
        ok = false;
        break;
      }
      cur = std::move(next);
    }
    if (ok) {
      cur->Finish();
      ckpt.stats = cur->stats();
      ckpt.watermark = cur->watermark();
      cur.reset();  // join workers before reading the sink
      ckpt.emissions = sinks.back().TakeAll();
    }
  }

  // ---- within-schedule identity: the implementations must agree
  // byte-for-byte on this one arrival order, whatever the pipeline
  // timing did.
  auto diverge = [&](std::string msg) {
    if (out.impl_divergence.empty()) out.impl_divergence = std::move(msg);
  };
  if (!ckpt.fail.empty()) diverge(ckpt.fail);
  auto check_seq = [&](const Run& a, const Run& b, const char* an,
                       const char* bn) {
    if (a.emissions == b.emissions) return;
    diverge(std::string(an) + " and " + bn +
            " emission sequences differ (sizes " +
            std::to_string(a.emissions.size()) + " vs " +
            std::to_string(b.emissions.size()) + ")");
  };
  check_seq(sh1, sh2, "sharded1", "sharded2");
  check_seq(sh1, sh8, "sharded1", "sharded8");
  if (ckpt.fail.empty()) check_seq(sh2, ckpt, "sharded2", "sharded2ckpt");
  if (ContentSorted(aion.emissions) != ContentSorted(sh1.emissions)) {
    diverge("aion and sharded1 violation multisets differ (sizes " +
            std::to_string(aion.emissions.size()) + " vs " +
            std::to_string(sh1.emissions.size()) + ")");
  }
  if (!(sh1.stats == sh2.stats) || !(sh1.stats == sh8.stats)) {
    diverge("checker stats differ across shard counts");
  }
  if (ckpt.fail.empty() && !(sh2.stats == ckpt.stats)) {
    diverge("checker stats differ across the per-arrival restore chain");
  }
  for (const Run* r : {&aion, &sh2, &sh8, &ckpt}) {
    if (r->fail.empty() && r->watermark != sh1.watermark) {
      diverge("GC watermarks differ across implementations");
    }
  }

  // ---- the verdict itself (from the sharded reference stream).
  for (const Violation& v : sh1.emissions) {
    ++out.counts[static_cast<size_t>(v.type)];
  }
  out.normalized = NormalizeForSchedule(sh1.emissions);
  out.stats = sh1.stats;
  out.watermark = sh1.watermark;
  if (cfg.plant_frontier_bug) {
    out.planted_ext = PlantedFrontierExtCount(arrivals, perm, cfg.mode);
  }
  return out;
}

std::string CompareVerdicts(const ScheduleVerdict& ref,
                            const ScheduleVerdict& got,
                            const fuzz::ScheduleInvariance& inv) {
  auto count = [](const ScheduleVerdict& v, ViolationType t) {
    return v.counts[static_cast<size_t>(t)];
  };
  if (inv.dup_replay) {
    // D6: only TS-DUP detection is schedule-comparable.
    if ((count(ref, ViolationType::kTsDuplicate) > 0) !=
        (count(got, ViolationType::kTsDuplicate) > 0)) {
      return "TS-DUP detection flipped: reference=" +
             std::to_string(count(ref, ViolationType::kTsDuplicate)) +
             " got=" +
             std::to_string(count(got, ViolationType::kTsDuplicate));
    }
    return "";
  }

  std::vector<ViolationType> exact = {ViolationType::kInt,
                                      ViolationType::kTsOrder};
  if (inv.ext_exact) exact.push_back(ViolationType::kExt);
  if (inv.noconflict_exact) exact.push_back(ViolationType::kNoConflict);
  for (ViolationType t : exact) {
    if (count(ref, t) != count(got, t)) {
      return std::string(ViolationTypeName(t)) +
             " count flipped: reference=" + std::to_string(count(ref, t)) +
             " got=" + std::to_string(count(got, t));
    }
  }
  if ((count(ref, ViolationType::kSession) > 0) !=
      (count(got, ViolationType::kSession) > 0)) {
    return "SESSION detection flipped: reference=" +
           std::to_string(count(ref, ViolationType::kSession)) + " got=" +
           std::to_string(count(got, ViolationType::kSession));
  }

  // Content multiset, restricted to the classes that are exact.
  auto comparable = [&](const std::vector<Violation>& in) {
    std::vector<Violation> out;
    for (const Violation& v : in) {
      if (v.type == ViolationType::kExt && !inv.ext_exact) continue;
      if (v.type == ViolationType::kNoConflict && !inv.noconflict_exact) {
        continue;
      }
      out.push_back(v);
    }
    return out;
  };
  std::vector<Violation> a = comparable(ref.normalized);
  std::vector<Violation> b = comparable(got.normalized);
  if (a != b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      if (!(a[i] == b[i])) {
        return "violation content flipped at multiset index " +
               std::to_string(i) + ": reference={" + a[i].ToString() +
               "} got={" + b[i].ToString() + "}";
      }
    }
    return "violation multiset sizes flipped: reference=" +
           std::to_string(a.size()) + " got=" + std::to_string(b.size());
  }

  // The watermark is schedule-invariant only while GC is off (it then
  // never moves); an active GC cadence makes the cut depend on arrival
  // positions, which is the same axis the D7 waiver covers.
  if (inv.noconflict_exact && ref.watermark != got.watermark) {
    return "GC watermark flipped: reference=" +
           std::to_string(ref.watermark) + " got=" +
           std::to_string(got.watermark);
  }
  return "";
}

ExploreResult ExploreHistory(const History& h, const ExploreOptions& opts) {
  ExploreResult res;
  if (h.txns.size() > kMaxExploreTxns) {
    res.error = "history has " + std::to_string(h.txns.size()) +
                " transactions; the exhaustive enumerator accepts at most " +
                std::to_string(kMaxExploreTxns);
    return res;
  }
  const OracleConfig& cfg = opts.oracle;
  std::vector<Arrival> arrivals = CanonicalArrivals(h, cfg.mode);
  const bool position_sensitive = cfg.finite_timeout() || cfg.gc_active();
  Dependence dep(arrivals, position_sensitive);
  const fuzz::ScheduleInvariance inv = fuzz::ScheduleInvarianceFor(
      cfg.finite_timeout(), cfg.gc_active(),
      fuzz::HistoryHasDuplicateTs(h, cfg.mode));

  std::optional<ScheduleVerdict> ref;
  EnumerationCounts counts = EnumerateSchedules(
      arrivals, dep, opts.max_schedules,
      [&](const std::vector<size_t>& perm) {
        ScheduleVerdict v = RunSchedule(arrivals, perm, cfg);
        if (!v.impl_divergence.empty()) {
          res.flip_found = true;
          res.rule = "impl-divergence";
          res.detail = v.impl_divergence;
          res.flip_schedule = ScheduleTids(arrivals, perm);
          return false;
        }
        if (!ref) {
          ref = std::move(v);
          res.reference_schedule = ScheduleTids(arrivals, perm);
          res.reference_counts = ref->counts;
          return true;
        }
        if (cfg.plant_frontier_bug && v.planted_ext != ref->planted_ext) {
          res.flip_found = true;
          res.rule = "planted-frontier";
          res.detail = "planted EXT oracle flipped: reference=" +
                       std::to_string(ref->planted_ext) + " got=" +
                       std::to_string(v.planted_ext);
          res.flip_schedule = ScheduleTids(arrivals, perm);
          return false;
        }
        std::string diff = CompareVerdicts(*ref, v, inv);
        if (!diff.empty()) {
          res.flip_found = true;
          res.rule = "schedule-invariance";
          res.detail = std::move(diff);
          res.flip_schedule = ScheduleTids(arrivals, perm);
          return false;
        }
        return true;
      });
  res.explored = counts.explored;
  res.pruned = counts.pruned;
  res.truncated = counts.truncated;
  return res;
}

ShrunkFlip ShrinkFlip(const History& h, const ExploreOptions& opts) {
  ShrunkFlip out;
  ExploreResult orig = ExploreHistory(h, opts);
  if (!orig.flip_found) {
    out.history = h;
    out.result = std::move(orig);
    return out;
  }
  const std::string rule = orig.rule;
  fuzz::ShrinkOptions shrink_opts;
  shrink_opts.max_predicate_calls = opts.shrink_predicate_calls;
  fuzz::ShrinkResult sr = fuzz::ShrinkHistory(
      h,
      [&](const History& cand) {
        if (cand.txns.size() > kMaxExploreTxns) return false;
        ExploreResult r = ExploreHistory(cand, opts);
        return r.flip_found && r.rule == rule;
      },
      shrink_opts);
  out.history = std::move(sr.minimized);
  out.predicate_calls = sr.predicate_calls;
  out.result = ExploreHistory(out.history, opts);
  return out;
}

std::string FormatScheduleSidecar(const ExploreResult& r) {
  std::ostringstream os;
  os << "chronos-explore-schedule v1\n";
  os << "rule=" << r.rule << "\n";
  os << "detail=" << OneLine(r.detail) << "\n";
  os << "reference=" << TidList(r.reference_schedule) << "\n";
  os << "flip=" << TidList(r.flip_schedule) << "\n";
  os << "explored=" << r.explored << "\n";
  os << "pruned=" << r.pruned << "\n";
  os << "truncated=" << (r.truncated ? 1 : 0) << "\n";
  return os.str();
}

}  // namespace chronos::explore
