// Verdict-invariance oracles for the schedule enumerator. Per explored
// schedule, the same arrival order is driven through the full online
// implementation matrix under adversarial pipeline timing — Aion,
// ShardedAion{1,2,8} with cmd_batch=1, minimum ring capacity and forced
// stall injection (CheckerOptions::stall_hook), and a 2-shard variant
// that checkpoint-restores at every arrival boundary — and everything
// must agree byte-for-byte within the schedule (emission sequences,
// stats, watermark). Across schedules, the per-class verdict must be
// invariant modulo the expected-divergence waivers shared with the
// differ (fuzz::ScheduleInvariance: SESSION boolean per D4, EXT waived
// under a finite timeout per D5, EXT/NOCONFLICT under GC per D7, all
// classes but TS-DUP under duplicate timestamps per D6).
//
// A flip — either kind of disagreement — is shrunk with the fuzz
// ddmin shrinker to a minimal .repro whose flipping schedule is pinned
// in a sidecar (FormatScheduleSidecar).
#ifndef CHRONOS_EXPLORE_ORACLE_H_
#define CHRONOS_EXPLORE_ORACLE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/online_checker.h"
#include "core/types.h"
#include "core/violation.h"
#include "explore/schedule.h"
#include "fuzz/differ.h"

namespace chronos::explore {

/// Timeout value meaning "EXT verdicts finalize only at Finish()" (same
/// convention as fuzz/scenario.h). The default exploration config: with
/// it, verdicts are provably schedule-invariant and the dependence
/// relation prunes hardest.
inline constexpr uint64_t kInfiniteTimeoutMs = 1ull << 30;

struct OracleConfig {
  CheckMode mode = CheckMode::kSi;
  uint64_t ext_timeout_ms = kInfiniteTimeoutMs;
  /// GcToLiveTarget(gc_target) every `gc_every` arrivals (0: never).
  /// Non-zero makes every arrival pair position-dependent (watermark
  /// decisions) and waives EXT/NOCONFLICT cross-schedule equality (D7).
  size_t gc_every = 0;
  size_t gc_target = 0;
  /// Adversarial pipeline timing: cmd_batch=1, ring capacity 2, and a
  /// forced-stall hook pulsing every pipeline stage. Verdicts must not
  /// move — that is the point.
  bool adversarial_timing = true;
  /// Test-only planted verdict-order bug: adds a scratch EXT oracle
  /// with a flipped frontier bound evaluated at *arrival* time (the
  /// schedule-sensitive analogue of shrink_test's BuggyFrontierExt).
  /// The enumerator must catch it as a "planted-frontier" flip; the
  /// self-test and `chronos_explore --plant-bug` set it, nothing else.
  bool plant_frontier_bug = false;

  bool finite_timeout() const { return ext_timeout_ms < kInfiniteTimeoutMs; }
  bool gc_active() const { return gc_every > 0; }
};

/// The outcome of one schedule, reduced to what the oracles compare.
struct ScheduleVerdict {
  /// Per-class counts of the sharded emission stream (== Aion's, or the
  /// run would have been an impl-divergence flip).
  std::array<size_t, 6> counts{};
  /// Normalized violation multiset for cross-schedule comparison:
  /// sorted by content, NOCONFLICT reduced to its unordered (tid,
  /// other_tid) pair + key (attribution order is schedule-dependent),
  /// SESSION and TS-DUP excluded (compared as booleans/waived).
  std::vector<Violation> normalized;
  CheckerStats stats;
  Timestamp watermark = kTsMin;
  uint64_t planted_ext = 0;  ///< plant_frontier_bug only
  /// Non-empty: the implementations disagreed *within* this schedule
  /// (emission bytes, stats, watermark, or a rejected restore image).
  std::string impl_divergence;
};

/// Drives one schedule through the full matrix. `arrivals` must come
/// from CanonicalArrivals(h, cfg.mode); `perm` is a permutation of its
/// indices (from the enumerator).
ScheduleVerdict RunSchedule(const std::vector<Arrival>& arrivals,
                            const std::vector<size_t>& perm,
                            const OracleConfig& cfg);

/// Cross-schedule comparison modulo the shared divergence waivers.
/// Returns "" on agreement, else a human-readable mismatch.
std::string CompareVerdicts(const ScheduleVerdict& ref,
                            const ScheduleVerdict& got,
                            const fuzz::ScheduleInvariance& inv);

struct ExploreOptions {
  OracleConfig oracle;
  /// Bound on explored schedules (0 = exhaust). Hitting it sets
  /// ExploreResult::truncated — never silently.
  uint64_t max_schedules = 0;
  /// Predicate-call budget for ShrinkFlip (each call re-explores the
  /// candidate).
  size_t shrink_predicate_calls = 300;
};

struct ExploreResult {
  std::string error;  ///< non-empty: input rejected (>8 txns), nothing ran
  uint64_t explored = 0;
  uint64_t pruned = 0;
  bool truncated = false;
  bool flip_found = false;
  /// "impl-divergence", "schedule-invariance", or "planted-frontier".
  std::string rule;
  std::string detail;
  std::vector<TxnId> reference_schedule;  ///< tids in arrival order
  std::vector<TxnId> flip_schedule;       ///< the schedule that flipped
  std::array<size_t, 6> reference_counts{};
};

/// Enumerates every inequivalent schedule of `h` and stops at the first
/// flip. The first schedule visited is the reference.
ExploreResult ExploreHistory(const History& h, const ExploreOptions& opts);

/// ddmin-shrinks a flipping history (precondition: ExploreHistory(h)
/// found a flip) while preserving the flip *rule*, then re-explores the
/// minimum to pin its flipping schedule.
struct ShrunkFlip {
  History history;
  ExploreResult result;  ///< exploration of the shrunk history
  size_t predicate_calls = 0;
};
ShrunkFlip ShrinkFlip(const History& h, const ExploreOptions& opts);

/// The `.repro.schedule` sidecar body: rule, detail, reference and
/// flipping schedules (as tid lists), and the enumeration counts.
std::string FormatScheduleSidecar(const ExploreResult& r);

}  // namespace chronos::explore

#endif  // CHRONOS_EXPLORE_ORACLE_H_
