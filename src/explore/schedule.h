// Schedule-space model for the exhaustive interleaving enumerator
// (explore/enumerator.h): the canonical arrival list of a small history,
// per-arrival key footprints, and the dependence relation that defines
// which arrival orders are observationally equivalent.
//
// AION's delivery contract is session-preserving (the collector clamps
// to session order, hist/collector.h), so a "schedule" is a linear
// extension of the session partial order — a permutation of the
// canonical arrival list in which each session's transactions keep
// their sno order. Two adjacent arrivals commute (are independent) when
// swapping them cannot change any verdict-affecting decision:
//
//   - different sessions (same-session pairs are ordered by contract,
//     and SESSION bookkeeping is order-sensitive — D4),
//   - disjoint key footprints (registers and lists share the key
//     namespace here; every Step 2/3 decision is key-scoped),
//   - disjoint registered timestamps (a shared timestamp makes the
//     uniqueness check drop whichever twin arrives second — D6; the
//     footprint follows each transaction's effective isolation level,
//     so RC/RA arrivals — which register nothing — commute more widely
//     than their SI/SER peers), and
//   - neither crosses a watermark or finalize decision of the other:
//     with a finite EXT timeout or an active GC cadence, an arrival's
//     position on the virtual clock decides which deadlines fire and
//     where the watermark lands, so *every* pair is conservatively
//     dependent (position_sensitive) and the enumerator degenerates to
//     all linear extensions. The default exploration config (infinite
//     timeout, no GC) makes the condition vacuous: no finalize happens
//     before Finish() and the watermark never moves.
//
// Equivalence is the Mazurkiewicz-trace closure of adjacent independent
// swaps; the enumerator visits exactly one (lexicographically minimal)
// representative per class.
#ifndef CHRONOS_EXPLORE_SCHEDULE_H_
#define CHRONOS_EXPLORE_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/online_checker.h"
#include "core/types.h"

namespace chronos::explore {

/// Hard cap on the history size the exhaustive enumerator accepts
/// (8 fully dependent arrivals already mean 8! = 40320 schedules).
inline constexpr size_t kMaxExploreTxns = 8;

/// One arrival event of the canonical schedule.
struct Arrival {
  const Transaction* txn = nullptr;
  /// Keys the transaction touches in any way (reads, writes, appends,
  /// list reads) — sorted, deduplicated.
  std::vector<Key> keys;
  /// Timestamps the ingress registers for uniqueness: commit under SER,
  /// start and commit under SI (none for an Eq.(1)-invalid SI txn).
  std::vector<Timestamp> reg_ts;
};

/// The canonical arrival list: transactions ordered by
/// (commit_ts, tid) — the collector's commit-order schedule. Every
/// explored schedule is a session-preserving permutation of this list,
/// and the enumerator's reference schedule is its lex-min extension.
std::vector<Arrival> CanonicalArrivals(const History& h, CheckMode mode);

/// Symmetric dependence matrix over the canonical arrivals.
/// `position_sensitive` marks every pair dependent (finite timeout or
/// active GC; see the header comment).
class Dependence {
 public:
  Dependence(const std::vector<Arrival>& arrivals, bool position_sensitive);

  bool Depends(size_t i, size_t j) const { return m_[i * n_ + j] != 0; }
  size_t size() const { return n_; }

 private:
  size_t n_;
  std::vector<uint8_t> m_;
};

/// Renders a schedule as the arrival order of transaction ids
/// ("3,1,2") for logs and the .repro schedule sidecar.
std::string FormatSchedule(const std::vector<Arrival>& arrivals,
                           const std::vector<size_t>& perm);

/// The schedule as transaction ids in arrival order (sidecar payload).
std::vector<TxnId> ScheduleTids(const std::vector<Arrival>& arrivals,
                                const std::vector<size_t>& perm);

}  // namespace chronos::explore

#endif  // CHRONOS_EXPLORE_SCHEDULE_H_
