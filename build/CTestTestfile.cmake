# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/baselines_test[1]_include.cmake")
include("/root/repo/build/accounting_test[1]_include.cmake")
include("/root/repo/build/aion_gc_test[1]_include.cmake")
include("/root/repo/build/aion_test[1]_include.cmake")
include("/root/repo/build/chronos_list_test[1]_include.cmake")
include("/root/repo/build/chronos_test[1]_include.cmake")
include("/root/repo/build/edge_cases_test[1]_include.cmake")
include("/root/repo/build/structures_test[1]_include.cmake")
include("/root/repo/build/database_test[1]_include.cmake")
include("/root/repo/build/hist_test[1]_include.cmake")
include("/root/repo/build/property_test[1]_include.cmake")
include("/root/repo/build/batch_pipeline_test[1]_include.cmake")
include("/root/repo/build/online_test[1]_include.cmake")
include("/root/repo/build/workload_test[1]_include.cmake")
