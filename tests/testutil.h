// Shared helpers for the test suite: fluent history construction, Aion
// offline replay, and session-order-preserving arrival permutations.
#ifndef CHRONOS_TESTS_TESTUTIL_H_
#define CHRONOS_TESTS_TESTUTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/aion.h"
#include "core/types.h"
#include "core/violation.h"

namespace chronos::testing {

/// Fresh scratch directory for spill/checkpoint tests, unique per test
/// AND per process: <gtest TempDir>/chronos_<suite>_<test>_<tag>_<pid>.
/// Parallel `ctest -j` runs the suite as many processes, so a fixed
/// path (the old pattern) lets two tests stomp each other's spill
/// files; the pid suffix removes that race and the test-name prefix
/// keeps two tests in one binary apart. Creation is checked — an
/// unwritable TMPDIR surfaces as a test failure instead of downstream
/// spill errors.
inline std::string UniqueTempDir(const std::string& tag) {
  std::string name = tag;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    name = std::string(info->test_suite_name()) + "_" + info->name() + "_" +
           tag;
  }
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  std::string dir = ::testing::TempDir() + "chronos_" + name + "_" +
                    std::to_string(::getpid());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // stale run with the same pid
  std::filesystem::create_directories(dir, ec);
  EXPECT_FALSE(ec) << "cannot create temp dir " << dir << ": "
                   << ec.message();
  return dir;
}

/// Fluent builder for hand-written histories.
class HistoryBuilder {
 public:
  HistoryBuilder& Txn(TxnId tid, SessionId sid, uint64_t sno, Timestamp sts,
                      Timestamp cts) {
    Transaction t;
    t.tid = tid;
    t.sid = sid;
    t.sno = sno;
    t.start_ts = sts;
    t.commit_ts = cts;
    h_.txns.push_back(std::move(t));
    if (sid + 1 > h_.num_sessions) h_.num_sessions = sid + 1;
    return *this;
  }
  /// Tags the current transaction with a per-transaction isolation level.
  HistoryBuilder& Iso(IsolationLevel level) {
    h_.txns.back().iso = level;
    return *this;
  }
  HistoryBuilder& R(Key k, Value v) {
    h_.txns.back().ops.push_back({OpType::kRead, k, v, 0});
    return *this;
  }
  HistoryBuilder& W(Key k, Value v) {
    h_.txns.back().ops.push_back({OpType::kWrite, k, v, 0});
    return *this;
  }
  HistoryBuilder& A(Key k, Value e) {
    h_.txns.back().ops.push_back({OpType::kAppend, k, e, 0});
    return *this;
  }
  HistoryBuilder& L(Key k, std::vector<Value> observed) {
    Op op;
    op.type = OpType::kReadList;
    op.key = k;
    op.list_index = static_cast<uint32_t>(h_.txns.back().list_args.size());
    h_.txns.back().ops.push_back(op);
    h_.txns.back().list_args.push_back(std::move(observed));
    return *this;
  }
  History Build() { return h_; }

 private:
  History h_;
};

/// A random arrival order that preserves each session's internal order
/// (AION's delivery assumption).
inline std::vector<Transaction> SessionPreservingShuffle(const History& h,
                                                         uint64_t seed) {
  std::vector<std::vector<const Transaction*>> sessions;
  for (const Transaction& t : h.txns) {
    if (t.sid >= sessions.size()) sessions.resize(t.sid + 1);
    sessions[t.sid].push_back(&t);
  }
  for (auto& s : sessions) {
    std::sort(s.begin(), s.end(), [](const Transaction* a,
                                     const Transaction* b) {
      return a->sno < b->sno;
    });
  }
  std::mt19937_64 rng(seed);
  std::vector<Transaction> out;
  out.reserve(h.txns.size());
  std::vector<size_t> cursor(sessions.size(), 0);
  size_t remaining = h.txns.size();
  while (remaining > 0) {
    size_t s = rng() % sessions.size();
    if (cursor[s] >= sessions[s].size()) continue;
    out.push_back(*sessions[s][cursor[s]++]);
    --remaining;
  }
  return out;
}

/// Drives any OnlineChecker (monolithic or sharded) over `arrivals`:
/// virtual time advances 1 ms per transaction and, when `gc_every` is
/// set, GcToLiveTarget(gc_target) runs on that cadence. Finalizes the
/// checker at the end. Identical schedules here are what make
/// Aion-vs-ShardedAion comparisons exact.
inline void DriveToEnd(OnlineChecker* checker,
                       const std::vector<Transaction>& arrivals,
                       size_t gc_every = 0, size_t gc_target = 0) {
  uint64_t now = 0;
  size_t since_gc = 0;
  for (const Transaction& t : arrivals) {
    checker->OnTransaction(t, now++);
    if (gc_every > 0 && ++since_gc >= gc_every) {
      since_gc = 0;
      checker->GcToLiveTarget(gc_target);
    }
  }
  checker->Finish();
}

/// Feeds a whole history to a fresh Aion instance (arrival order given,
/// virtual time advancing 1 ms per transaction), finalizes it, and
/// returns the violation counts.
inline void RunAionToEnd(const std::vector<Transaction>& arrivals,
                         Aion::Mode mode, CountingSink* sink,
                         const std::string& spill_dir = "",
                         size_t gc_every = 0, size_t gc_target = 0,
                         uint64_t ext_timeout = 1u << 30) {
  Aion::Options opt;
  opt.mode = mode;
  opt.ext_timeout_ms = ext_timeout;  // default: finalize only at Finish()
  opt.spill_dir = spill_dir;
  Aion aion(opt, sink);
  DriveToEnd(&aion, arrivals, gc_every, gc_target);
}

/// Sorts a violation list into the deterministic content order (for
/// multiset comparisons between checkers that emit in different orders).
inline std::vector<Violation> SortedViolations(std::vector<Violation> v) {
  std::sort(v.begin(), v.end(), [](const Violation& a, const Violation& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return ViolationLess(a, b);
  });
  return v;
}

}  // namespace chronos::testing

#endif  // CHRONOS_TESTS_TESTUTIL_H_
