// Property sweep for the sharded checker (TEST_P): the same randomized
// histories — clean and with injected faults — are driven through the
// monolithic Aion and through ShardedAion with 1, 2 and 8 shards, under
// the same arrival order and GC cadence. The partitioned checker must be
// indistinguishable: identical verdict counts per violation type,
// identical violation multisets, and identical GC-survivor counts
// (live transactions, resident versions, resident intervals) and
// watermark at the end of the stream.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "core/aion.h"
#include "hist/collector.h"
#include "online/sharded_aion.h"
#include "workload/generator.h"

namespace chronos {
namespace {

using testing::DriveToEnd;
using testing::SessionPreservingShuffle;
using testing::SortedViolations;

struct ShardSweepCase {
  uint64_t seed;
  bool faulty;
  bool gc;  // run with a GC cadence and a spill dir
};

std::string CaseName(const ::testing::TestParamInfo<ShardSweepCase>& info) {
  return "seed" + std::to_string(info.param.seed) +
         (info.param.faulty ? "_faulty" : "_clean") +
         (info.param.gc ? "_gc" : "_nogc");
}

class ShardedEquivalenceSweep
    : public ::testing::TestWithParam<ShardSweepCase> {
 protected:
  History Generate() {
    const ShardSweepCase& c = GetParam();
    workload::WorkloadParams p;
    p.sessions = 12;
    p.txns = 700;
    p.ops_per_txn = 7;
    p.keys = 50;
    p.seed = c.seed;
    db::DbConfig cfg;
    if (c.faulty) {
      cfg.faults.value_corruption_prob = 0.03;
      cfg.faults.lost_update_prob = 0.04;
      cfg.faults.stale_read_prob = 0.02;
      cfg.fault_seed = c.seed * 13 + 1;
    }
    return workload::GenerateDefaultHistory(p, cfg);
  }
};

TEST_P(ShardedEquivalenceSweep, MatchesMonolithAtEveryShardCount) {
  const ShardSweepCase& c = GetParam();
  History h = Generate();
  // GC cases deliver in commit order with a short timeout so collection
  // has finalized prefixes to evict (like property_test's P3 GC sweep);
  // no-GC cases shuffle arrivals and finalize only at Finish so the
  // out-of-order paths (Step-3 re-checks, flips) are exercised without
  // premature EXT verdicts.
  std::vector<Transaction> arrivals;
  if (c.gc) {
    hist::CollectorParams cp;
    for (auto& ct : hist::ScheduleDelivery(h, cp)) {
      arrivals.push_back(std::move(ct.txn));
    }
  } else {
    arrivals = SessionPreservingShuffle(h, c.seed * 31 + 5);
  }
  const size_t gc_every = c.gc ? 64 : 0;
  const size_t gc_target = c.gc ? 30 : 0;

  CheckerOptions opt;
  opt.ext_timeout_ms = c.gc ? 2 : (1u << 30);
  std::string spill_base;
  if (c.gc) {
    spill_base = chronos::testing::UniqueTempDir(
        "sharded_prop_" + std::to_string(c.seed) + (c.faulty ? "_f" : "_c"));
  }

  // Reference: the monolith.
  VectorSink mono_sink;
  CheckerOptions mono_opt = opt;
  if (c.gc) mono_opt.spill_dir = spill_base + "/mono";
  Aion mono(mono_opt, &mono_sink);
  DriveToEnd(&mono, arrivals, gc_every, gc_target);
  auto mono_violations = SortedViolations(mono_sink.TakeAll());
  CheckerFootprint mono_fp = mono.GetFootprint();

  if (c.faulty) {
    ASSERT_GT(mono_violations.size(), 0u)
        << "fault injection must surface violations";
  } else {
    EXPECT_EQ(mono_violations.size(), 0u)
        << (mono_violations.empty() ? "" : mono_violations[0].ToString());
  }

  for (size_t shards : {1u, 2u, 8u}) {
    VectorSink sink;
    CheckerOptions sopt = opt;
    if (c.gc) {
      sopt.spill_dir = spill_base + "/s" + std::to_string(shards);
    }
    online::ShardedAion sharded(sopt, shards, &sink);
    DriveToEnd(&sharded, arrivals, gc_every, gc_target);

    // Identical verdict: same violation multiset.
    auto got = SortedViolations(sink.TakeAll());
    ASSERT_EQ(got.size(), mono_violations.size()) << "shards=" << shards;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], mono_violations[i])
          << "shards=" << shards << " index " << i << ": "
          << got[i].ToString() << " vs " << mono_violations[i].ToString();
    }

    // Identical GC survivors and watermark.
    CheckerFootprint fp = sharded.GetFootprint();
    EXPECT_EQ(fp.live_txns, mono_fp.live_txns) << "shards=" << shards;
    EXPECT_EQ(fp.versions, mono_fp.versions) << "shards=" << shards;
    EXPECT_EQ(fp.intervals, mono_fp.intervals) << "shards=" << shards;
    EXPECT_EQ(sharded.watermark(), mono.watermark()) << "shards=" << shards;

    // Identical processing counters (the per-key work is the same work,
    // just partitioned).
    CheckerStats s = sharded.stats();
    EXPECT_EQ(s.txns_processed, mono.stats().txns_processed);
    EXPECT_EQ(s.ext_rechecks, mono.stats().ext_rechecks);
    EXPECT_EQ(s.noconflict_checks, mono.stats().noconflict_checks);
    EXPECT_EQ(s.gc_passes, mono.stats().gc_passes);
    EXPECT_EQ(sharded.flip_stats().total_flips(),
              mono.flip_stats().total_flips());
  }

  if (c.gc) std::filesystem::remove_all(spill_base);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardedEquivalenceSweep,
    ::testing::Values(ShardSweepCase{1, false, false},
                      ShardSweepCase{2, false, true},
                      ShardSweepCase{3, true, false},
                      ShardSweepCase{4, true, true},
                      ShardSweepCase{5, true, true},
                      ShardSweepCase{6, false, true},
                      ShardSweepCase{7, true, false},
                      ShardSweepCase{8, true, true}),
    CaseName);

}  // namespace
}  // namespace chronos
