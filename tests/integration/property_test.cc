// Property-based sweeps (TEST_P): the end-to-end invariants that tie the
// whole system together.
//
//  P1  Histories produced by the Algorithm-1 database are accepted by
//      every SI checker (Chronos, Aion under any session-preserving
//      arrival order, Emme-SI, ElleKV).
//  P2  Single-fault corruptions are detected with the right class.
//  P3  Aion's final verdict counts equal Chronos's for every arrival
//      permutation, with and without GC/spill.
//  P4  SER-mode histories pass the SER checkers; SI write-skew histories
//      fail them.
#include <filesystem>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "baselines/elle.h"
#include "baselines/emme.h"
#include "core/aion.h"
#include "core/chronos.h"
#include "hist/collector.h"
#include "workload/generator.h"

namespace chronos {
namespace {

using testing::RunAionToEnd;
using testing::SessionPreservingShuffle;

struct SweepCase {
  uint64_t seed;
  uint32_t sessions;
  uint32_t ops_per_txn;
  workload::WorkloadParams::KeyDist dist;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* dist_names[] = {"uniform", "zipf", "hotspot"};
  return "seed" + std::to_string(info.param.seed) + "_s" +
         std::to_string(info.param.sessions) + "_o" +
         std::to_string(info.param.ops_per_txn) + "_" +
         dist_names[static_cast<int>(info.param.dist)];
}

class ValidHistorySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  History Generate() {
    workload::WorkloadParams p;
    p.sessions = GetParam().sessions;
    p.txns = 600;
    p.ops_per_txn = GetParam().ops_per_txn;
    p.keys = 80;
    p.dist = GetParam().dist;
    p.seed = GetParam().seed;
    return workload::GenerateDefaultHistory(p);
  }
};

TEST_P(ValidHistorySweep, AllSiCheckersAccept) {
  History h = Generate();
  CountingSink chronos_sink;
  Chronos::CheckHistory(h, &chronos_sink);
  EXPECT_EQ(chronos_sink.total(), 0u)
      << (chronos_sink.first().empty() ? ""
                                       : chronos_sink.first()[0].ToString());

  CountingSink aion_sink;
  RunAionToEnd(SessionPreservingShuffle(h, GetParam().seed * 31 + 7),
               Aion::Mode::kSi, &aion_sink);
  EXPECT_EQ(aion_sink.total(), 0u);

  CountingSink emme_sink;
  baselines::BaselineResult emme = baselines::CheckEmmeSi(h, &emme_sink);
  EXPECT_EQ(emme.anomalies, 0u);
  EXPECT_FALSE(emme.cycle_found);

  CountingSink elle_sink;
  EXPECT_TRUE(
      baselines::CheckElleKv(h, baselines::CheckLevel::kSi, &elle_sink)
          .Accepted());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ValidHistorySweep,
    ::testing::Values(
        SweepCase{1, 10, 8, workload::WorkloadParams::KeyDist::kZipf},
        SweepCase{2, 10, 8, workload::WorkloadParams::KeyDist::kUniform},
        SweepCase{3, 10, 8, workload::WorkloadParams::KeyDist::kHotspot},
        SweepCase{4, 2, 15, workload::WorkloadParams::KeyDist::kZipf},
        SweepCase{5, 30, 4, workload::WorkloadParams::KeyDist::kZipf},
        SweepCase{6, 50, 15, workload::WorkloadParams::KeyDist::kUniform},
        SweepCase{7, 20, 30, workload::WorkloadParams::KeyDist::kZipf},
        SweepCase{8, 5, 50, workload::WorkloadParams::KeyDist::kHotspot}),
    CaseName);

// P2: each fault class is detected with the expected violation type.
struct FaultCase {
  const char* name;
  db::FaultConfig faults;
  ViolationType expected;
};

class FaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultSweep, ChronosAndAionDetect) {
  workload::WorkloadParams p;
  p.sessions = 12;
  p.txns = 800;
  p.ops_per_txn = 8;
  p.keys = 40;
  p.seed = 23;
  db::DbConfig cfg;
  cfg.faults = GetParam().faults;
  History h = workload::GenerateDefaultHistory(p, cfg);

  CountingSink chronos_sink;
  Chronos::CheckHistory(h, &chronos_sink);
  EXPECT_GT(chronos_sink.count(GetParam().expected), 0u) << GetParam().name;

  CountingSink aion_sink;
  RunAionToEnd(SessionPreservingShuffle(h, 99), Aion::Mode::kSi, &aion_sink);
  EXPECT_GT(aion_sink.count(GetParam().expected), 0u) << GetParam().name;
}

db::FaultConfig MakeFaults(double db::FaultConfig::* field, double p) {
  db::FaultConfig f;
  f.*field = p;
  return f;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSweep,
    ::testing::Values(
        FaultCase{"lost_update",
                  MakeFaults(&db::FaultConfig::lost_update_prob, 0.2),
                  ViolationType::kNoConflict},
        FaultCase{"stale_read",
                  MakeFaults(&db::FaultConfig::stale_read_prob, 0.1),
                  ViolationType::kExt},
        FaultCase{"value_corruption",
                  MakeFaults(&db::FaultConfig::value_corruption_prob, 0.05),
                  ViolationType::kExt},
        FaultCase{"ts_swap", MakeFaults(&db::FaultConfig::ts_swap_prob, 0.05),
                  ViolationType::kTsOrder},
        FaultCase{"session_reorder",
                  MakeFaults(&db::FaultConfig::session_reorder_prob, 0.05),
                  ViolationType::kSession}),
    [](const ::testing::TestParamInfo<FaultCase>& param_info) {
      return std::string(param_info.param.name);
    });

// P3: Aion == Chronos on corrupted histories for every arrival order.
class PermutationEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PermutationEquivalence, AionMatchesChronosCounts) {
  workload::WorkloadParams p;
  p.sessions = 10;
  p.txns = 500;
  p.ops_per_txn = 6;
  p.keys = 30;
  p.seed = GetParam();
  db::DbConfig cfg;
  cfg.faults.value_corruption_prob = 0.03;
  cfg.faults.lost_update_prob = 0.05;
  cfg.fault_seed = GetParam() * 13 + 1;
  History h = workload::GenerateDefaultHistory(p, cfg);

  CountingSink ref;
  Chronos::CheckHistory(h, &ref);

  for (uint64_t shuffle_seed : {1ull, 2ull, 3ull}) {
    CountingSink sink;
    RunAionToEnd(SessionPreservingShuffle(h, GetParam() * 100 + shuffle_seed),
                 Aion::Mode::kSi, &sink);
    EXPECT_EQ(sink.count(ViolationType::kExt), ref.count(ViolationType::kExt))
        << "shuffle " << shuffle_seed;
    EXPECT_EQ(sink.count(ViolationType::kInt), ref.count(ViolationType::kInt));
    EXPECT_EQ(sink.count(ViolationType::kNoConflict),
              ref.count(ViolationType::kNoConflict));
    EXPECT_EQ(sink.count(ViolationType::kSession),
              ref.count(ViolationType::kSession));
  }

  // And with aggressive GC + spill, delivered in commit order.
  std::string dir = chronos::testing::UniqueTempDir(
      "prop_gc_" + std::to_string(GetParam()));
  hist::CollectorParams cp;
  auto stream = hist::ScheduleDelivery(h, cp);
  std::vector<Transaction> ordered;
  ordered.reserve(stream.size());
  for (auto& ct : stream) ordered.push_back(ct.txn);
  CountingSink gc_sink;
  RunAionToEnd(ordered, Aion::Mode::kSi, &gc_sink, dir, /*gc_every=*/50,
               /*gc_target=*/20, /*ext_timeout=*/1);
  EXPECT_EQ(gc_sink.count(ViolationType::kExt),
            ref.count(ViolationType::kExt));
  EXPECT_EQ(gc_sink.count(ViolationType::kNoConflict),
            ref.count(ViolationType::kNoConflict));
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

// P4: SER-mode histories pass SER checkers; SI histories with write skew
// fail them but pass SI checkers.
class SerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerSweep, SerHistoriesPassSerCheckers) {
  workload::WorkloadParams p;
  p.sessions = 8;
  p.txns = 500;
  p.ops_per_txn = 6;
  p.keys = 50;
  p.read_ratio = 0.7;
  p.seed = GetParam();
  db::DbConfig cfg;
  cfg.isolation = db::DbConfig::Isolation::kSer;
  History h = workload::GenerateDefaultHistory(p, cfg);

  CountingSink ser_sink;
  ChronosSer::CheckHistory(h, &ser_sink);
  EXPECT_EQ(ser_sink.total(), 0u)
      << (ser_sink.first().empty() ? "" : ser_sink.first()[0].ToString());

  CountingSink aion_sink;
  RunAionToEnd(SessionPreservingShuffle(h, GetParam() + 77), Aion::Mode::kSer,
               &aion_sink);
  EXPECT_EQ(aion_sink.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerSweep, ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace chronos
