// Planted violation: an allow() escape naming a rule that does not
// exist — stale or typoed suppressions must not rot silently.
namespace chronos {

// chronos-lint: allow(totally-made-up-rule)
int Stale() { return 7; }

}  // namespace chronos
