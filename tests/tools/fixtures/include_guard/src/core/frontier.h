// Planted violation: include guard does not follow the canonical
// CHRONOS_<PATH>_H_ scheme (src/ stripped, path uppercased).
#ifndef FRONTIER_H
#define FRONTIER_H

namespace chronos {

struct Frontier {
  int depth = 0;
};

}  // namespace chronos

#endif  // FRONTIER_H
