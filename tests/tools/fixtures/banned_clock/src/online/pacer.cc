// Planted violation: a steady_clock read on a determinism-critical
// path. Everything else in this file is rule-clean.
#include <chrono>

namespace chronos::online {

uint64_t NowMs() {
  auto now = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(now.time_since_epoch().count());
}

}  // namespace chronos::online
