// Planted violation: pointer-keyed ordered container (iteration order
// would depend on the allocator).
#ifndef CHRONOS_CORE_REGISTRY_H_
#define CHRONOS_CORE_REGISTRY_H_

#include <map>

namespace chronos {

struct Node;

class Registry {
 public:
  void Add(const Node* n, int rank) { ranks_[n] = rank; }

 private:
  std::map<const Node*, int> ranks_;
};

}  // namespace chronos

#endif  // CHRONOS_CORE_REGISTRY_H_
