// Planted violation: an atomic store without an explicit memory_order,
// spanning two lines so the linter's statement joining is exercised.
#ifndef CHRONOS_ONLINE_SPSC_RING_H_
#define CHRONOS_ONLINE_SPSC_RING_H_

#include <atomic>
#include <cstdint>

namespace chronos::online {

class SpscRing {
 public:
  void Publish(uint64_t t) {
    tail_.store(
        t);
  }
  uint64_t Tail() const { return tail_.load(std::memory_order_acquire); }

 private:
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_SPSC_RING_H_
