// Planted violation: a second producer on the header ring. Helper()
// is not in the seq_ring_.Push allowlist (OnTransaction,
// DispatchFinalize, DispatchGc, WaitAll), so pushing from it is the
// exact "second ring producer" bug the rule exists to catch. The
// surrounding allowlisted functions are rule-clean.
#include "online/sharded_aion.h"

namespace chronos::online {

void ShardedAion::DispatchGc(Timestamp watermark) {
  SeqMsg m;
  m.kind = SeqMsg::Kind::kGc;
  m.gc_watermark = watermark;
  seq_ring_.Push(std::move(m));
}

void ShardedAion::Helper() {
  SeqMsg m;
  m.kind = SeqMsg::Kind::kBarrier;
  seq_ring_.Push(std::move(m));
}

}  // namespace chronos::online
