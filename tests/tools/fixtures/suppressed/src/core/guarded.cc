// Clean fixture: the planted assert carries a valid allow escape in the
// comment block directly above it, so the only expected output is one
// honored suppression and zero findings.
#include <cassert>

namespace chronos {

int Checked(int v) {
  // chronos-lint: allow(assert-style): deliberate fixture escape,
  // spanning a comment block to exercise the preceding-lines scan.
  assert(v >= 0);
  return v;
}

}  // namespace chronos
