// Planted violation: a bare assert() in src/ without an allow escape
// (it compiles out under NDEBUG).
#include <cassert>

namespace chronos {

int Advance(int cursor, int limit) {
  assert(cursor < limit);
  return cursor + 1;
}

}  // namespace chronos
