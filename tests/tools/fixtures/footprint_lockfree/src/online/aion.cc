// Planted violation: a lock on the GetFootprint path (it runs inside
// the GC policy check and must stay lock-free).
#include "online/aion.h"

namespace chronos::online {

CheckerFootprint Aion::GetFootprint() const {
  MutexLock guard(mu_);
  CheckerFootprint f;
  f.live_txns = live_;
  return f;
}

}  // namespace chronos::online
