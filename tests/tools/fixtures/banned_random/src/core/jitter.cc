// Planted violation: ambient randomness in src/core.
#include <random>

namespace chronos {

uint64_t Entropy() {
  std::random_device rd;
  return rd();
}

}  // namespace chronos
