// Planted violation: memory_order_seq_cst on a statement that is not
// part of the waiter-flag protocol.
#ifndef CHRONOS_ONLINE_SPSC_RING_H_
#define CHRONOS_ONLINE_SPSC_RING_H_

#include <atomic>
#include <cstdint>

namespace chronos::online {

class SpscRing {
 public:
  void Close() { closed_.store(true, std::memory_order_seq_cst); }
  bool Waiting() const {
    return waiting_.load(std::memory_order_seq_cst);
  }

 private:
  alignas(64) std::atomic<bool> closed_{false};
  alignas(64) std::atomic<bool> waiting_{false};
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_SPSC_RING_H_
