// Planted violation: one std::atomic ring member missing its alignas.
#ifndef CHRONOS_ONLINE_SPSC_RING_H_
#define CHRONOS_ONLINE_SPSC_RING_H_

#include <atomic>
#include <cstdint>

namespace chronos::online {

class SpscRing {
 private:
  alignas(64) std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> head_{0};
};

}  // namespace chronos::online

#endif  // CHRONOS_ONLINE_SPSC_RING_H_
