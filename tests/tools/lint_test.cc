// Regression harness for tools/chronos_lint: every rule must fire
// exactly once against its planted-violation fixture, the suppression
// escape must be honored, and the real tree must stay clean.
//
// The linter is exercised as a subprocess (the same way ci.sh runs it)
// so exit codes and output formatting are covered too. Fixture trees
// live under tests/tools/fixtures/<case>/ and mirror the src/ layout
// the per-directory rule tables key on.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;
};

std::string LintBinary() {
  return std::string(CHRONOS_BUILD_DIR) + "/chronos_lint";
}

bool BinaryExists() {
  std::FILE* f = std::fopen(LintBinary().c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

LintResult RunLint(const std::string& args) {
  LintResult result;
  std::string cmd = LintBinary() + " " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string FixtureRoot(const std::string& name) {
  return std::string(CHRONOS_TEST_SRCDIR) + "/tests/tools/fixtures/" + name;
}

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

class LintFixtureTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {
 protected:
  void SetUp() override {
    if (!BinaryExists()) GTEST_SKIP() << "chronos_lint not built";
  }
};

// Each planted-violation fixture trips its rule exactly once and
// nothing else, and the run exits 1 (findings present).
TEST_P(LintFixtureTest, RuleFiresExactlyOnce) {
  const std::string fixture = GetParam().first;
  const std::string rule = GetParam().second;
  LintResult r = RunLint("--root=" + FixtureRoot(fixture));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountOccurrences(r.output, ": " + rule + ": "), 1u) << r.output;
  EXPECT_NE(r.output.find("chronos_lint: 1 finding(s)"), std::string::npos)
      << r.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        std::make_pair("banned_clock", "banned-clock"),
        std::make_pair("banned_random", "banned-random"),
        std::make_pair("ptr_ordered_container", "ptr-ordered-container"),
        std::make_pair("ring_alignas", "ring-alignas"),
        std::make_pair("atomic_order", "atomic-explicit-order"),
        std::make_pair("seqcst_waiter", "seqcst-waiter-only"),
        std::make_pair("ring_single_producer", "ring-single-producer"),
        std::make_pair("footprint_lockfree", "footprint-lockfree"),
        std::make_pair("include_guard", "include-guard"),
        std::make_pair("assert_style", "assert-style"),
        std::make_pair("unknown_allow", "unknown-allow")),
    [](const ::testing::TestParamInfo<std::pair<const char*, const char*>>&
           param_info) { return std::string(param_info.param.first); });

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!BinaryExists()) GTEST_SKIP() << "chronos_lint not built";
  }
};

// A valid allow() escape silences the finding and is reported as an
// honored suppression, so escapes stay visible in the summary.
TEST_F(LintTest, AllowEscapeSuppressesAndIsCounted) {
  LintResult r = RunLint("--root=" + FixtureRoot("suppressed"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 suppression(s) honored"), std::string::npos)
      << r.output;
}

// The shipped tree must lint clean — this is the same gate ci.sh runs,
// kept in-suite so `ctest` alone catches a freshly introduced violation.
TEST_F(LintTest, RealTreeIsClean) {
  LintResult r = RunLint("--root=" + std::string(CHRONOS_TEST_SRCDIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("chronos_lint: 0 finding(s)"), std::string::npos)
      << r.output;
}

// --list-rules names every rule the fixtures cover; keeps the registry,
// docs, and fixture matrix from drifting apart silently.
TEST_F(LintTest, ListRulesCoversFixtureMatrix) {
  LintResult r = RunLint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule :
       {"banned-clock", "banned-random", "ptr-ordered-container",
        "ring-alignas", "atomic-explicit-order", "seqcst-waiter-only",
        "ring-single-producer", "footprint-lockfree", "include-guard",
        "assert-style", "unknown-allow"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos)
        << "missing rule: " << rule;
  }
}

// Usage errors are distinct from lint findings: exit 2, not 1.
TEST_F(LintTest, BadFlagExitsWithUsageError) {
  LintResult r = RunLint("--no-such-flag");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST_F(LintTest, MissingRootExitsWithUsageError) {
  LintResult r = RunLint("--root=/nonexistent/lint/root");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

}  // namespace
