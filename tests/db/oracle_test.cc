// HlcOracle edge cases (paper Appendix A/B: decentralized hybrid logical
// clocks): timestamp uniqueness under maximum configured skew, per-node
// monotonicity, cross-node non-monotonic issuance, and Eq. (1)
// conformance of histories generated on a skewed oracle.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "db/oracle.h"
#include "workload/generator.h"

namespace chronos::db {
namespace {

TEST(HlcOracleTest, UniqueUnderMaximumSkew) {
  // Large opposing skews force repeated physical-part collisions; the
  // logical counter and node id must still keep every output unique.
  const uint32_t nodes = 4;
  HlcOracle oracle(nodes, {1000, -1000, 500, -500});
  std::set<Timestamp> seen;
  for (int round = 0; round < 4000; ++round) {
    Timestamp ts = oracle.Next(static_cast<uint32_t>(round) % nodes);
    EXPECT_TRUE(seen.insert(ts).second)
        << "duplicate timestamp " << ts << " at round " << round;
  }
}

TEST(HlcOracleTest, PerNodeOutputsStrictlyIncrease) {
  const uint32_t nodes = 3;
  HlcOracle oracle(nodes, {50, 0, -50});
  std::vector<Timestamp> last(nodes, 0);
  for (int round = 0; round < 3000; ++round) {
    uint32_t node = static_cast<uint32_t>(round) % nodes;
    Timestamp ts = oracle.Next(node);
    EXPECT_GT(ts, last[node]) << "node " << node << " went backwards";
    last[node] = ts;
  }
}

TEST(HlcOracleTest, SkewedNodesIssueNonMonotonicallyAcrossNodes) {
  // A positively-skewed node must eventually issue a timestamp larger
  // than what a negatively-skewed node issues later in real time — the
  // cross-node inversion behind the paper's Sec. V-D clock-skew bug.
  HlcOracle oracle(2, {100, -100});
  bool inversion = false;
  for (int i = 0; i < 200 && !inversion; ++i) {
    Timestamp fast = oracle.Next(0);   // +100 skew
    Timestamp slow = oracle.Next(1);   // -100 skew, issued later
    inversion = slow < fast;
  }
  EXPECT_TRUE(inversion);

  // Sanity: with zero skew the shared tick makes issuance monotonic in
  // real time across nodes.
  HlcOracle aligned(2, {0, 0});
  Timestamp prev = 0;
  for (int i = 0; i < 200; ++i) {
    Timestamp ts = aligned.Next(static_cast<uint32_t>(i) % 2);
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

TEST(HlcOracleTest, SkewedHistoriesConformToEq1) {
  // A session's start and commit timestamps come from the same node and
  // each node's outputs are strictly increasing, so even a heavily
  // skewed oracle never records start_ts > commit_ts — Eq. (1) holds
  // and all cross-txn timestamps stay distinct.
  workload::WorkloadParams p;
  p.sessions = 9;
  p.txns = 500;
  p.ops_per_txn = 4;
  p.keys = 32;
  p.seed = 11;
  DbConfig cfg;
  cfg.timestamping = DbConfig::Timestamping::kHlc;
  cfg.hlc_nodes = 3;
  cfg.hlc_max_skew = 200;
  History h = workload::GenerateDefaultHistory(p, cfg);
  ASSERT_EQ(h.txns.size(), 500u);
  std::set<Timestamp> used;
  for (const Transaction& t : h.txns) {
    EXPECT_TRUE(t.TimestampsOrdered())
        << "txn " << t.tid << ": start=" << t.start_ts
        << " commit=" << t.commit_ts;
    EXPECT_TRUE(used.insert(t.start_ts).second);
    if (t.commit_ts != t.start_ts) {
      EXPECT_TRUE(used.insert(t.commit_ts).second);
    }
  }
}

}  // namespace
}  // namespace chronos::db
