// Tests for the Algorithm-1 database substrate: snapshot reads,
// first-committer-wins, SER read validation, oracles, and fault
// injection producing checker-detectable anomalies.
#include "db/database.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "core/chronos.h"
#include "db/oracle.h"

namespace chronos::db {
namespace {

TEST(OracleTest, CentralizedIsStrictlyIncreasing) {
  CentralizedOracle oracle;
  Timestamp prev = 0;
  for (int i = 0; i < 1000; ++i) {
    Timestamp ts = oracle.Next(0);
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

TEST(OracleTest, HlcIsUniqueAcrossNodes) {
  HlcOracle oracle(3, {0, 0, 0});
  std::set<Timestamp> seen;
  for (int i = 0; i < 3000; ++i) {
    EXPECT_TRUE(seen.insert(oracle.Next(i % 3)).second);
  }
}

TEST(OracleTest, HlcSkewProducesCrossNodeInversions) {
  HlcOracle oracle(2, {1000, -1000});
  Timestamp fast = oracle.Next(0);
  Timestamp slow = oracle.Next(1);
  EXPECT_GT(fast, slow) << "skewed node 0 runs ahead of node 1";
}

TEST(DatabaseTest, ReadsOwnBufferedWrites) {
  Database db(DbConfig{});
  auto txn = db.Begin(0);
  db.Write(txn.get(), 1, 42);
  EXPECT_EQ(db.Read(txn.get(), 1), 42);
}

TEST(DatabaseTest, SnapshotReadIgnoresLaterCommits) {
  Database db(DbConfig{});
  auto reader = db.Begin(0);
  auto writer = db.Begin(1);
  db.Write(writer.get(), 1, 7);
  ASSERT_EQ(db.Commit(std::move(writer)), Database::CommitResult::kCommitted);
  // Reader started before the writer committed: sees the initial value.
  EXPECT_EQ(db.Read(reader.get(), 1), kValueInit);
  auto late = db.Begin(1);
  EXPECT_EQ(db.Read(late.get(), 1), 7);
}

TEST(DatabaseTest, FirstCommitterWinsAbortsSecondWriter) {
  Database db(DbConfig{});
  auto t1 = db.Begin(0);
  auto t2 = db.Begin(1);
  db.Write(t1.get(), 1, 1);
  db.Write(t2.get(), 1, 2);
  EXPECT_EQ(db.Commit(std::move(t1)), Database::CommitResult::kCommitted);
  EXPECT_EQ(db.Commit(std::move(t2)), Database::CommitResult::kAborted);
  EXPECT_EQ(db.AbortedCount(), 1u);
}

TEST(DatabaseTest, SiAllowsWriteSkewSerForbidsIt) {
  {
    Database si(DbConfig{});
    auto t1 = si.Begin(0);
    auto t2 = si.Begin(1);
    si.Read(t1.get(), 1);
    si.Write(t1.get(), 2, 1);
    si.Read(t2.get(), 2);
    si.Write(t2.get(), 1, 1);
    EXPECT_EQ(si.Commit(std::move(t1)), Database::CommitResult::kCommitted);
    EXPECT_EQ(si.Commit(std::move(t2)), Database::CommitResult::kCommitted);
  }
  {
    DbConfig cfg;
    cfg.isolation = DbConfig::Isolation::kSer;
    Database ser(cfg);
    auto t1 = ser.Begin(0);
    auto t2 = ser.Begin(1);
    ser.Read(t1.get(), 1);
    ser.Write(t1.get(), 2, 1);
    ser.Read(t2.get(), 2);
    ser.Write(t2.get(), 1, 1);
    EXPECT_EQ(ser.Commit(std::move(t1)), Database::CommitResult::kCommitted);
    EXPECT_EQ(ser.Commit(std::move(t2)), Database::CommitResult::kAborted)
        << "OCC read validation must abort the write-skew partner";
  }
}

TEST(DatabaseTest, ReadOnlyTxnCommitsAtStartTimestamp) {
  Database db(DbConfig{});
  auto t = db.Begin(0);
  db.Read(t.get(), 1);
  ASSERT_EQ(db.Commit(std::move(t)), Database::CommitResult::kCommitted);
  History h = db.ExportHistory();
  ASSERT_EQ(h.txns.size(), 1u);
  EXPECT_EQ(h.txns[0].start_ts, h.txns[0].commit_ts);
}

TEST(DatabaseTest, HistoryRecordsSessionSequence) {
  Database db(DbConfig{});
  for (int i = 0; i < 3; ++i) {
    auto t = db.Begin(7);
    db.Write(t.get(), 1, i);
    ASSERT_EQ(db.Commit(std::move(t)), Database::CommitResult::kCommitted);
  }
  History h = db.ExportHistory();
  ASSERT_EQ(h.txns.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.txns[i].sid, 7u);
    EXPECT_EQ(h.txns[i].sno, i);
  }
}

TEST(DatabaseTest, ListAppendAndSnapshotRead) {
  Database db(DbConfig{});
  auto t1 = db.Begin(0);
  db.Append(t1.get(), 5, 100);
  db.Append(t1.get(), 5, 101);
  ASSERT_EQ(db.Commit(std::move(t1)), Database::CommitResult::kCommitted);
  auto t2 = db.Begin(0);
  db.Append(t2.get(), 5, 102);
  std::vector<Value> observed = db.ReadList(t2.get(), 5);
  EXPECT_EQ(observed, (std::vector<Value>{100, 101, 102}));
}

TEST(DatabaseTest, ValidHistoryPassesChronos) {
  Database db(DbConfig{});
  std::vector<std::unique_ptr<Database::Txn>> open;
  for (SessionId s = 0; s < 4; ++s) open.push_back(db.Begin(s));
  for (int round = 0; round < 50; ++round) {
    for (SessionId s = 0; s < 4; ++s) {
      db.Read(open[s].get(), round % 10);
      db.Write(open[s].get(), (round + s) % 10,
               static_cast<Value>(round * 10 + s + 1));
    }
    for (SessionId s = 0; s < 4; ++s) {
      db.Commit(std::move(open[s]));
      open[s] = db.Begin(s);
    }
  }
  for (SessionId s = 0; s < 4; ++s) db.Commit(std::move(open[s]));
  CountingSink sink;
  Chronos::CheckHistory(db.ExportHistory(), &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

TEST(DatabaseTest, ConcurrentSessionsProduceValidHistory) {
  Database db(DbConfig{});
  std::vector<std::thread> threads;
  for (SessionId s = 0; s < 8; ++s) {
    threads.emplace_back([&db, s] {
      for (int i = 0; i < 100; ++i) {
        auto t = db.Begin(s);
        db.Read(t.get(), i % 16);
        db.Write(t.get(), (i + s) % 16,
                 static_cast<Value>(s) * 100000 + i + 1);
        db.Commit(std::move(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  CountingSink sink;
  Chronos::CheckHistory(db.ExportHistory(), &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

class FaultDetectionTest : public ::testing::Test {
 protected:
  // Runs a contended workload with the given faults and returns the
  // checker counts. The database (and its fault log) lives in the
  // fixture so `log` stays valid.
  void RunWithFaults(const FaultConfig& faults, FaultLog const** log) {
    DbConfig cfg;
    cfg.faults = faults;
    db_ = std::make_unique<Database>(cfg);
    std::vector<std::unique_ptr<Database::Txn>> open;
    for (SessionId s = 0; s < 4; ++s) open.push_back(db_->Begin(s));
    Value v = 1;
    for (int round = 0; round < 100; ++round) {
      for (SessionId s = 0; s < 4; ++s) {
        db_->Read(open[s].get(), (round + s) % 5);
        db_->Write(open[s].get(), (round + 2 * s) % 5, v++);
      }
      for (SessionId s = 0; s < 4; ++s) {
        db_->Commit(std::move(open[s]));
        open[s] = db_->Begin(s);
      }
    }
    for (SessionId s = 0; s < 4; ++s) db_->Commit(std::move(open[s]));
    *log = &db_->fault_log();
    sink_.Reset();
    Chronos::CheckHistory(db_->ExportHistory(), &sink_);
  }

  std::unique_ptr<Database> db_;
  CountingSink sink_;
};

TEST_F(FaultDetectionTest, LostUpdatesYieldNoConflict) {
  FaultConfig f;
  f.lost_update_prob = 0.3;
  const FaultLog* log = nullptr;
  RunWithFaults(f, &log);
  ASSERT_GT(log->lost_updates.load(), 0u);
  EXPECT_GT(sink_.count(ViolationType::kNoConflict), 0u);
}

TEST_F(FaultDetectionTest, StaleReadsYieldExt) {
  FaultConfig f;
  f.stale_read_prob = 0.2;
  const FaultLog* log = nullptr;
  RunWithFaults(f, &log);
  ASSERT_GT(log->stale_reads.load(), 0u);
  EXPECT_GT(sink_.count(ViolationType::kExt), 0u);
}

TEST_F(FaultDetectionTest, ValueCorruptionYieldsReadAnomalies) {
  FaultConfig f;
  f.value_corruption_prob = 0.1;
  const FaultLog* log = nullptr;
  RunWithFaults(f, &log);
  ASSERT_GT(log->value_corruptions.load(), 0u);
  EXPECT_GT(sink_.count(ViolationType::kExt) + sink_.count(ViolationType::kInt),
            0u);
}

TEST_F(FaultDetectionTest, TsSwapYieldsTsOrder) {
  FaultConfig f;
  f.ts_swap_prob = 0.1;
  const FaultLog* log = nullptr;
  RunWithFaults(f, &log);
  ASSERT_GT(log->ts_swaps.load(), 0u);
  EXPECT_GT(sink_.count(ViolationType::kTsOrder), 0u);
}

TEST_F(FaultDetectionTest, SessionReorderYieldsSessionViolation) {
  FaultConfig f;
  f.session_reorder_prob = 0.1;
  const FaultLog* log = nullptr;
  RunWithFaults(f, &log);
  ASSERT_GT(log->session_reorders.load(), 0u);
  EXPECT_GT(sink_.count(ViolationType::kSession), 0u);
}

TEST_F(FaultDetectionTest, EarlyCommitRecordingYieldsViolations) {
  FaultConfig f;
  f.early_commit_prob = 0.2;
  const FaultLog* log = nullptr;
  RunWithFaults(f, &log);
  ASSERT_GT(log->early_commits.load(), 0u);
  EXPECT_GT(sink_.total(), 0u);
}

}  // namespace
}  // namespace chronos::db
