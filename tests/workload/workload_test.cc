// Workload generators: Table I parameter compliance, distribution sanity,
// and validity of produced histories under the matching checker.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/chronos.h"
#include "core/chronos_list.h"
#include "workload/apps.h"
#include "workload/generator.h"
#include "workload/zipf.h"

namespace chronos::workload {
namespace {

TEST(ZipfTest, StaysInRangeAndSkews) {
  ZipfGenerator zipf(1000, 0.99);
  std::mt19937_64 rng(3);
  size_t low = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = zipf.Next(rng);
    ASSERT_LT(k, 1000u);
    if (k < 100) ++low;
  }
  EXPECT_GT(low, 20000u / 3) << "zipfian mass concentrates on low keys";
}

TEST(ZipfTest, HotspotRespectsFractions) {
  HotspotGenerator hot(1000, 0.2, 0.8);
  std::mt19937_64 rng(3);
  size_t in_hot = 0;
  for (int i = 0; i < 20000; ++i) {
    if (hot.Next(rng) < 200) ++in_hot;
  }
  EXPECT_NEAR(static_cast<double>(in_hot) / 20000, 0.8, 0.03);
}

TEST(GeneratorTest, ProducesRequestedShape) {
  WorkloadParams p;
  p.sessions = 8;
  p.txns = 500;
  p.ops_per_txn = 10;
  p.keys = 50;
  History h = GenerateDefaultHistory(p);
  ASSERT_EQ(h.txns.size(), 500u);
  size_t reads = 0, writes = 0;
  for (const auto& t : h.txns) {
    EXPECT_EQ(t.ops.size(), 10u);
    EXPECT_LT(t.sid, 8u);
    for (const auto& op : t.ops) {
      EXPECT_LT(op.key, 50u);
      (op.type == OpType::kRead ? reads : writes) += 1;
    }
  }
  double ratio = static_cast<double>(reads) / (reads + writes);
  EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(GeneratorTest, HistoriesAreValidSi) {
  for (auto dist : {WorkloadParams::KeyDist::kUniform,
                    WorkloadParams::KeyDist::kZipf,
                    WorkloadParams::KeyDist::kHotspot}) {
    WorkloadParams p;
    p.sessions = 10;
    p.txns = 800;
    p.ops_per_txn = 8;
    p.keys = 100;
    p.dist = dist;
    CountingSink sink;
    Chronos::CheckHistory(GenerateDefaultHistory(p), &sink);
    EXPECT_EQ(sink.total(), 0u) << "dist=" << static_cast<int>(dist);
  }
}

TEST(GeneratorTest, ListHistoriesAreValid) {
  WorkloadParams p;
  p.sessions = 6;
  p.txns = 400;
  p.ops_per_txn = 6;
  p.keys = 30;
  p.list_mode = true;
  CountingSink sink;
  ChronosList::CheckHistory(GenerateDefaultHistory(p), &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

TEST(GeneratorTest, DeterministicForFixedSeed) {
  WorkloadParams p;
  p.sessions = 4;
  p.txns = 100;
  p.ops_per_txn = 5;
  p.seed = 17;
  History a = GenerateDefaultHistory(p);
  History b = GenerateDefaultHistory(p);
  ASSERT_EQ(a.txns.size(), b.txns.size());
  for (size_t i = 0; i < a.txns.size(); ++i) {
    EXPECT_EQ(a.txns[i].commit_ts, b.txns[i].commit_ts);
    ASSERT_EQ(a.txns[i].ops.size(), b.txns[i].ops.size());
  }
}

TEST(AppsTest, TwitterHistoryIsValidAndGrowsKeys) {
  TwitterParams p;
  p.txns = 1500;
  History h = GenerateTwitterHistory(p);
  EXPECT_EQ(h.txns.size(), 1500u);
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
  // Key space grows with posted tweets (paper: Twitter stresses #keys).
  std::unordered_set<Key> keys;
  for (const auto& t : h.txns) {
    for (const auto& op : t.ops) keys.insert(op.key);
  }
  EXPECT_GT(keys.size(), 500u);
}

TEST(AppsTest, RubisHistoryIsValid) {
  RubisParams p;
  p.txns = 1500;
  CountingSink sink;
  Chronos::CheckHistory(GenerateRubisHistory(p), &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

TEST(AppsTest, TpccHistoryIsValidAndContended) {
  TpccParams p;
  p.txns = 1000;
  db::DbConfig cfg;
  db::Database db(cfg);
  RunTpccWorkload(&db, p);
  EXPECT_EQ(db.CommittedCount(), 1000u);
  EXPECT_GT(db.AbortedCount(), 0u) << "district hot rows should conflict";
  CountingSink sink;
  Chronos::CheckHistory(db.ExportHistory(), &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

TEST(AppsTest, SerWorkloadsPassSerChecker) {
  db::DbConfig cfg;
  cfg.isolation = db::DbConfig::Isolation::kSer;
  RubisParams p;
  p.txns = 800;
  CountingSink sink;
  ChronosSer::CheckHistory(GenerateRubisHistory(p, cfg), &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

}  // namespace
}  // namespace chronos::workload
