// Baseline checkers: SAT solver, dependency-graph criteria, Elle, Emme,
// PolySI/Viper, Cobra — acceptance of valid histories, detection of
// planted anomalies, and the Fig. 11 completeness gap between black-box
// and timestamp-based checking.
#include <gtest/gtest.h>

#include "../testutil.h"
#include "baselines/cobra.h"
#include "baselines/depgraph.h"
#include "baselines/elle.h"
#include "baselines/emme.h"
#include "baselines/polysi.h"
#include "baselines/sat/solver.h"
#include "core/chronos.h"
#include "hist/collector.h"
#include "workload/generator.h"

namespace chronos::baselines {
namespace {

using chronos::testing::HistoryBuilder;

TEST(SatSolverTest, SolvesTrivialSat) {
  sat::Solver s;
  int a = s.NewVar(), b = s.NewVar();
  s.AddClause({a, b});
  s.AddClause({-a, b});
  ASSERT_EQ(s.Solve(), sat::Solver::Result::kSat);
  EXPECT_TRUE(s.Value(b));
}

TEST(SatSolverTest, DetectsUnsat) {
  sat::Solver s;
  int a = s.NewVar(), b = s.NewVar();
  s.AddClause({a, b});
  s.AddClause({a, -b});
  s.AddClause({-a, b});
  s.AddClause({-a, -b});
  EXPECT_EQ(s.Solve(), sat::Solver::Result::kUnsat);
}

TEST(SatSolverTest, UnitPropagationChains) {
  sat::Solver s;
  std::vector<int> vars;
  for (int i = 0; i < 50; ++i) vars.push_back(s.NewVar());
  s.AddClause({vars[0]});
  for (int i = 0; i + 1 < 50; ++i) s.AddClause({-vars[i], vars[i + 1]});
  ASSERT_EQ(s.Solve(), sat::Solver::Result::kSat);
  for (int v : vars) EXPECT_TRUE(s.Value(v));
}

TEST(SatSolverTest, IncrementalClausesAfterSolve) {
  sat::Solver s;
  int a = s.NewVar();
  ASSERT_EQ(s.Solve(), sat::Solver::Result::kSat);
  s.AddClause({a});
  ASSERT_EQ(s.Solve(), sat::Solver::Result::kSat);
  EXPECT_TRUE(s.Value(a));
  s.AddClause({-a});
  EXPECT_EQ(s.Solve(), sat::Solver::Result::kUnsat);
}

TEST(SatSolverTest, PigeonholeThreeIntoTwoIsUnsat) {
  sat::Solver s;
  int p[3][2];
  for (auto& row : p) {
    for (int& v : row) v = s.NewVar();
  }
  for (auto& row : p) s.AddClause({row[0], row[1]});
  for (int hole = 0; hole < 2; ++hole) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.AddClause({-p[i][hole], -p[j][hole]});
      }
    }
  }
  EXPECT_EQ(s.Solve(), sat::Solver::Result::kUnsat);
}

TEST(DepGraphTest, DetectsSimpleCycle) {
  DepGraph g(3);
  g.AddDep(0, 1);
  g.AddDep(1, 2);
  g.AddDep(2, 0);
  EXPECT_FALSE(SatisfiesSerCriterion(g));
  EXPECT_FALSE(SatisfiesSiCriterion(g));
}

TEST(DepGraphTest, SiAllowsAdjacentRwCycle) {
  // A pure rw-rw cycle (write skew shape) is SI-legal but SER-illegal.
  DepGraph g(2);
  g.AddRw(0, 1);
  g.AddRw(1, 0);
  EXPECT_FALSE(SatisfiesSerCriterion(g));
  EXPECT_TRUE(SatisfiesSiCriterion(g));
}

TEST(DepGraphTest, SiRejectsSingleRwCycle) {
  // dep followed by one rw closing the cycle: illegal under SI.
  DepGraph g(2);
  g.AddDep(0, 1);
  g.AddRw(1, 0);
  EXPECT_FALSE(SatisfiesSiCriterion(g));
}

TEST(DepGraphTest, LargerMixedCycleRespectsAdjacency) {
  // dep: 0->1, rw: 1->2, dep: 2->3, rw: 3->0 — rw edges never adjacent,
  // so SI must reject; 4-node write-skew-like all-rw cycle is accepted.
  DepGraph bad(4);
  bad.AddDep(0, 1);
  bad.AddRw(1, 2);
  bad.AddDep(2, 3);
  bad.AddRw(3, 0);
  EXPECT_FALSE(SatisfiesSiCriterion(bad));

  DepGraph ok(4);
  ok.AddRw(0, 1);
  ok.AddRw(1, 2);
  ok.AddRw(2, 3);
  ok.AddRw(3, 0);
  EXPECT_TRUE(SatisfiesSiCriterion(ok));
}

History ValidHistory(uint64_t txns = 400) {
  workload::WorkloadParams p;
  p.sessions = 8;
  p.txns = txns;
  p.ops_per_txn = 6;
  p.keys = 60;
  return workload::GenerateDefaultHistory(p);
}

TEST(ElleKvTest, AcceptsValidHistory) {
  CountingSink sink;
  BaselineResult r = CheckElleKv(ValidHistory(), CheckLevel::kSi, &sink);
  EXPECT_TRUE(r.Accepted()) << "anomalies=" << r.anomalies;
}

TEST(ElleKvTest, DetectsPhantomValue) {
  History h = ValidHistory(200);
  h.txns[100].ops[0] = {OpType::kRead, 1, 987654321, 0};  // never written
  CountingSink sink;
  BaselineResult r = CheckElleKv(h, CheckLevel::kSi, &sink);
  EXPECT_GT(r.anomalies, 0u);
}

TEST(ElleListTest, AcceptsValidListHistory) {
  workload::WorkloadParams p;
  p.sessions = 6;
  p.txns = 400;
  p.ops_per_txn = 6;
  p.keys = 40;
  p.list_mode = true;
  CountingSink sink;
  BaselineResult r = CheckElleList(workload::GenerateDefaultHistory(p),
                                   CheckLevel::kSi, &sink);
  EXPECT_TRUE(r.Accepted()) << "anomalies=" << r.anomalies;
}

TEST(ElleListTest, DetectsPrefixDivergence) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 4).A(1, 101)
                  .Txn(3, 2, 0, 5, 6).L(1, {100, 101})
                  .Txn(4, 3, 0, 7, 8).L(1, {101, 100})  // incompatible order
                  .Build();
  CountingSink sink;
  BaselineResult r = CheckElleList(h, CheckLevel::kSi, &sink);
  EXPECT_GT(r.anomalies, 0u);
}

TEST(EmmeSiTest, AcceptsValidHistory) {
  CountingSink sink;
  BaselineResult r = CheckEmmeSi(ValidHistory(), &sink);
  EXPECT_EQ(r.anomalies, 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
  EXPECT_FALSE(r.cycle_found);
  EXPECT_GT(r.graph_edges, 0u);
}

TEST(EmmeSiTest, DetectsStaleReadLikeChronos) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 1, 0, 3, 4).W(1, 2)
                  .Txn(3, 2, 0, 5, 6).R(1, 1)
                  .Build();
  CountingSink sink;
  BaselineResult r = CheckEmmeSi(h, &sink);
  EXPECT_GT(r.anomalies + (r.cycle_found ? 1 : 0), 0u);
}

TEST(EmmeSiTest, DetectsLostUpdate) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).W(1, 5)
                  .Txn(2, 1, 0, 2, 4).W(1, 6)
                  .Build();
  CountingSink sink;
  CheckEmmeSi(h, &sink);
  EXPECT_GE(sink.count(ViolationType::kNoConflict), 1u);
}

TEST(PolySiTest, AcceptsValidHistory) {
  CountingSink sink;
  PolygraphResult r = CheckPolySi(ValidHistory(200), &sink);
  EXPECT_EQ(r.verdict, PolygraphResult::Verdict::kAccepted)
      << "rounds=" << r.cegar_rounds;
}

TEST(PolySiTest, AcceptsWriteSkew) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).R(1, 0).W(2, 7)
                  .Txn(2, 1, 0, 2, 4).R(2, 0).W(1, 8)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(CheckPolySi(h, &sink).verdict,
            PolygraphResult::Verdict::kAccepted);
}

TEST(PolySiTest, DetectsFracturedRead) {
  // T3 observes T1's x but T2's y although T1 and T2 both wrote both
  // keys: no version order can justify it under SI.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1).W(2, 1)
                  .Txn(2, 1, 0, 3, 4).W(1, 2).W(2, 2)
                  .Txn(3, 2, 0, 5, 6).R(1, 1).R(2, 2)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(CheckPolySi(h, &sink).verdict,
            PolygraphResult::Verdict::kViolation);
}

// Paper Fig. 11: black-box checking accepts (it can infer order T1, T3,
// T2) while timestamp-based checking flags the stale read.
TEST(CompletenessTest, Fig11BlackBoxAcceptsTimestampBasedRejects) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 1, 0, 3, 4).W(1, 2)
                  .Txn(3, 2, 0, 5, 6).R(1, 1)
                  .Build();
  CountingSink poly_sink, chronos_sink;
  EXPECT_EQ(CheckPolySi(h, &poly_sink).verdict,
            PolygraphResult::Verdict::kAccepted);
  Chronos::CheckHistory(h, &chronos_sink);
  EXPECT_EQ(chronos_sink.count(ViolationType::kExt), 1u);
}

TEST(ViperTest, AcceptsValidHistoryWithFewerVariables) {
  History h = ValidHistory(200);
  CountingSink s1, s2;
  PolygraphResult poly = CheckPolySi(h, &s1);
  PolygraphResult viper = CheckViper(h, &s2);
  EXPECT_EQ(viper.verdict, PolygraphResult::Verdict::kAccepted);
  EXPECT_LE(viper.sat_vars, poly.sat_vars)
      << "session pruning must not add variables";
}

TEST(CobraTest, AcceptsValidSerStream) {
  db::DbConfig cfg;
  cfg.isolation = db::DbConfig::Isolation::kSer;
  workload::WorkloadParams p;
  p.sessions = 8;
  p.txns = 600;
  p.ops_per_txn = 6;
  p.keys = 60;
  p.read_ratio = 0.9;
  History h = workload::GenerateDefaultHistory(p, cfg);
  auto stream = hist::ScheduleDelivery(h, hist::CollectorParams{});
  CountingSink sink;
  CobraParams cp;
  cp.round_size = 200;
  CobraRun run = RunCobraSer(stream, cp, &sink);
  EXPECT_FALSE(run.violation_found)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
  EXPECT_EQ(run.processed, 600u);
  EXPECT_EQ(run.round_progress.size(), 3u);
}

TEST(CobraTest, StopsAtFirstViolation) {
  // An SI-level (write-skew) history checked for SER.
  HistoryBuilder b;
  b.Txn(1, 0, 0, 1, 3).R(1, 0).W(2, 7);
  b.Txn(2, 1, 0, 2, 4).R(2, 0).W(1, 8);
  for (uint64_t i = 0; i < 50; ++i) {
    b.Txn(3 + i, 2 + static_cast<SessionId>(i % 4), i / 4, 10 + 2 * i,
          11 + 2 * i)
        .W(10 + i % 5, static_cast<Value>(1000 + i));
  }
  History h = b.Build();
  auto stream = hist::ScheduleDelivery(h, hist::CollectorParams{});
  CountingSink sink;
  CobraParams cp;
  cp.round_size = 10;
  CobraRun run = RunCobraSer(stream, cp, &sink);
  EXPECT_TRUE(run.violation_found);
  EXPECT_LT(run.processed, h.txns.size()) << "terminates early";
}

}  // namespace
}  // namespace chronos::baselines
