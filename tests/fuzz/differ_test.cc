// The differential oracle itself: scenario derivation is deterministic,
// clean scenarios produce clean reports, planted corruptions breach the
// right rules, and the report is reproducible run-to-run.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "fuzz/differ.h"
#include "fuzz/scenario.h"
#include "workload/generator.h"

namespace chronos::fuzz {
namespace {

std::string WorkDir() { return chronos::testing::UniqueTempDir("differ"); }

TEST(ScenarioTest, DerivationIsDeterministic) {
  for (uint64_t seed : {0ull, 7ull, 123456789ull}) {
    FuzzScenario a = ScenarioFromSeed(seed);
    FuzzScenario b = ScenarioFromSeed(seed);
    EXPECT_EQ(a.Describe(), b.Describe());
    EXPECT_EQ(a.wl.seed, b.wl.seed);
    EXPECT_EQ(a.db.fault_seed, b.db.fault_seed);
  }
}

TEST(ScenarioTest, SeedsCoverDistinctShapes) {
  // A window of seeds must produce more than one workload shape and at
  // least one weak scenario — guards against a derivation regression
  // collapsing the space.
  std::set<std::string> shapes;
  bool saw_weak = false, saw_faults = false, saw_gc = false;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    FuzzScenario sc = ScenarioFromSeed(seed);
    shapes.insert(sc.Describe());
    saw_weak |= !sc.strict;
    saw_faults |= sc.db.faults.AnyEnabled();
    saw_gc |= sc.gc_every > 0;
  }
  EXPECT_GT(shapes.size(), 32u);
  EXPECT_TRUE(saw_weak);
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_gc);
}

TEST(DifferTest, CleanWorkloadProducesCleanReport) {
  FuzzScenario sc;  // defaults: strict, no faults, commit order
  sc.wl.txns = 200;
  sc.wl.sessions = 8;
  sc.wl.keys = 16;
  History h;
  DiffReport report = RunDiffer(sc, WorkDir(), &h);
  EXPECT_TRUE(report.Clean()) << report.Summary();
  EXPECT_EQ(report.expectation, CleanExpectation::kClean);
  EXPECT_EQ(h.txns.size(), 200u);
  ASSERT_NE(report.Find("chronos"), nullptr);
  EXPECT_FALSE(report.Find("chronos")->detected);
  ASSERT_NE(report.Find("sharded8"), nullptr);
  EXPECT_TRUE(report.Find("sharded8")->ran);
}

TEST(DifferTest, ReportIsReproducible) {
  FuzzScenario sc = ScenarioFromSeed(42);
  DiffReport a = RunDiffer(sc, WorkDir());
  DiffReport b = RunDiffer(sc, WorkDir());
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.injected.Total(), b.injected.Total());
}

TEST(DifferTest, PlantedCorruptionBreachesCleanAcceptRule) {
  FuzzScenario sc;
  sc.wl.txns = 120;
  sc.wl.sessions = 4;
  sc.wl.keys = 8;
  History h = workload::GenerateDefaultHistory(sc.wl);
  // Corrupt one external read; every checker should now detect, which
  // under a kClean expectation is exactly the false-positive alarm.
  bool corrupted = false;
  for (auto& t : h.txns) {
    for (auto& op : t.ops) {
      if (op.type == OpType::kRead) {
        op.value += 1000;
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted);
  DiffReport report =
      DiffHistory(h, sc, CleanExpectation::kClean, WorkDir());
  EXPECT_TRUE(report.HasRule("clean-accept")) << report.Summary();
}

TEST(DifferTest, FaultyScenarioDetectsWithoutDisagreement) {
  FuzzScenario sc;
  sc.wl.txns = 300;
  sc.wl.sessions = 8;
  sc.wl.keys = 8;
  sc.db.faults.stale_read_prob = 0.1;
  DiffReport report = RunDiffer(sc, WorkDir());
  EXPECT_TRUE(report.Clean()) << report.Summary();
  EXPECT_EQ(report.expectation, CleanExpectation::kFaulty);
  EXPECT_GT(report.injected.stale_reads, 0u);
  const CheckerReport* chronos = report.Find("chronos");
  ASSERT_NE(chronos, nullptr);
  EXPECT_GT(chronos->Count(ViolationType::kExt), 0u);
  // The stale reads are invisible to the black-box checker (entry D1) —
  // white-box detection with black-box acceptance is NOT a disagreement.
  const CheckerReport* ellekv = report.Find("ellekv");
  ASSERT_NE(ellekv, nullptr);
}

TEST(DifferTest, HlcSkewScenarioIsNeverExpectedClean) {
  FuzzScenario sc;
  sc.wl.txns = 200;
  sc.db.timestamping = db::DbConfig::Timestamping::kHlc;
  sc.db.hlc_max_skew = 50;
  DiffReport report = RunDiffer(sc, WorkDir());
  // Genuine anomalies may or may not occur, but the expectation must be
  // kFaulty (entry D3) so detections are never flagged as false
  // positives — and the checker-vs-checker rules must still hold.
  EXPECT_EQ(report.expectation, CleanExpectation::kFaulty);
  EXPECT_TRUE(report.Clean()) << report.Summary();
}

}  // namespace
}  // namespace chronos::fuzz
