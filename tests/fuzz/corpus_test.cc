// Tier-1 replay of the shrunk regression corpus (tests/corpus): every
// .repro runs through the full differential oracle, its Chronos verdict
// is pinned to the manifest, and the runtime-knob divergence entries
// (D5 finite-timeout reordering, D7 GC without spill) are driven
// explicitly. This is the standing answer to "did a refactor change a
// verdict": any drift in any checker either breaks a cross-check rule
// or moves a pinned count.
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "core/aion.h"
#include "core/chronos.h"
#include "core/chronos_list.h"
#include "fuzz/corpus.h"
#include "fuzz/differ.h"
#include "fuzz/scenario.h"

namespace chronos::fuzz {
namespace {

const char* kCorpusDir = CHRONOS_TEST_SRCDIR "/tests/corpus";

Corpus LoadOrDie() {
  Corpus corpus = LoadCorpus(kCorpusDir);
  EXPECT_TRUE(corpus.ok()) << corpus.error;
  return corpus;
}

const CorpusEntry& EntryOrDie(const Corpus& corpus, const std::string& file) {
  for (const CorpusEntry& e : corpus.entries) {
    if (e.file == file) return e;
  }
  ADD_FAILURE() << "corpus entry missing: " << file;
  static CorpusEntry empty;
  return empty;
}

// Strict replay knobs: infinite timeout, commit order, no GC.
FuzzScenario StrictScenario(bool ser = false) {
  FuzzScenario sc;
  if (ser) sc.db.isolation = db::DbConfig::Isolation::kSer;
  return sc;
}

TEST(CorpusTest, EveryDivergenceTableEntryIsExercised) {
  Corpus corpus = LoadOrDie();
  std::set<std::string> tags;
  for (const CorpusEntry& e : corpus.entries) tags.insert(e.tag);
  for (const char* required :
       {"D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9"}) {
    EXPECT_TRUE(tags.count(required))
        << "no corpus history exercises divergence entry " << required;
  }
}

TEST(CorpusTest, DifferCleanAndChronosCountsPinned) {
  Corpus corpus = LoadOrDie();
  std::string work = chronos::testing::UniqueTempDir("corpus_differ");
  for (const CorpusEntry& entry : corpus.entries) {
    CleanExpectation expect = entry.ExpectedTotal() == 0
                                  ? CleanExpectation::kClean
                                  : CleanExpectation::kFaulty;
    DiffReport report =
        DiffHistory(entry.history, StrictScenario(entry.ser), expect, work);
    EXPECT_TRUE(report.Clean())
        << entry.file << ":\n" << report.Summary();
    const CheckerReport* ref = report.Find("chronos");
    if (!ref) ref = report.Find("chronos-list");
    if (!ref) ref = report.Find("chronos-mixed");
    ASSERT_NE(ref, nullptr) << entry.file;
    EXPECT_EQ(ref->counts, entry.expected)
        << entry.file << ": chronos verdict drifted\n" << report.Summary();

    const CheckerReport* blackbox = report.Find("ellekv");
    if (!blackbox) blackbox = report.Find("elle-list");
    if (entry.mixed) {
      // D8: single-level checkers are gated out on mixed histories —
      // there must be no black-box report to pin.
      EXPECT_EQ(ref->name, "chronos-mixed") << entry.file;
      EXPECT_EQ(blackbox, nullptr) << entry.file;
      continue;
    }
    ASSERT_NE(blackbox, nullptr) << entry.file;
    EXPECT_EQ(blackbox->detected, entry.blackbox_detect)
        << entry.file << ": black-box verdict drifted\n" << report.Summary();
  }
}

// D5: the weak_timeout history is clean offline, but delivering the
// reader before its writer under a 1 ms EXT timeout finalizes a false
// EXT verdict — the reason finite-timeout reordered scenarios are
// exempt from offline equality.
TEST(CorpusTest, WeakTimeoutEntryDemonstratesD5) {
  Corpus corpus = LoadOrDie();
  const CorpusEntry& entry = EntryOrDie(corpus, "weak_timeout.repro");
  ASSERT_EQ(entry.history.txns.size(), 3u);

  CountingSink offline;
  Chronos::CheckHistory(entry.history, &offline);
  EXPECT_EQ(offline.total(), 0u);

  // File order delivers the reader (tid 2) before the writer (tid 3).
  auto run_with_timeout = [&](uint64_t timeout_ms) {
    CountingSink sink;
    Aion::Options opt;
    opt.ext_timeout_ms = timeout_ms;
    Aion aion(opt, &sink);
    uint64_t now = 0;
    for (const Transaction& t : entry.history.txns) {
      aion.OnTransaction(t, now++);
    }
    aion.Finish();
    return sink.count(ViolationType::kExt);
  };
  EXPECT_GT(run_with_timeout(1), 0u) << "finite timeout should finalize "
                                        "the reader before its writer";
  EXPECT_EQ(run_with_timeout(1u << 30), 0u)
      << "an unexpired verdict must be corrected by the late writer";
}

// D7: the gc_straggler history is clean offline; with aggressive GC its
// session-1 reader arrives below the watermark. With a spill store the
// verdict still matches offline; without one the read becomes
// unverifiable (counted, not silently wrong).
TEST(CorpusTest, GcStragglerEntryDemonstratesD7) {
  Corpus corpus = LoadOrDie();
  const CorpusEntry& entry = EntryOrDie(corpus, "gc_straggler.repro");
  ASSERT_EQ(entry.history.txns.size(), 7u);

  CountingSink offline;
  Chronos::CheckHistory(entry.history, &offline);
  EXPECT_EQ(offline.total(), 0u);

  auto run = [&](const std::string& spill_dir) {
    CountingSink sink;
    Aion::Options opt;
    opt.ext_timeout_ms = 1;
    opt.spill_dir = spill_dir;
    Aion aion(opt, &sink);
    uint64_t now = 0;
    size_t since_gc = 0;
    for (const Transaction& t : entry.history.txns) {
      aion.OnTransaction(t, now++);
      if (++since_gc >= 2) {
        since_gc = 0;
        aion.GcToLiveTarget(1);
      }
    }
    aion.Finish();
    return std::make_pair(sink.total(), aion.stats().unsafe_below_watermark);
  };

  std::string dir = chronos::testing::UniqueTempDir("corpus_d7_spill");
  std::filesystem::remove_all(dir);
  auto [with_spill_total, with_spill_unsafe] = run(dir);
  EXPECT_EQ(with_spill_total, 0u)
      << "spill store must keep the straggler verifiable";
  EXPECT_EQ(with_spill_unsafe, 0u);
  std::filesystem::remove_all(dir);

  auto [no_spill_total, no_spill_unsafe] = run("");
  (void)no_spill_total;
  EXPECT_GT(no_spill_unsafe, 0u)
      << "spill-less GC must count the straggler as unverifiable";
}

// Regression (list_self_stamped): under reordered arrival, a later
// append to the key re-checks the self-stamped reader; the evaluation
// must exclude the reader's own version (installed at exactly its view
// timestamp) from the resolved-base comparison. The original fuzz
// finding left a permanent false EXT here.
TEST(CorpusTest, ListSelfStampedRecheckExcludesOwnVersion) {
  Corpus corpus = LoadOrDie();
  const CorpusEntry& entry = EntryOrDie(corpus, "list_self_stamped.repro");
  ASSERT_EQ(entry.history.txns.size(), 3u);

  // Deliver the middle appender (tid 2) last; the infinite timeout means
  // every verdict finalizes against the full chain, so the history must
  // come out clean in any session-preserving order.
  std::vector<const Transaction*> arrival = {&entry.history.txns[0],
                                             &entry.history.txns[2],
                                             &entry.history.txns[1]};
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1u << 30;
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction* t : arrival) aion.OnTransaction(*t, now++);
  aion.Finish();
  EXPECT_EQ(sink.total(), 0u)
      << "reordered arrival must not fabricate an EXT for the "
         "self-stamped list reader";
}

// D7 for lists (list_gc_straggler): aggressive GC collapses the key-0
// version boundaries below the straggler reader's view. With a spill
// store the prefix reconstructs from the spilled deltas and the verdict
// matches offline; without one the read is counted unverifiable.
TEST(CorpusTest, ListGcStragglerEntryDemonstratesD7) {
  Corpus corpus = LoadOrDie();
  const CorpusEntry& entry = EntryOrDie(corpus, "list_gc_straggler.repro");
  ASSERT_EQ(entry.history.txns.size(), 8u);

  CountingSink offline;
  ChronosList::CheckHistory(entry.history, &offline);
  EXPECT_EQ(offline.total(), 0u);

  auto run = [&](const std::string& spill_dir) {
    CountingSink sink;
    Aion::Options opt;
    opt.ext_timeout_ms = 1;
    opt.spill_dir = spill_dir;
    Aion aion(opt, &sink);
    uint64_t now = 0;
    size_t since_gc = 0;
    for (const Transaction& t : entry.history.txns) {
      aion.OnTransaction(t, now++);
      if (++since_gc >= 2) {
        since_gc = 0;
        aion.GcToLiveTarget(1);
      }
    }
    aion.Finish();
    return std::make_pair(sink.total(), aion.stats().unsafe_below_watermark);
  };

  std::string dir = chronos::testing::UniqueTempDir("corpus_list_d7_spill");
  std::filesystem::remove_all(dir);
  auto [with_spill_total, with_spill_unsafe] = run(dir);
  EXPECT_EQ(with_spill_total, 0u)
      << "spilled list deltas must keep the straggler's prefix resolvable";
  EXPECT_EQ(with_spill_unsafe, 0u);
  std::filesystem::remove_all(dir);

  auto [no_spill_total, no_spill_unsafe] = run("");
  (void)no_spill_total;
  EXPECT_GT(no_spill_unsafe, 0u)
      << "spill-less GC must count the list straggler as unverifiable";
}

// D6: Chronos replays a duplicate-timestamp transaction (seeing its
// NOCONFLICT overlap), AION skips it — pinned here so the divergence
// stays deliberate.
TEST(CorpusTest, TsDupEntryDemonstratesD6) {
  Corpus corpus = LoadOrDie();
  const CorpusEntry& entry = EntryOrDie(corpus, "ts_dup.repro");

  CountingSink chronos_sink;
  Chronos::CheckHistory(entry.history, &chronos_sink);
  EXPECT_EQ(chronos_sink.count(ViolationType::kTsDuplicate), 1u);
  EXPECT_EQ(chronos_sink.count(ViolationType::kNoConflict), 1u);

  CountingSink aion_sink;
  Aion::Options opt;
  Aion aion(opt, &aion_sink);
  uint64_t now = 0;
  for (const Transaction& t : entry.history.txns) {
    aion.OnTransaction(t, now++);
  }
  aion.Finish();
  EXPECT_EQ(aion_sink.count(ViolationType::kTsDuplicate), 1u);
  EXPECT_EQ(aion_sink.count(ViolationType::kNoConflict), 0u)
      << "AION deliberately skips replaying duplicate-ts transactions";
}

// D8 (session): the RC session rule fires where the all-SI reading of
// the byte-identical history would instead hit the ingress dup-gate —
// the SESSION anomaly exists only because of the level tags.
TEST(CorpusTest, MixedRcSessionEntryDemonstratesD8) {
  Corpus corpus = LoadOrDie();
  const CorpusEntry& entry = EntryOrDie(corpus, "mixed_rc_session.repro");
  ASSERT_TRUE(entry.mixed);

  CountingSink mixed;
  ChronosMixed::CheckHistory(entry.history, CheckMode::kSi, &mixed);
  EXPECT_EQ(mixed.count(ViolationType::kSession), 1u);
  EXPECT_EQ(mixed.total(), 1u);

  // Strip the tags: under all-SI rules the start==commit successor
  // collides with its predecessor's registered commit timestamp and is
  // dropped at the uniqueness gate before the session check runs.
  History untagged = entry.history;
  for (Transaction& t : untagged.txns) t.iso = IsolationLevel::kUnspecified;
  CountingSink si;
  Chronos::CheckHistory(untagged, &si);
  EXPECT_EQ(si.count(ViolationType::kSession), 0u);
  EXPECT_GT(si.count(ViolationType::kTsDuplicate), 0u);
}

// D8 (waiver): RC's committed-membership read rule accepts an observed
// value that SI's snapshot-frontier rule flags as EXT.
TEST(CorpusTest, MixedRcWaivesExtEntryDemonstratesD8) {
  Corpus corpus = LoadOrDie();
  const CorpusEntry& entry = EntryOrDie(corpus, "mixed_rc_waives_ext.repro");
  ASSERT_TRUE(entry.mixed);

  CountingSink mixed;
  ChronosMixed::CheckHistory(entry.history, CheckMode::kSi, &mixed);
  EXPECT_EQ(mixed.total(), 0u) << "RC membership must accept the "
                                  "superseded-but-committed value";

  History untagged = entry.history;
  for (Transaction& t : untagged.txns) t.iso = IsolationLevel::kUnspecified;
  CountingSink si;
  Chronos::CheckHistory(untagged, &si);
  EXPECT_EQ(si.count(ViolationType::kExt), 1u)
      << "the same read under SI snapshot rules must be an EXT anomaly";
}

// D9: an RC writer sharing commit timestamp and key with an SI writer
// bypasses the ingress dup-gate; the duplicate surfaces as a per-key
// TS-DUP at version install, in both the online checker and the
// ChronosMixed mirror.
TEST(CorpusTest, MixedRcDupEntryDemonstratesD9) {
  Corpus corpus = LoadOrDie();
  const CorpusEntry& entry = EntryOrDie(corpus, "mixed_rc_dup.repro");
  ASSERT_TRUE(entry.mixed);

  CountingSink mixed;
  ChronosMixed::CheckHistory(entry.history, CheckMode::kSi, &mixed);
  EXPECT_EQ(mixed.count(ViolationType::kTsDuplicate), 1u);

  CountingSink aion_sink;
  Aion::Options opt;
  Aion aion(opt, &aion_sink);
  uint64_t now = 0;
  for (const Transaction& t : entry.history.txns) {
    aion.OnTransaction(t, now++);
  }
  aion.Finish();
  EXPECT_EQ(aion_sink.count(ViolationType::kTsDuplicate), 1u)
      << "the install-time collision must be reported even though the RC "
         "writer never registered its timestamps";

  // The level-aware duplicate predicate classifies this history under
  // the D6 boolean regime via its membership-commit-collision rule.
  EXPECT_TRUE(HistoryHasDuplicateTs(entry.history, CheckMode::kSi));

  // And it must NOT fire on a registered-looking clash that an RC tag
  // dissolves: an RC start timestamp equal to an SI commit timestamp is
  // no duplicate at all (RC registers nothing), where the level-blind
  // predicate would waive comparisons spuriously.
  History no_dup = entry.history;
  no_dup.txns[1].start_ts = 3;   // collides with txn 1's registered commit
  no_dup.txns[1].commit_ts = 5;  // ...but the commit no longer does
  no_dup.txns[1].ops[0].key = 2;
  EXPECT_TRUE(HistoryHasDuplicateTs(no_dup, /*ser=*/false))
      << "level-blind predicate treats the RC start as registered";
  EXPECT_FALSE(HistoryHasDuplicateTs(no_dup, CheckMode::kSi))
      << "RC registers no timestamps, so nothing is duplicated";
}

}  // namespace
}  // namespace chronos::fuzz
