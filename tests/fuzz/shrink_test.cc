// The delta-debugging shrinker, including the acceptance scenario: a
// deliberately planted verdict bug — a scratch reimplementation of
// key_engine's EXT frontier rule with a flipped binary-search bound —
// must be caught by differential comparison against Chronos and shrunk
// to a <= 6-transaction repro.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "core/chronos.h"
#include "fuzz/shrink.h"
#include "workload/generator.h"

namespace chronos::fuzz {
namespace {

using chronos::testing::HistoryBuilder;

TEST(NormalizeSessionsTest, ClosesGapsAndPreservesOrder) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 3, 1, 2)
                  .Txn(2, 0, 7, 3, 4)
                  .Txn(3, 1, 5, 5, 6)
                  .Build();
  History n = NormalizeSessions(std::move(h));
  EXPECT_EQ(n.txns[0].sno, 0u);  // session 0: 3 -> 0
  EXPECT_EQ(n.txns[1].sno, 1u);  // session 0: 7 -> 1 (order kept)
  EXPECT_EQ(n.txns[2].sno, 0u);  // session 1: 5 -> 0
  EXPECT_EQ(n.num_sessions, 2u);
}

TEST(NormalizeSessionsTest, PreservesReorderInversion) {
  // A genuine sno swap (1 before 0) must survive renormalization.
  History h = HistoryBuilder()
                  .Txn(1, 0, 4, 1, 2)   // recorded later in session order
                  .Txn(2, 0, 2, 3, 4)   // recorded earlier
                  .Build();
  History n = NormalizeSessions(std::move(h));
  EXPECT_EQ(n.txns[0].sno, 1u);
  EXPECT_EQ(n.txns[1].sno, 0u);
}

TEST(ShrinkTest, NonFailingHistoryIsReturnedUnchanged) {
  History h = HistoryBuilder().Txn(1, 0, 0, 1, 2).W(0, 1).Build();
  ShrinkResult r =
      ShrinkHistory(h, [](const History&) { return false; });
  EXPECT_EQ(r.final_txns, r.initial_txns);
  EXPECT_EQ(r.predicate_calls, 0u);
}

// Every candidate a reduction produces must keep Op::list_index dense
// and in-bounds: dropping a kReadList op compacts list_args and
// renumbers the survivors. The predicate asserts the invariant on every
// candidate it sees (op-removal, txn-removal, and compaction passes
// alike), and the shrunk result keeps the surviving read's payload.
TEST(ShrinkTest, ListArgsStayCompactDuringReduction) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2)
                  .A(0, 1).L(0, {1}).A(0, 2).L(0, {1, 2})
                  .Txn(2, 0, 1, 3, 4)
                  .L(0, {1, 2}).A(1, 9).L(1, {9})
                  .Build();

  size_t checked = 0;
  auto fails = [&](const History& c) {
    for (const Transaction& t : c.txns) {
      size_t referenced = 0;
      for (const Op& op : t.ops) {
        if (op.type != OpType::kReadList) continue;
        ++referenced;
        EXPECT_LT(op.list_index, t.list_args.size())
            << "dangling list_index after a reduction";
      }
      EXPECT_EQ(t.list_args.size(), referenced)
          << "orphaned list payload after a reduction";
    }
    ++checked;
    // The failure being minimized: some read still observes [1, 2].
    for (const Transaction& t : c.txns) {
      for (const Op& op : t.ops) {
        if (op.type == OpType::kReadList &&
            op.list_index < t.list_args.size() &&
            t.list_args[op.list_index] == std::vector<Value>({1, 2})) {
          return true;
        }
      }
    }
    return false;
  };
  ShrinkResult r = ShrinkHistory(h, fails);
  EXPECT_GT(checked, 2u);
  EXPECT_LE(r.final_ops, 2u) << "the [1,2]-observing read (plus at most "
                                "one supporting op) should survive";
  bool found = false;
  for (const Transaction& t : r.minimized.txns) {
    for (const Op& op : t.ops) {
      if (op.type == OpType::kReadList) {
        ASSERT_LT(op.list_index, t.list_args.size());
        found |= t.list_args[op.list_index] == std::vector<Value>({1, 2});
      }
    }
    EXPECT_EQ(t.list_args.size(),
              static_cast<size_t>(std::count_if(
                  t.ops.begin(), t.ops.end(), [](const Op& op) {
                    return op.type == OpType::kReadList;
                  })));
  }
  EXPECT_TRUE(found);
}

// A hand-edited history with an orphaned payload (no op references it)
// is compacted by the first accepted reduction rather than carried into
// the emitted .repro.
TEST(ShrinkTest, OrphanedListPayloadIsDropped) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(0, 1).L(0, {1})
                  .Txn(2, 0, 1, 3, 4).A(0, 2)
                  .Build();
  h.txns[0].list_args.push_back({7, 8, 9});  // orphan: no op references it

  auto fails = [](const History& c) {
    return !c.txns.empty() && c.txns[0].ops.size() >= 2;
  };
  ShrinkResult r = ShrinkHistory(h, fails);
  ASSERT_FALSE(r.minimized.txns.empty());
  EXPECT_EQ(r.minimized.txns[0].list_args.size(), 1u)
      << "the orphaned payload must be compacted away";
}

// A failure that couples operations in *different* transactions: the
// predicate needs the two marker writes (keys 7 and 8) to survive and
// the counts of writes to keys 1 and 2 to stay equal. Neither coupled
// write is removable alone (the counts diverge) and neither transaction
// is removable whole (a marker would vanish), so a per-transaction op
// pass plateaus at 4 ops / 3 txns. The global op sweep removes both
// coupled writes in one predicate call because the chunk spans the
// txn1/txn2 boundary, reaching 2 ops / 2 txns.
TEST(ShrinkTest, CrossTxnCoupledOpsShrinkViaGlobalOpChunks) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 10)
                  .Txn(2, 0, 1, 3, 4).W(2, 20).W(7, 70)
                  .Txn(3, 0, 2, 5, 6).W(8, 80)
                  .Build();
  auto fails = [](const History& c) {
    size_t k1 = 0, k2 = 0;
    bool w7 = false, w8 = false;
    for (const Transaction& t : c.txns) {
      for (const Op& op : t.ops) {
        if (op.type != OpType::kWrite) continue;
        k1 += op.key == 1;
        k2 += op.key == 2;
        w7 |= op.key == 7;
        w8 |= op.key == 8;
      }
    }
    return w7 && w8 && k1 == k2;
  };
  ASSERT_TRUE(fails(h));
  ShrinkResult r = ShrinkHistory(h, fails);
  EXPECT_TRUE(fails(r.minimized));
  EXPECT_EQ(r.final_ops, 2u) << "the coupled pair (keys 1 and 2) must be "
                                "removed together across the txn boundary";
  EXPECT_EQ(r.final_txns, 2u);
}

TEST(ShrinkTest, MinimizesPlantedIntViolation) {
  workload::WorkloadParams p;
  p.txns = 200;
  p.sessions = 8;
  p.keys = 16;
  p.seed = 5;
  History h = workload::GenerateDefaultHistory(p);
  // Plant one INT violation deep in the history.
  for (auto& t : h.txns) {
    if (t.ops.size() >= 2 && t.ops[0].type == OpType::kWrite) {
      Op read = t.ops[0];
      read.type = OpType::kRead;
      read.value += 12345;  // disagrees with the preceding write
      t.ops.insert(t.ops.begin() + 1, read);
      break;
    }
  }
  FailurePredicate fails = [](const History& candidate) {
    CountingSink sink;
    Chronos::CheckHistory(candidate, &sink);
    return sink.count(ViolationType::kInt) > 0;
  };
  ASSERT_TRUE(fails(h));
  ShrinkResult r = ShrinkHistory(h, fails);
  EXPECT_TRUE(fails(r.minimized));
  EXPECT_EQ(r.final_txns, 1u) << "INT is a single-transaction property";
  EXPECT_LE(r.final_ops, 2u);
  // Key/value compaction applies too: the surviving ops live in the
  // dense renamed domain.
  for (const auto& t : r.minimized.txns) {
    for (const auto& op : t.ops) {
      EXPECT_LT(op.key, 4u);
      EXPECT_LT(op.value, 8);
    }
  }
}

// --- the planted-verdict-bug scenario -------------------------------
//
// BuggyFrontierExt is a scratch branch of the key engine's EXT rule:
// per-key version lists sorted by commit_ts, external reads validated
// against the frontier at the read view. The planted bug flips the
// binary-search bound: instead of the latest version at-or-before the
// view (std::upper_bound, then step back), it validates against the
// first version AFTER the view when one exists. On any history where
// some key is written again after a reader's snapshot with a different
// value, the scratch checker reports a bogus EXT violation.
size_t BuggyFrontierExt(const History& h) {
  std::map<Key, std::vector<std::pair<Timestamp, Value>>> versions;
  for (const Transaction& t : h.txns) {
    std::map<Key, Value> last;
    for (const Op& op : t.ops) {
      if (op.type == OpType::kWrite) last[op.key] = op.value;
    }
    for (const auto& [key, value] : last) {
      versions[key].emplace_back(t.commit_ts, value);
    }
  }
  for (auto& [key, list] : versions) std::sort(list.begin(), list.end());

  size_t ext = 0;
  for (const Transaction& t : h.txns) {
    if (!t.TimestampsOrdered()) continue;
    std::map<Key, Value> seen;
    for (const Op& op : t.ops) {
      if (op.type == OpType::kWrite) {
        seen[op.key] = op.value;
      } else if (op.type == OpType::kRead && !seen.count(op.key)) {
        seen[op.key] = op.value;
        Value expect = kValueInit;
        auto it = versions.find(op.key);
        if (it != versions.end()) {
          auto vit = std::upper_bound(
              it->second.begin(), it->second.end(), t.start_ts,
              [](Timestamp ts, const auto& v) { return ts < v.first; });
          // BUG (flipped bound): the frontier is *std::prev(vit); taking
          // *vit reads the future.
          if (vit != it->second.end()) {
            expect = vit->second;
          } else if (vit != it->second.begin()) {
            expect = std::prev(vit)->second;
          }
        }
        if (expect != op.value) ++ext;
      }
    }
  }
  return ext;
}

TEST(ShrinkTest, PlantedFrontierBugIsCaughtAndShrunkToTinyRepro) {
  // Differential predicate: the scratch checker's verdict differs from
  // Chronos's. The fuzz loop below finds a triggering history; the
  // shrinker must reduce it to <= 6 transactions (the minimal shape is
  // writer + reader, possibly plus the initial-value write).
  FailurePredicate disagrees = [](const History& candidate) {
    CountingSink sink;
    Chronos::CheckHistory(candidate, &sink);
    bool chronos_detects = sink.total() > 0;
    bool buggy_detects = BuggyFrontierExt(candidate) > 0;
    return chronos_detects != buggy_detects;
  };

  History found;
  bool caught = false;
  for (uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
    workload::WorkloadParams p;
    p.txns = 150;
    p.sessions = 6;
    p.keys = 4;       // few keys: every key is rewritten many times
    p.read_ratio = 0.5;
    p.seed = seed;
    History h = workload::GenerateDefaultHistory(p);
    if (disagrees(h)) {
      found = std::move(h);
      caught = true;
    }
  }
  ASSERT_TRUE(caught) << "differential fuzzing failed to catch the "
                         "planted flipped-comparison bug";

  ShrinkResult r = ShrinkHistory(found, disagrees);
  EXPECT_TRUE(disagrees(r.minimized));
  EXPECT_LE(r.final_txns, 6u)
      << "shrinker left " << r.final_txns << " of " << r.initial_txns
      << " transactions";
  EXPECT_LT(r.final_txns, r.initial_txns);
}

}  // namespace
}  // namespace chronos::fuzz
