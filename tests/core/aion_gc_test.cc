// AION garbage collection: safe-watermark clamping, spill-and-reload for
// stragglers below the watermark, and verdict equivalence with and
// without GC.
#include <filesystem>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "core/aion.h"
#include "core/chronos.h"

namespace chronos {
namespace {

using testing::HistoryBuilder;

std::string TempSpillDir(const char* name) {
  return chronos::testing::UniqueTempDir(name);
}

// A chain of writers/readers on one key, delivered in order.
History ChainHistory(uint64_t n) {
  HistoryBuilder b;
  for (uint64_t i = 0; i < n; ++i) {
    Timestamp base = 10 * (i + 1);
    b.Txn(i + 1, static_cast<SessionId>(i % 4), i / 4, base, base + 5)
        .R(1, i == 0 ? kValueInit : static_cast<Value>(i))
        .W(1, static_cast<Value>(i + 1));
  }
  return b.Build();
}

TEST(AionGcTest, GcClampsToUnfinalizedViews) {
  History h = ChainHistory(10);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1u << 30;  // nothing finalizes
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : h.txns) aion.OnTransaction(t, now++);
  Timestamp wm = aion.Gc(1000);
  // The oldest unfinalized view (first txn's start at ts 10) blocks GC.
  EXPECT_LT(wm, 10u);
  EXPECT_EQ(aion.GetFootprint().live_txns, 10u);
}

TEST(AionGcTest, GcEvictsFinalizedPrefix) {
  History h = ChainHistory(10);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1;  // finalize almost immediately
  opt.spill_dir = TempSpillDir("gc_prefix");
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : h.txns) aion.OnTransaction(t, now += 10);
  aion.AdvanceTime(now + 100);  // all finalized
  Timestamp wm = aion.Gc(65);   // up to txn 6's commit
  EXPECT_EQ(wm, 65u);
  EXPECT_EQ(aion.GetFootprint().live_txns, 4u);
  EXPECT_EQ(sink.total(), 0u);
  std::filesystem::remove_all(opt.spill_dir);
}

TEST(AionGcTest, StragglerBelowWatermarkUsesSpilledVersions) {
  // Writers at cts 15, 25; reader straggler with view between them must
  // be justified against the *spilled* ts-15 version after GC.
  HistoryBuilder b;
  b.Txn(1, 0, 0, 10, 15).W(1, 1);
  b.Txn(2, 1, 0, 20, 25).W(1, 2);
  b.Txn(3, 2, 0, 30, 35).W(1, 3);
  History writers = b.Build();
  Transaction straggler;
  {
    HistoryBuilder sb;
    sb.Txn(4, 3, 0, 17, 17).R(1, 1);  // view 17: sees ts-15 version
    straggler = sb.Build().txns[0];
  }
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1;
  opt.spill_dir = TempSpillDir("gc_straggler");
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : writers.txns) aion.OnTransaction(t, now += 10);
  aion.AdvanceTime(1000);
  aion.Gc(26);  // evicts ts-15 (ts-25 kept as base), watermark 26
  ASSERT_EQ(aion.watermark(), 26u);
  aion.OnTransaction(straggler, 2000);
  aion.Finish();
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u)
      << "spilled version must justify the straggler's read";
  EXPECT_GE(aion.stats().spill_reloads, 1u);
  std::filesystem::remove_all(opt.spill_dir);
}

TEST(AionGcTest, StragglerConflictFoundInSpilledIntervals) {
  // Writer interval [10,15] gets spilled; a straggler writing the same
  // key with an overlapping span [12,14] must still be flagged.
  HistoryBuilder b;
  b.Txn(1, 0, 0, 10, 15).W(1, 1);
  b.Txn(2, 1, 0, 20, 25).W(1, 2);
  History writers = b.Build();
  Transaction straggler;
  {
    HistoryBuilder sb;
    sb.Txn(3, 2, 0, 12, 14).W(1, 9);
    straggler = sb.Build().txns[0];
  }
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1;
  opt.spill_dir = TempSpillDir("gc_conflict");
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : writers.txns) aion.OnTransaction(t, now += 10);
  aion.AdvanceTime(1000);
  aion.Gc(19);
  ASSERT_EQ(aion.watermark(), 19u);
  aion.OnTransaction(straggler, 2000);
  aion.Finish();
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 1u);
  std::filesystem::remove_all(opt.spill_dir);
}

TEST(AionGcTest, ShadowedStragglerDoesNotDisturbLaterReaders) {
  // Straggler commits below the watermark *behind* a retained base
  // version: readers above the watermark already saw the base and must
  // not be re-flagged.
  HistoryBuilder b;
  b.Txn(1, 0, 0, 10, 15).W(1, 1);
  b.Txn(2, 1, 0, 20, 25).W(1, 2);
  b.Txn(3, 2, 0, 30, 30).R(1, 2);  // justified by ts-25 version
  History head = b.Build();
  Transaction straggler;
  {
    HistoryBuilder sb;
    sb.Txn(4, 3, 0, 11, 12).W(1, 9);  // lands before ts-15; shadowed
    straggler = sb.Build().txns[0];
  }
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1;
  opt.spill_dir = TempSpillDir("gc_shadow");
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : head.txns) aion.OnTransaction(t, now += 10);
  aion.AdvanceTime(1000);
  aion.Gc(26);
  aion.OnTransaction(straggler, 2000);
  aion.Finish();
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u);
  std::filesystem::remove_all(opt.spill_dir);
}

TEST(AionGcTest, ReplayedTidDoesNotPinTheWatermark) {
  // A duplicate tid with fresh timestamps must not leave a phantom
  // unfinalized view behind (which would clamp every future GC), but its
  // writes must still land in the frontier for later honest readers.
  HistoryBuilder b;
  b.Txn(1, 0, 0, 10, 15).W(1, 1);
  b.Txn(1, 0, 1, 30, 35).W(1, 2);  // same tid replayed
  b.Txn(2, 1, 0, 40, 45).R(1, 2).W(1, 3);
  History h = b.Build();
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1;
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : h.txns) aion.OnTransaction(t, now += 10);
  aion.AdvanceTime(1000);  // everything finalizes
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u)
      << "the replay's write at ts 35 must justify the read of value 2";
  EXPECT_EQ(aion.Gc(44), 44u)
      << "watermark must advance past the replayed tid's views";
}

TEST(AionGcTest, GcToLiveTargetReducesFootprint) {
  History h = ChainHistory(20);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1;
  opt.spill_dir = TempSpillDir("gc_target");
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : h.txns) aion.OnTransaction(t, now += 10);
  aion.AdvanceTime(now + 100);
  aion.GcToLiveTarget(5);
  EXPECT_LE(aion.GetFootprint().live_txns, 5u);
  EXPECT_EQ(sink.total(), 0u);
  std::filesystem::remove_all(opt.spill_dir);
}

TEST(AionGcTest, StragglerReloadAcrossMultipleSpilledEpochs) {
  // Several GC passes spill several epochs; a straggler whose view falls
  // below the final watermark must reload spilled state (spill_reloads
  // increments) and produce the same verdict as an un-GC'd run.
  History h = ChainHistory(12);  // writers at cts 15, 25, ..., 125
  Transaction straggler;
  {
    HistoryBuilder sb;
    // View 27 is justified by the second writer's ts-25 version (value 2),
    // which the first GC pass evicts. Fresh session: ChainHistory uses
    // sids 0-3.
    sb.Txn(100, 4, 0, 27, 27).R(1, 2);
    straggler = sb.Build().txns[0];
  }

  // Reference: no GC at all.
  CountingSink ref;
  {
    Aion::Options opt;
    opt.ext_timeout_ms = 1;
    Aion aion(opt, &ref);
    uint64_t now = 0;
    for (const Transaction& t : h.txns) aion.OnTransaction(t, now += 10);
    aion.AdvanceTime(1000);
    aion.OnTransaction(straggler, 2000);
    aion.Finish();
  }
  ASSERT_EQ(ref.count(ViolationType::kExt), 0u);

  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1;
  opt.spill_dir = TempSpillDir("gc_multi_epoch");
  Aion aion(opt, &sink);
  uint64_t now = 0;
  size_t fed = 0;
  for (const Transaction& t : h.txns) {
    aion.OnTransaction(t, now += 10);
    aion.AdvanceTime(now + 100);  // finalize everything so GC can move
    if (++fed % 4 == 0) aion.Gc(t.commit_ts + 1);
  }
  EXPECT_GE(aion.stats().gc_passes, 2u) << "multiple epochs must be spilled";
  ASSERT_GT(aion.watermark(), 27u) << "straggler must arrive below watermark";

  uint64_t reloads_before = aion.stats().spill_reloads;
  aion.OnTransaction(straggler, 2000);
  aion.Finish();
  EXPECT_GT(aion.stats().spill_reloads, reloads_before)
      << "below-watermark view must hit the spill store";
  EXPECT_EQ(sink.count(ViolationType::kExt), ref.count(ViolationType::kExt));
  EXPECT_EQ(sink.count(ViolationType::kInt), ref.count(ViolationType::kInt));
  EXPECT_EQ(sink.count(ViolationType::kNoConflict),
            ref.count(ViolationType::kNoConflict));
  std::filesystem::remove_all(opt.spill_dir);
}

TEST(AionGcTest, VerdictsUnchangedByAggressiveGc) {
  History h = ChainHistory(30);
  // Corrupt one read to create a known EXT violation.
  h.txns[20].ops[0].value = 999;
  CountingSink ref;
  Chronos::CheckHistory(h, &ref);
  ASSERT_EQ(ref.count(ViolationType::kExt), 1u);

  CountingSink sink;
  std::string dir = TempSpillDir("gc_equiv");
  testing::RunAionToEnd(h.txns, Aion::Mode::kSi, &sink, dir,
                        /*gc_every=*/4, /*gc_target=*/2,
                        /*ext_timeout=*/1);
  EXPECT_EQ(sink.count(ViolationType::kExt), ref.count(ViolationType::kExt));
  EXPECT_EQ(sink.count(ViolationType::kInt), ref.count(ViolationType::kInt));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace chronos
