// Incremental-accounting invariants of the flat hot-path structures:
// VersionedKv's running version/byte counters and trigger-heap GC, and
// OngoingIndex's running interval counter, must stay exact under every
// mutation order (in-order puts, out-of-order puts, GC, restore).
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <tuple>
#include <utility>
#include <vector>

#include "core/interval_tree.h"
#include "core/versioned_kv.h"

namespace chronos {
namespace {

TEST(VersionedKvAccountingTest, TotalVersionsTracksPutEvictRestore) {
  VersionedKv kv;
  EXPECT_EQ(kv.TotalVersions(), 0u);
  kv.Put(1, 10, 1, 100);
  kv.Put(1, 20, 2, 101);
  kv.Put(2, 15, 5, 102);
  EXPECT_EQ(kv.TotalVersions(), 3u);

  std::vector<std::tuple<Key, Timestamp, VersionEntry>> evicted;
  EXPECT_EQ(kv.CollectUpTo(25, &evicted), 1u);  // key 1: ts-10 out
  EXPECT_EQ(kv.TotalVersions(), 2u);

  for (const auto& [k, ts, e] : evicted) kv.Restore(k, ts, e);
  EXPECT_EQ(kv.TotalVersions(), 3u);
  EXPECT_EQ(kv.GetAtOrBefore(1, 15).value, 1);
}

TEST(VersionedKvAccountingTest, ApproxBytesGrowsAndShrinks) {
  VersionedKv kv;
  size_t empty = kv.ApproxBytes();
  for (int i = 0; i < 1000; ++i) {
    kv.Put(i % 10, static_cast<Timestamp>(i + 1), i, i);
  }
  size_t full = kv.ApproxBytes();
  EXPECT_GT(full, empty);
  kv.CollectUpTo(900);
  EXPECT_LT(kv.ApproxBytes(), full);
}

TEST(VersionedKvAccountingTest, OutOfOrderPutKeepsChainSorted) {
  VersionedKv kv;
  kv.Put(1, 30, 3, 103);
  kv.Put(1, 10, 1, 101);  // straggler below the chain head
  kv.Put(1, 20, 2, 102);  // straggler in the middle
  EXPECT_EQ(kv.GetAtOrBefore(1, 15).value, 1);
  EXPECT_EQ(kv.GetAtOrBefore(1, 25).value, 2);
  EXPECT_EQ(kv.GetAtOrBefore(1, 35).value, 3);
  EXPECT_EQ(kv.NextVersionAfter(1, 10).value(), 20u);
  EXPECT_FALSE(kv.Put(1, 20, 9, 104)) << "duplicate ts must be rejected";
  EXPECT_EQ(kv.TotalVersions(), 3u);
}

TEST(VersionedKvAccountingTest, GcCollectsKeyDirtiedByOutOfOrderPut) {
  // A key armed for GC, collected, then re-dirtied below the old
  // watermark by a straggler: the trigger heap must re-arm it.
  VersionedKv kv;
  kv.Put(1, 10, 1, 101);
  kv.Put(1, 50, 5, 105);
  EXPECT_EQ(kv.CollectUpTo(60), 1u);  // ts-10 out, ts-50 is the base
  kv.Put(1, 70, 7, 107);
  kv.Put(1, 60, 6, 106);  // out-of-order: between base and head
  EXPECT_EQ(kv.CollectUpTo(80), 2u) << "ts-50 and ts-60 must be evicted";
  EXPECT_EQ(kv.GetAtOrBefore(1, 100).value, 7);
  EXPECT_EQ(kv.TotalVersions(), 1u);
}

TEST(VersionedKvAccountingTest, SparseGcMatchesFullScanSemantics) {
  // Randomized: O(dirty) GC must evict exactly what the seed's full-key
  // scan evicted — per key, everything strictly below the latest version
  // at or under the watermark.
  std::mt19937_64 rng(42);
  VersionedKv kv;
  std::map<Key, std::map<Timestamp, Value>> reference;
  for (int i = 0; i < 2000; ++i) {
    Key k = rng() % 50;
    Timestamp ts = 1 + rng() % 10000;
    Value v = static_cast<Value>(rng() % 1000);
    bool ok = kv.Put(k, ts, v, i);
    bool ref_ok = reference[k].emplace(ts, v).second;
    ASSERT_EQ(ok, ref_ok);
  }
  for (Timestamp wm : {2000u, 5000u, 5000u, 9000u}) {
    size_t expect_evicted = 0;
    for (auto& [k, m] : reference) {
      auto end = m.upper_bound(wm);
      if (end == m.begin()) continue;
      --end;
      while (m.begin() != end) {
        m.erase(m.begin());
        ++expect_evicted;
      }
    }
    EXPECT_EQ(kv.CollectUpTo(wm), expect_evicted) << "watermark " << wm;
    size_t ref_total = 0;
    for (const auto& [k, m] : reference) ref_total += m.size();
    ASSERT_EQ(kv.TotalVersions(), ref_total);
    for (const auto& [k, m] : reference) {
      for (const auto& [ts, v] : m) {
        ASSERT_EQ(kv.GetAtOrBefore(k, ts).value, v)
            << "key " << k << " ts " << ts;
      }
    }
  }
}

TEST(OngoingIndexAccountingTest, TotalIntervalsTracksAddEvictRestore) {
  OngoingIndex idx;
  EXPECT_EQ(idx.TotalIntervals(), 0u);
  idx.Add(1, 10, 20, 100);
  idx.Add(1, 30, 40, 101);
  idx.Add(2, 5, 50, 102);
  EXPECT_EQ(idx.TotalIntervals(), 3u);

  std::vector<std::pair<Key, WriteInterval>> evicted;
  EXPECT_EQ(idx.CollectUpTo(25, &evicted), 1u);  // key 1's [10,20]
  EXPECT_EQ(idx.TotalIntervals(), 2u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].second.tid, 100u);

  idx.Restore(evicted[0].first, evicted[0].second);
  EXPECT_EQ(idx.TotalIntervals(), 3u);
  EXPECT_EQ(idx.Overlapping(1, 12, 18).size(), 1u);
}

TEST(OngoingIndexAccountingTest, RepeatedGcOnlyTouchesDirtyKeys) {
  OngoingIndex idx;
  for (Key k = 0; k < 100; ++k) {
    idx.Add(k, 1000 + k, 2000 + k, k);  // all high: clean at low watermark
  }
  idx.Add(7, 1, 2, 999);
  EXPECT_EQ(idx.CollectUpTo(10, nullptr), 1u);
  EXPECT_EQ(idx.CollectUpTo(10, nullptr), 0u) << "second pass is a no-op";
  EXPECT_EQ(idx.TotalIntervals(), 100u);
  EXPECT_EQ(idx.CollectUpTo(2100, nullptr), 100u);
  EXPECT_EQ(idx.TotalIntervals(), 0u);
}

}  // namespace
}  // namespace chronos
