// Unit tests for the timestamp-versioned data structures: VersionedKv
// (frontier_ts), IntervalTree/OngoingIndex (ongoing_ts), EventTimeline,
// SmallMap, and the spill store.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>

#include "../testutil.h"
#include "core/event_timeline.h"
#include "core/interval_tree.h"
#include "core/list_kv.h"
#include "core/small_map.h"
#include "core/spill.h"
#include "core/state_io.h"
#include "core/versioned_kv.h"

namespace chronos {
namespace {

TEST(VersionedKvTest, LookupFallsBackToInitialValue) {
  VersionedKv kv;
  EXPECT_EQ(kv.GetAtOrBefore(1, 100).value, kValueInit);
  EXPECT_EQ(kv.GetAtOrBefore(1, 100).tid, kTxnNone);
}

TEST(VersionedKvTest, InclusiveAndExclusiveBounds) {
  VersionedKv kv;
  ASSERT_TRUE(kv.Put(1, 10, 7, 100));
  EXPECT_EQ(kv.GetAtOrBefore(1, 10).value, 7);   // SI view: cts <= view
  EXPECT_EQ(kv.GetBefore(1, 10).value, kValueInit);  // SER view: cts < view
  EXPECT_EQ(kv.GetBefore(1, 11).value, 7);
}

TEST(VersionedKvTest, DuplicateTimestampRejected) {
  VersionedKv kv;
  ASSERT_TRUE(kv.Put(1, 10, 7, 100));
  EXPECT_FALSE(kv.Put(1, 10, 8, 101));
}

TEST(VersionedKvTest, NextVersionAfterBoundsRecheckWindow) {
  VersionedKv kv;
  kv.Put(1, 10, 1, 100);
  kv.Put(1, 30, 3, 101);
  EXPECT_EQ(kv.NextVersionAfter(1, 10).value(), 30u);
  EXPECT_EQ(kv.NextVersionAfter(1, 5).value(), 10u);
  EXPECT_FALSE(kv.NextVersionAfter(1, 30).has_value());
  EXPECT_FALSE(kv.NextVersionAfter(2, 0).has_value());
}

TEST(VersionedKvTest, CollectKeepsBaseVersion) {
  VersionedKv kv;
  kv.Put(1, 10, 1, 100);
  kv.Put(1, 20, 2, 101);
  kv.Put(1, 30, 3, 102);
  std::vector<std::tuple<Key, Timestamp, VersionEntry>> evicted;
  EXPECT_EQ(kv.CollectUpTo(25, &evicted), 1u);  // ts-10 evicted, ts-20 kept
  EXPECT_EQ(evicted.size(), 1u);
  EXPECT_EQ(kv.GetAtOrBefore(1, 25).value, 2) << "base remains queryable";
  EXPECT_EQ(kv.GetAtOrBefore(1, 35).value, 3);
}

TEST(VersionedKvTest, RestoreReloadsEvictedVersion) {
  VersionedKv kv;
  kv.Put(1, 10, 1, 100);
  kv.Put(1, 20, 2, 101);
  std::vector<std::tuple<Key, Timestamp, VersionEntry>> evicted;
  kv.CollectUpTo(25, &evicted);
  for (const auto& [k, ts, e] : evicted) kv.Restore(k, ts, e);
  EXPECT_EQ(kv.GetAtOrBefore(1, 15).value, 1);
}

TEST(IntervalTreeTest, OverlapQueryFindsContainedAndSpanning) {
  IntervalTree tree;
  tree.Insert({10, 20, 1});
  tree.Insert({15, 25, 2});
  tree.Insert({30, 40, 3});
  std::vector<WriteInterval> out;
  tree.QueryOverlap(18, 22, &out);
  ASSERT_EQ(out.size(), 2u);
  out.clear();
  tree.QueryOverlap(26, 29, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  tree.QueryStab(35, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tid, 3u);
}

TEST(IntervalTreeTest, LongSpanningIntervalIsNotMissed) {
  // The pathological case a sorted-disjoint map would miss: an old
  // interval spanning far beyond its successors.
  IntervalTree tree;
  tree.Insert({0, 100, 1});
  tree.Insert({50, 60, 2});
  tree.Insert({55, 58, 3});
  std::vector<WriteInterval> out;
  tree.QueryOverlap(55, 58, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(IntervalTreeTest, EraseRemovesExactInterval) {
  IntervalTree tree;
  tree.Insert({10, 20, 1});
  tree.Insert({10, 30, 2});
  EXPECT_TRUE(tree.Erase(10, 1));
  EXPECT_FALSE(tree.Erase(10, 1));
  std::vector<WriteInterval> out;
  tree.QueryStab(15, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tid, 2u);
}

TEST(IntervalTreeTest, EvictEndingUpToRemovesOnlyOldIntervals) {
  IntervalTree tree;
  tree.Insert({1, 5, 1});
  tree.Insert({2, 50, 2});
  tree.Insert({6, 9, 3});
  std::vector<WriteInterval> evicted;
  EXPECT_EQ(tree.EvictEndingUpTo(10, &evicted), 2u);
  EXPECT_EQ(tree.size(), 1u);
  std::vector<WriteInterval> out;
  tree.QueryStab(25, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tid, 2u);
}

TEST(IntervalTreeTest, RandomizedAgainstBruteForce) {
  std::mt19937_64 rng(7);
  IntervalTree tree;
  std::vector<WriteInterval> reference;
  for (int i = 0; i < 500; ++i) {
    Timestamp s = rng() % 1000;
    WriteInterval iv{s, s + rng() % 50, static_cast<TxnId>(i)};
    tree.Insert(iv);
    reference.push_back(iv);
  }
  for (int q = 0; q < 200; ++q) {
    Timestamp lo = rng() % 1000, hi = lo + rng() % 100;
    std::vector<WriteInterval> got;
    tree.QueryOverlap(lo, hi, &got);
    size_t expected = 0;
    for (const auto& iv : reference) {
      if (iv.start <= hi && iv.end >= lo) ++expected;
    }
    ASSERT_EQ(got.size(), expected) << "query [" << lo << "," << hi << "]";
  }
}

TEST(EventTimelineTest, InsertRejectsDuplicateTimestamps) {
  EventTimeline tl;
  Transaction a;
  a.tid = 1;
  a.start_ts = 10;
  a.commit_ts = 20;
  EXPECT_TRUE(tl.Insert(a));
  Transaction b;
  b.tid = 2;
  b.start_ts = 20;  // collides with a's commit at the same slot? different
  b.commit_ts = 30; // kind, but HasTimestamp must still see it
  EXPECT_TRUE(tl.HasTimestamp(20));
  EXPECT_EQ(tl.size(), 2u);
}

TEST(EventTimelineTest, EraseUpToDropsPrefix) {
  EventTimeline tl;
  for (TxnId i = 1; i <= 5; ++i) {
    Transaction t;
    t.tid = i;
    t.start_ts = i * 10;
    t.commit_ts = i * 10 + 5;
    ASSERT_TRUE(tl.Insert(t));
  }
  EXPECT_EQ(tl.EraseUpTo(25), 4u);  // events at 10, 15, 20, 25
  EXPECT_EQ(tl.size(), 6u);
}

TEST(SmallMapTest, PutFindClear) {
  SmallMap<uint64_t, int> m;
  EXPECT_EQ(m.Find(1), nullptr);
  m.Put(1, 10);
  m.Put(2, 20);
  m.Put(1, 11);  // overwrite
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 11);
  EXPECT_EQ(m.size(), 2u);
  m.Clear();
  EXPECT_TRUE(m.empty());
}

TEST(SpillStoreTest, RoundTripsPayload) {
  std::string dir = chronos::testing::UniqueTempDir("spill_rt");
  SpillStore store(dir);
  SpillPayload payload;
  payload.max_ts = 100;
  payload.versions.emplace_back(1, 10, VersionEntry{7, 42});
  payload.versions.emplace_back(2, 20, VersionEntry{-3, 43});
  payload.intervals.emplace_back(1, WriteInterval{5, 10, 42});
  uint64_t id = store.Spill(payload);
  ASSERT_NE(id, 0u);
  SpillPayload loaded;
  ASSERT_EQ(store.Load(id, &loaded), SpillStore::LoadStatus::kOk);
  ASSERT_EQ(loaded.versions.size(), 2u);
  EXPECT_EQ(std::get<0>(loaded.versions[0]), 1u);
  EXPECT_EQ(std::get<2>(loaded.versions[1]).value, -3);
  ASSERT_EQ(loaded.intervals.size(), 1u);
  EXPECT_EQ(loaded.intervals[0].second.tid, 42u);
  std::filesystem::remove_all(dir);
}

TEST(SpillStoreTest, NonPersistentModeDiscards) {
  SpillStore store("");
  SpillPayload payload;
  payload.versions.emplace_back(1, 10, VersionEntry{7, 42});
  EXPECT_EQ(store.Spill(payload), 0u);
  EXPECT_FALSE(store.persistent());
}

TEST(SpillStoreTest, EmptyPayloadNotSpilled) {
  std::string dir = chronos::testing::UniqueTempDir("spill_empty");
  SpillStore store(dir);
  EXPECT_EQ(store.Spill(SpillPayload{}), 0u);
  EXPECT_EQ(store.NumEpochs(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(SpillStoreTest, DistinguishesMissingFromCorruptEpochs) {
  std::string dir = chronos::testing::UniqueTempDir("spill_tristate");
  std::filesystem::remove_all(dir);
  SpillStore store(dir);
  SpillPayload payload;
  payload.max_ts = 50;
  payload.versions.emplace_back(1, 10, VersionEntry{7, 42});
  uint64_t id = store.Spill(payload);
  ASSERT_NE(id, 0u);

  SpillPayload loaded;
  EXPECT_EQ(store.Load(id, &loaded), SpillStore::LoadStatus::kOk);
  // An epoch id that was never spilled.
  EXPECT_EQ(store.Load(id + 99, &loaded), SpillStore::LoadStatus::kMissing);

  // A file that vanished (e.g. deleted out from under the checker).
  std::string path = store.PathFor(id);
  std::string bytes;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = fread(buf, 1, sizeof(buf), f);
    bytes.assign(buf, n);
    fclose(f);
  }
  std::filesystem::remove(path);
  EXPECT_EQ(store.Load(id, &loaded), SpillStore::LoadStatus::kMissing);

  // A file that is present but unparseable — integrity failure, not a
  // silent miss (counted as CheckerStats::corrupt_spill_epochs by the
  // consulting engine).
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("not a spill epoch\n", f);
    fclose(f);
  }
  EXPECT_EQ(store.Load(id, &loaded), SpillStore::LoadStatus::kCorrupt);

  // Truncations of the real payload must read as corrupt, not kOk.
  for (size_t len = 1; len + 1 < bytes.size(); len += 3) {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(bytes.data(), 1, len, f);
    fclose(f);
    EXPECT_NE(store.Load(id, &loaded), SpillStore::LoadStatus::kOk)
        << "len " << len;
  }
  std::filesystem::remove_all(dir);
}

TEST(ListKvTrimTest, TrimToHashesBaseRegionOnly) {
  ListKv kv;
  ASSERT_TRUE(kv.Put(1, 10, {1, 2}, 100));
  ASSERT_TRUE(kv.Put(1, 20, {3}, 101));
  ASSERT_TRUE(kv.Put(1, 30, {4, 5}, 102));
  // Collapse boundaries <= 20 into the base so its region spans [0, 3).
  std::vector<ListSpillVersion> evicted;
  kv.CollectUpTo(20, &evicted);

  // Horizon below the base: nothing to trim.
  EXPECT_EQ(kv.TrimTo(15), 0u);
  EXPECT_EQ(kv.TrimmedLen(1), 0u);

  // Horizon at the base: its whole region is hashed away.
  EXPECT_EQ(kv.TrimTo(20), 3u);
  EXPECT_EQ(kv.TrimmedLen(1), 3u);
  EXPECT_EQ(kv.TotalTrimmed(), 3u);
  // Idempotent: already trimmed this far.
  EXPECT_EQ(kv.TrimTo(20), 0u);

  ListKv::Prefix p = kv.PrefixAt(1, 30, /*inclusive=*/true);
  EXPECT_EQ(p.len, 5u);
  EXPECT_EQ(p.trimmed, 3u);
  EXPECT_FALSE(p.hash_tainted);
  const Value expect[] = {1, 2, 3};
  EXPECT_EQ(p.trimmed_hash, Fnv1a(expect, sizeof(expect)));
  ASSERT_NE(p.data, nullptr);
  EXPECT_EQ(p.data[0], 4);  // data starts at the trim cut
  EXPECT_EQ(p.data[1], 5);

  // A view resolving at the base sees a fully hashed prefix.
  ListKv::Prefix base = kv.PrefixAt(1, 20, /*inclusive=*/true);
  EXPECT_EQ(base.len, 3u);
  EXPECT_EQ(base.trimmed, 3u);
}

TEST(ListKvTrimTest, StragglerIntoTrimmedRegionTaintsHash) {
  ListKv kv;
  ASSERT_TRUE(kv.Put(1, 10, {1, 2}, 100));
  ASSERT_TRUE(kv.Put(1, 30, {3}, 101));
  std::vector<ListSpillVersion> evicted;
  kv.CollectUpTo(10, &evicted);
  ASSERT_EQ(kv.TrimTo(10), 2u);

  // A below-base straggler landing inside the hashed region is absorbed
  // by it: not materialized, but the hash is no longer verifiable.
  bool into_trimmed = false;
  ASSERT_TRUE(kv.PutBelowBase(1, 5, {9}, 102, {}, &into_trimmed));
  EXPECT_TRUE(into_trimmed);
  EXPECT_EQ(kv.TrimmedLen(1), 3u);

  ListKv::Prefix p = kv.PrefixAt(1, 30, /*inclusive=*/true);
  EXPECT_EQ(p.len, 4u);
  EXPECT_EQ(p.trimmed, 3u);
  EXPECT_TRUE(p.hash_tainted);
  ASSERT_NE(kv.MergedBelow(1), nullptr);  // content kept for below-base reads
}

}  // namespace
}  // namespace chronos
