// CHRONOS on list histories: append/read-list semantics, INT/EXT
// classification for lists, NOCONFLICT on concurrent appends.
#include "core/chronos_list.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace chronos {
namespace {

using testing::HistoryBuilder;

TEST(ChronosListTest, AcceptsSimpleAppendChain) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 4).A(1, 101)
                  .Txn(3, 2, 0, 5, 6).L(1, {100, 101})
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosList::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosListTest, EmptyListReadBeforeAnyAppend) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 1).L(1, {})
                  .Txn(2, 1, 0, 2, 3).A(1, 100)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosList::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosListTest, SnapshotExcludesConcurrentAppend) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 6).A(1, 101)
                  .Txn(3, 2, 0, 4, 5).L(1, {100})  // T2 not yet committed
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosList::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosListTest, ObservingUncommittedAppendIsExt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 6).A(1, 101)
                  .Txn(3, 2, 0, 4, 5).L(1, {100, 101})  // sees future append
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
}

TEST(ChronosListTest, ReadsOwnAppendsAfterSnapshot) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 4).A(1, 101).L(1, {100, 101})
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosList::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosListTest, MissingOwnAppendIsInt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100).L(1, {})  // lost own append
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kInt), 1u);
}

TEST(ChronosListTest, ConcurrentAppendersConflict) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).A(1, 100)
                  .Txn(2, 1, 0, 2, 4).A(1, 101)
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 1u);
}

TEST(ChronosListTest, WrongPrefixOrderIsExt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 4).A(1, 101)
                  .Txn(3, 2, 0, 5, 6).L(1, {101, 100})
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
}

// Mismatch reports carry the first divergent element index (and the
// respective lengths), so a shrunk list repro names the exact element.
TEST(ChronosListTest, MismatchReportsFirstDivergentIndex) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 4).A(1, 101)
                  .Txn(3, 2, 0, 5, 6).L(1, {100, 999})
                  .Build();
  CountingSink sink(4);
  ChronosList::CheckHistory(h, &sink);
  ASSERT_EQ(sink.count(ViolationType::kExt), 1u);
  // By value: first() returns a copy, so a reference would dangle.
  const Violation v = sink.first()[0];
  EXPECT_EQ(v.divergence, 1);   // element 0 matches, element 1 differs
  EXPECT_EQ(v.expected, 2);     // frontier length
  EXPECT_EQ(v.got, 2);          // observed (resolved base) length

  // A proper-prefix mismatch diverges at the shorter length.
  History h2 = HistoryBuilder()
                   .Txn(1, 0, 0, 1, 2).A(1, 100)
                   .Txn(2, 1, 0, 3, 4).A(1, 101)
                   .Txn(3, 2, 0, 5, 6).L(1, {100})
                   .Build();
  CountingSink sink2(4);
  ChronosList::CheckHistory(h2, &sink2);
  ASSERT_EQ(sink2.count(ViolationType::kExt), 1u);
  EXPECT_EQ(sink2.first()[0].divergence, 1);
  EXPECT_EQ(sink2.first()[0].expected, 2);
  EXPECT_EQ(sink2.first()[0].got, 1);
}

// A read whose own-append suffix checks out but whose base prefix
// disagrees with the frontier is an EXT violation (external frontier
// problem), not INT — the classification the online checker shares via
// core/list_replay.h.
TEST(ChronosListTest, BadBaseUnderOwnAppendsIsExt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  // Appends 101 then reads [999, 101]: the suffix [101]
                  // matches its own append, the base [999] != [100].
                  .Txn(2, 1, 0, 3, 4).A(1, 101).L(1, {999, 101})
                  .Build();
  CountingSink sink(4);
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kInt), 0u);
  ASSERT_EQ(sink.count(ViolationType::kExt), 1u);
  EXPECT_EQ(sink.first()[0].divergence, 0);
}

// Duplicate timestamps across distinct transactions are reported (and
// the duplicate still replays, matching the register Chronos — the D6
// contract AION deliberately diverges from by skipping).
TEST(ChronosListTest, DuplicateTimestampReported) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 2, 3).A(1, 101)  // start reuses ts 2
                  .Txn(3, 2, 0, 4, 5).L(1, {100, 101})
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kTsDuplicate), 1u);
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u);  // duplicate replayed
}

// Eq. (1)-violating transactions are excluded from replay but still get
// the frontier-independent INT check (mirrors register Chronos).
TEST(ChronosListTest, TsOrderViolationStillChecksInt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 5, 2).A(1, 100).L(1, {})  // start > commit
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kTsOrder), 1u);
  EXPECT_EQ(sink.count(ViolationType::kInt), 1u);
}

// The frontier is the cumulative append sequence in commit order: a
// lost-update pair (overlapping appenders) contributes *both* deltas —
// what MvccStore::ApplyAppend actually does — so a reader seeing only
// the second writer's delta is flagged EXT on top of the NOCONFLICT.
TEST(ChronosListTest, CumulativeFrontierKeepsBothConcurrentDeltas) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).A(1, 100)
                  .Txn(2, 1, 0, 2, 4).A(1, 101)
                  .Txn(3, 2, 0, 5, 6).L(1, {101})  // dropped 100
                  .Build();
  CountingSink sink(4);
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 1u);
  ASSERT_EQ(sink.count(ViolationType::kExt), 1u);
  EXPECT_EQ(sink.first()[1].divergence, 0);  // [100,101] vs [101]

  History ok = HistoryBuilder()
                   .Txn(1, 0, 0, 1, 3).A(1, 100)
                   .Txn(2, 1, 0, 2, 4).A(1, 101)
                   .Txn(3, 2, 0, 5, 6).L(1, {100, 101})
                   .Build();
  CountingSink ok_sink;
  ChronosList::CheckHistory(ok, &ok_sink);
  EXPECT_EQ(ok_sink.count(ViolationType::kExt), 0u);
}

}  // namespace
}  // namespace chronos
