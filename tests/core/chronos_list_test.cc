// CHRONOS on list histories: append/read-list semantics, INT/EXT
// classification for lists, NOCONFLICT on concurrent appends.
#include "core/chronos_list.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace chronos {
namespace {

using testing::HistoryBuilder;

TEST(ChronosListTest, AcceptsSimpleAppendChain) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 4).A(1, 101)
                  .Txn(3, 2, 0, 5, 6).L(1, {100, 101})
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosList::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosListTest, EmptyListReadBeforeAnyAppend) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 1).L(1, {})
                  .Txn(2, 1, 0, 2, 3).A(1, 100)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosList::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosListTest, SnapshotExcludesConcurrentAppend) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 6).A(1, 101)
                  .Txn(3, 2, 0, 4, 5).L(1, {100})  // T2 not yet committed
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosList::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosListTest, ObservingUncommittedAppendIsExt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 6).A(1, 101)
                  .Txn(3, 2, 0, 4, 5).L(1, {100, 101})  // sees future append
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
}

TEST(ChronosListTest, ReadsOwnAppendsAfterSnapshot) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 4).A(1, 101).L(1, {100, 101})
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosList::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosListTest, MissingOwnAppendIsInt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100).L(1, {})  // lost own append
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kInt), 1u);
}

TEST(ChronosListTest, ConcurrentAppendersConflict) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).A(1, 100)
                  .Txn(2, 1, 0, 2, 4).A(1, 101)
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 1u);
}

TEST(ChronosListTest, WrongPrefixOrderIsExt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(1, 100)
                  .Txn(2, 1, 0, 3, 4).A(1, 101)
                  .Txn(3, 2, 0, 5, 6).L(1, {101, 100})
                  .Build();
  CountingSink sink;
  ChronosList::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
}

}  // namespace
}  // namespace chronos
