// Unit tests for AION (Algorithm 3): out-of-order arrival, EXT
// re-checking with flip-flops, timeout finalization, NOCONFLICT via
// interval overlap, and agreement with CHRONOS on arbitrary
// session-preserving arrival orders.
#include "core/aion.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "core/chronos.h"

namespace chronos {
namespace {

using testing::HistoryBuilder;
using testing::RunAionToEnd;
using testing::SessionPreservingShuffle;

History Fig2History() {
  return HistoryBuilder()
      .Txn(1, 0, 0, 1, 2).W(1, 1)
      .Txn(2, 1, 0, 3, 5).W(1, 2)
      .Txn(5, 2, 0, 4, 7).R(1, 1).W(2, 1)
      .Txn(3, 3, 0, 6, 9).R(1, 2).W(2, 2)
      .Txn(4, 4, 0, 8, 10).R(2, 1)
      .Build();
}

// The paper's Example 5: transactions collected in the order T1, T2, T3,
// T4, T5. T4's read of y=1 is a transient EXT violation until straggler
// T5 arrives; the NOCONFLICT between T5 and T3 must still be found.
TEST(AionTest, Example5StragglerClearsFalseExtAndFindsConflict) {
  History h = Fig2History();
  // Arrival order T1, T2, T3, T4, T5 (indices 0, 1, 3, 4, 2).
  std::vector<Transaction> arrivals = {h.txns[0], h.txns[1], h.txns[3],
                                       h.txns[4], h.txns[2]};
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1000;
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : arrivals) aion.OnTransaction(t, now++);
  aion.Finish();

  EXPECT_EQ(sink.count(ViolationType::kExt), 0u) << "T4 was re-justified";
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 1u);
  // T4's (txn, key) EXT verdict flipped exactly once (false -> true).
  EXPECT_EQ(aion.flip_stats().total_flips(), 1u);
  EXPECT_EQ(aion.flip_stats().txns_with_flips(), 1u);
}

TEST(AionTest, InOrderDeliveryMatchesChronosOnFig2) {
  History h = Fig2History();
  CountingSink chronos_sink, aion_sink;
  Chronos::CheckHistory(h, &chronos_sink);
  RunAionToEnd(h.txns, Aion::Mode::kSi, &aion_sink);
  EXPECT_EQ(aion_sink.count(ViolationType::kNoConflict),
            chronos_sink.count(ViolationType::kNoConflict));
  EXPECT_EQ(aion_sink.count(ViolationType::kExt),
            chronos_sink.count(ViolationType::kExt));
}

TEST(AionTest, ExtViolationReportedOnlyAfterTimeout) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 1, 0, 3, 4).R(1, 99)  // wrong value forever
                  .Build();
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 100;
  Aion aion(opt, &sink);
  aion.OnTransaction(h.txns[0], 0);
  aion.OnTransaction(h.txns[1], 1);
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u) << "verdict still tentative";
  aion.AdvanceTime(50);
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u);
  aion.AdvanceTime(200);
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
}

TEST(AionTest, RecheckSkipsFinalizedTransactions) {
  // Reader finalizes (timeout) before the justifying straggler arrives:
  // per Algorithm 3 line 40, the verdict stays final (a false positive
  // the paper's timeout mechanism accepts).
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 1, 0, 3, 4).R(1, 1)
                  .Build();
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 10;
  Aion aion(opt, &sink);
  aion.OnTransaction(h.txns[1], 0);  // reader first: tentative violation
  aion.AdvanceTime(100);             // finalize: EXT reported
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
  aion.OnTransaction(h.txns[0], 101);  // straggler writer
  aion.Finish();
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u) << "no retraction";
}

TEST(AionTest, NoConflictPairReportedOncePerPair) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 20).W(1, 1)
                  .Txn(2, 1, 0, 2, 10).W(1, 2)
                  .Txn(3, 2, 0, 3, 15).W(1, 3)
                  .Build();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    CountingSink sink;
    RunAionToEnd(SessionPreservingShuffle(h, seed), Aion::Mode::kSi, &sink);
    EXPECT_EQ(sink.count(ViolationType::kNoConflict), 3u) << "seed " << seed;
  }
}

TEST(AionTest, SessionOrderViolationDetected) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 0, 2, 3, 4).W(1, 2)  // sno gap
                  .Build();
  CountingSink sink;
  RunAionToEnd(h.txns, Aion::Mode::kSi, &sink);
  EXPECT_EQ(sink.count(ViolationType::kSession), 1u);
}

TEST(AionTest, TsOrderViolationDetectedAndIntStillChecked) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 9, 2).W(1, 5).R(1, 6)
                  .Build();
  CountingSink sink;
  RunAionToEnd(h.txns, Aion::Mode::kSi, &sink);
  EXPECT_EQ(sink.count(ViolationType::kTsOrder), 1u);
  EXPECT_EQ(sink.count(ViolationType::kInt), 1u);
}

TEST(AionTest, DuplicateTimestampDetected) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).W(1, 1)
                  .Txn(2, 1, 0, 3, 5).W(2, 1)
                  .Build();
  CountingSink sink;
  RunAionToEnd(h.txns, Aion::Mode::kSi, &sink);
  EXPECT_EQ(sink.count(ViolationType::kTsDuplicate), 1u);
}

TEST(AionTest, LateWriterBetweenExistingVersionsRechecksOnlyItsWindow) {
  // Versions at ts 2 (v=1) and ts 10 (v=3); readers at 5, 6 and 12.
  // A late writer at ts 4 (v=2) must re-check the readers at 5 and 6 but
  // not the one at 12.
  HistoryBuilder b;
  b.Txn(1, 0, 0, 1, 2).W(1, 1);
  b.Txn(2, 1, 0, 9, 10).W(1, 3);
  b.Txn(3, 2, 0, 5, 5).R(1, 2);   // will be justified by the late writer
  b.Txn(4, 3, 0, 6, 6).R(1, 2);
  b.Txn(5, 4, 0, 12, 12).R(1, 3); // justified by ts-10 version
  b.Txn(6, 5, 0, 3, 4).W(1, 2);   // the straggler
  History h = b.Build();
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1u << 30;
  Aion aion(opt, &sink);
  for (size_t i = 0; i + 1 < h.txns.size(); ++i) {
    aion.OnTransaction(h.txns[i], i);
  }
  aion.OnTransaction(h.txns.back(), 10);  // straggler
  aion.Finish();
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u);
  EXPECT_EQ(aion.stats().ext_rechecks, 2u) << "only readers at 5 and 6";
}

TEST(AionTest, AgreesWithChronosUnderArbitraryArrivalOrders) {
  History h = Fig2History();
  CountingSink ref;
  Chronos::CheckHistory(h, &ref);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    CountingSink sink;
    RunAionToEnd(SessionPreservingShuffle(h, seed), Aion::Mode::kSi, &sink);
    EXPECT_EQ(sink.count(ViolationType::kExt), ref.count(ViolationType::kExt))
        << "seed " << seed;
    EXPECT_EQ(sink.count(ViolationType::kNoConflict),
              ref.count(ViolationType::kNoConflict))
        << "seed " << seed;
    EXPECT_EQ(sink.count(ViolationType::kInt), ref.count(ViolationType::kInt))
        << "seed " << seed;
  }
}

TEST(AionSerTest, CommitOrderReadViewEnforced) {
  // Write skew: SER checker must flag what SI admits.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).R(1, 0).W(2, 7)
                  .Txn(2, 1, 0, 2, 4).R(2, 0).W(1, 8)
                  .Build();
  CountingSink si_sink, ser_sink;
  RunAionToEnd(h.txns, Aion::Mode::kSi, &si_sink);
  RunAionToEnd(h.txns, Aion::Mode::kSer, &ser_sink);
  EXPECT_EQ(si_sink.total(), 0u);
  EXPECT_EQ(ser_sink.count(ViolationType::kExt), 1u);
}

TEST(AionSerTest, OutOfOrderArrivalStillJustifiesReads) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 5)
                  .Txn(2, 1, 0, 3, 4).R(1, 5)
                  .Build();
  // Reader first, then writer.
  std::vector<Transaction> arrivals = {h.txns[1], h.txns[0]};
  CountingSink sink;
  RunAionToEnd(arrivals, Aion::Mode::kSer, &sink);
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u);
}

TEST(AionTest, FootprintGrowsWithoutGc) {
  HistoryBuilder b;
  for (uint64_t i = 0; i < 50; ++i) {
    b.Txn(i + 1, 0, i, 10 * i + 1, 10 * i + 2).W(i % 7, static_cast<Value>(i));
  }
  History h = b.Build();
  CountingSink sink;
  Aion::Options opt;
  Aion aion(opt, &sink);
  uint64_t now = 0;
  for (const Transaction& t : h.txns) aion.OnTransaction(t, now++);
  EXPECT_EQ(aion.GetFootprint().live_txns, 50u);
  EXPECT_EQ(aion.GetFootprint().versions, 50u);
}

}  // namespace
}  // namespace chronos
