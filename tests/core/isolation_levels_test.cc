// Per-transaction isolation levels: the per-level timestamp-registration
// table at the ingress (SER {commit}, SI {start, commit}, RC/RA none),
// the per-level SESSION rules, the RC/RA membership read semantics, the
// codec round-trip for iso= tags, AssignLevels determinism, and the
// single-level equivalence between the mixed offline mirror and the
// pre-existing single-level checkers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../testutil.h"
#include "core/aion.h"
#include "core/chronos.h"
#include "core/online_checker.h"
#include "core/txn_ingress.h"
#include "core/types.h"
#include "core/violation.h"
#include "hist/codec.h"
#include "workload/generator.h"

namespace chronos {
namespace {

using chronos::testing::DriveToEnd;
using chronos::testing::HistoryBuilder;

// ---------------------------------------------------------------------------
// Ingress registration table, pinned via TxnIngress::used_ts_count().

/// Swallows the footprint half of admission; the registration tests only
/// exercise the transaction-scoped half (AdmitTxn).
class NullDispatch : public TxnIngress::Dispatch {
 public:
  void DispatchTxn(const KeyEngine::TxnCtx&, ClassifiedOps&&, bool,
                   uint64_t) override {}
  void DispatchFinalize(TxnId) override {}
  void DispatchGc(Timestamp) override {}
};

Transaction MakeTxn(TxnId tid, SessionId sid, uint64_t sno, Timestamp sts,
                    Timestamp cts, IsolationLevel iso) {
  Transaction t;
  t.tid = tid;
  t.sid = sid;
  t.sno = sno;
  t.start_ts = sts;
  t.commit_ts = cts;
  t.iso = iso;
  t.ops.push_back({OpType::kWrite, 1, static_cast<Value>(tid), 0});
  return t;
}

struct IngressHarness {
  CheckerOptions opt;
  CheckerStats stats;
  std::vector<Violation> reported;
  NullDispatch dispatch;
  TxnIngress ingress;

  explicit IngressHarness(CheckMode mode)
      : opt(MakeOpt(mode)),
        ingress(opt, &stats,
                [this](Timestamp, const Violation& v) { reported.push_back(v); },
                &dispatch) {}

  static CheckerOptions MakeOpt(CheckMode mode) {
    CheckerOptions o;
    o.mode = mode;
    o.ext_timeout_ms = 1u << 30;  // never fire deadlines mid-test
    return o;
  }

  TxnIngress::Admission Admit(const Transaction& t) {
    return ingress.AdmitTxn(t, /*now_ms=*/0);
  }
};

TEST(LevelRegistration, SerRegistersCommitOnly) {
  IngressHarness h(CheckMode::kSi);
  auto a = h.Admit(MakeTxn(1, 0, 0, 4, 5, IsolationLevel::kSer));
  EXPECT_EQ(a.kind, TxnIngress::Admission::Kind::kDispatch);
  EXPECT_EQ(h.ingress.used_ts_count(), 1u);  // {commit}, not {start, commit}
  EXPECT_EQ(a.ctx.view_ts, 5u);              // SER reads at commit
  EXPECT_EQ(a.ctx.level, IsolationLevel::kSer);
  // A later SI transaction may reuse ts 4 — SER never registered it.
  auto b = h.Admit(MakeTxn(2, 1, 0, 3, 4, IsolationLevel::kSi));
  EXPECT_EQ(b.kind, TxnIngress::Admission::Kind::kDispatch);
  EXPECT_EQ(h.ingress.used_ts_count(), 3u);  // +{3, 4}
  // But commit ts 5 is taken: a SER reuse is a duplicate.
  auto c = h.Admit(MakeTxn(3, 2, 0, 2, 5, IsolationLevel::kSer));
  EXPECT_EQ(c.kind, TxnIngress::Admission::Kind::kDrop);
  ASSERT_FALSE(h.reported.empty());
  EXPECT_EQ(h.reported.back().type, ViolationType::kTsDuplicate);
}

TEST(LevelRegistration, SiRegistersStartAndCommit) {
  IngressHarness h(CheckMode::kSi);
  auto a = h.Admit(MakeTxn(1, 0, 0, 1, 2, IsolationLevel::kUnspecified));
  EXPECT_EQ(a.kind, TxnIngress::Admission::Kind::kDispatch);
  EXPECT_EQ(h.ingress.used_ts_count(), 2u);  // default level is SI
  EXPECT_EQ(a.ctx.view_ts, 1u);              // SI reads at start
  EXPECT_EQ(a.ctx.level, IsolationLevel::kSi);
}

TEST(LevelRegistration, InvalidSiIsIntOnlyAndRegistersNothing) {
  IngressHarness h(CheckMode::kSi);
  auto a = h.Admit(MakeTxn(1, 0, 0, 9, 8, IsolationLevel::kSi));  // Eq.(1) bad
  EXPECT_EQ(a.kind, TxnIngress::Admission::Kind::kIntOnly);
  EXPECT_EQ(h.ingress.used_ts_count(), 0u);
  ASSERT_FALSE(h.reported.empty());
  EXPECT_EQ(h.reported.back().type, ViolationType::kTsOrder);
  // The invalid transaction's timestamps stay free for others.
  auto b = h.Admit(MakeTxn(2, 1, 0, 8, 9, IsolationLevel::kSi));
  EXPECT_EQ(b.kind, TxnIngress::Admission::Kind::kDispatch);
  EXPECT_EQ(h.ingress.used_ts_count(), 2u);
}

TEST(LevelRegistration, RcRaRegisterNothingAndBypassDupGate) {
  IngressHarness h(CheckMode::kSi);
  auto a = h.Admit(MakeTxn(1, 0, 0, 1, 5, IsolationLevel::kRc));
  EXPECT_EQ(a.kind, TxnIngress::Admission::Kind::kDispatch);
  EXPECT_EQ(h.ingress.used_ts_count(), 0u);
  EXPECT_EQ(a.ctx.view_ts, 5u);  // membership levels view at commit
  EXPECT_EQ(a.ctx.level, IsolationLevel::kRc);
  // Same commit ts again: no dup-gate for membership levels — both
  // dispatch (a real same-key collision surfaces at the engine, D9).
  auto b = h.Admit(MakeTxn(2, 1, 0, 2, 5, IsolationLevel::kRa));
  EXPECT_EQ(b.kind, TxnIngress::Admission::Kind::kDispatch);
  EXPECT_EQ(b.ctx.level, IsolationLevel::kRa);
  EXPECT_EQ(h.ingress.used_ts_count(), 0u);
  EXPECT_TRUE(h.reported.empty());
  // An SI transaction can still claim ts 5 afterwards: RC/RA left the
  // uniqueness table untouched.
  auto c = h.Admit(MakeTxn(3, 2, 0, 4, 5, IsolationLevel::kSi));
  EXPECT_EQ(c.kind, TxnIngress::Admission::Kind::kDispatch);
  EXPECT_EQ(h.ingress.used_ts_count(), 2u);
}

TEST(LevelRegistration, PerLevelSessionRules) {
  // SI successor: bad iff start < predecessor's commit.
  {
    IngressHarness h(CheckMode::kSi);
    h.Admit(MakeTxn(1, 0, 0, 1, 10, IsolationLevel::kSi));
    h.Admit(MakeTxn(2, 0, 1, 11, 15, IsolationLevel::kSi));  // start > cts ok
    EXPECT_TRUE(h.reported.empty());
    h.Admit(MakeTxn(3, 0, 2, 14, 20, IsolationLevel::kSi));  // 14 < 15: bad
    ASSERT_FALSE(h.reported.empty());
    EXPECT_EQ(h.reported.back().type, ViolationType::kSession);
  }
  // RC successor: SER-style rule on commit timestamps — bad iff
  // commit <= predecessor's commit.
  {
    IngressHarness h(CheckMode::kSi);
    h.Admit(MakeTxn(1, 0, 0, 9, 10, IsolationLevel::kRc));
    h.Admit(MakeTxn(2, 0, 1, 10, 10, IsolationLevel::kRc));  // 10 <= 10: bad
    ASSERT_FALSE(h.reported.empty());
    EXPECT_EQ(h.reported.back().type, ViolationType::kSession);
  }
  // RC successor with a strictly later commit is fine even when its
  // start dips below the predecessor's commit (no SI snapshot rule).
  {
    IngressHarness h(CheckMode::kSi);
    h.Admit(MakeTxn(1, 0, 0, 1, 10, IsolationLevel::kSi));
    h.Admit(MakeTxn(2, 0, 1, 5, 11, IsolationLevel::kRc));
    EXPECT_TRUE(h.reported.empty());
  }
}

// ---------------------------------------------------------------------------
// Membership (RC/RA) read semantics through the full online checker.

TEST(MembershipReads, RcAcceptsAnyCommittedVersionBeforeCommit) {
  // Frontier at the reader's view is 200, but 100 was committed earlier:
  // an SI reader flags EXT, an RC reader is satisfied by membership.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 100)
                  .Txn(2, 1, 0, 3, 4).W(1, 200)
                  .Txn(3, 2, 0, 5, 6).Iso(IsolationLevel::kRc).R(1, 100)
                  .Build();
  CountingSink sink;
  chronos::testing::RunAionToEnd(h.txns, CheckMode::kSi, &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());

  History si = h;
  si.txns[2].iso = IsolationLevel::kUnspecified;
  CountingSink si_sink;
  chronos::testing::RunAionToEnd(si.txns, CheckMode::kSi, &si_sink);
  EXPECT_EQ(si_sink.count(ViolationType::kExt), 1u);
}

TEST(MembershipReads, RcRejectsVersionAtOrAfterOwnCommit) {
  // The only writer of 100 commits at ts 6 == the RC reader's commit:
  // membership requires a strictly earlier commit, so this is EXT.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 50)
                  .Txn(2, 1, 0, 5, 6).W(1, 100)
                  .Txn(3, 2, 0, 4, 6).Iso(IsolationLevel::kRc).R(1, 100)
                  .Build();
  CountingSink sink;
  chronos::testing::RunAionToEnd(h.txns, CheckMode::kSi, &sink);
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
}

TEST(MembershipReads, InstallTimeRecheckFlipsLateWriterIn) {
  // The RC reader arrives before the writer whose value it observed;
  // the install-time membership re-check must flip the verdict to
  // satisfied before finalization.
  History h = HistoryBuilder()
                  .Txn(3, 2, 0, 5, 6).Iso(IsolationLevel::kRc).R(1, 100)
                  .Txn(1, 0, 0, 1, 2).W(1, 100)
                  .Build();
  CountingSink sink;
  chronos::testing::RunAionToEnd(h.txns, CheckMode::kSi, &sink);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

// ---------------------------------------------------------------------------
// Codec round-trip for iso= tags.

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(IsoCodec, MixedHistoryRoundTripsByteIdentically) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 100)
                  .Txn(2, 1, 0, 3, 4).Iso(IsolationLevel::kSer).W(2, 200)
                  .Txn(3, 2, 0, 5, 6).Iso(IsolationLevel::kRc).R(1, 100)
                  .Txn(4, 2, 1, 7, 8).Iso(IsolationLevel::kRa).R(2, 200)
                  .Txn(5, 0, 1, 9, 10).Iso(IsolationLevel::kSi).W(3, 300)
                  .Build();
  const std::string dir = chronos::testing::UniqueTempDir("iso");
  const std::string p1 = dir + "/iso_rt_1.hist";
  const std::string p2 = dir + "/iso_rt_2.hist";
  ASSERT_TRUE(hist::SaveHistory(h, p1).ok);

  History back;
  ASSERT_TRUE(hist::LoadHistory(p1, &back).ok);
  ASSERT_EQ(back.txns.size(), h.txns.size());
  for (size_t i = 0; i < h.txns.size(); ++i) {
    EXPECT_EQ(back.txns[i].iso, h.txns[i].iso) << "txn " << i;
  }
  EXPECT_TRUE(HistoryHasLevelTags(back));

  ASSERT_TRUE(hist::SaveHistory(back, p2).ok);
  EXPECT_EQ(Slurp(p1), Slurp(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(IsoCodec, UntaggedHistorySavesWithoutIsoField) {
  History h = HistoryBuilder().Txn(1, 0, 0, 1, 2).W(1, 100).Build();
  const std::string p = chronos::testing::UniqueTempDir("iso") + "/iso_plain.hist";
  ASSERT_TRUE(hist::SaveHistory(h, p).ok);
  EXPECT_EQ(Slurp(p).find("iso="), std::string::npos);
  History back;
  ASSERT_TRUE(hist::LoadHistory(p, &back).ok);
  EXPECT_FALSE(HistoryHasLevelTags(back));
  std::remove(p.c_str());
}

TEST(IsoCodec, RejectsUnknownIsoValue) {
  const std::string p = chronos::testing::UniqueTempDir("iso") + "/iso_bad.hist";
  {
    std::ofstream out(p);
    out << "chronos-history v1 sessions=1 txns=1\n"
        << "T 1 0 0 1 2 1 iso=bogus\n"
        << "W 1 100\n"
        << "# end txns=1\n";
  }
  History back;
  hist::CodecStatus st = hist::LoadHistory(p, &back);
  EXPECT_FALSE(st.ok);
  std::remove(p.c_str());
}

// ---------------------------------------------------------------------------
// AssignLevels: deterministic, order-independent, remainder untagged.

TEST(AssignLevels, DeterministicAndOrderIndependent) {
  workload::WorkloadParams p;
  p.sessions = 8;
  p.txns = 400;
  p.ops_per_txn = 4;
  p.keys = 50;
  p.seed = 21;
  History h = workload::GenerateDefaultHistory(p);

  workload::LevelMix mix{40, 10, 20, 10};  // 20% remainder stays untagged
  History a = h;
  workload::AssignLevels(&a, mix, 99);
  History b = h;
  std::reverse(b.txns.begin(), b.txns.end());
  workload::AssignLevels(&b, mix, 99);
  std::reverse(b.txns.begin(), b.txns.end());
  size_t counts[5] = {0, 0, 0, 0, 0};
  for (size_t i = 0; i < a.txns.size(); ++i) {
    EXPECT_EQ(a.txns[i].iso, b.txns[i].iso) << "tid " << a.txns[i].tid;
    ++counts[static_cast<size_t>(a.txns[i].iso)];
  }
  // Every level in the mix (and the untagged remainder) must appear in a
  // 400-txn sample; exact proportions are the hash's business.
  EXPECT_GT(counts[static_cast<size_t>(IsolationLevel::kUnspecified)], 0u);
  EXPECT_GT(counts[static_cast<size_t>(IsolationLevel::kSer)], 0u);
  EXPECT_GT(counts[static_cast<size_t>(IsolationLevel::kSi)], 0u);
  EXPECT_GT(counts[static_cast<size_t>(IsolationLevel::kRc)], 0u);
  EXPECT_GT(counts[static_cast<size_t>(IsolationLevel::kRa)], 0u);

  // A different seed produces a different assignment.
  History c = h;
  workload::AssignLevels(&c, mix, 100);
  size_t differing = 0;
  for (size_t i = 0; i < a.txns.size(); ++i) {
    if (a.txns[i].iso != c.txns[i].iso) ++differing;
  }
  EXPECT_GT(differing, 0u);

  // The empty mix never tags.
  History d = h;
  workload::AssignLevels(&d, workload::LevelMix{}, 99);
  EXPECT_FALSE(HistoryHasLevelTags(d));
}

// ---------------------------------------------------------------------------
// Per-class count comparison between two sinks.

void ExpectSameCounts(const CountingSink& got, const CountingSink& want) {
  static constexpr ViolationType kAll[] = {
      ViolationType::kSession,    ViolationType::kInt,
      ViolationType::kExt,        ViolationType::kNoConflict,
      ViolationType::kTsOrder,    ViolationType::kTsDuplicate,
  };
  EXPECT_EQ(got.total(), want.total());
  for (ViolationType t : kAll) {
    EXPECT_EQ(got.count(t), want.count(t))
        << "class " << static_cast<int>(t);
  }
}

// ---------------------------------------------------------------------------
// Single-level equivalence: a history where every transaction carries an
// explicit tag of the run-level default must check identically to the
// untagged pre-refactor run — online and offline.

TEST(SingleLevelEquivalence, AllSiTagsMatchUntaggedRun) {
  workload::WorkloadParams p;
  p.sessions = 10;
  p.txns = 600;
  p.ops_per_txn = 6;
  p.keys = 60;
  p.seed = 31;
  db::DbConfig cfg;
  cfg.faults.value_corruption_prob = 0.03;
  cfg.faults.lost_update_prob = 0.05;
  cfg.fault_seed = 77;
  History h = workload::GenerateDefaultHistory(p, cfg);

  History tagged = h;
  workload::AssignLevels(&tagged, workload::LevelMix{100, 0, 0, 0}, 5);
  ASSERT_TRUE(HistoryHasLevelTags(tagged));

  CountingSink plain, si_tagged;
  chronos::testing::RunAionToEnd(h.txns, CheckMode::kSi, &plain);
  chronos::testing::RunAionToEnd(tagged.txns, CheckMode::kSi, &si_tagged);
  ASSERT_GT(plain.total(), 0u) << "faulty history must surface violations";
  ExpectSameCounts(si_tagged, plain);

  // Offline: the mixed mirror on an all-SI-tagged history must match
  // plain Chronos on the untagged one.
  CountingSink chronos_sink, mixed_sink;
  Chronos::CheckHistory(h, &chronos_sink);
  ChronosMixed::CheckHistory(tagged, CheckMode::kSi, &mixed_sink);
  ExpectSameCounts(mixed_sink, chronos_sink);
}

TEST(SingleLevelEquivalence, AllSerTagsMatchUntaggedSerRun) {
  workload::WorkloadParams p;
  p.sessions = 10;
  p.txns = 600;
  p.ops_per_txn = 6;
  p.keys = 60;
  p.seed = 32;
  db::DbConfig cfg;
  cfg.faults.value_corruption_prob = 0.03;
  cfg.fault_seed = 78;
  History h = workload::GenerateDefaultHistory(p, cfg);

  History tagged = h;
  workload::AssignLevels(&tagged, workload::LevelMix{0, 100, 0, 0}, 5);
  ASSERT_TRUE(HistoryHasLevelTags(tagged));

  CountingSink plain, ser_tagged;
  chronos::testing::RunAionToEnd(h.txns, CheckMode::kSer, &plain);
  // Tagged SER under an SI run default: the tags must fully override.
  chronos::testing::RunAionToEnd(tagged.txns, CheckMode::kSi, &ser_tagged);
  ExpectSameCounts(ser_tagged, plain);

  CountingSink chronos_sink, mixed_sink;
  ChronosSer::CheckHistory(h, &chronos_sink);
  ChronosMixed::CheckHistory(tagged, CheckMode::kSi, &mixed_sink);
  ExpectSameCounts(mixed_sink, chronos_sink);
}

}  // namespace
}  // namespace chronos
