// Edge cases and adversarial inputs across the checker stack: boundary
// timestamps, pathological sessions, empty/degenerate transactions, and
// cross-checker consistency on anomaly zoo histories.
#include <gtest/gtest.h>

#include "../testutil.h"
#include "baselines/emme.h"
#include "core/aion.h"
#include "core/chronos.h"

namespace chronos {
namespace {

using testing::HistoryBuilder;
using testing::RunAionToEnd;

TEST(EdgeCaseTest, TransactionWithNoOps) {
  History h = HistoryBuilder().Txn(1, 0, 0, 1, 1).Build();
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(h, &sink).violations, 0u);
  CountingSink aion;
  RunAionToEnd(h.txns, Aion::Mode::kSi, &aion);
  EXPECT_EQ(aion.total(), 0u);
}

TEST(EdgeCaseTest, WriteOnlyTransactions) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1).W(2, 1).W(3, 1)
                  .Txn(2, 1, 0, 3, 4).W(1, 2).W(2, 2)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(h, &sink).violations, 0u);
}

TEST(EdgeCaseTest, RepeatedWritesToSameKeyWithinTxn) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1).R(1, 1).W(1, 2).R(1, 2).W(1, 3)
                  .Txn(2, 1, 0, 3, 4).R(1, 3)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(h, &sink).violations, 0u);
}

TEST(EdgeCaseTest, ReadingIntermediateWriteOfOtherTxnIsExt) {
  // T2 must see T1's final write (3), not the intermediate (2).
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 2).W(1, 3)
                  .Txn(2, 1, 0, 3, 4).R(1, 2)
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
}

TEST(EdgeCaseTest, LongSessionChainAccepted) {
  HistoryBuilder b;
  for (uint64_t i = 0; i < 200; ++i) {
    b.Txn(i + 1, 0, i, 2 * i + 1, 2 * i + 2)
        .R(1, i == 0 ? kValueInit : static_cast<Value>(i))
        .W(1, static_cast<Value>(i + 1));
  }
  History h = b.Build();
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(h, &sink).violations, 0u);
  CountingSink aion;
  RunAionToEnd(testing::SessionPreservingShuffle(h, 3), Aion::Mode::kSi,
               &aion);
  EXPECT_EQ(aion.total(), 0u);
}

TEST(EdgeCaseTest, SessionRestartingAtNonZeroSnoFlagged) {
  History h = HistoryBuilder().Txn(1, 0, 5, 1, 2).W(1, 1).Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kSession), 1u);
}

TEST(EdgeCaseTest, ManySessionsSingleTxnEach) {
  HistoryBuilder b;
  for (uint64_t i = 0; i < 100; ++i) {
    b.Txn(i + 1, static_cast<SessionId>(i), 0, 2 * i + 1, 2 * i + 2)
        .W(i % 10, static_cast<Value>(i + 1));
  }
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(b.Build(), &sink).violations, 0u);
}

TEST(EdgeCaseTest, ConflictSpanningManyCommits) {
  // A long-running writer overlapping five short writers on one key:
  // five conflict pairs plus the short writers pairwise disjoint.
  HistoryBuilder b;
  b.Txn(99, 0, 0, 1, 100).W(7, 999);
  for (uint64_t i = 0; i < 5; ++i) {
    b.Txn(i + 1, static_cast<SessionId>(i + 1), 0, 10 * (i + 1),
          10 * (i + 1) + 5)
        .W(7, static_cast<Value>(i + 1));
  }
  CountingSink sink;
  Chronos::CheckHistory(b.Build(), &sink);
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 5u);
  CountingSink aion;
  RunAionToEnd(testing::SessionPreservingShuffle(b.Build(), 11),
               Aion::Mode::kSi, &aion);
  EXPECT_EQ(aion.count(ViolationType::kNoConflict), 5u);
}

TEST(EdgeCaseTest, AdjacentButNonOverlappingWritersDoNotConflict) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 5).W(1, 1)
                  .Txn(2, 1, 0, 6, 9).W(1, 2)  // starts right after commit
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 0u);
}

TEST(EdgeCaseTest, EmmeAgreesWithChronosOnAnomalyZoo) {
  // Stale read + lost update + INT breakage in one history.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 1, 0, 3, 4).W(1, 2)
                  .Txn(3, 2, 0, 5, 6).R(1, 1)              // stale (EXT)
                  .Txn(4, 3, 0, 7, 10).R(1, 2).W(2, 1)
                  .Txn(5, 4, 0, 8, 11).R(1, 2).W(2, 2)     // lost update
                  .Txn(6, 5, 0, 12, 13).W(3, 5).R(3, 6)    // INT
                  .Build();
  CountingSink chronos_sink, emme_sink;
  Chronos::CheckHistory(h, &chronos_sink);
  baselines::CheckEmmeSi(h, &emme_sink);
  EXPECT_EQ(chronos_sink.count(ViolationType::kExt), 1u) << "stale read";
  EXPECT_GE(emme_sink.count(ViolationType::kExt), 1u);
  EXPECT_EQ(chronos_sink.count(ViolationType::kNoConflict),
            emme_sink.count(ViolationType::kNoConflict));
  EXPECT_EQ(chronos_sink.count(ViolationType::kInt),
            emme_sink.count(ViolationType::kInt));
}

TEST(EdgeCaseTest, AionSerDuplicateCommitTsDetected) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 5).W(1, 1)
                  .Txn(2, 1, 0, 2, 5).W(2, 1)  // same commit ts
                  .Build();
  CountingSink sink;
  RunAionToEnd(h.txns, Aion::Mode::kSer, &sink);
  EXPECT_EQ(sink.count(ViolationType::kTsDuplicate), 1u);
}

TEST(EdgeCaseTest, AionFlipFlopCountedOncePerRectification) {
  // Reader's verdict flips false -> true exactly once when the straggler
  // writer lands; a second identical re-check must not double count.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 7)
                  .Txn(2, 1, 0, 3, 3).R(1, 7)
                  .Build();
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 1u << 30;
  Aion aion(opt, &sink);
  aion.OnTransaction(h.txns[1], 0);  // reader first: tentative false
  aion.OnTransaction(h.txns[0], 5);  // writer: flips to true
  aion.Finish();
  EXPECT_EQ(aion.flip_stats().total_flips(), 1u);
  EXPECT_EQ(sink.total(), 0u);
}

TEST(EdgeCaseTest, ChronosSerIgnoresNoConflict) {
  // Overlapping writers are an SI violation but SER (commit-order
  // replay) has no NOCONFLICT axiom.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).W(1, 1)
                  .Txn(2, 1, 0, 2, 4).R(1, 1).W(1, 2)
                  .Build();
  CountingSink si_sink, ser_sink;
  Chronos::CheckHistory(h, &si_sink);
  ChronosSer::CheckHistory(h, &ser_sink);
  EXPECT_EQ(si_sink.count(ViolationType::kNoConflict), 1u);
  EXPECT_EQ(ser_sink.count(ViolationType::kNoConflict), 0u);
  // Under SER replay T2's read of key 1 correctly sees T1's value.
  EXPECT_EQ(ser_sink.total(), 0u);
}

TEST(EdgeCaseTest, ViolationToStringIsInformative) {
  Violation v{ViolationType::kExt, 42, 43, 7, 10, 11};
  std::string s = v.ToString();
  EXPECT_NE(s.find("EXT"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("expected=10"), std::string::npos);
}

}  // namespace
}  // namespace chronos
