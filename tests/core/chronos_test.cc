// Unit tests for the CHRONOS offline SI checker (Algorithm 2), built
// around the paper's running examples (Figs. 1, 2, 11) plus one test per
// axiom and well-formedness rule.
#include "core/chronos.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace chronos {
namespace {

using testing::HistoryBuilder;

// Paper Fig. 1: a valid SI execution. T0 initializes x and y; T2's
// snapshot excludes T1 (T1 commits after T2 starts); T3 sees T1.
History Fig1History() {
  return HistoryBuilder()
      .Txn(10, 0, 0, 1, 2).W(1, 100).W(2, 200)   // T0: W(x) W(y)
      .Txn(11, 1, 0, 3, 6).W(1, 101).W(2, 201)   // T1: W(x,1) W(y,2)
      .Txn(12, 2, 0, 4, 4).R(1, 100)             // T2: R(x)=T0's value
      .Txn(13, 3, 0, 7, 7).R(2, 201)             // T3: R(y)=T1's value
      .Build();
}

// Paper Fig. 2: T3 and T5 overlap on key y -> one NOCONFLICT violation;
// all reads are justified.
History Fig2History() {
  return HistoryBuilder()
      .Txn(1, 0, 0, 1, 2).W(1, 1)                // T1: W(x,1)
      .Txn(2, 1, 0, 3, 5).W(1, 2)                // T2: W(x,2)
      .Txn(5, 2, 0, 4, 7).R(1, 1).W(2, 1)        // T5: R(x,1) W(y,1)
      .Txn(3, 3, 0, 6, 9).R(1, 2).W(2, 2)        // T3: R(x,2) W(y,2)
      .Txn(4, 4, 0, 8, 10).R(2, 1)               // T4: R(y,1)
      .Build();
}

TEST(ChronosTest, AcceptsEmptyHistory) {
  CountingSink sink;
  CheckStats stats = Chronos::CheckHistory(History{}, &sink);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(stats.txns, 0u);
}

TEST(ChronosTest, AcceptsFig1) {
  CountingSink sink;
  CheckStats stats = Chronos::CheckHistory(Fig1History(), &sink);
  EXPECT_EQ(stats.violations, 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

TEST(ChronosTest, Fig2ReportsExactlyOneNoConflict) {
  CountingSink sink;
  CheckStats stats = Chronos::CheckHistory(Fig2History(), &sink);
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 1u);
  ASSERT_EQ(sink.first().size(), 1u);
  // Reported at the earlier committer's commit event: T5 conflicts T3.
  EXPECT_EQ(sink.first()[0].tid, 5u);
  EXPECT_EQ(sink.first()[0].other_tid, 3u);
  EXPECT_EQ(sink.first()[0].key, 2u);
}

// Paper Fig. 11: T1, T2 commit sequentially, then T3 reads T1's stale
// value. A timestamp-based checker must flag EXT; black-box checkers
// cannot (they infer order T1, T3, T2).
TEST(ChronosTest, Fig11StaleReadIsExtViolation) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 1, 0, 3, 4).W(1, 2)
                  .Txn(3, 2, 0, 5, 6).R(1, 1)
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
  EXPECT_EQ(sink.first()[0].expected, 2);
  EXPECT_EQ(sink.first()[0].got, 1);
}

TEST(ChronosTest, WriteSkewIsAllowedUnderSi) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).R(1, 0).W(2, 7)
                  .Txn(2, 1, 0, 2, 4).R(2, 0).W(1, 8)
                  .Build();
  CountingSink sink;
  CheckStats stats = Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(stats.violations, 0u);
}

TEST(ChronosTest, LostUpdateIsNoConflictViolation) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).R(1, 0).W(1, 5)
                  .Txn(2, 1, 0, 2, 4).R(1, 0).W(1, 6)
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 1u);
}

TEST(ChronosTest, InternalReadMismatchIsIntViolation) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 5).R(1, 6)
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kInt), 1u);
  EXPECT_EQ(sink.count(ViolationType::kExt), 0u);
}

TEST(ChronosTest, ReadAfterReadIsInternalAndConsistent) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).R(1, 0).R(1, 0)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosTest, SecondReadDisagreeingWithFirstIsInt) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).R(1, 0).R(1, 9)
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kInt), 1u);
}

TEST(ChronosTest, SessionGapIsSessionViolation) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 0, 2, 3, 4).W(1, 2)  // sno jumps 0 -> 2
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kSession), 1u);
}

TEST(ChronosTest, StartBeforePredecessorCommitIsSessionViolation) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 5).W(1, 1)
                  .Txn(2, 0, 1, 3, 6).R(1, 0)  // starts inside predecessor
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_GE(sink.count(ViolationType::kSession), 1u);
}

TEST(ChronosTest, StartAfterCommitIsTsOrderViolation) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 5, 2).W(1, 1)
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kTsOrder), 1u);
}

TEST(ChronosTest, MalformedTxnDoesNotPoisonSessionCheck) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 1)
                  .Txn(2, 0, 1, 9, 4).W(1, 2)  // Eq.(1) violated, excluded
                  .Txn(3, 0, 2, 10, 11).R(1, 1)
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kTsOrder), 1u);
  EXPECT_EQ(sink.count(ViolationType::kSession), 0u);
}

TEST(ChronosTest, DuplicateTimestampsAreReported) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).W(1, 1)
                  .Txn(2, 1, 0, 3, 5).W(2, 1)  // start reuses 3
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kTsDuplicate), 1u);
}

TEST(ChronosTest, ReadOnlyTxnMayHaveEqualStartAndCommit) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 4)
                  .Txn(2, 1, 0, 3, 3).R(1, 4)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosTest, FrontierUsesLastWriteOfTxn) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 5).W(1, 6)
                  .Txn(2, 1, 0, 3, 4).R(1, 6)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosTest, SnapshotExcludesConcurrentCommit) {
  // Reader starts before writer commits: must see the old value.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 5)
                  .Txn(2, 1, 0, 3, 6).W(1, 7)
                  .Txn(3, 2, 0, 4, 5).R(1, 5)  // starts at 4 < commit 6
                  .Build();
  CountingSink sink;
  EXPECT_EQ(Chronos::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosTest, ThreeWayOverlapReportsAllPairs) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 20).W(1, 1)
                  .Txn(2, 1, 0, 2, 10).W(1, 2)
                  .Txn(3, 2, 0, 3, 15).W(1, 3)
                  .Build();
  CountingSink sink;
  Chronos::CheckHistory(h, &sink);
  EXPECT_EQ(sink.count(ViolationType::kNoConflict), 3u);
}

TEST(ChronosTest, PeriodicGcPreservesVerdicts) {
  History h = Fig2History();
  CountingSink plain, gced;
  Chronos::CheckHistory(h, &plain);
  Chronos checker(ChronosOptions{.gc_every_n_txns = 1}, &gced);
  History copy = h;
  CheckStats stats = checker.Check(std::move(copy));
  EXPECT_EQ(gced.total(), plain.total());
  EXPECT_GE(stats.gc_passes, 1u);
}

TEST(ChronosSerTest, AcceptsSequentialHistory) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(1, 5)
                  .Txn(2, 1, 0, 3, 4).R(1, 5).W(2, 6)
                  .Txn(3, 0, 1, 5, 6).R(2, 6)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosSer::CheckHistory(h, &sink).violations, 0u);
}

TEST(ChronosSerTest, WriteSkewIsSerViolation) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 3).R(1, 0).W(2, 7)
                  .Txn(2, 1, 0, 2, 4).R(2, 0).W(1, 8)
                  .Build();
  CountingSink sink;
  ChronosSer::CheckHistory(h, &sink);
  // In commit order, T2's read of key 2 must see T1's write.
  EXPECT_EQ(sink.count(ViolationType::kExt), 1u);
}

TEST(ChronosSerTest, SessionOrderMustMatchCommitOrder) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 10).W(1, 1)
                  .Txn(2, 0, 1, 2, 5).W(2, 1)  // commits before predecessor
                  .Build();
  CountingSink sink;
  ChronosSer::CheckHistory(h, &sink);
  EXPECT_GE(sink.count(ViolationType::kSession), 1u);
}

TEST(ChronosSerTest, StartTimestampsIgnored) {
  // start > commit would be an Eq.(1) error under SI but SER ignores it.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 9, 2).W(1, 1)
                  .Txn(2, 1, 0, 1, 4).R(1, 1)
                  .Build();
  CountingSink sink;
  EXPECT_EQ(ChronosSer::CheckHistory(h, &sink).violations, 0u);
}

}  // namespace
}  // namespace chronos
