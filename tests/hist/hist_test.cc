// History codec round-trips and failure handling; collector delivery
// schedules (batching, delays, session-order preservation).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "../testutil.h"
#include "hist/codec.h"
#include "hist/collector.h"
#include "workload/generator.h"

namespace chronos::hist {
namespace {

std::string TempPath(const char* name) {
  return chronos::testing::UniqueTempDir("hist") + "/" + name;
}

TEST(CodecTest, RoundTripsRegisterHistory) {
  workload::WorkloadParams p;
  p.sessions = 4;
  p.txns = 200;
  p.ops_per_txn = 6;
  History h = workload::GenerateDefaultHistory(p);
  std::string path = TempPath("rt.hist");
  ASSERT_TRUE(SaveHistory(h, path).ok);
  History loaded;
  CodecStatus st = LoadHistory(path, &loaded);
  ASSERT_TRUE(st.ok) << st.message;
  ASSERT_EQ(loaded.txns.size(), h.txns.size());
  EXPECT_EQ(loaded.num_sessions, h.num_sessions);
  for (size_t i = 0; i < h.txns.size(); ++i) {
    EXPECT_EQ(loaded.txns[i].tid, h.txns[i].tid);
    EXPECT_EQ(loaded.txns[i].start_ts, h.txns[i].start_ts);
    EXPECT_EQ(loaded.txns[i].commit_ts, h.txns[i].commit_ts);
    ASSERT_EQ(loaded.txns[i].ops.size(), h.txns[i].ops.size());
    for (size_t j = 0; j < h.txns[i].ops.size(); ++j) {
      EXPECT_EQ(loaded.txns[i].ops[j].type, h.txns[i].ops[j].type);
      EXPECT_EQ(loaded.txns[i].ops[j].key, h.txns[i].ops[j].key);
      EXPECT_EQ(loaded.txns[i].ops[j].value, h.txns[i].ops[j].value);
    }
  }
  std::filesystem::remove(path);
}

TEST(CodecTest, RoundTripsListHistory) {
  workload::WorkloadParams p;
  p.sessions = 4;
  p.txns = 100;
  p.ops_per_txn = 5;
  p.list_mode = true;
  History h = workload::GenerateDefaultHistory(p);
  std::string path = TempPath("rt_list.hist");
  ASSERT_TRUE(SaveHistory(h, path).ok);
  History loaded;
  ASSERT_TRUE(LoadHistory(path, &loaded).ok);
  ASSERT_EQ(loaded.txns.size(), h.txns.size());
  for (size_t i = 0; i < h.txns.size(); ++i) {
    ASSERT_EQ(loaded.txns[i].list_args.size(), h.txns[i].list_args.size());
    for (size_t j = 0; j < h.txns[i].list_args.size(); ++j) {
      EXPECT_EQ(loaded.txns[i].list_args[j], h.txns[i].list_args[j]);
    }
  }
  std::filesystem::remove(path);
}

TEST(CodecTest, MissingFileFails) {
  History h;
  EXPECT_FALSE(LoadHistory("/nonexistent/nowhere.hist", &h).ok);
}

TEST(CodecTest, TruncatedFileFails) {
  std::string path = TempPath("trunc.hist");
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f, "chronos-history v1 sessions=2 txns=5\nT 1 0 0 1 2 3\nR 1 0\n");
  fclose(f);
  History h;
  CodecStatus st = LoadHistory(path, &h);
  EXPECT_FALSE(st.ok);
  std::filesystem::remove(path);
}

TEST(CodecTest, BadHeaderFails) {
  std::string path = TempPath("badhdr.hist");
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f, "not-a-history\n");
  fclose(f);
  History h;
  EXPECT_FALSE(LoadHistory(path, &h).ok);
  std::filesystem::remove(path);
}

TEST(CodecTest, MissingEndFooterFails) {
  // A header-complete file whose txn count matches but that lacks the
  // `# end txns=<m>` footer is indistinguishable from a file truncated
  // at a transaction boundary — it must be rejected.
  std::string path = TempPath("nofooter.hist");
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f, "chronos-history v1 sessions=1 txns=1\nT 1 0 0 1 2 1\nR 1 0\n");
  fclose(f);
  History h;
  CodecStatus st = LoadHistory(path, &h);
  EXPECT_FALSE(st.ok);
  std::filesystem::remove(path);
}

TEST(CodecTest, FooterCountMismatchFails) {
  std::string path = TempPath("badcount.hist");
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f,
          "chronos-history v1 sessions=1 txns=1\nT 1 0 0 1 2 1\nR 1 0\n"
          "# end txns=2\n");
  fclose(f);
  History h;
  EXPECT_FALSE(LoadHistory(path, &h).ok);
  std::filesystem::remove(path);
}

TEST(CodecTest, SaveIsAtomicAndFooterTerminated) {
  workload::WorkloadParams p;
  p.sessions = 2;
  p.txns = 20;
  p.ops_per_txn = 4;
  History h = workload::GenerateDefaultHistory(p);
  std::string path = TempPath("atomic.hist");
  ASSERT_TRUE(SaveHistory(h, path).ok);
  // The temp file used for the atomic rename must be gone.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // The last line is the footer with the exact transaction count.
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char line[128];
  std::string last;
  while (fgets(line, sizeof(line), f) != nullptr) last = line;
  fclose(f);
  EXPECT_EQ(last, "# end txns=20\n");
  History loaded;
  EXPECT_TRUE(LoadHistory(path, &loaded).ok);
  std::filesystem::remove(path);
}

TEST(CollectorTest, PreservesSessionOrder) {
  workload::WorkloadParams p;
  p.sessions = 8;
  p.txns = 2000;
  p.ops_per_txn = 4;
  History h = workload::GenerateDefaultHistory(p);
  CollectorParams cp;
  cp.delay_mean_ms = 100;
  cp.delay_stddev_ms = 40;
  auto stream = ScheduleDelivery(h, cp);
  ASSERT_EQ(stream.size(), h.txns.size());
  std::unordered_map<SessionId, uint64_t> last_sno;
  for (const auto& ct : stream) {
    auto it = last_sno.find(ct.txn.sid);
    if (it != last_sno.end()) {
      EXPECT_GT(ct.txn.sno, it->second)
          << "session order broken at sid=" << ct.txn.sid;
    }
    last_sno[ct.txn.sid] = ct.txn.sno;
  }
}

TEST(CollectorTest, DeliveryTimesAreSorted) {
  workload::WorkloadParams p;
  p.sessions = 4;
  p.txns = 600;
  History h = workload::GenerateDefaultHistory(p);
  CollectorParams cp;
  cp.delay_mean_ms = 50;
  cp.delay_stddev_ms = 20;
  auto stream = ScheduleDelivery(h, cp);
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LE(stream[i - 1].deliver_at_ms, stream[i].deliver_at_ms);
  }
}

TEST(CollectorTest, DelaysReorderCommitOrder) {
  workload::WorkloadParams p;
  p.sessions = 16;
  p.txns = 2000;
  History h = workload::GenerateDefaultHistory(p);
  CollectorParams cp;
  cp.delay_mean_ms = 100;
  cp.delay_stddev_ms = 30;
  auto stream = ScheduleDelivery(h, cp);
  size_t inversions = 0;
  for (size_t i = 1; i < stream.size(); ++i) {
    if (stream[i].txn.commit_ts < stream[i - 1].txn.commit_ts) ++inversions;
  }
  EXPECT_GT(inversions, 0u) << "asynchrony must reorder arrivals";
}

TEST(CollectorTest, ZeroDelayKeepsCommitOrder) {
  workload::WorkloadParams p;
  p.sessions = 4;
  p.txns = 300;
  History h = workload::GenerateDefaultHistory(p);
  auto stream = ScheduleDelivery(h, CollectorParams{});
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LE(stream[i - 1].txn.commit_ts, stream[i].txn.commit_ts);
  }
}

}  // namespace
}  // namespace chronos::hist
