// Online pipeline: bounded queue semantics, throughput meter, and the
// max-rate driver under the three GC policies.
#include <gtest/gtest.h>

#include <thread>

#include "core/aion.h"
#include "core/chronos.h"
#include "hist/collector.h"
#include "online/metrics.h"
#include "online/pipeline.h"
#include "online/queue.h"
#include "workload/generator.h"

namespace chronos::online {
namespace {

TEST(BoundedQueueTest, FifoAndClose) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  q.Close();
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(3));
}

TEST(BoundedQueueTest, BlockingProducerConsumer) {
  BoundedQueue<int> q(2);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.Push(i);
    q.Close();
  });
  int expected = 0;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 100);
  producer.join();
}

TEST(ThroughputMeterTest, BucketsBySecond) {
  ThroughputMeter meter(1000);
  meter.Record(100, 5);
  meter.Record(900, 5);
  meter.Record(1500, 3);
  ASSERT_EQ(meter.counts().size(), 2u);
  EXPECT_DOUBLE_EQ(meter.Tps(0), 10.0);
  EXPECT_DOUBLE_EQ(meter.Tps(1), 3.0);
}

TEST(MetricsTest, RssIsReadable) {
  EXPECT_GT(ReadRssBytes(), 1u << 20) << "process RSS should exceed 1 MiB";
}

class PipelineTest : public ::testing::Test {
 protected:
  std::vector<hist::CollectedTxn> MakeStream(uint64_t txns,
                                             double stddev = 0) {
    workload::WorkloadParams p;
    p.sessions = 8;
    p.txns = txns;
    p.ops_per_txn = 6;
    p.keys = 100;
    History h = workload::GenerateDefaultHistory(p);
    hist::CollectorParams cp;
    cp.delay_mean_ms = stddev > 0 ? 50 : 0;
    cp.delay_stddev_ms = stddev;
    return hist::ScheduleDelivery(h, cp);
  }
};

TEST_F(PipelineTest, MaxRateProcessesWholeStreamWithoutViolations) {
  auto stream = MakeStream(3000);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 100;
  Aion checker(opt, &sink);
  RunResult r = RunMaxRate(&checker, stream, GcPolicy::None(), 500);
  EXPECT_EQ(r.txns, 3000u);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
  EXPECT_FALSE(r.samples.empty());
}

TEST_F(PipelineTest, ThresholdGcBoundsLiveTxns) {
  auto stream = MakeStream(5000);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 20;  // virtual ms: finalizes quickly
  Aion checker(opt, &sink);
  RunResult r = RunMaxRate(&checker, stream, GcPolicy::Threshold(1500, 500),
                           250);
  EXPECT_EQ(sink.total(), 0u);
  size_t max_live = 0;
  for (const auto& s : r.samples) max_live = std::max(max_live, s.live_txns);
  EXPECT_LT(max_live, 5000u) << "GC must have reclaimed records";
  EXPECT_GT(checker.stats().gc_passes, 0u);
}

TEST_F(PipelineTest, DelayedStreamStillChecksClean) {
  auto stream = MakeStream(3000, 30);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 10000;  // above max delay: no premature verdicts
  Aion checker(opt, &sink);
  RunVirtualTime(&checker, stream);
  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
}

TEST_F(PipelineTest, FlipFlopsAppearUnderDelays) {
  auto stream = MakeStream(4000, 30);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 10000;
  Aion checker(opt, &sink);
  RunVirtualTime(&checker, stream);
  EXPECT_GT(checker.flip_stats().total_flips(), 0u)
      << "out-of-order arrivals should cause transient EXT flips";
}

}  // namespace
}  // namespace chronos::online
