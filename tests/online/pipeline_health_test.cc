// Pins the lifecycle semantics of ShardedAion::pipeline_health():
// counters are carried when the same instance keeps running after
// Finish() (Finish is a finalize barrier, not a shutdown), and start
// from zero in a fresh instance restored from a checkpoint image
// (ring plumbing counters are runtime telemetry, not checker state, so
// ExportState/ImportState deliberately does not carry them).
#include <gtest/gtest.h>

#include "core/online_checker.h"
#include "core/violation.h"
#include "online/metrics.h"
#include "online/sharded_aion.h"

#include "../testutil.h"

namespace chronos::online {
namespace {

using chronos::testing::HistoryBuilder;

History MakeHistory(TxnId first_tid, Timestamp first_ts, size_t n) {
  HistoryBuilder b;
  for (size_t i = 0; i < n; ++i) {
    TxnId tid = first_tid + i;
    Timestamp ts = first_ts + 2 * i;
    b.Txn(tid, static_cast<SessionId>(tid), 0, ts, ts + 1)
        .W(static_cast<Key>(i % 3), static_cast<Value>(tid));
  }
  return b.Build();
}

CheckerOptions Opts() {
  CheckerOptions o;
  o.ext_timeout_ms = 1ull << 30;
  o.pre_stage_workers = 2;
  return o;
}

TEST(PipelineHealthTest, SnapshotShapeMatchesTopology) {
  VectorSink sink;
  ShardedAion sh(Opts(), 4, &sink);
  History h = MakeHistory(1, 1, 6);
  uint64_t now = 1;
  for (const Transaction& t : h.txns) sh.OnTransaction(t, now++);
  sh.Finish();
  PipelineHealth ph = sh.pipeline_health();
  EXPECT_EQ(ph.pre_stage_in.size(), sh.pre_stage_worker_count());
  EXPECT_EQ(ph.pre_stage_out.size(), sh.pre_stage_worker_count());
  EXPECT_EQ(ph.shard_rings.size(), 4u);
  EXPECT_GT(ph.sequencer_msgs, 0u);
}

// Finish() finalizes the stream but the instance stays usable; feeding
// more arrivals afterwards keeps accumulating into the same counters —
// they are carried, never reset, for the life of the instance.
TEST(PipelineHealthTest, CountersCarryAcrossFinishThenRestart) {
  VectorSink sink;
  ShardedAion sh(Opts(), 2, &sink);
  uint64_t now = 1;
  for (const Transaction& t : MakeHistory(1, 1, 5).txns) {
    sh.OnTransaction(t, now++);
  }
  sh.Finish();
  PipelineHealth before = sh.pipeline_health();
  EXPECT_GT(before.sequencer_msgs, 0u);

  // Restart the stream on the same instance (fresh tids/timestamps).
  for (const Transaction& t : MakeHistory(100, 100, 5).txns) {
    sh.OnTransaction(t, now++);
  }
  sh.Finish();
  PipelineHealth after = sh.pipeline_health();
  EXPECT_GT(after.sequencer_msgs, before.sequencer_msgs);
  uint64_t hwm_before = 0, hwm_after = 0;
  for (const RingHealth& r : before.shard_rings) hwm_before += r.depth_hwm;
  for (const RingHealth& r : after.shard_rings) hwm_after += r.depth_hwm;
  EXPECT_GE(hwm_after, hwm_before);
}

// A checkpoint image restores checker state, not plumbing telemetry:
// the restored instance's counters restart near zero (only the restore
// handshake itself has moved them), while the donor's keep their full
// history. Both finish with identical verdicts.
TEST(PipelineHealthTest, CountersResetAcrossCheckpointRestore) {
  VectorSink sink_a;
  ShardedAion a(Opts(), 2, &sink_a);
  uint64_t now = 1;
  for (const Transaction& t : MakeHistory(1, 1, 8).txns) {
    a.OnTransaction(t, now++);
  }
  PipelineHealth donor = a.pipeline_health();
  EXPECT_GT(donor.sequencer_msgs, 0u);
  ShardedAion::StateImage img = a.ExportState();

  VectorSink sink_b;
  ShardedAion b(Opts(), 2, &sink_b);
  ASSERT_TRUE(b.ImportState(img));
  PipelineHealth restored = b.pipeline_health();
  EXPECT_LT(restored.sequencer_msgs, donor.sequencer_msgs)
      << "telemetry must not be carried by the state image";

  // The restored checker is still a working pipeline: finish the same
  // tail on both and the emissions agree.
  for (const Transaction& t : MakeHistory(100, 100, 3).txns) {
    a.OnTransaction(t, now);
    b.OnTransaction(t, now);
    ++now;
  }
  a.Finish();
  b.Finish();
  EXPECT_EQ(sink_a.Snapshot(), sink_b.Snapshot());
  EXPECT_EQ(a.stats(), b.stats());
}

}  // namespace
}  // namespace chronos::online
