// Degenerate inputs for ShardedAion: empty history, single transaction,
// more shards than distinct keys, and double Finish() — in every case
// the sharded checker must match the monolith exactly on emissions
// (identical sequences across shard counts, identical violation
// multisets vs Aion) and stay idempotent/safe to tear down.
#include <vector>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "core/aion.h"
#include "online/sharded_aion.h"

namespace chronos::online {
namespace {

using chronos::testing::HistoryBuilder;
using chronos::testing::SortedViolations;

// Drives Aion and ShardedAion{1,2,8} over the same arrival order and
// returns [aion, sh1, sh2, sh8] emission sequences. Calls Finish()
// `finish_calls` times on each checker.
std::vector<std::vector<Violation>> RunAll(
    const std::vector<Transaction>& arrivals, int finish_calls = 1) {
  std::vector<std::vector<Violation>> out;
  CheckerOptions opt;  // infinite-enough timeout: finalize at Finish()
  opt.ext_timeout_ms = 1u << 30;
  {
    VectorSink sink;
    Aion aion(opt, &sink);
    uint64_t now = 0;
    for (const Transaction& t : arrivals) aion.OnTransaction(t, now++);
    for (int i = 0; i < finish_calls; ++i) aion.Finish();
    out.push_back(sink.TakeAll());
  }
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    VectorSink sink;
    {
      ShardedAion sharded(opt, shards, &sink);
      uint64_t now = 0;
      for (const Transaction& t : arrivals) sharded.OnTransaction(t, now++);
      for (int i = 0; i < finish_calls; ++i) sharded.Finish();
    }  // destructor must not re-emit after Finish()
    out.push_back(sink.TakeAll());
  }
  return out;
}

void ExpectAllMatch(const std::vector<std::vector<Violation>>& runs) {
  ASSERT_EQ(runs.size(), 4u);
  // Sharded sequences are byte-identical across shard counts...
  EXPECT_EQ(runs[1], runs[2]);
  EXPECT_EQ(runs[1], runs[3]);
  // ...and multiset-identical to the monolith (which emits in detection
  // order rather than the sharded (commit_ts, tid) order).
  EXPECT_EQ(SortedViolations(runs[0]), SortedViolations(runs[1]));
}

TEST(ShardedDegenerateTest, EmptyHistory) {
  auto runs = RunAll({});
  ExpectAllMatch(runs);
  EXPECT_TRUE(runs[0].empty());
}

TEST(ShardedDegenerateTest, EmptyHistoryDoubleFinish) {
  auto runs = RunAll({}, /*finish_calls=*/2);
  ExpectAllMatch(runs);
}

TEST(ShardedDegenerateTest, SingleCleanTransaction) {
  History h = HistoryBuilder().Txn(1, 0, 0, 1, 2).W(7, 1).R(7, 1).Build();
  auto runs = RunAll(h.txns);
  ExpectAllMatch(runs);
  EXPECT_TRUE(runs[0].empty());
}

TEST(ShardedDegenerateTest, SingleViolatingTransaction) {
  // INT + EXT in one transaction: read disagrees with the frontier and
  // with its own prior write.
  History h = HistoryBuilder().Txn(1, 0, 0, 2, 3).R(0, 5).Build();
  auto runs = RunAll(h.txns);
  ExpectAllMatch(runs);
  EXPECT_EQ(runs[0].size(), 1u);  // EXT: expected init(0), got 5
}

TEST(ShardedDegenerateTest, MoreShardsThanDistinctKeys) {
  // 8 shards, 2 distinct keys: at least 6 shards see no traffic at all;
  // verdicts must be unaffected. History carries a lost-update overlap
  // (NOCONFLICT) and a stale read (EXT) so emissions are non-empty.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 4).W(0, 1)
                  .Txn(2, 1, 0, 2, 5).W(0, 2)            // overlaps txn 1
                  .Txn(3, 2, 0, 6, 7).W(1, 3)
                  .Txn(4, 3, 0, 8, 9).R(1, 0)            // stale: misses 3
                  .Build();
  auto runs = RunAll(h.txns);
  ExpectAllMatch(runs);
  EXPECT_EQ(runs[0].size(), 2u);
}

TEST(ShardedDegenerateTest, DoubleFinishEmitsNothingTwice) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 4).W(0, 1)
                  .Txn(2, 1, 0, 2, 5).W(0, 2)
                  .Build();
  auto runs = RunAll(h.txns, /*finish_calls=*/2);
  ExpectAllMatch(runs);
  EXPECT_EQ(runs[0].size(), 1u) << "second Finish() must not re-emit";
}

TEST(ShardedDegenerateTest, FinishThenMoreArrivalsThenFinish) {
  // A second wave of arrivals after a Finish() must still be checked
  // and emitted by the following Finish(), identically everywhere.
  History wave1 = HistoryBuilder()
                      .Txn(1, 0, 0, 1, 2).W(0, 1)
                      .Build();
  History wave2 = HistoryBuilder()
                      .Txn(2, 1, 0, 3, 4).R(0, 7)  // EXT: expected 1
                      .Build();
  std::vector<std::vector<Violation>> out;
  CheckerOptions opt;
  opt.ext_timeout_ms = 1u << 30;
  {
    VectorSink sink;
    Aion aion(opt, &sink);
    aion.OnTransaction(wave1.txns[0], 0);
    aion.Finish();
    aion.OnTransaction(wave2.txns[0], 1);
    aion.Finish();
    out.push_back(sink.TakeAll());
  }
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    VectorSink sink;
    {
      ShardedAion sharded(opt, shards, &sink);
      sharded.OnTransaction(wave1.txns[0], 0);
      sharded.Finish();
      sharded.OnTransaction(wave2.txns[0], 1);
      sharded.Finish();
    }
    out.push_back(sink.TakeAll());
  }
  ExpectAllMatch(out);
  EXPECT_EQ(out[0].size(), 1u);
}

}  // namespace
}  // namespace chronos::online
