// Checkpoint & WAL durability layer (online/checkpoint.h): WAL record
// roundtrip and torn-tail handling, checkpoint file atomicity, checksum
// validation and retention, full checker-state export/import identity
// over workloads that populate every state section (version chains,
// lists, spill manifests, unfinalized transactions, EXT deadlines,
// buffered violations), and the --memory-ceiling degradation path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "../testutil.h"
#include "core/state_io.h"
#include "online/checkpoint.h"
#include "online/recovery.h"
#include "online/sharded_aion.h"
#include "workload/generator.h"

namespace chronos::online {
namespace {

namespace fs = std::filesystem;

using chronos::testing::SessionPreservingShuffle;

std::string FreshDir(const std::string& name) {
  return chronos::testing::UniqueTempDir(name);
}

History MakeWorkload(uint64_t txns, uint64_t seed, bool list_mode) {
  workload::WorkloadParams p;
  p.sessions = 8;
  p.txns = txns;
  p.ops_per_txn = 6;
  p.keys = 40;
  p.seed = seed;
  p.list_mode = list_mode;
  db::DbConfig cfg;
  cfg.faults.lost_update_prob = 0.04;
  cfg.faults.early_commit_prob = 0.03;
  cfg.faults.ts_swap_prob = 0.02;
  cfg.fault_seed = seed * 13 + 5;
  return workload::GenerateDefaultHistory(p, cfg);
}

Transaction OneTxn() {
  Transaction t;
  t.tid = 7;
  t.sid = 2;
  t.sno = 3;
  t.start_ts = 100;
  t.commit_ts = 120;
  t.ops.push_back({OpType::kRead, 1, 11, 0});
  t.ops.push_back({OpType::kWrite, 2, -5, 0});
  t.ops.push_back({OpType::kAppend, 3, 42, 0});
  Op l;
  l.type = OpType::kReadList;
  l.key = 3;
  l.list_index = 0;
  t.ops.push_back(l);
  t.list_args.push_back({1, -2, 3});
  return t;
}

TEST(WalTest, RoundTripAllRecordShapes) {
  std::string dir = FreshDir("wal_roundtrip");
  std::string path = dir + "/wal.log";
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path));
    WalRecord r1;
    r1.seq = 1;
    r1.now_ms = 17;
    r1.txn = OneTxn();
    ASSERT_TRUE(w.LogStep(r1));
    WalRecord r2;
    r2.seq = 2;
    r2.now_ms = 18;
    r2.txn = OneTxn();
    r2.txn.tid = 8;
    r2.txn.ops.clear();
    r2.txn.list_args.clear();
    r2.gc = true;
    r2.gc_target = 32;
    r2.shed = true;
    ASSERT_TRUE(w.LogStep(r2));
    ASSERT_TRUE(w.Sync());
  }
  std::vector<WalRecord> recs;
  uint64_t valid = 0;
  ASSERT_TRUE(ReadWal(path, &recs, &valid));
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(valid, fs::file_size(path));
  EXPECT_EQ(recs[0].seq, 1u);
  EXPECT_EQ(recs[0].now_ms, 17u);
  EXPECT_FALSE(recs[0].gc);
  EXPECT_FALSE(recs[0].shed);
  ASSERT_EQ(recs[0].txn.ops.size(), 4u);
  EXPECT_EQ(recs[0].txn.tid, 7u);
  EXPECT_EQ(recs[0].txn.sid, 2u);
  EXPECT_EQ(recs[0].txn.sno, 3u);
  EXPECT_EQ(recs[0].txn.start_ts, 100u);
  EXPECT_EQ(recs[0].txn.commit_ts, 120u);
  EXPECT_EQ(recs[0].txn.ops[1].value, -5);
  ASSERT_EQ(recs[0].txn.list_args.size(), 1u);
  EXPECT_EQ(recs[0].txn.list_args[0], (std::vector<Value>{1, -2, 3}));
  EXPECT_TRUE(recs[1].gc);
  EXPECT_EQ(recs[1].gc_target, 32u);
  EXPECT_TRUE(recs[1].shed);
  EXPECT_EQ(recs[1].txn.ops.size(), 0u);
}

TEST(WalTest, TornTailStopsAtLastValidRecordAndResumes) {
  std::string dir = FreshDir("wal_torn");
  std::string path = dir + "/wal.log";
  uint64_t size_after_first = 0;
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path));
    WalRecord r;
    r.seq = 1;
    r.txn = OneTxn();
    ASSERT_TRUE(w.LogStep(r));
    size_after_first = fs::file_size(path);
    r.seq = 2;
    ASSERT_TRUE(w.LogStep(r));
  }
  // Tear the second record at every byte boundary: the first must
  // survive, the second must be dropped, and the truncation point must
  // be exactly the end of the first record.
  uint64_t full = fs::file_size(path);
  for (uint64_t cut = size_after_first; cut < full; ++cut) {
    fs::resize_file(path, cut);
    std::vector<WalRecord> recs;
    uint64_t valid = 0;
    ASSERT_TRUE(ReadWal(path, &recs, &valid)) << "cut=" << cut;
    ASSERT_EQ(recs.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(recs[0].seq, 1u);
    EXPECT_EQ(valid, size_after_first) << "cut=" << cut;
  }
  // Resume after a torn tail: truncate to the valid prefix, append a new
  // record, and read all of it back.
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, size_after_first));
    WalRecord r;
    r.seq = 2;
    r.now_ms = 99;
    r.txn = OneTxn();
    ASSERT_TRUE(w.LogStep(r));
  }
  std::vector<WalRecord> recs;
  uint64_t valid = 0;
  ASSERT_TRUE(ReadWal(path, &recs, &valid));
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].now_ms, 99u);
  EXPECT_EQ(valid, fs::file_size(path));
}

TEST(WalTest, CorruptChecksumEndsReplayBeforeTheRecord) {
  std::string dir = FreshDir("wal_corrupt");
  std::string path = dir + "/wal.log";
  uint64_t size_after_first = 0;
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path));
    WalRecord r;
    r.seq = 1;
    r.txn = OneTxn();
    ASSERT_TRUE(w.LogStep(r));
    size_after_first = fs::file_size(path);
    r.seq = 2;
    ASSERT_TRUE(w.LogStep(r));
  }
  // Flip one payload byte of the second record (not its checksum line).
  {
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, static_cast<long>(size_after_first) + 4, SEEK_SET);
    int c = fgetc(f);
    fseek(f, static_cast<long>(size_after_first) + 4, SEEK_SET);
    fputc(c == '9' ? '8' : '9', f);
    fclose(f);
  }
  std::vector<WalRecord> recs;
  uint64_t valid = 0;
  ASSERT_TRUE(ReadWal(path, &recs, &valid));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(valid, size_after_first);
}

TEST(CheckpointManagerTest, WriteLoadRoundTripAndRetention) {
  std::string dir = FreshDir("ckpt_mgr");
  CheckpointManager mgr(dir);
  ShardedAion::StateImage img;
  img.ingress = "ingress-bytes";
  // A real coordinator section leads with the shard count; Load
  // cross-checks it against the section count.
  StateWriter coord;
  coord.U64(2);
  coord.Bytes("rest", 4);
  img.coordinator = coord.data();
  img.shards = {"shard-zero", "shard-one"};

  ASSERT_TRUE(mgr.Write(img, /*wal_seq=*/10, /*events=*/10, /*keep=*/2));
  ASSERT_TRUE(mgr.Write(img, /*wal_seq=*/20, /*events=*/20, /*keep=*/2));
  ASSERT_TRUE(mgr.Write(img, /*wal_seq=*/30, /*events=*/30, /*keep=*/2));

  auto all = CheckpointManager::List(dir);
  ASSERT_EQ(all.size(), 2u);  // keep=2 pruned the first
  EXPECT_EQ(all[0].first, 2u);
  EXPECT_EQ(all[1].first, 3u);

  CheckpointManager::Loaded loaded;
  ASSERT_TRUE(CheckpointManager::Load(all[1].second, &loaded));
  EXPECT_EQ(loaded.ckpt_seq, 3u);
  EXPECT_EQ(loaded.wal_seq, 30u);
  EXPECT_EQ(loaded.events, 30u);
  EXPECT_EQ(loaded.num_shards, 2u);
  EXPECT_EQ(loaded.img.ingress, img.ingress);
  EXPECT_EQ(loaded.img.coordinator, img.coordinator);
  EXPECT_EQ(loaded.img.shards, img.shards);

  // A fresh manager over the same directory resumes the sequence.
  CheckpointManager again(dir);
  EXPECT_EQ(again.next_seq(), 4u);
}

TEST(CheckpointManagerTest, CorruptionAtEveryByteIsRejected) {
  std::string dir = FreshDir("ckpt_corrupt");
  CheckpointManager mgr(dir);
  ShardedAion::StateImage img;
  img.ingress = "iii";
  StateWriter coord;
  coord.U64(1);
  img.coordinator = coord.data();
  img.shards = {"sss"};
  ASSERT_TRUE(mgr.Write(img, 1, 1, 2));
  auto all = CheckpointManager::List(dir);
  ASSERT_EQ(all.size(), 1u);
  const std::string path = all[0].second;
  std::string good;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = fread(buf, 1, sizeof(buf), f);
    good.assign(buf, n);
    fclose(f);
  }
  CheckpointManager::Loaded loaded;
  ASSERT_TRUE(CheckpointManager::Load(path, &loaded));
  // Flip each byte in turn: every single-byte corruption must fail the
  // strict load (magic, framing, or section checksum).
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] ^= 0x40;
    FILE* f = fopen(path.c_str(), "wb");
    fwrite(bad.data(), 1, bad.size(), f);
    fclose(f);
    CheckpointManager::Loaded l;
    EXPECT_FALSE(CheckpointManager::Load(path, &l)) << "byte " << i;
  }
  // Truncation at any length must fail too.
  for (size_t len = 0; len < good.size(); len += 7) {
    FILE* f = fopen(path.c_str(), "wb");
    fwrite(good.data(), 1, len, f);
    fclose(f);
    CheckpointManager::Loaded l;
    EXPECT_FALSE(CheckpointManager::Load(path, &l)) << "len " << len;
  }
}

// Drives `checker` over arrivals[begin, end) with virtual time = index
// and a GC cadence, continuing `since_gc` across calls.
void DriveRange(ShardedAion* checker, const std::vector<Transaction>& arrivals,
                size_t begin, size_t end, size_t gc_every, size_t gc_target,
                size_t* since_gc) {
  for (size_t i = begin; i < end; ++i) {
    checker->OnTransaction(arrivals[i], i);
    if (gc_every > 0 && ++*since_gc >= gc_every) {
      *since_gc = 0;
      checker->GcToLiveTarget(gc_target);
    }
  }
}

struct Outcome {
  std::vector<Violation> emissions;
  CheckerStats stats;
  Timestamp watermark = kTsMin;
  uint64_t flips = 0;
};

// The mid-stream export/import identity that every section of the state
// image must uphold: run A straight through; run B to a cut, export,
// import into a fresh instance, continue; compare everything.
void ExpectRestoreIdentity(const History& h, bool shuffle, uint64_t timeout,
                           size_t gc_every, size_t gc_target,
                           const std::string& dir, size_t shards) {
  std::vector<Transaction> arrivals =
      shuffle ? SessionPreservingShuffle(h, 77) : h.txns;
  CheckerOptions opt;
  opt.ext_timeout_ms = timeout;

  Outcome ref;
  {
    CheckerOptions o = opt;
    o.spill_dir = dir + "/spill_ref";
    VectorSink sink;
    auto checker = std::make_unique<ShardedAion>(o, shards, &sink);
    size_t since_gc = 0;
    DriveRange(checker.get(), arrivals, 0, arrivals.size(), gc_every,
               gc_target, &since_gc);
    checker->Finish();
    ref.stats = checker->stats();
    ref.watermark = checker->watermark();
    ref.flips = checker->flip_stats().total_flips();
    checker.reset();
    ref.emissions = sink.TakeAll();
  }

  for (size_t cut : {size_t{1}, arrivals.size() / 3, arrivals.size() / 2,
                     arrivals.size() - 1}) {
    CheckerOptions o = opt;
    o.spill_dir = dir + "/spill_cut" + std::to_string(cut);
    fs::remove_all(o.spill_dir);
    ShardedAion::StateImage img;
    size_t since_gc = 0;
    {
      VectorSink discard;
      ShardedAion first(o, shards, &discard);
      DriveRange(&first, arrivals, 0, cut, gc_every, gc_target, &since_gc);
      img = first.ExportState();
    }
    VectorSink sink;
    auto second = std::make_unique<ShardedAion>(o, shards, &sink);
    ASSERT_TRUE(second->ImportState(img)) << "cut=" << cut;
    DriveRange(second.get(), arrivals, cut, arrivals.size(), gc_every,
               gc_target, &since_gc);
    second->Finish();
    EXPECT_EQ(second->stats(), ref.stats) << "cut=" << cut;
    EXPECT_EQ(second->watermark(), ref.watermark) << "cut=" << cut;
    EXPECT_EQ(second->flip_stats().total_flips(), ref.flips) << "cut=" << cut;
    second.reset();
    EXPECT_EQ(sink.TakeAll(), ref.emissions) << "cut=" << cut;
  }
}

TEST(StateImageTest, RegisterWorkloadRestoreIdentity) {
  // Shuffled arrival + GC + spill + finite timeout: exercises version
  // chains, ongoing intervals, spill manifests + epoch cache, straggler
  // reloads, EXT deadlines, unfinalized views, and buffered violations.
  std::string dir = FreshDir("img_reg");
  History h = MakeWorkload(500, 31, /*list_mode=*/false);
  ExpectRestoreIdentity(h, /*shuffle=*/true, /*timeout=*/40,
                        /*gc_every=*/32, /*gc_target=*/16, dir, 2);
}

TEST(StateImageTest, ListWorkloadRestoreIdentity) {
  // List chains: element buffers, merged-below deltas, boundary offsets.
  std::string dir = FreshDir("img_list");
  History h = MakeWorkload(400, 47, /*list_mode=*/true);
  ExpectRestoreIdentity(h, /*shuffle=*/true, /*timeout=*/60,
                        /*gc_every=*/40, /*gc_target=*/20, dir, 2);
}

TEST(StateImageTest, SingleShardRestoreIdentity) {
  std::string dir = FreshDir("img_one");
  History h = MakeWorkload(300, 53, /*list_mode=*/false);
  ExpectRestoreIdentity(h, /*shuffle=*/false, /*timeout=*/1u << 30,
                        /*gc_every=*/0, /*gc_target=*/0, dir, 1);
}

TEST(StateImageTest, ImportRejectsShardCountMismatch) {
  CheckerOptions opt;
  VectorSink s1, s2;
  ShardedAion two(opt, 2, &s1);
  ShardedAion::StateImage img = two.ExportState();
  ShardedAion three(opt, 3, &s2);
  EXPECT_FALSE(three.ImportState(img));
}

TEST(SpillCorruptionTest, CorruptEpochsDegradeDeterministically) {
  // Corrupt every spill epoch file mid-stream: subsequent straggler
  // reloads must count corrupt_spill_epochs (loud, not a silent miss),
  // degrade to unsafe_below_watermark accounting like a spill-less GC
  // (divergence entry D7), and stay fully deterministic — two runs with
  // the same corruption point emit identical verdicts.
  History writers = chronos::testing::HistoryBuilder()
                        .Txn(1, 0, 0, 10, 15).W(7, 1)
                        .Txn(2, 0, 1, 20, 25).W(7, 2)
                        .Txn(3, 0, 2, 30, 35).W(7, 3)
                        .Build();
  Transaction straggler;
  straggler.tid = 9;
  straggler.sid = 1;
  straggler.sno = 0;
  straggler.start_ts = 16;
  straggler.commit_ts = 17;
  straggler.ops.push_back({OpType::kRead, 7, 1, 0});

  auto run = [&](const std::string& dir) {
    CheckerOptions opt;
    opt.ext_timeout_ms = 100;
    opt.spill_dir = dir;
    VectorSink sink;
    auto checker = std::make_unique<ShardedAion>(opt, 2, &sink);
    uint64_t now = 0;
    for (const Transaction& t : writers.txns) {
      checker->OnTransaction(t, now += 10);
    }
    checker->AdvanceTime(1000);  // finalize the writers
    checker->Gc(26);             // collapse + spill the early versions
    checker->FootprintExact();   // barrier: workers idle, files closed
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      FILE* f = fopen(e.path().string().c_str(), "wb");
      fputs("garbage", f);
      fclose(f);
    }
    checker->OnTransaction(straggler, 2000);  // reload hits corruption
    checker->Finish();
    Outcome out;
    out.stats = checker->stats();
    out.watermark = checker->watermark();
    checker.reset();
    out.emissions = sink.TakeAll();
    return out;
  };
  Outcome a = run(FreshDir("spillcorrupt_a"));
  Outcome b = run(FreshDir("spillcorrupt_b"));
  EXPECT_GT(a.stats.corrupt_spill_epochs, 0u);
  EXPECT_GT(a.stats.unsafe_below_watermark, 0u);
  // Best-effort degradation proceeds from the in-memory state (the same
  // verdict a spill-less run would reach), so emissions need not be
  // empty — but they must be identical across runs.
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.emissions, b.emissions);
  EXPECT_EQ(a.watermark, b.watermark);
}

TEST(MemoryCeilingTest, ShedsKeepFootprintBoundedWithoutVerdictChanges) {
  // Append-heavy clean list workload in commit order: the ceiling
  // forces aggressive GC + list-buffer trims. Degradation is
  // deterministic-OPTIMISTIC — reads into shed state become unsafe_*
  // counts, never fabricated violations — so on a clean history the
  // ceilinged run must emit exactly what the ceilingless run emits:
  // nothing. (Faulty workloads under a ceiling are covered by the
  // kill-point sweep, where both sides degrade identically.)
  std::string dir = FreshDir("ceiling");
  workload::WorkloadParams p;
  p.sessions = 6;
  p.txns = 600;
  p.ops_per_txn = 8;
  p.keys = 10;  // few keys: long lists
  p.seed = 71;
  p.list_mode = true;
  History h = workload::GenerateDefaultHistory(p);

  CheckerOptions opt;
  opt.ext_timeout_ms = 8;  // prompt finalization: state is GC-evictable

  // Reference: no ceiling. Track the peak exact footprint to size the
  // ceiling meaningfully below it.
  Outcome ref;
  size_t peak = 0;
  {
    CheckerOptions o = opt;
    o.spill_dir = dir + "/spill_ref";
    VectorSink sink;
    auto checker = std::make_unique<ShardedAion>(o, 2, &sink);
    DurableRunner::Options dopts;
    dopts.dir = dir + "/ref";
    dopts.gc_every_events = 64;
    dopts.gc_target = 64;
    DurableRunner runner(checker.get(), dopts);
    AssumeRole driver(runner.driver_role);  // single-threaded test driver
    for (size_t i = 0; i < h.txns.size(); ++i) {
      ASSERT_TRUE(runner.Feed(h.txns[i], i));
      if (i % 16 == 0) {
        peak = std::max(peak, checker->FootprintExact().approx_bytes);
      }
    }
    runner.Finish();
    ref.stats = checker->stats();
    checker.reset();
    ref.emissions = sink.TakeAll();
  }
  ASSERT_GT(peak, 0u);
  EXPECT_TRUE(ref.emissions.empty());  // clean history, clean verdict

  const size_t ceiling = peak / 2;
  CheckerOptions o = opt;
  o.spill_dir = dir + "/spill_ceiling";
  VectorSink sink;
  auto checker = std::make_unique<ShardedAion>(o, 2, &sink);
  DurableRunner::Options dopts;
  dopts.dir = dir + "/run";
  dopts.gc_every_events = 64;
  dopts.gc_target = 64;
  dopts.memory_ceiling_bytes = ceiling;
  dopts.ceiling_check_every = 16;
  DurableRunner runner(checker.get(), dopts);
  AssumeRole driver(runner.driver_role);  // single-threaded test driver
  for (size_t i = 0; i < h.txns.size(); ++i) {
    ASSERT_TRUE(runner.Feed(h.txns[i], i));
    // At every check boundary the runner just shed if it was over: the
    // footprint must be back under the ceiling.
    if ((i + 1) % dopts.ceiling_check_every == 0) {
      EXPECT_LE(checker->FootprintExact().approx_bytes, ceiling)
          << "event " << i;
    }
  }
  runner.Finish();
  EXPECT_GT(runner.sheds(), 0u);
  // Degradation is accounted, never silent — and the verdict stream is
  // byte-identical to the ceilingless run.
  CheckerStats st = checker->stats();
  EXPECT_EQ(st.txns_processed, ref.stats.txns_processed);
  checker.reset();
  EXPECT_EQ(sink.TakeAll(), ref.emissions);
}

}  // namespace
}  // namespace chronos::online
