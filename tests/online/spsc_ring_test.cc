// The SPSC ring that carries the sharded pipeline's hand-offs: cursor
// wrap-around, full/empty boundary behavior, batched publish visibility,
// and close/drain semantics — single-threaded where the contract is
// about cursors, two-threaded where it is about synchronization (these
// run under TSan via tools/ci.sh).
#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "online/spsc_ring.h"

namespace chronos::online {
namespace {

// Thread-safety-analysis discipline (core/thread_annotations.h): each
// test assumes the ring roles for the threads it plays. A test that
// drives both sides from one thread assumes both roles; a test that
// spawns a side assumes that role inside the thread's lambda. Where the
// main thread also touches a side before spawning its owner, the
// thread-creation happens-before edge hands the role over.

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingTest, PushPopRoundTrip) {
  SpscRing<int> ring(8);
  AssumeRole prod(ring.producer_role), cons(ring.consumer_role);
  ring.Push(1);
  ring.Push(2);
  std::optional<int> a = ring.Pop();
  std::optional<int> b = ring.Pop();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

// The cursors are free-running; fill and drain the ring many times its
// capacity so the slot indices wrap repeatedly.
TEST(SpscRingTest, WrapAroundPreservesFifoOrder) {
  SpscRing<uint64_t> ring(4);  // capacity 4
  AssumeRole prod(ring.producer_role), cons(ring.consumer_role);
  std::vector<uint64_t> got;
  for (uint64_t i = 0; i < 1000; ++i) {
    ring.Push(uint64_t(i));
    // Vary occupancy across wraps — but never skip a pop at full
    // occupancy, since a single-threaded Push into a full ring blocks.
    if (i % 3 == 0 && ring.SizeApprox() < ring.capacity()) continue;
    std::optional<uint64_t> v = ring.Pop();
    ASSERT_TRUE(v.has_value());
    got.push_back(*v);
  }
  std::vector<uint64_t> tail;
  while (ring.SizeApprox() > 0) {
    std::optional<uint64_t> v = ring.Pop();
    ASSERT_TRUE(v.has_value());
    got.push_back(*v);
  }
  ASSERT_EQ(got.size(), 1000u);
  for (uint64_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i);
}

// Staged items are invisible until Publish; one publication makes the
// whole batch visible at once.
TEST(SpscRingTest, StagedItemsInvisibleUntilPublish) {
  SpscRing<int> ring(16);
  AssumeRole prod(ring.producer_role), cons(ring.consumer_role);
  ring.Stage(1);
  ring.Stage(2);
  ring.Stage(3);
  EXPECT_EQ(ring.SizeApprox(), 0u);  // nothing published yet
  ring.Publish();
  EXPECT_EQ(ring.SizeApprox(), 3u);
  std::vector<int> out;
  ASSERT_TRUE(ring.PopBatch(&out, 16));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

// A full ring blocks the producer until the consumer frees a slot; the
// producer's staged-but-unpublished items are published before it
// parks, so the consumer can always drain.
TEST(SpscRingTest, FullRingBlocksProducerUntilConsumerDrains) {
  SpscRing<int> ring(2);  // capacity 2
  AssumeRole cons(ring.consumer_role);
  {
    // Producer side until the spawn below takes it over.
    AssumeRole prod(ring.producer_role);
    ring.Push(0);
    ring.Push(1);
  }
  EXPECT_EQ(ring.SizeApprox(), ring.capacity());

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    AssumeRole prod(ring.producer_role);
    ring.Push(2);  // blocks: ring is full
    third_pushed.store(true);
  });
  // The producer can't complete until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(ring.Pop().value(), 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(ring.Pop().value(), 1);
  EXPECT_EQ(ring.Pop().value(), 2);
}

// PopBatch on an open empty ring blocks until the producer publishes.
TEST(SpscRingTest, EmptyRingBlocksConsumerUntilPublish) {
  SpscRing<int> ring(8);
  AssumeRole prod(ring.producer_role);
  std::vector<int> out;
  std::thread consumer([&] {
    AssumeRole cons(ring.consumer_role);
    ASSERT_TRUE(ring.PopBatch(&out, 8));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.Stage(7);
  ring.Publish();
  consumer.join();
  EXPECT_EQ(out, (std::vector<int>{7}));
}

// Close publishes staged items first: the consumer drains everything,
// then — and only then — sees end-of-stream.
TEST(SpscRingTest, CloseDrainsStagedItemsBeforeEndOfStream) {
  SpscRing<int> ring(8);
  AssumeRole prod(ring.producer_role), cons(ring.consumer_role);
  ring.Push(1);
  ring.Stage(2);
  ring.Stage(3);
  ring.Close();  // publishes 2 and 3
  std::vector<int> out;
  ASSERT_TRUE(ring.PopBatch(&out, 8));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(ring.PopBatch(&out, 8));  // closed and empty
  EXPECT_FALSE(ring.Pop().has_value());
}

TEST(SpscRingTest, CloseWakesBlockedConsumer) {
  SpscRing<int> ring(8);
  AssumeRole prod(ring.producer_role);
  std::atomic<bool> returned_false{false};
  std::thread consumer([&] {
    AssumeRole cons(ring.consumer_role);
    std::vector<int> out;
    returned_false.store(!ring.PopBatch(&out, 8));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.Close();
  consumer.join();
  EXPECT_TRUE(returned_false.load());
}

// Two-threaded stress: every item arrives exactly once, in order, across
// many wrap-arounds, mixed batched/unbatched publication, and both
// full-ring and empty-ring waits (small capacity forces both). Run under
// TSan in CI to certify the acquire/release protocol.
TEST(SpscRingTest, ThreadedFifoStress) {
  constexpr uint64_t kItems = 200000;
  SpscRing<uint64_t> ring(64);
  std::thread producer([&] {
    AssumeRole prod(ring.producer_role);
    for (uint64_t i = 0; i < kItems; ++i) {
      ring.Stage(uint64_t(i));
      if (i % 17 == 0) ring.Publish();
    }
    ring.Close();
  });
  AssumeRole cons(ring.consumer_role);
  uint64_t expect = 0;
  std::vector<uint64_t> chunk;
  while (ring.PopBatch(&chunk, 32)) {
    for (uint64_t v : chunk) {
      ASSERT_EQ(v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_EQ(expect, kItems);
  // Depth never exceeds capacity, and the counters moved.
  RingHealth h = ring.health();
  EXPECT_LE(h.depth_hwm, ring.capacity());
  EXPECT_GT(h.depth_hwm, 0u);
}

// Move-only payloads: the ring must never copy.
TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  AssumeRole prod(ring.producer_role), cons(ring.consumer_role);
  ring.Push(std::make_unique<int>(42));
  std::optional<std::unique_ptr<int>> v = ring.Pop();
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(*v != nullptr);
  EXPECT_EQ(**v, 42);
}

// Single-threaded boundary pins: walking the ring exactly to its
// full and empty edges — without ever *waiting* at them — must not
// count a stall. Stalls are park events, not boundary touches.
TEST(SpscRingTest, ExactBoundariesWithoutWaitingCountNoStalls) {
  SpscRing<int> ring(2);
  AssumeRole prod(ring.producer_role), cons(ring.consumer_role);
  ring.Push(1);
  ring.Push(2);  // exactly full: succeeded without a wait
  EXPECT_EQ(ring.SizeApprox(), ring.capacity());
  EXPECT_EQ(ring.Pop().value(), 1);
  EXPECT_EQ(ring.Pop().value(), 2);  // exactly empty again
  EXPECT_EQ(ring.SizeApprox(), 0u);
  RingHealth h = ring.health();
  EXPECT_EQ(h.producer_stalls, 0u);
  EXPECT_EQ(h.consumer_stalls, 0u);
  EXPECT_EQ(h.depth_hwm, 2u);
}

// Draining a closed ring hits the empty boundary but returns
// end-of-stream from the spin fast-path: not a stall either.
TEST(SpscRingTest, ClosedAndEmptyDrainCountsNoConsumerStall) {
  SpscRing<int> ring(4);
  AssumeRole prod(ring.producer_role), cons(ring.consumer_role);
  ring.Push(1);
  ring.Close();
  EXPECT_EQ(ring.Pop().value(), 1);
  EXPECT_FALSE(ring.Pop().has_value());  // closed + empty
  std::vector<int> out;
  EXPECT_FALSE(ring.PopBatch(&out, 4));
  EXPECT_EQ(ring.health().consumer_stalls, 0u);
}

// Deterministic exactly-once increment at the full boundary: the
// blocked producer's counter is observed to reach 1 *before* the
// consumer frees a slot, and the retry after the wake finds room — so
// the final count is exactly 1, not ">= 1 under contention".
TEST(SpscRingTest, ProducerStallIncrementsExactlyOnceAtFullBoundary) {
  SpscRing<int> ring(2);
  AssumeRole cons(ring.consumer_role);
  {
    // Producer side until the spawn below takes it over.
    AssumeRole prod(ring.producer_role);
    ring.Push(1);
    ring.Push(2);  // full
  }
  std::thread producer([&] {
    AssumeRole prod(ring.producer_role);
    ring.Push(3);  // must park
  });
  while (ring.health().producer_stalls == 0) std::this_thread::yield();
  EXPECT_EQ(ring.health().producer_stalls, 1u);
  EXPECT_EQ(ring.Pop().value(), 1);  // frees the slot; push 3 completes
  producer.join();
  EXPECT_EQ(ring.health().producer_stalls, 1u);
  EXPECT_EQ(ring.Pop().value(), 2);
  EXPECT_EQ(ring.Pop().value(), 3);
  EXPECT_EQ(ring.health().consumer_stalls, 0u);  // never popped empty
}

// Mirror image at the empty boundary: exactly one consumer stall.
TEST(SpscRingTest, ConsumerStallIncrementsExactlyOnceAtEmptyBoundary) {
  SpscRing<int> ring(2);
  AssumeRole prod(ring.producer_role);
  std::vector<int> out;
  std::thread consumer([&] {
    AssumeRole cons(ring.consumer_role);
    ASSERT_TRUE(ring.PopBatch(&out, 2));
  });
  while (ring.health().consumer_stalls == 0) std::this_thread::yield();
  EXPECT_EQ(ring.health().consumer_stalls, 1u);
  ring.Push(7);  // wakes the consumer; the retry finds the item
  consumer.join();
  EXPECT_EQ(ring.health().consumer_stalls, 1u);
  EXPECT_EQ(out, (std::vector<int>{7}));
  EXPECT_EQ(ring.health().producer_stalls, 0u);  // never pushed full
}

TEST(SpscRingTest, HealthCountsStalls) {
  SpscRing<int> ring(2);
  {
    AssumeRole prod(ring.producer_role);
    ring.Push(1);
    ring.Push(2);
  }
  std::thread producer([&] {
    AssumeRole prod(ring.producer_role);
    ring.Push(3);  // parks: full
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    AssumeRole cons(ring.consumer_role);
    (void)ring.Pop();
  }
  producer.join();
  EXPECT_GE(ring.health().producer_stalls, 1u);

  std::thread consumer([&] {
    AssumeRole cons(ring.consumer_role);
    (void)ring.Pop();
    (void)ring.Pop();
    (void)ring.Pop();  // parks: empty
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  AssumeRole prod(ring.producer_role);  // handed back by producer.join()
  ring.Push(4);
  consumer.join();
  EXPECT_GE(ring.health().consumer_stalls, 1u);
}

}  // namespace
}  // namespace chronos::online
