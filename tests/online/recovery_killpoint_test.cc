// Kill-point recovery sweep (ISSUE: crash-safe checkpoint/restore).
//
// The durability contract under test: a checker process killed at ANY
// point — between two Feed steps, or mid-byte while appending a WAL
// record — recovers via online/recovery.h and, after refeeding the
// not-yet-logged tail of the stream, finishes VERDICT-IDENTICAL to an
// uninterrupted run: same violation emission sequence (order included),
// same merged stats, same watermark, same flip-flop totals.
//
// Two kill models:
//   - event-boundary kills: feed k steps through a DurableRunner, then
//     destroy runner + checker without Finish. Records are flushed
//     per-step, so the on-disk state is exactly the crash state.
//   - byte-truncation kills: run the whole stream (again without
//     Finish), then truncate wal.log at an arbitrary offset — torn
//     tails, mid-record cuts, even cuts below the newest checkpoint's
//     coverage (harmless: replay skips seq <= the checkpoint's cut).
//
// Plus the fallback paths: corrupt newest checkpoint -> predecessor,
// all checkpoints gone -> pure WAL replay.
//
// The tier-1 run sweeps a bounded set of kill points per scenario; set
// CHRONOS_KILLPOINT_EXHAUSTIVE=1 to sweep every event boundary and a
// much larger truncation set (CI's crash-recovery stage).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "../testutil.h"
#include "online/checkpoint.h"
#include "online/recovery.h"
#include "online/sharded_aion.h"
#include "workload/generator.h"

namespace chronos::online {
namespace {

namespace fs = std::filesystem;

using chronos::testing::SessionPreservingShuffle;

bool Exhaustive() {
  const char* e = std::getenv("CHRONOS_KILLPOINT_EXHAUSTIVE");
  return e != nullptr && e[0] == '1';
}

std::string FreshDir(const std::string& name) {
  return chronos::testing::UniqueTempDir(name);
}

struct Scenario {
  std::string name;
  std::vector<Transaction> arrivals;
  uint64_t ext_timeout_ms = 1u << 30;
  size_t shards = 2;
  uint64_t checkpoint_every = 0;
  size_t gc_every = 0;
  size_t gc_target = 0;
  size_t memory_ceiling = 0;
};

CheckerOptions Opt(const Scenario& sc, const std::string& dir) {
  CheckerOptions opt;
  opt.ext_timeout_ms = sc.ext_timeout_ms;
  opt.spill_dir = dir + "/spill";
  return opt;
}

DurableRunner::Options Dopts(const Scenario& sc, const std::string& dir) {
  DurableRunner::Options d;
  d.dir = dir;
  d.checkpoint_every_events = sc.checkpoint_every;
  d.gc_every_events = sc.gc_every;
  d.gc_target = sc.gc_target;
  d.memory_ceiling_bytes = sc.memory_ceiling;
  return d;
}

struct Outcome {
  std::vector<Violation> emissions;
  CheckerStats stats;
  Timestamp watermark = kTsMin;
  uint64_t flips = 0;
  uint64_t sheds = 0;
};

/// The uninterrupted run: every scenario's ground truth.
Outcome RunUninterrupted(const Scenario& sc, const std::string& dir) {
  Outcome out;
  VectorSink sink;
  auto checker = std::make_unique<ShardedAion>(Opt(sc, dir), sc.shards, &sink);
  DurableRunner runner(checker.get(), Dopts(sc, dir));
  AssumeRole driver(runner.driver_role);  // single-threaded test driver
  for (size_t i = 0; i < sc.arrivals.size(); ++i) {
    EXPECT_TRUE(runner.Feed(sc.arrivals[i], i));
  }
  runner.Finish();
  out.stats = checker->stats();
  out.watermark = checker->watermark();
  out.flips = checker->flip_stats().total_flips();
  out.sheds = runner.sheds();
  checker.reset();
  out.emissions = sink.TakeAll();
  return out;
}

/// Feeds the first `k` steps, then "crashes" (no Finish, no final
/// checkpoint — just process death). Returns the WAL size after every
/// step, for the truncation sweep.
std::vector<uint64_t> RunAndCrash(const Scenario& sc, const std::string& dir,
                                  size_t k) {
  std::vector<uint64_t> wal_sizes;
  VectorSink discard;
  auto checker =
      std::make_unique<ShardedAion>(Opt(sc, dir), sc.shards, &discard);
  DurableRunner runner(checker.get(), Dopts(sc, dir));
  AssumeRole driver(runner.driver_role);  // single-threaded test driver
  for (size_t i = 0; i < k; ++i) {
    EXPECT_TRUE(runner.Feed(sc.arrivals[i], i));
    wal_sizes.push_back(fs::file_size(dir + "/wal.log"));
  }
  return wal_sizes;
}

/// Recovers from `dir`, refeeds the rest of the stream, finishes.
Outcome RecoverAndFinish(const Scenario& sc, const std::string& dir,
                         const std::string& what) {
  Outcome out;
  VectorSink sink;
  RecoverResult res = Recover(Opt(sc, dir), dir, &sink, sc.shards);
  EXPECT_NE(res.checker, nullptr) << what << ": " << res.error;
  if (!res.checker) return out;
  EXPECT_LE(res.events, sc.arrivals.size()) << what;
  DurableRunner cont(res.checker.get(), Dopts(sc, dir), res.next_seq,
                     res.events, res.wal_truncate_to);
  AssumeRole driver(cont.driver_role);  // single-threaded test driver
  for (size_t i = res.events; i < sc.arrivals.size(); ++i) {
    EXPECT_TRUE(cont.Feed(sc.arrivals[i], i)) << what;
  }
  cont.Finish();
  out.stats = res.checker->stats();
  out.watermark = res.checker->watermark();
  out.flips = res.checker->flip_stats().total_flips();
  out.sheds = cont.sheds();
  res.checker.reset();
  out.emissions = sink.TakeAll();
  return out;
}

void ExpectIdentical(const Outcome& got, const Outcome& ref,
                     const std::string& what) {
  EXPECT_EQ(got.emissions, ref.emissions) << what;
  EXPECT_EQ(got.stats, ref.stats) << what;
  EXPECT_EQ(got.watermark, ref.watermark) << what;
  EXPECT_EQ(got.flips, ref.flips) << what;
}

std::set<size_t> EventKillPoints(const Scenario& sc) {
  const size_t n = sc.arrivals.size();
  std::set<size_t> ks;
  if (Exhaustive()) {
    for (size_t k = 0; k <= n; ++k) ks.insert(k);
    return ks;
  }
  ks.insert(0);  // nothing durable yet: recovery = fresh run
  ks.insert(1);
  if (sc.checkpoint_every > 0 && sc.checkpoint_every < n) {
    // Straddle the first checkpoint boundary.
    ks.insert(sc.checkpoint_every - 1);
    ks.insert(sc.checkpoint_every);
    ks.insert(sc.checkpoint_every + 1);
  }
  ks.insert(n / 2);
  ks.insert(n - 1);
  ks.insert(n);  // fed everything, died before Finish
  return ks;
}

void SweepScenario(const Scenario& sc) {
  const std::string ref_dir = FreshDir(sc.name + "_ref");
  const Outcome ref = RunUninterrupted(sc, ref_dir);

  // --- event-boundary kills ---
  for (size_t k : EventKillPoints(sc)) {
    const std::string dir =
        FreshDir(sc.name + "_evt" + std::to_string(k));
    RunAndCrash(sc, dir, k);
    Outcome got =
        RecoverAndFinish(sc, dir, sc.name + " kill@event=" + std::to_string(k));
    ExpectIdentical(got, ref, sc.name + " kill@event=" + std::to_string(k));
  }

  // --- byte-truncation kills ---
  // One full crash run; each offset gets a pristine copy of its state.
  const std::string base = FreshDir(sc.name + "_base");
  std::vector<uint64_t> sizes = RunAndCrash(sc, base, sc.arrivals.size());
  ASSERT_FALSE(sizes.empty());
  const uint64_t header = 15;  // strlen("chronos-wal v1\n")
  const uint64_t full = sizes.back();
  std::set<uint64_t> offsets;
  std::mt19937_64 rng(0xC0FFEEu ^ sizes.size());
  const size_t want = Exhaustive() ? 40 : 8;
  std::uniform_int_distribution<uint64_t> dist(header, full);
  while (offsets.size() < want) offsets.insert(dist(rng));
  offsets.insert(header);          // empty WAL, header only
  offsets.insert(sizes[0]);        // exactly one record
  offsets.insert(sizes[0] + 1);    // one record + one torn byte
  for (uint64_t cut : offsets) {
    const std::string dir = FreshDir(sc.name + "_cut" + std::to_string(cut));
    fs::copy(base, dir, fs::copy_options::recursive |
                            fs::copy_options::overwrite_existing);
    fs::resize_file(dir + "/wal.log", cut);
    Outcome got = RecoverAndFinish(
        sc, dir, sc.name + " truncate@" + std::to_string(cut));
    ExpectIdentical(got, ref, sc.name + " truncate@" + std::to_string(cut));
  }
}

History MakeWorkload(uint64_t txns, uint64_t seed, bool list_mode,
                     uint64_t keys) {
  workload::WorkloadParams p;
  p.sessions = 8;
  p.txns = txns;
  p.ops_per_txn = 6;
  p.keys = keys;
  p.seed = seed;
  p.list_mode = list_mode;
  db::DbConfig cfg;
  cfg.faults.lost_update_prob = 0.04;
  cfg.faults.early_commit_prob = 0.03;
  cfg.faults.ts_swap_prob = 0.02;
  cfg.fault_seed = seed * 13 + 5;
  return workload::GenerateDefaultHistory(p, cfg);
}

TEST(KillPointSweep, RegisterGcSpillStragglers) {
  // Shuffled arrivals + finite timeout + GC cadence: stragglers, EXT
  // deadlines, spill manifests and watermark degradation all live at
  // the kill points.
  Scenario sc;
  sc.name = "register";
  History h = MakeWorkload(350, 101, /*list_mode=*/false, 40);
  sc.arrivals = SessionPreservingShuffle(h, 19);
  sc.ext_timeout_ms = 40;
  sc.checkpoint_every = 60;
  sc.gc_every = 32;
  sc.gc_target = 16;
  SweepScenario(sc);
}

TEST(KillPointSweep, ListHistories) {
  Scenario sc;
  sc.name = "list";
  History h = MakeWorkload(280, 211, /*list_mode=*/true, 20);
  sc.arrivals = SessionPreservingShuffle(h, 43);
  sc.ext_timeout_ms = 60;
  sc.checkpoint_every = 50;
  sc.gc_every = 40;
  sc.gc_target = 20;
  SweepScenario(sc);
}

TEST(KillPointSweep, WalOnlyNoCheckpoints) {
  // checkpoint_every=0: recovery is pure WAL replay from an empty state.
  Scenario sc;
  sc.name = "walonly";
  History h = MakeWorkload(200, 307, /*list_mode=*/false, 30);
  sc.arrivals = SessionPreservingShuffle(h, 7);
  sc.ext_timeout_ms = 35;
  sc.checkpoint_every = 0;
  sc.gc_every = 24;
  sc.gc_target = 12;
  SweepScenario(sc);
}

TEST(KillPointSweep, MemoryCeiling) {
  // Append-heavy list workload under a ceiling sized to force sheds:
  // shed decisions are WAL-logged (and re-derived identically for the
  // refed tail), so recovery must reproduce them bit-for-bit.
  Scenario sc;
  sc.name = "ceiling";
  History h = MakeWorkload(400, 409, /*list_mode=*/true, 8);
  sc.arrivals = h.txns;  // commit order: trims never hit stragglers
  sc.ext_timeout_ms = 8;
  sc.checkpoint_every = 0;  // ceiling sheds cut their own checkpoints
  sc.gc_every = 64;
  sc.gc_target = 64;

  // Size the ceiling at half the scenario's own peak footprint so the
  // shed path genuinely engages.
  size_t peak = 0;
  {
    const std::string dir = FreshDir("ceiling_probe");
    VectorSink sink;
    auto checker =
        std::make_unique<ShardedAion>(Opt(sc, dir), sc.shards, &sink);
    for (size_t i = 0; i < sc.arrivals.size(); ++i) {
      checker->OnTransaction(sc.arrivals[i], i);
      if (sc.gc_every > 0 && (i + 1) % sc.gc_every == 0) {
        checker->GcToLiveTarget(sc.gc_target);
      }
      if (i % 16 == 0) {
        peak = std::max(peak, checker->FootprintExact().approx_bytes);
      }
    }
    checker->Finish();
  }
  ASSERT_GT(peak, 0u);
  sc.memory_ceiling = peak / 2;

  const std::string probe_dir = FreshDir("ceiling_engaged");
  Outcome ref = RunUninterrupted(sc, probe_dir);
  ASSERT_GT(ref.sheds, 0u) << "ceiling never engaged: test is vacuous";

  SweepScenario(sc);
}

TEST(RecoveryFallback, CorruptNewestCheckpointUsesPredecessor) {
  Scenario sc;
  sc.name = "fallback";
  History h = MakeWorkload(300, 503, /*list_mode=*/false, 40);
  sc.arrivals = SessionPreservingShuffle(h, 29);
  sc.ext_timeout_ms = 40;
  sc.checkpoint_every = 50;
  sc.gc_every = 32;
  sc.gc_target = 16;

  const std::string ref_dir = FreshDir("fallback_ref");
  const Outcome ref = RunUninterrupted(sc, ref_dir);

  const std::string dir = FreshDir("fallback_run");
  RunAndCrash(sc, dir, sc.arrivals.size());
  auto ckpts = CheckpointManager::List(dir);
  ASSERT_GE(ckpts.size(), 2u);

  // Flip a byte in the middle of the newest checkpoint.
  {
    const std::string& path = ckpts.back().second;
    uint64_t size = fs::file_size(path);
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, static_cast<long>(size / 2), SEEK_SET);
    int c = fgetc(f);
    fseek(f, static_cast<long>(size / 2), SEEK_SET);
    fputc(c ^ 0x40, f);
    fclose(f);
  }

  VectorSink sink;
  RecoverResult res = Recover(Opt(sc, dir), dir, &sink, sc.shards);
  ASSERT_NE(res.checker, nullptr) << res.error;
  EXPECT_TRUE(res.used_fallback);
  EXPECT_TRUE(res.from_checkpoint);
  EXPECT_EQ(res.ckpt_seq, ckpts[ckpts.size() - 2].first);

  DurableRunner cont(res.checker.get(), Dopts(sc, dir), res.next_seq,
                     res.events, res.wal_truncate_to);
  AssumeRole driver(cont.driver_role);  // single-threaded test driver
  for (size_t i = res.events; i < sc.arrivals.size(); ++i) {
    ASSERT_TRUE(cont.Feed(sc.arrivals[i], i));
  }
  cont.Finish();
  Outcome got;
  got.stats = res.checker->stats();
  got.watermark = res.checker->watermark();
  got.flips = res.checker->flip_stats().total_flips();
  res.checker.reset();
  got.emissions = sink.TakeAll();
  ExpectIdentical(got, ref, "fallback");
}

TEST(RecoveryFallback, AllCheckpointsGoneFallsBackToWalReplay) {
  Scenario sc;
  sc.name = "gone";
  History h = MakeWorkload(220, 607, /*list_mode=*/false, 40);
  sc.arrivals = SessionPreservingShuffle(h, 3);
  sc.ext_timeout_ms = 40;
  sc.checkpoint_every = 40;
  sc.gc_every = 24;
  sc.gc_target = 12;

  const std::string ref_dir = FreshDir("gone_ref");
  const Outcome ref = RunUninterrupted(sc, ref_dir);

  const std::string dir = FreshDir("gone_run");
  RunAndCrash(sc, dir, sc.arrivals.size());
  for (const auto& [seq, path] : CheckpointManager::List(dir)) {
    (void)seq;
    fs::remove(path);
  }

  VectorSink sink;
  RecoverResult res = Recover(Opt(sc, dir), dir, &sink, sc.shards);
  ASSERT_NE(res.checker, nullptr) << res.error;
  EXPECT_FALSE(res.from_checkpoint);
  EXPECT_EQ(res.events, sc.arrivals.size());  // full WAL replay
  res.checker->Finish();
  Outcome got;
  got.stats = res.checker->stats();
  got.watermark = res.checker->watermark();
  got.flips = res.checker->flip_stats().total_flips();
  res.checker.reset();
  got.emissions = sink.TakeAll();
  ExpectIdentical(got, ref, "wal-only");
}

}  // namespace
}  // namespace chronos::online
