// The batched collector->checker pipeline: PushBatch/PopBatch semantics
// on the bounded queue (ordering, blocking, close) and RunThreaded's
// equivalence with RunMaxRate on identical streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/aion.h"
#include "core/chronos.h"
#include "hist/collector.h"
#include "online/pipeline.h"
#include "online/queue.h"
#include "workload/generator.h"

namespace chronos::online {
namespace {

TEST(BoundedQueueBatchTest, PushBatchPopBatchRoundTrip) {
  BoundedQueue<int> q(16);
  EXPECT_TRUE(q.PushBatch({1, 2, 3, 4, 5}));
  std::vector<int> out;
  ASSERT_TRUE(q.PopBatch(&out, 3));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  ASSERT_TRUE(q.PopBatch(&out, 10));
  EXPECT_EQ(out, (std::vector<int>{4, 5}));
  EXPECT_EQ(q.Size(), 0u);
}

TEST(BoundedQueueBatchTest, ZeroCapacityIsClampedNotDeadlocked) {
  BoundedQueue<int> q(0);  // clamped to 1 internally
  std::thread producer([&] {
    EXPECT_TRUE(q.PushBatch({1, 2, 3}));
    q.Close();
  });
  std::vector<int> all, chunk;
  while (q.PopBatch(&chunk, 2)) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  producer.join();
  EXPECT_EQ(all, (std::vector<int>{1, 2, 3}));
}

TEST(BoundedQueueBatchTest, BatchLargerThanCapacitySpillsInChunks) {
  BoundedQueue<int> q(4);
  std::vector<int> big(64);
  for (int i = 0; i < 64; ++i) big[i] = i;
  std::thread producer([&] {
    EXPECT_TRUE(q.PushBatch(std::move(big)));
    q.Close();
  });
  std::vector<int> all, chunk;
  while (q.PopBatch(&chunk, 7)) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  producer.join();
  ASSERT_EQ(all.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(all[i], i);
}

TEST(BoundedQueueBatchTest, MultiProducerBatchesStayContiguous) {
  // Each producer's batches must land as contiguous runs (a batch is
  // enqueued under one lock when it fits), and nothing may be lost.
  constexpr int kProducers = 4;
  constexpr int kBatches = 50;
  constexpr int kBatchLen = 8;  // <= capacity: each batch fits atomically
  BoundedQueue<int> q(32);
  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int b = 0; b < kBatches; ++b) {
        std::vector<int> batch(kBatchLen);
        for (int j = 0; j < kBatchLen; ++j) {
          batch[j] = p * 1000000 + b * 1000 + j;
        }
        ASSERT_TRUE(q.PushBatch(std::move(batch)));
      }
      if (live.fetch_sub(1) == 1) q.Close();
    });
  }
  std::vector<int> all, chunk;
  while (q.PopBatch(&chunk, 16)) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  for (auto& t : producers) t.join();
  ASSERT_EQ(all.size(),
            static_cast<size_t>(kProducers * kBatches * kBatchLen));
  // Per-producer order is preserved and each batch is contiguous.
  for (size_t i = 0; i + 1 < all.size(); ++i) {
    if (all[i] / 1000000 == all[i + 1] / 1000000) {
      if (all[i] % kBatchLen != kBatchLen - 1) {
        EXPECT_EQ(all[i + 1], all[i] + 1)
            << "batch of producer " << all[i] / 1000000 << " interleaved";
      }
    }
  }
  std::vector<int> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "no element may be duplicated";
}

TEST(BoundedQueueBatchTest, CloseWakesBlockedBatchProducer) {
  BoundedQueue<int> q(2);
  std::thread blocked_producer([&] {
    // First chunk {1,2} fills the queue; the rest blocks until Close.
    EXPECT_FALSE(q.PushBatch({1, 2, 3, 4, 5, 6, 7, 8}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  blocked_producer.join();
  std::vector<int> out;
  ASSERT_TRUE(q.PopBatch(&out, 4)) << "items enqueued before close drain";
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_FALSE(q.PopBatch(&out, 4)) << "then the queue reports closed";
  EXPECT_TRUE(out.empty());
}

TEST(BoundedQueueBatchTest, CloseWakesBlockedBatchConsumer) {
  BoundedQueue<int> q(2);
  std::thread blocked_consumer([&] {
    std::vector<int> out;
    EXPECT_FALSE(q.PopBatch(&out, 4));
    EXPECT_TRUE(out.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  blocked_consumer.join();
}

class BatchPipelineTest : public ::testing::Test {
 protected:
  std::vector<hist::CollectedTxn> MakeStream(uint64_t txns,
                                             double stddev = 0) {
    workload::WorkloadParams p;
    p.sessions = 8;
    p.txns = txns;
    p.ops_per_txn = 6;
    p.keys = 100;
    History h = workload::GenerateDefaultHistory(p);
    hist::CollectorParams cp;
    cp.delay_mean_ms = stddev > 0 ? 50 : 0;
    cp.delay_stddev_ms = stddev;
    return hist::ScheduleDelivery(h, cp);
  }
};

TEST_F(BatchPipelineTest, RunThreadedMatchesRunMaxRateOnCleanStream) {
  auto stream = MakeStream(4000);
  Aion::Options opt;
  opt.ext_timeout_ms = 100;

  CountingSink max_sink;
  Aion max_checker(opt, &max_sink);
  RunResult max_r = RunMaxRate(&max_checker, stream, GcPolicy::None(), 500);

  CountingSink thr_sink;
  Aion thr_checker(opt, &thr_sink);
  RunResult thr_r =
      RunThreaded(&thr_checker, stream, GcPolicy::None(), 500, 128);

  EXPECT_EQ(thr_r.txns, max_r.txns);
  EXPECT_EQ(thr_sink.total(), max_sink.total());
  EXPECT_EQ(thr_checker.stats().txns_processed,
            max_checker.stats().txns_processed);
  EXPECT_EQ(thr_r.samples.size(), max_r.samples.size());
}

TEST_F(BatchPipelineTest, RunThreadedMatchesRunMaxRateOnDirtyStream) {
  auto stream = MakeStream(3000, 30);
  // Corrupt some reads so both drivers must report identical violations.
  for (size_t i = 100; i < stream.size(); i += 500) {
    for (Op& op : stream[i].txn.ops) {
      if (op.type == OpType::kRead) {
        op.value += 777;
        break;
      }
    }
  }
  Aion::Options opt;
  opt.ext_timeout_ms = 50;

  CountingSink max_sink;
  Aion max_checker(opt, &max_sink);
  RunMaxRate(&max_checker, stream, GcPolicy::Threshold(1500, 500), 250);

  CountingSink thr_sink;
  Aion thr_checker(opt, &thr_sink);
  RunThreaded(&thr_checker, stream, GcPolicy::Threshold(1500, 500), 250, 64);

  ASSERT_GT(max_sink.total(), 0u) << "corruption must surface violations";
  EXPECT_EQ(thr_sink.count(ViolationType::kExt),
            max_sink.count(ViolationType::kExt));
  EXPECT_EQ(thr_sink.count(ViolationType::kInt),
            max_sink.count(ViolationType::kInt));
  EXPECT_EQ(thr_sink.count(ViolationType::kNoConflict),
            max_sink.count(ViolationType::kNoConflict));
  EXPECT_EQ(thr_sink.total(), max_sink.total());
  EXPECT_EQ(thr_checker.stats().txns_processed,
            max_checker.stats().txns_processed);
}

TEST_F(BatchPipelineTest, RunThreadedReportsThroughputSeries) {
  auto stream = MakeStream(2000);
  CountingSink sink;
  Aion::Options opt;
  opt.ext_timeout_ms = 100;
  Aion checker(opt, &sink);
  RunResult r = RunThreaded(&checker, stream, GcPolicy::None(), 400);
  EXPECT_EQ(r.txns, 2000u);
  EXPECT_FALSE(r.samples.empty());
  EXPECT_GT(r.AvgTps(), 0.0);
}

}  // namespace
}  // namespace chronos::online
