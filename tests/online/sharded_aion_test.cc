// ShardedAion: the key-partitioned online checker. Core contract: a
// 1-shard instance is verdict- and violation-identical to the monolithic
// Aion, any shard count emits the same deterministic violation stream,
// flip-flop/stat merges match the monolith, and GC/spill behave
// identically at every partition count.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "../testutil.h"
#include "core/aion.h"
#include "hist/collector.h"
#include "online/pipeline.h"
#include "online/sharded_aion.h"
#include "workload/generator.h"

namespace chronos::online {
namespace {

using chronos::testing::DriveToEnd;
using chronos::testing::HistoryBuilder;
using chronos::testing::SessionPreservingShuffle;
using chronos::testing::SortedViolations;

History MakeWorkload(uint64_t txns, uint64_t seed, bool faulty) {
  workload::WorkloadParams p;
  p.sessions = 10;
  p.txns = txns;
  p.ops_per_txn = 6;
  p.keys = 60;
  p.seed = seed;
  db::DbConfig cfg;
  if (faulty) {
    cfg.faults.value_corruption_prob = 0.03;
    cfg.faults.lost_update_prob = 0.05;
    cfg.fault_seed = seed * 7 + 3;
  }
  return workload::GenerateDefaultHistory(p, cfg);
}

TEST(ShardedAionTest, OneShardCleanStreamMatchesMonolith) {
  History h = MakeWorkload(800, 11, /*faulty=*/false);
  auto arrivals = SessionPreservingShuffle(h, 42);
  CheckerOptions opt;
  opt.ext_timeout_ms = 1u << 30;  // shuffled arrivals: finalize at Finish

  CountingSink mono_sink;
  Aion mono(opt, &mono_sink);
  DriveToEnd(&mono, arrivals);

  CountingSink shard_sink;
  ShardedAion sharded(opt, 1, &shard_sink);
  DriveToEnd(&sharded, arrivals);

  EXPECT_EQ(mono_sink.total(), 0u);
  EXPECT_EQ(shard_sink.total(), 0u);
  CheckerStats s = sharded.stats();
  EXPECT_EQ(s.txns_processed, mono.stats().txns_processed);
  EXPECT_EQ(s.ext_rechecks, mono.stats().ext_rechecks);
  EXPECT_EQ(s.noconflict_checks, mono.stats().noconflict_checks);
}

TEST(ShardedAionTest, OneShardViolationSetMatchesMonolith) {
  History h = MakeWorkload(800, 12, /*faulty=*/true);
  auto arrivals = SessionPreservingShuffle(h, 7);
  CheckerOptions opt;
  opt.ext_timeout_ms = 30;

  VectorSink mono_sink;
  Aion mono(opt, &mono_sink);
  DriveToEnd(&mono, arrivals);

  VectorSink shard_sink;
  ShardedAion sharded(opt, 1, &shard_sink);
  DriveToEnd(&sharded, arrivals);

  auto mono_v = SortedViolations(mono_sink.TakeAll());
  auto shard_v = SortedViolations(shard_sink.TakeAll());
  ASSERT_GT(mono_v.size(), 0u) << "faulty history must surface violations";
  ASSERT_EQ(shard_v.size(), mono_v.size());
  for (size_t i = 0; i < mono_v.size(); ++i) {
    EXPECT_EQ(shard_v[i], mono_v[i]) << "index " << i;
  }
}

TEST(ShardedAionTest, EmissionIsDeterministicAcrossShardCounts) {
  History h = MakeWorkload(700, 13, /*faulty=*/true);
  auto arrivals = SessionPreservingShuffle(h, 5);
  CheckerOptions opt;
  opt.ext_timeout_ms = 30;

  std::vector<Violation> reference;
  for (size_t shards : {1u, 2u, 8u}) {
    // Two runs per shard count: thread timing must not matter.
    for (int rep = 0; rep < 2; ++rep) {
      VectorSink sink;
      ShardedAion sharded(opt, shards, &sink);
      DriveToEnd(&sharded, arrivals);
      auto got = sink.TakeAll();
      if (reference.empty()) {
        reference = got;
        ASSERT_GT(reference.size(), 0u);
        continue;
      }
      ASSERT_EQ(got.size(), reference.size())
          << "shards=" << shards << " rep=" << rep;
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(got[i], reference[i])
            << "shards=" << shards << " rep=" << rep << " index " << i;
      }
    }
  }
}

TEST(ShardedAionTest, MixedLevelHistoryMatchesMonolithAcrossShardCounts) {
  // Per-transaction isolation tags ride in the shard commands: a mixed
  // SI/SER/RC/RA history must produce the exact monolith violation
  // stream, stats, and watermark at every shard count. SER tags on an
  // SI-generated history surface real violations — good: the equality
  // must hold on a noisy stream, not just a clean one.
  History h = MakeWorkload(800, 23, /*faulty=*/true);
  workload::AssignLevels(&h, workload::LevelMix{40, 15, 25, 10}, 23);
  ASSERT_TRUE(HistoryHasLevelTags(h));
  auto arrivals = SessionPreservingShuffle(h, 3);
  CheckerOptions opt;
  opt.ext_timeout_ms = 30;

  VectorSink mono_sink;
  Aion mono(opt, &mono_sink);
  DriveToEnd(&mono, arrivals);
  auto mono_v = mono_sink.TakeAll();
  ASSERT_GT(mono_v.size(), 0u);

  std::vector<Violation> sharded_ref;  // ordered 1-shard emission
  for (size_t shards : {1u, 2u, 8u}) {
    VectorSink sink;
    ShardedAion sharded(opt, shards, &sink);
    DriveToEnd(&sharded, arrivals);
    auto got = sink.TakeAll();
    ASSERT_EQ(got.size(), mono_v.size()) << "shards=" << shards;
    // The coordinator emits in (commit_ts, tid) order, the monolith in
    // detection order: against the monolith the violation multiset is
    // the identity contract, while across shard counts the emission is
    // byte-stable, order included.
    if (sharded_ref.empty()) {
      sharded_ref = got;
    } else {
      for (size_t i = 0; i < sharded_ref.size(); ++i) {
        EXPECT_EQ(got[i], sharded_ref[i]) << "shards=" << shards
                                          << " index " << i;
      }
    }
    auto a = SortedViolations(got);
    auto b = SortedViolations(mono_v);
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "shards=" << shards << " index " << i;
    }
    EXPECT_EQ(sharded.watermark(), mono.watermark()) << "shards=" << shards;
    CheckerStats s = sharded.stats();
    EXPECT_EQ(s.txns_processed, mono.stats().txns_processed)
        << "shards=" << shards;
    EXPECT_EQ(s.ext_rechecks, mono.stats().ext_rechecks)
        << "shards=" << shards;
    EXPECT_EQ(s.noconflict_checks, mono.stats().noconflict_checks)
        << "shards=" << shards;
  }
}

TEST(ShardedAionTest, ViolationsEmitSortedByCommitTsThenTid) {
  // Two stale readers on different keys; the later-committing one
  // arrives (and would be reported by the monolith) first. The
  // coordinator must still emit in (commit_ts, tid) order.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 5).W(1, 100)
                  .Txn(2, 1, 0, 2, 6).W(2, 200)
                  .Txn(3, 2, 0, 18, 20).R(2, 999)   // stale, cts 20
                  .Txn(4, 3, 0, 8, 10).R(1, 888)    // stale, cts 10
                  .Build();
  CheckerOptions opt;
  opt.ext_timeout_ms = 1000;
  VectorSink sink;
  ShardedAion sharded(opt, 4, &sink);
  DriveToEnd(&sharded, h.txns);  // arrival order: writers, then 3, then 4
  auto v = sink.TakeAll();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].tid, 4u);  // commit_ts 10 first
  EXPECT_EQ(v[1].tid, 3u);  // commit_ts 20 second
  EXPECT_EQ(v[0].type, ViolationType::kExt);
  EXPECT_EQ(v[1].type, ViolationType::kExt);
}

TEST(ShardedAionTest, GcSurvivorsAndWatermarkMatchMonolith) {
  History h = MakeWorkload(1200, 14, /*faulty=*/false);
  hist::CollectorParams cp;
  auto stream = hist::ScheduleDelivery(h, cp);
  std::vector<Transaction> ordered;
  ordered.reserve(stream.size());
  for (auto& ct : stream) ordered.push_back(ct.txn);

  CheckerOptions opt;
  opt.ext_timeout_ms = 5;

  CountingSink mono_sink;
  Aion mono(opt, &mono_sink);
  DriveToEnd(&mono, ordered, /*gc_every=*/100, /*gc_target=*/50);
  CheckerFootprint ref = mono.GetFootprint();
  ASSERT_GT(mono.stats().gc_passes, 0u);

  for (size_t shards : {1u, 2u, 8u}) {
    CountingSink sink;
    ShardedAion sharded(opt, shards, &sink);
    DriveToEnd(&sharded, ordered, /*gc_every=*/100, /*gc_target=*/50);
    EXPECT_EQ(sink.total(), mono_sink.total()) << "shards=" << shards;
    EXPECT_EQ(sharded.watermark(), mono.watermark()) << "shards=" << shards;
    CheckerFootprint f = sharded.GetFootprint();
    EXPECT_EQ(f.live_txns, ref.live_txns) << "shards=" << shards;
    EXPECT_EQ(f.versions, ref.versions) << "shards=" << shards;
    EXPECT_EQ(f.intervals, ref.intervals) << "shards=" << shards;
    EXPECT_EQ(sharded.stats().gc_passes, mono.stats().gc_passes)
        << "shards=" << shards;
  }
}

TEST(ShardedAionTest, StragglerBelowWatermarkUsesShardSpill) {
  // Writer chain on one key, GC past the early versions, then a straggler
  // reads below the watermark: the owning shard must reload its spill.
  History writers = HistoryBuilder()
                        .Txn(1, 0, 0, 10, 15).W(7, 1)
                        .Txn(2, 0, 1, 20, 25).W(7, 2)
                        .Txn(3, 0, 2, 30, 35).W(7, 3)
                        .Build();
  Transaction straggler;
  straggler.tid = 9;
  straggler.sid = 1;
  straggler.sno = 0;
  straggler.start_ts = 16;
  straggler.commit_ts = 17;
  straggler.ops.push_back({OpType::kRead, 7, 1, 0});

  std::string dir = chronos::testing::UniqueTempDir("spill");
  std::filesystem::remove_all(dir);
  CheckerOptions opt;
  opt.ext_timeout_ms = 100;
  opt.spill_dir = dir;

  CountingSink sink;
  ShardedAion sharded(opt, 4, &sink);
  uint64_t now = 0;
  for (const Transaction& t : writers.txns) sharded.OnTransaction(t, now += 10);
  sharded.AdvanceTime(1000);  // finalize the writers
  EXPECT_EQ(sharded.Gc(26), 26u);
  sharded.OnTransaction(straggler, 2000);
  sharded.Finish();

  EXPECT_EQ(sink.total(), 0u)
      << (sink.first().empty() ? "" : sink.first()[0].ToString());
  EXPECT_GE(sharded.stats().spill_reloads, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ShardedAionTest, FlipFlopMergeMatchesMonolith) {
  History h = MakeWorkload(1500, 15, /*faulty=*/false);
  hist::CollectorParams cp;
  cp.delay_mean_ms = 50;
  cp.delay_stddev_ms = 30;
  auto stream = hist::ScheduleDelivery(h, cp);

  CheckerOptions opt;
  opt.ext_timeout_ms = 10000;

  CountingSink mono_sink;
  Aion mono(opt, &mono_sink);
  RunVirtualTime(&mono, stream);
  const FlipFlopStats& ref = mono.flip_stats();
  ASSERT_GT(ref.total_flips(), 0u) << "delays should cause flips";

  for (size_t shards : {1u, 2u, 8u}) {
    CountingSink sink;
    ShardedAion sharded(opt, shards, &sink);
    RunVirtualTime(&sharded, stream);
    FlipFlopStats merged = sharded.flip_stats();
    EXPECT_EQ(merged.total_flips(), ref.total_flips()) << "shards=" << shards;
    EXPECT_EQ(merged.txns_with_flips(), ref.txns_with_flips())
        << "shards=" << shards;
    EXPECT_EQ(merged.pair_flip_histogram(), ref.pair_flip_histogram())
        << "shards=" << shards;
    EXPECT_EQ(merged.txn_flip_histogram(), ref.txn_flip_histogram())
        << "shards=" << shards;
    EXPECT_EQ(merged.latency_histogram(), ref.latency_histogram())
        << "shards=" << shards;
  }
}

TEST(ShardedAionTest, RunThreadedDrivesShardedChecker) {
  History h = MakeWorkload(2000, 16, /*faulty=*/true);
  hist::CollectorParams cp;
  auto stream = hist::ScheduleDelivery(h, cp);

  CheckerOptions opt;
  opt.ext_timeout_ms = 50;

  CountingSink mono_sink;
  Aion mono(opt, &mono_sink);
  RunResult mono_r = RunMaxRate(&mono, stream, GcPolicy::None(), 500);

  CountingSink shard_sink;
  ShardedAion sharded(opt, 4, &shard_sink);
  RunResult shard_r =
      RunThreaded(&sharded, stream, GcPolicy::None(), 500, 128);

  EXPECT_EQ(shard_r.txns, mono_r.txns);
  EXPECT_EQ(shard_sink.total(), mono_sink.total());
  EXPECT_EQ(shard_sink.count(ViolationType::kExt),
            mono_sink.count(ViolationType::kExt));
  EXPECT_EQ(shard_sink.count(ViolationType::kNoConflict),
            mono_sink.count(ViolationType::kNoConflict));
  EXPECT_EQ(shard_r.samples.size(), mono_r.samples.size());
}

TEST(ShardedAionTest, EmissionIsDeterministicAcrossPreStageWorkerCounts) {
  // The pre-stage pool runs classification off the coordinator thread;
  // its size (and any thread interleaving it causes) must never show in
  // the emission or the merged stats.
  History h = MakeWorkload(700, 18, /*faulty=*/true);
  auto arrivals = SessionPreservingShuffle(h, 9);
  CheckerOptions opt;
  opt.ext_timeout_ms = 30;

  std::vector<Violation> reference;
  CheckerStats ref_stats;
  for (size_t shards : {1u, 4u}) {
    for (size_t workers : {1u, 2u, 4u}) {
      opt.pre_stage_workers = workers;
      VectorSink sink;
      ShardedAion sharded(opt, shards, &sink);
      EXPECT_EQ(sharded.pre_stage_worker_count(), workers);
      DriveToEnd(&sharded, arrivals);
      CheckerStats s = sharded.stats();
      auto got = sink.TakeAll();
      if (reference.empty()) {
        reference = got;
        ref_stats = s;
        ASSERT_GT(reference.size(), 0u);
        continue;
      }
      ASSERT_EQ(got.size(), reference.size())
          << "shards=" << shards << " workers=" << workers;
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(got[i], reference[i])
            << "shards=" << shards << " workers=" << workers << " index " << i;
      }
      EXPECT_TRUE(s == ref_stats)
          << "shards=" << shards << " workers=" << workers;
    }
  }
}

TEST(ShardedAionTest, PipelineHealthCountsTraffic) {
  History h = MakeWorkload(600, 19, /*faulty=*/false);
  CheckerOptions opt;
  opt.ext_timeout_ms = 1u << 30;
  opt.pre_stage_workers = 2;
  CountingSink sink;
  ShardedAion sharded(opt, 2, &sink);
  DriveToEnd(&sharded, h.txns);
  PipelineHealth health = sharded.pipeline_health();
  ASSERT_EQ(health.pre_stage_in.size(), 2u);
  ASSERT_EQ(health.pre_stage_out.size(), 2u);
  ASSERT_EQ(health.shard_rings.size(), 2u);
  // Headers: one per arrival plus finalize/GC/barrier traffic.
  EXPECT_GE(health.sequencer_msgs, 600u);
  EXPECT_GT(health.seq_ring.depth_hwm, 0u);
  uint64_t staged = 0;
  for (const RingHealth& r : health.pre_stage_in) staged += r.depth_hwm;
  EXPECT_GT(staged, 0u) << "arrivals must flow through the pre-stage";
  double idle = health.CoordinatorIdleRatio();
  EXPECT_GE(idle, 0.0);
  EXPECT_LE(idle, 1.0);
}

TEST(ShardedAionTest, MakeCheckerSelectsImplementation) {
  History h = MakeWorkload(300, 17, /*faulty=*/true);
  CheckerOptions opt;
  opt.ext_timeout_ms = 20;

  CountingSink ref_sink;
  Aion ref(opt, &ref_sink);
  DriveToEnd(&ref, h.txns);

  for (size_t shards : {0u, 1u, 3u}) {
    CountingSink sink;
    auto checker = MakeChecker(opt, shards, &sink);
    DriveToEnd(checker.get(), h.txns);
    EXPECT_EQ(sink.total(), ref_sink.total()) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace chronos::online
